//! Applying AGAThA to BWA-MEM's guided alignment (§5.9): the same kernel
//! with BWA-MEM's much smaller band width and termination threshold.
//!
//! ```text
//! cargo run --release --example bwa_mem
//! ```

use agatha_suite::align::Scoring;
use agatha_suite::baselines::{run_baseline, Baseline};
use agatha_suite::core::{AgathaConfig, Pipeline};
use agatha_suite::datasets::{generate, DatasetSpec, Tech};
use agatha_suite::gpu_sim::GpuSpec;

fn main() {
    let spec = DatasetSpec { name: "BWA demo".into(), tech: Tech::Clr, seed: 5, reads: 200 };
    let mut d = generate(&spec);
    d.scoring = Scoring::preset_bwa(); // A=1 B=4 O=6 E=1, z=100, w=100

    let gpu = GpuSpec::rtx_a6000();
    let cpu = run_baseline(Baseline::CpuSse4, &d.tasks, &d.scoring, &gpu);
    let saloba = run_baseline(Baseline::SalobaMm2, &d.tasks, &d.scoring, &gpu);
    let agatha = Pipeline::new(d.scoring, AgathaConfig::agatha()).align_batch(&d.tasks);

    println!("BWA-MEM preset (band {}, Z {}):", d.scoring.band_width, d.scoring.zdrop);
    println!("{:<28}{:>12}{:>12}", "engine", "ms (sim)", "vs CPU");
    for (name, ms) in [
        (cpu.name.as_str(), cpu.elapsed_ms),
        (saloba.name.as_str(), saloba.elapsed_ms),
        ("AGAThA", agatha.elapsed_ms),
    ] {
        println!("{:<28}{:>12.3}{:>11.2}x", name, ms, cpu.elapsed_ms / ms);
    }

    let scores: Vec<i32> = agatha.results.iter().map(|r| r.score).collect();
    assert_eq!(cpu.scores, scores, "exactness holds under the BWA-MEM preset too");
    println!("\nexactness check passed under the BWA-MEM preset.");
    println!("paper: the speed gap over SALoBa is smaller than on Minimap2, but AGAThA still wins (~15x over CPU).");
}
