//! Multi-GPU scaling (§5.8): distribute one batch across 1–4 simulated
//! A6000s and report the scaling curve.
//!
//! ```text
//! cargo run --release --example multi_gpu
//! ```

use agatha_suite::core::{AgathaConfig, Pipeline};
use agatha_suite::datasets::{generate, DatasetSpec, Tech};

fn main() {
    let spec = DatasetSpec { name: "CLR batch".into(), tech: Tech::Clr, seed: 99, reads: 400 };
    let d = generate(&spec);
    println!("{}: {} tasks", d.name, d.tasks.len());
    println!("{:<10}{:>12}{:>12}", "GPUs", "ms (sim)", "scaling");

    let mut one = None;
    for gpus in 1..=4 {
        let p = Pipeline::new(d.scoring, AgathaConfig::agatha()).with_gpus(gpus);
        let rep = p.align_batch(&d.tasks);
        let base = *one.get_or_insert(rep.elapsed_ms);
        println!("{:<10}{:>12.3}{:>11.2}x", gpus, rep.elapsed_ms, base / rep.elapsed_ms);
    }
    println!();
    println!("paper: near-linear scaling (59.38x over the CPU at 4 GPUs vs 18.83x at 1).");
}
