//! Long-read mapping scenario: generate a synthetic ONT dataset (the
//! workload the paper's introduction motivates), run the full AGAThA
//! pipeline against the CPU baseline and the best GPU baseline, and verify
//! every engine agrees on every score.
//!
//! ```text
//! cargo run --release --example long_read_mapping
//! ```

use agatha_suite::baselines::{run_baseline, Baseline};
use agatha_suite::core::{AgathaConfig, Pipeline};
use agatha_suite::datasets::{generate, DatasetSpec, Tech};
use agatha_suite::gpu_sim::GpuSpec;

fn main() {
    let spec = DatasetSpec { name: "ONT demo".into(), tech: Tech::Ont, seed: 2024, reads: 200 };
    let dataset = generate(&spec);
    println!(
        "dataset: {} tasks, query lengths {}..{} bases",
        dataset.tasks.len(),
        dataset.tasks.iter().map(|t| t.query_len()).min().unwrap(),
        dataset.tasks.iter().map(|t| t.query_len()).max().unwrap()
    );

    let gpu = GpuSpec::rtx_a6000();
    let cpu = run_baseline(Baseline::CpuSse4, &dataset.tasks, &dataset.scoring, &gpu);
    let saloba = run_baseline(Baseline::SalobaMm2, &dataset.tasks, &dataset.scoring, &gpu);
    let agatha = Pipeline::new(dataset.scoring, AgathaConfig::agatha()).align_batch(&dataset.tasks);

    println!();
    println!("{:<28}{:>12}{:>12}", "engine", "ms (sim)", "vs CPU");
    println!("{:<28}{:>12.3}{:>12}", cpu.name, cpu.elapsed_ms, "1.00x");
    println!(
        "{:<28}{:>12.3}{:>11.2}x",
        saloba.name,
        saloba.elapsed_ms,
        cpu.elapsed_ms / saloba.elapsed_ms
    );
    println!(
        "{:<28}{:>12.3}{:>11.2}x",
        "AGAThA",
        agatha.elapsed_ms,
        cpu.elapsed_ms / agatha.elapsed_ms
    );

    // Exactness: every engine reports identical scores.
    let agatha_scores: Vec<i32> = agatha.results.iter().map(|r| r.score).collect();
    assert_eq!(cpu.scores, agatha_scores, "AGAThA must match the CPU reference exactly");
    assert_eq!(cpu.scores, saloba.scores, "SALoBa (MM2-Target) must match too");
    println!();
    println!(
        "exactness check passed: {} identical scores across engines; {} tasks z-dropped",
        agatha_scores.len(),
        agatha.stats.zdropped_tasks
    );
    println!(
        "device: {} warps on {} slots, utilization {:.0}%, run-ahead overhead {:.1}%",
        agatha.device.warps,
        agatha.device.slots,
        agatha.device.utilization * 100.0,
        agatha.stats.runahead_ratio() * 100.0
    );
}
