//! Calibration diagnostic: warp-latency distributions under each
//! ordering/rejoining combination (not part of the figure set).

use agatha_core::{AgathaConfig, OrderingStrategy, Pipeline};
use agatha_datasets::{generate, DatasetSpec, Tech};

fn main() {
    let reads: usize =
        std::env::var("AGATHA_READS").ok().and_then(|v| v.parse().ok()).unwrap_or(400);
    let spec = DatasetSpec { name: "probe CLR".into(), tech: Tech::Ont, seed: 801, reads };
    let d = generate(&spec);

    let mut diags: Vec<u64> = d.tasks.iter().map(|t| t.antidiags() as u64).collect();
    diags.sort_unstable();
    println!(
        "task antidiags: median {} p90 {} max {} (max/median {:.1}x)",
        diags[reads / 2],
        diags[reads * 9 / 10],
        diags[reads - 1],
        diags[reads - 1] as f64 / diags[reads / 2] as f64
    );

    for (name, sr, strat) in [
        ("noSR+Orig", false, OrderingStrategy::Original),
        ("SR+Orig  ", true, OrderingStrategy::Original),
        ("noSR+Sort", false, OrderingStrategy::Sorted),
        ("SR+Sort  ", true, OrderingStrategy::Sorted),
        ("noSR+UB  ", false, OrderingStrategy::UnevenBucketing),
        ("SR+UB    ", true, OrderingStrategy::UnevenBucketing),
    ] {
        let cfg = AgathaConfig::agatha().with_sr(sr).with_ub(false);
        let p = Pipeline::new(d.scoring, cfg);
        let rep = p.align_batch_with_strategy(&d.tasks, strat);
        let mut w = rep.warp_cycles.clone();
        w.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let sum: f64 = w.iter().sum();
        println!(
            "{name}: ms {:.3} | warps {} | warp mean {:.0} max {:.0} (max/mean {:.1}x) | util {:.2} | lb(busy/slots) {:.3} ms",
            rep.elapsed_ms,
            w.len(),
            sum / w.len() as f64,
            w.last().unwrap(),
            w.last().unwrap() / (sum / w.len() as f64),
            rep.device.utilization,
            sum / 21.0 / 1.8e6,
        );
    }
}
