//! The complete mapping pipeline on FASTA files: reference genome → k-mer
//! index → seeding & chaining (the paper's "pre-computing steps") →
//! guided extension with AGAThA → scores and CIGARs.
//!
//! ```text
//! cargo run --release --example full_pipeline
//! ```

use agatha_suite::align::traceback::guided_align_traced;
use agatha_suite::align::PackedSeq;
use agatha_suite::core::{AgathaConfig, Pipeline};
use agatha_suite::datasets::chain::{precompute_task, ChainParams, KmerIndex};
use agatha_suite::datasets::genome::generate_genome;
use agatha_suite::datasets::profiles::Tech;
use agatha_suite::datasets::reads::apply_errors;
use agatha_suite::io::{read_fasta, write_fasta, FastaRecord};

use rand::{rngs::StdRng, Rng, SeedableRng};

fn main() {
    // 1. A reference genome, written to and read back from FASTA.
    let genome = generate_genome(80_000, 77);
    let dir = std::env::temp_dir().join("agatha_full_pipeline");
    std::fs::create_dir_all(&dir).unwrap();
    let ref_path = dir.join("reference.fasta");
    write_fasta(
        &ref_path,
        &[FastaRecord { name: "synthetic_chr".into(), seq: PackedSeq::from_codes(&genome) }],
    )
    .unwrap();
    let genome_codes = read_fasta(&ref_path).unwrap().remove(0).seq.to_codes();
    println!("reference: {} bases ({})", genome_codes.len(), ref_path.display());

    // 2. Reads sampled with a CLR error profile.
    let profile = {
        let mut p = Tech::Clr.profile();
        p.junk_fraction = 0.0;
        p.chimera_fraction = 0.0;
        p.divergent_fraction = 0.0;
        p
    };
    let mut rng = StdRng::seed_from_u64(13);
    let reads: Vec<Vec<u8>> = (0..24)
        .map(|_| {
            let len = rng.gen_range(400..2000);
            let start = rng.gen_range(0..genome_codes.len() - len);
            apply_errors(&genome_codes[start..start + len], &profile, &mut rng)
        })
        .collect();

    // 3. Pre-computation: index, seed, chain.
    let index = KmerIndex::build(&genome_codes, 15, 8);
    println!("index: {} distinct 15-mers", index.distinct_kmers());
    let params = ChainParams::default();
    let tasks: Vec<_> = reads
        .iter()
        .enumerate()
        .filter_map(|(i, read)| precompute_task(i as u32, &genome_codes, &index, read, 64, &params))
        .collect();
    println!("chaining located {}/{} reads", tasks.len(), reads.len());

    // 4. Guided extension with AGAThA.
    let scoring = Tech::Clr.scoring();
    let report = Pipeline::new(scoring, AgathaConfig::agatha()).align_batch(&tasks);
    println!(
        "aligned {} tasks in {:.3} simulated ms ({} z-dropped)",
        tasks.len(),
        report.elapsed_ms,
        report.stats.zdropped_tasks
    );

    // 5. Traceback for the first few accepted extensions.
    for (task, result) in tasks.iter().zip(&report.results).take(3) {
        let traced = guided_align_traced(&task.reference, &task.query, &scoring);
        assert_eq!(traced.result.score, result.score, "traceback must agree with the kernel");
        println!(
            "  read {:>2}: score {:>5}  CIGAR {}",
            task.id,
            result.score,
            abbreviate(&traced.cigar())
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

fn abbreviate(cigar: &str) -> String {
    if cigar.len() <= 60 {
        cigar.to_string()
    } else {
        format!(
            "{}…{} ({} runs)",
            &cigar[..40],
            &cigar[cigar.len() - 12..],
            cigar.matches(|c: char| c.is_ascii_alphabetic() || c == '=').count()
        )
    }
}
