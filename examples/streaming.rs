//! Streaming alignment: serve an unbounded task stream through the
//! persistent [`BatchEngine`] worker pool with bounded memory.
//!
//! ```text
//! cargo run --release --example streaming
//! ```
//!
//! Contrast with `examples/full_pipeline.rs`, which materialises the whole
//! batch: here tasks are produced lazily, aligned chunk by chunk on workers
//! that each reuse one kernel workspace, and dropped as soon as their chunk
//! is reported — memory is bounded by the chunk size, not the stream.

use agatha_suite::core::{AgathaConfig, Pipeline};
use agatha_suite::datasets::{generate, DatasetSpec, Tech};

fn main() {
    let ds = generate(&DatasetSpec {
        name: "streaming demo".to_string(),
        tech: Tech::Clr,
        seed: 42,
        reads: 600,
    });
    let pipeline = Pipeline::new(ds.scoring, AgathaConfig::agatha());
    let mut engine = pipeline.engine();
    println!(
        "streaming {} tasks on {} worker threads, chunks of 128",
        ds.tasks.len(),
        engine.threads()
    );

    // Any `Iterator<Item = Task>` works here — e.g. `open_fasta_pairs`
    // from agatha-io streams straight off disk. Chunks are yielded as soon
    // as they are aligned.
    let mut run = engine.align_stream(ds.tasks.iter().cloned(), 128);
    for chunk in run.by_ref() {
        let r = &chunk.report;
        println!(
            "  chunk @{:>4}: {:>3} tasks, {:>2} warps, {:.3} ms simulated, {:.1}% run-ahead",
            chunk.offset,
            r.results.len(),
            r.warp_cycles.len(),
            r.elapsed_ms,
            100.0 * r.stats.runahead_ratio(),
        );
    }

    let summary = run.finish();
    println!(
        "done: {} tasks in {} chunks, {:.3} ms simulated total, {} cells computed, {} z-dropped",
        summary.tasks,
        summary.chunks,
        summary.elapsed_ms,
        summary.stats.computed_cells,
        summary.stats.zdropped_tasks,
    );
}
