//! Ablation explorer: toggle each AGAThA technique on one dataset and print
//! the speedup waterfall plus the execution statistics that explain it —
//! global traffic for RW, run-ahead cells for SD, idle lanes for SR/UB.
//!
//! ```text
//! cargo run --release --example ablation_explorer [--tech hifi|clr|ont]
//! ```

use agatha_suite::core::{AgathaConfig, Pipeline};
use agatha_suite::datasets::{generate, DatasetSpec, Tech};
use agatha_suite::io::Args;

fn main() {
    let args = Args::from_env();
    let tech = match args.get("tech").unwrap_or("clr") {
        "hifi" => Tech::HiFi,
        "ont" => Tech::Ont,
        _ => Tech::Clr,
    };
    let spec = DatasetSpec { name: format!("{} ablation", tech.name()), tech, seed: 7, reads: 200 };
    let d = generate(&spec);

    let steps: [(&str, AgathaConfig); 5] = [
        ("Baseline", AgathaConfig::baseline()),
        ("+RW", AgathaConfig::baseline().with_rw(true)),
        ("+SD", AgathaConfig::baseline().with_rw(true).with_sd(true)),
        ("+SR", AgathaConfig::baseline().with_rw(true).with_sd(true).with_sr(true)),
        ("+UB", AgathaConfig::agatha()),
    ];

    println!("{}: {} tasks", d.name, d.tasks.len());
    println!(
        "{:<10}{:>10}{:>10}{:>14}{:>14}{:>12}",
        "design", "ms", "speedup", "global tx", "runahead", "util"
    );
    let mut base = None;
    for (name, cfg) in steps {
        let rep = Pipeline::new(d.scoring, cfg).align_batch(&d.tasks);
        let b = *base.get_or_insert(rep.elapsed_ms);
        println!(
            "{:<10}{:>10.3}{:>9.2}x{:>14}{:>13.1}%{:>11.0}%",
            name,
            rep.elapsed_ms,
            b / rep.elapsed_ms,
            rep.stats.mem.global_total(),
            rep.stats.runahead_ratio() * 100.0,
            rep.device.utilization * 100.0
        );
    }
    println!();
    println!(
        "RW removes global anti-diagonal traffic; SD bounds run-ahead; SR/UB lift utilization."
    );
}
