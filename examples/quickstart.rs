//! Quickstart: align a pair of sequences, inspect the guided-alignment
//! result, and see the guiding strategy (banding + Z-drop) at work.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use agatha_suite::align::matrix::full_align_classified;
use agatha_suite::align::{guided::guided_align, PackedSeq, Scoring};

fn main() {
    // The worked example of the paper's Figure 1.
    let reference = PackedSeq::from_str_seq("AGATAGAT");
    let query = PackedSeq::from_str_seq("AGACTATC");
    let scoring = Scoring::figure1(); // match +2, mismatch -4, gap 4+2k

    let result = guided_align(&reference, &query, &scoring);
    println!(
        "Figure 1 pair: score {}, max cell ({}, {})",
        result.score, result.max.i, result.max.j
    );

    let full = full_align_classified(&reference, &query, &scoring);
    println!("alignment ({}):\n{}", full.cigar(), full.pretty(&reference, &query));

    // Guiding in action: a read whose tail is junk. Without the Z-drop the
    // aligner wades through the junk; with it, filling stops early.
    let r = PackedSeq::from_str_seq(&format!("{}{}", "ACGT".repeat(64), "G".repeat(256)));
    let q = PackedSeq::from_str_seq(&format!("{}{}", "ACGT".repeat(64), "C".repeat(256)));

    let unguided = Scoring::new(2, 4, 4, 2, Scoring::NO_ZDROP, Scoring::NO_BAND);
    let guided = Scoring::new(2, 4, 4, 2, 100, 100);

    let a = guided_align(&r, &q, &unguided);
    let b = guided_align(&r, &q, &guided);
    println!();
    println!("chimeric read, unguided: score {}, {} cells", a.score, a.cells);
    println!(
        "chimeric read, guided:   score {}, {} cells ({:.1}x fewer), stopped at anti-diagonal {:?}",
        b.score,
        b.cells,
        a.cells as f64 / b.cells as f64,
        b.stop.antidiag()
    );
    assert_eq!(a.score, b.score, "guiding must not change the reported score here");
}
