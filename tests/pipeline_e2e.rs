//! End-to-end pipeline tests: datasets through the full batch aligner,
//! scheduling invariants, feature interactions and performance-direction
//! sanity checks (the qualitative claims of the paper, asserted).

use agatha_suite::core::{AgathaConfig, OrderingStrategy, Pipeline};
use agatha_suite::datasets::{generate, long_short_mix, DatasetSpec, Tech};
use agatha_suite::gpu_sim::GpuSpec;

fn dataset(tech: Tech, seed: u64, reads: usize) -> agatha_suite::datasets::Dataset {
    generate(&DatasetSpec { name: format!("{} e2e", tech.name()), tech, seed, reads })
}

#[test]
fn report_invariants() {
    let d = dataset(Tech::Clr, 3, 60);
    let rep = Pipeline::new(d.scoring, AgathaConfig::agatha()).align_batch(&d.tasks);
    assert_eq!(rep.results.len(), d.tasks.len());
    assert!(rep.elapsed_ms > 0.0);
    assert!(rep.device.utilization > 0.0 && rep.device.utilization <= 1.0);
    assert!(rep.stats.computed_cells >= rep.stats.reference_cells);
    assert_eq!(rep.stats.tasks, d.tasks.len() as u64);
    assert!(rep.stats.zdropped_tasks > 0, "CLR data must include failing candidates");
    // Warp latencies must cover all warps and be positive.
    assert!(!rep.warp_cycles.is_empty());
    assert!(rep.warp_cycles.iter().all(|&c| c >= 0.0));
}

#[test]
fn techniques_point_the_right_direction() {
    let d = dataset(Tech::Ont, 17, 120);
    let ms = |cfg: AgathaConfig| Pipeline::new(d.scoring, cfg).align_batch(&d.tasks).elapsed_ms;
    let baseline = ms(AgathaConfig::baseline());
    let rw = ms(AgathaConfig::baseline().with_rw(true));
    let sd = ms(AgathaConfig::baseline().with_rw(true).with_sd(true));
    let full = ms(AgathaConfig::agatha());
    assert!(rw < baseline, "RW must speed up the baseline: {rw} vs {baseline}");
    assert!(sd < rw, "SD must further improve: {sd} vs {rw}");
    assert!(full < rw, "full AGAThA beats +RW: {full} vs {rw}");
    assert!(full < baseline / 5.0, "overall gain should be substantial");
}

#[test]
fn uneven_bucketing_beats_original_on_skewed_mix() {
    // Fig. 13's regime: few long reads among many short ones.
    let d = long_short_mix(10.0, 240, 77);
    let cfg = AgathaConfig::agatha().with_ub(false);
    let orig = Pipeline::new(d.scoring, cfg.clone())
        .align_batch_with_strategy(&d.tasks, OrderingStrategy::Original)
        .elapsed_ms;
    let ub = Pipeline::new(d.scoring, cfg)
        .align_batch_with_strategy(&d.tasks, OrderingStrategy::UnevenBucketing)
        .elapsed_ms;
    assert!(ub <= orig * 1.02, "UB must not lose on skewed mixes: {ub} vs {orig}");
}

#[test]
fn multi_gpu_scales() {
    // Needs enough warps that each device slice stays busy for several
    // rounds; with tiny batches the longest warp bounds every device count.
    let d = dataset(Tech::Clr, 31, 480);
    let p1 = Pipeline::new(d.scoring, AgathaConfig::agatha()).align_batch(&d.tasks).elapsed_ms;
    let p4 = Pipeline::new(d.scoring, AgathaConfig::agatha())
        .with_gpus(4)
        .align_batch(&d.tasks)
        .elapsed_ms;
    assert!(p4 < p1, "4 GPUs must be faster: {p4} vs {p1}");
    assert!(p1 / p4 > 1.5, "scaling should be visible: {:.2}x", p1 / p4);
}

#[test]
fn chunked_streaming_is_bit_identical_to_whole_batch() {
    // The tentpole equivalence: a real dataset driven through the
    // persistent streaming engine in bounded chunks must reproduce the
    // whole-batch results and aggregate stats exactly.
    let d = dataset(Tech::Clr, 47, 150);
    let p = Pipeline::new(d.scoring, AgathaConfig::agatha());
    let whole = p.align_batch(&d.tasks);
    // The final size spans the whole 150-task stream in one chunk (a bare
    // `0` is a usage error since the serve hardening).
    for chunk_size in [11, 64, 1024] {
        let mut engine = p.engine();
        let mut results = Vec::new();
        let mut chunks = 0;
        let mut run = engine.align_stream(d.tasks.iter().cloned(), chunk_size);
        for chunk in run.by_ref() {
            assert_eq!(chunk.offset, results.len());
            assert!(chunk.report.elapsed_ms >= 0.0);
            results.extend(chunk.report.results);
            chunks += 1;
        }
        let summary = run.finish();
        assert_eq!(results, whole.results, "chunk_size {chunk_size}");
        assert_eq!(summary.stats, whole.stats, "chunk_size {chunk_size}");
        assert_eq!(summary.tasks, d.tasks.len());
        assert_eq!(summary.chunks, chunks);
        assert!(summary.elapsed_ms > 0.0);
    }
}

#[test]
fn streaming_engine_reusable_across_datasets() {
    // One engine, several independent streams: workspace reuse across
    // heterogeneous workloads must not leak state between runs.
    let p = Pipeline::new(dataset(Tech::Clr, 3, 40).scoring, AgathaConfig::agatha());
    let mut engine = p.engine();
    let d = dataset(Tech::Clr, 3, 40);
    let first = engine.align_stream(d.tasks.iter().cloned(), 16).finish();
    let second = engine.align_stream(d.tasks.iter().cloned(), 16).finish();
    assert_eq!(first.stats, second.stats);
    assert_eq!(first.elapsed_ms, second.elapsed_ms);
}

#[test]
fn gpu_ordering_matches_paper() {
    // §5.8: A6000 > A100 > 2080Ti for this kernel.
    let d = dataset(Tech::HiFi, 9, 100);
    let ms = |spec: GpuSpec| {
        Pipeline::new(d.scoring, AgathaConfig::agatha())
            .with_spec(spec)
            .align_batch(&d.tasks)
            .elapsed_ms
    };
    let a6000 = ms(GpuSpec::rtx_a6000());
    let a100 = ms(GpuSpec::a100());
    let t2080 = ms(GpuSpec::rtx_2080ti());
    assert!(a6000 < a100, "A6000 {a6000} vs A100 {a100}");
    assert!(a100 < t2080, "A100 {a100} vs 2080Ti {t2080}");
}

#[test]
fn dpx_discussion_speedup() {
    // §6: DPX accelerates the compute term; the kernel should get faster
    // but far less than the raw instruction speedup (memory-bound).
    let d = dataset(Tech::Clr, 11, 80);
    let mut cfg = AgathaConfig::agatha();
    let plain = Pipeline::new(d.scoring, cfg.clone()).align_batch(&d.tasks).elapsed_ms;
    cfg.use_dpx = true;
    let dpx = Pipeline::new(d.scoring, cfg).align_batch(&d.tasks).elapsed_ms;
    assert!(dpx < plain, "DPX must help: {dpx} vs {plain}");
    assert!(plain / dpx < 2.2, "DPX gain is bounded by the memory share");
}

#[test]
fn scores_stable_across_devices_and_strategies() {
    let d = dataset(Tech::Ont, 23, 60);
    let base = Pipeline::new(d.scoring, AgathaConfig::agatha()).align_batch(&d.tasks);
    for spec in [GpuSpec::a100(), GpuSpec::rtx_2080ti(), GpuSpec::hopper_like()] {
        let rep =
            Pipeline::new(d.scoring, AgathaConfig::agatha()).with_spec(spec).align_batch(&d.tasks);
        assert_eq!(rep.results, base.results, "scores must not depend on the device");
    }
    for strat in [OrderingStrategy::Sorted, OrderingStrategy::UnevenBucketing] {
        let rep = Pipeline::new(d.scoring, AgathaConfig::agatha())
            .align_batch_with_strategy(&d.tasks, strat);
        assert_eq!(rep.results, base.results, "scores must not depend on scheduling");
    }
}
