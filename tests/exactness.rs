//! Workspace exactness contract: every MM2-target engine — the scalar
//! reference, the block-grid driver, the AGAThA kernel under every
//! configuration, and all MM2-target baselines — produces identical results
//! on identical inputs.

use agatha_suite::align::block::block_grid_align;
use agatha_suite::align::guided::guided_align;
use agatha_suite::align::{Scoring, Task};
use agatha_suite::baselines::{run_baseline, Baseline};
use agatha_suite::core::{kernel::run_task, AgathaConfig, Pipeline};
use agatha_suite::datasets::{generate, DatasetSpec, Tech};
use agatha_suite::gpu_sim::GpuSpec;

fn small_dataset(tech: Tech, seed: u64, reads: usize) -> agatha_suite::datasets::Dataset {
    generate(&DatasetSpec { name: format!("{} test", tech.name()), tech, seed, reads })
}

#[test]
fn agatha_matches_reference_on_generated_data() {
    for tech in [Tech::HiFi, Tech::Clr, Tech::Ont] {
        let d = small_dataset(tech, 42, 20);
        for t in &d.tasks {
            let want = guided_align(&t.reference, &t.query, &d.scoring);
            let got = run_task(t, &d.scoring, &AgathaConfig::agatha());
            assert!(
                got.result.same_alignment(&want),
                "{:?} task {}\n got {:?}\nwant {want:?}",
                tech,
                t.id,
                got.result
            );
        }
    }
}

#[test]
fn all_configurations_agree() {
    let d = small_dataset(Tech::Clr, 7, 12);
    let configs = [
        AgathaConfig::baseline(),
        AgathaConfig::baseline().with_rw(true),
        AgathaConfig::baseline().with_rw(true).with_sd(true),
        AgathaConfig::agatha(),
        AgathaConfig::agatha().with_slice_width(1),
        AgathaConfig::agatha().with_slice_width(7),
        AgathaConfig::agatha().with_slice_width(128),
        AgathaConfig::agatha().with_subwarp(16),
        AgathaConfig::agatha().with_subwarp(32),
    ];
    for t in &d.tasks {
        let want = guided_align(&t.reference, &t.query, &d.scoring);
        for cfg in &configs {
            let got = run_task(t, &d.scoring, cfg);
            assert!(
                got.result.same_alignment(&want),
                "config {cfg:?} task {}\n got {:?}\nwant {want:?}",
                t.id,
                got.result
            );
        }
    }
}

#[test]
fn block_grid_driver_agrees() {
    let d = small_dataset(Tech::Ont, 13, 10);
    for t in &d.tasks {
        let want = guided_align(&t.reference, &t.query, &d.scoring);
        let got = block_grid_align(&t.reference, &t.query, &d.scoring);
        assert!(got.same_alignment(&want), "task {}", t.id);
    }
}

#[test]
fn mm2_target_baselines_agree_with_cpu() {
    let d = small_dataset(Tech::Clr, 21, 16);
    let spec = GpuSpec::rtx_a6000();
    let cpu = run_baseline(Baseline::CpuSse4, &d.tasks, &d.scoring, &spec);
    for engine in [Baseline::Gasal2Mm2, Baseline::SalobaMm2, Baseline::ManymapMm2] {
        let rep = run_baseline(engine, &d.tasks, &d.scoring, &spec);
        assert_eq!(rep.scores, cpu.scores, "{}", engine.name());
    }
    let agatha = Pipeline::new(d.scoring, AgathaConfig::agatha()).align_batch(&d.tasks);
    let agatha_scores: Vec<i32> = agatha.results.iter().map(|r| r.score).collect();
    assert_eq!(agatha_scores, cpu.scores, "AGAThA");
}

#[test]
fn diff_target_engines_run_but_may_differ() {
    // Diff-Target engines have different semantics; they must still run and
    // produce plausible (non-negative) scores for every task.
    let d = small_dataset(Tech::HiFi, 33, 12);
    let spec = GpuSpec::rtx_a6000();
    for engine in
        [Baseline::Gasal2Diff, Baseline::SalobaDiff, Baseline::ManymapDiff, Baseline::Logan]
    {
        let rep = run_baseline(engine, &d.tasks, &d.scoring, &spec);
        assert_eq!(rep.scores.len(), d.tasks.len(), "{}", engine.name());
        assert!(rep.scores.iter().all(|&s| s >= 0), "{}", engine.name());
        assert!(rep.elapsed_ms > 0.0);
    }
}

#[test]
fn handcrafted_edge_cases() {
    let scorings = [
        Scoring::new(2, 4, 4, 2, 10, 4),
        Scoring::new(1, 9, 16, 1, 5, 1),
        Scoring::new(5, 1, 1, 1, 1000, 64),
    ];
    let pairs = [
        ("A", "A"),
        ("A", "T"),
        ("ACGT", "ACGTACGTACGTACGTACGTACGTACGT"),
        ("ACGTACGTACGTACGTACGTACGTACGT", "A"),
        ("NNNNNNNN", "ACGTACGT"),
        ("ACGTNACGT", "ACGTNACGT"),
    ];
    for s in &scorings {
        for (r, q) in pairs {
            let t = Task::from_strs(0, r, q);
            let want = guided_align(&t.reference, &t.query, s);
            for cfg in [AgathaConfig::baseline(), AgathaConfig::agatha()] {
                let got = run_task(&t, s, &cfg);
                assert!(
                    got.result.same_alignment(&want),
                    "pair ({r}, {q}) scoring {s:?} cfg {cfg:?}"
                );
            }
        }
    }
}
