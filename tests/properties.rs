//! Property-based tests over the core invariants (proptest).

use proptest::prelude::*;

use agatha_suite::align::banded::banded_align;
use agatha_suite::align::block::block_grid_align;
use agatha_suite::align::guided::guided_align;
use agatha_suite::align::matrix::full_align;
use agatha_suite::align::{
    BlockDim, FillPrecision, PackedSeq, ScoreModel, Scoring, Task, BLOSUM62,
};
use agatha_suite::core::bucketing::{build_warps, OrderingStrategy};
use agatha_suite::core::{kernel::run_task, AgathaConfig};
use agatha_suite::gpu_sim::sched;

fn dna(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..5, 1..max_len)
}

fn scoring_strategy() -> impl Strategy<Value = Scoring> {
    (1i32..6, 1i32..8, 0i32..10, 1i32..4, 1i32..80, 1i32..40)
        .prop_map(|(a, b, q, r, z, w)| Scoring::new(a, b, q, r, z, w))
}

/// Protein residue codes over the full BLOSUM62 alphabet (including the
/// ambiguous/pad residue `X` = 20).
fn protein(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..21, 1..max_len)
}

/// DNA with injected runs of the ambiguous base `N`: a base sequence plus
/// up to three (position, length) runs overwritten with code 4. Ambiguity
/// takes three different shapes across the fill tiers — the scalar fill
/// reads `S(N, ·)` per cell, the fixed-model SIMD kernels blend a splatted
/// `-ambig` penalty behind a comparison mask, and the i16 kernel does so in
/// half-width lanes — so N runs are exactly where a masking bug would
/// diverge them.
fn dna_with_n_runs(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    (dna(max_len), proptest::collection::vec((0usize..1usize << 16, 1usize..24), 1..4)).prop_map(
        |(mut seq, runs)| {
            for (pos, len) in runs {
                let start = pos % seq.len();
                let end = (start + len).min(seq.len());
                for c in &mut seq[start..end] {
                    *c = 4;
                }
            }
            seq
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// 4-bit packing is lossless.
    #[test]
    fn packing_roundtrip(codes in dna(400)) {
        let p = PackedSeq::from_codes(&codes);
        prop_assert_eq!(p.to_codes(), codes);
    }

    /// The guided reference with banding/termination disabled equals the
    /// full-table DP.
    #[test]
    fn unguided_equals_full_table(r in dna(80), q in dna(80)) {
        let s = Scoring::new(2, 4, 4, 2, Scoring::NO_ZDROP, Scoring::NO_BAND);
        let (rp, qp) = (PackedSeq::from_codes(&r), PackedSeq::from_codes(&q));
        let g = guided_align(&rp, &qp, &s);
        let f = full_align(&rp, &qp, &s);
        prop_assert_eq!(g.score, f.score);
        prop_assert_eq!((g.max.i, g.max.j), (f.max.i, f.max.j));
    }

    /// Row-major banded filling equals anti-diagonal filling.
    #[test]
    fn banded_row_major_equals_antidiagonal(r in dna(120), q in dna(120), w in 1i32..24) {
        let s = Scoring::new(2, 4, 4, 2, Scoring::NO_ZDROP, w);
        let (rp, qp) = (PackedSeq::from_codes(&r), PackedSeq::from_codes(&q));
        let a = guided_align(&rp, &qp, &s);
        let b = banded_align(&rp, &qp, &s);
        prop_assert!(a.same_alignment(&b), "a={a:?} b={b:?}");
    }

    /// The block-grid driver is exact for arbitrary scoring.
    #[test]
    fn block_grid_exact(r in dna(150), q in dna(150), s in scoring_strategy()) {
        let (rp, qp) = (PackedSeq::from_codes(&r), PackedSeq::from_codes(&q));
        let want = guided_align(&rp, &qp, &s);
        let got = block_grid_align(&rp, &qp, &s);
        prop_assert!(got.same_alignment(&want), "got={got:?} want={want:?}");
    }

    /// The AGAThA kernel is exact for arbitrary scoring and slice widths.
    #[test]
    fn kernel_exact(
        r in dna(150),
        q in dna(150),
        s in scoring_strategy(),
        slice in 1usize..20,
        subwarp_pow in 0u32..3,
    ) {
        let (rp, qp) = (PackedSeq::from_codes(&r), PackedSeq::from_codes(&q));
        let want = guided_align(&rp, &qp, &s);
        let task = Task { id: 0, reference: rp, query: qp };
        let cfg = AgathaConfig::agatha()
            .with_slice_width(slice)
            .with_subwarp(8 << subwarp_pow);
        let got = run_task(&task, &s, &cfg);
        prop_assert!(got.result.same_alignment(&want), "got={:?} want={want:?}", got.result);
        // Run-ahead never loses reference cells; the slack is one block of
        // whichever geometry the task resolved to.
        let b = u64::from(got.block_dim);
        prop_assert!(got.computed_cells() + b * b >= want.cells);
    }

    /// The SIMD (wavefront) and scalar block fills are bit-identical: same
    /// `GuidedResult`s, same unit schedules, same block counts — over random
    /// tasks × {banded, unbanded} × {z-drop on, off} × tilings (sliced
    /// diagonal widths and horizontal subwarp chunks).
    #[test]
    fn simd_scalar_bit_identity(
        r in dna(150),
        q in dna(150),
        s in scoring_strategy(),
        banded in proptest::bool::ANY,
        zdrop_on in proptest::bool::ANY,
        slice in 1usize..20,
        horizontal in proptest::bool::ANY,
        wide in proptest::bool::ANY,
    ) {
        let s = if banded { s } else { s.with_band(Scoring::NO_BAND) };
        let s = if zdrop_on { s } else { s.with_zdrop(Scoring::NO_ZDROP) };
        let (rp, qp) = (PackedSeq::from_codes(&r), PackedSeq::from_codes(&q));
        let task = Task { id: 0, reference: rp, query: qp };
        let cfg = if horizontal {
            AgathaConfig::baseline()
        } else {
            AgathaConfig::agatha().with_slice_width(slice)
        };
        // Pinned geometry: the adaptive choice depends on the fill mode, so
        // whole-run equality across fills is only defined at a fixed tiling.
        let cfg = cfg.with_block_dim(if wide { BlockDim::B16 } else { BlockDim::B8 });
        let scalar = run_task(&task, &s, &cfg.clone().with_simd_fill(false));
        let simd = run_task(&task, &s, &cfg.with_simd_fill(true));
        prop_assert_eq!(scalar, simd);
    }

    /// The three fill tiers — i16 wavefront, i32 wavefront, scalar — are
    /// bit-identical: full `TaskRun` equality (results, unit schedules,
    /// block counts) over random tasks × bands × z-drop × tilings. The
    /// `boost` factor scales the match score up to 4096×, pushing a share
    /// of cases past the i16 exactness gate so the i16→i32 auto-demotion
    /// path is exercised by the same equality.
    #[test]
    fn i16_i32_scalar_bit_identity(
        r in dna(150),
        q in dna(150),
        s in scoring_strategy(),
        boost in 0usize..3,
        banded in proptest::bool::ANY,
        zdrop_on in proptest::bool::ANY,
        slice in 1usize..20,
        horizontal in proptest::bool::ANY,
        wide in proptest::bool::ANY,
    ) {
        let mut s = s;
        if let ScoreModel::Fixed { ref mut match_score, .. } = s.model {
            *match_score *= [1, 64, 4096][boost];
        }
        let s = if banded { s } else { s.with_band(Scoring::NO_BAND) };
        let s = if zdrop_on { s } else { s.with_zdrop(Scoring::NO_ZDROP) };
        let (rp, qp) = (PackedSeq::from_codes(&r), PackedSeq::from_codes(&q));
        let task = Task { id: 0, reference: rp, query: qp };
        let cfg = if horizontal {
            AgathaConfig::baseline()
        } else {
            AgathaConfig::agatha().with_slice_width(slice)
        };
        // Pinned geometry, as in `simd_scalar_bit_identity`.
        let cfg = cfg.with_block_dim(if wide { BlockDim::B16 } else { BlockDim::B8 });
        let scalar = run_task(&task, &s, &cfg.clone().with_simd_fill(false));
        let wide = run_task(
            &task,
            &s,
            &cfg.clone().with_simd_fill(true).with_fill_precision(FillPrecision::I32),
        );
        let narrow = run_task(
            &task,
            &s,
            &cfg.with_simd_fill(true).with_fill_precision(FillPrecision::I16),
        );
        prop_assert_eq!(&scalar, &wide);
        prop_assert_eq!(&scalar, &narrow);
    }

    /// Block geometry is a pure tiling choice. At a pinned geometry every
    /// fill tier — i16 wavefront, i32 wavefront, scalar — stays fully
    /// bit-identical (whole `TaskRun` equality), over random tasks ×
    /// bands × z-drop × tilings. Across the two geometries the unit
    /// schedules and block counts legitimately differ (they describe the
    /// tiling), but the alignment result itself must not move.
    #[test]
    fn geometry_sweep_bit_identity(
        r in dna(150),
        q in dna(150),
        s in scoring_strategy(),
        banded in proptest::bool::ANY,
        zdrop_on in proptest::bool::ANY,
        slice in 1usize..20,
        horizontal in proptest::bool::ANY,
    ) {
        let s = if banded { s } else { s.with_band(Scoring::NO_BAND) };
        let s = if zdrop_on { s } else { s.with_zdrop(Scoring::NO_ZDROP) };
        let (rp, qp) = (PackedSeq::from_codes(&r), PackedSeq::from_codes(&q));
        let task = Task { id: 0, reference: rp, query: qp };
        let base = if horizontal {
            AgathaConfig::baseline()
        } else {
            AgathaConfig::agatha().with_slice_width(slice)
        };
        let mut per_geometry = Vec::new();
        for bd in [BlockDim::B8, BlockDim::B16] {
            let cfg = base.clone().with_block_dim(bd);
            let scalar = run_task(&task, &s, &cfg.clone().with_simd_fill(false));
            let i32_run = run_task(
                &task,
                &s,
                &cfg.clone().with_simd_fill(true).with_fill_precision(FillPrecision::I32),
            );
            let i16_run = run_task(
                &task,
                &s,
                &cfg.with_simd_fill(true).with_fill_precision(FillPrecision::I16),
            );
            prop_assert_eq!(&scalar, &i32_run);
            prop_assert_eq!(&scalar, &i16_run);
            per_geometry.push(scalar);
        }
        prop_assert_eq!(&per_geometry[0].result, &per_geometry[1].result);
    }

    /// The wavefront backend is a pure implementation choice: forcing every
    /// backend this machine supports (AVX-512 down to portable) must leave
    /// the whole `TaskRun` — results, unit schedules, block counts —
    /// bit-identical across backends × both block geometries × all three
    /// fill tiers, over random tasks × bands × z-drop × tilings. The
    /// `boost` factor pushes a share of cases past the i16 exactness gate
    /// so the i16→i32 demotion path is swept per backend too.
    #[test]
    fn backend_sweep_bit_identity(
        r in dna(150),
        q in dna(150),
        s in scoring_strategy(),
        boost in 0usize..3,
        banded in proptest::bool::ANY,
        zdrop_on in proptest::bool::ANY,
        slice in 1usize..20,
        horizontal in proptest::bool::ANY,
    ) {
        use agatha_suite::align::simd::{self, BackendChoice};
        let mut s = s;
        if let ScoreModel::Fixed { ref mut match_score, .. } = s.model {
            *match_score *= [1, 64, 4096][boost];
        }
        let s = if banded { s } else { s.with_band(Scoring::NO_BAND) };
        let s = if zdrop_on { s } else { s.with_zdrop(Scoring::NO_ZDROP) };
        let (rp, qp) = (PackedSeq::from_codes(&r), PackedSeq::from_codes(&q));
        let task = Task { id: 0, reference: rp, query: qp };
        let base = if horizontal {
            AgathaConfig::baseline()
        } else {
            AgathaConfig::agatha().with_slice_width(slice)
        };
        let restore = simd::backend_choice();
        for bd in [BlockDim::B8, BlockDim::B16] {
            // Pinned geometry: whole-run equality across backends is only
            // defined at one tiling (Auto's pick depends on the backend).
            let cfg = base.clone().with_block_dim(bd);
            let mut reference = None;
            for backend in simd::supported_backends() {
                simd::set_backend_choice(BackendChoice::Fixed(backend));
                let scalar = run_task(&task, &s, &cfg.clone().with_simd_fill(false));
                let i32_run = run_task(
                    &task,
                    &s,
                    &cfg.clone().with_simd_fill(true).with_fill_precision(FillPrecision::I32),
                );
                let i16_run = run_task(
                    &task,
                    &s,
                    &cfg.clone().with_simd_fill(true).with_fill_precision(FillPrecision::I16),
                );
                simd::set_backend_choice(restore);
                let want = reference.get_or_insert_with(|| scalar.clone());
                prop_assert_eq!(&*want, &scalar);
                prop_assert_eq!(&*want, &i32_run);
                prop_assert_eq!(&*want, &i16_run);
            }
        }
    }

    /// `geometry_sweep_bit_identity` under the substitution-matrix score
    /// model: random protein tasks (full BLOSUM62 alphabet including the
    /// pad residue X) through every fill tier × both block geometries, with
    /// full `TaskRun` equality at each pinned geometry. This is the gate
    /// re-derivation's proof obligation for matrix models: the i16/i32
    /// overflow gates use the matrix's declared ±bounds, and the SIMD
    /// matrix-lookup path (with and without the query profile) must be
    /// bit-identical to the scalar `S(x, y)` reads.
    #[test]
    fn matrix_geometry_sweep_bit_identity(
        r in protein(150),
        q in protein(150),
        banded in proptest::bool::ANY,
        zdrop_on in proptest::bool::ANY,
        slice in 1usize..20,
        horizontal in proptest::bool::ANY,
    ) {
        let s = Scoring::preset_blosum62();
        let s = if banded { s } else { s.with_band(Scoring::NO_BAND) };
        let s = if zdrop_on { s } else { s.with_zdrop(Scoring::NO_ZDROP) };
        let rp = PackedSeq::from_protein_codes(&r, &BLOSUM62);
        let qp = PackedSeq::from_protein_codes(&q, &BLOSUM62);
        let want = guided_align(&rp, &qp, &s);
        let task = Task { id: 0, reference: rp, query: qp };
        let base = if horizontal {
            AgathaConfig::baseline()
        } else {
            AgathaConfig::agatha().with_slice_width(slice)
        };
        let mut per_geometry = Vec::new();
        for bd in [BlockDim::B8, BlockDim::B16] {
            let cfg = base.clone().with_block_dim(bd);
            let scalar = run_task(&task, &s, &cfg.clone().with_simd_fill(false));
            let i32_run = run_task(
                &task,
                &s,
                &cfg.clone().with_simd_fill(true).with_fill_precision(FillPrecision::I32),
            );
            let i16_run = run_task(
                &task,
                &s,
                &cfg.with_simd_fill(true).with_fill_precision(FillPrecision::I16),
            );
            prop_assert_eq!(&scalar, &i32_run);
            prop_assert_eq!(&scalar, &i16_run);
            per_geometry.push(scalar);
        }
        prop_assert_eq!(&per_geometry[0].result, &per_geometry[1].result);
        prop_assert!(per_geometry[0].result.same_alignment(&want),
            "kernel={:?} want={want:?}", per_geometry[0].result);
    }

    /// Ambiguous-base (`N`) scoring is bit-identical across all three fill
    /// tiers: sequences with injected N runs through scalar, i32 wavefront
    /// and i16 wavefront fills at both geometries, full `TaskRun` equality.
    /// The ambiguity penalty is varied (including 0) because the SIMD
    /// kernels apply it by blending a splatted constant where the scalar
    /// fill reads the score function directly.
    #[test]
    fn ambiguous_base_tiers_bit_identity(
        r in dna_with_n_runs(150),
        q in dna_with_n_runs(150),
        s in scoring_strategy(),
        ambig in 0i32..3,
        banded in proptest::bool::ANY,
        zdrop_on in proptest::bool::ANY,
        wide in proptest::bool::ANY,
    ) {
        let mut s = s;
        if let ScoreModel::Fixed { ambig: ref mut a, .. } = s.model {
            *a = ambig;
        }
        let s = if banded { s } else { s.with_band(Scoring::NO_BAND) };
        let s = if zdrop_on { s } else { s.with_zdrop(Scoring::NO_ZDROP) };
        let (rp, qp) = (PackedSeq::from_codes(&r), PackedSeq::from_codes(&q));
        let task = Task { id: 0, reference: rp, query: qp };
        let cfg = AgathaConfig::agatha()
            .with_block_dim(if wide { BlockDim::B16 } else { BlockDim::B8 });
        let scalar = run_task(&task, &s, &cfg.clone().with_simd_fill(false));
        let i32_run = run_task(
            &task,
            &s,
            &cfg.clone().with_simd_fill(true).with_fill_precision(FillPrecision::I32),
        );
        let i16_run = run_task(
            &task,
            &s,
            &cfg.with_simd_fill(true).with_fill_precision(FillPrecision::I16),
        );
        prop_assert_eq!(&scalar, &i32_run);
        prop_assert_eq!(&scalar, &i16_run);
    }

    /// The guided score is monotone in the band width (a wider band can
    /// only see more alignments) when termination is disabled.
    #[test]
    fn band_monotonicity(r in dna(100), q in dna(100), w in 1i32..16) {
        let s1 = Scoring::new(2, 4, 4, 2, Scoring::NO_ZDROP, w);
        let s2 = s1.with_band(w * 2);
        let (rp, qp) = (PackedSeq::from_codes(&r), PackedSeq::from_codes(&q));
        let narrow = guided_align(&rp, &qp, &s1);
        let wide = guided_align(&rp, &qp, &s2);
        prop_assert!(wide.score >= narrow.score);
    }

    /// Every bucketing strategy is a permutation: each task assigned
    /// exactly once.
    #[test]
    fn bucketing_partitions(
        workloads in proptest::collection::vec(1u64..10_000, 1..200),
        n_pow in 0u32..3,
        g in 1usize..4,
    ) {
        let n = 1usize << n_pow;
        for strat in [
            OrderingStrategy::Original,
            OrderingStrategy::Sorted,
            OrderingStrategy::UnevenBucketing,
        ] {
            let warps = build_warps(&workloads, n, g, strat);
            let mut seen = vec![false; workloads.len()];
            for w in &warps {
                for i in w.task_indices() {
                    prop_assert!(!seen[i], "{strat:?}: task {i} twice");
                    seen[i] = true;
                }
            }
            prop_assert!(seen.iter().all(|&x| x), "{strat:?}: unassigned task");
        }
    }

    /// List-scheduling makespan respects the classic bounds.
    #[test]
    fn makespan_bounds(
        lats in proptest::collection::vec(0.0f64..1e6, 1..200),
        slots in 1usize..64,
    ) {
        let m = sched::makespan_cycles(&lats, slots);
        let total: f64 = lats.iter().sum();
        let max = lats.iter().copied().fold(0.0, f64::max);
        prop_assert!(m <= total + 1e-6);
        prop_assert!(m >= max - 1e-6);
        prop_assert!(m >= total / slots as f64 - 1e-6);
    }

    /// Z-drop can only ever reduce computed work, never change the scores'
    /// validity: the terminated score equals the untermiated score whenever
    /// no termination fired.
    #[test]
    fn zdrop_consistency(r in dna(100), q in dna(100), z in 1i32..200) {
        let with = Scoring::new(2, 4, 4, 2, z, 24);
        let without = with.with_zdrop(Scoring::NO_ZDROP);
        let (rp, qp) = (PackedSeq::from_codes(&r), PackedSeq::from_codes(&q));
        let a = guided_align(&rp, &qp, &with);
        let b = guided_align(&rp, &qp, &without);
        prop_assert!(a.cells <= b.cells);
        if !a.stop.z_dropped() {
            prop_assert_eq!(a.score, b.score);
        } else {
            prop_assert!(a.score <= b.score);
        }
    }
}
