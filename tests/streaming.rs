//! Streaming-path properties: cross-chunk carry-over packing and the
//! prefetched reader must be invisible in results — bit-identical to the
//! whole-batch aligner at every chunk size and thread count — and a source
//! that fails mid-stream must surface a clean [`StreamError`], never a
//! reader-thread panic.

use proptest::prelude::*;

use agatha_suite::align::{Scoring, Task};
use agatha_suite::core::{AgathaConfig, Pipeline, StreamOptions};

/// Deterministic task mix (LCG): lengths vary around `len_base`, mismatch
/// sprinkled every 19 bases, so warps carry genuinely uneven workloads.
fn lcg_tasks(count: usize, len_base: usize, seed: u64) -> Vec<Task> {
    let mut tasks = Vec::new();
    let mut x = seed | 1;
    for id in 0..count {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let len = len_base + (x >> 33) as usize % len_base;
        let mut r = String::new();
        let mut q = String::new();
        for k in 0..len {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let c = ['A', 'C', 'G', 'T'][(x >> 33) as usize % 4];
            r.push(c);
            q.push(if k % 19 == 0 { 'T' } else { c });
        }
        tasks.push(Task::from_strs(id as u32, &r, &q));
    }
    tasks
}

fn pipeline(threads: usize) -> Pipeline {
    let mut p = Pipeline::new(Scoring::new(2, 4, 4, 2, 60, 16), AgathaConfig::agatha());
    p.host_threads = threads;
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whole-batch, plain streaming, carry-over streaming and prefetched
    /// carry-over streaming all produce the same results and stats.
    #[test]
    fn stream_carryover_bit_identity(
        count in 1usize..40,
        seed in 1u64..1_000_000,
        chunk_ix in 0usize..3,
        threads in 1usize..3,
    ) {
        let chunk_size = [1usize, 7, 64][chunk_ix];
        let tasks = lcg_tasks(count, 60, seed);
        let whole = pipeline(threads).align_batch(&tasks);

        for (carry, prefetch) in [(false, 0usize), (true, 0), (false, 2), (true, 2)] {
            let mut engine = pipeline(threads).engine();
            let opts = StreamOptions::new(chunk_size).carry_over(carry);
            let mut results = Vec::new();
            let summary = if prefetch > 0 {
                let source = tasks.clone().into_iter().map(Ok::<Task, String>);
                let mut run = engine.align_stream_prefetched(source, prefetch, opts);
                for chunk in run.by_ref() {
                    results.extend(chunk.report.results);
                }
                run.finish_checked().expect("no source errors")
            } else {
                let mut run = engine.align_stream_with(tasks.iter().cloned(), opts);
                for chunk in run.by_ref() {
                    results.extend(chunk.report.results);
                }
                run.finish()
            };
            prop_assert_eq!(&results, &whole.results);
            prop_assert_eq!(&summary.stats, &whole.stats);
            prop_assert_eq!(summary.tasks, tasks.len());
        }
    }
}

#[test]
fn midstream_source_error_is_a_clean_stream_error() {
    // Five good tasks, then the source fails. With chunk 2 the first two
    // chunks align normally; the error lands on the chunk it interrupted
    // and `finish_checked` reports it instead of panicking the reader.
    let good = lcg_tasks(5, 50, 97);
    let source = good
        .clone()
        .into_iter()
        .map(Ok)
        .chain(std::iter::once(Err("fasta truncated mid-record".to_string())));
    let mut engine = pipeline(2).engine();
    let mut run = engine.align_stream_prefetched(source, 2, StreamOptions::new(2));
    let mut results = Vec::new();
    for chunk in run.by_ref() {
        results.extend(chunk.report.results);
    }
    let err = run.finish_checked().expect_err("source failure must surface");
    assert!(err.message.contains("fasta truncated"), "{err}");
    assert_eq!(err.offset, 5, "all five good tasks precede the failure");
    assert!(results.len() >= 4, "complete chunks before the error still align");
}
