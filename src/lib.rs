//! # agatha-suite
//!
//! Umbrella crate for the AGAThA reproduction workspace: re-exports the
//! public surface of every member crate so examples and integration tests
//! have one import root, and is the home of the workspace-level `examples/`
//! and `tests/`.
//!
//! Start with [`align`] for the alignment substrate, [`core`] for the
//! AGAThA kernel and pipeline, [`baselines`] for the comparator engines,
//! [`datasets`] for synthetic workloads, and [`gpu_sim`] for the execution
//! model.

pub use agatha_align as align;
pub use agatha_baselines as baselines;
pub use agatha_core as core;
pub use agatha_datasets as datasets;
pub use agatha_gpu_sim as gpu_sim;
pub use agatha_io as io;

/// Convenience: align one pair of ASCII sequences with AGAThA's exact
/// guided semantics and default long-read scoring.
pub fn quick_align(reference: &str, query: &str) -> agatha_align::GuidedResult {
    let r = agatha_align::PackedSeq::from_str_seq(reference);
    let q = agatha_align::PackedSeq::from_str_seq(query);
    agatha_align::guided::guided_align(&r, &q, &agatha_align::Scoring::default())
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_align_works() {
        let r = super::quick_align("ACGTACGTACGT", "ACGTACGTACGT");
        assert_eq!(r.score, 24);
    }
}
