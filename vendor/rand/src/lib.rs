//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the exact API surface it consumes: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`, `gen_range` (half-open and inclusive integer/float ranges) and
//! `gen_bool`. The generator is deterministic by construction — the same
//! seed always yields the same stream on every platform — which is exactly
//! what the dataset generators and tests rely on.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution in real
/// `rand`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Scalar types usable as `gen_range` bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[low, high)`; callers guarantee `low < high`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]`; callers guarantee `low <= high`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let unit = <$t as Standard>::sample_standard(rng);
                let v = low + (high - low) * unit;
                // Guard against rounding up to the excluded bound.
                if v >= high { low } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let unit = <$t as Standard>::sample_standard(rng);
                low + (high - low) * unit
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "gen_range: empty range");
        T::sample_inclusive(rng, low, high)
    }
}

/// User-facing extension trait, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable constructors.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 256-bit generator (xoshiro256** core, SplitMix64
    /// seeding) — a fixed, portable stream per seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
