//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored shim
//! implements the benchmark API the workspace uses — `criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `Throughput`, `BenchmarkId` and `Bencher::iter` —
//! backed by a simple wall-clock timer: warm-up, then timed batches, then
//! a mean/min/max report to stdout. It honors `--bench` (ignored) and
//! filters positional arguments like the real harness, so
//! `cargo bench -- <filter>` works.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-exported so benches can `criterion::black_box` values.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation; recorded and echoed in the report.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier for parameterized benchmarks.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to the bench closure.
pub struct Bencher<'a> {
    cfg: &'a Config,
    /// Mean/min/max nanoseconds per iteration, filled by `iter`.
    report: Option<(f64, f64, f64)>,
}

impl Bencher<'_> {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget elapses.
        let warm_deadline = Instant::now() + self.cfg.warm_up_time;
        while Instant::now() < warm_deadline {
            std_black_box(routine());
        }

        // Calibrate a batch size that takes roughly 1/sample_size of the
        // measurement budget.
        let t0 = Instant::now();
        std_black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = self.cfg.measurement_time / self.cfg.sample_size as u32;
        let batch = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;

        let mut samples = Vec::with_capacity(self.cfg.sample_size);
        let deadline = Instant::now() + self.cfg.measurement_time;
        for _ in 0..self.cfg.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            samples.push(start.elapsed().as_secs_f64() * 1e9 / batch as f64);
            if Instant::now() > deadline {
                break;
            }
        }

        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(0.0f64, f64::max);
        self.report = Some((mean, min, max));
    }
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

/// Top-level harness state.
#[derive(Default)]
pub struct Criterion {
    cfg: Config,
    filter: Option<String>,
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.cfg.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.cfg.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.cfg.warm_up_time = t;
        self
    }

    /// Parse the CLI arguments cargo-bench passes through: `--bench` (noise
    /// from the harness protocol) and an optional positional name filter.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1).peekable();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--test" => {}
                s if s.starts_with("--") => {
                    // Swallow `--flag value` pairs we don't implement.
                    if let Some(v) = args.peek() {
                        if !v.starts_with("--") {
                            args.next();
                        }
                    }
                }
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            overridden: Config::default(),
            use_override: false,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, name: &str, f: F) -> &mut Self {
        let cfg = self.cfg.clone();
        let filter = self.filter.clone();
        run_one(&cfg, &filter, name, None, f);
        self
    }
}

/// A named group of related benchmarks sharing throughput annotations.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    overridden: Config,
    use_override: bool,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.overridden = self.effective();
        self.overridden.sample_size = n;
        self.use_override = true;
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.overridden = self.effective();
        self.overridden.measurement_time = t;
        self.use_override = true;
        self
    }

    fn effective(&self) -> Config {
        if self.use_override {
            self.overridden.clone()
        } else {
            self.criterion.cfg.clone()
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&self.effective(), &self.criterion.filter, &full, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&self.effective(), &self.criterion.filter, &full, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(
    cfg: &Config,
    filter: &Option<String>,
    name: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    if let Some(pat) = filter {
        if !name.contains(pat.as_str()) {
            return;
        }
    }
    let mut b = Bencher { cfg, report: None };
    f(&mut b);
    match b.report {
        Some((mean, min, max)) => {
            let rate = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!("  {:>12.0} elem/s", n as f64 / (mean * 1e-9) / 1.0)
                }
                Some(Throughput::Bytes(n)) => {
                    format!("  {:>12.0} B/s", n as f64 / (mean * 1e-9))
                }
                None => String::new(),
            };
            println!(
                "bench {name:<48} mean {:>12} min {:>12} max {:>12}{rate}",
                fmt_ns(mean),
                fmt_ns(min),
                fmt_ns(max)
            );
        }
        None => println!("bench {name:<48} (no measurement: Bencher::iter never called)"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declare a group of benchmark functions. Both the simple list form and
/// the `name/config/targets` form are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            criterion = criterion.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Entry point: run every declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_produces_a_report() {
        let cfg = Config {
            sample_size: 3,
            measurement_time: Duration::from_millis(30),
            warm_up_time: Duration::from_millis(5),
        };
        let mut b = Bencher { cfg: &cfg, report: None };
        b.iter(|| 1u64 + 1);
        let (mean, min, max) = b.report.expect("report filled");
        assert!(mean > 0.0 && min > 0.0 && max >= min);
    }

    #[test]
    fn group_runs_and_respects_filter() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1));
        c.filter = Some("nomatch".into());
        let mut ran = false;
        let mut g = c.benchmark_group("g");
        g.bench_function("skipped", |b| {
            ran = true;
            b.iter(|| 0u8);
        });
        g.finish();
        assert!(!ran, "filtered-out benchmark must not run");
    }
}
