//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: range and
//! collection strategies, tuple composition, `prop_map`, the `proptest!`
//! macro with `#![proptest_config(...)]`, and the `prop_assert*` macros.
//!
//! Sampling is **fully deterministic**: each test's RNG is seeded from a
//! fixed workspace seed (overridable with `PROPTEST_SEED`) hashed with the
//! test name, so `cargo test -q` is reproducible in CI by construction.
//! Failures found while exploring other seeds are pinned in the checked-in
//! `proptest-regressions/` corpus, which [`run_proptest`] replays before
//! the randomized cases (see that directory's README). There is no
//! shrinking: a failing case reports its seed so it can be replayed and
//! pinned exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Error type carried by `prop_assert*` failures.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    pub message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Mirror of `proptest::test_runner::Config` — only the knobs we use.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Workspace-wide base seed; override with `PROPTEST_SEED=<u64>` to explore
/// a different deterministic universe.
pub fn base_seed() -> u64 {
    match std::env::var("PROPTEST_SEED") {
        Ok(s) => s.parse().expect("PROPTEST_SEED must be a u64"),
        Err(_) => 0xA6A7_0001,
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Per-case RNG seeds pinned in a checked-in regression file. Mirrors real
/// proptest's `proptest-regressions/` corpus: every line of
/// `proptest-regressions/<test_name>.txt` (resolved against the test
/// binary's working directory, i.e. the package root) that parses as a
/// decimal or `0x`-prefixed `u64` is replayed *before* the randomized
/// cases. Blank lines and `#` comments are ignored.
pub fn regression_seeds(test_name: &str) -> Vec<u64> {
    let path = std::path::Path::new("proptest-regressions").join(format!("{test_name}.txt"));
    let Ok(content) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    parse_regression_seeds(&content)
}

fn parse_regression_seeds(content: &str) -> Vec<u64> {
    content
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| match l.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16).ok(),
            None => l.parse().ok(),
        })
        .collect()
}

/// Drive one property: first replay any checked-in regression seeds, then
/// run `cases` deterministic samples, panicking with a replayable case
/// seed on the first failure.
pub fn run_proptest<F>(config: &ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    for seed in regression_seeds(test_name) {
        let mut rng = TestRng::seed_from_u64(seed);
        if let Err(e) = case(&mut rng) {
            panic!(
                "proptest regression in `{test_name}` (pinned seed {seed:#x} from \
                 proptest-regressions/{test_name}.txt): {}",
                e.message
            );
        }
    }
    let seed = base_seed() ^ fnv1a(test_name.as_bytes());
    for i in 0..config.cases {
        let case_seed = seed.wrapping_add(i as u64);
        let mut rng = TestRng::seed_from_u64(case_seed);
        if let Err(e) = case(&mut rng) {
            panic!(
                "proptest failure in `{test_name}` (case {i}/{}, case seed {case_seed:#x}): {} \
                 — pin it by adding the case seed to proptest-regressions/{test_name}.txt",
                config.cases, e.message
            );
        }
    }
}

/// A generator of values. Unlike real proptest there is no value tree /
/// shrinking; `generate` samples one value.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_filter` adapter: rejection-samples with a bounded retry budget.
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter: rejected 1000 consecutive samples");
    }
}

/// A fixed value is a strategy (`Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Uniform boolean strategy (mirror of `proptest::bool::Any`).
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Mirror of `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_range(0u8..2) == 1
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "collection::vec: empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
    pub use rand::{Rng, RngCore, SeedableRng};
}

/// The subset of the `proptest!` macro grammar the workspace uses: an
/// optional `#![proptest_config(..)]` header followed by `#[test]` fns whose
/// arguments are `ident in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_proptest(&config, stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                    let mut __proptest_case =
                        || -> ::core::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::core::result::Result::Ok(())
                        };
                    __proptest_case()
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn regression_file_format() {
        let seeds = super::parse_regression_seeds(
            "# pinned failures\n\n42\n0xdeadbeef\nnot a seed\n  7  \n",
        );
        assert_eq!(seeds, vec![42, 0xdeadbeef, 7]);
        assert!(super::regression_seeds("no_such_test_anywhere").is_empty());
    }

    #[test]
    fn deterministic_across_runs() {
        let strat = (0u8..5, collection::vec(0u64..100, 1..10));
        let mut a = TestRng::seed_from_u64(9);
        let mut b = TestRng::seed_from_u64(9);
        for _ in 0..32 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(v in collection::vec(0u8..4, 1..50), x in 1i32..10) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().all(|&b| b < 4));
            prop_assert!((1..10).contains(&x));
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }
}
