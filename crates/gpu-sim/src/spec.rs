//! GPU hardware descriptions for the devices the paper evaluates (§5.1,
//! §5.8): NVIDIA RTX A6000 (primary), A100, and RTX 2080Ti.

/// Static description of one GPU model.
///
/// Only properties the execution model consumes are listed; they are public
/// so sensitivity studies can construct hypothetical devices.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Streaming multiprocessor count.
    pub sm_count: u32,
    /// Total CUDA cores; `cuda_cores / 32` concurrent warp slots is the
    /// effective parallel width used for makespan scheduling (§5.8 explains
    /// the A6000 > A100 result by CUDA core count).
    pub cuda_cores: u32,
    /// Boost clock in GHz, converting cycles to milliseconds.
    pub clock_ghz: f64,
    /// Shared memory per SM in bytes (bounds the LMB; §4.1).
    pub shared_mem_per_sm: u32,
    /// Whether `__reduce_max_sync`-style warp reductions exist. The RTX
    /// 2080Ti predates them, so reductions fall back to shared memory
    /// ("we replaced them with shared memory access", §5.8).
    pub has_warp_reduce: bool,
    /// Whether Hopper-style DPX min/max instructions exist (§6 discussion).
    pub has_dpx: bool,
}

impl GpuSpec {
    /// NVIDIA RTX A6000 — the paper's primary evaluation GPU.
    pub fn rtx_a6000() -> GpuSpec {
        GpuSpec {
            name: "RTX A6000",
            sm_count: 84,
            cuda_cores: 10752,
            clock_ghz: 1.80,
            shared_mem_per_sm: 100 << 10,
            has_warp_reduce: true,
            has_dpx: false,
        }
    }

    /// NVIDIA A100 (SXM4) — datacenter GPU with fewer CUDA cores.
    pub fn a100() -> GpuSpec {
        GpuSpec {
            name: "A100",
            sm_count: 108,
            cuda_cores: 6912,
            clock_ghz: 1.41,
            shared_mem_per_sm: 164 << 10,
            has_warp_reduce: true,
            has_dpx: false,
        }
    }

    /// NVIDIA RTX 2080Ti — Turing, no warp-reduce intrinsics.
    pub fn rtx_2080ti() -> GpuSpec {
        GpuSpec {
            name: "RTX 2080Ti",
            sm_count: 68,
            cuda_cores: 4352,
            clock_ghz: 1.545,
            shared_mem_per_sm: 64 << 10,
            has_warp_reduce: false,
            has_dpx: false,
        }
    }

    /// Hypothetical Hopper-class device with DPX instructions (for the §6
    /// discussion ablation).
    pub fn hopper_like() -> GpuSpec {
        GpuSpec {
            name: "Hopper-like (DPX)",
            sm_count: 114,
            cuda_cores: 14592,
            clock_ghz: 1.78,
            shared_mem_per_sm: 228 << 10,
            has_warp_reduce: true,
            has_dpx: true,
        }
    }

    /// Concurrent warp slots the list scheduler fills (one `1/SIM_SCALE`
    /// slice of the physical device; see [`crate::SIM_SCALE`]).
    #[inline]
    pub fn warp_slots(&self) -> usize {
        (self.cuda_cores / 32 / crate::SIM_SCALE).max(1) as usize
    }

    /// Convert simulated cycles to milliseconds.
    #[inline]
    pub fn cycles_to_ms(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warp_slots_follow_core_count() {
        assert_eq!(GpuSpec::rtx_a6000().warp_slots(), 10);
        assert_eq!(GpuSpec::a100().warp_slots(), 6);
        assert_eq!(GpuSpec::rtx_2080ti().warp_slots(), 4);
    }

    #[test]
    fn a6000_outranks_a100_in_parallel_width() {
        // §5.8: "A6000 performs better due to having a larger cuda core count".
        assert!(GpuSpec::rtx_a6000().warp_slots() > GpuSpec::a100().warp_slots());
    }

    #[test]
    fn cycles_to_ms_scales_with_clock() {
        let spec = GpuSpec::rtx_a6000();
        assert!((spec.cycles_to_ms(1.8e6) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn turing_lacks_warp_reduce() {
        assert!(!GpuSpec::rtx_2080ti().has_warp_reduce);
        assert!(GpuSpec::rtx_a6000().has_warp_reduce);
    }
}
