//! Warp-to-slot scheduling: converts per-warp latencies into a kernel
//! makespan, and splits batches across multiple GPUs (§5.8).
//!
//! Warps are placed in submission order onto the device's concurrent warp
//! slots ("existing approaches assign tasks to warps in the order in which
//! the input is given", §3.1) — the slot that frees earliest takes the next
//! warp. This is classic list scheduling; with a long-tailed latency
//! distribution the makespan is dominated by straggler warps, which is the
//! inter-warp imbalance uneven bucketing attacks.

use crate::spec::GpuSpec;

/// Outcome of scheduling one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceReport {
    /// Kernel makespan in simulated cycles.
    pub makespan_cycles: f64,
    /// Sum of warp latencies (the work the device actually did).
    pub busy_cycles: f64,
    /// `busy / (makespan × slots)` — fraction of slot-time doing work.
    pub utilization: f64,
    /// Number of warps scheduled.
    pub warps: usize,
    /// Slots used.
    pub slots: usize,
}

impl DeviceReport {
    /// Makespan in milliseconds on the given device.
    pub fn ms(&self, spec: &GpuSpec) -> f64 {
        spec.cycles_to_ms(self.makespan_cycles)
    }
}

/// List-schedule warp latencies (in submission order) onto `slots`
/// concurrent slots; returns the makespan in cycles.
pub fn makespan_cycles(latencies: &[f64], slots: usize) -> f64 {
    schedule(latencies, slots).makespan_cycles
}

/// Full scheduling report.
pub fn schedule(latencies: &[f64], slots: usize) -> DeviceReport {
    let mut sched = SlotSchedule::new(slots);
    sched.extend(latencies);
    sched.report()
}

/// Incrementally foldable list schedule: feed warp latencies in submission
/// order — across any chunk boundaries — and [`SlotSchedule::report`]
/// produces exactly what the pooled [`schedule`] would for the concatenated
/// sequence ([`schedule`] itself is implemented on top of this). State is
/// O(slots), so a streaming consumer can fold per-chunk latencies without
/// retaining the whole stream's latency vector.
#[derive(Debug, Clone)]
pub struct SlotSchedule {
    slots: usize,
    // Binary-heap of slot free times (min first). With up to ~10⁵ warps and
    // ~10² slots this is comfortably fast.
    free: std::collections::BinaryHeap<std::cmp::Reverse<F64Ord>>,
    busy: f64,
    makespan: f64,
    warps: usize,
}

impl SlotSchedule {
    /// An empty schedule over `slots` concurrent warp slots.
    pub fn new(slots: usize) -> SlotSchedule {
        assert!(slots > 0, "device must have at least one warp slot");
        SlotSchedule {
            slots,
            free: std::collections::BinaryHeap::with_capacity(slots),
            busy: 0.0,
            makespan: 0.0,
            warps: 0,
        }
    }

    /// Place the next warp (submission order) on the earliest-free slot.
    pub fn push(&mut self, lat: f64) {
        debug_assert!(lat >= 0.0, "negative warp latency");
        // Slots materialise lazily: until every physical slot has taken a
        // warp, starting on a fresh slot is the same as popping one of the
        // pooled schedule's all-zero initial entries.
        let free = if self.free.len() < self.slots {
            0.0
        } else {
            let std::cmp::Reverse(F64Ord(free)) = self.free.pop().expect("slot heap never empty");
            free
        };
        let end = free + lat;
        self.busy += lat;
        self.makespan = self.makespan.max(end);
        self.warps += 1;
        self.free.push(std::cmp::Reverse(F64Ord(end)));
    }

    /// [`SlotSchedule::push`] for a whole chunk of latencies.
    pub fn extend(&mut self, latencies: &[f64]) {
        for &lat in latencies {
            self.push(lat);
        }
    }

    /// Warps folded so far.
    pub fn warps(&self) -> usize {
        self.warps
    }

    /// The schedule of everything pushed so far. Non-consuming: fold more
    /// warps afterwards and report again.
    pub fn report(&self) -> DeviceReport {
        let slots_used = self.slots.min(self.warps.max(1));
        let denom = self.makespan * slots_used as f64;
        DeviceReport {
            makespan_cycles: self.makespan,
            busy_cycles: self.busy,
            utilization: if denom > 0.0 { self.busy / denom } else { 1.0 },
            warps: self.warps,
            slots: slots_used,
        }
    }
}

/// Split `items` across `gpus` devices in contiguous equal shares
/// ("distributing equal numbers of alignment tasks to each GPU", §5.8).
/// Returns the per-GPU index ranges.
pub fn split_even(items: usize, gpus: usize) -> Vec<std::ops::Range<usize>> {
    assert!(gpus > 0);
    let base = items / gpus;
    let extra = items % gpus;
    let mut out = Vec::with_capacity(gpus);
    let mut start = 0;
    for g in 0..gpus {
        let len = base + usize::from(g < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Schedule each device's contiguous share separately, returning one
/// [`DeviceReport`] per GPU (in device order).
pub fn multi_gpu_schedule(
    latencies: &[f64],
    slots_per_gpu: usize,
    gpus: usize,
) -> Vec<DeviceReport> {
    split_even(latencies.len(), gpus)
        .into_iter()
        .map(|r| schedule(&latencies[r], slots_per_gpu))
        .collect()
}

/// Multi-GPU makespan: each device schedules its contiguous share; the
/// kernel finishes when the slowest device does.
pub fn multi_gpu_makespan(latencies: &[f64], slots_per_gpu: usize, gpus: usize) -> f64 {
    multi_gpu_schedule(latencies, slots_per_gpu, gpus)
        .iter()
        .map(|d| d.makespan_cycles)
        .fold(0.0, f64::max)
}

/// Total-order wrapper for finite f64 latencies.
#[derive(Debug, Clone, Copy, PartialEq)]
struct F64Ord(f64);

impl Eq for F64Ord {}
impl PartialOrd for F64Ord {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for F64Ord {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("latencies must be finite")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_slot_sums() {
        let m = makespan_cycles(&[3.0, 4.0, 5.0], 1);
        assert!((m - 12.0).abs() < 1e-12);
    }

    #[test]
    fn enough_slots_takes_max() {
        let m = makespan_cycles(&[3.0, 4.0, 5.0], 8);
        assert!((m - 5.0).abs() < 1e-12);
    }

    #[test]
    fn bounds_hold() {
        let lats: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        let slots = 7;
        let m = makespan_cycles(&lats, slots);
        let total: f64 = lats.iter().sum();
        let max = 100.0;
        assert!(m >= total / slots as f64 - 1e-9);
        assert!(m >= max);
        assert!(m <= total);
    }

    #[test]
    fn straggler_dominates() {
        // 63 tiny warps + 1 huge one on 8 slots: makespan ≈ the huge warp.
        let mut lats = vec![1.0; 63];
        lats.push(1000.0);
        let m = makespan_cycles(&lats, 8);
        assert!((1000.0..1100.0).contains(&m));
    }

    #[test]
    fn order_matters_for_list_scheduling() {
        // Long job last leaves it as the straggler; long job first overlaps.
        let short_first = makespan_cycles(&[1.0, 1.0, 1.0, 10.0], 2);
        let long_first = makespan_cycles(&[10.0, 1.0, 1.0, 1.0], 2);
        assert!(long_first <= short_first);
    }

    #[test]
    fn utilization_in_unit_range() {
        let rep = schedule(&[5.0, 1.0, 1.0, 1.0], 2);
        assert!(rep.utilization > 0.0 && rep.utilization <= 1.0);
    }

    #[test]
    fn split_even_covers_all() {
        let parts = split_even(10, 4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0], 0..3);
        assert_eq!(parts[1], 3..6);
        assert_eq!(parts[2], 6..8);
        assert_eq!(parts[3], 8..10);
    }

    #[test]
    fn multi_gpu_schedule_agrees_with_makespan() {
        let lats: Vec<f64> = (1..=37).map(|x| (x % 11) as f64 + 1.0).collect();
        let reports = multi_gpu_schedule(&lats, 4, 3);
        assert_eq!(reports.len(), 3);
        let worst = reports.iter().map(|d| d.makespan_cycles).fold(0.0, f64::max);
        assert_eq!(worst, multi_gpu_makespan(&lats, 4, 3));
        let warps: usize = reports.iter().map(|d| d.warps).sum();
        assert_eq!(warps, lats.len());
    }

    #[test]
    fn multi_gpu_scales_down() {
        let lats = vec![10.0; 64];
        let one = multi_gpu_makespan(&lats, 4, 1);
        let four = multi_gpu_makespan(&lats, 4, 4);
        assert!(four < one);
        assert!((one / four - 4.0).abs() < 0.5, "expected ~4x, got {}", one / four);
    }

    #[test]
    fn empty_batch() {
        assert_eq!(makespan_cycles(&[], 8), 0.0);
    }

    #[test]
    fn incremental_fold_matches_pooled_schedule() {
        // Folding the latency sequence chunk by chunk — at every possible
        // split point, including degenerate empty chunks — must reproduce
        // the pooled schedule exactly: this is what lets the streaming
        // engine drop its warp-cycle vector.
        let mut x = 77u64;
        let lats: Vec<f64> = (0..137)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((x >> 33) % 1000) as f64 + 0.25
            })
            .collect();
        for slots in [1, 4, 48] {
            let pooled = schedule(&lats, slots);
            for split in [0, 1, 5, 48, 64, 136, 137] {
                let mut inc = SlotSchedule::new(slots);
                inc.extend(&lats[..split]);
                inc.extend(&[]);
                for chunk in lats[split..].chunks(7) {
                    inc.extend(chunk);
                }
                assert_eq!(inc.report(), pooled, "slots {slots}, split {split}");
                assert_eq!(inc.warps(), lats.len());
            }
        }
    }

    #[test]
    fn incremental_fold_under_subscribed() {
        // Fewer warps than slots: `slots` in the report must reflect what
        // was actually used, matching the pooled path.
        let mut inc = SlotSchedule::new(16);
        inc.extend(&[3.0, 4.0]);
        assert_eq!(inc.report(), schedule(&[3.0, 4.0], 16));
        assert_eq!(SlotSchedule::new(8).report(), schedule(&[], 8));
    }
}
