//! Aggregate kernel statistics reported by engines alongside simulated time.

use crate::mem::MemCounters;

/// Execution statistics for one kernel launch (one dataset through one
/// engine). These power the ablation analyses (Fig. 9) and distribution
//  plots (Fig. 3b / Fig. 12).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelStats {
    /// Cells computed, including run-ahead and masked block padding (the
    /// work the device actually performed).
    pub computed_cells: u64,
    /// Cells required by the reference semantics (sum over finalized
    /// anti-diagonals).
    pub reference_cells: u64,
    /// Lockstep block-steps executed (summed over subwarps).
    pub steps: u64,
    /// Block-steps in which a lane was idle due to stagger/divergence.
    pub idle_lane_steps: u64,
    /// Memory traffic.
    pub mem: MemCounters,
    /// Number of tasks that hit the Z-drop condition.
    pub zdropped_tasks: u64,
    /// Number of tasks processed.
    pub tasks: u64,
}

impl KernelStats {
    /// Zeroed stats.
    pub fn new() -> KernelStats {
        KernelStats::default()
    }

    /// Run-ahead overhead: cells computed beyond the reference requirement,
    /// as a fraction of reference cells.
    pub fn runahead_ratio(&self) -> f64 {
        if self.reference_cells == 0 {
            return 0.0;
        }
        self.computed_cells.saturating_sub(self.reference_cells) as f64
            / self.reference_cells as f64
    }

    /// Accumulate another scope's stats.
    pub fn add(&mut self, other: &KernelStats) {
        self.computed_cells += other.computed_cells;
        self.reference_cells += other.reference_cells;
        self.steps += other.steps;
        self.idle_lane_steps += other.idle_lane_steps;
        self.mem.add(&other.mem);
        self.zdropped_tasks += other.zdropped_tasks;
        self.tasks += other.tasks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runahead_ratio_zero_when_exact() {
        let s = KernelStats { computed_cells: 100, reference_cells: 100, ..Default::default() };
        assert_eq!(s.runahead_ratio(), 0.0);
    }

    #[test]
    fn runahead_ratio_counts_overhead() {
        let s = KernelStats { computed_cells: 150, reference_cells: 100, ..Default::default() };
        assert!((s.runahead_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn add_accumulates() {
        let mut a = KernelStats { computed_cells: 1, tasks: 1, ..Default::default() };
        let b =
            KernelStats { computed_cells: 2, zdropped_tasks: 1, tasks: 1, ..Default::default() };
        a.add(&b);
        assert_eq!(a.computed_cells, 3);
        assert_eq!(a.tasks, 2);
        assert_eq!(a.zdropped_tasks, 1);
    }
}
