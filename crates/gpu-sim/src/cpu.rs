//! CPU baseline model: Minimap2-style multithreaded alignment throughput.
//!
//! The paper's reference baseline is Minimap2 on a 16-core/32-thread EPYC
//! with SSE4.1 (§5.1), plus a stronger 48-core/96-thread AVX512 build of
//! mm2-fast (§5.8, [18]) that is 2.30× faster overall. The CPU executes
//! the identical guided algorithm; only its throughput model differs: reads
//! are distributed across threads (near-perfect balance at 50k reads per
//! batch), so CPU time is total reference cells over aggregate throughput.

/// Description of a CPU baseline configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuSpec {
    /// Human-readable name used in figure rows.
    pub name: &'static str,
    /// Hardware threads used.
    pub threads: u32,
    /// Sustained DP throughput per thread, in cells per nanosecond
    /// (calibrated; SIMD width is folded in).
    pub cells_per_ns_per_thread: f64,
}

impl CpuSpec {
    /// The default baseline: 16C/32T EPYC 7313P with SSE4.1 ksw2 kernels.
    pub fn sse4_16c32t() -> CpuSpec {
        CpuSpec { name: "16C32T SSE4", threads: 32, cells_per_ns_per_thread: 0.22 }
    }

    /// The stronger baseline: 2× Xeon Gold 6442Y (48C/96T) with AVX512
    /// mm2-fast kernels — calibrated to be 2.30× the default overall (§5.8).
    pub fn avx512_48c96t() -> CpuSpec {
        CpuSpec { name: "48C96T AVX512", threads: 96, cells_per_ns_per_thread: 0.169 }
    }

    /// Milliseconds to process `cells` DP cells across all threads.
    ///
    /// The CPU is modelled at full size while the GPU model is a
    /// `1/SIM_SCALE` device slice; the resulting constant offset is part of
    /// the one-time calibration that pins the AGAThA-vs-CPU headline to the
    /// paper's figure (DESIGN.md §6).
    pub fn ms_for_cells(&self, cells: u64) -> f64 {
        cells as f64 / (self.threads as f64 * self.cells_per_ns_per_thread) / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stronger_cpu_is_about_2_3x() {
        let a = CpuSpec::sse4_16c32t();
        let b = CpuSpec::avx512_48c96t();
        let cells = 1_000_000_000u64;
        let ratio = a.ms_for_cells(cells) / b.ms_for_cells(cells);
        assert!((ratio - 2.30).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn time_scales_linearly_in_cells() {
        let c = CpuSpec::sse4_16c32t();
        assert!((c.ms_for_cells(2_000_000) - 2.0 * c.ms_for_cells(1_000_000)).abs() < 1e-9);
    }
}
