//! # agatha-gpu-sim
//!
//! A discrete SIMT execution-model simulator — the substitute for the CUDA
//! GPUs the paper evaluates on (see `DESIGN.md` §1 for the substitution
//! argument).
//!
//! The simulator is deliberately *not* a cycle-accurate microarchitecture
//! model. It follows the paper's own performance model (Table 1):
//!
//! ```text
//! latency ≈ MAX/AVG over warps ( MAX/AVG over subwarps (
//!     Cells × ( 1/Comp.TP + (AR_anti + AR_inter + AR_term)/Mem.TP ) ) )
//! ```
//!
//! Engines execute the *real* DP (so termination, run-ahead and divergence
//! emerge from real data) and charge this crate's cost model for: lockstep
//! block-steps, global-memory transactions by category (anti-diagonal max
//! tracking, intermediate values, termination checks, sequence loads),
//! shared-memory traffic, warp reductions and synchronisation. Warp
//! latencies are then placed onto the device's warp slots by a list
//! scheduler to produce the kernel makespan.
//!
//! Everything is deterministic: identical inputs give identical simulated
//! times on every host.

pub mod cost;
pub mod cpu;
pub mod mem;
pub mod sched;
pub mod spec;
pub mod stats;

pub use cost::CostModel;
pub use cpu::CpuSpec;
pub use mem::{AccessKind, MemCounters};
pub use sched::{makespan_cycles, DeviceReport};
pub use spec::GpuSpec;
pub use stats::KernelStats;

/// Lanes per warp, fixed by the architecture.
pub const WARP_LANES: usize = 32;

/// The simulator models a `1/SIM_SCALE` slice of each device: warp slots
/// and the CPU baseline's throughput are both divided by this factor, so
/// every engine-to-engine and GPU-to-CPU *ratio* is preserved while batch
/// sizes stay tractable (the paper uses 50,000-read batches; benchmark
/// scale uses hundreds).
pub const SIM_SCALE: u32 = 32;

/// Cells per block-step per lane (8×8 blocks; §2.2).
pub const BLOCK_CELLS: u64 = 64;

pub mod host;
