//! The calibrated cost model (DESIGN.md §6).
//!
//! Latency of an execution scope follows the paper's Table 1 decomposition:
//! a compute term proportional to lockstep block-steps and a memory term
//! proportional to category-weighted transactions. The constants below were
//! calibrated once against the paper's headline ratios and are frozen; every
//! figure harness uses the same numbers.

use crate::mem::MemCounters;
use crate::spec::GpuSpec;
use crate::BLOCK_CELLS;

/// Tunable throughput/latency constants, paired with a [`GpuSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Compute cycles per DP cell per lane (`1/Comp.TP`).
    pub cell_cycles: f64,
    /// Amortised cycles per coalesced global transaction (`1/Mem.TP`).
    pub global_tx_cycles: f64,
    /// Cycles per shared-memory access.
    pub shared_cycles: f64,
    /// Cycles per warp max-reduction (with hardware support).
    pub reduce_cycles: f64,
    /// Cycles per warp reduction emulated through shared memory (pre-Ampere
    /// fallback, §5.8).
    pub reduce_fallback_cycles: f64,
    /// Per-lockstep-step synchronisation overhead.
    pub sync_cycles: f64,
    /// Multiplier on `cell_cycles` when DPX instructions fuse the max
    /// operations (§6: DPX accelerates the compute term only).
    pub dpx_speedup: f64,
    /// Whether warp reductions use the hardware path.
    pub has_warp_reduce: bool,
    /// Whether DPX is enabled.
    pub use_dpx: bool,
}

impl CostModel {
    /// Build the calibrated model for a device.
    pub fn for_spec(spec: &GpuSpec) -> CostModel {
        CostModel {
            cell_cycles: 0.5,
            global_tx_cycles: 40.0,
            shared_cycles: 0.25,
            reduce_cycles: 5.0,
            reduce_fallback_cycles: 20.0,
            sync_cycles: 4.0,
            dpx_speedup: 2.2,
            has_warp_reduce: spec.has_warp_reduce,
            use_dpx: spec.has_dpx,
        }
    }

    /// Effective cycles per cell after DPX.
    #[inline]
    pub fn effective_cell_cycles(&self) -> f64 {
        if self.use_dpx {
            self.cell_cycles / self.dpx_speedup
        } else {
            self.cell_cycles
        }
    }

    /// Compute-side cycles for `steps` lockstep block-steps (each lane
    /// computes one 8×8 block per step; lanes run in parallel, so a step
    /// costs one block regardless of subwarp width).
    #[inline]
    pub fn step_cycles(&self, steps: u64) -> f64 {
        steps as f64 * (BLOCK_CELLS as f64 * self.effective_cell_cycles() + self.sync_cycles)
    }

    /// Memory-side cycles for a set of counted transactions.
    #[inline]
    pub fn mem_cycles(&self, mem: &MemCounters) -> f64 {
        let reduce_cost =
            if self.has_warp_reduce { self.reduce_cycles } else { self.reduce_fallback_cycles };
        mem.global_total() as f64 * self.global_tx_cycles
            + mem.shared as f64 * self.shared_cycles
            + mem.reduce as f64 * reduce_cost
    }

    /// Total scope latency: compute plus memory (the additive Table 1 form;
    /// overlap is folded into the calibrated constants).
    #[inline]
    pub fn scope_cycles(&self, steps: u64, mem: &MemCounters) -> f64 {
        self.step_cycles(steps) + self.mem_cycles(mem)
    }

    /// Cycles for a purely sequential engine processing `cells` cells on a
    /// single lane with `per_cell_global_tx` global transactions per cell
    /// (the inter-query-parallel baselines).
    #[inline]
    pub fn sequential_cycles(&self, cells: u64, global_tx: u64) -> f64 {
        cells as f64 * self.effective_cell_cycles() * SEQUENTIAL_LANE_PENALTY
            + global_tx as f64 * self.global_tx_cycles
    }
}

/// Single-lane sequential processing is slower per cell than lockstep block
/// processing: no register tiling across an 8-wide row, more instruction
/// overhead per cell. Calibrated once.
pub const SEQUENTIAL_LANE_PENALTY: f64 = 3.0;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::AccessKind;

    fn model() -> CostModel {
        CostModel::for_spec(&GpuSpec::rtx_a6000())
    }

    #[test]
    fn steps_scale_linearly() {
        let m = model();
        let one = m.step_cycles(1);
        assert!((m.step_cycles(10) - 10.0 * one).abs() < 1e-9);
        assert!(one > 0.0);
    }

    #[test]
    fn global_dominates_shared() {
        let m = model();
        let mut g = MemCounters::new();
        g.global(AccessKind::AntiMax, 100);
        let mut s = MemCounters::new();
        s.shared(100);
        assert!(m.mem_cycles(&g) > 10.0 * m.mem_cycles(&s));
    }

    #[test]
    fn reduce_fallback_costs_more() {
        let with = CostModel::for_spec(&GpuSpec::rtx_a6000());
        let without = CostModel::for_spec(&GpuSpec::rtx_2080ti());
        let mut mem = MemCounters::new();
        mem.reduce(10);
        assert!(without.mem_cycles(&mem) > with.mem_cycles(&mem));
    }

    #[test]
    fn dpx_reduces_compute_only() {
        let base = model();
        let dpx = CostModel { use_dpx: true, ..base.clone() };
        assert!(dpx.step_cycles(100) < base.step_cycles(100));
        let mut mem = MemCounters::new();
        mem.global(AccessKind::Intermediate, 50);
        assert_eq!(dpx.mem_cycles(&mem), base.mem_cycles(&mem));
    }

    #[test]
    fn scope_is_additive() {
        let m = model();
        let mut mem = MemCounters::new();
        mem.shared(40);
        mem.global(AccessKind::Sequence, 2);
        let total = m.scope_cycles(3, &mem);
        assert!((total - m.step_cycles(3) - m.mem_cycles(&mem)).abs() < 1e-9);
    }
}
