//! Host-side parallel execution helper.
//!
//! Engines execute thousands of independent simulated tasks with a
//! long-tailed size distribution; a shared atomic work index gives dynamic
//! load balancing without any dependency beyond `std` (the same reasoning
//! the paper applies on-device, applied to the host).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Map `f` over `0..len` in parallel, preserving index order in the output.
///
/// `f` must be `Sync` (it is called concurrently from many threads).
pub fn parallel_map<T, F>(len: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    }
    .min(len.max(1));

    if threads <= 1 {
        return (0..len).map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut out: Vec<Option<T>> = (0..len).map(|_| None).collect();
    let collected: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= len {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    for (i, v) in collected.into_iter().flatten() {
        out[i] = Some(v);
    }
    out.into_iter().map(|v| v.expect("all indices computed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let v = parallel_map(100, 4, |i| i * i);
        assert_eq!(v, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path() {
        let v = parallel_map(10, 1, |i| i + 1);
        assert_eq!(v.len(), 10);
        assert_eq!(v[9], 10);
    }

    #[test]
    fn empty() {
        let v: Vec<usize> = parallel_map(0, 4, |i| i);
        assert!(v.is_empty());
    }

    #[test]
    fn auto_thread_count() {
        let v = parallel_map(50, 0, |i| i);
        assert_eq!(v.len(), 50);
    }
}
