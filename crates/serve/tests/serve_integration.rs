//! In-process integration tests of the serve daemon: saturation and
//! backpressure, deadline drops, disconnect cancellation, and
//! results-match-`align_batch` bit-identity.

use std::sync::Arc;
use std::time::{Duration, Instant};

use agatha_align::{Scoring, Task};
use agatha_core::{AgathaConfig, Pipeline};
use agatha_serve::{serve, ServeClient, ServeConfig, ServeHandle, Status};

/// Deterministic sequence-pair corpus (same generator family as the engine
/// tests: LCG bases with periodic mismatches).
fn pairs(count: usize, len_base: usize, seed: u64) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut x = seed | 1;
    for _ in 0..count {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let len = len_base + (x >> 33) as usize % len_base;
        let mut r = String::new();
        let mut q = String::new();
        for k in 0..len {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let c = ['A', 'C', 'G', 'T'][(x >> 33) as usize % 4];
            r.push(c);
            q.push(if k % 17 == 0 { 'G' } else { c });
        }
        out.push((r, q));
    }
    out
}

fn scoring() -> Scoring {
    Scoring::new(2, 4, 4, 2, 60, 16)
}

/// Reference scores from the offline batch path, indexed like `pairs`.
fn reference_scores(pairs: &[(String, String)]) -> Vec<i32> {
    let tasks: Vec<Task> =
        pairs.iter().enumerate().map(|(i, (r, q))| Task::from_strs(i as u32, r, q)).collect();
    let rep = Pipeline::new(scoring(), AgathaConfig::agatha()).align_batch(&tasks);
    rep.results.iter().map(|r| r.score).collect()
}

fn start(mutate: impl FnOnce(&mut ServeConfig)) -> ServeHandle {
    let mut cfg = ServeConfig::new(scoring());
    cfg.threads = 2;
    cfg.window_ns = 2_000_000; // 2ms
    mutate(&mut cfg);
    serve(cfg).expect("daemon starts")
}

#[test]
fn round_trip_scores_match_align_batch() {
    let corpus = pairs(20, 120, 77);
    let want = reference_scores(&corpus);
    let handle = start(|_| {});
    let mut client = ServeClient::connect(handle.addr()).unwrap();
    assert_eq!(client.ping().unwrap().status, Status::Ok);
    // Pipelined: all requests first, then all responses.
    for (i, (r, q)) in corpus.iter().enumerate() {
        client.send_align(i as i64, r, q, None).unwrap();
    }
    let mut got = vec![None; corpus.len()];
    for _ in 0..corpus.len() {
        let resp = client.recv().unwrap();
        assert_eq!(resp.status, Status::Ok, "raw: {}", resp.raw);
        let id = resp.id.unwrap() as usize;
        assert!(got[id].is_none(), "double answer for id {id}");
        got[id] = Some(resp.score.unwrap());
    }
    for (i, s) in got.into_iter().enumerate() {
        assert_eq!(s, Some(want[i]), "request {i} must be bit-identical to align_batch");
    }
    let stats = client.stats().unwrap();
    assert!(stats.contains("\"completed\":20"), "stats: {stats}");
    let snap = handle.shutdown();
    assert_eq!(snap.completed, 20);
    assert_eq!(snap.total.count(), 20);
}

#[test]
fn saturation_rejects_immediately_and_accepted_stay_bit_identical() {
    // A long admission window plays the role of slow service: with
    // max_batch (8) above max_queue (3), the early-close path can't fire,
    // so everything offered during the 500ms window beyond 3 queued
    // requests must be rejected *immediately* — not after the batch runs.
    let corpus = pairs(30, 250, 13);
    let want = reference_scores(&corpus);
    let handle = start(|cfg| {
        cfg.threads = 1;
        cfg.window_ns = 500_000_000;
        cfg.max_batch = 8;
        cfg.max_queue = 3;
    });
    let mut client = ServeClient::connect(handle.addr()).unwrap();
    let t0 = Instant::now();
    for (i, (r, q)) in corpus.iter().enumerate() {
        client.send_align(i as i64, r, q, None).unwrap();
    }
    let mut oks = Vec::new();
    let mut rejected = Vec::new();
    let mut last_reject_at = Duration::ZERO;
    let mut first_ok_at = Duration::MAX;
    for _ in 0..corpus.len() {
        let resp = client.recv().unwrap();
        let at = t0.elapsed();
        match resp.status {
            Status::Ok => {
                first_ok_at = first_ok_at.min(at);
                oks.push((resp.id.unwrap() as usize, resp.score.unwrap()));
            }
            Status::Rejected => {
                last_reject_at = last_reject_at.max(at);
                rejected.push(resp.id.unwrap() as usize);
            }
            other => panic!("unexpected status {other:?}: {}", resp.raw),
        }
    }
    assert!(!rejected.is_empty(), "queue bound must reject under saturation");
    assert!(oks.len() >= 3, "the bounded queue still serves max_queue requests");
    assert_eq!(oks.len() + rejected.len(), corpus.len(), "every request answered exactly once");
    // The backpressure contract: rejections are synchronous at admission,
    // completions can only arrive after the window closes — so every
    // rejection must land before the first completion.
    assert!(
        last_reject_at < first_ok_at,
        "rejections must not wait for the batch: last reject {last_reject_at:?}, \
         first ok {first_ok_at:?}"
    );
    // Accepted requests are bit-identical to the offline batch path.
    for (id, score) in &oks {
        assert_eq!(*score, want[*id], "request {id}");
    }
    // Histogram / counter reconciliation with client-observed outcomes.
    let snap = handle.shutdown();
    assert_eq!(snap.completed, oks.len() as u64);
    assert_eq!(snap.rejected, rejected.len() as u64);
    assert_eq!(snap.dropped_deadline, 0);
    assert_eq!(snap.answered(), corpus.len() as u64);
    assert_eq!(snap.total.count(), oks.len() as u64);
    // Everyone who completed waited out most of the 500ms window on a
    // queue: that is starvation by the 8×2ms default threshold... except
    // the threshold here is 8×500ms. Starvation accounting is exercised
    // in `deadline_drops_report_and_never_dispatch` instead.
}

#[test]
fn deadline_drops_report_and_never_dispatch() {
    let corpus = pairs(5, 100, 3);
    let handle = start(|cfg| {
        cfg.threads = 1;
        cfg.window_ns = 400_000_000; // 0.4s window...
        cfg.starvation_ns = 10_000_000; // ...and a 10ms starvation line
    });
    let mut client = ServeClient::connect(handle.addr()).unwrap();
    for (i, (r, q)) in corpus.iter().enumerate() {
        // ...but a 30ms deadline: every request expires while queued.
        client.send_align(i as i64, r, q, Some(30)).unwrap();
    }
    let mut drop_waits = Vec::new();
    for _ in 0..corpus.len() {
        let resp = client.recv().unwrap();
        assert_eq!(resp.status, Status::Dropped, "raw: {}", resp.raw);
        drop_waits.push(resp.queue_us.unwrap());
    }
    // The deadline sweep runs on the batcher's poll cadence (~25ms), so a
    // 30ms deadline is honoured long before the 400ms window closes.
    for us in drop_waits {
        assert!(us >= 30_000, "dropped before its own deadline: {us}µs");
        assert!(us < 300_000, "drop happened at window close, not deadline: {us}µs");
    }
    let snap = handle.shutdown();
    assert_eq!(snap.dropped_deadline, 5);
    assert_eq!(snap.completed, 0);
    assert_eq!(snap.service.count(), 0, "dropped requests must never reach kernel dispatch");
    assert_eq!(snap.starved, 5, "30ms queue waits cross the 10ms starvation line");
}

#[test]
fn client_disconnect_cancels_pending_work() {
    let corpus = pairs(3, 100, 29);
    let handle = start(|cfg| {
        cfg.threads = 1;
        cfg.window_ns = 300_000_000;
    });
    {
        let mut client = ServeClient::connect(handle.addr()).unwrap();
        for (i, (r, q)) in corpus.iter().enumerate() {
            client.send_align(i as i64, r, q, None).unwrap();
        }
        // Drop the connection with all three requests still queued.
    }
    let metrics = handle.metrics();
    let t0 = Instant::now();
    while metrics.snapshot().cancelled < 3 {
        assert!(t0.elapsed() < Duration::from_secs(10), "cancellations never surfaced");
        std::thread::sleep(Duration::from_millis(10));
    }
    let snap = handle.shutdown();
    assert_eq!(snap.cancelled, 3);
    assert_eq!(snap.completed, 0);
    assert_eq!(snap.service.count(), 0, "cancelled requests must never reach kernel dispatch");
}

#[test]
fn concurrent_clients_are_answered_exactly_once() {
    let corpus = Arc::new(pairs(25, 90, 41));
    let want = Arc::new(reference_scores(&corpus));
    let handle = start(|cfg| {
        cfg.threads = 2;
        cfg.window_ns = 1_000_000;
        cfg.max_queue = 64;
    });
    let addr = handle.addr();
    let clients: Vec<_> = (0..4)
        .map(|c| {
            let corpus = Arc::clone(&corpus);
            let want = Arc::clone(&want);
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).unwrap();
                for (i, (r, q)) in corpus.iter().enumerate() {
                    // Half the requests carry a generous deadline; under
                    // load they may drop, never disappear.
                    let deadline = if i % 2 == 0 { Some(2_000) } else { None };
                    client.send_align((c * 1000 + i) as i64, r, q, deadline).unwrap();
                }
                let mut seen = std::collections::HashSet::new();
                for _ in 0..corpus.len() {
                    let resp = client.recv().unwrap();
                    let id = resp.id.unwrap();
                    assert!(seen.insert(id), "double answer for {id}");
                    match resp.status {
                        Status::Ok => {
                            let i = (id % 1000) as usize;
                            assert_eq!(resp.score.unwrap(), want[i], "request {id}");
                        }
                        Status::Dropped | Status::Rejected => {}
                        other => panic!("unexpected {other:?}: {}", resp.raw),
                    }
                }
                seen.len()
            })
        })
        .collect();
    let answered: usize = clients.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(answered, 4 * corpus.len());
    let snap = handle.shutdown();
    assert_eq!(snap.answered(), answered as u64, "server accounting matches client outcomes");
    assert!(snap.batches > 0);
}

#[test]
fn shutdown_command_drains_and_acknowledges() {
    let corpus = pairs(4, 80, 53);
    let handle = start(|cfg| cfg.window_ns = 50_000_000);
    let mut client = ServeClient::connect(handle.addr()).unwrap();
    for (i, (r, q)) in corpus.iter().enumerate() {
        client.send_align(i as i64, r, q, None).unwrap();
    }
    // A ping round trip proves the reader admitted all four align lines
    // (it processes a connection's lines in order), so the shutdown below
    // can't race ahead of the admissions.
    client.ping().unwrap();
    let mut shutdown_client = ServeClient::connect(handle.addr()).unwrap();
    let ack = shutdown_client.shutdown_server().unwrap();
    assert!(ack.raw.contains("shutting-down"), "raw: {}", ack.raw);
    // The queued requests are still answered during the drain.
    let mut ok = 0;
    for _ in 0..corpus.len() {
        if client.recv().unwrap().status == Status::Ok {
            ok += 1;
        }
    }
    assert_eq!(ok, corpus.len());
    let snap = handle.join();
    assert_eq!(snap.completed, corpus.len() as u64);
}

#[test]
fn zero_window_and_zero_queue_are_usage_errors() {
    let err = |cfg: ServeConfig| serve(cfg).err().expect("config must be rejected");
    let mut cfg = ServeConfig::new(scoring());
    cfg.window_ns = 0;
    assert!(err(cfg).contains("window"));
    let mut cfg = ServeConfig::new(scoring());
    cfg.max_queue = 0;
    assert!(err(cfg).contains("queue"));
    let mut cfg = ServeConfig::new(scoring());
    cfg.max_batch = 0;
    assert!(err(cfg).contains("batch"));
}
