//! Property test of the admission-window state machine: under random
//! arrival / deadline / collection schedules driven by a [`MockClock`],
//! every offered request ends in **exactly one** terminal state —
//! rejected at admission, expired (deadline drop), or batched — never
//! lost, never double-answered.

use std::collections::HashMap;

use agatha_align::Task;
use agatha_serve::{AdmissionWindow, Clock, MockClock, Pending, WindowCfg};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Terminal {
    Rejected,
    Expired,
    Batched,
}

/// Record a terminal state, failing on any double answer.
fn settle(
    outcomes: &mut HashMap<u32, Terminal>,
    id: u32,
    state: Terminal,
) -> Result<(), TestCaseError> {
    if let Some(prev) = outcomes.insert(id, state) {
        return Err(TestCaseError::fail(format!(
            "request {id} answered twice: {prev:?} then {state:?}"
        )));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn every_offer_reaches_exactly_one_terminal_state(
        // (advance_ns, action, deadline_offset_ns) — action 0/1 offer
        // (without / with a deadline), 2 collect.
        events in collection::vec((0u64..3_000_000, 0u8..3, 1u64..6_000_000), 1..160),
        window_ns in 1u64..4_000_000,
        max_batch in 1usize..7,
        max_queue in 1usize..9,
    ) {
        let cfg = WindowCfg { window_ns, max_batch, max_queue };
        let clock = MockClock::new();
        let mut window: AdmissionWindow<u32> = AdmissionWindow::new(cfg).unwrap();
        let mut outcomes: HashMap<u32, Terminal> = HashMap::new();
        let mut deadlines: HashMap<u32, Option<u64>> = HashMap::new();
        let mut next_id = 0u32;

        for (advance_ns, action, deadline_offset) in events {
            clock.advance_ns(advance_ns);
            let now = clock.now_ns();
            match action {
                0 | 1 => {
                    let id = next_id;
                    next_id += 1;
                    let deadline_ns = (action == 1).then(|| now + deadline_offset);
                    deadlines.insert(id, deadline_ns);
                    let queued_before = window.len();
                    let pending = Pending {
                        task: Task::from_strs(id, "ACGT", "ACGA"),
                        deadline_ns,
                        enqueued_ns: now,
                        ctx: id,
                    };
                    match window.offer(pending, now) {
                        Ok(()) => {
                            prop_assert!(
                                queued_before < max_queue,
                                "admitted past the queue bound ({queued_before} >= {max_queue})"
                            );
                        }
                        Err(back) => {
                            // Rejections hand the request back untouched and
                            // only happen at the bound.
                            prop_assert_eq!(back.ctx, id);
                            prop_assert_eq!(queued_before, max_queue);
                            settle(&mut outcomes, id, Terminal::Rejected)?;
                        }
                    }
                }
                _ => {
                    let harvest = window.collect_due(now);
                    prop_assert!(
                        harvest.batch.len() <= max_batch,
                        "batch of {} exceeds max_batch {max_batch}",
                        harvest.batch.len()
                    );
                    for p in harvest.expired {
                        let d = deadlines[&p.ctx].expect("expired request had no deadline");
                        prop_assert!(
                            d <= now,
                            "request {} expired at tick {now} before its deadline {d}",
                            p.ctx
                        );
                        settle(&mut outcomes, p.ctx, Terminal::Expired)?;
                    }
                    for p in harvest.batch {
                        if let Some(d) = deadlines[&p.ctx] {
                            prop_assert!(
                                d > now,
                                "request {} was batched at tick {now} past its deadline {d}",
                                p.ctx
                            );
                        }
                        settle(&mut outcomes, p.ctx, Terminal::Batched)?;
                    }
                }
            }
            prop_assert!(window.len() <= max_queue, "queue grew past its bound");
        }

        // Final drain: step past the window repeatedly; the leftover
        // re-open rule makes back-to-back collections due immediately, so
        // this terminates with an empty queue.
        let mut guard = 0;
        loop {
            clock.advance_ns(window_ns + 1);
            let now = clock.now_ns();
            let harvest = window.collect_due(now);
            for p in harvest.expired {
                settle(&mut outcomes, p.ctx, Terminal::Expired)?;
            }
            for p in harvest.batch {
                settle(&mut outcomes, p.ctx, Terminal::Batched)?;
            }
            if window.is_empty() {
                break;
            }
            guard += 1;
            prop_assert!(guard < 10_000, "drain did not terminate");
        }

        // Exactly-once: every offered request has exactly one terminal
        // state (the double-answer direction is enforced by `settle`).
        prop_assert!(
            outcomes.len() == next_id as usize,
            "lost requests: answered {} of {}",
            outcomes.len(),
            next_id
        );
        for id in 0..next_id {
            prop_assert!(outcomes.contains_key(&id), "request {id} was never answered");
        }
    }

    /// The window-close invariants on their own: a window never closes
    /// before `window_ns` unless a full batch arrived, and a closed
    /// window's batch preserves FIFO order.
    #[test]
    fn batches_preserve_fifo_order(
        count in 1usize..40,
        window_ns in 1u64..1_000_000,
        max_batch in 1usize..6,
    ) {
        let cfg = WindowCfg { window_ns, max_batch, max_queue: 64 };
        let clock = MockClock::new();
        let mut window: AdmissionWindow<u32> = AdmissionWindow::new(cfg).unwrap();
        for id in 0..count as u32 {
            clock.advance_ns(1);
            let now = clock.now_ns();
            let p = Pending {
                task: Task::from_strs(id, "ACGT", "ACGT"),
                deadline_ns: None,
                enqueued_ns: now,
                ctx: id,
            };
            // max_queue is 64 ≥ count: offers never reject here.
            prop_assert!(window.offer(p, now).is_ok());
        }
        let mut served = Vec::new();
        let mut guard = 0;
        while !window.is_empty() {
            clock.advance_ns(window_ns + 1);
            let harvest = window.collect_due(clock.now_ns());
            prop_assert!(harvest.expired.is_empty());
            served.extend(harvest.batch.into_iter().map(|p| p.ctx));
            guard += 1;
            prop_assert!(guard < 10_000, "drain did not terminate");
        }
        prop_assert_eq!(served, (0..count as u32).collect::<Vec<_>>());
    }
}
