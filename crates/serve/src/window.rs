//! Deterministic admission-window state machine.
//!
//! All the timing-sensitive serve decisions — when a batching window
//! closes, which queued requests have blown their deadline, when the
//! bounded queue rejects — live here as a plain data structure driven by
//! explicit clock ticks. The daemon wraps it in a mutex and feeds it real
//! time; the tests feed it a [`agatha_core::clock::MockClock`] and explore
//! every path without a single sleep.
//!
//! Semantics:
//!
//! * The queue is bounded by `max_queue`; an offer beyond the bound is
//!   rejected immediately ([`AdmissionWindow::offer`] returns the request
//!   back, the daemon answers 503).
//! * A window opens when a request arrives into an empty window and closes
//!   `window_ns` later — or immediately once `max_batch` requests are
//!   waiting (no reason to idle with a full batch).
//! * [`AdmissionWindow::collect_due`] first sweeps deadline-expired
//!   requests out (they are *answered* as dropped, before ever reaching
//!   the engine), then, if the window has closed, takes up to `max_batch`
//!   requests as the next batch. Remaining requests start a new window at
//!   the collection tick, so an over-full queue drains in back-to-back
//!   batches instead of waiting out another idle window.

use std::collections::VecDeque;

/// Static admission configuration, all ticks in clock nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct WindowCfg {
    /// Admission window length: how long the first request of a batch may
    /// wait for co-batched company.
    pub window_ns: u64,
    /// Largest batch handed to the engine at once.
    pub max_batch: usize,
    /// Bound on requests waiting for a batch; beyond it offers reject.
    pub max_queue: usize,
}

impl WindowCfg {
    /// Validate the knobs; zero windows/queues/batches are usage errors
    /// (a zero window would busy-spin, a zero queue could admit nothing).
    pub fn validate(&self) -> Result<(), String> {
        if self.window_ns == 0 {
            return Err("admission window must be at least 1ns (got 0)".to_string());
        }
        if self.max_batch == 0 {
            return Err("max batch must be at least 1 (got 0)".to_string());
        }
        if self.max_queue == 0 {
            return Err("max queue must be at least 1 (got 0)".to_string());
        }
        Ok(())
    }
}

/// One queued request: the alignment task plus everything needed to answer
/// its owner. `C` is the daemon's per-request context (reply channel,
/// cancel flag, client id); tests use plain integers.
#[derive(Debug)]
pub struct Pending<C> {
    pub task: agatha_align::Task,
    /// Absolute deadline tick, if any.
    pub deadline_ns: Option<u64>,
    /// Tick at which the request was admitted.
    pub enqueued_ns: u64,
    pub ctx: C,
}

/// What one [`AdmissionWindow::collect_due`] call produced.
#[derive(Debug, Default)]
pub struct Harvest<C> {
    /// Requests whose deadline passed while queued — to be answered as
    /// dropped without dispatch.
    pub expired: Vec<Pending<C>>,
    /// The next engine batch (empty when the window is still open).
    pub batch: Vec<Pending<C>>,
}

/// The admission queue plus its window timer. Purely deterministic: every
/// transition happens in `offer` / `collect_due` at an explicit tick.
#[derive(Debug)]
pub struct AdmissionWindow<C> {
    cfg: WindowCfg,
    queue: VecDeque<Pending<C>>,
    /// Tick at which the currently open window closes (`None` = no window
    /// open, i.e. the queue is empty).
    window_close: Option<u64>,
}

impl<C> AdmissionWindow<C> {
    pub fn new(cfg: WindowCfg) -> Result<AdmissionWindow<C>, String> {
        cfg.validate()?;
        Ok(AdmissionWindow { cfg, queue: VecDeque::new(), window_close: None })
    }

    pub fn cfg(&self) -> &WindowCfg {
        &self.cfg
    }

    /// Requests currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Offer a request at tick `now`. `Err` hands the request back — the
    /// queue is at `max_queue` and the caller must answer 503 immediately.
    pub fn offer(&mut self, p: Pending<C>, now: u64) -> Result<(), Pending<C>> {
        if self.queue.len() >= self.cfg.max_queue {
            return Err(p);
        }
        self.queue.push_back(p);
        match self.window_close {
            // First request of an empty queue opens a fresh window…
            None => self.window_close = Some(now + self.cfg.window_ns),
            // …and a full batch closes it early.
            Some(close) if self.queue.len() >= self.cfg.max_batch && close > now => {
                self.window_close = Some(now);
            }
            Some(_) => {}
        }
        Ok(())
    }

    /// Tick at which the open window closes (`None` when the queue is
    /// empty). The daemon sleeps until this tick or the next offer.
    pub fn next_due(&self) -> Option<u64> {
        self.window_close
    }

    /// Force the window closed (shutdown drain): everything still queued
    /// becomes immediately collectable.
    pub fn force_close(&mut self, now: u64) {
        if !self.queue.is_empty() {
            self.window_close = Some(now);
        }
    }

    /// Sweep deadline-expired requests, then collect the next batch if the
    /// window has closed. Leftover requests (beyond `max_batch`) re-open a
    /// window at `now`, making them due immediately on the next call.
    pub fn collect_due(&mut self, now: u64) -> Harvest<C> {
        let mut harvest = Harvest { expired: Vec::new(), batch: Vec::new() };
        // Deadline sweep: a request expiring in the queue is dropped even
        // if the window is still open — it could never be answered in time.
        let mut i = 0;
        while i < self.queue.len() {
            if self.queue[i].deadline_ns.is_some_and(|d| now >= d) {
                harvest.expired.push(self.queue.remove(i).expect("index in bounds"));
            } else {
                i += 1;
            }
        }
        if self.queue.is_empty() {
            self.window_close = None;
            return harvest;
        }
        let close = self.window_close.expect("non-empty queue always has an open window");
        if now >= close || self.queue.len() >= self.cfg.max_batch {
            let take = self.queue.len().min(self.cfg.max_batch);
            harvest.batch.extend(self.queue.drain(..take));
            self.window_close = if self.queue.is_empty() { None } else { Some(now) };
        }
        harvest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agatha_align::Task;

    fn cfg() -> WindowCfg {
        WindowCfg { window_ns: 1_000, max_batch: 4, max_queue: 6 }
    }

    fn pending(id: u32, deadline_ns: Option<u64>, now: u64) -> Pending<u32> {
        Pending {
            task: Task::from_strs(id, "ACGT", "ACGT"),
            deadline_ns,
            enqueued_ns: now,
            ctx: id,
        }
    }

    #[test]
    fn zero_knobs_are_usage_errors() {
        assert!(WindowCfg { window_ns: 0, max_batch: 1, max_queue: 1 }.validate().is_err());
        assert!(WindowCfg { window_ns: 1, max_batch: 0, max_queue: 1 }.validate().is_err());
        assert!(WindowCfg { window_ns: 1, max_batch: 1, max_queue: 0 }.validate().is_err());
        assert!(cfg().validate().is_ok());
    }

    #[test]
    fn window_opens_on_first_arrival_and_closes_on_time() {
        let mut w: AdmissionWindow<u32> = AdmissionWindow::new(cfg()).unwrap();
        assert!(w.next_due().is_none());
        w.offer(pending(0, None, 100), 100).unwrap();
        assert_eq!(w.next_due(), Some(1_100));
        // Still open: nothing to collect.
        let h = w.collect_due(1_099);
        assert!(h.batch.is_empty() && h.expired.is_empty());
        // Closed: the batch comes out, the queue empties, the window resets.
        let h = w.collect_due(1_100);
        assert_eq!(h.batch.len(), 1);
        assert!(w.next_due().is_none());
    }

    #[test]
    fn full_batch_closes_the_window_early() {
        let mut w: AdmissionWindow<u32> = AdmissionWindow::new(cfg()).unwrap();
        for id in 0..4 {
            w.offer(pending(id, None, 10), 10).unwrap();
        }
        // max_batch reached: due now, not at 10+1000.
        assert_eq!(w.next_due(), Some(10));
        let h = w.collect_due(10);
        assert_eq!(h.batch.len(), 4);
    }

    #[test]
    fn bounded_queue_rejects_beyond_max_queue() {
        let mut w: AdmissionWindow<u32> = AdmissionWindow::new(cfg()).unwrap();
        for id in 0..6 {
            w.offer(pending(id, None, 0), 0).unwrap();
        }
        let rejected = w.offer(pending(99, None, 0), 0).unwrap_err();
        assert_eq!(rejected.ctx, 99);
        assert_eq!(w.len(), 6);
    }

    #[test]
    fn expired_requests_are_swept_even_mid_window() {
        let mut w: AdmissionWindow<u32> = AdmissionWindow::new(cfg()).unwrap();
        w.offer(pending(0, Some(500), 0), 0).unwrap();
        w.offer(pending(1, None, 0), 0).unwrap();
        let h = w.collect_due(600); // window (0..1000) still open
        assert_eq!(h.expired.len(), 1);
        assert_eq!(h.expired[0].ctx, 0);
        assert!(h.batch.is_empty());
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn oversized_queue_drains_in_back_to_back_batches() {
        let mut w: AdmissionWindow<u32> =
            AdmissionWindow::new(WindowCfg { window_ns: 1_000, max_batch: 2, max_queue: 10 })
                .unwrap();
        for id in 0..5 {
            w.offer(pending(id, None, 0), 0).unwrap();
        }
        let h1 = w.collect_due(0);
        assert_eq!(h1.batch.iter().map(|p| p.ctx).collect::<Vec<_>>(), vec![0, 1]);
        // Leftovers re-opened a window at tick 0 → due immediately.
        let h2 = w.collect_due(0);
        assert_eq!(h2.batch.iter().map(|p| p.ctx).collect::<Vec<_>>(), vec![2, 3]);
        let h3 = w.collect_due(0);
        assert_eq!(h3.batch.iter().map(|p| p.ctx).collect::<Vec<_>>(), vec![4]);
        assert!(w.is_empty());
    }

    #[test]
    fn force_close_drains_on_shutdown() {
        let mut w: AdmissionWindow<u32> = AdmissionWindow::new(cfg()).unwrap();
        w.offer(pending(0, None, 0), 0).unwrap();
        w.force_close(1);
        let h = w.collect_due(1);
        assert_eq!(h.batch.len(), 1);
    }
}
