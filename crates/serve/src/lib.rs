//! # agatha-serve
//!
//! The online alignment service: turns the streaming
//! [`agatha_core::BatchEngine`] into long-running infrastructure that
//! serves *requests* instead of files.
//!
//! * [`protocol`] — newline-delimited JSON over a local TCP socket.
//! * [`window`] — the deterministic admission-window state machine:
//!   bounded queue (backpressure → immediate 503), window-close batching,
//!   deadline expiry. Driven by explicit clock ticks so tests use
//!   [`agatha_core::clock::MockClock`] instead of sleeps.
//! * [`histogram`] — lock-free fixed-bucket latency recording with
//!   p50/p99/p999 reporting for queue / service / total latency, plus
//!   drop / reject / cancel / starvation counters.
//! * [`daemon`] — the threads: acceptor, per-connection readers/writers,
//!   and the batcher that owns the engine. Deadline-expired requests are
//!   dropped *before kernel dispatch*; a disconnected client cancels its
//!   pending work.
//! * [`client`] — a small blocking client (tests, `serve_bench`,
//!   reference wire implementation).

pub mod client;
pub mod daemon;
pub mod histogram;
pub mod protocol;
pub mod window;

pub use client::{parse_response, Response, ServeClient, Status};
pub use daemon::{serve, serve_with_clock, termination_flag, ServeConfig, ServeHandle};
pub use histogram::{HistogramSnapshot, LatencyHistogram, MetricsSnapshot, ServeMetrics};
pub use window::{AdmissionWindow, Harvest, Pending, WindowCfg};

// Re-export the clock abstraction serve consumers test against.
pub use agatha_core::clock::{Clock, MockClock, SystemClock};
