//! Lock-free fixed-bucket latency recording.
//!
//! [`LatencyHistogram`] is an HdrHistogram-style two-level layout: the
//! exponent of the value picks a major bucket, the next five mantissa bits
//! a minor bucket, giving ≤ 1/32 (~3%) relative error across the full
//! `u64` nanosecond range in 1920 buckets. Recording is a single relaxed
//! `fetch_add` — safe from any number of threads with no locks, which is
//! what lets the daemon's connection and batcher threads all write into
//! the same recorder on the hot path.
//!
//! [`ServeMetrics`] aggregates the three per-request histograms (queue /
//! service / total) plus the outcome counters the SLO report needs.

use std::sync::atomic::{AtomicU64, Ordering};

/// Minor buckets per major (power-of-two) bucket.
const SUB: usize = 32;
/// Bucket count: values below 32 map directly, larger values use
/// (exponent − 4) majors of 32 minors; exponent ≤ 63 → major ≤ 59.
const BUCKETS: usize = 60 * SUB;

/// Map a nanosecond value to its bucket.
fn bucket_index(v: u64) -> usize {
    let v = v.max(1);
    let top = 63 - v.leading_zeros() as usize;
    if top < 5 {
        v as usize
    } else {
        let major = top - 4;
        let minor = ((v >> (top - 5)) & (SUB as u64 - 1)) as usize;
        major * SUB + minor
    }
}

/// Lower bound of a bucket (the value reported for percentiles falling in
/// it — percentile estimates are conservative, never inflated).
fn bucket_value(idx: usize) -> u64 {
    if idx < SUB {
        idx as u64
    } else {
        let major = idx / SUB;
        let minor = (idx % SUB) as u64;
        (SUB as u64 + minor) << (major - 1)
    }
}

/// A lock-free fixed-bucket histogram of nanosecond latencies.
pub struct LatencyHistogram {
    counts: Box<[AtomicU64]>,
    total: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Record one latency. Lock-free; callable concurrently.
    pub fn record_ns(&self, v: u64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(v, Ordering::Relaxed);
        self.max_ns.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Consistent-enough snapshot for reporting (concurrent records may or
    /// may not be included; never tears a recorded value).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        HistogramSnapshot {
            counts,
            total,
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// Frozen histogram state with percentile accessors.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    total: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl HistogramSnapshot {
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.total).unwrap_or(0)
    }

    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Value at quantile `q` in `[0, 1]` (lower bucket bound; 0 if empty).
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        // Rank of the target sample, 1-based, clamped into range.
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_value(idx);
            }
        }
        self.max_ns
    }

    pub fn p50_us(&self) -> f64 {
        self.quantile_ns(0.50) as f64 / 1_000.0
    }

    pub fn p99_us(&self) -> f64 {
        self.quantile_ns(0.99) as f64 / 1_000.0
    }

    pub fn p999_us(&self) -> f64 {
        self.quantile_ns(0.999) as f64 / 1_000.0
    }

    /// The JSON fragment used in stats dumps and `BENCH_serve.json`:
    /// `{"count":N,"p50_us":...,"p99_us":...,"p999_us":...,"max_us":...,"mean_us":...}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"p50_us\":{:.1},\"p99_us\":{:.1},\"p999_us\":{:.1},\
             \"max_us\":{:.1},\"mean_us\":{:.1}}}",
            self.total,
            self.p50_us(),
            self.p99_us(),
            self.p999_us(),
            self.max_ns as f64 / 1_000.0,
            self.mean_ns() as f64 / 1_000.0,
        )
    }
}

/// All the service-level recorders: one histogram per latency phase plus
/// the outcome counters. Every field is updated lock-free.
#[derive(Default)]
pub struct ServeMetrics {
    /// Admission → kernel dispatch (or drop decision).
    pub queue: LatencyHistogram,
    /// Kernel execution alone.
    pub service: LatencyHistogram,
    /// Admission → response written.
    pub total: LatencyHistogram,
    /// Requests answered `ok`.
    pub completed: AtomicU64,
    /// Requests dropped because their deadline passed before dispatch.
    pub dropped_deadline: AtomicU64,
    /// Requests rejected at admission (queue full).
    pub rejected: AtomicU64,
    /// Requests cancelled by client disconnect before dispatch.
    pub cancelled: AtomicU64,
    /// Requests whose queue wait exceeded the starvation threshold.
    pub starved: AtomicU64,
    /// Batches dispatched to the engine.
    pub batches: AtomicU64,
}

impl ServeMetrics {
    pub fn new() -> ServeMetrics {
        ServeMetrics::default()
    }

    /// Freeze every recorder into a plain-data snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            queue: self.queue.snapshot(),
            service: self.service.snapshot(),
            total: self.total.snapshot(),
            completed: self.completed.load(Ordering::Relaxed),
            dropped_deadline: self.dropped_deadline.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            starved: self.starved.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data metrics snapshot (what stats dumps and the bench serialise).
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    pub queue: HistogramSnapshot,
    pub service: HistogramSnapshot,
    pub total: HistogramSnapshot,
    pub completed: u64,
    pub dropped_deadline: u64,
    pub rejected: u64,
    pub cancelled: u64,
    pub starved: u64,
    pub batches: u64,
}

impl MetricsSnapshot {
    /// Requests that received *some* terminal answer.
    pub fn answered(&self) -> u64 {
        self.completed + self.dropped_deadline + self.rejected + self.cancelled
    }

    /// One-line JSON stats document (the `{"cmd":"stats"}` reply and the
    /// shutdown dump).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"completed\":{},\"dropped_deadline\":{},\"rejected\":{},\"cancelled\":{},\
             \"starved\":{},\"batches\":{},\"queue_latency\":{},\"service_latency\":{},\
             \"total_latency\":{}}}",
            self.completed,
            self.dropped_deadline,
            self.rejected,
            self.cancelled,
            self.starved,
            self.batches,
            self.queue.to_json(),
            self.service.to_json(),
            self.total.to_json(),
        )
    }

    /// Human-readable percentile table for the shutdown report.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "outcomes: completed={} dropped(deadline)={} rejected(503)={} cancelled={} \
             starved={} batches={}\n",
            self.completed,
            self.dropped_deadline,
            self.rejected,
            self.cancelled,
            self.starved,
            self.batches,
        ));
        out.push_str("latency (µs)      p50        p99       p999        max       mean\n");
        for (name, h) in
            [("queue", &self.queue), ("service", &self.service), ("total", &self.total)]
        {
            out.push_str(&format!(
                "{name:<10} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}\n",
                h.p50_us(),
                h.p99_us(),
                h.p999_us(),
                h.max_ns() as f64 / 1_000.0,
                h.mean_ns() as f64 / 1_000.0,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_tight() {
        let mut last = 0;
        for v in 0..1_000_000u64 {
            let idx = bucket_index(v);
            assert!(idx >= last, "index must not decrease: v {v}");
            last = idx;
            // Lower bound property: bucket_value(idx) <= v, and relative
            // error of the lower bound is within 1/32.
            let lo = bucket_value(idx);
            assert!(lo <= v.max(1), "lo {lo} v {v}");
            if v >= 64 {
                assert!((v - lo) as f64 / v as f64 <= 1.0 / 32.0 + 1e-9, "v {v} lo {lo}");
            }
        }
        // Large values stay in range with the same error bound.
        for k in 20..63 {
            for v in [1u64 << k, (1u64 << k) + (1 << (k - 3)), (1u64 << k) - 1] {
                let lo = bucket_value(bucket_index(v));
                assert!(lo <= v && (v - lo) as f64 / v as f64 <= 1.0 / 32.0 + 1e-9);
            }
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let h = LatencyHistogram::new();
        for v in 1..=100_000u64 {
            h.record_ns(v * 1_000); // 1ms ramp in µs steps
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100_000);
        // ~3% bucket error plus the lower-bound bias.
        let p50 = s.quantile_ns(0.5) as f64;
        assert!((p50 - 50_000_000.0).abs() / 50_000_000.0 < 0.05, "p50 {p50}");
        let p99 = s.quantile_ns(0.99) as f64;
        assert!((p99 - 99_000_000.0).abs() / 99_000_000.0 < 0.05, "p99 {p99}");
        assert_eq!(s.max_ns(), 100_000_000);
        assert!(s.quantile_ns(1.0) <= 100_000_000);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record_ns((t * 10_000 + i) % 1_000_000 + 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.snapshot().count(), 80_000);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let s = LatencyHistogram::new().snapshot();
        assert_eq!(s.quantile_ns(0.99), 0);
        assert_eq!(s.mean_ns(), 0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn metrics_json_shape() {
        let m = ServeMetrics::new();
        m.completed.fetch_add(3, Ordering::Relaxed);
        m.total.record_ns(1_500_000);
        let j = m.snapshot().to_json();
        assert!(j.contains("\"completed\":3"));
        assert!(j.contains("\"total_latency\":{\"count\":1"));
        assert!(m.snapshot().render_table().contains("p999"));
    }
}
