//! The `agatha serve` wire protocol: newline-delimited JSON over a local
//! socket, one request object per line, one response object per line.
//!
//! Dependency-free by design — both the parser (a minimal flat-object JSON
//! reader) and the writers live here so the daemon, the bundled client and
//! the tests all speak exactly the same dialect.
//!
//! Requests:
//!
//! ```text
//! {"id": 7, "ref": "ACGT", "query": "ACGA", "deadline_ms": 50}
//! {"cmd": "ping"} | {"cmd": "stats"} | {"cmd": "shutdown"}
//! ```
//!
//! Responses (`status` is the discriminator):
//!
//! * `ok` — scored; carries `score`, `queue_us`, `service_us`, `total_us`.
//! * `dropped` — the deadline passed before kernel dispatch (`queue_us`).
//! * `rejected` — admission queue full; `code` 503, sent immediately.
//! * `error` — malformed request; carries `reason`.

use std::collections::HashMap;

/// A JSON scalar. The protocol only uses flat objects of scalars.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
    Null,
}

impl JsonValue {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            JsonValue::Int(i) => Some(*i),
            JsonValue::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }
}

/// Parse one flat JSON object (`{"key": scalar, ...}`). Nested containers
/// are rejected — the protocol never produces them.
pub fn parse_flat_object(line: &str) -> Result<HashMap<String, JsonValue>, String> {
    let mut p = Parser { bytes: line.as_bytes(), pos: 0 };
    p.skip_ws();
    p.expect(b'{')?;
    let mut out = HashMap::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
        return p.finish(out);
    }
    loop {
        p.skip_ws();
        let key = p.string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        let val = p.value()?;
        out.insert(key, val);
        p.skip_ws();
        match p.next() {
            Some(b',') => continue,
            Some(b'}') => return p.finish(out),
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn finish(
        &mut self,
        out: HashMap<String, JsonValue>,
    ) -> Result<HashMap<String, JsonValue>, String> {
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing bytes after object at offset {}", self.pos));
        }
        Ok(out)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.next() {
            Some(got) if got == b => Ok(()),
            got => Err(format!("expected '{}', got {got:?}", b as char)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.next() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b'r') => s.push('\r'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.next().ok_or("truncated \\u escape")?;
                            code = code * 16
                                + (d as char).to_digit(16).ok_or("bad hex in \\u escape")?;
                        }
                        s.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) if b < 0x20 => return Err("raw control byte in string".to_string()),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences byte-for-byte.
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    if start + len > self.bytes.len() {
                        return Err("truncated UTF-8 sequence".to_string());
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|e| format!("invalid UTF-8 in string: {e}"))?;
                    s.push_str(chunk);
                    self.pos = start + len;
                }
            }
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'{' | b'[') => Err("nested containers are not part of the protocol".to_string()),
            Some(_) => self.number(),
            None => Err("missing value".to_string()),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal (expected {word})"))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if text.is_empty() {
            return Err("empty number".to_string());
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(JsonValue::Int(i));
        }
        text.parse::<f64>().map(JsonValue::Float).map_err(|_| format!("bad number '{text}'"))
    }
}

/// One alignment request.
#[derive(Debug, Clone, PartialEq)]
pub struct AlignRequest {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: i64,
    pub reference: String,
    pub query: String,
    /// Per-request deadline override in milliseconds from admission;
    /// absent = the server's `--deadline-ms` default.
    pub deadline_ms: Option<u64>,
}

/// A parsed client line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Align(AlignRequest),
    Ping,
    Stats,
    Shutdown,
}

/// Parse one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let obj = parse_flat_object(line)?;
    if let Some(cmd) = obj.get("cmd").and_then(JsonValue::as_str) {
        return match cmd {
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown cmd '{other}'")),
        };
    }
    let id = obj.get("id").and_then(JsonValue::as_int).ok_or("missing integer 'id'")?;
    let reference =
        obj.get("ref").and_then(JsonValue::as_str).ok_or("missing string 'ref'")?.to_string();
    let query =
        obj.get("query").and_then(JsonValue::as_str).ok_or("missing string 'query'")?.to_string();
    let deadline_ms = match obj.get("deadline_ms") {
        None | Some(JsonValue::Null) => None,
        Some(v) => {
            let ms = v.as_int().filter(|&ms| ms > 0).ok_or(
                "'deadline_ms' must be a positive integer (omit the field for no deadline)",
            )?;
            Some(ms as u64)
        }
    };
    Ok(Request::Align(AlignRequest { id, reference, query, deadline_ms }))
}

/// Escape a string for embedding in a JSON document.
pub fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Render the align request line a client sends.
pub fn align_request_line(
    id: i64,
    reference: &str,
    query: &str,
    deadline_ms: Option<u64>,
) -> String {
    let deadline = match deadline_ms {
        Some(ms) => format!(",\"deadline_ms\":{ms}"),
        None => String::new(),
    };
    format!(
        "{{\"id\":{id},\"ref\":\"{}\",\"query\":\"{}\"{deadline}}}",
        escape_json(reference),
        escape_json(query)
    )
}

/// `ok` response: scored, with the request's latency split.
pub fn ok_response(id: i64, score: i32, queue_us: u64, service_us: u64, total_us: u64) -> String {
    format!(
        "{{\"id\":{id},\"status\":\"ok\",\"score\":{score},\"queue_us\":{queue_us},\
         \"service_us\":{service_us},\"total_us\":{total_us}}}"
    )
}

/// `dropped` response: the deadline passed before kernel dispatch.
pub fn dropped_response(id: i64, queue_us: u64) -> String {
    format!(
        "{{\"id\":{id},\"status\":\"dropped\",\"reason\":\"deadline\",\"queue_us\":{queue_us}}}"
    )
}

/// `rejected` response: admission queue full (HTTP-style 503), sent
/// immediately at admission time without waiting for any batch.
pub fn rejected_response(id: i64) -> String {
    format!("{{\"id\":{id},\"status\":\"rejected\",\"code\":503,\"reason\":\"queue full\"}}")
}

/// `error` response for malformed requests.
pub fn error_response(id: Option<i64>, reason: &str) -> String {
    match id {
        Some(id) => {
            format!("{{\"id\":{id},\"status\":\"error\",\"reason\":\"{}\"}}", escape_json(reason))
        }
        None => format!("{{\"status\":\"error\",\"reason\":\"{}\"}}", escape_json(reason)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_align_request() {
        let r = parse_request(r#"{"id": 3, "ref": "ACGT", "query": "ACGA", "deadline_ms": 25}"#)
            .unwrap();
        assert_eq!(
            r,
            Request::Align(AlignRequest {
                id: 3,
                reference: "ACGT".to_string(),
                query: "ACGA".to_string(),
                deadline_ms: Some(25),
            })
        );
    }

    #[test]
    fn parses_commands() {
        assert_eq!(parse_request(r#"{"cmd": "ping"}"#).unwrap(), Request::Ping);
        assert_eq!(parse_request(r#"{"cmd": "stats"}"#).unwrap(), Request::Stats);
        assert_eq!(parse_request(r#"{"cmd": "shutdown"}"#).unwrap(), Request::Shutdown);
        assert!(parse_request(r#"{"cmd": "reboot"}"#).is_err());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"id": 1}"#).is_err(), "missing sequences");
        assert!(parse_request(r#"{"id": "x", "ref": "A", "query": "A"}"#).is_err());
        assert!(
            parse_request(r#"{"id": 1, "ref": "A", "query": "A", "deadline_ms": 0}"#).is_err(),
            "deadline_ms 0 is a usage error, not 'no deadline'"
        );
        assert!(parse_request(r#"{"id": 1, "ref": ["A"], "query": "A"}"#).is_err(), "nested");
        assert!(parse_request(r#"{"id": 1} trailing"#).is_err());
    }

    #[test]
    fn request_line_roundtrip() {
        let line = align_request_line(9, "AC\"GT", "AC\\GA", Some(7));
        match parse_request(&line).unwrap() {
            Request::Align(a) => {
                assert_eq!(a.id, 9);
                assert_eq!(a.reference, "AC\"GT");
                assert_eq!(a.query, "AC\\GA");
                assert_eq!(a.deadline_ms, Some(7));
            }
            other => panic!("expected align, got {other:?}"),
        }
    }

    #[test]
    fn responses_parse_back() {
        let obj = parse_flat_object(&ok_response(4, -12, 10, 20, 30)).unwrap();
        assert_eq!(obj["status"], JsonValue::Str("ok".to_string()));
        assert_eq!(obj["score"], JsonValue::Int(-12));
        assert_eq!(obj["total_us"], JsonValue::Int(30));
        let obj = parse_flat_object(&rejected_response(5)).unwrap();
        assert_eq!(obj["code"], JsonValue::Int(503));
        let obj = parse_flat_object(&dropped_response(6, 99)).unwrap();
        assert_eq!(obj["reason"], JsonValue::Str("deadline".to_string()));
        let obj = parse_flat_object(&error_response(None, "bad \"x\"")).unwrap();
        assert_eq!(obj["reason"], JsonValue::Str("bad \"x\"".to_string()));
    }

    #[test]
    fn unicode_and_floats() {
        let obj = parse_flat_object(r#"{"a": "café", "b": 1.5, "c": null, "d": true}"#).unwrap();
        assert_eq!(obj["a"], JsonValue::Str("café".to_string()));
        assert_eq!(obj["b"], JsonValue::Float(1.5));
        assert_eq!(obj["c"], JsonValue::Null);
        assert_eq!(obj["d"], JsonValue::Bool(true));
    }
}
