//! The `agatha serve` daemon: a long-running alignment service over a
//! local TCP socket speaking the NDJSON protocol of [`crate::protocol`].
//!
//! Thread topology:
//!
//! * one **acceptor** polls the listener and spawns a reader/writer thread
//!   pair per connection;
//! * connection **readers** parse request lines and offer them to the
//!   shared [`AdmissionWindow`] — a full queue answers 503 *immediately*
//!   (bounded queue wait, the backpressure contract), a disconnect flips
//!   the connection's cancel flag so its pending work is dropped before
//!   kernel dispatch;
//! * one **batcher** owns the [`BatchEngine`]: it sleeps until the window
//!   closes, sweeps deadline-expired requests (answered as `dropped`
//!   without dispatch), hands the batch to the engine via
//!   [`BatchEngine::run_tagged`], then answers each request and records
//!   queue/service/total latency in the lock-free [`ServeMetrics`].
//!
//! With [`ServeConfig::prefetch`] > 0 (the default) the batcher splits in
//! two: a **harvester** thread sweeps the window — answering expiries the
//! moment they are due instead of after the current kernel batch — and
//! feeds ready batches through a bounded channel to the **executor**, which
//! owns the engine. The channel bound caps how many batches wait staged
//! (backpressure falls back to the admission queue), and deadline checks
//! re-run at dispatch inside the engine, so a batch that overstays the
//! staging channel is still dropped, not served late.
//!
//! While the batcher executes batch *N*, readers fill window *N+1*, so
//! admission and kernel execution overlap. All shutdown paths (SIGTERM via
//! [`termination_flag`], the `{"cmd":"shutdown"}` request, or
//! [`ServeHandle::request_shutdown`]) drain the queue — every admitted
//! request is answered before the daemon exits.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use agatha_align::{ScoreModel, Scoring, Task};
use agatha_core::clock::{Clock, SystemClock};
use agatha_core::engine::{BatchEngine, JobMeta, JobOutcome};
use agatha_core::{AgathaConfig, Pipeline};

use crate::histogram::{MetricsSnapshot, ServeMetrics};
use crate::protocol::{
    dropped_response, error_response, ok_response, parse_request, rejected_response, Request,
};
use crate::window::{AdmissionWindow, Harvest, Pending, WindowCfg};

/// How often blocked loops re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(25);

/// Full daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    pub scoring: Scoring,
    pub config: AgathaConfig,
    /// Simulated GPUs for the engine pipeline.
    pub gpus: usize,
    /// Host worker threads (0 = all cores).
    pub threads: usize,
    /// Admission window length in nanoseconds (must be ≥ 1).
    pub window_ns: u64,
    /// Largest batch dispatched to the engine at once.
    pub max_batch: usize,
    /// Admission queue bound; offers beyond it are rejected with 503.
    pub max_queue: usize,
    /// Default per-request deadline (absent = requests wait forever unless
    /// they carry their own `deadline_ms`).
    pub default_deadline_ns: Option<u64>,
    /// Queue waits beyond this count as starvation (0 = derive as
    /// 8 × `window_ns`).
    pub starvation_ns: u64,
    /// Batches the harvester may stage ahead of the executing engine
    /// (0 = harvest and execute on one thread, the pre-split behaviour).
    /// Defaults to the `AGATHA_PREFETCH` environment override.
    pub prefetch: usize,
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
}

impl ServeConfig {
    pub fn new(scoring: Scoring) -> ServeConfig {
        ServeConfig {
            scoring,
            config: AgathaConfig::agatha(),
            gpus: 1,
            threads: 0,
            window_ns: 5_000_000, // 5ms
            max_batch: 1024,
            max_queue: 4096,
            default_deadline_ns: None,
            starvation_ns: 0,
            prefetch: agatha_core::options::default_prefetch_depth(),
            addr: "127.0.0.1:0".to_string(),
        }
    }

    fn window_cfg(&self) -> WindowCfg {
        WindowCfg {
            window_ns: self.window_ns,
            max_batch: self.max_batch,
            max_queue: self.max_queue,
        }
    }

    /// The effective starvation threshold.
    pub fn starvation_threshold_ns(&self) -> u64 {
        if self.starvation_ns > 0 {
            self.starvation_ns
        } else {
            8 * self.window_ns
        }
    }

    pub fn validate(&self) -> Result<(), String> {
        self.window_cfg().validate()?;
        if self.gpus == 0 {
            return Err("gpus must be at least 1 (got 0)".to_string());
        }
        if self.default_deadline_ns == Some(0) {
            return Err("default deadline must be at least 1ns (omit it for none)".to_string());
        }
        Ok(())
    }
}

/// Per-request context carried through the admission window: who to
/// answer, and the connection's cancel flag.
struct ReqCtx {
    /// Client-chosen correlation id, echoed in the response.
    id: i64,
    reply: mpsc::Sender<String>,
    cancel: Arc<AtomicBool>,
}

struct Shared {
    window: Mutex<AdmissionWindow<ReqCtx>>,
    wake: Condvar,
    shutdown: AtomicBool,
    metrics: Arc<ServeMetrics>,
    clock: Arc<dyn Clock>,
    starvation_ns: u64,
    default_deadline_ns: Option<u64>,
    /// Engine-side task ids (diagnostic only; response routing uses the
    /// client id in [`ReqCtx`]).
    task_seq: AtomicU32,
    /// Score model the daemon aligns under; request sequences pack to this
    /// model's alphabet (DNA for the fixed model, 8-bit residue codes for a
    /// substitution matrix).
    model: ScoreModel,
}

impl Shared {
    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the batcher so the drain starts immediately.
        let _guard = self.window.lock().expect("window lock poisoned");
        self.wake.notify_all();
    }
}

/// A running daemon. Obtain with [`serve`]; stop with
/// [`ServeHandle::shutdown`] (or SIGTERM / a `{"cmd":"shutdown"}` request
/// followed by [`ServeHandle::join`]).
pub struct ServeHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    batcher: JoinHandle<()>,
}

impl ServeHandle {
    /// The bound socket address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live metrics (lock-free reads; snapshot at any time).
    pub fn metrics(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Whether a shutdown (signal, request, or explicit) is in progress.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Begin shutdown without waiting for the drain.
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Wait until the daemon has drained and exited; returns the final
    /// metrics snapshot (the SIGTERM/shutdown stats dump).
    pub fn join(self) -> MetricsSnapshot {
        self.batcher.join().expect("batcher panicked");
        self.acceptor.join().expect("acceptor panicked");
        self.shared.metrics.snapshot()
    }

    /// [`ServeHandle::request_shutdown`] + [`ServeHandle::join`].
    pub fn shutdown(self) -> MetricsSnapshot {
        self.request_shutdown();
        self.join()
    }
}

/// Start the daemon on the real monotonic clock.
pub fn serve(cfg: ServeConfig) -> Result<ServeHandle, String> {
    serve_with_clock(cfg, Arc::new(SystemClock::new()))
}

/// Start the daemon with an explicit time source (tests).
pub fn serve_with_clock(cfg: ServeConfig, clock: Arc<dyn Clock>) -> Result<ServeHandle, String> {
    cfg.validate()?;
    let listener = TcpListener::bind(&cfg.addr).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    listener.set_nonblocking(true).map_err(|e| e.to_string())?;

    let shared = Arc::new(Shared {
        window: Mutex::new(AdmissionWindow::new(cfg.window_cfg())?),
        wake: Condvar::new(),
        shutdown: AtomicBool::new(false),
        metrics: Arc::new(ServeMetrics::new()),
        clock,
        starvation_ns: cfg.starvation_threshold_ns(),
        default_deadline_ns: cfg.default_deadline_ns,
        task_seq: AtomicU32::new(0),
        model: cfg.scoring.model,
    });

    let mut pipeline = Pipeline::new(cfg.scoring, cfg.config.clone()).with_gpus(cfg.gpus);
    pipeline.host_threads = cfg.threads;
    let engine = BatchEngine::with_clock(pipeline, Arc::clone(&shared.clock));

    let batcher = {
        let shared = Arc::clone(&shared);
        let prefetch = cfg.prefetch;
        std::thread::spawn(move || batcher_loop(engine, &shared, prefetch))
    };
    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || acceptor_loop(listener, &shared))
    };
    Ok(ServeHandle { addr, shared, acceptor, batcher })
}

fn acceptor_loop(listener: TcpListener, shared: &Arc<Shared>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(shared);
                conns.push(std::thread::spawn(move || connection_loop(stream, &shared)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
        // Reap finished connection threads so a long-lived daemon doesn't
        // accumulate handles.
        conns.retain(|h| !h.is_finished());
    }
    for h in conns {
        let _ = h.join();
    }
}

fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));
    let Ok(write_half) = stream.try_clone() else { return };

    // Dedicated writer: responses are produced by this reader (errors,
    // rejections) *and* by the batcher thread (completions, drops), so all
    // writes funnel through one channel to keep lines atomic.
    let (reply_tx, reply_rx) = mpsc::channel::<String>();
    let writer = std::thread::spawn(move || {
        let mut out = write_half;
        for line in reply_rx {
            let mut bytes = line.into_bytes();
            bytes.push(b'\n');
            if out.write_all(&bytes).is_err() {
                break;
            }
        }
    });

    // One cancel flag for the whole connection: a disconnect cancels every
    // request this client still has in flight.
    let cancel = Arc::new(AtomicBool::new(false));
    let mut input = stream;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 8192];
    'outer: loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match input.read(&mut chunk) {
            Ok(0) => {
                // Client closed: its pending work is no longer wanted.
                cancel.store(true, Ordering::Release);
                break;
            }
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                while let Some(eol) = buf.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = buf.drain(..=eol).collect();
                    let line = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
                    if line.trim().is_empty() {
                        continue;
                    }
                    if handle_line(&line, shared, &reply_tx, &cancel) == Flow::Close {
                        break 'outer;
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => {
                cancel.store(true, Ordering::Release);
                break;
            }
        }
    }
    drop(reply_tx);
    // The writer drains replies already queued (including ones the batcher
    // is still producing through its own sender clones), then exits when
    // the last sender drops.
    let _ = writer.join();
}

#[derive(PartialEq)]
enum Flow {
    Continue,
    Close,
}

fn handle_line(
    line: &str,
    shared: &Arc<Shared>,
    reply_tx: &mpsc::Sender<String>,
    cancel: &Arc<AtomicBool>,
) -> Flow {
    let req = match parse_request(line) {
        Ok(req) => req,
        Err(e) => {
            let _ = reply_tx.send(error_response(None, &e));
            return Flow::Continue;
        }
    };
    match req {
        Request::Ping => {
            let _ = reply_tx.send("{\"status\":\"ok\"}".to_string());
        }
        Request::Stats => {
            let _ = reply_tx.send(shared.metrics.snapshot().to_json());
        }
        Request::Shutdown => {
            let _ = reply_tx.send("{\"status\":\"shutting-down\"}".to_string());
            shared.request_shutdown();
            return Flow::Close;
        }
        Request::Align(a) => {
            if shared.shutdown.load(Ordering::SeqCst) {
                shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                let _ = reply_tx.send(rejected_response(a.id));
                return Flow::Continue;
            }
            let task = Task::from_strs_model(
                shared.task_seq.fetch_add(1, Ordering::Relaxed),
                &a.reference,
                &a.query,
                &shared.model,
            );
            if let Err(e) = task.admit() {
                let _ = reply_tx.send(error_response(Some(a.id), &e));
                return Flow::Continue;
            }
            let now = shared.clock.now_ns();
            let deadline_ns = a
                .deadline_ms
                .map(|ms| now + ms * 1_000_000)
                .or_else(|| shared.default_deadline_ns.map(|d| now + d));
            let pending = Pending {
                task,
                deadline_ns,
                enqueued_ns: now,
                ctx: ReqCtx { id: a.id, reply: reply_tx.clone(), cancel: Arc::clone(cancel) },
            };
            let mut window = shared.window.lock().expect("window lock poisoned");
            match window.offer(pending, now) {
                Ok(()) => shared.wake.notify_all(),
                Err(rejected) => {
                    // Bounded-queue backpressure: answer 503 now, while
                    // still holding nothing but the reply channel — the
                    // client sees the rejection without any batch wait.
                    drop(window);
                    shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                    let _ = rejected.ctx.reply.send(rejected_response(rejected.ctx.id));
                }
            }
        }
    }
    Flow::Continue
}

fn batcher_loop(mut engine: BatchEngine, shared: &Arc<Shared>, prefetch: usize) {
    if prefetch == 0 {
        while let Some(harvest) = next_harvest(shared) {
            answer_expired(shared, harvest.expired);
            execute_batch(&mut engine, shared, harvest.batch);
        }
        return;
    }
    // Harvester/executor split: the harvester sweeps the window (answering
    // expiries immediately, not after the in-flight kernel batch) and
    // stages up to `prefetch` ready batches in a bounded channel; this
    // thread owns the engine and drains them. When the harvester sees the
    // shutdown drain through (`next_harvest` → `None`) it drops the
    // sender, which ends the executor's loop after the staged tail.
    let (tx, rx) = mpsc::sync_channel::<Vec<Pending<ReqCtx>>>(prefetch);
    std::thread::scope(|s| {
        s.spawn(move || {
            while let Some(harvest) = next_harvest(shared) {
                answer_expired(shared, harvest.expired);
                if harvest.batch.is_empty() {
                    continue;
                }
                if tx.send(harvest.batch).is_err() {
                    // Executor gone (it never exits first in practice —
                    // scoped threads make a panic there abort the scope).
                    break;
                }
            }
        });
        for batch in rx {
            execute_batch(&mut engine, shared, batch);
        }
    });
}

/// Block until there is something to answer: expired requests, a closed
/// window's batch, or (on shutdown with an empty queue) `None` to exit.
fn next_harvest(shared: &Arc<Shared>) -> Option<Harvest<ReqCtx>> {
    let mut window = shared.window.lock().expect("window lock poisoned");
    loop {
        let now = shared.clock.now_ns();
        if shared.shutdown.load(Ordering::SeqCst) {
            window.force_close(now);
        }
        let harvest = window.collect_due(now);
        if !harvest.batch.is_empty() || !harvest.expired.is_empty() {
            return Some(harvest);
        }
        if shared.shutdown.load(Ordering::SeqCst) && window.is_empty() {
            return None;
        }
        let wait = match window.next_due() {
            Some(due) => Duration::from_nanos(due.saturating_sub(now).max(1)).min(POLL),
            None => POLL,
        };
        let (guard, _timeout) =
            shared.wake.wait_timeout(window, wait).expect("window lock poisoned");
        window = guard;
    }
}

/// Answer window-level expiries: the deadline passed while the request sat
/// in the admission queue; it never reached the engine.
fn answer_expired(shared: &Arc<Shared>, expired: Vec<Pending<ReqCtx>>) {
    for p in expired {
        let now = shared.clock.now_ns();
        let queue_ns = now.saturating_sub(p.enqueued_ns);
        record_drop(shared, queue_ns);
        let _ = p.ctx.reply.send(dropped_response(p.ctx.id, queue_ns / 1_000));
    }
}

/// Dispatch one harvested batch to the engine and answer every request in
/// it. Deadlines are re-checked inside [`BatchEngine::run_tagged`], so a
/// batch that waited in the prefetch staging channel still drops its
/// overdue requests before kernel dispatch.
fn execute_batch(engine: &mut BatchEngine, shared: &Arc<Shared>, batch: Vec<Pending<ReqCtx>>) {
    let metrics = &shared.metrics;
    if batch.is_empty() {
        return;
    }
    metrics.batches.fetch_add(1, Ordering::Relaxed);
    let mut ctxs = Vec::with_capacity(batch.len());
    let jobs: Vec<(Task, JobMeta)> = batch
        .into_iter()
        .map(|p| {
            let meta = JobMeta {
                enqueued_ns: p.enqueued_ns,
                deadline_ns: p.deadline_ns,
                cancel: Some(Arc::clone(&p.ctx.cancel)),
            };
            ctxs.push((p.ctx, p.enqueued_ns));
            (p.task, meta)
        })
        .collect();
    let outcomes = engine.run_tagged(jobs);
    for (outcome, (ctx, enqueued_ns)) in outcomes.into_iter().zip(ctxs) {
        match outcome {
            JobOutcome::Completed { run, queue_ns, service_ns } => {
                let total_ns = shared.clock.now_ns().saturating_sub(enqueued_ns);
                metrics.completed.fetch_add(1, Ordering::Relaxed);
                metrics.queue.record_ns(queue_ns);
                metrics.service.record_ns(service_ns);
                metrics.total.record_ns(total_ns);
                if queue_ns > shared.starvation_ns {
                    metrics.starved.fetch_add(1, Ordering::Relaxed);
                }
                let _ = ctx.reply.send(ok_response(
                    ctx.id,
                    run.result.score,
                    queue_ns / 1_000,
                    service_ns / 1_000,
                    total_ns / 1_000,
                ));
            }
            JobOutcome::DroppedDeadline { queue_ns } => {
                record_drop(shared, queue_ns);
                let _ = ctx.reply.send(dropped_response(ctx.id, queue_ns / 1_000));
            }
            JobOutcome::Cancelled { queue_ns } => {
                // The client is gone; account for it, nobody to answer.
                metrics.cancelled.fetch_add(1, Ordering::Relaxed);
                metrics.queue.record_ns(queue_ns);
            }
        }
    }
}

fn record_drop(shared: &Arc<Shared>, queue_ns: u64) {
    let metrics = &shared.metrics;
    metrics.dropped_deadline.fetch_add(1, Ordering::Relaxed);
    metrics.queue.record_ns(queue_ns);
    metrics.total.record_ns(queue_ns);
    if queue_ns > shared.starvation_ns {
        metrics.starved.fetch_add(1, Ordering::Relaxed);
    }
}

static TERM_FLAG: AtomicBool = AtomicBool::new(false);

extern "C" fn on_termination_signal(_sig: i32) {
    // Async-signal-safe: a single atomic store.
    TERM_FLAG.store(true, Ordering::SeqCst);
}

/// Install SIGTERM/SIGINT handlers (idempotent) and return the flag they
/// set. The CLI polls this to turn a signal into a graceful
/// drain-and-dump shutdown. On non-Unix targets the flag simply never
/// fires. Uses the platform libc `signal` symbol directly — no crates.
pub fn termination_flag() -> &'static AtomicBool {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_termination_signal);
            signal(SIGINT, on_termination_signal);
        }
    }
    &TERM_FLAG
}
