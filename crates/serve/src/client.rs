//! A small blocking NDJSON client for the serve protocol — what the
//! integration tests and `serve_bench` drive the daemon with, and a
//! reference implementation of the wire format for external callers.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{align_request_line, parse_flat_object, JsonValue};

/// A response line, decoded.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Echoed request id (absent on parse-error responses).
    pub id: Option<i64>,
    pub status: Status,
    pub score: Option<i32>,
    pub queue_us: Option<u64>,
    pub service_us: Option<u64>,
    pub total_us: Option<u64>,
    /// `reason` text for dropped/rejected/error responses.
    pub reason: Option<String>,
    /// Raw line, for stats documents and debugging.
    pub raw: String,
}

/// Terminal status of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    Ok,
    Dropped,
    Rejected,
    Error,
    /// Non-request replies (`ping`, `stats`, `shutting-down`).
    Info,
}

/// Decode one response line.
pub fn parse_response(line: &str) -> Result<Response, String> {
    let obj = parse_flat_object(line)?;
    let status = match obj.get("status").and_then(JsonValue::as_str) {
        Some("ok") => Status::Ok,
        Some("dropped") => Status::Dropped,
        Some("rejected") => Status::Rejected,
        Some("error") => Status::Error,
        Some(_) => Status::Info,
        // A stats document has no status field; treat as info.
        None => Status::Info,
    };
    let get_u64 = |k: &str| obj.get(k).and_then(JsonValue::as_int).map(|v| v.max(0) as u64);
    Ok(Response {
        id: obj.get("id").and_then(JsonValue::as_int),
        status,
        score: obj.get("score").and_then(JsonValue::as_int).map(|s| s as i32),
        queue_us: get_u64("queue_us"),
        service_us: get_u64("service_us"),
        total_us: get_u64("total_us"),
        reason: obj.get("reason").and_then(JsonValue::as_str).map(str::to_string),
        raw: line.to_string(),
    })
}

/// Blocking connection to a running daemon. Supports both call/response
/// ([`ServeClient::align`]) and pipelined use ([`ServeClient::send_align`]
/// + [`ServeClient::recv`]).
pub struct ServeClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl ServeClient {
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<ServeClient, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
        Ok(ServeClient { writer: stream, reader })
    }

    /// Send one raw protocol line.
    pub fn send_line(&mut self, line: &str) -> Result<(), String> {
        let mut bytes = line.as_bytes().to_vec();
        bytes.push(b'\n');
        self.writer.write_all(&bytes).map_err(|e| format!("send: {e}"))
    }

    /// Read the next raw response line.
    pub fn recv_line(&mut self) -> Result<String, String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).map_err(|e| format!("recv: {e}"))?;
        if n == 0 {
            return Err("server closed the connection".to_string());
        }
        Ok(line.trim_end().to_string())
    }

    /// Read the next response line, decoded.
    pub fn recv(&mut self) -> Result<Response, String> {
        parse_response(&self.recv_line()?)
    }

    /// Fire an align request without waiting (pipelined).
    pub fn send_align(
        &mut self,
        id: i64,
        reference: &str,
        query: &str,
        deadline_ms: Option<u64>,
    ) -> Result<(), String> {
        self.send_line(&align_request_line(id, reference, query, deadline_ms))
    }

    /// Align one pair and wait for its response.
    pub fn align(
        &mut self,
        id: i64,
        reference: &str,
        query: &str,
        deadline_ms: Option<u64>,
    ) -> Result<Response, String> {
        self.send_align(id, reference, query, deadline_ms)?;
        self.recv()
    }

    /// `{"cmd":"ping"}` round trip.
    pub fn ping(&mut self) -> Result<Response, String> {
        self.send_line("{\"cmd\":\"ping\"}")?;
        self.recv()
    }

    /// Fetch the server's stats JSON document. Returned raw: the stats
    /// dump nests histogram objects, which the flat request/response
    /// parser deliberately does not model.
    pub fn stats(&mut self) -> Result<String, String> {
        self.send_line("{\"cmd\":\"stats\"}")?;
        self.recv_line()
    }

    /// Ask the server to shut down (it acknowledges, then drains).
    pub fn shutdown_server(&mut self) -> Result<Response, String> {
        self.send_line("{\"cmd\":\"shutdown\"}")?;
        self.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{dropped_response, ok_response, rejected_response};

    #[test]
    fn decodes_each_status() {
        let r = parse_response(&ok_response(1, 42, 10, 20, 30)).unwrap();
        assert_eq!(r.status, Status::Ok);
        assert_eq!(r.score, Some(42));
        assert_eq!(r.total_us, Some(30));
        let r = parse_response(&dropped_response(2, 99)).unwrap();
        assert_eq!(r.status, Status::Dropped);
        assert_eq!(r.queue_us, Some(99));
        let r = parse_response(&rejected_response(3)).unwrap();
        assert_eq!(r.status, Status::Rejected);
        assert_eq!(r.id, Some(3));
    }
}
