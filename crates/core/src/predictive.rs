//! Predictive bucketing — the §6 "Different Bucketing Parameters"
//! discussion, implemented: "if we predict exactly when the termination
//! condition is met before execution, then the kernel could remove most of
//! the remaining workload imbalance. We would like to explore this
//! possibility in future work."
//!
//! Uneven bucketing sorts by the *a-priori* workload (anti-diagonal count),
//! which mis-ranks tasks that Z-drop early. This module provides workload
//! predictors at three fidelity levels:
//!
//! * [`Predictor::AntiDiags`] — the paper's estimator (task dimensions only);
//! * [`Predictor::SeedDivergence`] — a cheap heuristic: probe every k-th
//!   base pair for equality and damp the estimate by the expected
//!   termination point;
//! * [`Predictor::Oracle`] — the true executed block count (an upper bound
//!   on what prediction could achieve).
//!
//! The predictors feed the ordinary uneven-bucketing machinery; tests
//! verify the oracle never loses to the a-priori estimator, quantifying
//! the head-room the paper anticipates.

use agatha_align::Task;

use crate::kernel::TaskRun;

/// Workload predictor fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Predictor {
    /// `n + m - 1` (the paper's sorting key, §5.6).
    AntiDiags,
    /// Anti-diagonals damped by a sampled divergence probe.
    SeedDivergence,
    /// The executed block count (requires the runs; perfect prediction).
    Oracle,
}

/// Probe stride for [`Predictor::SeedDivergence`].
const PROBE_STRIDE: usize = 64;
/// Consecutive mismatching probes that suggest an early Z-drop.
const DIVERGED_PROBES: usize = 2;

/// Estimate per-task workloads under the chosen predictor.
///
/// `runs` is only consulted by [`Predictor::Oracle`]; pass the kernel runs
/// in task order.
pub fn predict_workloads(tasks: &[Task], runs: Option<&[TaskRun]>, p: Predictor) -> Vec<u64> {
    match p {
        Predictor::AntiDiags => tasks.iter().map(|t| t.antidiags() as u64).collect(),
        Predictor::SeedDivergence => tasks.iter().map(estimate_divergence).collect(),
        Predictor::Oracle => {
            let runs = runs.expect("oracle predictor needs the executed runs");
            assert_eq!(runs.len(), tasks.len());
            runs.iter().map(|r| r.blocks.max(1)).collect()
        }
    }
}

/// Probe the main diagonal every [`PROBE_STRIDE`] bases; when several
/// consecutive probes mismatch, assume the extension Z-drops near the first
/// of them.
fn estimate_divergence(task: &Task) -> u64 {
    let full = task.antidiags() as u64;
    let len = task.ref_len().min(task.query_len());
    if len < PROBE_STRIDE * (DIVERGED_PROBES + 1) {
        return full.max(1);
    }
    let mut misses = 0usize;
    let mut probe = PROBE_STRIDE;
    while probe < len {
        if task.reference.code(probe) != task.query.code(probe) {
            misses += 1;
            if misses >= DIVERGED_PROBES {
                // Diverged around `probe - (DIVERGED_PROBES-1)*stride`.
                let at = probe - (DIVERGED_PROBES - 1) * PROBE_STRIDE;
                return (2 * at as u64).max(1);
            }
        } else {
            misses = 0;
        }
        probe += PROBE_STRIDE;
    }
    full.max(1)
}

/// Rank-correlation-style quality measure: fraction of task pairs the
/// predictor orders the same way as the oracle.
pub fn pairwise_agreement(predicted: &[u64], oracle: &[u64]) -> f64 {
    assert_eq!(predicted.len(), oracle.len());
    let n = predicted.len();
    if n < 2 {
        return 1.0;
    }
    let mut agree = 0u64;
    let mut total = 0u64;
    for i in 0..n {
        for j in (i + 1)..n {
            if oracle[i] == oracle[j] {
                continue;
            }
            total += 1;
            let o = oracle[i] > oracle[j];
            let p = predicted[i] > predicted[j];
            if o == p {
                agree += 1;
            }
        }
    }
    if total == 0 {
        1.0
    } else {
        agree as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucketing::{build_warps, OrderingStrategy};
    use crate::options::AgathaConfig;
    use crate::pipeline::Pipeline;
    use crate::warp_sim::simulate_warp;
    use agatha_align::Scoring;
    use agatha_gpu_sim::{sched, CostModel, GpuSpec};

    fn mixed_tasks() -> (Vec<Task>, Scoring) {
        // Half the tasks are clean long matches; half are long tasks whose
        // tail diverges early (the a-priori estimator misranks them).
        let mut tasks = Vec::new();
        let mut x = 3u64;
        for id in 0..32u32 {
            let len = if id % 2 == 0 { 1600 } else { 1700 };
            let mut r = String::new();
            for _ in 0..len {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                r.push(['A', 'C', 'G', 'T'][(x >> 33) as usize % 4]);
            }
            let q = if id % 2 == 0 {
                r.clone()
            } else {
                // Diverge after 200 bases (every base rotated, so nothing
                // matches): Z-drop long before the end.
                let mut q = r[..200].to_string();
                for ch in r[200..].chars() {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let rot = 1 + ((x >> 35) as usize % 3);
                    let idx = ['A', 'C', 'G', 'T'].iter().position(|&c| c == ch).unwrap();
                    q.push(['A', 'C', 'G', 'T'][(idx + rot) % 4]);
                }
                q
            };
            tasks.push(Task::from_strs(id, &r, &q));
        }
        (tasks, Scoring::new(2, 4, 4, 2, 100, 64))
    }

    #[test]
    fn divergence_probe_detects_early_zdrop() {
        let (tasks, _) = mixed_tasks();
        let est = predict_workloads(&tasks, None, Predictor::SeedDivergence);
        let apriori = predict_workloads(&tasks, None, Predictor::AntiDiags);
        // Diverging tasks (odd ids) must be estimated far smaller than their
        // a-priori size; clean tasks keep it.
        for (k, (&e, &a)) in est.iter().zip(&apriori).enumerate() {
            if k % 2 == 1 {
                assert!(e < a / 2, "task {k}: est {e} vs a-priori {a}");
            } else {
                assert_eq!(e, a, "clean task {k} must keep its estimate");
            }
        }
    }

    #[test]
    fn oracle_agrees_with_itself_and_probe_beats_apriori() {
        let (tasks, scoring) = mixed_tasks();
        let pipeline = Pipeline::new(scoring, AgathaConfig::agatha());
        let runs = pipeline.execute_tasks(&tasks);
        let oracle = predict_workloads(&tasks, Some(&runs), Predictor::Oracle);
        let probe = predict_workloads(&tasks, None, Predictor::SeedDivergence);
        let apriori = predict_workloads(&tasks, None, Predictor::AntiDiags);
        let probe_q = pairwise_agreement(&probe, &oracle);
        let apriori_q = pairwise_agreement(&apriori, &oracle);
        assert!(
            probe_q > apriori_q,
            "divergence probe ({probe_q:.2}) must rank better than anti-diagonals ({apriori_q:.2})"
        );
        assert!((pairwise_agreement(&oracle, &oracle) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn oracle_bucketing_never_loses() {
        let (tasks, scoring) = mixed_tasks();
        let cfg = AgathaConfig::agatha();
        let cost = CostModel::for_spec(&GpuSpec::rtx_a6000());
        let pipeline = Pipeline::new(scoring, cfg.clone());
        let runs = pipeline.execute_tasks(&tasks);

        let makespan = |workloads: &[u64]| {
            let warps = build_warps(
                workloads,
                cfg.subwarps_per_warp(),
                cfg.tasks_per_subwarp,
                OrderingStrategy::UnevenBucketing,
            );
            let cycles: Vec<f64> = warps
                .iter()
                .map(|w| {
                    let queues: Vec<Vec<&TaskRun>> =
                        w.queues.iter().map(|q| q.iter().map(|&i| &runs[i]).collect()).collect();
                    simulate_warp(&queues, &cfg, &cost).cycles
                })
                .collect();
            sched::makespan_cycles(&cycles, 4)
        };

        let apriori = makespan(&predict_workloads(&tasks, None, Predictor::AntiDiags));
        let oracle = makespan(&predict_workloads(&tasks, Some(&runs), Predictor::Oracle));
        assert!(oracle <= apriori * 1.001, "oracle bucketing must not lose: {oracle} vs {apriori}");
    }
}
