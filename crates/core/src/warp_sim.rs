//! Intra-warp execution simulation, with and without subwarp rejoining
//! (§4.3, Fig. 6).
//!
//! Without rejoining, each subwarp processes its task queue independently
//! and the warp's latency is the slowest subwarp (the `MAX_Subwarps` of
//! Table 1). With rejoining, subwarps synchronise at slice boundaries:
//! a subwarp whose task finished goes idle, finds an active subwarp, and
//! joins it from the next slice on — the merged group computes subsequent
//! slices with more lanes. New tasks are fetched only when *no* active
//! subwarp remains ("Reset Subwarps" in Fig. 6), i.e. generation by
//! generation.

use agatha_gpu_sim::CostModel;

use crate::kernel::TaskRun;
use crate::options::AgathaConfig;
use crate::trace::unit_cost;

/// Result of simulating one warp.
#[derive(Debug, Clone, PartialEq)]
pub struct WarpOutcome {
    /// Warp latency in cycles.
    pub cycles: f64,
    /// Blocks executed attributed to each subwarp slot (after rejoining,
    /// lanes execute parts of other subwarps' tasks — Fig. 12's data).
    pub subwarp_blocks: Vec<f64>,
    /// Lane-cycles spent idle waiting at generation barriers or (without
    /// rejoining) for the slowest subwarp.
    pub idle_lane_cycles: f64,
}

/// Simulate one warp whose subwarp `s` processes `queues[s]` in order.
pub fn simulate_warp(
    queues: &[Vec<&TaskRun>],
    cfg: &AgathaConfig,
    cost: &CostModel,
) -> WarpOutcome {
    if cfg.subwarp_rejoining {
        simulate_with_rejoining(queues, cfg, cost)
    } else {
        simulate_independent(queues, cfg, cost)
    }
}

fn simulate_independent(
    queues: &[Vec<&TaskRun>],
    cfg: &AgathaConfig,
    cost: &CostModel,
) -> WarpOutcome {
    let lanes = cfg.subwarp_lanes;
    let mut busy: Vec<f64> = Vec::with_capacity(queues.len());
    let mut blocks: Vec<f64> = Vec::with_capacity(queues.len());
    for q in queues {
        let mut t = 0.0;
        let mut bl = 0.0;
        for run in q {
            t += run.cycles(lanes, cfg, cost);
            bl += run.blocks as f64;
        }
        busy.push(t);
        blocks.push(bl);
    }
    let cycles = busy.iter().copied().fold(0.0, f64::max);
    let idle: f64 = busy.iter().map(|&b| (cycles - b) * lanes as f64).sum();
    WarpOutcome { cycles, subwarp_blocks: blocks, idle_lane_cycles: idle }
}

/// One merged execution group during rejoining.
struct Group<'a> {
    /// Subwarp slots contributing lanes (first = the owner of the task).
    members: Vec<usize>,
    lanes: usize,
    run: &'a TaskRun,
    next_unit: usize,
    /// Completion time of the last processed unit.
    time: f64,
}

fn simulate_with_rejoining(
    queues: &[Vec<&TaskRun>],
    cfg: &AgathaConfig,
    cost: &CostModel,
) -> WarpOutcome {
    let lanes0 = cfg.subwarp_lanes;
    let n = queues.len();
    let generations = queues.iter().map(Vec::len).max().unwrap_or(0);
    let mut total = 0.0f64;
    let mut blocks = vec![0.0f64; n];
    let mut idle_cycles = 0.0f64;

    for g in 0..generations {
        // Active groups for this generation; subwarps without a task in
        // this generation start in the idle pool at time 0.
        let mut groups: Vec<Group<'_>> = Vec::new();
        let mut idle: Vec<(usize, usize, f64)> = Vec::new(); // (subwarp, lanes, since)
        for (s, q) in queues.iter().enumerate() {
            match q.get(g) {
                Some(run) => groups.push(Group {
                    members: vec![s],
                    lanes: lanes0,
                    run,
                    next_unit: 0,
                    time: 0.0,
                }),
                None => idle.push((s, lanes0, 0.0)),
            }
        }

        let mut gen_end = 0.0f64;
        while !groups.is_empty() {
            // The group at the earliest boundary acts next (it is the one
            // idle subwarps can join soonest).
            let gi = groups
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.time.partial_cmp(&b.1.time).expect("finite"))
                .map(|(i, _)| i)
                .expect("non-empty");
            let now = groups[gi].time;

            // Absorb every subwarp that went idle at or before this
            // boundary (Fig. 6 steps 3a–3d).
            let mut absorbed = Vec::new();
            idle.retain(|&(s, l, since)| {
                if since <= now {
                    absorbed.push((s, l, since));
                    false
                } else {
                    true
                }
            });
            for (s, l, since) in absorbed {
                idle_cycles += (now - since) * l as f64;
                groups[gi].members.push(s);
                groups[gi].lanes += l;
            }

            let group = &mut groups[gi];
            if group.next_unit < group.run.units.len() {
                let unit = &group.run.units[group.next_unit];
                let c = unit_cost(unit, group.lanes, cfg, cost);
                group.time += c.cycles;
                group.next_unit += 1;
                // Attribute the unit's blocks to member subwarps by lane share.
                let share = unit.blocks as f64 / group.lanes as f64 * lanes0 as f64;
                for &m in &group.members {
                    blocks[m] += share;
                }
            } else {
                // Task complete: all member lanes go idle at `time`.
                let done = groups.swap_remove(gi);
                gen_end = gen_end.max(done.time);
                for &m in &done.members {
                    idle.push((m, lanes0, done.time));
                }
            }
        }
        // Remaining idle lanes wait for the generation barrier.
        for &(_, l, since) in &idle {
            idle_cycles += (gen_end - since) * l as f64;
        }
        total += gen_end;
    }

    WarpOutcome { cycles: total, subwarp_blocks: blocks, idle_lane_cycles: idle_cycles }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agatha_align::{Scoring, Task};
    use agatha_gpu_sim::GpuSpec;

    use crate::kernel::run_task;

    fn cost() -> CostModel {
        CostModel::for_spec(&GpuSpec::rtx_a6000())
    }

    fn mk_run(len: usize, seed: u64, cfg: &AgathaConfig) -> TaskRun {
        let mut r = String::new();
        let mut x = seed | 1;
        for _ in 0..len {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            r.push(['A', 'C', 'G', 'T'][(x >> 33) as usize % 4]);
        }
        let t = Task::from_strs(0, &r, &r);
        // Band wide enough that a slice spans more block rows than one
        // subwarp's lanes — the regime where rejoining can help.
        let s = Scoring::new(2, 4, 4, 2, Scoring::NO_ZDROP, 64);
        run_task(&t, &s, cfg)
    }

    #[test]
    fn independent_takes_max() {
        let cfg = AgathaConfig::agatha().with_sr(false);
        let big = mk_run(600, 3, &cfg);
        let small = mk_run(100, 5, &cfg);
        let queues = vec![vec![&big], vec![&small], vec![&small], vec![&small]];
        let out = simulate_warp(&queues, &cfg, &cost());
        let big_alone = big.cycles(cfg.subwarp_lanes, &cfg, &cost());
        assert!((out.cycles - big_alone).abs() < 1e-6);
        assert!(out.idle_lane_cycles > 0.0);
    }

    #[test]
    fn rejoining_speeds_up_imbalanced_warp() {
        // Pinned to the paper's 8×8 geometry: the imbalanced-warp regime
        // this test characterizes assumes the block-row granularity of the
        // GPU kernel, and a forced wide geometry (AGATHA_BLOCK=16) halves
        // the rows per slice, collapsing the imbalance being measured.
        let cfg = AgathaConfig::agatha().with_block_dim(agatha_align::BlockDim::B8);
        let big = mk_run(600, 3, &cfg);
        let small = mk_run(100, 5, &cfg);
        let queues = vec![vec![&big], vec![&small], vec![&small], vec![&small]];
        let without = simulate_warp(&queues, &cfg.clone().with_sr(false), &cost());
        let with = simulate_warp(&queues, &cfg, &cost());
        assert!(
            with.cycles < without.cycles,
            "rejoining must help: {} vs {}",
            with.cycles,
            without.cycles
        );
    }

    #[test]
    fn rejoining_never_slower_than_slowest_subwarp_alone() {
        let cfg = AgathaConfig::agatha();
        let a = mk_run(500, 7, &cfg);
        let b = mk_run(300, 11, &cfg);
        let c = mk_run(200, 13, &cfg);
        let d = mk_run(50, 17, &cfg);
        let queues = vec![vec![&a], vec![&b], vec![&c], vec![&d]];
        let with = simulate_warp(&queues, &cfg, &cost());
        let without = simulate_warp(&queues, &cfg.clone().with_sr(false), &cost());
        assert!(with.cycles <= without.cycles + 1e-6);
    }

    #[test]
    fn balanced_warp_unchanged_by_rejoining() {
        let cfg = AgathaConfig::agatha();
        let a = mk_run(300, 7, &cfg);
        let queues = vec![vec![&a], vec![&a], vec![&a], vec![&a]];
        let with = simulate_warp(&queues, &cfg, &cost());
        let without = simulate_warp(&queues, &cfg.clone().with_sr(false), &cost());
        // All subwarps finish together: nothing to steal; tiny tolerance for
        // boundary-order effects.
        assert!((with.cycles - without.cycles).abs() / without.cycles < 0.05);
    }

    #[test]
    fn generations_are_barriers() {
        let cfg = AgathaConfig::agatha();
        let big = mk_run(400, 3, &cfg);
        let small = mk_run(80, 5, &cfg);
        // Two generations: [big, small] / [small, small] etc.
        let queues = vec![
            vec![&big, &small],
            vec![&small, &small],
            vec![&small, &big],
            vec![&small, &small],
        ];
        let out = simulate_warp(&queues, &cfg, &cost());
        // Lower bound: each generation costs at least the merged-execution
        // time of its biggest task.
        assert!(out.cycles > 0.0);
        let blocks_total: f64 = out.subwarp_blocks.iter().sum();
        let expect: f64 = queues.iter().flatten().map(|r| r.blocks as f64).sum();
        assert!(
            (blocks_total - expect).abs() < 1e-6,
            "block attribution must conserve work: {blocks_total} vs {expect}"
        );
    }

    #[test]
    fn empty_warp() {
        let cfg = AgathaConfig::agatha();
        let out = simulate_warp(&[vec![], vec![], vec![], vec![]], &cfg, &cost());
        assert_eq!(out.cycles, 0.0);
    }
}
