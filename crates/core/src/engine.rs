//! Streaming batch engine: a persistent host worker pool with per-worker
//! reusable [`KernelWorkspace`]s, processing task streams in bounded-memory
//! chunks.
//!
//! [`Pipeline::align_batch`] materialises every [`TaskRun`] for a batch it
//! borrows; that is fine for figure reproduction but not for serving
//! traffic. [`BatchEngine`] instead owns its worker threads for its whole
//! lifetime: workers pull owned tasks from a shared queue, execute them
//! with [`run_task_ws`] into their private workspace (zero steady-state
//! allocation on the kernel hot path), and only one chunk of runs is alive
//! at a time. Chunk results are yielded as they complete and the
//! per-chunk [`KernelStats`] / warp latencies are folded incrementally into
//! a [`StreamSummary`].

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use agatha_align::Task;
use agatha_gpu_sim::sched::SlotSchedule;
use agatha_gpu_sim::{DeviceReport, KernelStats};

use crate::bucketing::{build_warps, carry_split, OrderingStrategy};
use crate::clock::{Clock, SystemClock};
use crate::kernel::{run_task_ws, KernelWorkspace, TaskRun};
use crate::pipeline::{BatchReport, Pipeline};
use crate::prefetch::{ChunkMsg, PrefetchedChunks};
use crate::trace::SliceUnit;

/// Upper bound on buffers parked in the engine-wide recycle pool. Steady
/// state needs roughly one buffer per in-flight task; the cap only guards
/// against pathological chunk sizes hoarding memory.
const RECYCLE_POOL_CAP: usize = 4096;

struct Job {
    /// Chunk generation the job belongs to; results from an older
    /// generation (e.g. after a caught worker panic aborted a chunk) are
    /// discarded instead of corrupting the next chunk.
    gen: u64,
    idx: usize,
    task: Task,
    /// Request metadata for the serve path; `None` for plain batch jobs,
    /// which skip the clock reads and admission checks entirely.
    meta: Option<JobMeta>,
}

/// Per-request metadata attached to a tagged job: when it entered the
/// queue, when it stops being worth executing, and a kill switch flipped
/// when the requesting client goes away. Times are in the engine clock's
/// nanosecond domain (see [`crate::clock::Clock`]).
#[derive(Debug, Clone, Default)]
pub struct JobMeta {
    /// Clock tick at which the request was admitted (for queue-latency
    /// accounting).
    pub enqueued_ns: u64,
    /// Absolute deadline: a job still undisptached at this tick is dropped
    /// *before* kernel dispatch and reported as such.
    pub deadline_ns: Option<u64>,
    /// Cooperative cancellation: set by the owner (e.g. on client
    /// disconnect) to drop the job before dispatch.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl JobMeta {
    fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(|c| c.load(Ordering::Acquire))
    }

    fn expired(&self, now_ns: u64) -> bool {
        self.deadline_ns.is_some_and(|d| now_ns >= d)
    }
}

/// What became of one tagged job. Exactly one outcome is produced per
/// submitted job — dropped and cancelled jobs are *answered*, not lost.
#[derive(Debug)]
pub enum JobOutcome {
    /// Executed; `queue_ns` is time from enqueue to dispatch, `service_ns`
    /// the kernel execution time.
    Completed { run: TaskRun, queue_ns: u64, service_ns: u64 },
    /// Deadline passed while the job was still queued; the kernel was
    /// never dispatched.
    DroppedDeadline { queue_ns: u64 },
    /// Cancel flag was set before dispatch; the kernel was never
    /// dispatched.
    Cancelled { queue_ns: u64 },
}

/// Monotonic counters for the tagged-job admission decisions, readable at
/// any time via [`BatchEngine::tag_counters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TagCounters {
    /// Tagged jobs that reached kernel dispatch.
    pub dispatched: u64,
    /// Tagged jobs dropped because their deadline passed while queued.
    pub dropped_deadline: u64,
    /// Tagged jobs dropped because their cancel flag was set.
    pub cancelled: u64,
}

#[derive(Default)]
struct TagCountersAtomic {
    dispatched: AtomicU64,
    dropped_deadline: AtomicU64,
    cancelled: AtomicU64,
}

/// A persistent alignment worker pool for one [`Pipeline`] configuration.
///
/// Dropping the engine shuts the pool down and joins every worker.
pub struct BatchEngine {
    pipeline: Pipeline,
    threads: usize,
    gen: u64,
    job_tx: Option<Sender<Job>>,
    result_rx: Receiver<(u64, usize, std::thread::Result<JobOutcome>)>,
    workers: Vec<JoinHandle<()>>,
    /// Spent `TaskRun` output buffers (cost-descriptor vectors) returned by
    /// the per-chunk stats fold; workers drain this into their
    /// [`KernelWorkspace`] so steady-state streaming allocates nothing per
    /// task, not even the run outputs (ROADMAP "TaskRun buffer recycling").
    recycle: Arc<Mutex<Vec<Vec<SliceUnit>>>>,
    counters: Arc<TagCountersAtomic>,
    /// Caller-thread workspace for the single-worker fast path: with one
    /// worker the per-task channel round trip buys no parallelism — it only
    /// adds two context switches per job — so untagged chunks run inline on
    /// the calling thread instead (see [`BatchEngine::run_tasks_drain`]).
    host_ws: KernelWorkspace,
}

impl BatchEngine {
    /// Spawn the worker pool (`pipeline.host_threads`, or all available
    /// cores when 0). Each worker owns one [`KernelWorkspace`] for its
    /// entire lifetime. Deadlines are evaluated against the real monotonic
    /// clock; use [`BatchEngine::with_clock`] to inject a test clock.
    pub fn new(pipeline: Pipeline) -> BatchEngine {
        BatchEngine::with_clock(pipeline, Arc::new(SystemClock::new()))
    }

    /// [`BatchEngine::new`] with an explicit time source for the tagged-job
    /// deadline checks (tests pass [`crate::clock::MockClock`]).
    pub fn with_clock(pipeline: Pipeline, clock: Arc<dyn Clock>) -> BatchEngine {
        let threads = pipeline.worker_threads().max(1);
        let (job_tx, job_rx) = channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (result_tx, result_rx) = channel();
        let recycle: Arc<Mutex<Vec<Vec<SliceUnit>>>> = Arc::new(Mutex::new(Vec::new()));
        let counters = Arc::new(TagCountersAtomic::default());
        let workers = (0..threads)
            .map(|_| {
                let job_rx = Arc::clone(&job_rx);
                let result_tx = result_tx.clone();
                let recycle = Arc::clone(&recycle);
                let counters = Arc::clone(&counters);
                let clock = Arc::clone(&clock);
                let scoring = pipeline.scoring;
                let config = pipeline.config.clone();
                std::thread::spawn(move || {
                    let mut ws = KernelWorkspace::new();
                    loop {
                        // Hold the queue lock only while drawing a job, not
                        // while executing it.
                        let job = { job_rx.lock().expect("queue lock poisoned").recv() };
                        let Ok(Job { gen, idx, task, meta }) = job else { break };
                        // Admission gate for tagged jobs: a cancelled or
                        // deadline-expired request must never reach kernel
                        // dispatch — checked here, at the last moment
                        // before execution.
                        let dispatch_ns = meta.as_ref().map(|m| {
                            let now = clock.now_ns();
                            (now, now.saturating_sub(m.enqueued_ns))
                        });
                        if let (Some(m), Some((now, queue_ns))) = (&meta, dispatch_ns) {
                            let skipped = if m.cancelled() {
                                counters.cancelled.fetch_add(1, Ordering::Relaxed);
                                Some(JobOutcome::Cancelled { queue_ns })
                            } else if m.expired(now) {
                                counters.dropped_deadline.fetch_add(1, Ordering::Relaxed);
                                Some(JobOutcome::DroppedDeadline { queue_ns })
                            } else {
                                counters.dispatched.fetch_add(1, Ordering::Relaxed);
                                None
                            };
                            if let Some(outcome) = skipped {
                                if result_tx.send((gen, idx, Ok(outcome))).is_err() {
                                    break;
                                }
                                continue;
                            }
                        }
                        // Catch panics so the collector can re-raise them
                        // instead of deadlocking on a result that never
                        // arrives. The workspace is safe to reuse after a
                        // panic: every run fully reinitialises it. The
                        // recycle drain sits inside the guard too: a
                        // poisoned pool lock must surface as a re-raised
                        // panic on the caller, not kill this worker and
                        // strand the job.
                        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            // Top up the workspace with spent output buffers
                            // so the run's cost descriptors reuse their
                            // capacity. Drain a small batch under one lock,
                            // and only when the local pool is dry, so the
                            // per-task hot path doesn't pay a global lock
                            // per job.
                            if ws.recycled_buffers().0 == 0 {
                                let mut pool = recycle.lock().expect("recycle pool lock poisoned");
                                let from = pool.len() - pool.len().min(4);
                                for units in pool.drain(from..) {
                                    ws.recycle_units(units);
                                }
                            }
                            run_task_ws(&mut ws, &task, &scoring, &config)
                        }));
                        let outcome = run.map(|run| {
                            let (queue_ns, service_ns) = match dispatch_ns {
                                Some((start, queue_ns)) => {
                                    (queue_ns, clock.now_ns().saturating_sub(start))
                                }
                                None => (0, 0),
                            };
                            JobOutcome::Completed { run, queue_ns, service_ns }
                        });
                        if result_tx.send((gen, idx, outcome)).is_err() {
                            break;
                        }
                    }
                })
            })
            .collect();
        BatchEngine {
            pipeline,
            threads,
            gen: 0,
            job_tx: Some(job_tx),
            result_rx,
            workers,
            recycle,
            counters,
            host_ws: KernelWorkspace::new(),
        }
    }

    /// The pipeline configuration this engine serves.
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// Worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute one chunk of owned tasks on the pool, returning the runs in
    /// input order. Deterministic: results are reassembled by index, so
    /// worker interleaving never changes the output.
    pub fn run_tasks(&mut self, mut tasks: Vec<Task>) -> Vec<TaskRun> {
        self.run_tasks_drain(&mut tasks)
    }

    /// [`BatchEngine::run_tasks`] that drains `tasks` in place, leaving the
    /// vector empty with its capacity intact — the streaming path reuses
    /// one chunk buffer across the whole stream instead of allocating per
    /// chunk.
    pub fn run_tasks_drain(&mut self, tasks: &mut Vec<Task>) -> Vec<TaskRun> {
        // Single-worker fast path: with one worker there is no parallelism
        // to exploit, and routing each task through the job/result channels
        // costs two context switches per job (measured ~8% of streaming
        // throughput on short reads on a one-core host). Run the chunk on
        // the calling thread instead. Bit-identical to the pooled path:
        // kernels are deterministic and results are index-ordered either
        // way. Tagged jobs ([`BatchEngine::run_tagged`]) keep the pool for
        // their last-moment deadline/cancel admission gate.
        if self.threads == 1 {
            return self.run_tasks_inline(tasks);
        }
        let count = tasks.len();
        self.gen += 1;
        let gen = self.gen;
        let job_tx = self.job_tx.as_ref().expect("engine pool is live until drop");
        for (idx, task) in tasks.drain(..).enumerate() {
            job_tx.send(Job { gen, idx, task, meta: None }).expect("worker pool alive");
        }
        self.collect_outcomes(gen, count)
            .into_iter()
            .map(|outcome| match outcome {
                JobOutcome::Completed { run, .. } => run,
                // Untagged jobs carry no deadline or cancel flag, so no
                // other outcome is reachable.
                other => unreachable!("untagged job produced {other:?}"),
            })
            .collect()
    }

    /// The caller-thread half of the single-worker fast path: same recycle
    /// discipline as a pool worker (drain a small batch of spent buffers
    /// under one lock, only when the local pool is dry), same workspace
    /// reuse across the engine's lifetime.
    fn run_tasks_inline(&mut self, tasks: &mut Vec<Task>) -> Vec<TaskRun> {
        let mut out = Vec::with_capacity(tasks.len());
        for task in tasks.drain(..) {
            if self.host_ws.recycled_buffers().0 == 0 {
                let mut pool = self.recycle.lock().expect("recycle pool lock poisoned");
                let from = pool.len() - pool.len().min(4);
                for units in pool.drain(from..) {
                    self.host_ws.recycle_units(units);
                }
            }
            out.push(run_task_ws(
                &mut self.host_ws,
                &task,
                &self.pipeline.scoring,
                &self.pipeline.config,
            ));
        }
        out
    }

    /// Execute owned tasks with per-request [`JobMeta`] (deadline,
    /// cancellation, enqueue tick), returning one [`JobOutcome`] per job in
    /// input order: every job is answered exactly once — completed,
    /// deadline-dropped, or cancelled — never lost. Dropped and cancelled
    /// jobs never reach kernel dispatch (see [`BatchEngine::tag_counters`]).
    pub fn run_tagged(&mut self, jobs: Vec<(Task, JobMeta)>) -> Vec<JobOutcome> {
        self.run_jobs(jobs.into_iter().map(|(t, m)| (t, Some(m))).collect())
    }

    fn run_jobs(&mut self, jobs: Vec<(Task, Option<JobMeta>)>) -> Vec<JobOutcome> {
        let count = jobs.len();
        self.gen += 1;
        let gen = self.gen;
        let job_tx = self.job_tx.as_ref().expect("engine pool is live until drop");
        for (idx, (task, meta)) in jobs.into_iter().enumerate() {
            job_tx.send(Job { gen, idx, task, meta }).expect("worker pool alive");
        }
        self.collect_outcomes(gen, count)
    }

    /// Gather `count` results of generation `gen` by index, re-raising any
    /// worker panic on the calling thread.
    fn collect_outcomes(&mut self, gen: u64, count: usize) -> Vec<JobOutcome> {
        let mut out: Vec<Option<JobOutcome>> = (0..count).map(|_| None).collect();
        let mut received = 0;
        while received < count {
            let (g, idx, run) = self.result_rx.recv().expect("worker pool alive");
            if g != gen {
                // Leftover from a chunk aborted by a re-raised panic.
                continue;
            }
            received += 1;
            match run {
                Ok(outcome) => out[idx] = Some(outcome),
                // Re-raise a worker panic on the calling thread.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out.into_iter().map(|r| r.expect("every job answered")).collect()
    }

    /// Snapshot of the tagged-job admission counters (dispatched /
    /// deadline-dropped / cancelled).
    pub fn tag_counters(&self) -> TagCounters {
        TagCounters {
            dispatched: self.counters.dispatched.load(Ordering::Relaxed),
            dropped_deadline: self.counters.dropped_deadline.load(Ordering::Relaxed),
            cancelled: self.counters.cancelled.load(Ordering::Relaxed),
        }
    }

    /// Align one owned chunk end to end (kernel runs → warp assignment →
    /// simulation → device scheduling), with the configuration's implied
    /// ordering strategy. Bit-identical to [`Pipeline::align_batch`] on the
    /// same tasks.
    pub fn align_chunk(&mut self, mut tasks: Vec<Task>) -> BatchReport {
        let strategy = self.pipeline.default_strategy();
        self.align_chunk_drain(&mut tasks, strategy)
    }

    /// [`BatchEngine::align_chunk`] with an explicit ordering strategy.
    pub fn align_chunk_with_strategy(
        &mut self,
        mut tasks: Vec<Task>,
        strategy: OrderingStrategy,
    ) -> BatchReport {
        self.align_chunk_drain(&mut tasks, strategy)
    }

    /// Chunk alignment draining `tasks` in place (capacity preserved for
    /// the caller's next fill).
    fn align_chunk_drain(
        &mut self,
        tasks: &mut Vec<Task>,
        strategy: OrderingStrategy,
    ) -> BatchReport {
        let workloads: Vec<u64> = tasks.iter().map(|t| t.antidiags() as u64).collect();
        let runs = self.run_tasks_drain(tasks);
        // After the stats fold the runs' unit buffers are surplus; park them
        // for the workers to reuse on the next chunk.
        let recycle = Arc::clone(&self.recycle);
        self.pipeline.assemble_report_recycling(&workloads, runs, strategy, move |units| {
            if units.capacity() == 0 {
                return; // nothing worth round-tripping
            }
            let mut pool = recycle.lock().expect("recycle pool lock poisoned");
            if pool.len() < RECYCLE_POOL_CAP {
                pool.push(units);
            }
        })
    }

    /// Chunk alignment with a cross-chunk carry-over bucket. All arrived
    /// tasks execute (and their results/stats report) immediately; runs
    /// that would seed an underfull trailing warp join `carry` instead of
    /// being packed, and enter the *next* chunk's largest-first fill. With
    /// `flush` the whole pool packs, draining the carry deterministically
    /// at stream end. Kernel results and stats are packing-independent, so
    /// carry-over only ever changes the simulated warp schedule.
    fn align_chunk_carry(
        &mut self,
        arrived: &mut Vec<Task>,
        carry: &mut Vec<CarrySlot>,
        flush: bool,
        strategy: OrderingStrategy,
    ) -> BatchReport {
        let arrived_workloads: Vec<u64> = arrived.iter().map(|t| t.antidiags() as u64).collect();
        let runs = self.run_tasks_drain(arrived);
        let cfg = &self.pipeline.config;
        let mut stats = KernelStats::new();
        let mut results = Vec::with_capacity(runs.len());
        for r in &runs {
            stats.add(&r.stats(cfg.subwarp_lanes, cfg, &self.pipeline.cost));
            results.push(r.result.clone());
        }
        // Packing pool: carried-over runs first (they have waited longest),
        // then this chunk's runs in arrival order.
        let mut pool = std::mem::take(carry);
        pool.extend(
            runs.into_iter()
                .zip(arrived_workloads)
                .map(|(run, workload)| CarrySlot { run, workload }),
        );
        let capacity = cfg.subwarps_per_warp() * cfg.tasks_per_subwarp;
        let (packed, deferred) = if flush {
            (pool, Vec::new())
        } else {
            let pool_workloads: Vec<u64> = pool.iter().map(|s| s.workload).collect();
            let (_, defer) = carry_split(&pool_workloads, capacity);
            let mut deferred_flag = vec![false; pool.len()];
            for &i in &defer {
                deferred_flag[i] = true;
            }
            let mut packed = Vec::with_capacity(pool.len() - defer.len());
            let mut deferred = Vec::with_capacity(defer.len());
            for (slot, flag) in pool.into_iter().zip(deferred_flag) {
                if flag {
                    deferred.push(slot);
                } else {
                    packed.push(slot);
                }
            }
            (packed, deferred)
        };
        *carry = deferred;
        let packed_workloads: Vec<u64> = packed.iter().map(|s| s.workload).collect();
        let warps = build_warps(
            &packed_workloads,
            cfg.subwarps_per_warp(),
            cfg.tasks_per_subwarp,
            strategy,
        );
        let packed_runs: Vec<TaskRun> = packed.into_iter().map(|s| s.run).collect();
        let (warp_cycles, subwarp_blocks) = self.pipeline.simulate_warps(&packed_runs, &warps);
        let (devices, device) = self.pipeline.schedule_devices(&warp_cycles);
        // Packed runs are spent: park their unit buffers for worker reuse.
        {
            let mut recycled = self.recycle.lock().expect("recycle pool lock poisoned");
            for mut r in packed_runs {
                let units = std::mem::take(&mut r.units);
                if units.capacity() > 0 && recycled.len() < RECYCLE_POOL_CAP {
                    recycled.push(units);
                }
            }
        }
        BatchReport {
            results,
            elapsed_ms: self.pipeline.spec.cycles_to_ms(device.makespan_cycles),
            device,
            devices,
            stats,
            warp_cycles,
            subwarp_blocks,
        }
    }

    /// Buffers currently parked in the recycle pool (test visibility).
    ///
    /// # Panics
    ///
    /// Panics if the pool mutex is poisoned — a worker died while holding
    /// it, which must fail tests loudly rather than read as "empty pool".
    pub fn recycled_buffers(&self) -> usize {
        self.recycle.lock().expect("recycle pool lock poisoned").len()
    }

    /// Stream `tasks` through the pool in chunks of `chunk_size`. Only one
    /// chunk of tasks and runs is in memory at a time; iterate the returned
    /// [`StreamRun`] for per-chunk reports, then call [`StreamRun::finish`]
    /// for the folded totals. For whole-stream-as-one-chunk behaviour pass
    /// a chunk size at least as large as the stream.
    ///
    /// Compatibility entry point: carry-over off and warp-cycle recording
    /// on, so the summary (including `warp_cycles` and the device schedule)
    /// is bit-identical to [`Pipeline::align_batch`] when one chunk spans
    /// the stream. Note that recording keeps O(stream) warp latencies in
    /// memory; long-running streams should prefer
    /// [`BatchEngine::align_stream_with`], whose default options fold the
    /// device schedule incrementally in O(warp slots) state.
    ///
    /// # Panics
    ///
    /// `chunk_size == 0` is a usage error (it used to silently mean
    /// "unbounded", defeating the memory bound that is the point of
    /// streaming) and panics with a descriptive message; CLI layers must
    /// validate `--chunk` before calling.
    pub fn align_stream<I>(&mut self, tasks: I, chunk_size: usize) -> StreamRun<'_, I::IntoIter>
    where
        I: IntoIterator<Item = Task>,
    {
        let opts = StreamOptions::new(chunk_size).carry_over(false).record_warp_cycles(true);
        self.align_stream_with(tasks, opts)
    }

    /// [`BatchEngine::align_stream`] with explicit [`StreamOptions`]. With
    /// the default options (carry-over on, recording off) steady-state
    /// memory is one chunk of tasks and runs plus at most one warp's worth
    /// of carried runs plus O(warp slots) schedule state — independent of
    /// stream length.
    pub fn align_stream_with<I>(
        &mut self,
        tasks: I,
        opts: StreamOptions,
    ) -> StreamRun<'_, I::IntoIter>
    where
        I: IntoIterator<Item = Task>,
    {
        self.stream_run(ChunkSource::Inline(tasks.into_iter()), opts)
    }

    /// Stream from a fallible task source with a bounded prefetch stage: a
    /// reader thread drives `source` and parses ahead of kernel execution,
    /// keeping at most `prefetch_depth` chunks queued (backpressure blocks
    /// the reader beyond that, so memory stays bounded at
    /// `prefetch_depth + 2` chunks in flight plus the carry/schedule state
    /// of [`BatchEngine::align_stream_with`]).
    ///
    /// A source error ends the stream at the task where it occurred: tasks
    /// parsed before it still execute and report, iteration then stops, and
    /// [`StreamRun::finish_checked`] returns a [`StreamError`] naming the
    /// chunk and task offset. The reader thread never panics the process
    /// for a source error.
    ///
    /// # Panics
    ///
    /// `prefetch_depth == 0` is a usage error — use
    /// [`BatchEngine::align_stream_with`] for a synchronous stream.
    pub fn align_stream_prefetched<S>(
        &mut self,
        source: S,
        prefetch_depth: usize,
        opts: StreamOptions,
    ) -> StreamRun<'_, std::iter::Empty<Task>>
    where
        S: Iterator<Item = Result<Task, String>> + Send + 'static,
    {
        assert!(
            prefetch_depth >= 1,
            "prefetch_depth must be at least 1 (use align_stream_with for a synchronous stream)"
        );
        let pf = PrefetchedChunks::spawn(source, opts.chunk_size, prefetch_depth);
        self.stream_run(ChunkSource::Prefetched(pf), opts)
    }

    fn stream_run<I: Iterator<Item = Task>>(
        &mut self,
        source: ChunkSource<I>,
        opts: StreamOptions,
    ) -> StreamRun<'_, I> {
        let gpus = self.pipeline.gpus;
        // Single-GPU streams fold the device schedule incrementally; the
        // multi-GPU split is contiguous over the *whole* stream's warps, so
        // it must retain the latency vector regardless of recording.
        let sched = (gpus == 1).then(|| SlotSchedule::new(self.pipeline.spec.warp_slots()));
        let keep_cycles = opts.record_warp_cycles || gpus > 1;
        let strategy = self.pipeline.default_strategy();
        let buf = Vec::with_capacity(opts.chunk_size.min(STREAM_BUF_RESERVE));
        StreamRun {
            engine: self,
            source,
            chunk_size: opts.chunk_size,
            carry_over: opts.carry_over,
            keep_cycles,
            strategy,
            buf,
            carry: Vec::new(),
            offset: 0,
            chunks: 0,
            stats: KernelStats::new(),
            warp_cycles: Vec::new(),
            sched,
            error: None,
            source_done: false,
        }
    }
}

/// Initial capacity clamp for the reusable stream chunk buffer: a
/// whole-stream-sized `chunk_size` grows organically instead of reserving
/// it all up front.
const STREAM_BUF_RESERVE: usize = 8192;

/// A run executed but not yet packed into a warp: deferred from the chunk
/// it arrived in so it can join a later chunk's largest-first fill instead
/// of seeding an underfull trailing warp.
struct CarrySlot {
    run: TaskRun,
    /// A-priori workload estimate (anti-diagonals), cached from the task.
    workload: u64,
}

/// Knobs for [`BatchEngine::align_stream_with`] /
/// [`BatchEngine::align_stream_prefetched`].
#[derive(Debug, Clone)]
pub struct StreamOptions {
    chunk_size: usize,
    carry_over: bool,
    record_warp_cycles: bool,
}

impl StreamOptions {
    /// Streaming defaults: carry-over on, warp-cycle recording off.
    ///
    /// # Panics
    ///
    /// `chunk_size == 0` is a usage error.
    pub fn new(chunk_size: usize) -> StreamOptions {
        assert!(chunk_size >= 1, "stream chunk_size must be at least 1 (got 0)");
        StreamOptions { chunk_size, carry_over: true, record_warp_cycles: false }
    }

    /// Defer tasks that would seed an underfull trailing warp into the next
    /// chunk's fill (results and stats are unaffected; only the simulated
    /// warp schedule changes). Default on.
    pub fn carry_over(mut self, on: bool) -> StreamOptions {
        self.carry_over = on;
        self
    }

    /// Retain every warp latency in [`StreamSummary::warp_cycles`]. Off by
    /// default because it grows O(stream length), defeating the streaming
    /// memory bound; the summary's device schedule is folded incrementally
    /// either way.
    pub fn record_warp_cycles(mut self, on: bool) -> StreamOptions {
        self.record_warp_cycles = on;
        self
    }
}

/// Where a [`StreamRun`] draws its chunks from.
enum ChunkSource<I> {
    /// The caller's iterator, driven synchronously on this thread.
    Inline(I),
    /// A prefetch reader thread parsing ahead of execution.
    Prefetched(PrefetchedChunks),
}

/// A stream source failure (e.g. malformed FASTA mid-stream), attributed
/// to the chunk and task offset where it occurred. Tasks before the error
/// were executed and reported normally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamError {
    /// Index of the chunk the error occurred in (0-based; the chunk the
    /// failing task would have belonged to).
    pub chunk: usize,
    /// Stream-wide index of the task at which the source failed.
    pub offset: usize,
    /// The source's error message.
    pub message: String,
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stream source failed in chunk {} (task offset {}): {}",
            self.chunk, self.offset, self.message
        )
    }
}

impl std::error::Error for StreamError {}

impl Drop for BatchEngine {
    fn drop(&mut self) {
        // Closing the job channel makes every worker's recv fail and exit.
        drop(self.job_tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// One chunk's worth of output from [`BatchEngine::align_stream`].
#[derive(Debug, Clone)]
pub struct ChunkReport {
    /// Index of the chunk's first task within the stream.
    pub offset: usize,
    /// Full batch report for the chunk alone.
    pub report: BatchReport,
}

/// Folded totals of a finished stream.
#[derive(Debug, Clone)]
pub struct StreamSummary {
    /// Tasks processed.
    pub tasks: usize,
    /// Chunks processed (including a final carry-flush chunk, if any).
    pub chunks: usize,
    /// Aggregate execution statistics (identical to a whole-batch run's).
    pub stats: KernelStats,
    /// Per-warp latencies across all chunks, in submission order. Empty
    /// unless recording was requested
    /// ([`StreamOptions::record_warp_cycles`], or multi-GPU pipelines,
    /// whose contiguous split needs the full vector) — the device schedule
    /// below is folded incrementally either way.
    pub warp_cycles: Vec<f64>,
    /// Straggler-device schedule of all the stream's warps as one pooled
    /// submission sequence on the configured device(s) — a chunk's warps
    /// may start in slots freed mid-way through the previous chunk, which
    /// is why a chunk size spanning the whole stream reproduces
    /// `align_batch` exactly.
    pub device: DeviceReport,
    /// Simulated kernel time of the whole stream in milliseconds.
    pub elapsed_ms: f64,
}

/// Lazy chunk-by-chunk driver returned by [`BatchEngine::align_stream`]
/// and friends.
pub struct StreamRun<'e, I: Iterator<Item = Task>> {
    engine: &'e mut BatchEngine,
    source: ChunkSource<I>,
    chunk_size: usize,
    carry_over: bool,
    keep_cycles: bool,
    strategy: OrderingStrategy,
    /// Reusable chunk buffer: drained by the engine each chunk, refilled in
    /// place, so steady-state streaming allocates nothing per chunk.
    buf: Vec<Task>,
    /// Runs deferred by the carry-over bucket, awaiting a later pack.
    carry: Vec<CarrySlot>,
    offset: usize,
    chunks: usize,
    stats: KernelStats,
    warp_cycles: Vec<f64>,
    /// Incremental pooled device schedule (single-GPU pipelines).
    sched: Option<SlotSchedule>,
    error: Option<StreamError>,
    source_done: bool,
}

impl<I: Iterator<Item = Task>> StreamRun<'_, I> {
    /// Pull up to `chunk_size` tasks into `buf`, setting `source_done` (and
    /// `error`) when the source ends.
    fn fill_buf(&mut self) {
        if self.source_done {
            return;
        }
        debug_assert!(self.buf.is_empty(), "chunk buffer drained each iteration");
        match &mut self.source {
            ChunkSource::Inline(tasks) => {
                while self.buf.len() < self.chunk_size {
                    match tasks.next() {
                        Some(t) => self.buf.push(t),
                        None => {
                            self.source_done = true;
                            break;
                        }
                    }
                }
            }
            ChunkSource::Prefetched(pf) => {
                let mut terminal = match pf.next_msg() {
                    ChunkMsg::Chunk(mut chunk) => {
                        // Swap our spent buffer for the parsed chunk and
                        // send the old one back to the reader for reuse.
                        std::mem::swap(&mut self.buf, &mut chunk);
                        pf.recycle(chunk);
                        // A partial chunk is always the last: resolve its
                        // terminator now (the reader sent it right behind)
                        // so this chunk can flush the carry.
                        (self.buf.len() < self.chunk_size).then(|| pf.next_msg())
                    }
                    msg => Some(msg),
                };
                match terminal.take() {
                    None => {}
                    Some(ChunkMsg::Done) => self.source_done = true,
                    Some(ChunkMsg::Failed(message)) => {
                        self.source_done = true;
                        self.error = Some(StreamError {
                            chunk: self.chunks,
                            offset: self.offset + self.buf.len(),
                            message,
                        });
                    }
                    Some(ChunkMsg::Chunk(_)) => {
                        unreachable!("prefetch protocol: a partial chunk is terminal")
                    }
                }
            }
        }
    }
}

impl<I: Iterator<Item = Task>> Iterator for StreamRun<'_, I> {
    type Item = ChunkReport;

    fn next(&mut self) -> Option<ChunkReport> {
        self.fill_buf();
        if self.buf.is_empty() && (self.carry.is_empty() || !self.source_done) {
            // Nothing arrived and nothing to flush (an empty carry, or a
            // source that merely hasn't ended — unreachable for well-formed
            // sources, which never yield an empty non-final chunk).
            return None;
        }
        let offset = self.offset;
        self.offset += self.buf.len();
        self.chunks += 1;
        let report = if self.carry_over {
            // Flush when the source has ended: the final chunk (or a
            // trailing carry-only chunk) packs the whole pool.
            self.engine.align_chunk_carry(
                &mut self.buf,
                &mut self.carry,
                self.source_done,
                self.strategy,
            )
        } else {
            self.engine.align_chunk_drain(&mut self.buf, self.strategy)
        };
        self.stats.add(&report.stats);
        if self.keep_cycles {
            self.warp_cycles.extend_from_slice(&report.warp_cycles);
        }
        if let Some(sched) = &mut self.sched {
            sched.extend(&report.warp_cycles);
        }
        Some(ChunkReport { offset, report })
    }
}

impl<I: Iterator<Item = Task>> StreamRun<'_, I> {
    /// Drain any unprocessed chunks, then fold the totals. The final device
    /// schedule treats all warps of the stream as one submission sequence on
    /// the pipeline's device(s).
    ///
    /// # Panics
    ///
    /// Panics if the stream's source failed mid-stream; sources that can
    /// fail (see [`BatchEngine::align_stream_prefetched`]) should use
    /// [`StreamRun::finish_checked`].
    pub fn finish(self) -> StreamSummary {
        self.finish_checked()
            .unwrap_or_else(|e| panic!("{e}; use finish_checked to handle stream source errors"))
    }

    /// [`StreamRun::finish`] surfacing a mid-stream source failure as a
    /// [`StreamError`] instead of a panic. Tasks that arrived before the
    /// failure were fully executed and reported through iteration either
    /// way; the engine is left clean and reusable.
    pub fn finish_checked(mut self) -> Result<StreamSummary, StreamError> {
        while self.next().is_some() {}
        if let Some(error) = self.error.take() {
            return Err(error);
        }
        let pipeline = &self.engine.pipeline;
        let device = match &self.sched {
            Some(sched) => sched.report(),
            None => pipeline.schedule_devices(&self.warp_cycles).1,
        };
        Ok(StreamSummary {
            tasks: self.offset,
            chunks: self.chunks,
            stats: std::mem::replace(&mut self.stats, KernelStats::new()),
            elapsed_ms: pipeline.spec.cycles_to_ms(device.makespan_cycles),
            device,
            warp_cycles: std::mem::take(&mut self.warp_cycles),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::AgathaConfig;
    use agatha_align::Scoring;

    fn mk_tasks(count: usize, len_base: usize, seed: u64) -> Vec<Task> {
        let mut tasks = Vec::new();
        let mut x = seed | 1;
        for id in 0..count {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let len = len_base + (x >> 33) as usize % len_base;
            let mut r = String::new();
            let mut q = String::new();
            for k in 0..len {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let c = ['A', 'C', 'G', 'T'][(x >> 33) as usize % 4];
                r.push(c);
                q.push(if k % 19 == 0 { 'T' } else { c });
            }
            tasks.push(Task::from_strs(id as u32, &r, &q));
        }
        tasks
    }

    fn pipeline() -> Pipeline {
        Pipeline::new(Scoring::new(2, 4, 4, 2, 60, 16), AgathaConfig::agatha())
    }

    #[test]
    fn chunked_stream_matches_whole_batch() {
        let tasks = mk_tasks(30, 110, 41);
        let whole = pipeline().align_batch(&tasks);
        for chunk_size in [1, 7, 30, 64] {
            let mut engine = pipeline().engine();
            let mut results = Vec::new();
            let mut run = engine.align_stream(tasks.iter().cloned(), chunk_size);
            for chunk in run.by_ref() {
                assert_eq!(chunk.offset, results.len());
                results.extend(chunk.report.results);
            }
            let summary = run.finish();
            assert_eq!(results, whole.results, "chunk_size {chunk_size}");
            assert_eq!(summary.stats, whole.stats, "chunk_size {chunk_size}");
            assert_eq!(summary.tasks, tasks.len());
        }
    }

    #[test]
    fn whole_stream_is_bit_identical_including_schedule() {
        // One chunk spanning the stream — even the warp latencies and the
        // device schedule must match align_batch exactly.
        let tasks = mk_tasks(18, 90, 7);
        let whole = pipeline().align_batch(&tasks);
        let mut engine = pipeline().engine();
        let summary = engine.align_stream(tasks.iter().cloned(), tasks.len()).finish();
        assert_eq!(summary.warp_cycles, whole.warp_cycles);
        assert_eq!(summary.device, whole.device);
        assert_eq!(summary.elapsed_ms, whole.elapsed_ms);
        assert_eq!(summary.chunks, 1);
    }

    #[test]
    fn engine_survives_many_chunks() {
        let mut engine = pipeline().engine();
        let tasks = mk_tasks(12, 70, 3);
        let a = engine.align_chunk(tasks.clone());
        let b = engine.align_chunk(tasks.clone());
        assert_eq!(a.results, b.results);
        let c = engine.align_chunk(Vec::new());
        assert!(c.results.is_empty());
        assert_eq!(c.elapsed_ms, 0.0);
    }

    #[test]
    fn chunk_folding_parks_spent_buffers_for_reuse() {
        let mut engine = pipeline().engine();
        let tasks = mk_tasks(16, 80, 9);
        let a = engine.align_chunk(tasks.clone());
        // After the first chunk every run's unit buffer is parked (workers
        // had nothing to drain yet).
        assert!(engine.recycled_buffers() > 0, "spent buffers must be parked");
        // Subsequent chunks drain the pool back through the workers and
        // re-park; results stay bit-identical throughout.
        let parked = engine.recycled_buffers();
        for _ in 0..3 {
            let b = engine.align_chunk(tasks.clone());
            assert_eq!(a.results, b.results);
        }
        assert!(
            engine.recycled_buffers() <= parked + tasks.len(),
            "pool must not grow unboundedly"
        );
    }

    #[test]
    fn empty_stream() {
        let mut engine = pipeline().engine();
        let summary = engine.align_stream(std::iter::empty(), 8).finish();
        assert_eq!(summary.tasks, 0);
        assert_eq!(summary.chunks, 0);
        assert_eq!(summary.elapsed_ms, 0.0);
    }

    #[test]
    #[should_panic(expected = "chunk_size must be at least 1")]
    fn zero_chunk_size_is_a_usage_error() {
        let mut engine = pipeline().engine();
        let _ = engine.align_stream(mk_tasks(3, 40, 5), 0);
    }

    #[test]
    fn carry_over_results_and_stats_stay_bit_identical() {
        // Carry-over re-shapes warp packing only; results and aggregate
        // stats must equal align_batch exactly at every chunk size.
        let tasks = mk_tasks(29, 100, 23);
        let whole = pipeline().align_batch(&tasks);
        for chunk_size in [1, 5, 8, 29, 64] {
            let mut engine = pipeline().engine();
            let mut results = Vec::new();
            let mut run =
                engine.align_stream_with(tasks.iter().cloned(), StreamOptions::new(chunk_size));
            for chunk in run.by_ref() {
                assert_eq!(chunk.offset, results.len(), "chunk_size {chunk_size}");
                results.extend(chunk.report.results);
            }
            let summary = run.finish();
            assert_eq!(results, whole.results, "chunk_size {chunk_size}");
            assert_eq!(summary.stats, whole.stats, "chunk_size {chunk_size}");
            assert_eq!(summary.tasks, tasks.len());
            assert!(summary.warp_cycles.is_empty(), "recording defaults off");
        }
    }

    #[test]
    fn carry_over_defers_the_trailing_underfull_warp() {
        // Default capacity is subwarps_per_warp × tasks_per_subwarp = 8.
        // 13 tasks in a chunk → 5 would seed an underfull warp; with carry
        // the first chunk packs exactly one full warp and the flush packs
        // the rest.
        let tasks = mk_tasks(13, 80, 31);
        let mut engine = pipeline().engine();
        let cfg = &engine.pipeline().config;
        let capacity = cfg.subwarps_per_warp() * cfg.tasks_per_subwarp;
        assert_eq!(capacity, 8, "test assumes the paper's default geometry");
        let mut run = engine.align_stream_with(tasks.iter().cloned(), StreamOptions::new(13));
        let first = run.next().expect("one chunk of tasks");
        assert_eq!(first.report.results.len(), 13, "all arrived results report at once");
        assert_eq!(first.report.warp_cycles.len(), 1, "only the full warp packs");
        let flush = run.next().expect("stream end flushes the carry");
        assert!(flush.report.results.is_empty(), "flush chunk re-emits nothing");
        assert_eq!(flush.report.warp_cycles.len(), 1, "5 deferred tasks pack one warp");
        assert!(run.next().is_none());
        let summary = run.finish();
        assert_eq!(summary.tasks, 13);
        assert_eq!(summary.chunks, 2);
    }

    #[test]
    fn carry_over_reduces_trailing_warp_count() {
        // 4 chunks of 13 tasks: no-carry packs ceil(13/8) = 2 warps per
        // chunk (8 underfull); carry packs full warps throughout and only
        // the flush may run short.
        let tasks = mk_tasks(52, 70, 37);
        let count_warps = |carry: bool| {
            let mut engine = pipeline().engine();
            let opts = StreamOptions::new(13).carry_over(carry);
            let mut run = engine.align_stream_with(tasks.iter().cloned(), opts);
            let mut warps = Vec::new();
            for chunk in run.by_ref() {
                warps.push(chunk.report.warp_cycles.len());
            }
            (warps, run.finish())
        };
        let (warps_plain, sum_plain) = count_warps(false);
        let (warps_carry, sum_carry) = count_warps(true);
        assert_eq!(warps_plain, vec![2, 2, 2, 2]);
        // 52 tasks = 6 full warps + one flush warp of the last 4.
        assert_eq!(warps_carry.iter().sum::<usize>(), 7);
        assert_eq!(sum_plain.stats, sum_carry.stats);
        // No makespan direction assert: with 7–8 warps on a device whose
        // slots exceed them, makespan is just the max warp latency and
        // fuller warps run longer. The carry-over win is a saturated-device
        // property, measured by pipeline_bench's carryover_makespan_gain.
    }

    #[test]
    fn prefetched_stream_matches_inline() {
        let tasks = mk_tasks(41, 90, 43);
        for chunk_size in [4, 16, 64] {
            let mut inline_results = Vec::new();
            let inline_summary = {
                let mut engine = pipeline().engine();
                let mut run =
                    engine.align_stream_with(tasks.iter().cloned(), StreamOptions::new(chunk_size));
                for chunk in run.by_ref() {
                    inline_results.extend(chunk.report.results);
                }
                run.finish()
            };
            let mut pf_results = Vec::new();
            let pf_summary = {
                let mut engine = pipeline().engine();
                let source = tasks.clone().into_iter().map(Ok::<Task, String>);
                let mut run =
                    engine.align_stream_prefetched(source, 2, StreamOptions::new(chunk_size));
                for chunk in run.by_ref() {
                    pf_results.extend(chunk.report.results);
                }
                run.finish_checked().expect("no source errors")
            };
            assert_eq!(pf_results, inline_results, "chunk_size {chunk_size}");
            assert_eq!(pf_summary.stats, inline_summary.stats);
            assert_eq!(pf_summary.device, inline_summary.device);
            assert_eq!(pf_summary.tasks, inline_summary.tasks);
            assert_eq!(pf_summary.chunks, inline_summary.chunks);
        }
    }

    #[test]
    fn incremental_schedule_matches_recorded_cycles() {
        // The summary's device report must be what pooling the recorded
        // cycles would give — recording on exposes both in one run.
        let tasks = mk_tasks(33, 85, 47);
        let mut engine = pipeline().engine();
        let opts = StreamOptions::new(6).record_warp_cycles(true);
        let summary = engine.align_stream_with(tasks.iter().cloned(), opts).finish();
        assert!(!summary.warp_cycles.is_empty());
        let (_, pooled) = engine.pipeline().schedule_devices(&summary.warp_cycles);
        assert_eq!(summary.device, pooled);
    }

    #[test]
    fn source_error_surfaces_on_the_right_chunk_and_drains_cleanly() {
        let tasks = mk_tasks(7, 60, 53);
        let reference = pipeline().align_batch(&tasks);
        let mut engine = pipeline().engine();
        let source = tasks
            .into_iter()
            .map(Ok::<Task, String>)
            .chain(std::iter::once(Err("synthetic parse failure".to_string())));
        let mut results = Vec::new();
        let mut run = engine.align_stream_prefetched(source, 2, StreamOptions::new(3));
        for chunk in run.by_ref() {
            results.extend(chunk.report.results);
        }
        // Every task that parsed before the error executed and reported.
        assert_eq!(results, reference.results);
        let err = run.finish_checked().expect_err("the source failed");
        // 7 tasks at chunk 3 → chunks 0 and 1 full, the error hit while
        // filling chunk 2, after stream-wide task 7.
        assert_eq!(err.chunk, 2);
        assert_eq!(err.offset, 7);
        assert_eq!(err.message, "synthetic parse failure");
        assert!(err.to_string().contains("chunk 2"), "{err}");
        // The engine stays clean and reusable after a failed stream.
        let again = engine.align_chunk(mk_tasks(7, 60, 53));
        assert_eq!(again.results, reference.results);
    }

    #[test]
    fn immediate_source_error_yields_no_chunks() {
        let mut engine = pipeline().engine();
        let source = std::iter::once(Err::<Task, String>("broken header".to_string()));
        let mut run = engine.align_stream_prefetched(source, 1, StreamOptions::new(8));
        assert!(run.next().is_none());
        let err = run.finish_checked().expect_err("the source failed");
        assert_eq!((err.chunk, err.offset), (0, 0));
    }

    #[test]
    #[should_panic(expected = "use finish_checked")]
    fn plain_finish_panics_on_source_error() {
        let mut engine = pipeline().engine();
        let source = std::iter::once(Err::<Task, String>("boom".to_string()));
        let _ = engine.align_stream_prefetched(source, 1, StreamOptions::new(8)).finish();
    }

    #[test]
    fn stream_buffer_is_reused_across_chunks() {
        // The chunk buffer is drained in place each iteration; dropping a
        // half-consumed run must not leak carried runs or break the engine.
        let tasks = mk_tasks(20, 70, 59);
        let mut engine = pipeline().engine();
        {
            let mut run = engine.align_stream_with(tasks.iter().cloned(), StreamOptions::new(6));
            let _ = run.next();
            let _ = run.next();
            // Dropped mid-stream: carried runs just drop with it.
        }
        let rep = engine.align_chunk(tasks.clone());
        assert_eq!(rep.results.len(), 20);
    }

    use crate::clock::MockClock;

    fn tagged_engine() -> (BatchEngine, Arc<MockClock>) {
        let clock = Arc::new(MockClock::new());
        let mut p = pipeline();
        p.host_threads = 2;
        (BatchEngine::with_clock(p, clock.clone()), clock)
    }

    #[test]
    fn cancelled_jobs_never_reach_kernel_dispatch() {
        let (mut engine, _clock) = tagged_engine();
        let cancel = Arc::new(AtomicBool::new(true));
        let jobs: Vec<(Task, JobMeta)> = mk_tasks(8, 60, 11)
            .into_iter()
            .map(|t| {
                (
                    t,
                    JobMeta {
                        enqueued_ns: 0,
                        deadline_ns: None,
                        cancel: Some(Arc::clone(&cancel)),
                    },
                )
            })
            .collect();
        let outcomes = engine.run_tagged(jobs);
        assert_eq!(outcomes.len(), 8);
        assert!(outcomes.iter().all(|o| matches!(o, JobOutcome::Cancelled { .. })));
        let c = engine.tag_counters();
        assert_eq!(c, TagCounters { dispatched: 0, dropped_deadline: 0, cancelled: 8 });
        // Nothing executed, so nothing was parked for recycling either: a
        // cancelled request's buffers cannot leak into another request.
        assert_eq!(engine.recycled_buffers(), 0);
    }

    #[test]
    fn expired_deadlines_drop_before_dispatch() {
        let (mut engine, clock) = tagged_engine();
        clock.set_ns(5_000_000);
        let tasks = mk_tasks(6, 60, 13);
        let jobs: Vec<(Task, JobMeta)> = tasks
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, t)| {
                // Even indices expired 1ms ago; odd ones have 10ms left.
                let deadline = if i % 2 == 0 { 4_000_000 } else { 15_000_000 };
                (t, JobMeta { enqueued_ns: 1_000_000, deadline_ns: Some(deadline), cancel: None })
            })
            .collect();
        let outcomes = engine.run_tagged(jobs);
        let reference = pipeline().align_batch(&tasks);
        for (i, o) in outcomes.iter().enumerate() {
            match o {
                JobOutcome::DroppedDeadline { queue_ns } => {
                    assert_eq!(i % 2, 0, "only expired jobs may drop");
                    assert_eq!(*queue_ns, 4_000_000);
                }
                JobOutcome::Completed { run, .. } => {
                    assert_eq!(i % 2, 1, "live jobs must complete");
                    // The surviving results are bit-identical to the batch
                    // path on the same tasks.
                    assert_eq!(run.result, reference.results[i]);
                }
                JobOutcome::Cancelled { .. } => panic!("no cancel flags were set"),
            }
        }
        let c = engine.tag_counters();
        assert_eq!(c, TagCounters { dispatched: 3, dropped_deadline: 3, cancelled: 0 });
    }

    #[test]
    fn dropped_jobs_leave_recycling_bit_identical() {
        // Interleaving dropped work must not corrupt or cross-serve the
        // recycled unit buffers: chunks aligned after drops stay
        // bit-identical to the reference.
        let (mut engine, clock) = tagged_engine();
        let tasks = mk_tasks(12, 70, 17);
        let reference = engine.align_chunk(tasks.clone());
        let parked = engine.recycled_buffers();
        assert!(parked > 0);
        clock.set_ns(1_000);
        let dead: Vec<(Task, JobMeta)> = tasks
            .iter()
            .cloned()
            .map(|t| (t, JobMeta { enqueued_ns: 0, deadline_ns: Some(500), cancel: None }))
            .collect();
        let outcomes = engine.run_tagged(dead);
        assert!(outcomes.iter().all(|o| matches!(o, JobOutcome::DroppedDeadline { .. })));
        // Dropped jobs produced no runs: the pool neither grew nor served
        // buffers to phantom requests.
        assert_eq!(engine.recycled_buffers(), parked);
        let again = engine.align_chunk(tasks.clone());
        assert_eq!(again.results, reference.results);
        assert_eq!(again.stats, reference.stats);
    }

    #[test]
    fn tagged_queue_and_service_latencies_are_measured() {
        let (mut engine, clock) = tagged_engine();
        clock.set_ns(2_000_000);
        let jobs: Vec<(Task, JobMeta)> = mk_tasks(3, 50, 19)
            .into_iter()
            .map(|t| (t, JobMeta { enqueued_ns: 500_000, deadline_ns: None, cancel: None }))
            .collect();
        for o in engine.run_tagged(jobs) {
            match o {
                JobOutcome::Completed { queue_ns, .. } => {
                    // MockClock does not advance during service, but the
                    // queue wait is exact: dispatch tick − enqueue tick.
                    assert_eq!(queue_ns, 1_500_000);
                }
                other => panic!("expected completion, got {other:?}"),
            }
        }
    }
}
