//! Streaming batch engine: a persistent host worker pool with per-worker
//! reusable [`KernelWorkspace`]s, processing task streams in bounded-memory
//! chunks.
//!
//! [`Pipeline::align_batch`] materialises every [`TaskRun`] for a batch it
//! borrows; that is fine for figure reproduction but not for serving
//! traffic. [`BatchEngine`] instead owns its worker threads for its whole
//! lifetime: workers pull owned tasks from a shared queue, execute them
//! with [`run_task_ws`] into their private workspace (zero steady-state
//! allocation on the kernel hot path), and only one chunk of runs is alive
//! at a time. Chunk results are yielded as they complete and the
//! per-chunk [`KernelStats`] / warp latencies are folded incrementally into
//! a [`StreamSummary`].

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use agatha_align::Task;
use agatha_gpu_sim::{DeviceReport, KernelStats};

use crate::bucketing::OrderingStrategy;
use crate::kernel::{run_task_ws, KernelWorkspace, TaskRun};
use crate::pipeline::{BatchReport, Pipeline};
use crate::trace::SliceUnit;

/// Upper bound on buffers parked in the engine-wide recycle pool. Steady
/// state needs roughly one buffer per in-flight task; the cap only guards
/// against pathological chunk sizes hoarding memory.
const RECYCLE_POOL_CAP: usize = 4096;

struct Job {
    /// Chunk generation the job belongs to; results from an older
    /// generation (e.g. after a caught worker panic aborted a chunk) are
    /// discarded instead of corrupting the next chunk.
    gen: u64,
    idx: usize,
    task: Task,
}

/// A persistent alignment worker pool for one [`Pipeline`] configuration.
///
/// Dropping the engine shuts the pool down and joins every worker.
pub struct BatchEngine {
    pipeline: Pipeline,
    threads: usize,
    gen: u64,
    job_tx: Option<Sender<Job>>,
    result_rx: Receiver<(u64, usize, std::thread::Result<TaskRun>)>,
    workers: Vec<JoinHandle<()>>,
    /// Spent `TaskRun` output buffers (cost-descriptor vectors) returned by
    /// the per-chunk stats fold; workers drain this into their
    /// [`KernelWorkspace`] so steady-state streaming allocates nothing per
    /// task, not even the run outputs (ROADMAP "TaskRun buffer recycling").
    recycle: Arc<Mutex<Vec<Vec<SliceUnit>>>>,
}

impl BatchEngine {
    /// Spawn the worker pool (`pipeline.host_threads`, or all available
    /// cores when 0). Each worker owns one [`KernelWorkspace`] for its
    /// entire lifetime.
    pub fn new(pipeline: Pipeline) -> BatchEngine {
        let threads = pipeline.worker_threads().max(1);
        let (job_tx, job_rx) = channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (result_tx, result_rx) = channel();
        let recycle: Arc<Mutex<Vec<Vec<SliceUnit>>>> = Arc::new(Mutex::new(Vec::new()));
        let workers = (0..threads)
            .map(|_| {
                let job_rx = Arc::clone(&job_rx);
                let result_tx = result_tx.clone();
                let recycle = Arc::clone(&recycle);
                let scoring = pipeline.scoring;
                let config = pipeline.config.clone();
                std::thread::spawn(move || {
                    let mut ws = KernelWorkspace::new();
                    loop {
                        // Hold the queue lock only while drawing a job, not
                        // while executing it.
                        let job = { job_rx.lock().expect("queue lock poisoned").recv() };
                        let Ok(Job { gen, idx, task }) = job else { break };
                        // Top up the workspace with spent output buffers so
                        // the run's cost descriptors reuse their capacity.
                        // Drain a small batch under one lock, and only when
                        // the local pool is dry, so the per-task hot path
                        // doesn't pay a global lock per job.
                        if ws.recycled_buffers().0 == 0 {
                            if let Ok(mut pool) = recycle.lock() {
                                let from = pool.len() - pool.len().min(4);
                                for units in pool.drain(from..) {
                                    ws.recycle_units(units);
                                }
                            }
                        }
                        // Catch panics so the collector can re-raise them
                        // instead of deadlocking on a result that never
                        // arrives. The workspace is safe to reuse after a
                        // panic: every run fully reinitialises it.
                        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            run_task_ws(&mut ws, &task, &scoring, &config)
                        }));
                        if result_tx.send((gen, idx, run)).is_err() {
                            break;
                        }
                    }
                })
            })
            .collect();
        BatchEngine { pipeline, threads, gen: 0, job_tx: Some(job_tx), result_rx, workers, recycle }
    }

    /// The pipeline configuration this engine serves.
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// Worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute one chunk of owned tasks on the pool, returning the runs in
    /// input order. Deterministic: results are reassembled by index, so
    /// worker interleaving never changes the output.
    pub fn run_tasks(&mut self, tasks: Vec<Task>) -> Vec<TaskRun> {
        let count = tasks.len();
        self.gen += 1;
        let gen = self.gen;
        let job_tx = self.job_tx.as_ref().expect("engine pool is live until drop");
        for (idx, task) in tasks.into_iter().enumerate() {
            job_tx.send(Job { gen, idx, task }).expect("worker pool alive");
        }
        let mut out: Vec<Option<TaskRun>> = (0..count).map(|_| None).collect();
        let mut received = 0;
        while received < count {
            let (g, idx, run) = self.result_rx.recv().expect("worker pool alive");
            if g != gen {
                // Leftover from a chunk aborted by a re-raised panic.
                continue;
            }
            received += 1;
            match run {
                Ok(run) => out[idx] = Some(run),
                // Re-raise a worker panic on the calling thread.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out.into_iter().map(|r| r.expect("every task executed")).collect()
    }

    /// Align one owned chunk end to end (kernel runs → warp assignment →
    /// simulation → device scheduling), with the configuration's implied
    /// ordering strategy. Bit-identical to [`Pipeline::align_batch`] on the
    /// same tasks.
    pub fn align_chunk(&mut self, tasks: Vec<Task>) -> BatchReport {
        let strategy = self.pipeline.default_strategy();
        self.align_chunk_with_strategy(tasks, strategy)
    }

    /// [`BatchEngine::align_chunk`] with an explicit ordering strategy.
    pub fn align_chunk_with_strategy(
        &mut self,
        tasks: Vec<Task>,
        strategy: OrderingStrategy,
    ) -> BatchReport {
        let workloads: Vec<u64> = tasks.iter().map(|t| t.antidiags() as u64).collect();
        let runs = self.run_tasks(tasks);
        // After the stats fold the runs' unit buffers are surplus; park them
        // for the workers to reuse on the next chunk.
        let recycle = Arc::clone(&self.recycle);
        self.pipeline.assemble_report_recycling(&workloads, runs, strategy, move |units| {
            if units.capacity() == 0 {
                return; // nothing worth round-tripping
            }
            if let Ok(mut pool) = recycle.lock() {
                if pool.len() < RECYCLE_POOL_CAP {
                    pool.push(units);
                }
            }
        })
    }

    /// Buffers currently parked in the recycle pool (test visibility).
    pub fn recycled_buffers(&self) -> usize {
        self.recycle.lock().map(|p| p.len()).unwrap_or(0)
    }

    /// Stream `tasks` through the pool in chunks of `chunk_size`
    /// (`0` = the whole stream as one chunk). Only one chunk of tasks and
    /// runs is in memory at a time; iterate the returned [`StreamRun`] for
    /// per-chunk reports, then call [`StreamRun::finish`] for the folded
    /// totals.
    pub fn align_stream<I>(&mut self, tasks: I, chunk_size: usize) -> StreamRun<'_, I::IntoIter>
    where
        I: IntoIterator<Item = Task>,
    {
        StreamRun {
            engine: self,
            tasks: tasks.into_iter(),
            chunk_size,
            offset: 0,
            chunks: 0,
            stats: KernelStats::new(),
            warp_cycles: Vec::new(),
        }
    }
}

impl Drop for BatchEngine {
    fn drop(&mut self) {
        // Closing the job channel makes every worker's recv fail and exit.
        drop(self.job_tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// One chunk's worth of output from [`BatchEngine::align_stream`].
#[derive(Debug, Clone)]
pub struct ChunkReport {
    /// Index of the chunk's first task within the stream.
    pub offset: usize,
    /// Full batch report for the chunk alone.
    pub report: BatchReport,
}

/// Folded totals of a finished stream.
#[derive(Debug, Clone)]
pub struct StreamSummary {
    /// Tasks processed.
    pub tasks: usize,
    /// Chunks processed.
    pub chunks: usize,
    /// Aggregate execution statistics (identical to a whole-batch run's).
    pub stats: KernelStats,
    /// Per-warp latencies across all chunks, in submission order.
    pub warp_cycles: Vec<f64>,
    /// Straggler-device schedule of all the stream's warps as one pooled
    /// submission sequence on the configured device(s) — a chunk's warps
    /// may start in slots freed mid-way through the previous chunk, which
    /// is why `chunk_size = 0` reproduces `align_batch` exactly.
    pub device: DeviceReport,
    /// Simulated kernel time of the whole stream in milliseconds.
    pub elapsed_ms: f64,
}

/// Lazy chunk-by-chunk driver returned by [`BatchEngine::align_stream`].
pub struct StreamRun<'e, I: Iterator<Item = Task>> {
    engine: &'e mut BatchEngine,
    tasks: I,
    chunk_size: usize,
    offset: usize,
    chunks: usize,
    stats: KernelStats,
    warp_cycles: Vec<f64>,
}

impl<I: Iterator<Item = Task>> Iterator for StreamRun<'_, I> {
    type Item = ChunkReport;

    fn next(&mut self) -> Option<ChunkReport> {
        let take = if self.chunk_size == 0 { usize::MAX } else { self.chunk_size };
        let mut chunk = Vec::new();
        while chunk.len() < take {
            match self.tasks.next() {
                Some(t) => chunk.push(t),
                None => break,
            }
        }
        if chunk.is_empty() {
            return None;
        }
        let offset = self.offset;
        self.offset += chunk.len();
        self.chunks += 1;
        let report = self.engine.align_chunk(chunk);
        self.stats.add(&report.stats);
        self.warp_cycles.extend_from_slice(&report.warp_cycles);
        Some(ChunkReport { offset, report })
    }
}

impl<I: Iterator<Item = Task>> StreamRun<'_, I> {
    /// Drain any unprocessed chunks, then fold the totals. The final device
    /// schedule treats all warps of the stream as one submission sequence on
    /// the pipeline's device(s).
    pub fn finish(mut self) -> StreamSummary {
        while self.next().is_some() {}
        let pipeline = &self.engine.pipeline;
        let (_, device) = pipeline.schedule_devices(&self.warp_cycles);
        StreamSummary {
            tasks: self.offset,
            chunks: self.chunks,
            stats: self.stats,
            elapsed_ms: pipeline.spec.cycles_to_ms(device.makespan_cycles),
            device,
            warp_cycles: self.warp_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::AgathaConfig;
    use agatha_align::Scoring;

    fn mk_tasks(count: usize, len_base: usize, seed: u64) -> Vec<Task> {
        let mut tasks = Vec::new();
        let mut x = seed | 1;
        for id in 0..count {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let len = len_base + (x >> 33) as usize % len_base;
            let mut r = String::new();
            let mut q = String::new();
            for k in 0..len {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let c = ['A', 'C', 'G', 'T'][(x >> 33) as usize % 4];
                r.push(c);
                q.push(if k % 19 == 0 { 'T' } else { c });
            }
            tasks.push(Task::from_strs(id as u32, &r, &q));
        }
        tasks
    }

    fn pipeline() -> Pipeline {
        Pipeline::new(Scoring::new(2, 4, 4, 2, 60, 16), AgathaConfig::agatha())
    }

    #[test]
    fn chunked_stream_matches_whole_batch() {
        let tasks = mk_tasks(30, 110, 41);
        let whole = pipeline().align_batch(&tasks);
        for chunk_size in [1, 7, 30, 0] {
            let mut engine = pipeline().engine();
            let mut results = Vec::new();
            let mut run = engine.align_stream(tasks.iter().cloned(), chunk_size);
            for chunk in run.by_ref() {
                assert_eq!(chunk.offset, results.len());
                results.extend(chunk.report.results);
            }
            let summary = run.finish();
            assert_eq!(results, whole.results, "chunk_size {chunk_size}");
            assert_eq!(summary.stats, whole.stats, "chunk_size {chunk_size}");
            assert_eq!(summary.tasks, tasks.len());
        }
    }

    #[test]
    fn whole_stream_is_bit_identical_including_schedule() {
        // chunk_size 0: one chunk spanning the stream — even the warp
        // latencies and the device schedule must match align_batch exactly.
        let tasks = mk_tasks(18, 90, 7);
        let whole = pipeline().align_batch(&tasks);
        let mut engine = pipeline().engine();
        let summary = engine.align_stream(tasks.iter().cloned(), 0).finish();
        assert_eq!(summary.warp_cycles, whole.warp_cycles);
        assert_eq!(summary.device, whole.device);
        assert_eq!(summary.elapsed_ms, whole.elapsed_ms);
        assert_eq!(summary.chunks, 1);
    }

    #[test]
    fn engine_survives_many_chunks() {
        let mut engine = pipeline().engine();
        let tasks = mk_tasks(12, 70, 3);
        let a = engine.align_chunk(tasks.clone());
        let b = engine.align_chunk(tasks.clone());
        assert_eq!(a.results, b.results);
        let c = engine.align_chunk(Vec::new());
        assert!(c.results.is_empty());
        assert_eq!(c.elapsed_ms, 0.0);
    }

    #[test]
    fn chunk_folding_parks_spent_buffers_for_reuse() {
        let mut engine = pipeline().engine();
        let tasks = mk_tasks(16, 80, 9);
        let a = engine.align_chunk(tasks.clone());
        // After the first chunk every run's unit buffer is parked (workers
        // had nothing to drain yet).
        assert!(engine.recycled_buffers() > 0, "spent buffers must be parked");
        // Subsequent chunks drain the pool back through the workers and
        // re-park; results stay bit-identical throughout.
        let parked = engine.recycled_buffers();
        for _ in 0..3 {
            let b = engine.align_chunk(tasks.clone());
            assert_eq!(a.results, b.results);
        }
        assert!(
            engine.recycled_buffers() <= parked + tasks.len(),
            "pool must not grow unboundedly"
        );
    }

    #[test]
    fn empty_stream() {
        let mut engine = pipeline().engine();
        let summary = engine.align_stream(std::iter::empty(), 8).finish();
        assert_eq!(summary.tasks, 0);
        assert_eq!(summary.chunks, 0);
        assert_eq!(summary.elapsed_ms, 0.0);
    }
}
