//! Streaming batch engine: a persistent host worker pool with per-worker
//! reusable [`KernelWorkspace`]s, processing task streams in bounded-memory
//! chunks.
//!
//! [`Pipeline::align_batch`] materialises every [`TaskRun`] for a batch it
//! borrows; that is fine for figure reproduction but not for serving
//! traffic. [`BatchEngine`] instead owns its worker threads for its whole
//! lifetime: workers pull owned tasks from a shared queue, execute them
//! with [`run_task_ws`] into their private workspace (zero steady-state
//! allocation on the kernel hot path), and only one chunk of runs is alive
//! at a time. Chunk results are yielded as they complete and the
//! per-chunk [`KernelStats`] / warp latencies are folded incrementally into
//! a [`StreamSummary`].

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use agatha_align::Task;
use agatha_gpu_sim::{DeviceReport, KernelStats};

use crate::bucketing::OrderingStrategy;
use crate::clock::{Clock, SystemClock};
use crate::kernel::{run_task_ws, KernelWorkspace, TaskRun};
use crate::pipeline::{BatchReport, Pipeline};
use crate::trace::SliceUnit;

/// Upper bound on buffers parked in the engine-wide recycle pool. Steady
/// state needs roughly one buffer per in-flight task; the cap only guards
/// against pathological chunk sizes hoarding memory.
const RECYCLE_POOL_CAP: usize = 4096;

struct Job {
    /// Chunk generation the job belongs to; results from an older
    /// generation (e.g. after a caught worker panic aborted a chunk) are
    /// discarded instead of corrupting the next chunk.
    gen: u64,
    idx: usize,
    task: Task,
    /// Request metadata for the serve path; `None` for plain batch jobs,
    /// which skip the clock reads and admission checks entirely.
    meta: Option<JobMeta>,
}

/// Per-request metadata attached to a tagged job: when it entered the
/// queue, when it stops being worth executing, and a kill switch flipped
/// when the requesting client goes away. Times are in the engine clock's
/// nanosecond domain (see [`crate::clock::Clock`]).
#[derive(Debug, Clone, Default)]
pub struct JobMeta {
    /// Clock tick at which the request was admitted (for queue-latency
    /// accounting).
    pub enqueued_ns: u64,
    /// Absolute deadline: a job still undisptached at this tick is dropped
    /// *before* kernel dispatch and reported as such.
    pub deadline_ns: Option<u64>,
    /// Cooperative cancellation: set by the owner (e.g. on client
    /// disconnect) to drop the job before dispatch.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl JobMeta {
    fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(|c| c.load(Ordering::Acquire))
    }

    fn expired(&self, now_ns: u64) -> bool {
        self.deadline_ns.is_some_and(|d| now_ns >= d)
    }
}

/// What became of one tagged job. Exactly one outcome is produced per
/// submitted job — dropped and cancelled jobs are *answered*, not lost.
#[derive(Debug)]
pub enum JobOutcome {
    /// Executed; `queue_ns` is time from enqueue to dispatch, `service_ns`
    /// the kernel execution time.
    Completed { run: TaskRun, queue_ns: u64, service_ns: u64 },
    /// Deadline passed while the job was still queued; the kernel was
    /// never dispatched.
    DroppedDeadline { queue_ns: u64 },
    /// Cancel flag was set before dispatch; the kernel was never
    /// dispatched.
    Cancelled { queue_ns: u64 },
}

/// Monotonic counters for the tagged-job admission decisions, readable at
/// any time via [`BatchEngine::tag_counters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TagCounters {
    /// Tagged jobs that reached kernel dispatch.
    pub dispatched: u64,
    /// Tagged jobs dropped because their deadline passed while queued.
    pub dropped_deadline: u64,
    /// Tagged jobs dropped because their cancel flag was set.
    pub cancelled: u64,
}

#[derive(Default)]
struct TagCountersAtomic {
    dispatched: AtomicU64,
    dropped_deadline: AtomicU64,
    cancelled: AtomicU64,
}

/// A persistent alignment worker pool for one [`Pipeline`] configuration.
///
/// Dropping the engine shuts the pool down and joins every worker.
pub struct BatchEngine {
    pipeline: Pipeline,
    threads: usize,
    gen: u64,
    job_tx: Option<Sender<Job>>,
    result_rx: Receiver<(u64, usize, std::thread::Result<JobOutcome>)>,
    workers: Vec<JoinHandle<()>>,
    /// Spent `TaskRun` output buffers (cost-descriptor vectors) returned by
    /// the per-chunk stats fold; workers drain this into their
    /// [`KernelWorkspace`] so steady-state streaming allocates nothing per
    /// task, not even the run outputs (ROADMAP "TaskRun buffer recycling").
    recycle: Arc<Mutex<Vec<Vec<SliceUnit>>>>,
    counters: Arc<TagCountersAtomic>,
}

impl BatchEngine {
    /// Spawn the worker pool (`pipeline.host_threads`, or all available
    /// cores when 0). Each worker owns one [`KernelWorkspace`] for its
    /// entire lifetime. Deadlines are evaluated against the real monotonic
    /// clock; use [`BatchEngine::with_clock`] to inject a test clock.
    pub fn new(pipeline: Pipeline) -> BatchEngine {
        BatchEngine::with_clock(pipeline, Arc::new(SystemClock::new()))
    }

    /// [`BatchEngine::new`] with an explicit time source for the tagged-job
    /// deadline checks (tests pass [`crate::clock::MockClock`]).
    pub fn with_clock(pipeline: Pipeline, clock: Arc<dyn Clock>) -> BatchEngine {
        let threads = pipeline.worker_threads().max(1);
        let (job_tx, job_rx) = channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (result_tx, result_rx) = channel();
        let recycle: Arc<Mutex<Vec<Vec<SliceUnit>>>> = Arc::new(Mutex::new(Vec::new()));
        let counters = Arc::new(TagCountersAtomic::default());
        let workers = (0..threads)
            .map(|_| {
                let job_rx = Arc::clone(&job_rx);
                let result_tx = result_tx.clone();
                let recycle = Arc::clone(&recycle);
                let counters = Arc::clone(&counters);
                let clock = Arc::clone(&clock);
                let scoring = pipeline.scoring;
                let config = pipeline.config.clone();
                std::thread::spawn(move || {
                    let mut ws = KernelWorkspace::new();
                    loop {
                        // Hold the queue lock only while drawing a job, not
                        // while executing it.
                        let job = { job_rx.lock().expect("queue lock poisoned").recv() };
                        let Ok(Job { gen, idx, task, meta }) = job else { break };
                        // Admission gate for tagged jobs: a cancelled or
                        // deadline-expired request must never reach kernel
                        // dispatch — checked here, at the last moment
                        // before execution.
                        let dispatch_ns = meta.as_ref().map(|m| {
                            let now = clock.now_ns();
                            (now, now.saturating_sub(m.enqueued_ns))
                        });
                        if let (Some(m), Some((now, queue_ns))) = (&meta, dispatch_ns) {
                            let skipped = if m.cancelled() {
                                counters.cancelled.fetch_add(1, Ordering::Relaxed);
                                Some(JobOutcome::Cancelled { queue_ns })
                            } else if m.expired(now) {
                                counters.dropped_deadline.fetch_add(1, Ordering::Relaxed);
                                Some(JobOutcome::DroppedDeadline { queue_ns })
                            } else {
                                counters.dispatched.fetch_add(1, Ordering::Relaxed);
                                None
                            };
                            if let Some(outcome) = skipped {
                                if result_tx.send((gen, idx, Ok(outcome))).is_err() {
                                    break;
                                }
                                continue;
                            }
                        }
                        // Top up the workspace with spent output buffers so
                        // the run's cost descriptors reuse their capacity.
                        // Drain a small batch under one lock, and only when
                        // the local pool is dry, so the per-task hot path
                        // doesn't pay a global lock per job.
                        if ws.recycled_buffers().0 == 0 {
                            if let Ok(mut pool) = recycle.lock() {
                                let from = pool.len() - pool.len().min(4);
                                for units in pool.drain(from..) {
                                    ws.recycle_units(units);
                                }
                            }
                        }
                        // Catch panics so the collector can re-raise them
                        // instead of deadlocking on a result that never
                        // arrives. The workspace is safe to reuse after a
                        // panic: every run fully reinitialises it.
                        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            run_task_ws(&mut ws, &task, &scoring, &config)
                        }));
                        let outcome = run.map(|run| {
                            let (queue_ns, service_ns) = match dispatch_ns {
                                Some((start, queue_ns)) => {
                                    (queue_ns, clock.now_ns().saturating_sub(start))
                                }
                                None => (0, 0),
                            };
                            JobOutcome::Completed { run, queue_ns, service_ns }
                        });
                        if result_tx.send((gen, idx, outcome)).is_err() {
                            break;
                        }
                    }
                })
            })
            .collect();
        BatchEngine {
            pipeline,
            threads,
            gen: 0,
            job_tx: Some(job_tx),
            result_rx,
            workers,
            recycle,
            counters,
        }
    }

    /// The pipeline configuration this engine serves.
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// Worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute one chunk of owned tasks on the pool, returning the runs in
    /// input order. Deterministic: results are reassembled by index, so
    /// worker interleaving never changes the output.
    pub fn run_tasks(&mut self, tasks: Vec<Task>) -> Vec<TaskRun> {
        self.run_jobs(tasks.into_iter().map(|t| (t, None)).collect())
            .into_iter()
            .map(|outcome| match outcome {
                JobOutcome::Completed { run, .. } => run,
                // Untagged jobs carry no deadline or cancel flag, so no
                // other outcome is reachable.
                other => unreachable!("untagged job produced {other:?}"),
            })
            .collect()
    }

    /// Execute owned tasks with per-request [`JobMeta`] (deadline,
    /// cancellation, enqueue tick), returning one [`JobOutcome`] per job in
    /// input order: every job is answered exactly once — completed,
    /// deadline-dropped, or cancelled — never lost. Dropped and cancelled
    /// jobs never reach kernel dispatch (see [`BatchEngine::tag_counters`]).
    pub fn run_tagged(&mut self, jobs: Vec<(Task, JobMeta)>) -> Vec<JobOutcome> {
        self.run_jobs(jobs.into_iter().map(|(t, m)| (t, Some(m))).collect())
    }

    fn run_jobs(&mut self, jobs: Vec<(Task, Option<JobMeta>)>) -> Vec<JobOutcome> {
        let count = jobs.len();
        self.gen += 1;
        let gen = self.gen;
        let job_tx = self.job_tx.as_ref().expect("engine pool is live until drop");
        for (idx, (task, meta)) in jobs.into_iter().enumerate() {
            job_tx.send(Job { gen, idx, task, meta }).expect("worker pool alive");
        }
        let mut out: Vec<Option<JobOutcome>> = (0..count).map(|_| None).collect();
        let mut received = 0;
        while received < count {
            let (g, idx, run) = self.result_rx.recv().expect("worker pool alive");
            if g != gen {
                // Leftover from a chunk aborted by a re-raised panic.
                continue;
            }
            received += 1;
            match run {
                Ok(outcome) => out[idx] = Some(outcome),
                // Re-raise a worker panic on the calling thread.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out.into_iter().map(|r| r.expect("every job answered")).collect()
    }

    /// Snapshot of the tagged-job admission counters (dispatched /
    /// deadline-dropped / cancelled).
    pub fn tag_counters(&self) -> TagCounters {
        TagCounters {
            dispatched: self.counters.dispatched.load(Ordering::Relaxed),
            dropped_deadline: self.counters.dropped_deadline.load(Ordering::Relaxed),
            cancelled: self.counters.cancelled.load(Ordering::Relaxed),
        }
    }

    /// Align one owned chunk end to end (kernel runs → warp assignment →
    /// simulation → device scheduling), with the configuration's implied
    /// ordering strategy. Bit-identical to [`Pipeline::align_batch`] on the
    /// same tasks.
    pub fn align_chunk(&mut self, tasks: Vec<Task>) -> BatchReport {
        let strategy = self.pipeline.default_strategy();
        self.align_chunk_with_strategy(tasks, strategy)
    }

    /// [`BatchEngine::align_chunk`] with an explicit ordering strategy.
    pub fn align_chunk_with_strategy(
        &mut self,
        tasks: Vec<Task>,
        strategy: OrderingStrategy,
    ) -> BatchReport {
        let workloads: Vec<u64> = tasks.iter().map(|t| t.antidiags() as u64).collect();
        let runs = self.run_tasks(tasks);
        // After the stats fold the runs' unit buffers are surplus; park them
        // for the workers to reuse on the next chunk.
        let recycle = Arc::clone(&self.recycle);
        self.pipeline.assemble_report_recycling(&workloads, runs, strategy, move |units| {
            if units.capacity() == 0 {
                return; // nothing worth round-tripping
            }
            if let Ok(mut pool) = recycle.lock() {
                if pool.len() < RECYCLE_POOL_CAP {
                    pool.push(units);
                }
            }
        })
    }

    /// Buffers currently parked in the recycle pool (test visibility).
    pub fn recycled_buffers(&self) -> usize {
        self.recycle.lock().map(|p| p.len()).unwrap_or(0)
    }

    /// Stream `tasks` through the pool in chunks of `chunk_size`. Only one
    /// chunk of tasks and runs is in memory at a time; iterate the returned
    /// [`StreamRun`] for per-chunk reports, then call [`StreamRun::finish`]
    /// for the folded totals. For whole-stream-as-one-chunk behaviour pass
    /// a chunk size at least as large as the stream.
    ///
    /// # Panics
    ///
    /// `chunk_size == 0` is a usage error (it used to silently mean
    /// "unbounded", defeating the memory bound that is the point of
    /// streaming) and panics with a descriptive message; CLI layers must
    /// validate `--chunk` before calling.
    pub fn align_stream<I>(&mut self, tasks: I, chunk_size: usize) -> StreamRun<'_, I::IntoIter>
    where
        I: IntoIterator<Item = Task>,
    {
        assert!(chunk_size >= 1, "align_stream chunk_size must be at least 1 (got 0)");
        StreamRun {
            engine: self,
            tasks: tasks.into_iter(),
            chunk_size,
            offset: 0,
            chunks: 0,
            stats: KernelStats::new(),
            warp_cycles: Vec::new(),
        }
    }
}

impl Drop for BatchEngine {
    fn drop(&mut self) {
        // Closing the job channel makes every worker's recv fail and exit.
        drop(self.job_tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// One chunk's worth of output from [`BatchEngine::align_stream`].
#[derive(Debug, Clone)]
pub struct ChunkReport {
    /// Index of the chunk's first task within the stream.
    pub offset: usize,
    /// Full batch report for the chunk alone.
    pub report: BatchReport,
}

/// Folded totals of a finished stream.
#[derive(Debug, Clone)]
pub struct StreamSummary {
    /// Tasks processed.
    pub tasks: usize,
    /// Chunks processed.
    pub chunks: usize,
    /// Aggregate execution statistics (identical to a whole-batch run's).
    pub stats: KernelStats,
    /// Per-warp latencies across all chunks, in submission order.
    pub warp_cycles: Vec<f64>,
    /// Straggler-device schedule of all the stream's warps as one pooled
    /// submission sequence on the configured device(s) — a chunk's warps
    /// may start in slots freed mid-way through the previous chunk, which
    /// is why a chunk size spanning the whole stream reproduces
    /// `align_batch` exactly.
    pub device: DeviceReport,
    /// Simulated kernel time of the whole stream in milliseconds.
    pub elapsed_ms: f64,
}

/// Lazy chunk-by-chunk driver returned by [`BatchEngine::align_stream`].
pub struct StreamRun<'e, I: Iterator<Item = Task>> {
    engine: &'e mut BatchEngine,
    tasks: I,
    chunk_size: usize,
    offset: usize,
    chunks: usize,
    stats: KernelStats,
    warp_cycles: Vec<f64>,
}

impl<I: Iterator<Item = Task>> Iterator for StreamRun<'_, I> {
    type Item = ChunkReport;

    fn next(&mut self) -> Option<ChunkReport> {
        let take = self.chunk_size;
        let mut chunk = Vec::new();
        while chunk.len() < take {
            match self.tasks.next() {
                Some(t) => chunk.push(t),
                None => break,
            }
        }
        if chunk.is_empty() {
            return None;
        }
        let offset = self.offset;
        self.offset += chunk.len();
        self.chunks += 1;
        let report = self.engine.align_chunk(chunk);
        self.stats.add(&report.stats);
        self.warp_cycles.extend_from_slice(&report.warp_cycles);
        Some(ChunkReport { offset, report })
    }
}

impl<I: Iterator<Item = Task>> StreamRun<'_, I> {
    /// Drain any unprocessed chunks, then fold the totals. The final device
    /// schedule treats all warps of the stream as one submission sequence on
    /// the pipeline's device(s).
    pub fn finish(mut self) -> StreamSummary {
        while self.next().is_some() {}
        let pipeline = &self.engine.pipeline;
        let (_, device) = pipeline.schedule_devices(&self.warp_cycles);
        StreamSummary {
            tasks: self.offset,
            chunks: self.chunks,
            stats: self.stats,
            elapsed_ms: pipeline.spec.cycles_to_ms(device.makespan_cycles),
            device,
            warp_cycles: self.warp_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::AgathaConfig;
    use agatha_align::Scoring;

    fn mk_tasks(count: usize, len_base: usize, seed: u64) -> Vec<Task> {
        let mut tasks = Vec::new();
        let mut x = seed | 1;
        for id in 0..count {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let len = len_base + (x >> 33) as usize % len_base;
            let mut r = String::new();
            let mut q = String::new();
            for k in 0..len {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let c = ['A', 'C', 'G', 'T'][(x >> 33) as usize % 4];
                r.push(c);
                q.push(if k % 19 == 0 { 'T' } else { c });
            }
            tasks.push(Task::from_strs(id as u32, &r, &q));
        }
        tasks
    }

    fn pipeline() -> Pipeline {
        Pipeline::new(Scoring::new(2, 4, 4, 2, 60, 16), AgathaConfig::agatha())
    }

    #[test]
    fn chunked_stream_matches_whole_batch() {
        let tasks = mk_tasks(30, 110, 41);
        let whole = pipeline().align_batch(&tasks);
        for chunk_size in [1, 7, 30, 64] {
            let mut engine = pipeline().engine();
            let mut results = Vec::new();
            let mut run = engine.align_stream(tasks.iter().cloned(), chunk_size);
            for chunk in run.by_ref() {
                assert_eq!(chunk.offset, results.len());
                results.extend(chunk.report.results);
            }
            let summary = run.finish();
            assert_eq!(results, whole.results, "chunk_size {chunk_size}");
            assert_eq!(summary.stats, whole.stats, "chunk_size {chunk_size}");
            assert_eq!(summary.tasks, tasks.len());
        }
    }

    #[test]
    fn whole_stream_is_bit_identical_including_schedule() {
        // One chunk spanning the stream — even the warp latencies and the
        // device schedule must match align_batch exactly.
        let tasks = mk_tasks(18, 90, 7);
        let whole = pipeline().align_batch(&tasks);
        let mut engine = pipeline().engine();
        let summary = engine.align_stream(tasks.iter().cloned(), tasks.len()).finish();
        assert_eq!(summary.warp_cycles, whole.warp_cycles);
        assert_eq!(summary.device, whole.device);
        assert_eq!(summary.elapsed_ms, whole.elapsed_ms);
        assert_eq!(summary.chunks, 1);
    }

    #[test]
    fn engine_survives_many_chunks() {
        let mut engine = pipeline().engine();
        let tasks = mk_tasks(12, 70, 3);
        let a = engine.align_chunk(tasks.clone());
        let b = engine.align_chunk(tasks.clone());
        assert_eq!(a.results, b.results);
        let c = engine.align_chunk(Vec::new());
        assert!(c.results.is_empty());
        assert_eq!(c.elapsed_ms, 0.0);
    }

    #[test]
    fn chunk_folding_parks_spent_buffers_for_reuse() {
        let mut engine = pipeline().engine();
        let tasks = mk_tasks(16, 80, 9);
        let a = engine.align_chunk(tasks.clone());
        // After the first chunk every run's unit buffer is parked (workers
        // had nothing to drain yet).
        assert!(engine.recycled_buffers() > 0, "spent buffers must be parked");
        // Subsequent chunks drain the pool back through the workers and
        // re-park; results stay bit-identical throughout.
        let parked = engine.recycled_buffers();
        for _ in 0..3 {
            let b = engine.align_chunk(tasks.clone());
            assert_eq!(a.results, b.results);
        }
        assert!(
            engine.recycled_buffers() <= parked + tasks.len(),
            "pool must not grow unboundedly"
        );
    }

    #[test]
    fn empty_stream() {
        let mut engine = pipeline().engine();
        let summary = engine.align_stream(std::iter::empty(), 8).finish();
        assert_eq!(summary.tasks, 0);
        assert_eq!(summary.chunks, 0);
        assert_eq!(summary.elapsed_ms, 0.0);
    }

    #[test]
    #[should_panic(expected = "chunk_size must be at least 1")]
    fn zero_chunk_size_is_a_usage_error() {
        let mut engine = pipeline().engine();
        let _ = engine.align_stream(mk_tasks(3, 40, 5), 0);
    }

    use crate::clock::MockClock;

    fn tagged_engine() -> (BatchEngine, Arc<MockClock>) {
        let clock = Arc::new(MockClock::new());
        let mut p = pipeline();
        p.host_threads = 2;
        (BatchEngine::with_clock(p, clock.clone()), clock)
    }

    #[test]
    fn cancelled_jobs_never_reach_kernel_dispatch() {
        let (mut engine, _clock) = tagged_engine();
        let cancel = Arc::new(AtomicBool::new(true));
        let jobs: Vec<(Task, JobMeta)> = mk_tasks(8, 60, 11)
            .into_iter()
            .map(|t| {
                (
                    t,
                    JobMeta {
                        enqueued_ns: 0,
                        deadline_ns: None,
                        cancel: Some(Arc::clone(&cancel)),
                    },
                )
            })
            .collect();
        let outcomes = engine.run_tagged(jobs);
        assert_eq!(outcomes.len(), 8);
        assert!(outcomes.iter().all(|o| matches!(o, JobOutcome::Cancelled { .. })));
        let c = engine.tag_counters();
        assert_eq!(c, TagCounters { dispatched: 0, dropped_deadline: 0, cancelled: 8 });
        // Nothing executed, so nothing was parked for recycling either: a
        // cancelled request's buffers cannot leak into another request.
        assert_eq!(engine.recycled_buffers(), 0);
    }

    #[test]
    fn expired_deadlines_drop_before_dispatch() {
        let (mut engine, clock) = tagged_engine();
        clock.set_ns(5_000_000);
        let tasks = mk_tasks(6, 60, 13);
        let jobs: Vec<(Task, JobMeta)> = tasks
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, t)| {
                // Even indices expired 1ms ago; odd ones have 10ms left.
                let deadline = if i % 2 == 0 { 4_000_000 } else { 15_000_000 };
                (t, JobMeta { enqueued_ns: 1_000_000, deadline_ns: Some(deadline), cancel: None })
            })
            .collect();
        let outcomes = engine.run_tagged(jobs);
        let reference = pipeline().align_batch(&tasks);
        for (i, o) in outcomes.iter().enumerate() {
            match o {
                JobOutcome::DroppedDeadline { queue_ns } => {
                    assert_eq!(i % 2, 0, "only expired jobs may drop");
                    assert_eq!(*queue_ns, 4_000_000);
                }
                JobOutcome::Completed { run, .. } => {
                    assert_eq!(i % 2, 1, "live jobs must complete");
                    // The surviving results are bit-identical to the batch
                    // path on the same tasks.
                    assert_eq!(run.result, reference.results[i]);
                }
                JobOutcome::Cancelled { .. } => panic!("no cancel flags were set"),
            }
        }
        let c = engine.tag_counters();
        assert_eq!(c, TagCounters { dispatched: 3, dropped_deadline: 3, cancelled: 0 });
    }

    #[test]
    fn dropped_jobs_leave_recycling_bit_identical() {
        // Interleaving dropped work must not corrupt or cross-serve the
        // recycled unit buffers: chunks aligned after drops stay
        // bit-identical to the reference.
        let (mut engine, clock) = tagged_engine();
        let tasks = mk_tasks(12, 70, 17);
        let reference = engine.align_chunk(tasks.clone());
        let parked = engine.recycled_buffers();
        assert!(parked > 0);
        clock.set_ns(1_000);
        let dead: Vec<(Task, JobMeta)> = tasks
            .iter()
            .cloned()
            .map(|t| (t, JobMeta { enqueued_ns: 0, deadline_ns: Some(500), cancel: None }))
            .collect();
        let outcomes = engine.run_tagged(dead);
        assert!(outcomes.iter().all(|o| matches!(o, JobOutcome::DroppedDeadline { .. })));
        // Dropped jobs produced no runs: the pool neither grew nor served
        // buffers to phantom requests.
        assert_eq!(engine.recycled_buffers(), parked);
        let again = engine.align_chunk(tasks.clone());
        assert_eq!(again.results, reference.results);
        assert_eq!(again.stats, reference.stats);
    }

    #[test]
    fn tagged_queue_and_service_latencies_are_measured() {
        let (mut engine, clock) = tagged_engine();
        clock.set_ns(2_000_000);
        let jobs: Vec<(Task, JobMeta)> = mk_tasks(3, 50, 19)
            .into_iter()
            .map(|t| (t, JobMeta { enqueued_ns: 500_000, deadline_ns: None, cancel: None }))
            .collect();
        for o in engine.run_tagged(jobs) {
            match o {
                JobOutcome::Completed { queue_ns, .. } => {
                    // MockClock does not advance during service, but the
                    // queue wait is exact: dispatch tick − enqueue tick.
                    assert_eq!(queue_ns, 1_500_000);
                }
                other => panic!("expected completion, got {other:?}"),
            }
        }
    }
}
