//! Cost traces: per-checkpoint-unit work descriptors and their latency
//! evaluation under the cost model.
//!
//! The kernel executes each task once (computing real DP values) and emits
//! one [`SliceUnit`] per checkpoint unit — a *chunk* in horizontal mode, a
//! *slice* in sliced-diagonal mode. A unit records enough geometry to
//! re-evaluate its latency under a different lane count, which is exactly
//! what subwarp rejoining needs: when subwarps merge at a slice boundary,
//! the remaining units of the absorbed task run with more lanes.

use agatha_gpu_sim::{AccessKind, CostModel, MemCounters};

use crate::options::AgathaConfig;

/// Global transactions per block for per-cell anti-diagonal max updates
/// when the rolling window is off (64 lane updates, partially coalesced).
pub const ANTI_TX_PER_BLOCK_NO_RW: u64 = 2;
/// Global sequence-load transactions issued per lockstep step (one packed
/// word per lane, coalescing across lanes).
pub const SEQ_STEP_TX: f64 = 1.0;
/// Boundary/west intermediate values coalesce across consecutive rows.
pub const INTER_COALESCE: u64 = 8;
/// Shared accesses per block for LMB updates (one per cell).
pub const SHARED_PER_BLOCK_LMB: u64 = 64;
/// Shared accesses per block for intra-chunk boundary exchange (packed
/// H/F vectors, write + read).
pub const SHARED_PER_BLOCK_INTER: u64 = 2;
/// Global transactions per boundary-row block across chunk boundaries
/// (H, E and F vectors plus corners; write by the bottom row + read by the
/// next chunk's top row).
pub const GLOBAL_INTER_PER_BOUNDARY_BLOCK: u64 = 6;
/// Global transactions per block-row for slice-edge intermediate values
/// (packed H/E, write at slice end + read at next slice start; the
/// "Additional Memory Access" of Fig. 5(c)).
pub const GLOBAL_WEST_PER_ROW: u64 = 2;
/// Packed-sequence loads per block (one reference word per lane).
pub const SEQ_TX_PER_BLOCK: u64 = 1;
/// Packed-sequence loads per block-row (the query word stays in registers
/// for the whole row sweep).
pub const SEQ_TX_PER_ROW: u64 = 1;
/// Fraction of sequence loads that reach DRAM (the rest hit L2/texture
/// cache): one transaction per this many loads.
pub const SEQ_CACHE_DIVISOR: u64 = 4;
/// Extra cycles per lockstep step when the rolling-window index needs a
/// modulo instead of a bitwise AND ("which is known to be slow on GPUs",
/// §5.5 — slice widths 3 and 7 avoid it).
pub const MODULO_PENALTY_CYCLES: f64 = 3.0;

/// Work descriptor for one checkpoint unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceUnit {
    /// Blocks computed per block-row of the unit, top to bottom.
    pub row_cols: Vec<u16>,
    /// Total blocks (== sum of `row_cols`).
    pub blocks: u64,
    /// Anti-diagonals newly completed (and termination-checked) at this
    /// unit's checkpoint.
    pub diags_completed: u32,
    /// Whether the unit's anti-diagonal span fits the LMB, eliminating
    /// global spilling (§4.2).
    pub lmb_fits: bool,
}

/// Latency evaluation output for one unit.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitCost {
    /// Simulated cycles for the owning subwarp.
    pub cycles: f64,
    /// Lockstep block-steps.
    pub steps: u64,
    /// Lane-steps wasted to stagger/fragmentation at this lane count.
    pub idle_lane_steps: u64,
    /// Memory transactions.
    pub mem: MemCounters,
}

/// Evaluate one unit's latency for a subwarp of `lanes` threads.
pub fn unit_cost(unit: &SliceUnit, lanes: usize, cfg: &AgathaConfig, cost: &CostModel) -> UnitCost {
    unit_cost_with(unit, lanes, cfg, cost, true)
}

/// Like [`unit_cost`] but optionally dropping all guided-alignment
/// bookkeeping (anti-diagonal max tracking and termination checks). The
/// Diff-Target baselines compute plain banded alignment, which keeps only a
/// running register maximum — no per-diagonal state, no GMB.
pub fn unit_cost_with(
    unit: &SliceUnit,
    lanes: usize,
    cfg: &AgathaConfig,
    cost: &CostModel,
    track_maxima: bool,
) -> UnitCost {
    debug_assert!(lanes >= 1);
    let mut steps = 0u64;
    let mut idle = 0u64;
    let mut mem = MemCounters::new();

    let mut boundary_blocks = 0u64; // blocks on chunk-boundary rows

    if cfg.sliced_diagonal {
        // Sliced-diagonal geometry (§4.2): successive chunks move down-left,
        // so a new chunk's dependencies come from the *previous slice* —
        // the stagger pipeline fills once per slice (depth = the base
        // subwarp size) and never drains between chunks. Merged subwarps
        // (§4.3) run as parallel pipelines over interleaved rows
        // (`__match_any_sync` keeps subwarp-local thread IDs).
        let p = cfg.subwarp_lanes.min(lanes).max(1);
        let mut lane_blocks = vec![0u64; lanes];
        for (r, &cols) in unit.row_cols.iter().enumerate() {
            lane_blocks[r % lanes] += cols as u64;
        }
        let max_blocks = lane_blocks.iter().copied().max().unwrap_or(0);
        // Adjacent slices overlap their fill/drain phases (the next slice's
        // first rows depend only on completed data); roughly half the
        // pipeline bubble remains for the boundary termination check.
        steps = max_blocks + (p as u64 - 1).div_ceil(2);
        for &b in &lane_blocks {
            idle += steps - b;
        }
        // All intermediate boundary exchange inside a slice stays in shared
        // memory; only the slice-edge west values go through global memory
        // (the "Additional Memory Access" of Fig. 5(c)).
        mem.global(AccessKind::Intermediate, GLOBAL_WEST_PER_ROW * unit.row_cols.len() as u64);
    } else {
        // Horizontal-only geometry (§2.2): a chunk's first row depends on
        // the row directly above (previous chunk's last row), so the
        // stagger pipeline drains and refills at every chunk boundary, and
        // the boundary rows' H/F cross through global memory.
        let mut first_chunk = true;
        for chunk in unit.row_cols.chunks(lanes) {
            let max_cols = chunk.iter().copied().max().unwrap_or(0) as u64;
            let chunk_steps = max_cols + chunk.len() as u64 - 1;
            steps += chunk_steps;
            for &c in chunk {
                idle += chunk_steps - c as u64;
            }
            idle += (lanes - chunk.len()) as u64 * chunk_steps;
            if !first_chunk {
                boundary_blocks += chunk.first().copied().unwrap_or(0) as u64;
            }
            boundary_blocks += chunk.last().copied().unwrap_or(0) as u64;
            first_chunk = false;
        }
        mem.global(AccessKind::Intermediate, GLOBAL_INTER_PER_BOUNDARY_BLOCK * boundary_blocks);
    }

    // ---- Lane-parallel per-step overheads --------------------------------
    // Work every lane performs inside its block — LMB updates in banked
    // shared memory, intra-chunk boundary exchange, its own packed-sequence
    // load — overlaps across lanes, so it costs *per lockstep step*, not
    // per block. This is exactly why merging subwarps (fewer steps) speeds
    // a slice up.
    let mut step_extra = SHARED_PER_BLOCK_INTER as f64 * cost.shared_cycles
        + SEQ_STEP_TX * cost.global_tx_cycles / SEQ_CACHE_DIVISOR as f64;
    // Traffic stats still count totals.
    mem.global(
        AccessKind::Sequence,
        (SEQ_TX_PER_BLOCK * unit.blocks + SEQ_TX_PER_ROW * unit.row_cols.len() as u64)
            / SEQ_CACHE_DIVISOR,
    );
    mem.shared(SHARED_PER_BLOCK_INTER * unit.blocks);

    // ---- Bandwidth-bound serial traffic ----------------------------------
    // Anti-diagonal max tracking and termination checks.
    let diags = unit.diags_completed as u64;
    let reduce_cost =
        if cost.has_warp_reduce { cost.reduce_cycles } else { cost.reduce_fallback_cycles };
    let mut serial_cycles = 0.0;
    if !track_maxima {
        // Plain banded alignment: running maximum stays in registers.
    } else if cfg.rolling_window {
        mem.shared(SHARED_PER_BLOCK_LMB * unit.blocks);
        step_extra += SHARED_PER_BLOCK_LMB as f64 * cost.shared_cycles;
        mem.reduce(diags);
        serial_cycles += diags as f64 * reduce_cost;
        if cfg.sliced_diagonal && unit.lmb_fits {
            // Whole window lives in shared memory: termination reads the
            // LMB/GMB copies there.
            mem.shared(diags);
            serial_cycles += diags as f64 * cost.shared_cycles;
        } else {
            // Window must spill completed rows to the GMB in global memory;
            // the termination test reads the GMB once per checkpoint.
            mem.global(AccessKind::AntiMax, diags);
            mem.global(AccessKind::Termination, 1);
            serial_cycles += (diags as f64 + 1.0) * cost.global_tx_cycles;
        }
    } else {
        // Per-cell updates of the diagonal max buffer in global memory:
        // partially coalesced, bandwidth-bound — the §3.1 bottleneck.
        mem.global(AccessKind::AntiMax, ANTI_TX_PER_BLOCK_NO_RW * unit.blocks);
        mem.global(AccessKind::Termination, 2 * diags);
        serial_cycles += (ANTI_TX_PER_BLOCK_NO_RW * unit.blocks) as f64 * cost.global_tx_cycles;
        serial_cycles += 2.0 * diags as f64 * cost.global_tx_cycles;
    }
    // Intermediate-value traffic (already counted in `mem` above).
    serial_cycles += (mem.global_inter as f64 / INTER_COALESCE as f64) * cost.global_tx_cycles;

    let mut cycles = cost.step_cycles(steps) + steps as f64 * step_extra + serial_cycles;
    if cfg.sliced_diagonal && !cfg.slice_width_uses_mask() {
        cycles += steps as f64 * MODULO_PENALTY_CYCLES;
    }
    UnitCost { cycles, steps, idle_lane_steps: idle, mem }
}

/// Total latency of a sequence of units at a fixed lane count.
pub fn units_cycles(
    units: &[SliceUnit],
    lanes: usize,
    cfg: &AgathaConfig,
    cost: &CostModel,
) -> f64 {
    units.iter().map(|u| unit_cost(u, lanes, cfg, cost).cycles).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use agatha_gpu_sim::GpuSpec;

    fn cost() -> CostModel {
        CostModel::for_spec(&GpuSpec::rtx_a6000())
    }

    fn unit(rows: &[u16], diags: u32, fits: bool) -> SliceUnit {
        SliceUnit {
            row_cols: rows.to_vec(),
            blocks: rows.iter().map(|&c| c as u64).sum(),
            diags_completed: diags,
            lmb_fits: fits,
        }
    }

    #[test]
    fn more_lanes_fewer_steps() {
        let cfg = AgathaConfig::agatha();
        let u = unit(&[3; 32], 24, true);
        let c8 = unit_cost(&u, 8, &cfg, &cost());
        let c16 = unit_cost(&u, 16, &cfg, &cost());
        let c32 = unit_cost(&u, 32, &cfg, &cost());
        assert!(c16.steps < c8.steps);
        assert!(c32.steps < c16.steps);
        assert!(c32.cycles < c8.cycles);
    }

    #[test]
    fn lanes_beyond_rows_change_nothing() {
        // A slice with fewer rows than lanes cannot profit from merging —
        // the reason subwarp rejoining needs slices spanning many rows.
        let cfg = AgathaConfig::agatha();
        let u = unit(&[3; 6], 24, true);
        let c8 = unit_cost(&u, 8, &cfg, &cost());
        let c32 = unit_cost(&u, 32, &cfg, &cost());
        assert_eq!(c8.steps, c32.steps);
    }

    #[test]
    fn rolling_window_removes_global_anti_traffic() {
        let base = AgathaConfig::baseline();
        let rw = base.clone().with_rw(true);
        let u = unit(&[13; 8], 64, false);
        let no = unit_cost(&u, 8, &base, &cost());
        let yes = unit_cost(&u, 8, &rw, &cost());
        assert!(no.mem.global_anti > 3 * yes.mem.global_anti);
        assert!(yes.mem.shared > no.mem.shared);
        assert!(yes.cycles < no.cycles, "RW must be faster: {} vs {}", yes.cycles, no.cycles);
    }

    #[test]
    fn fitting_lmb_eliminates_spills() {
        let cfg = AgathaConfig::baseline().with_rw(true).with_sd(true);
        let fits = unit(&[3; 8], 24, true);
        let spills = unit(&[3; 8], 24, false);
        let a = unit_cost(&fits, 8, &cfg, &cost());
        let b = unit_cost(&spills, 8, &cfg, &cost());
        assert_eq!(a.mem.global_anti, 0);
        assert!(b.mem.global_anti > 0);
        assert!(a.cycles < b.cycles);
    }

    #[test]
    fn intermediate_traffic_by_mode() {
        let horizontal = AgathaConfig::baseline().with_rw(true);
        let sliced = horizontal.clone().with_sd(true);
        let u = unit(&[3; 8], 24, false);
        let h = unit_cost(&u, 8, &horizontal, &cost());
        let s = unit_cost(&u, 8, &sliced, &cost());
        // Horizontal pays per chunk-boundary block; sliced pays the per-row
        // slice-edge west values of Fig. 5(c).
        assert!(h.mem.global_inter > 0);
        assert_eq!(s.mem.global_inter, 2 * 8);
    }

    #[test]
    fn modulo_penalty_applies_off_mask_widths() {
        let cfg3 = AgathaConfig::agatha().with_slice_width(3);
        let cfg4 = AgathaConfig::agatha().with_slice_width(4);
        let u = unit(&[4; 8], 32, true);
        let a = unit_cost(&u, 8, &cfg3, &cost());
        let b = unit_cost(&u, 8, &cfg4, &cost());
        assert!(b.cycles > a.cycles);
    }

    #[test]
    fn stagger_idle_counted_sliced() {
        let cfg = AgathaConfig::agatha();
        // Sliced mode: 8 rows of 4 blocks on 8 lanes, half-overlapped fill:
        // steps = 4 + ceil(7/2) = 8; idle = 8 * (8 - 4).
        let u = unit(&[4; 8], 0, true);
        let c = unit_cost(&u, 8, &cfg, &cost());
        assert_eq!(c.steps, 8);
        assert_eq!(c.idle_lane_steps, 8 * 4);
    }

    #[test]
    fn stagger_idle_counted_horizontal() {
        let cfg = AgathaConfig::baseline();
        // Horizontal mode drains per chunk: steps = 4 + 7 = 11.
        let u = unit(&[4; 8], 0, false);
        let c = unit_cost(&u, 8, &cfg, &cost());
        assert_eq!(c.steps, 11);
        assert_eq!(c.idle_lane_steps, 8 * 7);
    }

    #[test]
    fn units_cycles_sums() {
        let cfg = AgathaConfig::agatha();
        let u = unit(&[3; 8], 24, true);
        let one = units_cycles(std::slice::from_ref(&u), 8, &cfg, &cost());
        let two = units_cycles(&[u.clone(), u], 8, &cfg, &cost());
        assert!((two - 2.0 * one).abs() < 1e-9);
    }
}
