//! The AGAThA kernel executor: computes one task's real DP values under the
//! configured tiling (horizontal chunks or sliced diagonal), feeds the
//! shared [`DiagTracker`], and emits per-checkpoint-unit cost descriptors.
//!
//! Exactness: the DP values and termination decisions are identical across
//! every configuration — tiling affects only *which extra cells get
//! computed* (run-ahead) and what the memory traffic costs. This is
//! verified against the scalar reference in this module's tests and by
//! property tests at the workspace level.

use agatha_align::block::{
    compute_block_i16, compute_block_mode, corner_read, north_read, west_init, BlockCellsT,
    BlockCtx, FillMode, FillTier,
};
use agatha_align::diag::DiagTracker;
use agatha_align::{GuidedResult, QueryProfile, Scoring, Task, BLOCK, MAX_BLOCK, NEG_INF};
use agatha_gpu_sim::{CostModel, KernelStats};

use crate::options::AgathaConfig;
use crate::trace::{unit_cost, SliceUnit};

/// Output of executing one task through the kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskRun {
    /// Task identifier (copied from the input).
    pub id: u32,
    /// Exact guided-alignment result.
    pub result: GuidedResult,
    /// Cost descriptors, one per checkpoint unit, in execution order.
    pub units: Vec<SliceUnit>,
    /// Total blocks computed (including run-ahead).
    pub blocks: u64,
    /// Block side this task was tiled with (the per-task resolution of
    /// [`AgathaConfig::block_dim_for`]): 8 or 16.
    pub block_dim: u32,
}

impl TaskRun {
    /// Cells actually computed by the device (blocks × block_dim²; at the
    /// paper's 8×8 geometry this is blocks × [`agatha_gpu_sim::BLOCK_CELLS`]).
    pub fn computed_cells(&self) -> u64 {
        self.blocks * u64::from(self.block_dim) * u64::from(self.block_dim)
    }

    /// Aggregate stats at a fixed lane count under a cost model.
    pub fn stats(&self, lanes: usize, cfg: &AgathaConfig, cost: &CostModel) -> KernelStats {
        let mut s = KernelStats::new();
        s.computed_cells = self.computed_cells();
        s.reference_cells = self.result.cells;
        s.tasks = 1;
        s.zdropped_tasks = u64::from(self.result.stop.z_dropped());
        for u in &self.units {
            let c = unit_cost(u, lanes, cfg, cost);
            s.steps += c.steps;
            s.idle_lane_steps += c.idle_lane_steps;
            s.mem.add(&c.mem);
        }
        s
    }

    /// Subwarp latency in cycles at a fixed lane count.
    pub fn cycles(&self, lanes: usize, cfg: &AgathaConfig, cost: &CostModel) -> f64 {
        crate::trace::units_cycles(&self.units, lanes, cfg, cost)
    }
}

/// Per-block-row state carried across slices (sliced mode) or within a row
/// sweep (horizontal mode). Boundary storage is sized for the widest
/// geometry so one carry vector serves both block sides (the generic kernel
/// body reborrows the first `B` lanes as `[i32; B]`, no copies).
#[derive(Debug, Clone)]
struct RowCarry {
    west_h: [i32; MAX_BLOCK],
    west_e: [i32; MAX_BLOCK],
    corner: i32,
    started: bool,
}

impl RowCarry {
    fn fresh() -> RowCarry {
        RowCarry {
            west_h: [NEG_INF; MAX_BLOCK],
            west_e: [NEG_INF; MAX_BLOCK],
            corner: NEG_INF,
            started: false,
        }
    }
}

/// A row segment scheduled in one unit: query-block row `bj` sweeping
/// reference blocks `bi_from..=bi_to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RowSeg {
    bj: i64,
    bi_from: i64,
    bi_to: i64,
}

/// Reusable per-worker scratch for [`run_task_ws`]: the DP row buffers, the
/// per-row carries, the unit-schedule staging area, recycled output
/// buffers, and the align-layer [`DiagTracker`]. All of these are grow-only
/// and geometry-agnostic (carries store the widest boundary; rows pad to
/// the active block side), so one workspace serves tasks of either block
/// geometry back to back and reaches a steady state in which executing a
/// task performs no heap allocation on the kernel hot path — the
/// fixed-size block staging buffers live on the kernel's stack frame — and
/// with [`KernelWorkspace::recycle_units`] fed by the engine, not even the
/// returned [`TaskRun`]'s cost descriptors allocate.
///
/// This is the `block-aligner` idiom: build one long-lived aligner object
/// and feed it tasks, instead of reallocating per call.
#[derive(Debug, Clone)]
pub struct KernelWorkspace {
    row_h: Vec<i32>,
    row_f: Vec<i32>,
    carries: Vec<RowCarry>,
    unit_rows: Vec<RowSeg>,
    tracker: DiagTracker,
    /// Spent outer `units` vectors returned by [`KernelWorkspace::recycle_units`].
    units_pool: Vec<Vec<SliceUnit>>,
    /// Spent `row_cols` vectors harvested from recycled units.
    row_cols_pool: Vec<Vec<u16>>,
    /// Per-query substitution rows for matrix score models (inactive under
    /// fixed models); rebuilt per task, reusing the allocation.
    profile: QueryProfile,
}

/// Bounds on the recycled-buffer pools: a task needs one `units` vector and
/// one `row_cols` per unit, so small pools reach steady state; anything
/// beyond is dropped rather than hoarded.
const UNITS_POOL_CAP: usize = 4;
const ROW_COLS_POOL_CAP: usize = 256;

impl KernelWorkspace {
    /// Empty workspace; buffers grow on first use.
    pub fn new() -> KernelWorkspace {
        KernelWorkspace {
            row_h: Vec::new(),
            row_f: Vec::new(),
            carries: Vec::new(),
            unit_rows: Vec::new(),
            tracker: DiagTracker::new(0, 0, &Scoring::default()),
            units_pool: Vec::new(),
            row_cols_pool: Vec::new(),
            profile: QueryProfile::new(),
        }
    }

    /// Total capacity currently held by the DP row buffers, in cells.
    /// Exposed so tests can assert that steady-state reuse stops growing.
    pub fn row_capacity(&self) -> usize {
        self.row_h.capacity()
    }

    /// Return a spent [`TaskRun`]'s output buffers for reuse by the next
    /// [`run_task_ws`] call. Callers (the streaming engine, batch drivers)
    /// invoke this after folding a run's stats, closing the last per-task
    /// allocation in the stream path: the recycled `units` vector and its
    /// `row_cols` vectors are handed back out by subsequent runs.
    pub fn recycle_units(&mut self, mut units: Vec<SliceUnit>) {
        for u in units.drain(..) {
            if self.row_cols_pool.len() >= ROW_COLS_POOL_CAP {
                break;
            }
            let mut rc = u.row_cols;
            rc.clear();
            self.row_cols_pool.push(rc);
        }
        units.clear();
        if self.units_pool.len() < UNITS_POOL_CAP {
            self.units_pool.push(units);
        }
    }

    /// Buffers currently waiting in the recycle pools (outer `units`
    /// vectors, inner `row_cols` vectors) — test/diagnostic visibility.
    pub fn recycled_buffers(&self) -> (usize, usize) {
        (self.units_pool.len(), self.row_cols_pool.len())
    }
}

impl Default for KernelWorkspace {
    fn default() -> KernelWorkspace {
        KernelWorkspace::new()
    }
}

/// Execute one task under `cfg`, producing the exact result plus cost
/// descriptors. Thin wrapper over [`run_task_ws`] with a throwaway
/// workspace; batch and streaming callers should hold a [`KernelWorkspace`]
/// per worker and call [`run_task_ws`] directly.
pub fn run_task(task: &Task, scoring: &Scoring, cfg: &AgathaConfig) -> TaskRun {
    run_task_ws(&mut KernelWorkspace::new(), task, scoring, cfg)
}

/// Execute one task under `cfg` reusing `ws` for every piece of scratch
/// state. Results are bit-identical to [`run_task`] regardless of what the
/// workspace was previously used for.
///
/// Geometry dispatch happens here, once per task: the configured
/// [`agatha_align::block::BlockDim`] resolves to a concrete block side
/// (adaptive under `Auto`) and selects the matching monomorphization of the
/// kernel body. The alignment result is bit-identical across geometries;
/// only the tiling (unit schedules, block counts) differs.
pub fn run_task_ws(
    ws: &mut KernelWorkspace,
    task: &Task,
    scoring: &Scoring,
    cfg: &AgathaConfig,
) -> TaskRun {
    match cfg.block_dim_for(task.ref_len(), task.query_len(), scoring) {
        MAX_BLOCK => run_task_geom::<MAX_BLOCK>(ws, task, scoring, cfg),
        _ => run_task_geom::<BLOCK>(ws, task, scoring, cfg),
    }
}

/// The kernel body, monomorphized per block side `B`.
fn run_task_geom<const B: usize>(
    ws: &mut KernelWorkspace,
    task: &Task,
    scoring: &Scoring,
    cfg: &AgathaConfig,
) -> TaskRun {
    let n = task.ref_len();
    let m = task.query_len();
    let KernelWorkspace {
        row_h,
        row_f,
        carries,
        unit_rows,
        tracker,
        units_pool,
        row_cols_pool,
        profile,
    } = ws;
    // Matrix score models get their per-query substitution rows built once
    // per task (a no-op that deactivates the profile under fixed models).
    profile.prepare(&task.query, scoring);
    let ctx = BlockCtx::with_block_dim(n, m, scoring, B).with_profile(Some(&*profile));
    // Per-task tier resolution: the narrowest fill whose exactness gate
    // holds (i16 → i32 → scalar under Auto/I16; see BlockCtx::fill_tier).
    let tier = ctx.fill_tier(cfg.fill_mode(), cfg.fill_precision);
    let wide_mode = match tier {
        FillTier::I32 => FillMode::Simd,
        _ => FillMode::Scalar,
    };
    tracker.reset(n, m, scoring);
    if n == 0 || m == 0 {
        return TaskRun {
            id: task.id,
            result: tracker.take_result(),
            units: Vec::new(),
            blocks: 0,
            block_dim: B as u32,
        };
    }

    // Block staging buffers are fixed-size stack arrays, monomorphized per
    // geometry; the heap-backed scratch above is shared across geometries.
    let mut cells_buf = BlockCellsT::<i32, B>::new();
    let mut cells16_buf = BlockCellsT::<i16, B>::new();
    let (cells, cells16) = (&mut cells_buf, &mut cells16_buf);

    let b = B as i64;
    let qb = ctx.query_blocks();
    let rb = ctx.ref_blocks();
    let padded_n = (rb * b) as usize;
    row_h.clear();
    row_h.resize(padded_n, NEG_INF);
    row_f.clear();
    row_f.resize(padded_n, NEG_INF);
    carries.clear();
    carries.resize(qb as usize, RowCarry::fresh());

    let lmb_fits = cfg.sliced_diagonal && B * cfg.slice_width + B - 1 <= cfg.lmb_max_diags;

    let mut units: Vec<SliceUnit> = units_pool.pop().unwrap_or_default();
    units.clear();
    let mut blocks_total: u64 = 0;
    let mut rblock = [0u8; B];
    let mut qblock = [0u8; B];

    // Execute one row segment, updating carries/boundaries, staging each
    // block's cells and folding them into the tracker one block at a time.
    let mut exec_segment = |seg: RowSeg,
                            tracker: &mut DiagTracker,
                            cells: &mut BlockCellsT<i32, B>,
                            cells16: &mut BlockCellsT<i16, B>,
                            row_h: &mut [i32],
                            row_f: &mut [i32],
                            carries: &mut [RowCarry]|
     -> u64 {
        let j0 = seg.bj * b;
        task.query.unpack_block(j0 as usize, &mut qblock);
        let carry = &mut carries[seg.bj as usize];
        if !carry.started {
            let (wh, we) = west_init::<B>(&ctx, seg.bi_from * b, j0);
            carry.west_h[..B].copy_from_slice(&wh);
            carry.west_e[..B].copy_from_slice(&we);
            carry.corner = corner_read(&ctx, seg.bi_from * b, j0, row_h);
            carry.started = true;
        }
        // Reborrow the carry's first `B` lanes as the geometry's boundary
        // arrays (the carry stores the widest geometry; no copies).
        let west_h: &mut [i32; B] = (&mut carry.west_h[..B]).try_into().unwrap();
        let west_e: &mut [i32; B] = (&mut carry.west_e[..B]).try_into().unwrap();
        let mut blocks = 0u64;
        for bi in seg.bi_from..=seg.bi_to {
            let i0 = bi * b;
            task.reference.unpack_block(i0 as usize, &mut rblock);
            let (mut nh, mut nf) = north_read::<B>(&ctx, i0, j0, row_h, row_f);
            let next_corner = nh[B - 1];
            if tier == FillTier::I16 {
                compute_block_i16(
                    &ctx,
                    i0,
                    j0,
                    &rblock,
                    &qblock,
                    carry.corner,
                    west_h,
                    west_e,
                    &mut nh,
                    &mut nf,
                    cells16,
                );
                tracker.on_block_i16(cells16);
            } else {
                compute_block_mode(
                    wide_mode,
                    &ctx,
                    i0,
                    j0,
                    &rblock,
                    &qblock,
                    carry.corner,
                    west_h,
                    west_e,
                    &mut nh,
                    &mut nf,
                    cells,
                );
                tracker.on_block(cells);
            }
            row_h[i0 as usize..i0 as usize + B].copy_from_slice(&nh);
            row_f[i0 as usize..i0 as usize + B].copy_from_slice(&nf);
            carry.corner = next_corner;
            blocks += 1;
        }
        blocks
    };

    // Execute one checkpoint unit (a staged set of row segments), record its
    // cost descriptor and advance the tracker. Returns true on termination.
    let mut run_unit = |rows: &[RowSeg],
                        tracker: &mut DiagTracker,
                        cells: &mut BlockCellsT<i32, B>,
                        cells16: &mut BlockCellsT<i16, B>,
                        row_h: &mut [i32],
                        row_f: &mut [i32],
                        carries: &mut [RowCarry],
                        units: &mut Vec<SliceUnit>,
                        row_cols_pool: &mut Vec<Vec<u16>>,
                        blocks_total: &mut u64|
     -> bool {
        let mut unit_blocks = 0u64;
        let mut row_cols = row_cols_pool.pop().unwrap_or_default();
        row_cols.clear();
        row_cols.reserve(rows.len());
        for seg in rows {
            let blocks = exec_segment(*seg, tracker, cells, cells16, row_h, row_f, carries);
            unit_blocks += blocks;
            row_cols.push(blocks as u16);
        }
        *blocks_total += unit_blocks;
        let before = tracker.frontier();
        let stop = tracker.advance();
        // Task admission bounds n+m-1 (the total diagonal count) to i32, so
        // this narrowing is checked rather than silently wrapping.
        let completed = u32::try_from(tracker.frontier() - before)
            .expect("diagonals completed in one unit exceed u32: task admission must bound n+m");
        units.push(SliceUnit {
            row_cols,
            blocks: unit_blocks,
            diags_completed: completed,
            lmb_fits,
        });
        stop.is_some()
    };

    // Stage the unit schedule into the reusable `unit_rows` buffer, one
    // checkpoint unit at a time (no per-task schedule materialisation).
    if cfg.sliced_diagonal {
        let s = cfg.slice_width as i64;
        let nslices = (rb + qb - 1 + s - 1) / s;
        for k in 0..nslices {
            unit_rows.clear();
            for bj in 0..qb {
                let Some((rlo, rhi)) = ctx.row_block_range(bj) else { continue };
                let w_lo = (k * s - bj).max(rlo);
                let w_hi = (k * s + s - 1 - bj).min(rhi);
                if w_lo <= w_hi {
                    unit_rows.push(RowSeg { bj, bi_from: w_lo, bi_to: w_hi });
                }
            }
            if unit_rows.is_empty() {
                continue;
            }
            if run_unit(
                unit_rows,
                tracker,
                cells,
                cells16,
                row_h,
                row_f,
                carries,
                &mut units,
                row_cols_pool,
                &mut blocks_total,
            ) {
                break;
            }
        }
    } else {
        // Horizontal mode: chunks of `subwarp_lanes` full-band rows.
        unit_rows.clear();
        let mut stopped = false;
        for bj in 0..qb {
            let Some((rlo, rhi)) = ctx.row_block_range(bj) else { continue };
            unit_rows.push(RowSeg { bj, bi_from: rlo, bi_to: rhi });
            if unit_rows.len() == cfg.subwarp_lanes {
                if run_unit(
                    unit_rows,
                    tracker,
                    cells,
                    cells16,
                    row_h,
                    row_f,
                    carries,
                    &mut units,
                    row_cols_pool,
                    &mut blocks_total,
                ) {
                    stopped = true;
                    break;
                }
                unit_rows.clear();
            }
        }
        if !stopped && !unit_rows.is_empty() {
            run_unit(
                unit_rows,
                tracker,
                cells,
                cells16,
                row_h,
                row_f,
                carries,
                &mut units,
                row_cols_pool,
                &mut blocks_total,
            );
        }
    }

    TaskRun {
        id: task.id,
        result: tracker.take_result(),
        units,
        blocks: blocks_total,
        block_dim: B as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agatha_align::guided::guided_align;
    use agatha_gpu_sim::GpuSpec;

    fn task(r: &str, q: &str) -> Task {
        Task::from_strs(0, r, q)
    }

    fn pseudo_seq(len: usize, seed: u64, mutate_every: usize) -> (String, String) {
        let mut r = String::new();
        let mut q = String::new();
        let mut x = seed | 1;
        for k in 0..len {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let c = ['A', 'C', 'G', 'T'][(x >> 33) as usize % 4];
            r.push(c);
            if mutate_every > 0 && k % mutate_every == 0 {
                let c2 = ['A', 'C', 'G', 'T'][(x >> 35) as usize % 4];
                q.push(c2);
            } else {
                q.push(c);
            }
        }
        (r, q)
    }

    fn all_configs() -> Vec<AgathaConfig> {
        vec![
            AgathaConfig::baseline(),
            AgathaConfig::baseline().with_rw(true),
            AgathaConfig::baseline().with_rw(true).with_sd(true),
            AgathaConfig::agatha(),
            AgathaConfig::agatha().with_slice_width(1),
            AgathaConfig::agatha().with_slice_width(8),
            AgathaConfig::agatha().with_slice_width(64),
            AgathaConfig::agatha().with_subwarp(16),
            AgathaConfig::agatha().with_subwarp(32),
        ]
    }

    fn check_exact(r: &str, q: &str, scoring: &Scoring) {
        let t = task(r, q);
        let want = guided_align(&t.reference, &t.query, scoring);
        for cfg in all_configs() {
            let got = run_task(&t, scoring, &cfg);
            assert!(
                got.result.same_alignment(&want),
                "config {cfg:?}\n got {:?}\nwant {want:?}",
                got.result
            );
            assert_eq!(got.result.cells, want.cells, "reference cells, config {cfg:?}");
        }
    }

    #[test]
    fn exact_small() {
        let s = Scoring::figure1();
        check_exact("AGATAGAT", "AGACTATC", &s);
        check_exact("ACGT", "ACGTACGTACGTACGT", &s);
    }

    #[test]
    fn exact_banded_zdrop() {
        let s = Scoring::new(2, 4, 4, 2, 30, 20);
        let (r, q) = pseudo_seq(400, 7, 13);
        check_exact(&r, &q, &s);
    }

    #[test]
    fn exact_terminating_junk_tail() {
        let s = Scoring::new(2, 4, 4, 2, 20, 16);
        let (mut r, _) = pseudo_seq(150, 11, 0);
        let (tail_r, _) = pseudo_seq(200, 13, 0);
        let (tail_q, _) = pseudo_seq(200, 17, 0);
        let mut q = r.clone();
        r.push_str(&tail_r);
        q.push_str(&tail_q);
        let want = guided_align(
            &agatha_align::PackedSeq::from_str_seq(&r),
            &agatha_align::PackedSeq::from_str_seq(&q),
            &s,
        );
        assert!(want.stop.z_dropped(), "test needs a z-dropping input");
        check_exact(&r, &q, &s);
    }

    #[test]
    fn exact_asymmetric_lengths() {
        let s = Scoring::new(2, 4, 4, 2, 50, 12);
        let (r, _) = pseudo_seq(300, 23, 0);
        let (q, _) = pseudo_seq(80, 23, 9); // same seed prefix → aligned start
        check_exact(&r, &q, &s);
        check_exact(&q, &r, &s);
    }

    #[test]
    fn sliced_reduces_runahead_on_termination() {
        let s = Scoring::new(2, 4, 4, 2, 20, 32);
        let (mut r, _) = pseudo_seq(200, 31, 0);
        let (tail_r, _) = pseudo_seq(400, 37, 0);
        let (tail_q, _) = pseudo_seq(400, 41, 0);
        let mut q = r.clone();
        r.push_str(&tail_r);
        q.push_str(&tail_q);
        let t = task(&r, &q);
        let horiz = run_task(&t, &s, &AgathaConfig::baseline().with_rw(true));
        let sliced = run_task(&t, &s, &AgathaConfig::baseline().with_rw(true).with_sd(true));
        assert!(horiz.result.stop.z_dropped());
        assert!(
            sliced.blocks < horiz.blocks,
            "sliced diagonal must bound run-ahead: {} vs {}",
            sliced.blocks,
            horiz.blocks
        );
    }

    #[test]
    fn wider_slices_more_runahead() {
        let s = Scoring::new(2, 4, 4, 2, 20, 32);
        let (mut r, _) = pseudo_seq(200, 43, 0);
        let (tr, _) = pseudo_seq(400, 47, 0);
        let (tq, _) = pseudo_seq(400, 53, 0);
        let mut q = r.clone();
        r.push_str(&tr);
        q.push_str(&tq);
        let t = task(&r, &q);
        let narrow = run_task(&t, &s, &AgathaConfig::agatha().with_slice_width(2));
        let wide = run_task(&t, &s, &AgathaConfig::agatha().with_slice_width(64));
        assert!(narrow.blocks <= wide.blocks);
    }

    #[test]
    fn unit_blocks_cover_whole_band_when_no_termination() {
        let s = Scoring::new(2, 4, 4, 2, Scoring::NO_ZDROP, 16);
        let (r, q) = pseudo_seq(250, 3, 11);
        let t = task(&r, &q);
        let cfgs = [AgathaConfig::baseline(), AgathaConfig::agatha()];
        let counts: Vec<u64> = cfgs.iter().map(|c| run_task(&t, &s, c).blocks).collect();
        // Without termination, every schedule computes exactly the band's
        // block cover, so totals agree.
        assert_eq!(counts[0], counts[1]);
    }

    #[test]
    fn cycles_monotone_in_lane_count() {
        // Band wide enough that slices span more rows than one subwarp —
        // at the paper's 8×8 geometry, which this test pins: a forced wide
        // geometry (AGATHA_BLOCK=16) halves the rows per slice, and 8 lanes
        // then already cover every row, making c32 == c8.
        let s = Scoring::new(2, 4, 4, 2, 400, 64);
        let (r, q) = pseudo_seq(400, 5, 17);
        let t = task(&r, &q);
        let cfg = AgathaConfig::agatha().with_block_dim(agatha_align::BlockDim::B8);
        let run = run_task(&t, &s, &cfg);
        let cost = CostModel::for_spec(&GpuSpec::rtx_a6000());
        let c8 = run.cycles(8, &cfg, &cost);
        let c32 = run.cycles(32, &cfg, &cost);
        assert!(c32 < c8, "more lanes must not be slower: {c32} vs {c8}");
    }

    #[test]
    fn stats_consistency() {
        let s = Scoring::new(2, 4, 4, 2, 100, 24);
        let (r, q) = pseudo_seq(200, 19, 23);
        let t = task(&r, &q);
        let cfg = AgathaConfig::agatha();
        let run = run_task(&t, &s, &cfg);
        let cost = CostModel::for_spec(&GpuSpec::rtx_a6000());
        let st = run.stats(8, &cfg, &cost);
        let block_cells = u64::from(run.block_dim) * u64::from(run.block_dim);
        assert_eq!(st.computed_cells, run.blocks * block_cells);
        assert!(st.computed_cells >= st.reference_cells);
        assert_eq!(st.tasks, 1);
    }

    #[test]
    fn empty_task() {
        let t = task("", "ACGT");
        let run = run_task(&t, &Scoring::figure1(), &AgathaConfig::agatha());
        assert_eq!(run.result.score, 0);
        assert_eq!(run.blocks, 0);
        assert!(run.units.is_empty());
    }

    /// Serializes tests that flip the process-wide backend choice with
    /// tests whose observables depend on the installed backend (Auto
    /// geometry resolution, allocation steady-state, buffer-reuse pointer
    /// identity). Alignment *results* are bit-identical across backends,
    /// so result-only tests need no guard.
    fn backend_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tasks of deliberately varying geometry, including a z-dropping one
    /// in the middle and an empty one, to stress workspace reuse.
    fn mixed_tasks() -> (Vec<Task>, Scoring) {
        let s = Scoring::new(2, 4, 4, 2, 20, 16);
        let (r1, q1) = pseudo_seq(350, 7, 13);
        let (mut r2, _) = pseudo_seq(150, 11, 0);
        let (tail_r, _) = pseudo_seq(200, 13, 0);
        let (tail_q, _) = pseudo_seq(200, 17, 0);
        let mut q2 = r2.clone();
        r2.push_str(&tail_r);
        q2.push_str(&tail_q);
        let (r3, q3) = pseudo_seq(40, 19, 5);
        let (r4, q4) = pseudo_seq(700, 23, 29);
        let tasks = vec![
            Task::from_strs(0, &r1, &q1),
            Task::from_strs(1, &r2, &q2), // z-drops under this scoring
            Task::from_strs(2, "", &q3),
            Task::from_strs(3, &r3, &q3),
            Task::from_strs(4, &r4, &q4),
        ];
        (tasks, s)
    }

    #[test]
    fn workspace_reuse_matches_fresh_allocation() {
        let _guard = backend_lock();
        let (tasks, s) = mixed_tasks();
        for cfg in all_configs() {
            let mut ws = KernelWorkspace::new();
            for t in &tasks {
                let fresh = run_task(t, &s, &cfg);
                let reused = run_task_ws(&mut ws, t, &s, &cfg);
                assert_eq!(reused, fresh, "config {cfg:?}, task {}", t.id);
            }
        }
        // The z-drop input really exercised the early-termination path.
        let zdropped = run_task(&tasks[1], &s, &AgathaConfig::agatha());
        assert!(zdropped.result.stop.z_dropped());
    }

    #[test]
    fn simd_and_scalar_fill_produce_identical_runs() {
        // Full TaskRun equality (results, unit schedules, block counts)
        // between the two fill paths, across every configuration and the
        // mixed task set (including z-drop early termination). Geometry is
        // pinned so both paths tile identically — the scalar fill never
        // resolves to the wide geometry under Auto, and TaskRun equality is
        // only meaningful at one tiling; cross-geometry identity is covered
        // by `geometries_produce_identical_results`.
        use agatha_align::block::BlockDim;
        let (tasks, s) = mixed_tasks();
        for bd in [BlockDim::B8, BlockDim::B16] {
            for cfg in all_configs() {
                let scalar_cfg = cfg.clone().with_simd_fill(false).with_block_dim(bd);
                let simd_cfg = cfg.clone().with_simd_fill(true).with_block_dim(bd);
                for t in &tasks {
                    let a = run_task(t, &s, &scalar_cfg);
                    let b = run_task(t, &s, &simd_cfg);
                    assert_eq!(a, b, "config {cfg:?}, block dim {}, task {}", bd.name(), t.id);
                }
            }
        }
    }

    #[test]
    fn fill_tiers_produce_identical_runs() {
        // Full TaskRun equality across the three-tier matrix (scalar, i32
        // wavefront, i16 wavefront) at both pinned geometries, across every
        // configuration and the mixed task set — whose 700 bp member
        // exceeds the i16 gate, so the same assertions also cover the
        // i16→i32 auto-demotion path.
        use agatha_align::block::{BlockDim, FillPrecision, FillTier};
        let (tasks, s) = mixed_tasks();
        let i16_cfg =
            AgathaConfig::agatha().with_simd_fill(true).with_fill_precision(FillPrecision::I16);
        let tiers: Vec<FillTier> =
            tasks.iter().map(|t| i16_cfg.fill_tier_for(t.ref_len(), t.query_len(), &s)).collect();
        assert!(
            tiers.contains(&FillTier::I16) && tiers.contains(&FillTier::I32),
            "mixed tasks must cover both the i16 tier and a demotion: {tiers:?}"
        );
        for bd in [BlockDim::B8, BlockDim::B16] {
            for cfg in all_configs() {
                let cfg = cfg.with_block_dim(bd);
                let scalar_cfg = cfg.clone().with_simd_fill(false);
                let wide_cfg =
                    cfg.clone().with_simd_fill(true).with_fill_precision(FillPrecision::I32);
                let narrow_cfg =
                    cfg.clone().with_simd_fill(true).with_fill_precision(FillPrecision::I16);
                // One shared workspace alternates tiers across the stream to
                // prove reuse carries no state between them.
                let mut ws = KernelWorkspace::new();
                for t in &tasks {
                    let a = run_task(t, &s, &scalar_cfg);
                    let b = run_task_ws(&mut ws, t, &s, &wide_cfg);
                    let c = run_task_ws(&mut ws, t, &s, &narrow_cfg);
                    assert_eq!(a, b, "config {cfg:?}, task {}: scalar vs i32 tier", t.id);
                    assert_eq!(a, c, "config {cfg:?}, task {}: scalar vs i16 tier", t.id);
                }
            }
        }
    }

    #[test]
    fn geometries_produce_identical_results() {
        // One shared workspace alternating block geometries task by task:
        // the alignment result (and reference-cell accounting) must be
        // bit-identical across B — only the tiling-level observables (unit
        // schedules, block counts, block_dim) may differ — and workspace
        // recycling must carry no state across geometry switches.
        use agatha_align::block::BlockDim;
        let _guard = backend_lock();
        let (tasks, s) = mixed_tasks();
        for cfg in all_configs() {
            let cfg8 = cfg.clone().with_block_dim(BlockDim::B8);
            let cfg16 = cfg.clone().with_block_dim(BlockDim::B16);
            let auto = cfg.clone().with_block_dim(BlockDim::Auto);
            let mut ws = KernelWorkspace::new();
            for t in &tasks {
                let narrow = run_task(t, &s, &cfg8);
                let wide = run_task_ws(&mut ws, t, &s, &cfg16);
                let narrow_reused = run_task_ws(&mut ws, t, &s, &cfg8);
                let adaptive = run_task_ws(&mut ws, t, &s, &auto);
                assert_eq!(narrow.block_dim, 8);
                assert_eq!(wide.block_dim, 16);
                assert_eq!(
                    narrow.result, wide.result,
                    "config {cfg:?}, task {}: result must not depend on geometry",
                    t.id
                );
                // Same geometry after a wide run on the same workspace:
                // full TaskRun equality proves recycling holds across B.
                assert_eq!(narrow, narrow_reused, "config {cfg:?}, task {}", t.id);
                // Auto resolves per task; whatever it picks, the result is
                // the same and the pick matches the config resolver.
                assert_eq!(narrow.result, adaptive.result, "config {cfg:?}, task {}", t.id);
                assert_eq!(
                    adaptive.block_dim as usize,
                    auto.block_dim_for(t.ref_len(), t.query_len(), &s),
                    "config {cfg:?}, task {}",
                    t.id
                );
            }
        }
    }

    #[test]
    fn backends_produce_identical_results() {
        // Full TaskRun equality across every backend this machine supports,
        // at both pinned geometries and both wavefront precisions, over the
        // mixed task stream (whose 700 bp member exceeds the i16 gate, so
        // the i16→i32 demotion path is swept per backend too). One shared
        // workspace alternates backends task by task — the process-wide
        // choice flips between runs — proving both that every backend
        // computes the same runs and that workspace reuse carries no
        // backend-specific state. On an AVX-512 machine this pits the zmm
        // kernels and the four-quarter tracker fold directly against the
        // portable reference.
        use agatha_align::block::{BlockDim, FillPrecision};
        use agatha_align::simd::{self, BackendChoice, WavefrontBackend};
        let _guard = backend_lock();
        let restore = simd::backend_choice();
        let (tasks, s) = mixed_tasks();
        let backends = simd::supported_backends();
        assert_eq!(backends.last(), Some(&WavefrontBackend::Portable));
        for bd in [BlockDim::B8, BlockDim::B16] {
            for prec in [FillPrecision::I32, FillPrecision::I16] {
                let cfg = AgathaConfig::agatha()
                    .with_simd_fill(true)
                    .with_fill_precision(prec)
                    .with_block_dim(bd);
                let mut ws = KernelWorkspace::new();
                for t in &tasks {
                    simd::set_backend_choice(BackendChoice::Fixed(WavefrontBackend::Portable));
                    let reference = run_task_ws(&mut ws, t, &s, &cfg);
                    for &b in &backends {
                        simd::set_backend_choice(BackendChoice::Fixed(b));
                        let run = run_task_ws(&mut ws, t, &s, &cfg);
                        assert_eq!(
                            reference,
                            run,
                            "geometry {}, precision {prec:?}, task {}: portable vs {}",
                            bd.name(),
                            t.id,
                            b.name()
                        );
                    }
                }
            }
        }
        simd::set_backend_choice(restore);
    }

    #[test]
    fn recycled_unit_buffers_are_reused() {
        let _guard = backend_lock();
        let (tasks, s) = mixed_tasks();
        let cfg = AgathaConfig::agatha();
        let mut ws = KernelWorkspace::new();
        let baseline = run_task_ws(&mut ws, &tasks[0], &s, &cfg);
        let run = run_task_ws(&mut ws, &tasks[0], &s, &cfg);
        let units_ptr = run.units.as_ptr();
        assert!(!run.units.is_empty());
        ws.recycle_units(run.units);
        let (outer, inner) = ws.recycled_buffers();
        assert_eq!(outer, 1);
        assert!(inner >= 1);
        // The next run must draw the same outer allocation back out of the
        // pool — and produce identical output.
        let again = run_task_ws(&mut ws, &tasks[0], &s, &cfg);
        assert_eq!(again.units.as_ptr(), units_ptr, "outer units buffer must be reused");
        assert_eq!(again, baseline);
        assert_eq!(ws.recycled_buffers().0, 0, "pool drained by the run");
    }

    #[test]
    fn workspace_reaches_allocation_steady_state() {
        let _guard = backend_lock();
        let (tasks, s) = mixed_tasks();
        let cfg = AgathaConfig::agatha();
        let mut ws = KernelWorkspace::new();
        for t in &tasks {
            run_task_ws(&mut ws, t, &s, &cfg);
        }
        let cap = ws.row_capacity();
        assert!(cap > 0);
        for _ in 0..3 {
            for t in &tasks {
                run_task_ws(&mut ws, t, &s, &cfg);
            }
        }
        assert_eq!(ws.row_capacity(), cap, "steady-state reuse must not regrow buffers");
    }
}
