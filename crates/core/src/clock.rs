//! Monotonic time abstraction for the deadline/cancellation paths.
//!
//! The serve layer's admission window, deadline expiry, and starvation
//! accounting are all "has instant X passed yet" decisions. Hiding the
//! time source behind [`Clock`] lets the daemon run on a real monotonic
//! clock while unit and property tests drive the exact same state machines
//! with a hand-advanced [`MockClock`] — no sleeps, no flaky timing.
//!
//! The clock domain is nanoseconds since an arbitrary per-clock epoch, as
//! a `u64` (584 years of range — no wraparound concerns). Absolute
//! deadlines are expressed in the same domain, so they only make sense
//! against the clock that produced them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond clock.
pub trait Clock: Send + Sync {
    /// Nanoseconds since this clock's epoch. Must never decrease.
    fn now_ns(&self) -> u64;
}

/// The real monotonic clock, anchored at construction time.
#[derive(Debug)]
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    pub fn new() -> SystemClock {
        SystemClock { epoch: Instant::now() }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now_ns(&self) -> u64 {
        // u64 nanoseconds overflow after ~584 years of process uptime.
        self.epoch.elapsed().as_nanos() as u64
    }
}

/// A hand-advanced clock for deterministic tests. Shared via `Arc`: the
/// test keeps an `Arc<MockClock>` to advance while the code under test
/// reads it through `Arc<dyn Clock>`.
#[derive(Debug, Default)]
pub struct MockClock {
    now: AtomicU64,
}

impl MockClock {
    pub fn new() -> MockClock {
        MockClock { now: AtomicU64::new(0) }
    }

    /// Start the clock at `now_ns`.
    pub fn at(now_ns: u64) -> MockClock {
        MockClock { now: AtomicU64::new(now_ns) }
    }

    /// Move time forward by `delta_ns`.
    pub fn advance_ns(&self, delta_ns: u64) {
        self.now.fetch_add(delta_ns, Ordering::SeqCst);
    }

    /// Move time forward by `delta_ms`.
    pub fn advance_ms(&self, delta_ms: u64) {
        self.advance_ns(delta_ms * 1_000_000);
    }

    /// Jump to an absolute tick. Panics on an attempt to move backwards —
    /// a mock that violates monotonicity would test an impossible world.
    pub fn set_ns(&self, now_ns: u64) {
        let prev = self.now.swap(now_ns, Ordering::SeqCst);
        assert!(now_ns >= prev, "MockClock must not go backwards ({prev} -> {now_ns})");
    }
}

impl Clock for MockClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn mock_clock_advances() {
        let c = Arc::new(MockClock::new());
        assert_eq!(c.now_ns(), 0);
        c.advance_ms(3);
        assert_eq!(c.now_ns(), 3_000_000);
        c.set_ns(5_000_000);
        assert_eq!(c.now_ns(), 5_000_000);
        let dyn_clock: Arc<dyn Clock> = c.clone();
        assert_eq!(dyn_clock.now_ns(), 5_000_000);
    }

    #[test]
    #[should_panic(expected = "must not go backwards")]
    fn mock_clock_rejects_time_travel() {
        let c = MockClock::at(10);
        c.set_ns(5);
    }
}
