//! The analytic performance model of Table 1 (§4.5).
//!
//! The paper models subwarp latency as
//! `Cells × (1/Comp.TP + (AR_anti + AR_inter + AR_term)/Mem.TP)` with
//! `Cells = Antidiags × Band_width + Runahead` (Eq. 8), aggregated by
//! `MAX`/`AVG` over subwarps and warps depending on which balancing
//! techniques are active. This module evaluates all five design rows over
//! a measured workload so the `table1_model` bench can print the predicted
//! latencies next to the simulated ones.

/// How a level combines its children's latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    /// Dominated by the maximum (the paper's `MÃX`).
    Max,
    /// Close to the average (`ÃVG`), achieved by the balancing techniques.
    Avg,
}

impl Agg {
    fn apply(self, values: impl Iterator<Item = f64>) -> f64 {
        let v: Vec<f64> = values.collect();
        if v.is_empty() {
            return 0.0;
        }
        match self {
            Agg::Max => v.iter().copied().fold(0.0, f64::max),
            Agg::Avg => v.iter().sum::<f64>() / v.len() as f64,
        }
    }
}

/// One design row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignRow {
    /// Design name, e.g. `"+RW+SD"`.
    pub name: &'static str,
    /// Anti-diagonal max-tracking access ratio.
    pub ar_anti: f64,
    /// Intermediate-value access ratio.
    pub ar_inter: f64,
    /// Termination-check access ratio.
    pub ar_term: f64,
    /// Run-ahead multiplier on cells (1.0 = none).
    pub runahead: f64,
    /// Subwarp-level aggregation.
    pub subwarp_agg: Agg,
    /// Warp-level aggregation.
    pub warp_agg: Agg,
}

/// The five rows of Table 1, parameterised by the band width.
pub fn table1_rows(band_width: u32) -> Vec<DesignRow> {
    let bw = band_width.max(1) as f64;
    // Baseline access ratios from §4.5: 1 : 1/8 : 1/Band_width.
    let (anti0, inter0, term0) = (1.0, 1.0 / 8.0, 1.0 / bw);
    vec![
        DesignRow {
            name: "Baseline",
            ar_anti: anti0,
            ar_inter: inter0,
            ar_term: term0,
            runahead: 1.0 + 4.0 / bw.sqrt(),
            subwarp_agg: Agg::Max,
            warp_agg: Agg::Max,
        },
        DesignRow {
            name: "+RW",
            ar_anti: anti0 / 16.0, // shared-memory window, spills only
            ar_inter: inter0,
            ar_term: term0,
            runahead: 1.0 + 4.0 / bw.sqrt(),
            subwarp_agg: Agg::Max,
            warp_agg: Agg::Max,
        },
        DesignRow {
            name: "+RW+SD",
            ar_anti: anti0 / 64.0,  // window fits the LMB: no spills
            ar_inter: inter0 * 1.5, // slice-boundary reads/writes (the trade-off)
            ar_term: term0 / 4.0,
            runahead: 1.0 + 0.5 / bw.sqrt(), // bounded by s × band_width
            subwarp_agg: Agg::Max,
            warp_agg: Agg::Max,
        },
        DesignRow {
            name: "+RW+SD+SR",
            ar_anti: anti0 / 64.0,
            ar_inter: inter0 * 1.5,
            ar_term: term0 / 4.0,
            runahead: 1.0 + 0.5 / bw.sqrt(),
            subwarp_agg: Agg::Avg,
            warp_agg: Agg::Max,
        },
        DesignRow {
            name: "+RW+SD+SR+UB",
            ar_anti: anti0 / 64.0,
            ar_inter: inter0 * 1.5,
            ar_term: term0 / 4.0,
            runahead: 1.0 + 0.5 / bw.sqrt(),
            subwarp_agg: Agg::Avg,
            warp_agg: Agg::Avg,
        },
    ]
}

/// Throughput constants for the analytic model (arbitrary units; only
/// ratios between rows are meaningful).
#[derive(Debug, Clone, Copy)]
pub struct ModelParams {
    /// Cells per unit time per subwarp.
    pub comp_tp: f64,
    /// Memory transactions per unit time.
    pub mem_tp: f64,
}

impl Default for ModelParams {
    fn default() -> ModelParams {
        ModelParams { comp_tp: 128.0, mem_tp: 4.0 }
    }
}

/// Predicted latency of one design over a workload given as per-subwarp
/// cell counts grouped into warps: `warps[w][s]` = cells of subwarp `s`.
pub fn predict(row: &DesignRow, warps: &[Vec<u64>], p: &ModelParams) -> f64 {
    let per_cell = 1.0 / p.comp_tp + (row.ar_anti + row.ar_inter + row.ar_term) / p.mem_tp;
    row.warp_agg.apply(warps.iter().map(|subwarps| {
        row.subwarp_agg.apply(subwarps.iter().map(|&cells| cells as f64 * row.runahead * per_cell))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed_workload() -> Vec<Vec<u64>> {
        // 8 warps × 4 subwarps; warp 0 has one extreme task.
        let mut warps = vec![vec![1000u64; 4]; 8];
        warps[0][0] = 40_000;
        warps
    }

    #[test]
    fn each_technique_improves() {
        let rows = table1_rows(64);
        let warps = skewed_workload();
        let p = ModelParams::default();
        let lat: Vec<f64> = rows.iter().map(|r| predict(r, &warps, &p)).collect();
        for k in 1..lat.len() {
            assert!(
                lat[k] < lat[k - 1],
                "{} ({}) must beat {} ({})",
                rows[k].name,
                lat[k],
                rows[k - 1].name,
                lat[k - 1]
            );
        }
    }

    #[test]
    fn full_design_speedup_is_substantial() {
        let rows = table1_rows(64);
        let warps = skewed_workload();
        let p = ModelParams::default();
        let base = predict(&rows[0], &warps, &p);
        let full = predict(rows.last().unwrap(), &warps, &p);
        assert!(base / full > 4.0, "model speedup {}", base / full);
    }

    #[test]
    fn agg_behaviour() {
        let v = [1.0, 2.0, 9.0];
        assert_eq!(Agg::Max.apply(v.iter().copied()), 9.0);
        assert!((Agg::Avg.apply(v.iter().copied()) - 4.0).abs() < 1e-12);
        assert_eq!(Agg::Max.apply(std::iter::empty()), 0.0);
    }

    #[test]
    fn balanced_workload_sees_no_sr_ub_gain() {
        let rows = table1_rows(64);
        let warps = vec![vec![1000u64; 4]; 8];
        let p = ModelParams::default();
        let sd = predict(&rows[2], &warps, &p);
        let sr = predict(&rows[3], &warps, &p);
        let ub = predict(&rows[4], &warps, &p);
        assert!((sd - sr).abs() < 1e-9);
        assert!((sr - ub).abs() < 1e-9);
    }
}
