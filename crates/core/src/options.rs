//! Kernel configuration and feature toggles.

use std::sync::OnceLock;

use agatha_align::block::{BlockDim, FillPrecision};
use agatha_gpu_sim::WARP_LANES;

/// The one shared reader for `AGATHA_*` process-default overrides: unset →
/// `default`, set → `parse`d value, unparseable (garbage, empty) → a loud
/// panic naming the variable, rather than silently running the wrong
/// configuration. Every env-driven default below goes through here so the
/// unset/garbage semantics cannot drift between variables.
fn env_override<T>(name: &str, default: T, parse: impl FnOnce(&str) -> Result<T, String>) -> T {
    match std::env::var(name) {
        Err(_) => default,
        Ok(v) => parse(&v).unwrap_or_else(|e| panic!("{name} environment override: {e}")),
    }
}

/// Process-default [`FillPrecision`]: the `AGATHA_PRECISION` environment
/// variable (`auto` | `i32` | `i16`) when set, else `Auto`. This is how CI
/// forces the whole test suite through one precision tier without touching
/// every construction site.
pub fn default_fill_precision() -> FillPrecision {
    static CACHE: OnceLock<FillPrecision> = OnceLock::new();
    *CACHE
        .get_or_init(|| env_override("AGATHA_PRECISION", FillPrecision::Auto, FillPrecision::parse))
}

/// Process-default [`BlockDim`]: the `AGATHA_BLOCK` environment variable
/// (`auto` | `8` | `16`) when set, else `Auto` — the geometry analogue of
/// [`default_fill_precision`], and the lever CI uses to force the whole
/// suite through one block geometry.
pub fn default_block_dim() -> BlockDim {
    static CACHE: OnceLock<BlockDim> = OnceLock::new();
    *CACHE.get_or_init(|| env_override("AGATHA_BLOCK", BlockDim::Auto, BlockDim::parse))
}

/// Process-default wavefront backend: the `AGATHA_BACKEND` environment
/// variable (`auto` | `avx512` | `avx2` | `sse41` | `portable`) when set,
/// else `Auto`. Unlike precision and geometry the backend is not a config
/// field — it lives in a process-wide selector inside the align crate — so
/// the first call also installs the parsed choice there via
/// [`agatha_align::simd::set_backend_choice`]. Callers that want a *flag*
/// to take precedence over the environment (the CLI `--backend`) must call
/// this first and then install their own choice on top, which is exactly
/// the env < flag precedence the CLI documents.
pub fn default_backend_choice() -> agatha_align::simd::BackendChoice {
    static CACHE: OnceLock<agatha_align::simd::BackendChoice> = OnceLock::new();
    *CACHE.get_or_init(|| {
        let choice = env_override(
            "AGATHA_BACKEND",
            agatha_align::simd::BackendChoice::Auto,
            agatha_align::simd::BackendChoice::parse,
        );
        agatha_align::simd::set_backend_choice(choice);
        choice
    })
}

/// Prefetch depth used when neither `--prefetch` nor `AGATHA_PREFETCH` is
/// given: two parsed chunks queued ahead of execution (one being parsed by
/// the reader, one ready), enough to hide FASTA parsing behind the kernel
/// without hoarding memory.
pub const DEFAULT_PREFETCH_DEPTH: usize = 2;

/// Validate one `AGATHA_PREFETCH` value: a chunk count (`0` disables the
/// reader thread and streams synchronously).
fn parse_prefetch_depth(v: &str) -> Result<usize, String> {
    v.trim().parse::<usize>().map_err(|_| {
        format!("invalid prefetch depth '{v}' (expected 0 to disable, or a chunk count)")
    })
}

/// Process-default streaming prefetch depth: the `AGATHA_PREFETCH`
/// environment variable when set (`0` = disabled, `N` = at most `N` parsed
/// chunks queued ahead of kernel execution), else
/// [`DEFAULT_PREFETCH_DEPTH`]. CI uses it to run the tier-1 suite with the
/// prefetch stage forced off and on; explicit `--prefetch` flags take
/// precedence at the CLI layer.
pub fn default_prefetch_depth() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        env_override("AGATHA_PREFETCH", DEFAULT_PREFETCH_DEPTH, parse_prefetch_depth)
    })
}

/// Validate one `AGATHA_SCENARIO` value: names must be non-empty after
/// trimming. Resolution against the scenario registry happens at the
/// consumer (the CLI / benches own the registry); this layer only rejects
/// values that cannot possibly name a scenario.
fn parse_scenario_name(v: &str) -> Result<Option<String>, String> {
    let name = v.trim();
    if name.is_empty() {
        Err("empty scenario name".to_string())
    } else {
        Ok(Some(name.to_string()))
    }
}

/// Process-default scenario name: the `AGATHA_SCENARIO` environment
/// variable when set, else `None`. The workload analogue of
/// [`default_fill_precision`] / [`default_block_dim`]: CI's scenario matrix
/// exports it once per job instead of threading `--scenario` through every
/// invocation.
pub fn default_scenario() -> Option<&'static str> {
    static CACHE: OnceLock<Option<String>> = OnceLock::new();
    CACHE.get_or_init(|| env_override("AGATHA_SCENARIO", None, parse_scenario_name)).as_deref()
}

/// Configuration of the AGAThA kernel. Every §4 technique can be toggled
/// independently so the ablation study (Fig. 9) and the sensitivity studies
/// (Fig. 10 slice width, Fig. 14 subwarp size) are all expressible.
#[derive(Debug, Clone, PartialEq)]
pub struct AgathaConfig {
    /// Threads per subwarp (8 in the final design; Fig. 14 sweeps 8/16/32).
    pub subwarp_lanes: usize,
    /// Slice width `s` in blocks (3 in the final design; Fig. 10 sweeps
    /// 1..128). Only meaningful with `sliced_diagonal`.
    pub slice_width: usize,
    /// §4.1 rolling window: track anti-diagonal maxima in shared memory
    /// (LMB) instead of per-cell global-memory updates.
    pub rolling_window: bool,
    /// §4.2 sliced diagonal tiling; when `false` the kernel degrades to the
    /// horizontal-only chunk sweep ("when `s` is larger than the band width,
    /// the sliced diagonal kernel reduces to the baseline kernel").
    pub sliced_diagonal: bool,
    /// §4.3 subwarp rejoining (intra-warp work stealing at slice
    /// boundaries).
    pub subwarp_rejoining: bool,
    /// §4.4 uneven bucketing (inter-warp workload balancing).
    pub uneven_bucketing: bool,
    /// Task-queue depth per subwarp slot: how many alignment "generations"
    /// a warp processes (Fig. 6 shows two).
    pub tasks_per_subwarp: usize,
    /// LMB capacity per subwarp in anti-diagonal rows. When a slice's span
    /// fits, no global spilling is needed (§4.2); the default corresponds
    /// to `3 × block_size` rows per lane of a 100 KiB-SM budget.
    pub lmb_max_diags: usize,
    /// Model Hopper DPX instructions (§6 discussion).
    pub use_dpx: bool,
    /// Host-side block fill implementation: `true` selects the vectorised
    /// anti-diagonal wavefront ([`agatha_align::block::FillMode::Simd`]),
    /// `false` the scalar row-major fill. Both are bit-identical; this only
    /// changes host wall-time, never results or cost accounting. Defaults
    /// to the build-time `simd` cargo feature.
    pub simd_fill: bool,
    /// Lane precision preferred by the wavefront fill (ignored when
    /// `simd_fill` is off): `Auto`/`I16` run the 16-bit wavefront on every
    /// task whose [`agatha_align::block::BlockCtx::i16_exact`] gate proves
    /// it bit-identical, demoting to the i32 wavefront (or scalar)
    /// otherwise; `I32` never uses the i16 tier. Like `simd_fill`, this
    /// changes host wall-time only — results and cost accounting are
    /// bit-identical across all tiers. Defaults to the `AGATHA_PRECISION`
    /// environment override, else `Auto`.
    pub fill_precision: FillPrecision,
    /// Block geometry for the host-side fill: `Auto` resolves the block
    /// side per task ([`agatha_align::block::BlockCtx::geometry_for`] picks
    /// 16×16 when the task amortizes the wider staging, else the paper's
    /// 8×8), `B8`/`B16` force one side. Orthogonal to `fill_precision`:
    /// geometry picks the tiling, precision the lane width within it, and
    /// every (geometry × precision) pair is bit-identical. Defaults to the
    /// `AGATHA_BLOCK` environment override, else `Auto`.
    pub block_dim: BlockDim,
}

impl AgathaConfig {
    /// The naive exact baseline of the ablation study: guided algorithm on
    /// the SALoBa-style design with none of the §4 techniques.
    pub fn baseline() -> AgathaConfig {
        // The backend selector is process-wide, not a config field; touching
        // it here makes every config construction site honour AGATHA_BACKEND
        // without threading a value through.
        let _ = default_backend_choice();
        AgathaConfig {
            subwarp_lanes: 8,
            slice_width: 3,
            rolling_window: false,
            sliced_diagonal: false,
            subwarp_rejoining: false,
            uneven_bucketing: false,
            tasks_per_subwarp: 2,
            lmb_max_diags: 64,
            use_dpx: false,
            simd_fill: cfg!(feature = "simd"),
            fill_precision: default_fill_precision(),
            block_dim: default_block_dim(),
        }
    }

    /// Full AGAThA: all four techniques on, slice width 3, subwarp 8.
    pub fn agatha() -> AgathaConfig {
        AgathaConfig {
            rolling_window: true,
            sliced_diagonal: true,
            subwarp_rejoining: true,
            uneven_bucketing: true,
            ..AgathaConfig::baseline()
        }
    }

    /// Ablation step `+RW`.
    pub fn with_rw(mut self, on: bool) -> AgathaConfig {
        self.rolling_window = on;
        self
    }

    /// Ablation step `+SD`.
    pub fn with_sd(mut self, on: bool) -> AgathaConfig {
        self.sliced_diagonal = on;
        self
    }

    /// Ablation step `+SR`.
    pub fn with_sr(mut self, on: bool) -> AgathaConfig {
        self.subwarp_rejoining = on;
        self
    }

    /// Ablation step `+UB`.
    pub fn with_ub(mut self, on: bool) -> AgathaConfig {
        self.uneven_bucketing = on;
        self
    }

    /// Set the slice width (Fig. 10).
    pub fn with_slice_width(mut self, s: usize) -> AgathaConfig {
        assert!(s >= 1);
        self.slice_width = s;
        self
    }

    /// Select the block fill implementation (SIMD wavefront vs scalar).
    /// Results are bit-identical either way; benchmarks use this to measure
    /// both paths from one binary.
    pub fn with_simd_fill(mut self, on: bool) -> AgathaConfig {
        self.simd_fill = on;
        self
    }

    /// Select the wavefront lane precision (mirrors
    /// [`AgathaConfig::with_simd_fill`]). Results are bit-identical across
    /// every precision; benchmarks and the CLI `--precision` flag use this
    /// to pin a tier per run.
    pub fn with_fill_precision(mut self, precision: FillPrecision) -> AgathaConfig {
        self.fill_precision = precision;
        self
    }

    /// The [`agatha_align::block::FillMode`] this configuration selects.
    #[inline]
    pub fn fill_mode(&self) -> agatha_align::block::FillMode {
        if self.simd_fill {
            agatha_align::block::FillMode::Simd
        } else {
            agatha_align::block::FillMode::Scalar
        }
    }

    /// Select the block geometry (mirrors
    /// [`AgathaConfig::with_fill_precision`]). Results are bit-identical
    /// across every geometry; benchmarks and the CLI `--block` flag use
    /// this to pin a side per run.
    pub fn with_block_dim(mut self, block_dim: BlockDim) -> AgathaConfig {
        self.block_dim = block_dim;
        self
    }

    /// The fill tier this configuration resolves to for an `n × m` task —
    /// the same per-task decision [`crate::kernel::run_task_ws`] makes, so
    /// callers (CLI `--verbose` stats, benches) can observe i16 demotions
    /// without instrumenting the kernel output.
    #[inline]
    pub fn fill_tier_for(
        &self,
        n: usize,
        m: usize,
        scoring: &agatha_align::Scoring,
    ) -> agatha_align::block::FillTier {
        let b = self.block_dim_for(n, m, scoring);
        agatha_align::block::BlockCtx::with_block_dim(n, m, scoring, b)
            .fill_tier(self.fill_mode(), self.fill_precision)
    }

    /// The block side this configuration resolves to for an `n × m` task —
    /// the geometry analogue of [`AgathaConfig::fill_tier_for`], again the
    /// exact per-task decision [`crate::kernel::run_task_ws`] makes.
    #[inline]
    pub fn block_dim_for(&self, n: usize, m: usize, scoring: &agatha_align::Scoring) -> usize {
        self.block_dim.resolve(n, m, scoring, self.fill_mode(), self.fill_precision)
    }

    /// Set the subwarp size (Fig. 14).
    pub fn with_subwarp(mut self, lanes: usize) -> AgathaConfig {
        assert!(
            (1..=WARP_LANES).contains(&lanes) && WARP_LANES.is_multiple_of(lanes),
            "subwarp must divide the warp"
        );
        self.subwarp_lanes = lanes;
        self
    }

    /// Subwarps per warp (`N` in §4.4).
    #[inline]
    pub fn subwarps_per_warp(&self) -> usize {
        WARP_LANES / self.subwarp_lanes
    }

    /// Whether slice widths allow replacing modulo by bitwise-and in the
    /// window indexing ("it is possible to use bitwise & operation with
    /// these widths instead of modulo", §5.5 — widths 3 and 7, i.e. one
    /// less than a power of two).
    #[inline]
    pub fn slice_width_uses_mask(&self) -> bool {
        (self.slice_width + 1).is_power_of_two()
    }
}

impl Default for AgathaConfig {
    fn default() -> AgathaConfig {
        AgathaConfig::agatha()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_override_unset_returns_default() {
        assert_eq!(
            env_override("AGATHA_TEST_DEFINITELY_UNSET", FillPrecision::Auto, FillPrecision::parse),
            FillPrecision::Auto
        );
        assert_eq!(env_override("AGATHA_TEST_DEFINITELY_UNSET", None, parse_scenario_name), None);
    }

    #[test]
    fn env_override_parses_set_values() {
        std::env::set_var("AGATHA_TEST_PRECISION_OK", "i16");
        assert_eq!(
            env_override("AGATHA_TEST_PRECISION_OK", FillPrecision::Auto, FillPrecision::parse),
            FillPrecision::I16
        );
        std::env::set_var("AGATHA_TEST_BLOCK_OK", "16");
        assert_eq!(
            env_override("AGATHA_TEST_BLOCK_OK", BlockDim::Auto, BlockDim::parse),
            BlockDim::B16
        );
        std::env::set_var("AGATHA_TEST_SCENARIO_OK", " protein-blosum62 ");
        assert_eq!(
            env_override("AGATHA_TEST_SCENARIO_OK", None, parse_scenario_name),
            Some("protein-blosum62".to_string())
        );
    }

    #[test]
    #[should_panic(expected = "AGATHA_TEST_BLOCK_BAD environment override")]
    fn env_override_panics_on_garbage() {
        std::env::set_var("AGATHA_TEST_BLOCK_BAD", "7");
        env_override("AGATHA_TEST_BLOCK_BAD", BlockDim::Auto, BlockDim::parse);
    }

    #[test]
    #[should_panic(expected = "empty scenario name")]
    fn env_override_rejects_empty_scenario() {
        std::env::set_var("AGATHA_TEST_SCENARIO_EMPTY", "   ");
        env_override("AGATHA_TEST_SCENARIO_EMPTY", None, parse_scenario_name);
    }

    // The satellite regression battery for the real variables: garbage in
    // any `AGATHA_*` override must panic naming that variable, never fall
    // through to the default. Each test primes the process-default caches
    // first so concurrently running tests that construct configs read the
    // already-cached value instead of the garbage this test plants.
    fn prime_default_caches() {
        let _ = default_fill_precision();
        let _ = default_block_dim();
        let _ = default_backend_choice();
        let _ = default_scenario();
        let _ = default_prefetch_depth();
    }

    #[test]
    fn prefetch_depth_parses() {
        assert_eq!(parse_prefetch_depth("0"), Ok(0));
        assert_eq!(parse_prefetch_depth(" 4 "), Ok(4));
        let err = parse_prefetch_depth("lots").unwrap_err();
        assert!(err.contains("'lots'") && err.contains("0 to disable"), "{err}");
        assert_eq!(
            env_override(
                "AGATHA_TEST_PREFETCH_UNSET",
                DEFAULT_PREFETCH_DEPTH,
                parse_prefetch_depth
            ),
            DEFAULT_PREFETCH_DEPTH
        );
    }

    #[test]
    #[should_panic(expected = "AGATHA_PREFETCH environment override: invalid prefetch depth")]
    fn agatha_prefetch_garbage_names_the_variable() {
        prime_default_caches();
        std::env::set_var("AGATHA_PREFETCH", "-3");
        env_override("AGATHA_PREFETCH", DEFAULT_PREFETCH_DEPTH, parse_prefetch_depth);
    }

    #[test]
    #[should_panic(expected = "AGATHA_PRECISION environment override: invalid precision 'fast'")]
    fn agatha_precision_garbage_names_the_variable() {
        prime_default_caches();
        std::env::set_var("AGATHA_PRECISION", "fast");
        env_override("AGATHA_PRECISION", FillPrecision::Auto, FillPrecision::parse);
    }

    #[test]
    #[should_panic(expected = "AGATHA_BLOCK environment override: invalid block dim '12'")]
    fn agatha_block_garbage_names_the_variable() {
        prime_default_caches();
        std::env::set_var("AGATHA_BLOCK", "12");
        env_override("AGATHA_BLOCK", BlockDim::Auto, BlockDim::parse);
    }

    #[test]
    #[should_panic(expected = "AGATHA_BACKEND environment override: invalid backend 'neon'")]
    fn agatha_backend_garbage_names_the_variable() {
        use agatha_align::simd::BackendChoice;
        prime_default_caches();
        std::env::set_var("AGATHA_BACKEND", "neon");
        env_override("AGATHA_BACKEND", BackendChoice::Auto, BackendChoice::parse);
    }

    #[test]
    fn backend_names_parse() {
        use agatha_align::simd::{BackendChoice, WavefrontBackend};
        assert_eq!(BackendChoice::parse("auto"), Ok(BackendChoice::Auto));
        assert_eq!(
            BackendChoice::parse("AVX512"),
            Ok(BackendChoice::Fixed(WavefrontBackend::Avx512))
        );
        assert_eq!(BackendChoice::parse("avx2"), Ok(BackendChoice::Fixed(WavefrontBackend::Avx2)));
        assert_eq!(
            BackendChoice::parse(" sse41 "),
            Ok(BackendChoice::Fixed(WavefrontBackend::Sse41))
        );
        assert_eq!(
            BackendChoice::parse("portable"),
            Ok(BackendChoice::Fixed(WavefrontBackend::Portable))
        );
        let err = BackendChoice::parse("neon").unwrap_err();
        assert!(err.contains("'neon'") && err.contains("auto"), "{err}");
    }

    #[test]
    fn default_backend_choice_is_cached_and_round_trips() {
        // The cached default is stable across calls (it is what gets
        // installed process-wide on first use) and its name survives a
        // parse round-trip, so CI's forced-backend matrix can read it back.
        use agatha_align::simd::BackendChoice;
        let choice = default_backend_choice();
        assert_eq!(default_backend_choice(), choice);
        assert_eq!(BackendChoice::parse(choice.name()), Ok(choice));
    }

    #[test]
    fn defaults_match_paper() {
        let c = AgathaConfig::agatha();
        assert_eq!(c.subwarp_lanes, 8);
        assert_eq!(c.slice_width, 3);
        assert!(c.rolling_window && c.sliced_diagonal);
        assert!(c.subwarp_rejoining && c.uneven_bucketing);
        assert_eq!(c.subwarps_per_warp(), 4);
    }

    #[test]
    fn mask_widths() {
        assert!(AgathaConfig::agatha().with_slice_width(3).slice_width_uses_mask());
        assert!(AgathaConfig::agatha().with_slice_width(7).slice_width_uses_mask());
        assert!(!AgathaConfig::agatha().with_slice_width(4).slice_width_uses_mask());
        assert!(!AgathaConfig::agatha().with_slice_width(5).slice_width_uses_mask());
    }

    #[test]
    #[should_panic(expected = "divide the warp")]
    fn bad_subwarp_rejected() {
        let _ = AgathaConfig::agatha().with_subwarp(12);
    }

    #[test]
    fn ablation_chain() {
        let c = AgathaConfig::baseline().with_rw(true).with_sd(true);
        assert!(c.rolling_window && c.sliced_diagonal);
        assert!(!c.subwarp_rejoining && !c.uneven_bucketing);
    }

    #[test]
    fn precision_names_parse() {
        assert_eq!(FillPrecision::parse("auto"), Ok(FillPrecision::Auto));
        assert_eq!(FillPrecision::parse("I32"), Ok(FillPrecision::I32));
        assert_eq!(FillPrecision::parse("i16"), Ok(FillPrecision::I16));
        let err = FillPrecision::parse("bogus").unwrap_err();
        assert!(err.contains("'bogus'") && err.contains("auto"), "{err}");
    }

    #[test]
    fn block_dim_names_parse() {
        assert_eq!(BlockDim::parse("auto"), Ok(BlockDim::Auto));
        assert_eq!(BlockDim::parse("8"), Ok(BlockDim::B8));
        assert_eq!(BlockDim::parse("B16"), Ok(BlockDim::B16));
        let err = BlockDim::parse("12").unwrap_err();
        assert!(err.contains("'12'") && err.contains("auto"), "{err}");
    }

    #[test]
    fn block_dim_resolution_is_per_task() {
        use agatha_align::{BLOCK, MAX_BLOCK};
        let s = agatha_align::Scoring::preset_bwa();
        let cfg = AgathaConfig::agatha().with_simd_fill(true).with_block_dim(BlockDim::Auto);
        // Forced geometries resolve to themselves regardless of the task.
        assert_eq!(cfg.clone().with_block_dim(BlockDim::B8).block_dim_for(240, 240, &s), BLOCK);
        assert_eq!(
            cfg.clone().with_block_dim(BlockDim::B16).block_dim_for(240, 240, &s),
            MAX_BLOCK
        );
        // Auto under the scalar fill always stays at the paper geometry
        // (the wide side only pays off via the 16-lane i16 wavefront).
        let scalar = cfg.clone().with_simd_fill(false);
        assert_eq!(scalar.block_dim_for(240, 240, &s), BLOCK);
        // Auto with the i32 precision pin also stays narrow.
        let wide_lanes = cfg.clone().with_fill_precision(FillPrecision::I32);
        assert_eq!(wide_lanes.block_dim_for(240, 240, &s), BLOCK);
        // Tiny tasks never pick the wide geometry.
        assert_eq!(cfg.block_dim_for(16, 16, &s), BLOCK);
        // The fill tier resolver agrees with the geometry resolver's pick
        // (a B16-forced short read still proves the i16 gate).
        if cfg!(feature = "simd") {
            use agatha_align::block::FillTier;
            let forced = cfg.with_block_dim(BlockDim::B16);
            assert_eq!(forced.fill_tier_for(240, 240, &s), FillTier::I16);
        }
    }

    #[test]
    fn fill_tier_resolution_demotes_per_task() {
        use agatha_align::block::FillTier;
        let s = agatha_align::Scoring::preset_bwa();
        let cfg =
            AgathaConfig::agatha().with_simd_fill(true).with_fill_precision(FillPrecision::I16);
        // 240 bp short reads fit i16; 4 kb reads exceed the gate under the
        // same scoring and demote to the i32 wavefront.
        assert_eq!(cfg.fill_tier_for(240, 240, &s), FillTier::I16);
        assert_eq!(cfg.fill_tier_for(4000, 4000, &s), FillTier::I32);
        let wide = cfg.clone().with_fill_precision(FillPrecision::I32);
        assert_eq!(wide.fill_tier_for(240, 240, &s), FillTier::I32);
        let scalar = cfg.with_simd_fill(false);
        assert_eq!(scalar.fill_tier_for(240, 240, &s), FillTier::Scalar);
    }
}
