//! # agatha-core
//!
//! The paper's contribution: the AGAThA guided-alignment kernel and its
//! host-side scheduling, built on the `agatha-gpu-sim` execution model.
//!
//! The four techniques map to modules as follows:
//!
//! * **Rolling window** (§4.1) — anti-diagonal maxima tracked in shared
//!   memory with periodic spills: cost accounting in [`kernel`], semantics
//!   delegated to [`agatha_align::diag::DiagTracker`].
//! * **Sliced diagonal** (§4.2) — the tiling in [`kernel`]/[`trace`]:
//!   diagonal slices of `slice_width` blocks bound run-ahead and let the
//!   local-max buffer fit in shared memory.
//! * **Subwarp rejoining** (§4.3) — the intra-warp work-stealing simulation
//!   in [`warp_sim`].
//! * **Uneven bucketing** (§4.4) — the task-to-warp assignment in
//!   [`bucketing`].
//!
//! [`pipeline::Pipeline`] ties everything into a batch aligner; every
//! feature can be toggled independently through [`options::AgathaConfig`]
//! for the ablation study (Fig. 9). [`engine::BatchEngine`] wraps the
//! pipeline in a persistent worker pool with per-worker reusable
//! [`kernel::KernelWorkspace`]s for bounded-memory streaming
//! ([`engine::BatchEngine::align_stream`]).

pub mod bucketing;
pub mod clock;
pub mod engine;
pub mod kernel;
pub mod model;
pub mod options;
pub mod pipeline;
pub mod predictive;
pub(crate) mod prefetch;
pub mod trace;
pub mod warp_sim;

pub use bucketing::OrderingStrategy;
pub use clock::{Clock, MockClock, SystemClock};
pub use engine::{
    BatchEngine, ChunkReport, JobMeta, JobOutcome, StreamError, StreamOptions, StreamRun,
    StreamSummary, TagCounters,
};
pub use kernel::{run_task, run_task_ws, KernelWorkspace, TaskRun};
pub use options::AgathaConfig;
pub use pipeline::{BatchReport, Pipeline};
