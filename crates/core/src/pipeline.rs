//! End-to-end batch alignment: tasks → kernel runs → warp assignment →
//! warp simulation → device scheduling → scores + simulated time.
//!
//! Host-side execution parallelises across CPU threads with a shared atomic
//! work index (tasks have a long-tailed size distribution, so static
//! chunking would recreate on the host exactly the imbalance the paper
//! fixes on the GPU).

use std::sync::atomic::{AtomicUsize, Ordering};

use agatha_align::{GuidedResult, Scoring, Task};
use agatha_gpu_sim::{sched, CostModel, DeviceReport, GpuSpec, KernelStats};

use crate::bucketing::{build_warps, OrderingStrategy, WarpAssignment};
use crate::engine::BatchEngine;
use crate::kernel::{run_task_ws, KernelWorkspace, TaskRun};
use crate::options::AgathaConfig;
use crate::warp_sim::simulate_warp;

/// A configured aligner: scoring, kernel options and target device.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// Alignment scoring parameters.
    pub scoring: Scoring,
    /// Kernel configuration.
    pub config: AgathaConfig,
    /// Target GPU.
    pub spec: GpuSpec,
    /// Cost model (derived from `spec` unless overridden).
    pub cost: CostModel,
    /// Number of identical GPUs (tasks split evenly; §5.8).
    pub gpus: usize,
    /// Host threads for the simulation itself (0 = all available).
    pub host_threads: usize,
}

/// Everything a batch run produces.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Alignment results, indexed like the input tasks.
    pub results: Vec<GuidedResult>,
    /// Simulated kernel time in milliseconds (max across GPUs).
    pub elapsed_ms: f64,
    /// Scheduling detail of the straggler device — the one whose makespan
    /// determines `elapsed_ms` (with one GPU, simply that device).
    pub device: DeviceReport,
    /// Per-GPU scheduling reports, in device order (`gpus` entries).
    pub devices: Vec<DeviceReport>,
    /// Aggregate execution statistics.
    pub stats: KernelStats,
    /// Per-warp latencies in submission order (cycles).
    pub warp_cycles: Vec<f64>,
    /// Fig. 12 data: per subwarp slot, (a-priori assigned blocks,
    /// actually executed blocks after rejoining).
    pub subwarp_blocks: Vec<(u64, f64)>,
}

impl Pipeline {
    /// AGAThA on a single RTX A6000 (the paper's primary setup).
    pub fn new(scoring: Scoring, config: AgathaConfig) -> Pipeline {
        let spec = GpuSpec::rtx_a6000();
        let mut cost = CostModel::for_spec(&spec);
        cost.use_dpx = config.use_dpx;
        Pipeline { scoring, config, spec, cost, gpus: 1, host_threads: 0 }
    }

    /// Change the target GPU.
    pub fn with_spec(mut self, spec: GpuSpec) -> Pipeline {
        let mut cost = CostModel::for_spec(&spec);
        cost.use_dpx = self.config.use_dpx;
        self.spec = spec;
        self.cost = cost;
        self
    }

    /// Use `gpus` identical devices.
    pub fn with_gpus(mut self, gpus: usize) -> Pipeline {
        assert!(gpus >= 1);
        self.gpus = gpus;
        self
    }

    /// The ordering strategy implied by the configuration.
    pub fn default_strategy(&self) -> OrderingStrategy {
        if self.config.uneven_bucketing {
            OrderingStrategy::UnevenBucketing
        } else {
            OrderingStrategy::Original
        }
    }

    /// Align a batch using the configuration's implied ordering.
    pub fn align_batch(&self, tasks: &[Task]) -> BatchReport {
        self.align_batch_with_strategy(tasks, self.default_strategy())
    }

    /// Align a batch with an explicit ordering strategy (Fig. 11 compares
    /// several on otherwise identical configurations).
    pub fn align_batch_with_strategy(
        &self,
        tasks: &[Task],
        strategy: OrderingStrategy,
    ) -> BatchReport {
        let runs = self.execute_tasks(tasks);
        // A-priori workload estimate: number of anti-diagonals (§5.6).
        let workloads: Vec<u64> = tasks.iter().map(|t| t.antidiags() as u64).collect();
        self.assemble_report(&workloads, runs, strategy)
    }

    /// Spin up a persistent streaming engine for this configuration. The
    /// engine owns a worker pool whose threads each reuse a
    /// [`KernelWorkspace`] across every task they ever execute — the
    /// entry point for bounded-memory [`BatchEngine::align_stream`] runs.
    pub fn engine(&self) -> BatchEngine {
        BatchEngine::new(self.clone())
    }

    /// Turn warp latencies plus executed runs into a full [`BatchReport`]
    /// (warp assignment → warp simulation → device scheduling → stats).
    /// Shared by the borrowed batch path and [`BatchEngine`]'s streaming
    /// chunks so both produce bit-identical reports for the same tasks.
    pub(crate) fn assemble_report(
        &self,
        workloads: &[u64],
        runs: Vec<TaskRun>,
        strategy: OrderingStrategy,
    ) -> BatchReport {
        self.assemble_report_recycling(workloads, runs, strategy, |_| {})
    }

    /// [`Pipeline::assemble_report`] with a recycler for the spent runs'
    /// output buffers: once a run's stats are folded and its result
    /// extracted, its `units` vector (with all `row_cols` capacity) is
    /// surplus — the streaming engine hands it back to the worker pool via
    /// [`crate::kernel::KernelWorkspace::recycle_units`] instead of freeing
    /// it, closing the last per-task allocation in the stream path.
    pub(crate) fn assemble_report_recycling(
        &self,
        workloads: &[u64],
        runs: Vec<TaskRun>,
        strategy: OrderingStrategy,
        mut recycle: impl FnMut(Vec<crate::trace::SliceUnit>),
    ) -> BatchReport {
        let warps = build_warps(
            workloads,
            self.config.subwarps_per_warp(),
            self.config.tasks_per_subwarp,
            strategy,
        );

        let (warp_cycles, subwarp_blocks) = self.simulate_warps(&runs, &warps);

        let (devices, device) = self.schedule_devices(&warp_cycles);
        let makespan = device.makespan_cycles;

        let mut stats = KernelStats::new();
        for r in &runs {
            stats.add(&r.stats(self.config.subwarp_lanes, &self.config, &self.cost));
        }

        let results = runs
            .into_iter()
            .map(|mut r| {
                recycle(std::mem::take(&mut r.units));
                r.result
            })
            .collect();
        BatchReport {
            results,
            elapsed_ms: self.spec.cycles_to_ms(makespan),
            device,
            devices,
            stats,
            warp_cycles,
            subwarp_blocks,
        }
    }

    /// Schedule warp latencies onto the configured device(s): one report
    /// per GPU, plus the straggler whose makespan bounds the launch —
    /// `device`/`elapsed_ms` in every report derive from this one place.
    pub(crate) fn schedule_devices(
        &self,
        warp_cycles: &[f64],
    ) -> (Vec<DeviceReport>, DeviceReport) {
        let devices = if self.gpus == 1 {
            vec![sched::schedule(warp_cycles, self.spec.warp_slots())]
        } else {
            sched::multi_gpu_schedule(warp_cycles, self.spec.warp_slots(), self.gpus)
        };
        let straggler = devices
            .iter()
            .max_by(|a, b| a.makespan_cycles.total_cmp(&b.makespan_cycles))
            .cloned()
            .expect("at least one device");
        (devices, straggler)
    }

    /// Number of host worker threads implied by the configuration.
    pub(crate) fn worker_threads(&self) -> usize {
        if self.host_threads > 0 {
            self.host_threads
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        }
    }

    /// Execute the kernels for all tasks in parallel on the host. Each
    /// worker reuses one [`KernelWorkspace`] across all tasks it draws from
    /// the shared queue, so only the first few tasks per worker pay
    /// allocation cost.
    pub fn execute_tasks(&self, tasks: &[Task]) -> Vec<TaskRun> {
        let threads = self.worker_threads().min(tasks.len().max(1));

        let mut out: Vec<Option<TaskRun>> = (0..tasks.len()).map(|_| None).collect();
        if threads <= 1 {
            let mut ws = KernelWorkspace::new();
            for (i, t) in tasks.iter().enumerate() {
                out[i] = Some(run_task_ws(&mut ws, t, &self.scoring, &self.config));
            }
        } else {
            let next = AtomicUsize::new(0);
            let collected: Vec<Vec<(usize, TaskRun)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        let next = &next;
                        scope.spawn(move || {
                            let mut ws = KernelWorkspace::new();
                            let mut local = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= tasks.len() {
                                    break;
                                }
                                local.push((
                                    i,
                                    run_task_ws(&mut ws, &tasks[i], &self.scoring, &self.config),
                                ));
                            }
                            local
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
            });
            for (i, run) in collected.into_iter().flatten() {
                out[i] = Some(run);
            }
        }
        out.into_iter().map(|r| r.expect("every task executed")).collect()
    }

    /// Simulate all warps, returning per-warp cycles (submission order) and
    /// per-subwarp-slot block accounting. Crate-visible so the streaming
    /// engine's carry-over packing can simulate a pool that mixes this
    /// chunk's runs with runs deferred from earlier chunks.
    pub(crate) fn simulate_warps(
        &self,
        runs: &[TaskRun],
        warps: &[WarpAssignment],
    ) -> (Vec<f64>, Vec<(u64, f64)>) {
        let mut warp_cycles = Vec::with_capacity(warps.len());
        let mut subwarp_blocks = Vec::new();
        for w in warps {
            let queues: Vec<Vec<&TaskRun>> =
                w.queues.iter().map(|q| q.iter().map(|&i| &runs[i]).collect()).collect();
            let outcome = simulate_warp(&queues, &self.config, &self.cost);
            warp_cycles.push(outcome.cycles);
            for (s, q) in w.queues.iter().enumerate() {
                let assigned: u64 = q.iter().map(|&i| runs[i].blocks).sum();
                subwarp_blocks.push((assigned, outcome.subwarp_blocks[s]));
            }
        }
        (warp_cycles, subwarp_blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agatha_align::guided::guided_align;

    fn mk_tasks(count: usize, len_base: usize, seed: u64) -> Vec<Task> {
        let mut tasks = Vec::new();
        let mut x = seed | 1;
        for id in 0..count {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let len = len_base + (x >> 33) as usize % len_base;
            let mut r = String::new();
            let mut q = String::new();
            for k in 0..len {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let c = ['A', 'C', 'G', 'T'][(x >> 33) as usize % 4];
                r.push(c);
                q.push(if k % 19 == 0 { 'T' } else { c });
            }
            tasks.push(Task::from_strs(id as u32, &r, &q));
        }
        tasks
    }

    #[test]
    fn batch_results_are_exact() {
        let scoring = Scoring::new(2, 4, 4, 2, 60, 16);
        let tasks = mk_tasks(24, 120, 77);
        let p = Pipeline::new(scoring, AgathaConfig::agatha());
        let rep = p.align_batch(&tasks);
        assert_eq!(rep.results.len(), tasks.len());
        for (t, got) in tasks.iter().zip(&rep.results) {
            let want = guided_align(&t.reference, &t.query, &scoring);
            assert!(got.same_alignment(&want), "task {}", t.id);
        }
        assert!(rep.elapsed_ms > 0.0);
    }

    #[test]
    fn strategies_do_not_change_scores() {
        let scoring = Scoring::new(2, 4, 4, 2, 60, 16);
        let tasks = mk_tasks(17, 100, 99);
        let p = Pipeline::new(scoring, AgathaConfig::agatha());
        let a = p.align_batch_with_strategy(&tasks, OrderingStrategy::Original);
        let b = p.align_batch_with_strategy(&tasks, OrderingStrategy::Sorted);
        let c = p.align_batch_with_strategy(&tasks, OrderingStrategy::UnevenBucketing);
        for i in 0..tasks.len() {
            assert!(a.results[i].same_alignment(&b.results[i]));
            assert!(a.results[i].same_alignment(&c.results[i]));
        }
    }

    #[test]
    fn multi_gpu_is_faster() {
        let scoring = Scoring::new(2, 4, 4, 2, 60, 16);
        let tasks = mk_tasks(64, 100, 5);
        let one = Pipeline::new(scoring, AgathaConfig::agatha()).align_batch(&tasks);
        let four = Pipeline::new(scoring, AgathaConfig::agatha()).with_gpus(4).align_batch(&tasks);
        assert!(four.elapsed_ms <= one.elapsed_ms);
    }

    #[test]
    fn multi_gpu_device_report_agrees_with_elapsed() {
        let scoring = Scoring::new(2, 4, 4, 2, 60, 16);
        let tasks = mk_tasks(64, 100, 5);
        let p = Pipeline::new(scoring, AgathaConfig::agatha()).with_gpus(4);
        let rep = p.align_batch(&tasks);
        assert_eq!(rep.devices.len(), 4, "one report per GPU");
        // `device` is the straggler shard, so its makespan IS the elapsed
        // time (the old code reported the single-device schedule here).
        assert!((rep.elapsed_ms - rep.device.ms(&p.spec)).abs() < 1e-12);
        let worst = rep.devices.iter().map(|d| d.makespan_cycles).fold(0.0, f64::max);
        assert_eq!(rep.device.makespan_cycles, worst);
        let warps: usize = rep.devices.iter().map(|d| d.warps).sum();
        assert_eq!(warps, rep.warp_cycles.len());
    }

    #[test]
    fn single_threaded_host_matches_parallel() {
        let scoring = Scoring::new(2, 4, 4, 2, 60, 16);
        let tasks = mk_tasks(9, 80, 13);
        let mut p = Pipeline::new(scoring, AgathaConfig::agatha());
        let par = p.align_batch(&tasks);
        p.host_threads = 1;
        let ser = p.align_batch(&tasks);
        assert_eq!(par.results, ser.results);
        assert!((par.elapsed_ms - ser.elapsed_ms).abs() < 1e-12);
    }

    #[test]
    fn subwarp_block_accounting_conserves_work() {
        use agatha_align::block::BlockDim;
        let scoring = Scoring::new(2, 4, 4, 2, 60, 16);
        let tasks = mk_tasks(20, 90, 21);
        // Geometry is pinned per run so block counts convert to cells with
        // one factor; both geometries must conserve work.
        for (bd, block_cells) in [(BlockDim::B8, 64), (BlockDim::B16, 256)] {
            let p = Pipeline::new(scoring, AgathaConfig::agatha().with_block_dim(bd));
            let rep = p.align_batch(&tasks);
            let assigned: u64 = rep.subwarp_blocks.iter().map(|&(a, _)| a).sum();
            let executed: f64 = rep.subwarp_blocks.iter().map(|&(_, e)| e).sum();
            assert_eq!(assigned, rep.stats.computed_cells / block_cells, "{}", bd.name());
            assert!((executed - assigned as f64).abs() / (assigned as f64) < 1e-9);
        }
    }

    #[test]
    fn empty_batch() {
        let p = Pipeline::new(Scoring::default(), AgathaConfig::agatha());
        let rep = p.align_batch(&[]);
        assert!(rep.results.is_empty());
        assert_eq!(rep.elapsed_ms, 0.0);
    }
}
