//! Bounded chunk prefetch for the streaming path.
//!
//! A dedicated reader thread drives a fallible task source (typically the
//! incremental `FastaPairs` iterator) and fills a small rendezvous channel
//! of parsed chunks, so FASTA parsing and task admission overlap kernel
//! execution instead of serialising with it. The channel is a
//! `sync_channel(depth)`: when the consumer falls behind, the reader blocks
//! on `send`, bounding live memory to `depth` queued chunks plus the one
//! being filled and the one being executed.
//!
//! Error protocol: the reader never panics the process on a source error.
//! Every stream ends with exactly one terminator — [`ChunkMsg::Done`] or
//! [`ChunkMsg::Failed`] — sent immediately after the (possibly partial)
//! chunk in which the stream ended, so the consumer can attribute a parse
//! error to the exact chunk and task offset where it occurred. A channel
//! disconnect *without* a terminator means the reader died abnormally and
//! is synthesised into a [`ChunkMsg::Failed`].
//!
//! Spent chunk buffers flow back to the reader over a return channel, so
//! steady-state prefetching recycles the same `depth + 2` task vectors
//! instead of allocating per chunk.

use std::sync::mpsc::{channel, sync_channel, Receiver, Sender};
use std::thread::JoinHandle;

use agatha_align::Task;

/// Initial capacity clamp for chunk buffers: a pathological `chunk_size`
/// (e.g. "whole stream as one chunk") should grow organically, not reserve
/// gigabytes up front.
const RESERVE_CAP: usize = 8192;

/// One message from the reader thread to the stream consumer.
pub(crate) enum ChunkMsg {
    /// A parsed chunk of tasks. Full (`chunk_size` tasks) except possibly
    /// the final chunk before a terminator.
    Chunk(Vec<Task>),
    /// The source ended cleanly. Terminal.
    Done,
    /// The source yielded an error (e.g. malformed FASTA). Terminal: the
    /// reader stops at the first error, after shipping the tasks that
    /// parsed before it.
    Failed(String),
}

/// Handle to a running prefetch reader. Dropping it unblocks and joins the
/// reader thread.
pub(crate) struct PrefetchedChunks {
    rx: Option<Receiver<ChunkMsg>>,
    ret_tx: Sender<Vec<Task>>,
    reader: Option<JoinHandle<()>>,
}

impl PrefetchedChunks {
    /// Spawn the reader thread over `source`, batching `chunk_size` tasks
    /// per chunk with at most `depth` parsed chunks queued ahead of the
    /// consumer.
    pub(crate) fn spawn<S>(mut source: S, chunk_size: usize, depth: usize) -> PrefetchedChunks
    where
        S: Iterator<Item = Result<Task, String>> + Send + 'static,
    {
        assert!(chunk_size >= 1, "prefetch chunk_size must be at least 1");
        assert!(depth >= 1, "prefetch depth must be at least 1");
        let (tx, rx) = sync_channel::<ChunkMsg>(depth);
        let (ret_tx, ret_rx) = channel::<Vec<Task>>();
        let reader = std::thread::Builder::new()
            .name("agatha-prefetch".into())
            .spawn(move || loop {
                let mut buf = ret_rx.try_recv().unwrap_or_default();
                buf.clear();
                buf.reserve(chunk_size.min(RESERVE_CAP));
                let terminal = loop {
                    if buf.len() == chunk_size {
                        break None;
                    }
                    match source.next() {
                        Some(Ok(task)) => buf.push(task),
                        Some(Err(e)) => break Some(ChunkMsg::Failed(e)),
                        None => break Some(ChunkMsg::Done),
                    }
                };
                if !buf.is_empty() && tx.send(ChunkMsg::Chunk(buf)).is_err() {
                    return; // consumer gone; stop reading
                }
                if let Some(t) = terminal {
                    let _ = tx.send(t);
                    return;
                }
            })
            .expect("spawn prefetch reader thread");
        PrefetchedChunks { rx: Some(rx), ret_tx, reader: Some(reader) }
    }

    /// Block until the next message. After a terminator has been returned
    /// the caller must not call this again.
    pub(crate) fn next_msg(&mut self) -> ChunkMsg {
        match self.rx.as_ref().expect("prefetch receiver live until drop").recv() {
            Ok(msg) => msg,
            // The reader always sends Done/Failed before exiting normally;
            // a bare disconnect means it died mid-stream.
            Err(_) => ChunkMsg::Failed("prefetch reader thread terminated unexpectedly".into()),
        }
    }

    /// Hand a spent chunk buffer back to the reader for reuse.
    pub(crate) fn recycle(&self, buf: Vec<Task>) {
        if buf.capacity() > 0 {
            // The reader may already have exited; then the buffer just drops.
            let _ = self.ret_tx.send(buf);
        }
    }
}

impl Drop for PrefetchedChunks {
    fn drop(&mut self) {
        // Drop the receiver first: a reader blocked on a backpressured send
        // wakes with a send error and exits, so the join cannot hang.
        drop(self.rx.take());
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(id: u32) -> Task {
        Task::from_strs(id, "ACGTACGT", "ACGTACGT")
    }

    fn drain(pf: &mut PrefetchedChunks) -> (Vec<usize>, Option<String>) {
        let mut sizes = Vec::new();
        loop {
            match pf.next_msg() {
                ChunkMsg::Chunk(c) => {
                    sizes.push(c.len());
                    pf.recycle(c);
                }
                ChunkMsg::Done => return (sizes, None),
                ChunkMsg::Failed(e) => return (sizes, Some(e)),
            }
        }
    }

    #[test]
    fn chunks_then_done() {
        let src = (0..10).map(|i| Ok(task(i)));
        let mut pf = PrefetchedChunks::spawn(src, 4, 2);
        assert_eq!(drain(&mut pf), (vec![4, 4, 2], None));
    }

    #[test]
    fn exact_multiple_has_no_partial_chunk() {
        let src = (0..8).map(|i| Ok(task(i)));
        let mut pf = PrefetchedChunks::spawn(src, 4, 1);
        assert_eq!(drain(&mut pf), (vec![4, 4], None));
    }

    #[test]
    fn error_terminates_after_partial_chunk() {
        let src = (0..6).map(|i| Ok(task(i))).chain(std::iter::once(Err("bad record".to_string())));
        let mut pf = PrefetchedChunks::spawn(src, 4, 2);
        let (sizes, err) = drain(&mut pf);
        assert_eq!(sizes, vec![4, 2], "tasks parsed before the error still ship");
        assert_eq!(err.as_deref(), Some("bad record"));
    }

    #[test]
    fn empty_source_is_a_clean_done() {
        let mut pf = PrefetchedChunks::spawn(std::iter::empty(), 4, 1);
        assert_eq!(drain(&mut pf), (vec![], None));
    }

    #[test]
    fn dropping_midstream_unblocks_the_reader() {
        // Many more chunks than the channel depth: the reader is guaranteed
        // to be parked in a backpressured send when we drop. Drop must join
        // without hanging.
        let src = (0..10_000).map(|i| Ok(task(i)));
        let mut pf = PrefetchedChunks::spawn(src, 8, 1);
        if let ChunkMsg::Chunk(c) = pf.next_msg() {
            assert_eq!(c.len(), 8);
        } else {
            panic!("expected a chunk");
        }
        drop(pf);
    }
}
