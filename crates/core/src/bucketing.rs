//! Task-to-warp assignment strategies (§4.4, Fig. 7, and the §5.6
//! comparison set).
//!
//! * `Original` — tasks go to subwarps in incoming order, the baseline
//!   behaviour the paper diagnoses ("existing approaches assign tasks to
//!   warps in the order in which the input is given", §3.1).
//! * `Sorted` — tasks sorted by workload (number of anti-diagonals) before
//!   sequential assignment; the "simple and intuitive" comparison of §5.6.
//! * `UnevenBucketing` — the paper's scheme: sort, pick the longest `1/N`
//!   tasks (`N` = subwarps per warp), and redistribute them one per warp so
//!   no subwarp queue serialises two extreme tasks; the rest flow to the
//!   least-loaded warps, so bucket *sizes* end up uneven while bucket
//!   *workloads* equalise.

/// Ordering strategy for building warp assignments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderingStrategy {
    /// Incoming order (the baseline).
    Original,
    /// Sort by workload, descending, then assign sequentially.
    Sorted,
    /// §4.4 uneven bucketing.
    UnevenBucketing,
}

/// One warp's task assignment: `queues[s][g]` is the task index subwarp `s`
/// processes in generation `g`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarpAssignment {
    /// Per-subwarp task queues. `Original` and `Sorted` bound every queue at
    /// `tasks_per_subwarp` entries; `UnevenBucketing` deliberately does not —
    /// queues piled with short tasks run extra generations, so consumers
    /// must iterate depths dynamically rather than assume the configured
    /// bound.
    pub queues: Vec<Vec<usize>>,
}

impl WarpAssignment {
    /// All task indices assigned to this warp.
    pub fn task_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.queues.iter().flatten().copied()
    }
}

/// Build warp assignments for `workloads.len()` tasks, where `workloads[i]`
/// is the a-priori size estimate of task `i` (the paper sorts "by the
/// number of anti-diagonals", §5.6).
pub fn build_warps(
    workloads: &[u64],
    subwarps_per_warp: usize,
    tasks_per_subwarp: usize,
    strategy: OrderingStrategy,
) -> Vec<WarpAssignment> {
    assert!(subwarps_per_warp >= 1 && tasks_per_subwarp >= 1);
    let t = workloads.len();
    if t == 0 {
        return Vec::new();
    }
    let n = subwarps_per_warp;
    let g = tasks_per_subwarp;
    let capacity = n * g;
    let num_warps = t.div_ceil(capacity);

    let order: Vec<usize> = match strategy {
        OrderingStrategy::Original => (0..t).collect(),
        OrderingStrategy::Sorted => {
            let mut idx: Vec<usize> = (0..t).collect();
            // Stable sort keeps incoming order among equal workloads.
            idx.sort_by_key(|&i| std::cmp::Reverse(workloads[i]));
            idx
        }
        OrderingStrategy::UnevenBucketing => {
            return uneven_bucketing(workloads, n, g, num_warps);
        }
    };

    sequential_fill(&order, n, num_warps, g)
}

/// Fill warps in order: warp `w` takes the next `n*g` tasks, distributed
/// round-robin across subwarps generation by generation.
fn sequential_fill(order: &[usize], n: usize, num_warps: usize, g: usize) -> Vec<WarpAssignment> {
    let mut warps: Vec<WarpAssignment> =
        (0..num_warps).map(|_| WarpAssignment { queues: vec![Vec::new(); n] }).collect();
    for (pos, &task) in order.iter().enumerate() {
        let w = pos / (n * g);
        let within = pos % (n * g);
        let s = within % n;
        warps[w].queues[s].push(task);
    }
    warps
}

/// §4.4: the longest `1/N` of the tasks (= one per warp per generation) go
/// to distinct warps so no subwarp queue serialises two extremes; the
/// remaining tasks fill largest-first into whichever warp currently has the
/// *least total workload* (ties broken towards fewer tasks, then lower
/// index, keeping the fill deterministic).
///
/// This is what makes the buckets *uneven*: a warp that holds an extreme
/// task receives few fillers, while warps of short tasks take deep queues —
/// task counts differ, a-priori workloads equalise. A count-balanced fill
/// would hand every extreme-holding warp a full complement of short tasks
/// on top of its straggler, recreating the inter-warp imbalance the scheme
/// exists to remove.
fn uneven_bucketing(
    workloads: &[u64],
    n: usize,
    g: usize,
    num_warps: usize,
) -> Vec<WarpAssignment> {
    let t = workloads.len();
    let mut idx: Vec<usize> = (0..t).collect();
    idx.sort_by_key(|&i| std::cmp::Reverse(workloads[i]));
    // One long task per warp per generation.
    let long_count = (num_warps * g).min(t);
    let long: Vec<usize> = idx[..long_count].to_vec();
    let long_set: std::collections::HashSet<usize> = long.iter().copied().collect();
    // Everything else, largest first (LPT): big fillers place at shallow
    // queue depths where they overlap the warp's other work, and the tail
    // of short tasks stacks into deep, cheap generations. Ties keep the
    // incoming order (`idx` is a stable sort of `0..t`).
    let rest: Vec<usize> = idx.iter().copied().filter(|i| !long_set.contains(i)).collect();

    let mut warps: Vec<WarpAssignment> =
        (0..num_warps).map(|_| WarpAssignment { queues: vec![Vec::new(); n] }).collect();
    // Per-queue a-priori workload totals for the within-warp placement.
    let mut queue_load: Vec<Vec<u64>> = vec![vec![0u64; n]; num_warps];
    // Long tasks: one per warp per generation, rotated across subwarps so a
    // warp's long tasks land in *different* subwarps — they overlap instead
    // of serialising in one queue.
    for (k, &task) in long.iter().enumerate() {
        let w = k % num_warps;
        let gen = k / num_warps;
        warps[w].queues[gen % n].push(task);
        queue_load[w][gen % n] += workloads[task];
    }
    // Remaining tasks: each goes to the least-loaded warp (ties towards
    // fewer tasks, then lower index), and within it to the least-loaded
    // subwarp queue. Queue depths are unbounded — the warp simply runs more
    // generations where the bucketing piled short tasks together. The warp
    // ordering lives in a BTreeSet keyed by (load, task count, index) — the
    // single source of per-warp totals — so each placement is
    // O(log warps + n), not a rescan of every warp.
    let mut by_load: std::collections::BTreeSet<(u64, usize, usize)> = (0..num_warps)
        .map(|w| {
            let load = queue_load[w].iter().sum::<u64>();
            let count = warps[w].queues.iter().map(Vec::len).sum::<usize>();
            (load, count, w)
        })
        .collect();
    for &task in &rest {
        let (load, count, w) = by_load.pop_first().expect("at least one warp");
        let s = (0..n)
            .min_by_key(|&s| (queue_load[w][s], warps[w].queues[s].len(), s))
            .expect("at least one subwarp");
        warps[w].queues[s].push(task);
        queue_load[w][s] += workloads[task];
        by_load.insert((load + workloads[task], count + 1, w));
    }
    warps
}

/// Split a chunk's task pool into tasks to pack now and tasks to carry into
/// the next chunk's fill.
///
/// Per-chunk bucketing strands stragglers: a trailing warp seeded with the
/// `len % capacity` leftover tasks runs underfull, and the next chunk can't
/// amortise it. Deferring exactly that remainder — the *smallest* workloads,
/// which lose the least from waiting — keeps every packed warp full while
/// the deferred tasks join the next chunk's largest-first fill. At stream
/// end the caller packs the pool whole (`flush`), so the carry drains
/// deterministically.
///
/// Returns `(keep, defer)` as index vectors into `workloads`, each in
/// ascending (pool) order. Ties defer the later-arriving task, keeping the
/// split deterministic.
pub fn carry_split(workloads: &[u64], capacity: usize) -> (Vec<usize>, Vec<usize>) {
    assert!(capacity >= 1);
    let t = workloads.len();
    let spill = t % capacity;
    if spill == 0 {
        return ((0..t).collect(), Vec::new());
    }
    let mut idx: Vec<usize> = (0..t).collect();
    // Stable sort, descending workload: the tail holds the smallest
    // workloads, later pool positions last among equals.
    idx.sort_by_key(|&i| std::cmp::Reverse(workloads[i]));
    let mut defer: Vec<usize> = idx[t - spill..].to_vec();
    defer.sort_unstable();
    let deferred: Vec<bool> = {
        let mut d = vec![false; t];
        for &i in &defer {
            d[i] = true;
        }
        d
    };
    let keep: Vec<usize> = (0..t).filter(|&i| !deferred[i]).collect();
    (keep, defer)
}

/// Per-warp a-priori workload totals (for balance diagnostics and tests).
pub fn warp_workloads(warps: &[WarpAssignment], workloads: &[u64]) -> Vec<u64> {
    warps.iter().map(|w| w.task_indices().map(|i| workloads[i]).sum()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_partition(warps: &[WarpAssignment], t: usize) {
        let mut seen = vec![false; t];
        for w in warps {
            for i in w.task_indices() {
                assert!(!seen[i], "task {i} assigned twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some task unassigned");
    }

    #[test]
    fn original_preserves_order() {
        let wl = vec![10u64; 16];
        let warps = build_warps(&wl, 4, 2, OrderingStrategy::Original);
        assert_eq!(warps.len(), 2);
        assert_partition(&warps, 16);
        // First warp's subwarp 0 gets tasks 0 and 4 (round-robin).
        assert_eq!(warps[0].queues[0], vec![0, 4]);
        assert_eq!(warps[0].queues[3], vec![3, 7]);
        assert_eq!(warps[1].queues[0], vec![8, 12]);
    }

    #[test]
    fn sorted_orders_by_workload() {
        let wl = vec![1, 100, 2, 90, 3, 80, 4, 70];
        let warps = build_warps(&wl, 4, 1, OrderingStrategy::Sorted);
        assert_partition(&warps, 8);
        // Longest four land in warp 0.
        let w0: Vec<usize> = warps[0].task_indices().collect();
        assert_eq!(w0, vec![1, 3, 5, 7]);
    }

    #[test]
    fn uneven_spreads_long_tasks() {
        // 4 extreme tasks among 16; 4 warps of 4 subwarps × 1 generation.
        let mut wl = vec![10u64; 16];
        for i in [0, 1, 2, 3] {
            wl[i] = 1000;
        }
        let warps = build_warps(&wl, 4, 1, OrderingStrategy::UnevenBucketing);
        assert_eq!(warps.len(), 4);
        assert_partition(&warps, 16);
        // Each warp holds exactly one long task.
        for w in &warps {
            let longs = w.task_indices().filter(|&i| wl[i] == 1000).count();
            assert_eq!(longs, 1, "warp {w:?}");
        }
        // Balance: max/min warp workload ratio far below the sorted case.
        let ub = warp_workloads(&warps, &wl);
        let sorted = warp_workloads(&build_warps(&wl, 4, 1, OrderingStrategy::Sorted), &wl);
        let spread = |v: &[u64]| *v.iter().max().unwrap() as f64 / *v.iter().min().unwrap() as f64;
        assert!(spread(&ub) < spread(&sorted));
    }

    #[test]
    fn uneven_with_generations() {
        let mut wl = vec![5u64; 32];
        for w in wl.iter_mut().take(8) {
            *w = 500;
        }
        // 4 warps × 4 subwarps × 2 generations = 32 slots.
        let warps = build_warps(&wl, 4, 2, OrderingStrategy::UnevenBucketing);
        assert_eq!(warps.len(), 4);
        assert_partition(&warps, 32);
        for w in &warps {
            let longs = w.task_indices().filter(|&i| wl[i] == 500).count();
            assert_eq!(longs, 2, "one long task per generation");
            // The two long tasks sit in different subwarps so they overlap.
            let in_one_queue =
                w.queues.iter().map(|q| q.iter().filter(|&&i| wl[i] == 500).count()).max().unwrap();
            assert_eq!(in_one_queue, 1, "long tasks must not share a queue: {w:?}");
        }
    }

    #[test]
    fn ragged_task_count() {
        let wl = vec![7u64; 13];
        for strat in [
            OrderingStrategy::Original,
            OrderingStrategy::Sorted,
            OrderingStrategy::UnevenBucketing,
        ] {
            let warps = build_warps(&wl, 4, 2, strat);
            assert_partition(&warps, 13);
        }
    }

    #[test]
    fn single_subwarp_degenerate() {
        let wl = vec![1u64, 2, 3, 4];
        let warps = build_warps(&wl, 1, 2, OrderingStrategy::UnevenBucketing);
        assert_partition(&warps, 4);
    }

    #[test]
    fn empty_input() {
        assert!(build_warps(&[], 4, 2, OrderingStrategy::Original).is_empty());
    }

    #[test]
    fn carry_split_defers_the_smallest_remainder() {
        // 11 tasks, capacity 4 → spill 3: the three smallest workloads defer.
        let wl = vec![50u64, 3, 40, 1, 30, 2, 20, 10, 60, 70, 80];
        let (keep, defer) = carry_split(&wl, 4);
        assert_eq!(defer, vec![1, 3, 5]); // workloads 3, 1, 2
        assert_eq!(keep, vec![0, 2, 4, 6, 7, 8, 9, 10]);
        assert_eq!(keep.len() % 4, 0);
    }

    #[test]
    fn carry_split_exact_multiple_defers_nothing() {
        let wl = vec![5u64; 8];
        let (keep, defer) = carry_split(&wl, 4);
        assert_eq!(keep, (0..8).collect::<Vec<_>>());
        assert!(defer.is_empty());
        assert_eq!(carry_split(&[], 4), (Vec::new(), Vec::new()));
    }

    #[test]
    fn carry_split_underfull_chunk_defers_everything() {
        // Fewer tasks than one warp's capacity: all of them wait.
        let wl = vec![9u64, 8, 7];
        let (keep, defer) = carry_split(&wl, 8);
        assert!(keep.is_empty());
        assert_eq!(defer, vec![0, 1, 2]);
    }

    #[test]
    fn carry_split_ties_defer_later_arrivals() {
        // All-equal workloads: the stable sort leaves pool order, so the
        // deferred tail is the latest-arriving tasks.
        let wl = vec![5u64; 10];
        let (keep, defer) = carry_split(&wl, 4);
        assert_eq!(keep, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(defer, vec![8, 9]);
    }

    #[test]
    fn carry_split_is_a_partition() {
        let wl: Vec<u64> = (0..29).map(|i| (i * 13 % 7) as u64).collect();
        for cap in [1, 2, 8, 29, 64] {
            let (keep, defer) = carry_split(&wl, cap);
            let mut all: Vec<usize> = keep.iter().chain(&defer).copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..29).collect::<Vec<_>>(), "capacity {cap}");
            assert_eq!(keep.len() % cap, 0, "capacity {cap}");
            assert!(defer.len() < cap, "capacity {cap}");
            // Every kept workload ≥ every deferred workload.
            let kmin = keep.iter().map(|&i| wl[i]).min();
            let dmax = defer.iter().map(|&i| wl[i]).max();
            if let (Some(kmin), Some(dmax)) = (kmin, dmax) {
                assert!(kmin >= dmax, "capacity {cap}");
            }
        }
    }
}
