//! Integration tests of the `agatha` binary.

use std::process::Command;

fn agatha() -> Command {
    Command::new(env!("CARGO_BIN_EXE_agatha"))
}

#[test]
fn help_lists_commands() {
    let out = agatha().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("align"));
    assert!(text.contains("-z N"));
}

#[test]
fn engines_listed() {
    let out = agatha().arg("engines").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for e in ["agatha", "saloba", "manymap", "logan", "cpu"] {
        assert!(text.contains(e), "missing engine {e}");
    }
}

#[test]
fn unknown_command_fails() {
    let out = agatha().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn align_artifact_format_end_to_end() {
    let dir = std::env::temp_dir().join(format!("agatha_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let refs = dir.join("ref.fasta");
    let queries = dir.join("query.fasta");
    // The artifact's input format (Appendix A.2.5).
    std::fs::write(&refs, ">>> 1\nACGTACGTACGTACGT\n>>> 2\nAAAACCCCGGGGTTTT\n").unwrap();
    std::fs::write(&queries, ">>> 1\nACGTACGTACGTACGT\n>>> 2\nAAAACCCCGGGGTTTT\n").unwrap();
    let out_dir = dir.join("out");
    let out = agatha()
        .args(["align", "-a", "2", "-b", "4", "-q", "4", "-r", "2", "-z", "400", "-w", "100"])
        .args(["-o", out_dir.to_str().unwrap()])
        .arg(refs.to_str().unwrap())
        .arg(queries.to_str().unwrap())
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let scores = std::fs::read_to_string(out_dir.join("score.log")).unwrap();
    // Perfect 16-base matches at +2 each.
    assert_eq!(scores, "32\n32\n");
    let time = std::fs::read_to_string(out_dir.join("time.json")).unwrap();
    assert!(time.contains("\"engine\": \"AGAThA\""));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn align_rejects_mismatched_files() {
    let dir = std::env::temp_dir().join(format!("agatha_cli_mm_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let refs = dir.join("ref.fasta");
    let queries = dir.join("query.fasta");
    std::fs::write(&refs, ">1\nACGT\n>2\nACGT\n").unwrap();
    std::fs::write(&queries, ">1\nACGT\n").unwrap();
    let out = agatha()
        .args(["align", refs.to_str().unwrap(), queries.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("equal number"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn demo_runs_with_baseline_engine() {
    let dir = std::env::temp_dir().join(format!("agatha_cli_demo_{}", std::process::id()));
    let out = agatha()
        .args(["demo", "--tech", "hifi", "--reads", "12", "--engine", "saloba"])
        .args(["-o", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(dir.join("score.log").exists());
    std::fs::remove_dir_all(&dir).ok();
}
