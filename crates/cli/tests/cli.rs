//! Integration tests of the `agatha` binary.

use std::process::Command;

fn agatha() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_agatha"));
    // Hermetic against the CI scenario matrix: an ambient AGATHA_SCENARIO
    // would re-score every DNA fixture below under the scenario's model.
    // Tests that exercise the override set it explicitly with .env().
    cmd.env_remove("AGATHA_SCENARIO");
    cmd
}

#[test]
fn help_lists_commands() {
    let out = agatha().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("align"));
    assert!(text.contains("-z N"));
}

#[test]
fn engines_listed() {
    let out = agatha().arg("engines").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for e in ["agatha", "saloba", "manymap", "logan", "cpu"] {
        assert!(text.contains(e), "missing engine {e}");
    }
}

#[test]
fn unknown_command_fails() {
    let out = agatha().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn align_artifact_format_end_to_end() {
    let dir = std::env::temp_dir().join(format!("agatha_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let refs = dir.join("ref.fasta");
    let queries = dir.join("query.fasta");
    // The artifact's input format (Appendix A.2.5).
    std::fs::write(&refs, ">>> 1\nACGTACGTACGTACGT\n>>> 2\nAAAACCCCGGGGTTTT\n").unwrap();
    std::fs::write(&queries, ">>> 1\nACGTACGTACGTACGT\n>>> 2\nAAAACCCCGGGGTTTT\n").unwrap();
    let out_dir = dir.join("out");
    let out = agatha()
        .args(["align", "-a", "2", "-b", "4", "-q", "4", "-r", "2", "-z", "400", "-w", "100"])
        .args(["-o", out_dir.to_str().unwrap()])
        .arg(refs.to_str().unwrap())
        .arg(queries.to_str().unwrap())
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let scores = std::fs::read_to_string(out_dir.join("score.log")).unwrap();
    // Perfect 16-base matches at +2 each.
    assert_eq!(scores, "32\n32\n");
    let time = std::fs::read_to_string(out_dir.join("time.json")).unwrap();
    assert!(time.contains("\"engine\": \"AGAThA\""));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn align_rejects_mismatched_files() {
    let dir = std::env::temp_dir().join(format!("agatha_cli_mm_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let refs = dir.join("ref.fasta");
    let queries = dir.join("query.fasta");
    std::fs::write(&refs, ">1\nACGT\n>2\nACGT\n").unwrap();
    std::fs::write(&queries, ">1\nACGT\n").unwrap();
    let out = agatha()
        .args(["align", refs.to_str().unwrap(), queries.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("equal number"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_numeric_flag_is_an_error() {
    // `-z abc` used to silently align with the default threshold (400).
    let dir = std::env::temp_dir().join(format!("agatha_cli_badnum_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let refs = dir.join("ref.fasta");
    let queries = dir.join("query.fasta");
    std::fs::write(&refs, ">1\nACGT\n").unwrap();
    std::fs::write(&queries, ">1\nACGT\n").unwrap();
    let out = agatha()
        .args(["align", "-z", "abc"])
        .args(["-o", dir.join("out").to_str().unwrap()])
        .arg(refs.to_str().unwrap())
        .arg(queries.to_str().unwrap())
        .output()
        .unwrap();
    assert!(!out.status.success(), "malformed -z must not fall back silently");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("'abc'") && err.contains("-z"), "stderr: {err}");
    // `demo` rejects malformed flags it consumes, too.
    let out = agatha().args(["demo", "--reads", "4x"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("'4x'"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gpus_flag_rejected_for_baseline_engines() {
    // `--gpus` used to be silently ignored for baselines.
    let out = agatha()
        .args(["demo", "--reads", "4", "--engine", "saloba", "--gpus", "2"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("agatha engine"), "stderr: {err}");
    // --gpus 1 is the no-op default and stays accepted.
    let dir = std::env::temp_dir().join(format!("agatha_cli_g1_{}", std::process::id()));
    let out = agatha()
        .args(["demo", "--reads", "4", "--engine", "saloba", "--gpus", "1"])
        .args(["-o", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chunked_streaming_scores_match_whole_batch() {
    let dir = std::env::temp_dir().join(format!("agatha_cli_chunk_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let refs = dir.join("ref.fasta");
    let queries = dir.join("query.fasta");
    let mut rf = String::new();
    let mut qf = String::new();
    for i in 0..9 {
        rf.push_str(&format!(">r{i}\n{}\n", "ACGTACGTACGTACGT".repeat(i % 3 + 1)));
        qf.push_str(&format!(">q{i}\n{}\n", "ACGTACGTACGTACGT".repeat(i % 3 + 1)));
    }
    std::fs::write(&refs, rf).unwrap();
    std::fs::write(&queries, qf).unwrap();
    let run = |extra: &[&str], out: &str| {
        let out_dir = dir.join(out);
        let st = agatha()
            .args(["align", "-w", "100"])
            .args(extra)
            .args(["-o", out_dir.to_str().unwrap()])
            .arg(refs.to_str().unwrap())
            .arg(queries.to_str().unwrap())
            .output()
            .unwrap();
        assert!(st.status.success(), "stderr: {}", String::from_utf8_lossy(&st.stderr));
        std::fs::read_to_string(out_dir.join("score.log")).unwrap()
    };
    // A chunk larger than the input aligns everything in one go (the
    // retired `--chunk 0` spelling of "whole batch").
    let whole = run(&["--chunk", "1024"], "whole");
    let chunked = run(&["--chunk", "2", "--threads", "2"], "chunked");
    assert_eq!(whole, chunked, "chunked streaming must score identically");
    assert_eq!(whole.lines().count(), 9);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn prefetch_and_carryover_scores_match_inline_streaming() {
    // The prefetched reader thread and the cross-chunk carry-over packing
    // are execution-overlap features: every combination must write a
    // byte-identical score.log.
    let dir = std::env::temp_dir().join(format!("agatha_cli_pf_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let refs = dir.join("ref.fasta");
    let queries = dir.join("query.fasta");
    let mut rf = String::new();
    let mut qf = String::new();
    for i in 0..11 {
        rf.push_str(&format!(">r{i}\n{}\n", "ACGTTGCAACGTTGCA".repeat(i % 4 + 1)));
        qf.push_str(&format!(">q{i}\n{}\n", "ACGTAGCAACGTTGCA".repeat(i % 4 + 1)));
    }
    std::fs::write(&refs, rf).unwrap();
    std::fs::write(&queries, qf).unwrap();
    let run = |extra: &[&str], out: &str| {
        let out_dir = dir.join(out);
        let st = agatha()
            .args(["align", "-w", "100", "--chunk", "3"])
            .args(extra)
            .args(["-o", out_dir.to_str().unwrap()])
            .arg(refs.to_str().unwrap())
            .arg(queries.to_str().unwrap())
            .output()
            .unwrap();
        assert!(st.status.success(), "stderr: {}", String::from_utf8_lossy(&st.stderr));
        std::fs::read_to_string(out_dir.join("score.log")).unwrap()
    };
    let inline = run(&["--prefetch", "0", "--carryover", "off"], "inline");
    assert_eq!(inline.lines().count(), 11);
    for (extra, out) in [
        (&["--prefetch", "0", "--carryover", "on"][..], "carry"),
        (&["--prefetch", "3", "--carryover", "off"][..], "pf"),
        (&["--prefetch", "3", "--carryover", "on"][..], "pf_carry"),
    ] {
        assert_eq!(run(extra, out), inline, "{out} must score identically to inline streaming");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn prefetch_and_carryover_bogus_values_are_usage_errors() {
    let dir = std::env::temp_dir().join(format!("agatha_cli_pfbad_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let refs = dir.join("ref.fasta");
    let queries = dir.join("query.fasta");
    std::fs::write(&refs, ">1\nACGT\n").unwrap();
    std::fs::write(&queries, ">1\nACGT\n").unwrap();
    let out = agatha()
        .args(["align", "--prefetch", "lots"])
        .arg(refs.to_str().unwrap())
        .arg(queries.to_str().unwrap())
        .output()
        .unwrap();
    assert!(!out.status.success(), "--prefetch lots must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("'lots'") && err.contains("--prefetch"), "stderr: {err}");
    let out = agatha()
        .args(["align", "--carryover", "maybe"])
        .arg(refs.to_str().unwrap())
        .arg(queries.to_str().unwrap())
        .output()
        .unwrap();
    assert!(!out.status.success(), "--carryover maybe must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("'maybe'") && err.contains("--carryover"), "stderr: {err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn prefetch_and_carryover_rejected_for_baseline_engines() {
    for flag in [&["--prefetch", "2"][..], &["--carryover", "on"][..]] {
        let out = agatha()
            .args(["demo", "--reads", "4", "--engine", "saloba"])
            .args(flag)
            .output()
            .unwrap();
        assert!(!out.status.success(), "{flag:?} must not be silently ignored by baselines");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("agatha engine"), "{flag:?}: stderr: {err}");
    }
}

#[test]
fn midstream_parse_error_surfaces_under_prefetch() {
    // An uneven pair discovered mid-stream must fail the run with the
    // parse error (not a reader-thread panic), after the chunks before it
    // already aligned.
    let dir = std::env::temp_dir().join(format!("agatha_cli_pferr_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let refs = dir.join("ref.fasta");
    let queries = dir.join("query.fasta");
    std::fs::write(&refs, ">1\nACGT\n>2\nACGT\n>3\nACGT\n").unwrap();
    std::fs::write(&queries, ">1\nACGT\n>2\nACGT\n").unwrap();
    let out = agatha()
        .args(["align", "--chunk", "1", "--prefetch", "2"])
        .args(["-o", dir.join("out").to_str().unwrap()])
        .arg(refs.to_str().unwrap())
        .arg(queries.to_str().unwrap())
        .output()
        .unwrap();
    assert!(!out.status.success(), "uneven pairs must fail under prefetch");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("equal number"), "stderr carries the parse error: {err}");
    assert!(err.contains("chunk"), "stderr names the interrupted chunk: {err}");
    assert!(!err.contains("panicked"), "stderr: {err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn demo_runs_with_baseline_engine() {
    let dir = std::env::temp_dir().join(format!("agatha_cli_demo_{}", std::process::id()));
    let out = agatha()
        .args(["demo", "--tech", "hifi", "--reads", "12", "--engine", "saloba"])
        .args(["-o", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(dir.join("score.log").exists());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn zero_gpus_is_an_error() {
    // `--gpus 0` used to be silently clamped to 1; it must now fail loudly
    // like the other malformed numeric flags.
    let out = agatha().args(["demo", "--reads", "4", "--gpus", "0"]).output().unwrap();
    assert!(!out.status.success(), "--gpus 0 must not be clamped to 1");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--gpus") && err.contains("at least 1"), "stderr: {err}");

    // The align subcommand goes through the same host-option parsing.
    let dir = std::env::temp_dir().join(format!("agatha_cli_g0_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let refs = dir.join("ref.fasta");
    let queries = dir.join("query.fasta");
    std::fs::write(&refs, ">1\nACGT\n").unwrap();
    std::fs::write(&queries, ">1\nACGT\n").unwrap();
    let out = agatha()
        .args(["align", "--gpus", "0"])
        .arg(refs.to_str().unwrap())
        .arg(queries.to_str().unwrap())
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("at least 1"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn precision_i16_forces_the_tier() {
    let dir = std::env::temp_dir().join(format!("agatha_cli_p16_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let refs = dir.join("ref.fasta");
    let queries = dir.join("query.fasta");
    std::fs::write(&refs, ">1\nACGTACGTACGTACGT\n>2\nAAAACCCCGGGGTTTT\n").unwrap();
    std::fs::write(&queries, ">1\nACGTACGTACGTACGT\n>2\nAAAACCCCGGGGTTTT\n").unwrap();
    let out_dir = dir.join("out");
    let out = agatha()
        .args(["align", "--precision", "i16", "--verbose"])
        .args(["-o", out_dir.to_str().unwrap()])
        .arg(refs.to_str().unwrap())
        .arg(queries.to_str().unwrap())
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    // Short all-match pairs sit comfortably inside the i16 gate: every
    // task runs the i16 tier, nothing demotes, scores stay exact.
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fill precision: i16=2 i32=0 scalar=0 (demoted=0)"), "stdout: {text}");
    let scores = std::fs::read_to_string(out_dir.join("score.log")).unwrap();
    assert_eq!(scores, "32\n32\n");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn verbose_before_positionals_does_not_swallow_paths() {
    // `--verbose REF.fasta QUERY.fasta` must keep both paths positional
    // (the generic value-taking flag parse used to eat the first one).
    let dir = std::env::temp_dir().join(format!("agatha_cli_vpos_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let refs = dir.join("ref.fasta");
    let queries = dir.join("query.fasta");
    std::fs::write(&refs, ">1\nACGTACGT\n").unwrap();
    std::fs::write(&queries, ">1\nACGTACGT\n").unwrap();
    let out = agatha()
        .args(["align", "--verbose"])
        .arg(refs.to_str().unwrap())
        .arg(queries.to_str().unwrap())
        .args(["-o", dir.join("out").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fill precision:"), "stdout: {text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn precision_bogus_is_a_usage_error() {
    let dir = std::env::temp_dir().join(format!("agatha_cli_pbad_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let refs = dir.join("ref.fasta");
    let queries = dir.join("query.fasta");
    std::fs::write(&refs, ">1\nACGT\n").unwrap();
    std::fs::write(&queries, ">1\nACGT\n").unwrap();
    let out = agatha()
        .args(["align", "--precision", "bogus"])
        .arg(refs.to_str().unwrap())
        .arg(queries.to_str().unwrap())
        .output()
        .unwrap();
    assert!(!out.status.success(), "--precision bogus must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("'bogus'") && err.contains("--precision") && err.contains("auto|i32|i16"),
        "stderr must carry a usage message: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn precision_i16_on_overflowing_task_demotes_and_stays_correct() {
    // An 800 bp all-match pair exceeds the i16 exactness gate under the
    // default scoring (max reachable score bound 6 × 1602 ≥ 2^13), so a
    // forced `--precision i16` must auto-demote that task to the i32 tier
    // — observable in the --verbose stats — and still score it exactly.
    let dir = std::env::temp_dir().join(format!("agatha_cli_povf_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let refs = dir.join("ref.fasta");
    let queries = dir.join("query.fasta");
    let seq = "ACGT".repeat(200);
    std::fs::write(&refs, format!(">1\n{seq}\n")).unwrap();
    std::fs::write(&queries, format!(">1\n{seq}\n")).unwrap();
    let out_dir = dir.join("out");
    let out = agatha()
        .args(["align", "--precision", "i16", "--verbose"])
        .args(["-o", out_dir.to_str().unwrap()])
        .arg(refs.to_str().unwrap())
        .arg(queries.to_str().unwrap())
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fill precision: i16=0 i32=1 scalar=0 (demoted=1)"), "stdout: {text}");
    let scores = std::fs::read_to_string(out_dir.join("score.log")).unwrap();
    assert_eq!(scores, "1600\n", "800 matches at +2 each");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn precision_rejected_for_baseline_engines() {
    let out = agatha()
        .args(["demo", "--reads", "4", "--engine", "saloba", "--precision", "i16"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "--precision must not be silently ignored by baselines");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("agatha engine"), "stderr: {err}");
}

#[test]
fn block_geometry_is_forceable_and_bit_identical() {
    // `--block 8` and `--block 16` must both be accepted and score
    // identically (and identically to the adaptive default): geometry is
    // a tiling choice, never a numerics choice.
    let dir = std::env::temp_dir().join(format!("agatha_cli_blk_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let refs = dir.join("ref.fasta");
    let queries = dir.join("query.fasta");
    let mut rf = String::new();
    let mut qf = String::new();
    for i in 0..6 {
        rf.push_str(&format!(">r{i}\n{}\n", "ACGTTGCAACGTTGCA".repeat(i % 4 + 1)));
        qf.push_str(&format!(">q{i}\n{}\n", "ACGTAGCAACGTTGCA".repeat(i % 4 + 1)));
    }
    std::fs::write(&refs, rf).unwrap();
    std::fs::write(&queries, qf).unwrap();
    let run = |block: &str, out: &str| {
        let out_dir = dir.join(out);
        let st = agatha()
            .args(["align", "-w", "100", "--block", block, "--verbose"])
            .args(["-o", out_dir.to_str().unwrap()])
            .arg(refs.to_str().unwrap())
            .arg(queries.to_str().unwrap())
            .output()
            .unwrap();
        assert!(st.status.success(), "stderr: {}", String::from_utf8_lossy(&st.stderr));
        let text = String::from_utf8_lossy(&st.stdout).to_string();
        (std::fs::read_to_string(out_dir.join("score.log")).unwrap(), text)
    };
    let (narrow, narrow_text) = run("8", "b8");
    let (wide, wide_text) = run("16", "b16");
    let (auto, _) = run("auto", "auto");
    assert_eq!(narrow, wide, "scores must be bit-identical across geometries");
    assert_eq!(narrow, auto, "adaptive geometry must not change scores");
    assert_eq!(narrow.lines().count(), 6);
    // The --verbose geometry line reflects the forced tiling.
    assert!(narrow_text.contains("block geometry: b8=6 b16=0"), "stdout: {narrow_text}");
    assert!(wide_text.contains("block geometry: b8=0 b16=6"), "stdout: {wide_text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn block_bogus_is_a_usage_error() {
    let dir = std::env::temp_dir().join(format!("agatha_cli_bbad_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let refs = dir.join("ref.fasta");
    let queries = dir.join("query.fasta");
    std::fs::write(&refs, ">1\nACGT\n").unwrap();
    std::fs::write(&queries, ">1\nACGT\n").unwrap();
    let out = agatha()
        .args(["align", "--block", "12"])
        .arg(refs.to_str().unwrap())
        .arg(queries.to_str().unwrap())
        .output()
        .unwrap();
    assert!(!out.status.success(), "--block 12 must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("'12'") && err.contains("--block") && err.contains("auto|8|16"),
        "stderr must carry a usage message: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn block_rejected_for_baseline_engines() {
    let out = agatha()
        .args(["demo", "--reads", "4", "--engine", "saloba", "--block", "16"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "--block must not be silently ignored by baselines");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("agatha engine"), "stderr: {err}");
}

#[test]
fn backend_is_forceable_and_bit_identical() {
    // Every named backend (clamped to what the CPU supports) and the auto
    // default must score identically: the backend is an implementation
    // choice, never a numerics choice. `--backend portable` is exact on
    // every machine, so its --verbose line is asserted exactly.
    let dir = std::env::temp_dir().join(format!("agatha_cli_bk_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let refs = dir.join("ref.fasta");
    let queries = dir.join("query.fasta");
    let mut rf = String::new();
    let mut qf = String::new();
    for i in 0..6 {
        rf.push_str(&format!(">r{i}\n{}\n", "ACGTTGCAACGTTGCA".repeat(i % 4 + 1)));
        qf.push_str(&format!(">q{i}\n{}\n", "ACGTAGCAACGTTGCA".repeat(i % 4 + 1)));
    }
    std::fs::write(&refs, rf).unwrap();
    std::fs::write(&queries, qf).unwrap();
    let run = |backend: &str, out: &str| {
        let out_dir = dir.join(out);
        let st = agatha()
            .args(["align", "-w", "100", "--backend", backend, "--verbose"])
            .args(["-o", out_dir.to_str().unwrap()])
            .arg(refs.to_str().unwrap())
            .arg(queries.to_str().unwrap())
            .output()
            .unwrap();
        assert!(st.status.success(), "stderr: {}", String::from_utf8_lossy(&st.stderr));
        let text = String::from_utf8_lossy(&st.stdout).to_string();
        (std::fs::read_to_string(out_dir.join("score.log")).unwrap(), text)
    };
    let (reference, portable_text) = run("portable", "portable");
    assert_eq!(reference.lines().count(), 6);
    assert!(
        portable_text.contains("fill backend: avx512=0 avx2=0 sse41=0 portable=6"),
        "stdout: {portable_text}"
    );
    for backend in ["auto", "avx512", "avx2", "sse41"] {
        let (scores, _) = run(backend, backend);
        assert_eq!(scores, reference, "scores must be bit-identical under --backend {backend}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn backend_bogus_is_a_usage_error() {
    let dir = std::env::temp_dir().join(format!("agatha_cli_bkbad_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let refs = dir.join("ref.fasta");
    let queries = dir.join("query.fasta");
    std::fs::write(&refs, ">1\nACGT\n").unwrap();
    std::fs::write(&queries, ">1\nACGT\n").unwrap();
    let out = agatha()
        .args(["align", "--backend", "neon"])
        .arg(refs.to_str().unwrap())
        .arg(queries.to_str().unwrap())
        .output()
        .unwrap();
    assert!(!out.status.success(), "--backend neon must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("'neon'")
            && err.contains("--backend")
            && err.contains("auto|avx512|avx2|sse41|portable"),
        "stderr must carry a usage message: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn backend_rejected_for_baseline_engines() {
    let out = agatha()
        .args(["demo", "--reads", "4", "--engine", "saloba", "--backend", "portable"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "--backend must not be silently ignored by baselines");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("agatha engine"), "stderr: {err}");
}

#[test]
fn env_backend_default_applies_and_flag_wins() {
    let dir = std::env::temp_dir().join(format!("agatha_cli_ebk_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let refs = dir.join("ref.fasta");
    let queries = dir.join("query.fasta");
    std::fs::write(&refs, ">1\nACGTACGT\n").unwrap();
    std::fs::write(&queries, ">1\nACGTACGT\n").unwrap();
    // AGATHA_BACKEND supplies the process default…
    let out = agatha()
        .args(["demo", "--reads", "4", "--verbose"])
        .args(["-o", dir.to_str().unwrap()])
        .env("AGATHA_BACKEND", "portable")
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("fill backend: avx512=0 avx2=0 sse41=0 portable=4"),
        "env default must apply: {text}"
    );
    // …and an explicit --backend portable wins over an env auto.
    let out = agatha()
        .args(["demo", "--reads", "4", "--verbose", "--backend", "portable"])
        .args(["-o", dir.to_str().unwrap()])
        .env("AGATHA_BACKEND", "auto")
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("fill backend: avx512=0 avx2=0 sse41=0 portable=4"),
        "flag must win over the env default: {text}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn garbage_env_overrides_fail_loudly_naming_the_variable() {
    // An unrecognized AGATHA_* value must abort the run with a message
    // naming the variable — never a silent fall-through to the default.
    for (var, value) in [
        ("AGATHA_PRECISION", "fast"),
        ("AGATHA_BLOCK", "12"),
        ("AGATHA_BACKEND", "neon"),
        ("AGATHA_PREFETCH", "junk"),
    ] {
        let out = agatha().args(["demo", "--reads", "2"]).env(var, value).output().unwrap();
        assert!(!out.status.success(), "{var}={value} must not run with the default");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains(var) && err.contains(&format!("'{value}'")),
            "{var}: stderr must name the variable and the value: {err}"
        );
    }
}

#[test]
fn zero_reads_is_an_error() {
    // `--reads 0` used to be silently clamped to 1.
    let out = agatha().args(["demo", "--reads", "0"]).output().unwrap();
    assert!(!out.status.success(), "--reads 0 must not be clamped to 1");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--reads") && err.contains("at least 1"), "stderr: {err}");
}

#[test]
fn zero_chunk_is_an_error() {
    // `--chunk 0` used to mean "whole batch in one chunk"; like `--gpus 0`
    // it is now an explicit usage error.
    let dir = std::env::temp_dir().join(format!("agatha_cli_c0_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let refs = dir.join("ref.fasta");
    let queries = dir.join("query.fasta");
    std::fs::write(&refs, ">1\nACGT\n").unwrap();
    std::fs::write(&queries, ">1\nACGT\n").unwrap();
    let out = agatha()
        .args(["align", "--chunk", "0"])
        .arg(refs.to_str().unwrap())
        .arg(queries.to_str().unwrap())
        .output()
        .unwrap();
    assert!(!out.status.success(), "--chunk 0 must be a usage error");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--chunk") && err.contains("at least 1"), "stderr: {err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_zero_knobs_are_usage_errors() {
    for (flag, value) in
        [("--window-ms", "0"), ("--max-queue", "0"), ("--max-batch", "0"), ("--deadline-ms", "0")]
    {
        let out = agatha().args(["serve", flag, value]).output().unwrap();
        assert!(!out.status.success(), "{flag} 0 must be a usage error");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(flag) && err.contains("at least 1"), "{flag}: stderr: {err}");
    }
}

#[test]
fn invalid_scoring_flags_are_usage_errors() {
    // `Scoring::new` panics on invalid parameters; the CLI must instead
    // surface the validation error as a usage error (non-zero exit plus a
    // message naming the constraint). `serve` hits scoring_from_args before
    // binding anything, so it exercises the path without file setup.
    for (flag, value, needle) in [
        ("-a", "0", "match_score"),
        ("-b", "-1", "mismatch"),
        ("-r", "-1", "gap_extend"),
        ("-q", "-2", "gap_open"),
    ] {
        let out = agatha().args(["serve", flag, value]).output().unwrap();
        assert!(!out.status.success(), "{flag} {value} must be a usage error, not a panic");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains(needle) && err.contains("agatha:") && !err.contains("panicked"),
            "{flag} {value}: stderr: {err}"
        );
    }

    // The align subcommand goes through the same validation.
    let dir = std::env::temp_dir().join(format!("agatha_cli_sc0_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let refs = dir.join("ref.fasta");
    let queries = dir.join("query.fasta");
    std::fs::write(&refs, ">1\nACGT\n").unwrap();
    std::fs::write(&queries, ">1\nACGT\n").unwrap();
    let out = agatha()
        .args(["align", "-a", "0"])
        .arg(refs.to_str().unwrap())
        .arg(queries.to_str().unwrap())
        .output()
        .unwrap();
    assert!(!out.status.success(), "-a 0 must fail on align too");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("match_score") && !err.contains("panicked"), "stderr: {err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scenarios_subcommand_lists_the_registry() {
    let out = agatha().arg("scenarios").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["dna-short", "dna-long", "protein-blosum62", "ont-accuracy"] {
        assert!(text.contains(name), "missing scenario {name}: {text}");
    }
    assert!(text.contains("blosum62"), "matrix model name shown: {text}");
    assert!(text.contains("i16 wavefront"), "gate expectation shown: {text}");

    // `--names` is the scripting form the CI matrix iterates: bare names,
    // one per line, nothing else.
    let out = agatha().args(["scenarios", "--names"]).output().unwrap();
    assert!(out.status.success());
    let names: Vec<&str> = std::str::from_utf8(&out.stdout).unwrap().lines().collect();
    assert!(names.contains(&"protein-blosum62"), "{names:?}");
    assert!(names.len() >= 4, "{names:?}");
    assert!(names.iter().all(|n| !n.contains(' ')), "bare names only: {names:?}");

    // The registry also feeds the help text.
    let out = agatha().arg("help").output().unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("--scenario"), "help lists the flag: {text}");
    assert!(text.contains("protein-blosum62"), "help lists registered scenarios: {text}");
}

#[test]
fn scenario_conflicts_and_unknown_names_are_usage_errors() {
    let out = agatha()
        .args(["demo", "--scenario", "dna-short", "--reads", "2", "-a", "3"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "-a with --scenario must not be silently ignored");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("conflicts") && err.contains("dna-short"), "stderr: {err}");

    let out = agatha()
        .args(["demo", "--scenario", "dna-short", "--tech", "ont", "--reads", "2"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "--tech with --scenario must conflict");
    assert!(String::from_utf8_lossy(&out.stderr).contains("conflicts"));

    let out = agatha().args(["demo", "--scenario", "no-such", "--reads", "2"]).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("unknown scenario 'no-such'") && err.contains("protein-blosum62"),
        "error lists registered names: {err}"
    );
}

#[test]
fn protein_scenario_aligns_fasta_end_to_end() {
    // Under `--scenario protein-blosum62` the FASTA input packs as 8-bit
    // BLOSUM62 residue codes: four W/W matches at +11 each score 44 (the
    // DNA packer would have mangled W into N).
    let dir = std::env::temp_dir().join(format!("agatha_cli_prot_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let refs = dir.join("ref.fasta");
    let queries = dir.join("query.fasta");
    std::fs::write(&refs, ">1\nWWWW\n>2\nARNDARND\n").unwrap();
    std::fs::write(&queries, ">1\nWWWW\n>2\nARNDARND\n").unwrap();
    let out_dir = dir.join("out");
    let out = agatha()
        .args(["align", "--scenario", "protein-blosum62"])
        .args(["-o", out_dir.to_str().unwrap()])
        .arg(refs.to_str().unwrap())
        .arg(queries.to_str().unwrap())
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let scores = std::fs::read_to_string(out_dir.join("score.log")).unwrap();
    // A/A=4 R/R=5 N/N=6 D/D=6 twice = 42.
    assert_eq!(scores, "44\n42\n");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn demo_runs_a_registered_scenario_workload() {
    let dir = std::env::temp_dir().join(format!("agatha_cli_dscn_{}", std::process::id()));
    let out = agatha()
        .args(["demo", "--scenario", "protein-blosum62", "--reads", "5"])
        .args(["-o", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("protein-blosum62 scenario"), "stdout: {text}");
    let scores = std::fs::read_to_string(dir.join("score.log")).unwrap();
    assert_eq!(scores.lines().count(), 5);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn env_scenario_default_applies_and_flags_win() {
    // AGATHA_SCENARIO supplies the default workload…
    let dir = std::env::temp_dir().join(format!("agatha_cli_escn_{}", std::process::id()));
    let out = agatha()
        .args(["demo", "--reads", "3"])
        .args(["-o", dir.to_str().unwrap()])
        .env("AGATHA_SCENARIO", "dna-short")
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("dna-short scenario"));

    // …an explicit --scenario overrides it…
    let out = agatha()
        .args(["demo", "--reads", "3", "--scenario", "protein-blosum62"])
        .args(["-o", dir.to_str().unwrap()])
        .env("AGATHA_SCENARIO", "dna-short")
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("protein-blosum62 scenario"));

    // …and an explicit --tech supersedes the environment default instead of
    // conflicting with it.
    let out = agatha()
        .args(["demo", "--reads", "3", "--tech", "hifi"])
        .args(["-o", dir.to_str().unwrap()])
        .env("AGATHA_SCENARIO", "dna-short")
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("HiFi demo"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_aligns_protein_under_a_scenario() {
    use std::io::{BufRead, BufReader, Write};

    let dir = std::env::temp_dir().join(format!("agatha_cli_psrv_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut child = agatha()
        .args(["serve", "--port", "0", "--window-ms", "2", "--threads", "2"])
        .args(["--scenario", "protein-blosum62"])
        .args(["-o", dir.to_str().unwrap()])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let mut child_out = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    child_out.read_line(&mut line).unwrap();
    let addr = line.trim().rsplit(' ').next().expect("address in startup line").to_string();

    let sock = std::net::TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(sock.try_clone().unwrap());
    let mut sock = sock;
    let mut roundtrip = |req: &str| {
        sock.write_all(req.as_bytes()).unwrap();
        sock.write_all(b"\n").unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        resp
    };
    // Four W/W matches at +11 under BLOSUM62 — impossible under the DNA
    // packer, which would collapse W to the ambiguous base.
    let resp = roundtrip("{\"id\":1,\"ref\":\"WWWW\",\"query\":\"WWWW\"}");
    assert!(resp.contains("\"score\":44"), "align response: {resp}");
    assert!(roundtrip("{\"cmd\":\"shutdown\"}").contains("shutting-down"));

    let t0 = std::time::Instant::now();
    loop {
        if child.try_wait().unwrap().is_some() {
            break;
        }
        if t0.elapsed() > std::time::Duration::from_secs(30) {
            child.kill().ok();
            panic!("serve did not exit after shutdown request");
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_end_to_end_over_the_socket() {
    use std::io::{BufRead, BufReader, Write};

    let dir = std::env::temp_dir().join(format!("agatha_cli_serve_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut child = agatha()
        .args(["serve", "--port", "0", "--window-ms", "2", "--threads", "2"])
        .args(["-o", dir.to_str().unwrap()])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();

    // First stdout line announces the bound address.
    let mut child_out = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    child_out.read_line(&mut line).unwrap();
    let addr = line.trim().rsplit(' ').next().expect("address in startup line").to_string();
    assert!(line.contains("listening on"), "startup line: {line}");

    // Drive the daemon over a raw socket: ping, one alignment, shutdown.
    let sock = std::net::TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(sock.try_clone().unwrap());
    let mut sock = sock;
    let mut roundtrip = |req: &str| {
        sock.write_all(req.as_bytes()).unwrap();
        sock.write_all(b"\n").unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        resp
    };
    assert!(roundtrip("{\"cmd\":\"ping\"}").contains("\"status\":\"ok\""));
    // 16 matches at the default +2 each.
    let resp = roundtrip("{\"id\":7,\"ref\":\"ACGTACGTACGTACGT\",\"query\":\"ACGTACGTACGTACGT\"}");
    assert!(resp.contains("\"score\":32"), "align response: {resp}");
    assert!(resp.contains("\"id\":7"), "align response: {resp}");
    assert!(roundtrip("{\"cmd\":\"stats\"}").contains("\"completed\":1"));
    assert!(roundtrip("{\"cmd\":\"shutdown\"}").contains("shutting-down"));

    // The daemon drains, dumps stats, and exits on its own; watchdog-kill
    // if it wedges instead of hanging the suite.
    let t0 = std::time::Instant::now();
    let status = loop {
        if let Some(status) = child.try_wait().unwrap() {
            break status;
        }
        if t0.elapsed() > std::time::Duration::from_secs(30) {
            child.kill().ok();
            panic!("serve did not exit after shutdown request");
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    };
    assert!(status.success());
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut child_out, &mut rest).unwrap();
    assert!(rest.contains("completed=1"), "shutdown report: {rest}");
    assert!(rest.contains("latency (µs)"), "shutdown report: {rest}");
    let stats = std::fs::read_to_string(dir.join("serve_stats.json")).unwrap();
    assert!(stats.contains("\"completed\":1"), "stats file: {stats}");
    assert!(stats.contains("\"total_latency\":"), "stats file: {stats}");
    std::fs::remove_dir_all(&dir).ok();
}
