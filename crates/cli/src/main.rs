//! `agatha` — command-line guided sequence alignment, mirroring the AGAThA
//! artifact's `AGAThA.sh` interface (Appendix A.2.6).
//!
//! ```text
//! agatha align [-a M] [-b X] [-q O] [-r E] [-z Z] [-w W] \
//!              [--engine NAME] [--gpus N] [--threads N] [--chunk N] \
//!              [--prefetch N] [--carryover on|off] \
//!              [-o DIR] REF.fasta QUERY.fasta
//! agatha demo  [--tech hifi|clr|ont] [--reads N] [-o DIR]
//! agatha serve [--port N] [--window-ms N] [--max-queue N] [--deadline-ms N]
//! agatha engines
//! agatha scenarios [--names]
//! ```
//!
//! `align` scores each pair `(REF[i], QUERY[i])` and writes `score.log`
//! plus `time.json` (simulated kernel time) into the output directory.
//! With the default `agatha` engine the input files are *streamed*: tasks
//! are read, aligned on a persistent worker pool (one reusable kernel
//! workspace per thread) and released chunk by chunk, so memory stays
//! bounded by `--chunk` regardless of input size. With `--prefetch N`
//! (default on) a reader thread parses up to `N` chunks ahead of kernel
//! execution, and `--carryover` (default on) defers tasks that would seed
//! an underfull trailing warp into the next chunk's packing — results are
//! bit-identical either way.
//!
//! `serve` runs the online alignment daemon of `agatha-serve`: NDJSON
//! requests over a local TCP socket, admission-window batching, bounded
//! queue with 503-style rejections, deadline drops before kernel
//! dispatch, and a latency-histogram stats dump on shutdown (SIGTERM,
//! SIGINT, or a `{"cmd":"shutdown"}` request).

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::Ordering;

use std::sync::{Arc, Mutex};

use agatha_align::{BlockDim, FillPrecision, FillTier, Scoring, Task};
use agatha_baselines::{run_baseline, Baseline};
use agatha_core::options::default_prefetch_depth;
use agatha_core::{AgathaConfig, Pipeline, StreamOptions};
use agatha_datasets::{generate, scenarios, DatasetSpec, Scenario, Tech, SCENARIOS};
use agatha_gpu_sim::GpuSpec;
use agatha_io::{open_fasta_pairs_model, write_score_log, write_time_json, Args};
use agatha_serve::{termination_flag, ServeConfig};

/// Default `--chunk`: tasks held in memory at once when streaming.
const DEFAULT_CHUNK: usize = 4096;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first().cloned() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    // `--verbose` / `--names` are switches: without declaring them,
    // `--verbose REF.fasta` would swallow the first input path as the
    // flag's value.
    let args = Args::parse_with_switches(argv.into_iter().skip(1), &["verbose", "names"]);
    let result = match command.as_str() {
        "align" => cmd_align(&args),
        "demo" => cmd_demo(&args),
        "serve" => cmd_serve(&args),
        "engines" => {
            cmd_engines();
            Ok(())
        }
        "scenarios" => {
            cmd_scenarios(&args);
            Ok(())
        }
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("agatha: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  agatha align [options] REF.fasta QUERY.fasta   score sequence pairs
  agatha demo  [options]                         run on a synthetic dataset
  agatha serve [options]                         run the online alignment daemon
  agatha engines                                 list available engines
  agatha scenarios [--names]                     list registered scenarios

alignment options (AGAThA.sh compatible):
  -a N     match score            (default 2)
  -b N     mismatch penalty       (default 4)
  -q N     gap open penalty       (default 4)
  -r N     gap extension penalty  (default 2)
  -z N     termination threshold  (default 400)
  -w N     band width             (default 400)

common options:
  --scenario S    score under a registered scenario's model instead of the
                  -a/-b/-q/-r flags (which then conflict; -z/-w still
                  override the scenario's guides). `demo --scenario` also
                  generates the scenario's workload. Defaults to the
                  AGATHA_SCENARIO environment variable when set.
  --engine NAME   agatha (default) or a baseline (see `agatha engines`)
  --gpus N        simulate N GPUs (agatha engine only, default 1)
  --threads N     host worker threads (default: all cores)
  --chunk N       streaming chunk size in tasks (align + agatha engine
                  only, default 4096, must be at least 1)
  --prefetch N    streaming prefetch depth (align/serve + agatha engine
                  only): a reader thread parses up to N chunks ahead of
                  kernel execution; 0 parses inline between chunks.
                  Defaults to the AGATHA_PREFETCH environment variable,
                  else 2
  --carryover C   cross-chunk warp packing (align + agatha engine only):
                  on (default) defers tasks that would seed an underfull
                  trailing warp into the next chunk's largest-first fill
                  (flushed at end of stream); off packs every chunk alone.
                  Scores and stats are bit-identical either way
  --precision P   host block-fill lane precision (agatha engine only):
                  auto | i32 | i16. auto/i16 run the 16-bit wavefront on
                  every task whose scores provably fit i16 and demote the
                  rest to i32 — results are bit-identical across tiers
  --block B       host block geometry (agatha engine only): auto | 8 | 16.
                  auto widens to 16x16 blocks (16 i16 lanes per diagonal)
                  on tasks where the wider tile amortises its staging cost;
                  results are bit-identical across geometries
  --backend K     host wavefront backend (agatha engine only): auto |
                  avx512 | avx2 | sse41 | portable. auto runs the best
                  implementation the CPU supports; forcing a level the CPU
                  lacks clamps down to the detected one. Overrides the
                  AGATHA_BACKEND environment default; results are
                  bit-identical across backends
  --verbose       print per-task fill-precision tier, geometry and
                  backend counts
  -o DIR          output directory (default ./output)
  --tech T        demo technology: hifi | clr | ont (default clr)
  --reads N       demo task count (default 160)

serve options (plus the alignment and common options above):
  --port N        TCP port on 127.0.0.1 (default 0 = ephemeral; the bound
                  address is printed on startup)
  --window-ms N   admission window: how long the first request of a batch
                  may wait for co-batched company (default 5)
  --max-batch N   largest batch dispatched to the engine (default 1024)
  --max-queue N   admission queue bound; offers beyond it are answered
                  with an immediate 503-style rejection (default 4096)
  --deadline-ms N server-side default deadline; requests that overstay it
                  in the queue are dropped before kernel dispatch
                  (default: none — requests wait forever)";

/// [`USAGE`] plus the registered `--scenario` values. The scenario list is
/// iterated from the registry so a newly declared scenario appears in the
/// help with no edit here.
fn usage() -> String {
    let names: Vec<&str> = SCENARIOS.iter().map(|s| s.name).collect();
    format!("{USAGE}\n\nregistered scenarios (--scenario): {}", names.join(", "))
}

/// The scenario selected by `--scenario` (or the `AGATHA_SCENARIO`
/// environment default), if any.
fn scenario_from_args(args: &Args) -> Result<Option<&'static Scenario>, String> {
    let name = match args.get("scenario").filter(|s| !s.is_empty()) {
        Some(n) => n,
        None => match agatha_core::options::default_scenario() {
            Some(n) => n,
            None => return Ok(None),
        },
    };
    match scenarios::find(name) {
        Some(s) => Ok(Some(s)),
        None => {
            let known: Vec<&str> = SCENARIOS.iter().map(|s| s.name).collect();
            Err(format!("unknown scenario '{name}' (registered: {})", known.join(", ")))
        }
    }
}

/// Scoring from the CLI flags, plus the scenario that supplied it (if any).
///
/// With `--scenario`, the scenario's preset carries the score model; the
/// fixed-model substitution flags `-a/-b/-q/-r` then conflict (they would
/// be silently ignored) while the guide flags `-z/-w` still override. All
/// parameters go through [`Scoring::try_new`]-style validation so invalid
/// values (`-a 0`, negative penalties) surface as usage errors instead of
/// panics.
fn scoring_from_args(args: &Args) -> Result<(Scoring, Option<&'static Scenario>), String> {
    let scenario = scenario_from_args(args)?;
    let scoring = match scenario {
        Some(s) => {
            for flag in ["a", "b", "q", "r"] {
                if args.has(flag) {
                    return Err(format!(
                        "-{flag} conflicts with --scenario {}: the scenario's score model \
                         defines the substitution scores (drop -{flag} or the --scenario)",
                        s.name
                    ));
                }
            }
            let mut sc = (s.scoring)();
            sc = sc.with_zdrop(args.get_num_checked("z", sc.zdrop)?);
            sc = sc.with_band(args.get_num_checked("w", sc.band_width)?);
            sc
        }
        None => Scoring::try_new(
            args.get_num_checked("a", 2)?,
            args.get_num_checked("b", 4)?,
            args.get_num_checked("q", 4)?,
            args.get_num_checked("r", 2)?,
            args.get_num_checked("z", 400)?,
            args.get_num_checked("w", 400)?,
        )
        .map_err(|e| format!("invalid scoring parameters (-a/-b/-q/-r/-z/-w): {e}"))?,
    };
    scoring.validate().map_err(|e| format!("invalid scoring parameters (-z/-w): {e}"))?;
    Ok((scoring, scenario))
}

/// Numeric knobs shared by `align` and `demo`.
struct HostOpts {
    gpus: usize,
    threads: usize,
    chunk: usize,
    /// `--precision` when given explicitly (also forces the wavefront fill
    /// on); `None` keeps the build/environment default.
    precision: Option<FillPrecision>,
    /// `--block` when given explicitly; `None` keeps the build/environment
    /// default (adaptive per-task geometry).
    block: Option<BlockDim>,
    /// `--backend` when given explicitly; `None` keeps the environment
    /// default (`AGATHA_BACKEND`, else best detected).
    backend: Option<agatha_align::simd::BackendChoice>,
    /// Streaming prefetch depth: chunks the reader thread may parse ahead
    /// of kernel execution; 0 parses inline. Defaults to the
    /// `AGATHA_PREFETCH` environment override.
    prefetch: usize,
    /// Whether an explicit `--prefetch` was given (baselines reject it).
    prefetch_explicit: bool,
    /// Cross-chunk carry-over warp packing for the streaming path.
    carry: bool,
    /// Whether an explicit `--carryover` was given (baselines reject it).
    carry_explicit: bool,
    verbose: bool,
}

fn host_opts(args: &Args) -> Result<HostOpts, String> {
    let gpus = args.get_num_checked("gpus", 1usize)?;
    if gpus == 0 {
        // Like other malformed numeric flags, `--gpus 0` is an error: the
        // old `.max(1)` clamp silently simulated one GPU while claiming
        // zero.
        return Err("--gpus must be at least 1 (got 0)".to_string());
    }
    let precision = match args.get("precision") {
        None => None,
        Some(v) => Some(
            FillPrecision::parse(v).map_err(|e| format!("{e}\nusage: --precision auto|i32|i16"))?,
        ),
    };
    let block = match args.get("block") {
        None => None,
        Some(v) => Some(BlockDim::parse(v).map_err(|e| format!("{e}\nusage: --block auto|8|16"))?),
    };
    let backend = match args.get("backend") {
        None => None,
        Some(v) => Some(
            agatha_align::simd::BackendChoice::parse(v)
                .map_err(|e| format!("{e}\nusage: --backend auto|avx512|avx2|sse41|portable"))?,
        ),
    };
    let chunk = args.get_num_checked("chunk", DEFAULT_CHUNK)?;
    if chunk == 0 {
        // `--chunk 0` used to mean "whole batch in one chunk", which
        // silently unbounded the streaming path's memory; an explicit
        // large chunk says the same thing honestly.
        return Err("--chunk must be at least 1 (got 0)".to_string());
    }
    // `--prefetch 0` is meaningful (parse inline), so unlike `--chunk`
    // there is no zero check: the flag's value is the queue bound, not a
    // count that must exist.
    let prefetch = args.get_num_checked("prefetch", default_prefetch_depth())?;
    let carry = match args.get("carryover") {
        None => true,
        Some(v) => match v.trim().to_ascii_lowercase().as_str() {
            "on" => true,
            "off" => false,
            other => {
                return Err(format!("invalid --carryover '{other}' (expected on or off)"));
            }
        },
    };
    Ok(HostOpts {
        gpus,
        threads: args.get_num_checked("threads", 0usize)?,
        chunk,
        precision,
        block,
        backend,
        prefetch,
        prefetch_explicit: args.has("prefetch"),
        carry,
        carry_explicit: args.has("carryover"),
        verbose: args.has("verbose"),
    })
}

/// The kernel configuration implied by the host options: full AGAThA, with
/// an explicit `--precision` both selecting the tier and switching the
/// wavefront fill on (requesting a lane width only makes sense for the
/// vectorised fill, whatever the build-time default). `--block` pins the
/// block geometry but leaves the fill mode alone: the tiling is valid (and
/// bit-identical) under every fill implementation.
fn agatha_config(opts: &HostOpts) -> AgathaConfig {
    // `AgathaConfig::agatha()` installs the `AGATHA_BACKEND` environment
    // default process-wide; an explicit `--backend` then overwrites it, so
    // the documented env < flag precedence falls out of the ordering here.
    let mut cfg = AgathaConfig::agatha();
    if let Some(p) = opts.precision {
        cfg = cfg.with_simd_fill(true).with_fill_precision(p);
    }
    if let Some(b) = opts.block {
        cfg = cfg.with_block_dim(b);
    }
    if let Some(k) = opts.backend {
        agatha_align::simd::set_backend_choice(k);
    }
    cfg
}

/// Per-tier task counts for `--verbose`: how many tasks each fill tier
/// served, how many were demoted from a requested i16, and which block
/// geometry each task resolved to.
#[derive(Default)]
struct TierStats {
    counts: [u64; 3],
    demoted: u64,
    /// Tasks resolved to the narrow (8x8) / wide (16x16) geometry.
    blocks: [u64; 2],
    /// Tasks served by each wavefront backend, in the capability-chain
    /// order avx512, avx2, sse41, portable. Resolution is per task (the
    /// same hoisting the kernel does), so under one process-wide choice
    /// every task lands in one bucket — the counts make the effective
    /// backend visible when `--backend`/`AGATHA_BACKEND` got clamped.
    backends: [u64; 4],
}

impl TierStats {
    fn tally(&mut self, cfg: &AgathaConfig, scoring: &Scoring, task: &Task) {
        use agatha_align::simd::WavefrontBackend;
        let (n, m) = (task.ref_len(), task.query_len());
        let tier = cfg.fill_tier_for(n, m, scoring);
        let slot = match tier {
            FillTier::I16 => 0,
            FillTier::I32 => 1,
            FillTier::Scalar => 2,
        };
        self.counts[slot] += 1;
        let wants_i16 =
            cfg.simd_fill && matches!(cfg.fill_precision, FillPrecision::Auto | FillPrecision::I16);
        if wants_i16 && tier != FillTier::I16 {
            self.demoted += 1;
        }
        let b = if cfg.block_dim_for(n, m, scoring) == agatha_align::BLOCK { 0 } else { 1 };
        self.blocks[b] += 1;
        let k = match agatha_align::simd::backend() {
            WavefrontBackend::Avx512 => 0,
            WavefrontBackend::Avx2 => 1,
            WavefrontBackend::Sse41 => 2,
            WavefrontBackend::Portable => 3,
        };
        self.backends[k] += 1;
    }

    fn print(&self) {
        println!(
            "fill precision: i16={} i32={} scalar={} (demoted={})",
            self.counts[0], self.counts[1], self.counts[2], self.demoted
        );
        println!("block geometry: b8={} b16={}", self.blocks[0], self.blocks[1]);
        println!(
            "fill backend: avx512={} avx2={} sse41={} portable={}",
            self.backends[0], self.backends[1], self.backends[2], self.backends[3]
        );
    }
}

fn out_dir(args: &Args) -> Result<PathBuf, String> {
    let dir = PathBuf::from(args.get("o").filter(|s| !s.is_empty()).unwrap_or("output"));
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    Ok(dir)
}

/// Build the AGAThA pipeline for the requested host options.
fn agatha_pipeline(scoring: &Scoring, opts: &HostOpts) -> Pipeline {
    let mut p = Pipeline::new(*scoring, agatha_config(opts)).with_gpus(opts.gpus);
    p.host_threads = opts.threads;
    p
}

/// Reject agatha-only flags for engines that would silently ignore them:
/// the baselines model fixed published hardware setups (and reference
/// host fills), so pretending `--gpus`/`--precision` took effect would
/// misreport what was simulated.
fn check_baseline_gpus(engine: &str, opts: &HostOpts) -> Result<(), String> {
    if opts.gpus > 1 {
        return Err(format!(
            "--gpus {} is only supported by the agatha engine; baseline '{engine}' models \
             a fixed device setup (drop --gpus or use --engine agatha)",
            opts.gpus
        ));
    }
    if opts.precision.is_some() {
        return Err(format!(
            "--precision is only supported by the agatha engine; baseline '{engine}' runs \
             its reference fill (drop --precision or use --engine agatha)"
        ));
    }
    if opts.block.is_some() {
        return Err(format!(
            "--block is only supported by the agatha engine; baseline '{engine}' runs \
             its reference block geometry (drop --block or use --engine agatha)"
        ));
    }
    if opts.backend.is_some() {
        return Err(format!(
            "--backend is only supported by the agatha engine; baseline '{engine}' runs \
             its reference fill (drop --backend or use --engine agatha)"
        ));
    }
    if opts.prefetch_explicit {
        return Err(format!(
            "--prefetch is only supported by the agatha engine; baseline '{engine}' runs \
             whole-batch (drop --prefetch or use --engine agatha)"
        ));
    }
    if opts.carry_explicit {
        return Err(format!(
            "--carryover is only supported by the agatha engine; baseline '{engine}' runs \
             whole-batch (drop --carryover or use --engine agatha)"
        ));
    }
    Ok(())
}

fn run_engine(
    engine: &str,
    tasks: &[Task],
    scoring: &Scoring,
    opts: &HostOpts,
) -> Result<(String, Vec<i32>, f64), String> {
    if engine.eq_ignore_ascii_case("agatha") {
        let rep = agatha_pipeline(scoring, opts).align_batch(tasks);
        let scores = rep.results.iter().map(|r| r.score).collect();
        return Ok(("AGAThA".to_string(), scores, rep.elapsed_ms));
    }
    let which = match engine.to_ascii_lowercase().as_str() {
        "cpu" | "minimap2" => Baseline::CpuSse4,
        "cpu-avx512" => Baseline::CpuAvx512,
        "gasal2" => Baseline::Gasal2Mm2,
        "gasal2-diff" => Baseline::Gasal2Diff,
        "saloba" => Baseline::SalobaMm2,
        "saloba-diff" => Baseline::SalobaDiff,
        "manymap" => Baseline::ManymapMm2,
        "manymap-diff" => Baseline::ManymapDiff,
        "logan" => Baseline::Logan,
        other => return Err(format!("unknown engine '{other}' (try `agatha engines`)")),
    };
    check_baseline_gpus(engine, opts)?;
    let rep = run_baseline(which, tasks, scoring, &GpuSpec::rtx_a6000());
    Ok((rep.name, rep.scores, rep.elapsed_ms))
}

fn cmd_align(args: &Args) -> Result<(), String> {
    let pos = args.positional();
    if pos.len() != 2 {
        return Err(format!("align needs REF.fasta and QUERY.fasta\n{}", usage()));
    }
    let (scoring, _) = scoring_from_args(args)?;
    let engine = args.get("engine").filter(|s| !s.is_empty()).unwrap_or("agatha");
    let opts = host_opts(args)?;
    // Input packs under the score model's alphabet: a matrix scenario reads
    // the FASTA as 8-bit protein residues, the fixed model as 4-bit DNA.
    let pairs =
        open_fasta_pairs_model(&PathBuf::from(&pos[0]), &PathBuf::from(&pos[1]), &scoring.model)?;

    let (name, scores, ms, tasks) = if engine.eq_ignore_ascii_case("agatha") {
        // Streaming path: tasks flow straight from the files into the
        // persistent worker pool, one `--chunk` at a time. With
        // `--prefetch` the parsing runs on a reader thread, so the tier
        // tally lives behind a mutex (uncontended: one reader, locked once
        // per task, and only when `--verbose` asks for it).
        let config = agatha_config(&opts);
        let tiers = Arc::new(Mutex::new(TierStats::default()));
        let mut pool = agatha_pipeline(&scoring, &opts).engine();
        let stream_opts = StreamOptions::new(opts.chunk).carry_over(opts.carry);
        let mut scores = Vec::new();
        let summary = if opts.prefetch > 0 {
            let tally = Arc::clone(&tiers);
            let (verbose, tally_config, tally_scoring) = (opts.verbose, config.clone(), scoring);
            let source = pairs.inspect(move |t| {
                if verbose {
                    if let Ok(task) = t {
                        tally.lock().expect("tier stats lock poisoned").tally(
                            &tally_config,
                            &tally_scoring,
                            task,
                        );
                    }
                }
            });
            let mut run = pool.align_stream_prefetched(source, opts.prefetch, stream_opts);
            for chunk in run.by_ref() {
                scores.extend(chunk.report.results.iter().map(|r| r.score));
            }
            // A parse failure surfaces here as a `StreamError` naming the
            // chunk it interrupted; chunks before it were already scored.
            run.finish_checked().map_err(|e| e.to_string())?
        } else {
            let mut io_err: Option<String> = None;
            let task_iter = pairs
                .map_while(|t| match t {
                    Ok(task) => Some(task),
                    Err(e) => {
                        io_err = Some(e);
                        None
                    }
                })
                .inspect(|task| {
                    if opts.verbose {
                        tiers
                            .lock()
                            .expect("tier stats lock poisoned")
                            .tally(&config, &scoring, task);
                    }
                });
            let mut run = pool.align_stream_with(task_iter, stream_opts);
            for chunk in run.by_ref() {
                scores.extend(chunk.report.results.iter().map(|r| r.score));
            }
            let summary = run.finish();
            if let Some(e) = io_err {
                return Err(e);
            }
            summary
        };
        if opts.verbose {
            tiers.lock().expect("tier stats lock poisoned").print();
        }
        ("AGAThA".to_string(), scores, summary.elapsed_ms, summary.tasks)
    } else {
        // Baselines execute whole-batch reference schedules; collect.
        let tasks: Vec<Task> = pairs.collect::<Result<_, _>>()?;
        let (name, scores, ms) = run_engine(engine, &tasks, &scoring, &opts)?;
        (name, scores, ms, tasks.len())
    };

    let dir = out_dir(args)?;
    write_score_log(&dir.join("score.log"), &scores)?;
    write_time_json(&dir.join("time.json"), &name, ms, tasks)?;
    println!("{name}: {tasks} pairs, simulated kernel time {ms:.3} ms");
    println!("wrote {}/score.log and {}/time.json", dir.display(), dir.display());
    Ok(())
}

fn cmd_demo(args: &Args) -> Result<(), String> {
    let reads = args.get_num_checked("reads", 160usize)?;
    if reads == 0 {
        return Err("--reads must be at least 1 (got 0)".to_string());
    }
    // `--scenario` runs the registered workload: its generator produces the
    // tasks and its preset scores them (with -z/-w overrides). Otherwise
    // `--tech` selects one of the paper's synthetic dataset profiles; an
    // explicit `--tech` also supersedes an AGATHA_SCENARIO environment
    // default (only the explicit flag pair conflicts).
    let explicit_scenario = args.get("scenario").filter(|s| !s.is_empty()).is_some();
    let scenario = scenario_from_args(args)?.filter(|_| explicit_scenario || !args.has("tech"));
    let (demo_name, tasks, scoring) = match scenario {
        Some(s) => {
            if args.has("tech") {
                return Err(format!(
                    "--tech conflicts with --scenario {}: the scenario defines the workload \
                     (drop --tech or the --scenario)",
                    s.name
                ));
            }
            let (scoring, _) = scoring_from_args(args)?;
            (format!("{} scenario", s.name), (s.tasks)(1234, reads), scoring)
        }
        None => {
            let tech = match args.get("tech").unwrap_or("clr").to_ascii_lowercase().as_str() {
                "hifi" => Tech::HiFi,
                "clr" | "" => Tech::Clr,
                "ont" => Tech::Ont,
                other => return Err(format!("unknown tech '{other}'")),
            };
            let spec =
                DatasetSpec { name: format!("{} demo", tech.name()), tech, seed: 1234, reads };
            let ds = generate(&spec);
            (ds.name, ds.tasks, ds.scoring)
        }
    };
    let engine = args.get("engine").filter(|s| !s.is_empty()).unwrap_or("agatha");
    let opts = host_opts(args)?;
    let (name, scores, ms) = run_engine(engine, &tasks, &scoring, &opts)?;
    if opts.verbose && engine.eq_ignore_ascii_case("agatha") {
        let config = agatha_config(&opts);
        let mut tiers = TierStats::default();
        for t in &tasks {
            tiers.tally(&config, &scoring, t);
        }
        tiers.print();
    }

    let dir = out_dir(args)?;
    write_score_log(&dir.join("score.log"), &scores)?;
    write_time_json(&dir.join("time.json"), &name, ms, tasks.len())?;
    println!("{demo_name}: {} tasks via {name}: {ms:.3} ms simulated", tasks.len());
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let (scoring, _) = scoring_from_args(args)?;
    let opts = host_opts(args)?;
    let port: u16 = args.get_num_checked("port", 0u16)?;
    let window_ms: u64 = args.get_num_checked("window-ms", 5u64)?;
    if window_ms == 0 {
        return Err("--window-ms must be at least 1 (got 0)".to_string());
    }
    let max_batch: usize = args.get_num_checked("max-batch", 1024usize)?;
    if max_batch == 0 {
        return Err("--max-batch must be at least 1 (got 0)".to_string());
    }
    let max_queue: usize = args.get_num_checked("max-queue", 4096usize)?;
    if max_queue == 0 {
        return Err("--max-queue must be at least 1 (got 0)".to_string());
    }
    let deadline_ms: Option<u64> = match args.get("deadline-ms") {
        None => None,
        Some(_) => Some(args.get_num_checked("deadline-ms", 0u64)?),
    };
    if deadline_ms == Some(0) {
        return Err("--deadline-ms must be at least 1 (got 0)".to_string());
    }

    let mut cfg = ServeConfig::new(scoring);
    cfg.config = agatha_config(&opts);
    cfg.gpus = opts.gpus;
    cfg.threads = opts.threads;
    cfg.prefetch = opts.prefetch;
    cfg.window_ns = window_ms * 1_000_000;
    cfg.max_batch = max_batch;
    cfg.max_queue = max_queue;
    cfg.default_deadline_ns = deadline_ms.map(|ms| ms * 1_000_000);
    cfg.addr = format!("127.0.0.1:{port}");
    let handle = agatha_serve::serve(cfg)?;

    // The address line is the daemon's contract with scripts (and the CLI
    // tests): flush so a piped stdout sees it before the first request.
    println!("agatha serve: listening on {}", handle.addr());
    std::io::Write::flush(&mut std::io::stdout()).ok();

    // Park until either a termination signal or a client-requested
    // shutdown; both paths drain the queue before the stats dump.
    let term = termination_flag();
    loop {
        if term.load(Ordering::SeqCst) {
            eprintln!("agatha serve: termination signal, draining");
            handle.request_shutdown();
            break;
        }
        if handle.shutdown_requested() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    let snapshot = handle.join();

    print!("{}", snapshot.render_table());
    let dir = out_dir(args)?;
    let stats_path = dir.join("serve_stats.json");
    std::fs::write(&stats_path, format!("{}\n", snapshot.to_json()))
        .map_err(|e| format!("write {}: {e}", stats_path.display()))?;
    println!("wrote {}", stats_path.display());
    Ok(())
}

/// List the scenario registry. `--names` prints bare names (one per line)
/// for scripting — the CI scenario matrix iterates that output, so a newly
/// registered scenario joins the matrix with no workflow edit.
fn cmd_scenarios(args: &Args) {
    if args.has("names") {
        for s in SCENARIOS {
            println!("{}", s.name);
        }
        return;
    }
    for s in SCENARIOS {
        let sc = (s.scoring)();
        let (n, m) = s.gate.typical_dims;
        println!("{}", s.name);
        println!("  {}", s.summary);
        println!(
            "  model {} (scores {:+}..{:+}), gaps {}+{}k, z={} w={}",
            sc.model.name(),
            sc.min_score(),
            sc.max_score(),
            sc.gap_open,
            sc.gap_extend,
            sc.zdrop,
            sc.band_width
        );
        println!(
            "  typical {n}x{m}: i16 wavefront {}; baselines: {}",
            if s.gate.i16_exact { "exact" } else { "demoted to i32" },
            s.baselines.join(", ")
        );
    }
}

fn cmd_engines() {
    println!("agatha            AGAThA (this paper): RW + SD + SR + UB");
    println!("cpu               Minimap2 on 16C/32T SSE4 (reference)");
    println!("cpu-avx512        mm2-fast on 48C/96T AVX512");
    println!("gasal2[-diff]     GASAL2-like inter-query kernel");
    println!("saloba[-diff]     SALoBa-like intra-query kernel");
    println!("manymap[-diff]    Manymap-like anti-diagonal kernel");
    println!("logan             LOGAN-like adaptive-band X-drop");
}
