//! SALoBa-like engine [42]: intra-query parallelism with subwarps and
//! horizontal chunk sweeps, "with the banding heuristic that gives further
//! speedup" (§5.2).
//!
//! * **Diff-Target**: plain banded alignment (no termination, no max
//!   tracking beyond a register) — SALoBa's own algorithm plus banding.
//! * **MM2-Target**: the exact guided algorithm implemented naively on the
//!   same design — identical to the ablation study's "Baseline" (Fig. 9):
//!   per-cell global-memory max updates, termination checked at chunk ends
//!   with full-band run-ahead.
//!
//! Both reuse `agatha-core`'s kernel executor with all §4 techniques
//! disabled, differing only in termination semantics and cost profile.

use agatha_align::{Scoring, Task};
use agatha_core::trace::unit_cost_with;
use agatha_core::{kernel, AgathaConfig};
use agatha_gpu_sim::{host, sched, CostModel, GpuSpec};

use crate::report::EngineReport;

/// Run the SALoBa-like engine. `mm2_target` selects the guided (exact)
/// variant; otherwise the banded Diff-Target variant runs.
pub fn run(tasks: &[Task], scoring: &Scoring, spec: &GpuSpec, mm2_target: bool) -> EngineReport {
    let cfg = AgathaConfig::baseline();
    let cost = CostModel::for_spec(spec);
    let scoring_eff = if mm2_target { *scoring } else { scoring.with_zdrop(Scoring::NO_ZDROP) };

    let runs =
        host::parallel_map(tasks.len(), 0, |i| kernel::run_task(&tasks[i], &scoring_eff, &cfg));

    // Subwarp latencies; tasks fill warps in incoming order, no rejoining.
    let lanes = cfg.subwarp_lanes;
    let task_cycles: Vec<f64> = runs
        .iter()
        .map(|r| {
            r.units.iter().map(|u| unit_cost_with(u, lanes, &cfg, &cost, mm2_target).cycles).sum()
        })
        .collect();

    let warps = agatha_core::bucketing::build_warps(
        &tasks.iter().map(|t| t.antidiags() as u64).collect::<Vec<_>>(),
        cfg.subwarps_per_warp(),
        cfg.tasks_per_subwarp,
        agatha_core::OrderingStrategy::Original,
    );
    let warp_cycles: Vec<f64> = warps
        .iter()
        .map(|w| {
            w.queues
                .iter()
                .map(|q| q.iter().map(|&i| task_cycles[i]).sum::<f64>())
                .fold(0.0, f64::max)
        })
        .collect();

    let makespan = sched::makespan_cycles(&warp_cycles, spec.warp_slots());
    EngineReport {
        name: if mm2_target { "SALoBa (MM2-Target)" } else { "SALoBa (Diff-Target)" }.to_string(),
        scores: runs.iter().map(|r| r.result.score).collect(),
        elapsed_ms: spec.cycles_to_ms(makespan),
        total_cells: runs.iter().map(|r| r.computed_cells()).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agatha_align::guided::guided_align;

    fn mk_tasks() -> Vec<Task> {
        let mut out = Vec::new();
        let mut x = 99u64;
        for id in 0..12 {
            let mut r = String::new();
            let mut q = String::new();
            for k in 0..150 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let c = ['A', 'C', 'G', 'T'][(x >> 33) as usize % 4];
                r.push(c);
                q.push(if k % 23 == 0 { 'A' } else { c });
            }
            out.push(Task::from_strs(id, &r, &q));
        }
        out
    }

    #[test]
    fn mm2_target_is_exact() {
        let s = Scoring::new(2, 4, 4, 2, 40, 16);
        let rep = run(&mk_tasks(), &s, &GpuSpec::rtx_a6000(), true);
        for (t, &score) in mk_tasks().iter().zip(&rep.scores) {
            assert_eq!(score, guided_align(&t.reference, &t.query, &s).score);
        }
    }

    #[test]
    fn diff_target_ignores_zdrop() {
        let s = Scoring::new(2, 4, 4, 2, 40, 16);
        let unbounded = s.with_zdrop(Scoring::NO_ZDROP);
        let rep = run(&mk_tasks(), &s, &GpuSpec::rtx_a6000(), false);
        for (t, &score) in mk_tasks().iter().zip(&rep.scores) {
            assert_eq!(score, guided_align(&t.reference, &t.query, &unbounded).score);
        }
    }

    #[test]
    fn mm2_target_slower_than_diff_target() {
        // The paper's central observation (Fig. 3a): adding exact guiding to
        // the naive design makes it much slower despite computing fewer
        // cells, because of max-tracking traffic.
        let s = Scoring::new(2, 4, 4, 2, 40, 16);
        let diff = run(&mk_tasks(), &s, &GpuSpec::rtx_a6000(), false);
        let mm2 = run(&mk_tasks(), &s, &GpuSpec::rtx_a6000(), true);
        assert!(
            mm2.elapsed_ms > diff.elapsed_ms,
            "MM2-target {} vs Diff-target {}",
            mm2.elapsed_ms,
            diff.elapsed_ms
        );
    }
}
