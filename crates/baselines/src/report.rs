//! Uniform engine interface for the benchmark harnesses.

use agatha_align::{Scoring, Task};
use agatha_gpu_sim::GpuSpec;

/// Output of running one engine over one dataset.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Engine display name (figure row label).
    pub name: String,
    /// Alignment scores in task order. Diff-Target engines may legitimately
    /// differ from the reference here.
    pub scores: Vec<i32>,
    /// Simulated execution time in milliseconds.
    pub elapsed_ms: f64,
    /// Total DP cells the engine computed.
    pub total_cells: u64,
}

impl EngineReport {
    /// Speedup of this engine relative to a reference time.
    pub fn speedup_vs(&self, reference_ms: f64) -> f64 {
        reference_ms / self.elapsed_ms
    }
}

/// Registry of all baseline engines, for sweeping in the harnesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Baseline {
    /// Minimap2 on the default CPU (16C/32T SSE4).
    CpuSse4,
    /// mm2-fast on the stronger CPU (48C/96T AVX512).
    CpuAvx512,
    /// GASAL2's own banded kernel.
    Gasal2Diff,
    /// GASAL2 extended with the exact guiding algorithm.
    Gasal2Mm2,
    /// SALoBa's own banded kernel.
    SalobaDiff,
    /// SALoBa extended with the exact guiding algorithm (the ablation
    /// baseline of Fig. 9).
    SalobaMm2,
    /// Manymap with its original inexact termination.
    ManymapDiff,
    /// Manymap with exact per-anti-diagonal termination.
    ManymapMm2,
    /// LOGAN's X-drop algorithm (Diff-Target only; §5.2).
    Logan,
}

impl Baseline {
    /// All engines, in the order Fig. 8 lists them.
    pub const ALL: [Baseline; 9] = [
        Baseline::CpuSse4,
        Baseline::CpuAvx512,
        Baseline::Gasal2Diff,
        Baseline::Gasal2Mm2,
        Baseline::SalobaDiff,
        Baseline::SalobaMm2,
        Baseline::ManymapDiff,
        Baseline::ManymapMm2,
        Baseline::Logan,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Baseline::CpuSse4 => "Minimap2 (16C32T SSE4)",
            Baseline::CpuAvx512 => "Minimap2 (48C96T AVX512)",
            Baseline::Gasal2Diff => "GASAL2 (Diff-Target)",
            Baseline::Gasal2Mm2 => "GASAL2 (MM2-Target)",
            Baseline::SalobaDiff => "SALoBa (Diff-Target)",
            Baseline::SalobaMm2 => "SALoBa (MM2-Target)",
            Baseline::ManymapDiff => "Manymap (Diff-Target)",
            Baseline::ManymapMm2 => "Manymap (MM2-Target)",
            Baseline::Logan => "LOGAN (Diff-Target)",
        }
    }

    /// Whether this engine claims exact MM2 semantics.
    pub fn is_exact(self) -> bool {
        matches!(
            self,
            Baseline::CpuSse4
                | Baseline::CpuAvx512
                | Baseline::Gasal2Mm2
                | Baseline::SalobaMm2
                | Baseline::ManymapMm2
        )
    }
}

/// Run one baseline engine on a GPU spec (ignored by the CPU engines).
pub fn run_baseline(
    which: Baseline,
    tasks: &[Task],
    scoring: &Scoring,
    spec: &GpuSpec,
) -> EngineReport {
    match which {
        Baseline::CpuSse4 => {
            crate::cpu::run(tasks, scoring, &agatha_gpu_sim::CpuSpec::sse4_16c32t())
        }
        Baseline::CpuAvx512 => {
            crate::cpu::run(tasks, scoring, &agatha_gpu_sim::CpuSpec::avx512_48c96t())
        }
        Baseline::Gasal2Diff => crate::gasal2::run(tasks, scoring, spec, false),
        Baseline::Gasal2Mm2 => crate::gasal2::run(tasks, scoring, spec, true),
        Baseline::SalobaDiff => crate::saloba::run(tasks, scoring, spec, false),
        Baseline::SalobaMm2 => crate::saloba::run(tasks, scoring, spec, true),
        Baseline::ManymapDiff => crate::manymap::run(tasks, scoring, spec, false),
        Baseline::ManymapMm2 => crate::manymap::run(tasks, scoring, spec, true),
        Baseline::Logan => crate::logan::run(tasks, scoring, spec),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_unique() {
        let names: std::collections::HashSet<&str> =
            Baseline::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), Baseline::ALL.len());
    }

    #[test]
    fn exactness_flags() {
        assert!(Baseline::SalobaMm2.is_exact());
        assert!(!Baseline::SalobaDiff.is_exact());
        assert!(!Baseline::Logan.is_exact());
        assert!(!Baseline::ManymapDiff.is_exact());
        assert!(Baseline::ManymapMm2.is_exact());
    }
}
