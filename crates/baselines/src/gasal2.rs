//! GASAL2-like engine [1]: input packing + **inter-query parallelism** —
//! each GPU thread processes one whole alignment sequentially, 32 alignments
//! per warp ("we use the banding kernel in GASAL2", §5.2).
//!
//! The design has no intra-task parallelism: a lane walks its banded table
//! row by row. That keeps the kernel simple, but (a) per-lane sequential
//! processing is slower per cell, (b) warp latency is the maximum over 32
//! independent alignments, and (c) the MM2-Target extension must update the
//! per-anti-diagonal maxima in global memory *uncoalesced* — each lane
//! works on a different task, so neighbouring lanes never share a buffer.
//! This is why GASAL2 (MM2-Target) ends up slower than the CPU in Fig. 8.

use agatha_align::banded::banded_align;
use agatha_align::guided::guided_align;
use agatha_align::{GuidedResult, Scoring, Task};
use agatha_gpu_sim::{host, sched, CostModel, GpuSpec, WARP_LANES};

use crate::report::EngineReport;

/// Global transactions per cell for the MM2-Target per-cell max update
/// (uncoalesced: one transaction per lane access).
const MM2_ANTI_TX_PER_CELL: f64 = 0.25;
/// Global transactions per cell for sequence loads and boundary values
/// (well coalesced within a lane's row walk).
const BASE_TX_PER_CELL: f64 = 1.0 / 16.0;

/// Run the GASAL2-like engine.
pub fn run(tasks: &[Task], scoring: &Scoring, spec: &GpuSpec, mm2_target: bool) -> EngineReport {
    let cost = CostModel::for_spec(spec);

    let results: Vec<GuidedResult> = host::parallel_map(tasks.len(), 0, |i| {
        if mm2_target {
            guided_align(&tasks[i].reference, &tasks[i].query, scoring)
        } else {
            banded_align(&tasks[i].reference, &tasks[i].query, scoring)
        }
    });

    // Per-lane latency: sequential cell processing plus global traffic.
    let lane_cycles: Vec<f64> = results
        .iter()
        .map(|r| {
            let cells = r.cells;
            let tx_per_cell =
                BASE_TX_PER_CELL + if mm2_target { MM2_ANTI_TX_PER_CELL } else { 0.0 };
            cost.sequential_cycles(cells, (cells as f64 * tx_per_cell) as u64)
        })
        .collect();

    // 32 alignments per warp, incoming order; warp latency = slowest lane.
    let warp_cycles: Vec<f64> =
        lane_cycles.chunks(WARP_LANES).map(|c| c.iter().copied().fold(0.0, f64::max)).collect();

    let makespan = sched::makespan_cycles(&warp_cycles, spec.warp_slots());
    EngineReport {
        name: if mm2_target { "GASAL2 (MM2-Target)" } else { "GASAL2 (Diff-Target)" }.to_string(),
        scores: results.iter().map(|r| r.score).collect(),
        elapsed_ms: spec.cycles_to_ms(makespan),
        total_cells: results.iter().map(|r| r.cells).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_tasks(n: usize) -> Vec<Task> {
        let mut out = Vec::new();
        let mut x = 5u64;
        for id in 0..n {
            let mut r = String::new();
            let mut q = String::new();
            for k in 0..120 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let c = ['A', 'C', 'G', 'T'][(x >> 33) as usize % 4];
                r.push(c);
                q.push(if k % 17 == 0 { 'G' } else { c });
            }
            out.push(Task::from_strs(id as u32, &r, &q));
        }
        out
    }

    #[test]
    fn mm2_target_exact() {
        let s = Scoring::new(2, 4, 4, 2, 40, 12);
        let tasks = mk_tasks(8);
        let rep = run(&tasks, &s, &GpuSpec::rtx_a6000(), true);
        for (t, &score) in tasks.iter().zip(&rep.scores) {
            assert_eq!(score, guided_align(&t.reference, &t.query, &s).score);
        }
    }

    #[test]
    fn mm2_extension_is_much_slower() {
        // Uncoalesced per-cell max updates dominate: the MM2 extension costs
        // far more than the banded original (Fig. 3a / Fig. 8).
        let s = Scoring::new(2, 4, 4, 2, Scoring::NO_ZDROP, 12);
        let tasks = mk_tasks(64);
        let diff = run(&tasks, &s, &GpuSpec::rtx_a6000(), false);
        let mm2 = run(&tasks, &s, &GpuSpec::rtx_a6000(), true);
        assert!(mm2.elapsed_ms > 3.0 * diff.elapsed_ms);
    }

    #[test]
    fn warp_latency_is_max_of_lanes() {
        // One long task among 31 short ones: warp as slow as the long one.
        let s = Scoring::new(2, 4, 4, 2, Scoring::NO_ZDROP, 12);
        let mut tasks = mk_tasks(31);
        let long = {
            let base = mk_tasks(1).remove(0);
            let r = base.reference.to_string_seq().repeat(8);
            Task::from_strs(31, &r, &r)
        };
        tasks.push(long);
        let mixed = run(&tasks, &s, &GpuSpec::rtx_a6000(), false);
        let only_long = run(&tasks[31..], &s, &GpuSpec::rtx_a6000(), false);
        assert!(mixed.elapsed_ms >= only_long.elapsed_ms * 0.99);
    }
}
