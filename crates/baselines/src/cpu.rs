//! The Minimap2 CPU baseline: the exact guided algorithm executed by the
//! scalar reference, with a calibrated multithreaded throughput model
//! (§5.1's 16C/32T SSE4 machine and §5.8's 48C/96T AVX512 machine).
//!
//! Reads are distributed across CPU threads; at tens of thousands of reads
//! per batch the balance is near-perfect, so the time model is simply total
//! reference cells over aggregate throughput.

use agatha_align::guided::{guided_align_ws, GuidedWorkspace};
use agatha_align::{Scoring, Task};
use agatha_gpu_sim::{host, CpuSpec};

use crate::report::EngineReport;

/// Run the CPU engine.
pub fn run(tasks: &[Task], scoring: &Scoring, cpu: &CpuSpec) -> EngineReport {
    // Thread-local workspaces avoid per-task allocation, like ksw2's
    // reusable buffers.
    let results = host::parallel_map(tasks.len(), 0, {
        |i| {
            thread_local! {
                static WS: std::cell::RefCell<GuidedWorkspace> =
                    std::cell::RefCell::new(GuidedWorkspace::new());
            }
            WS.with(|ws| {
                guided_align_ws(&tasks[i].reference, &tasks[i].query, scoring, &mut ws.borrow_mut())
            })
        }
    });
    let total_cells: u64 = results.iter().map(|r| r.cells).sum();
    EngineReport {
        name: cpu.name.to_string(),
        scores: results.iter().map(|r| r.score).collect(),
        elapsed_ms: cpu.ms_for_cells(total_cells),
        total_cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agatha_align::guided::guided_align;

    fn tasks() -> Vec<Task> {
        vec![
            Task::from_strs(0, "ACGTACGTACGT", "ACGTACGTACGT"),
            Task::from_strs(1, "ACGTACGTACGT", "ACGTTCGTACGA"),
            Task::from_strs(2, "AAAACCCCGGGG", "AAAAGGGG"),
        ]
    }

    #[test]
    fn scores_match_reference() {
        let s = Scoring::new(2, 4, 4, 2, 100, 8);
        let rep = run(&tasks(), &s, &CpuSpec::sse4_16c32t());
        for (t, &score) in tasks().iter().zip(&rep.scores) {
            assert_eq!(score, guided_align(&t.reference, &t.query, &s).score);
        }
        assert!(rep.elapsed_ms > 0.0);
    }

    #[test]
    fn stronger_cpu_faster_same_scores() {
        let s = Scoring::new(2, 4, 4, 2, 100, 8);
        let a = run(&tasks(), &s, &CpuSpec::sse4_16c32t());
        let b = run(&tasks(), &s, &CpuSpec::avx512_48c96t());
        assert_eq!(a.scores, b.scores);
        assert!(b.elapsed_ms < a.elapsed_ms);
        assert_eq!(a.total_cells, b.total_cells);
    }
}
