//! LOGAN-like engine [57]: X-drop alignment with an adaptive band and
//! linear gap scores, processed one anti-diagonal at a time by a full warp.
//!
//! LOGAN "implements its own guiding algorithm. It adjusts the band width
//! during score table filling after calculating each anti-diagonal" (§5.2).
//! It is evaluated Diff-Target only, since its algorithm is not Minimap2's.
//! Its linear gap score "is less expensive in both computation and memory"
//! (§5.3), modelled as a reduced per-cell cost.

use agatha_align::xdrop::{xdrop_align, XDropParams};
use agatha_align::{Scoring, Task};
use agatha_gpu_sim::{host, sched, CostModel, GpuSpec, WARP_LANES};

use crate::report::EngineReport;

/// Linear-gap DP computes one running score instead of H/E/F — fewer
/// registers, fewer max operations.
const LINEAR_GAP_CELL_FACTOR: f64 = 0.6;

/// Run the LOGAN-like engine.
pub fn run(tasks: &[Task], scoring: &Scoring, spec: &GpuSpec) -> EngineReport {
    let cost = CostModel::for_spec(spec);
    let params = XDropParams::from_scoring(scoring);

    let results = host::parallel_map(tasks.len(), 0, |i| {
        xdrop_align(&tasks[i].reference, &tasks[i].query, scoring, &params)
    });

    let warp_cycles: Vec<f64> = results
        .iter()
        .map(|r| {
            let diags = r.antidiags as f64;
            let rounds = (r.cells as f64 / WARP_LANES as f64).max(diags);
            let compute =
                rounds * WARP_LANES as f64 * cost.effective_cell_cycles() * LINEAR_GAP_CELL_FACTOR;
            let sync = diags * cost.sync_cycles;
            // Band trimming per diagonal: one reduction, no global traffic.
            let trim = diags * cost.reduce_cycles;
            let exchange = diags * 6.0 * cost.sync_cycles; // boundary shuffles per diagonal
            let seq = diags / 4.0 * cost.global_tx_cycles;
            compute + sync + exchange + trim + seq
        })
        .collect();

    let makespan = sched::makespan_cycles(&warp_cycles, spec.warp_slots());
    EngineReport {
        name: "LOGAN (Diff-Target)".to_string(),
        scores: results.iter().map(|r| r.score).collect(),
        elapsed_ms: spec.cycles_to_ms(makespan),
        total_cells: results.iter().map(|r| r.cells).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_tasks(n: usize, junk_tail: bool) -> Vec<Task> {
        let mut out = Vec::new();
        let mut x = 23u64;
        for id in 0..n {
            let mut r = String::new();
            let mut q = String::new();
            for k in 0..160 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let c = ['A', 'C', 'G', 'T'][(x >> 33) as usize % 4];
                r.push(c);
                q.push(if k % 31 == 0 { 'T' } else { c });
            }
            if junk_tail {
                r.push_str(&"G".repeat(200));
                q.push_str(&"C".repeat(200));
            }
            out.push(Task::from_strs(id as u32, &r, &q));
        }
        out
    }

    #[test]
    fn produces_scores_and_time() {
        let s = Scoring::new(2, 4, 4, 2, 100, 32);
        let rep = run(&mk_tasks(8, false), &s, &GpuSpec::rtx_a6000());
        assert_eq!(rep.scores.len(), 8);
        assert!(rep.elapsed_ms > 0.0);
        assert!(rep.scores.iter().all(|&sc| sc > 0));
    }

    #[test]
    fn adaptive_band_computes_fewer_cells_on_junk() {
        // The adaptive band prunes the junk tail; the full-band engines
        // without termination would compute all of it.
        let s = Scoring::new(2, 4, 4, 2, 30, 32);
        let with_junk = run(&mk_tasks(4, true), &s, &GpuSpec::rtx_a6000());
        let clean = run(&mk_tasks(4, false), &s, &GpuSpec::rtx_a6000());
        // Junk adds 200 bases each side but X-drop stops within ~Z of it.
        let per_task_extra = (with_junk.total_cells as f64 - clean.total_cells as f64) / 4.0;
        assert!(
            per_task_extra < 20_000.0,
            "adaptive band should prune most of the junk, extra {per_task_extra}"
        );
    }
}
