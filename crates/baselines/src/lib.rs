//! # agatha-baselines
//!
//! Every comparator engine from the paper's evaluation (§5.2):
//!
//! | Engine | Design | Diff-Target | MM2-Target |
//! |---|---|---|---|
//! | Minimap2 CPU | multithreaded scalar/SIMD guided DP | — | exact (reference) |
//! | GASAL2 | inter-query parallelism + input packing, banded kernel | banded, no termination | guided, per-cell global max updates |
//! | SALoBa | intra-query parallelism, horizontal chunks + banding | banded, no termination | guided, naive (= ablation baseline) |
//! | Manymap | whole-warp anti-diagonal sweeps | *inexact* termination | exact per-diagonal termination |
//! | LOGAN | X-drop with adaptive band, linear gaps | own algorithm | — |
//!
//! Diff-Target is each library's original algorithm; MM2-Target is the
//! faithful extension "to provide output equal to the reference algorithm"
//! (§5.2). Every MM2-Target engine is verified to produce results identical
//! to the scalar reference; Manymap-Diff is verified to *differ* on inputs
//! that expose its inexact termination.

pub mod cpu;
pub mod gasal2;
pub mod logan;
pub mod manymap;
pub mod report;
pub mod saloba;

pub use report::{run_baseline, Baseline, EngineReport};
