//! Manymap-like engine [12]: a GPU port of Minimap2's own kernel that fills
//! the score table **one whole anti-diagonal at a time** with a full warp
//! per alignment.
//!
//! Because every anti-diagonal completes before the next starts, the
//! termination condition can be evaluated after each one — there is *no*
//! run-ahead, which is why Manymap is "the only version that benefits from
//! implementing the guided alignment algorithm" (§5.3). The price is poor
//! lane utilisation (the band rarely fills 32 lanes' worth of work) and a
//! synchronisation per anti-diagonal.
//!
//! * **MM2-Target**: exact per-anti-diagonal Z-drop (verified against the
//!   reference).
//! * **Diff-Target**: the original's *inexact interpretation* of the
//!   termination condition: the score drop is compared against `Z` alone
//!   (no gap-length adjustment, no position constraint) and only every 8th
//!   anti-diagonal — faster to check, but can terminate differently.

use agatha_align::guided::{diag_range, guided_align};
use agatha_align::result::{GuidedResult, MaxCell, StopReason};
use agatha_align::{PackedSeq, Scoring, Task, NEG_INF};
use agatha_gpu_sim::{host, sched, CostModel, GpuSpec, WARP_LANES};

use crate::report::EngineReport;

/// How often the Diff-Target variant evaluates its (approximate)
/// termination condition.
const DIFF_CHECK_INTERVAL: i64 = 8;

/// Run the Manymap-like engine.
pub fn run(tasks: &[Task], scoring: &Scoring, spec: &GpuSpec, mm2_target: bool) -> EngineReport {
    let cost = CostModel::for_spec(spec);

    let results: Vec<GuidedResult> = host::parallel_map(tasks.len(), 0, |i| {
        if mm2_target {
            guided_align(&tasks[i].reference, &tasks[i].query, scoring)
        } else {
            inexact_guided(&tasks[i].reference, &tasks[i].query, scoring)
        }
    });

    // One warp per alignment: per anti-diagonal, the warp computes
    // ceil(cells/32) lockstep rounds of 32 cells plus a synchronisation and
    // a termination check.
    let warp_cycles: Vec<f64> = results
        .iter()
        .map(|r| {
            let diags = r.antidiags as f64;
            let rounds = (r.cells as f64 / WARP_LANES as f64).max(diags); // >= 1 round per diag
            let compute = rounds * WARP_LANES as f64 * cost.effective_cell_cycles();
            let sync = diags * cost.sync_cycles;
            // boundary shuffles per diagonal
            let exchange = diags * 6.0 * cost.sync_cycles;
            // MM2-Target keeps the GMB in a register and checks with one
            // warp reduction per anti-diagonal; the original (Diff-Target)
            // check reads its max buffer from global memory every 8th
            // anti-diagonal. Combined with the exact variant's slightly
            // earlier termination, guiding *helps* Manymap (§5.3).
            let term = if mm2_target {
                diags * cost.reduce_cycles
            } else {
                diags / DIFF_CHECK_INTERVAL as f64 * (cost.reduce_cycles + cost.global_tx_cycles)
            };
            let seq = diags / 4.0 * cost.global_tx_cycles; // packed loads every 8 diagonals, 2 streams
            compute + sync + exchange + term + seq
        })
        .collect();

    let makespan = sched::makespan_cycles(&warp_cycles, spec.warp_slots());
    EngineReport {
        name: if mm2_target { "Manymap (MM2-Target)" } else { "Manymap (Diff-Target)" }.to_string(),
        scores: results.iter().map(|r| r.score).collect(),
        elapsed_ms: spec.cycles_to_ms(makespan),
        total_cells: results.iter().map(|r| r.cells).sum(),
    }
}

/// The Diff-Target scalar: banded affine DP, approximate drop condition.
pub fn inexact_guided(reference: &PackedSeq, query: &PackedSeq, scoring: &Scoring) -> GuidedResult {
    // Reuse the exact per-diagonal machinery but with the approximate check;
    // the easiest faithful implementation recomputes diagonals directly.
    let n = reference.len() as i64;
    let m = query.len() as i64;
    if n == 0 || m == 0 {
        return GuidedResult {
            score: 0,
            max: MaxCell::ORIGIN,
            qend_score: None,
            stop: StopReason::Completed,
            antidiags: 0,
            cells: 0,
        };
    }
    let w = if scoring.banded() { scoring.band_width as i64 } else { n + m };
    let oe = scoring.gap_open + scoring.gap_extend;
    let ext = scoring.gap_extend;
    let rc = reference.to_codes();
    let qc = query.to_codes();

    let nu = n as usize;
    let mut h = [vec![NEG_INF; nu], vec![NEG_INF; nu], vec![NEG_INF; nu]];
    let mut e = [vec![NEG_INF; nu], vec![NEG_INF; nu]];
    let mut f = [vec![NEG_INF; nu], vec![NEG_INF; nu]];

    let mut global = MaxCell::ORIGIN;
    let mut qend: Option<i32> = None;
    let mut cells = 0u64;
    let mut stop = StopReason::Completed;
    let mut last = -1i64;

    for c in 0..(n + m - 1) {
        let Some((lo, hi)) = diag_range(c, n, m, w) else {
            stop = StopReason::BandExhausted { antidiag: c as u32 };
            break;
        };
        let (hs, hp, hp2) = ((c % 3) as usize, ((c + 2) % 3) as usize, ((c + 1) % 3) as usize);
        let (efs, efp) = ((c % 2) as usize, ((c + 1) % 2) as usize);
        let mut local = MaxCell { score: NEG_INF, i: -1, j: -1 };
        for i in lo..=hi {
            let j = c - i;
            let iu = i as usize;
            let up_h = if i == 0 { scoring.border(j as i32) } else { h[hp][iu - 1] };
            let up_e = if i == 0 { NEG_INF } else { e[efp][iu - 1] };
            let left_h = if j == 0 { scoring.border(i as i32) } else { h[hp][iu] };
            let left_f = if j == 0 { NEG_INF } else { f[efp][iu] };
            let dg = if i == 0 && j == 0 {
                0
            } else if i == 0 {
                scoring.border((j - 1) as i32)
            } else if j == 0 {
                scoring.border((i - 1) as i32)
            } else {
                h[hp2][iu - 1]
            };
            let ev = (up_h - oe).max(up_e - ext);
            let fv = (left_h - oe).max(left_f - ext);
            let sub = scoring.substitution(rc[iu], qc[j as usize]);
            let hv = ev.max(fv).max(dg.saturating_add(sub));
            h[hs][iu] = hv;
            e[efs][iu] = ev;
            f[efs][iu] = fv;
            if hv > local.score {
                local = MaxCell { score: hv, i: i as i32, j: j as i32 };
            }
            if j == m - 1 {
                qend = Some(qend.map_or(hv, |q| q.max(hv)));
            }
            cells += 1;
        }
        if lo > 0 {
            h[hs][(lo - 1) as usize] = NEG_INF;
            e[efs][(lo - 1) as usize] = NEG_INF;
            f[efs][(lo - 1) as usize] = NEG_INF;
        }
        if hi + 1 < n {
            h[hs][(hi + 1) as usize] = NEG_INF;
            e[efs][(hi + 1) as usize] = NEG_INF;
            f[efs][(hi + 1) as usize] = NEG_INF;
        }
        last = c;
        // The inexact check: plain score drop, sampled every few diagonals.
        if scoring.zdrop_enabled()
            && c % DIFF_CHECK_INTERVAL == DIFF_CHECK_INTERVAL - 1
            && (global.score as i64 - local.score as i64) > scoring.zdrop as i64
        {
            stop = StopReason::ZDrop { antidiag: c as u32 };
            break;
        }
        global.fold(local);
    }
    GuidedResult {
        score: global.score,
        max: global,
        qend_score: qend,
        stop,
        antidiags: (last + 1) as u32,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> PackedSeq {
        PackedSeq::from_str_seq(s)
    }

    fn mk_tasks(n: usize) -> Vec<Task> {
        let mut out = Vec::new();
        let mut x = 17u64;
        for id in 0..n {
            let mut r = String::new();
            let mut q = String::new();
            for k in 0..140 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let c = ['A', 'C', 'G', 'T'][(x >> 33) as usize % 4];
                r.push(c);
                q.push(if k % 29 == 0 { 'C' } else { c });
            }
            out.push(Task::from_strs(id as u32, &r, &q));
        }
        out
    }

    #[test]
    fn mm2_target_exact() {
        let s = Scoring::new(2, 4, 4, 2, 40, 12);
        let tasks = mk_tasks(6);
        let rep = run(&tasks, &s, &GpuSpec::rtx_a6000(), true);
        for (t, &score) in tasks.iter().zip(&rep.scores) {
            assert_eq!(score, guided_align(&t.reference, &t.query, &s).score);
        }
    }

    #[test]
    fn diff_target_differs_on_gap_heavy_input() {
        // A long single gap: the exact condition tolerates it (the drop is
        // explained by |Δi - Δj| · β), the inexact one terminates.
        let pref = "ACGTACGTACGTACGTACGTACGTACGT";
        let r = format!("{pref}{}", "ACGT".repeat(12));
        let q = format!("{pref}{}{}", "T".repeat(16), "ACGT".repeat(12));
        let s = Scoring::new(2, 4, 4, 2, 30, Scoring::NO_BAND);
        let exact = guided_align(&seq(&r), &seq(&q), &s);
        let inexact = inexact_guided(&seq(&r), &seq(&q), &s);
        assert!(
            !exact.stop.z_dropped(),
            "exact Z-drop must tolerate the long gap: {:?}",
            exact.stop
        );
        assert!(
            inexact.stop.z_dropped(),
            "inexact X-drop-style check must fire: {:?}",
            inexact.stop
        );
        assert!(inexact.score < exact.score);
    }

    #[test]
    fn diff_target_agrees_on_easy_input() {
        let s = Scoring::new(2, 4, 4, 2, 100, 16);
        for t in mk_tasks(4) {
            let exact = guided_align(&t.reference, &t.query, &s);
            let inexact = inexact_guided(&t.reference, &t.query, &s);
            assert_eq!(exact.score, inexact.score, "task {}", t.id);
        }
    }

    #[test]
    fn no_runahead_means_cells_equal_reference() {
        let s = Scoring::new(2, 4, 4, 2, 40, 12);
        let tasks = mk_tasks(6);
        let rep = run(&tasks, &s, &GpuSpec::rtx_a6000(), true);
        let expect: u64 =
            tasks.iter().map(|t| guided_align(&t.reference, &t.query, &s).cells).sum();
        assert_eq!(rep.total_cells, expect);
    }
}
