//! Shared harness utilities for the figure/table benchmarks.
//!
//! Every bench target regenerates one table or figure of the paper: it
//! loads the nine synthetic datasets (size controlled by `AGATHA_READS`),
//! runs the relevant engines, and prints rows in the paper's layout so the
//! output of `cargo bench` can be compared side by side with the published
//! figures (recorded in `EXPERIMENTS.md`).

use agatha_datasets::{generate, Dataset, DatasetSpec};

/// Load the nine paper datasets at the configured benchmark scale.
pub fn nine_datasets() -> Vec<Dataset> {
    let reads = DatasetSpec::default_reads();
    DatasetSpec::nine_paper_datasets(reads).iter().map(generate).collect()
}

/// Geometric mean (the paper's aggregate for speedups).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Render one formatted row: a label column then fixed-width numeric cells.
pub fn row(label: &str, cells: &[String]) -> String {
    let mut s = format!("{label:<28}");
    for c in cells {
        s.push_str(&format!("{c:>12}"));
    }
    s
}

/// Header line for the nine datasets plus a geometric-mean column.
pub fn dataset_header(datasets: &[Dataset]) -> String {
    let mut cells: Vec<String> = datasets.iter().map(|d| d.name.replace(' ', "")).collect();
    cells.push("GeoMean".to_string());
    row("", &cells)
}

/// Print a standard figure banner.
pub fn banner(figure: &str, what: &str) {
    println!();
    println!("==== {figure}: {what} ====");
    println!(
        "(synthetic datasets, {} tasks each; simulated device time — compare shapes, \
         not absolute ms)",
        DatasetSpec::default_reads()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[5.0]) - 5.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn row_widths() {
        let r = row("x", &["1".into(), "2".into()]);
        assert!(r.starts_with("x"));
        assert!(r.len() > 28);
    }
}
