//! Latency-injection harness for the online alignment service: boots the
//! in-process daemon, estimates its closed-loop capacity, then drives
//! open-loop paced load at fractions of that capacity — under, at, and
//! over saturation — and reports sustained req/sec plus queue/total
//! latency percentiles (p50/p99/p999) per load point.
//!
//! Each request carries a deadline, so the over-saturation point shows the
//! SLO machinery doing its job: the bounded queue answers 503 immediately
//! and overstaying requests are dropped before kernel dispatch instead of
//! dragging the tail. Writes `BENCH_serve.json` so CI tracks the serving
//! trajectory run over run.
//!
//! Run with `cargo run --release -p agatha-bench --bin serve_bench`;
//! pass `quick` to run only the under-saturation point (the CI smoke
//! configuration).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use agatha_align::Scoring;
use agatha_serve::protocol::align_request_line;
use agatha_serve::{parse_response, serve, MetricsSnapshot, ServeConfig, Status};

const SEED: u64 = 1234;
const WINDOW_MS: u64 = 2;
/// Per-request SLO: generous next to the under-saturation tail, tight next
/// to an overloaded queue — so drops appear exactly when load exceeds
/// capacity.
const DEADLINE_MS: u64 = 100;
/// Queue bound: small enough that over-saturation hits 503s within the
/// bench's burst instead of silently absorbing it.
const MAX_QUEUE: usize = 512;

fn scoring() -> Scoring {
    Scoring::new(2, 4, 4, 2, 60, 16)
}

/// Fixed-seed sequence-pair corpus (LCG bases with periodic mismatches).
fn pairs(count: usize, len_base: usize) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut x = SEED | 1;
    for _ in 0..count {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let len = len_base + (x >> 33) as usize % len_base;
        let mut r = String::new();
        let mut q = String::new();
        for k in 0..len {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let c = ['A', 'C', 'G', 'T'][(x >> 33) as usize % 4];
            r.push(c);
            q.push(if k % 17 == 0 { 'G' } else { c });
        }
        out.push((r, q));
    }
    out
}

fn daemon_config() -> ServeConfig {
    let mut cfg = ServeConfig::new(scoring());
    cfg.window_ns = WINDOW_MS * 1_000_000;
    cfg.max_queue = MAX_QUEUE;
    cfg
}

fn connect(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect to daemon");
    stream.set_nodelay(true).ok();
    let reader = BufReader::new(stream.try_clone().expect("clone socket"));
    (stream, reader)
}

/// Closed-loop capacity estimate: one pipelined burst, fresh daemon.
fn estimate_capacity(corpus: &[(String, String)]) -> f64 {
    const BURST: usize = 192;
    let handle = serve(daemon_config()).expect("daemon starts");
    let (mut writer, mut reader) = connect(handle.addr());
    let t0 = Instant::now();
    for i in 0..BURST {
        let (r, q) = &corpus[i % corpus.len()];
        let line = align_request_line(i as i64, r, q, None);
        writer.write_all(line.as_bytes()).expect("send");
        writer.write_all(b"\n").expect("send");
    }
    let mut line = String::new();
    for _ in 0..BURST {
        line.clear();
        assert!(reader.read_line(&mut line).expect("recv") > 0, "daemon hung up mid-burst");
    }
    let secs = t0.elapsed().as_secs_f64().max(1e-6);
    handle.shutdown();
    BURST as f64 / secs
}

struct PointResult {
    label: &'static str,
    offered_rps: f64,
    sent: usize,
    completed: u64,
    dropped: u64,
    rejected: u64,
    sustained_rps: f64,
    snap: MetricsSnapshot,
}

/// One open-loop load point: a paced sender, a counting receiver, and the
/// server's own histogram snapshot at drain.
fn run_point(
    corpus: &[(String, String)],
    label: &'static str,
    offered_rps: f64,
    sent: usize,
) -> PointResult {
    let handle = serve(daemon_config()).expect("daemon starts");
    let (mut writer, mut reader) = connect(handle.addr());
    let receiver = std::thread::spawn(move || {
        let (mut completed, mut dropped, mut rejected) = (0u64, 0u64, 0u64);
        let mut line = String::new();
        for _ in 0..sent {
            line.clear();
            if reader.read_line(&mut line).expect("recv") == 0 {
                break;
            }
            match parse_response(line.trim_end()).map(|r| r.status) {
                Ok(Status::Ok) => completed += 1,
                Ok(Status::Dropped) => dropped += 1,
                Ok(Status::Rejected) => rejected += 1,
                _ => {}
            }
        }
        (completed, dropped, rejected)
    });

    // Open loop: send on the paced schedule regardless of responses —
    // that is what makes queueing (and the tail) visible.
    let interval = Duration::from_secs_f64(1.0 / offered_rps);
    let start = Instant::now();
    for i in 0..sent {
        let due = start + interval.mul_f64(i as f64);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let (r, q) = &corpus[i % corpus.len()];
        let line = align_request_line(i as i64, r, q, Some(DEADLINE_MS));
        writer.write_all(line.as_bytes()).expect("send");
        writer.write_all(b"\n").expect("send");
    }
    let (completed, dropped, rejected) = receiver.join().expect("receiver panicked");
    let wall = start.elapsed().as_secs_f64().max(1e-6);
    let snap = handle.shutdown();
    PointResult {
        label,
        offered_rps,
        sent,
        completed,
        dropped,
        rejected,
        sustained_rps: completed as f64 / wall,
        snap,
    }
}

fn point_json(p: &PointResult) -> String {
    format!(
        "    {{\n      \"label\": \"{}\",\n      \"offered_rps\": {:.1},\n      \
         \"sent\": {},\n      \"completed\": {},\n      \"dropped_deadline\": {},\n      \
         \"rejected\": {},\n      \"sustained_rps\": {:.1},\n      \
         \"queue_p50_us\": {:.1},\n      \"queue_p99_us\": {:.1},\n      \
         \"queue_p999_us\": {:.1},\n      \"total_p50_us\": {:.1},\n      \
         \"total_p99_us\": {:.1},\n      \"total_p999_us\": {:.1}\n    }}",
        p.label,
        p.offered_rps,
        p.sent,
        p.completed,
        p.dropped,
        p.rejected,
        p.sustained_rps,
        p.snap.queue.p50_us(),
        p.snap.queue.p99_us(),
        p.snap.queue.p999_us(),
        p.snap.total.p50_us(),
        p.snap.total.p99_us(),
        p.snap.total.p999_us(),
    )
}

fn main() {
    let quick = std::env::args().nth(1).is_some_and(|a| a == "quick");
    let corpus = pairs(96, 150);

    let capacity = estimate_capacity(&corpus).max(50.0);
    let multipliers: &[(&'static str, f64)] = if quick {
        &[("under", 0.5)]
    } else {
        &[("under", 0.5), ("saturation", 1.0), ("over", 2.0)]
    };

    let base_requests = if quick { 400 } else { 1200 };
    let mut points = Vec::new();
    for &(label, mult) in multipliers {
        let offered = capacity * mult;
        // Bound each point's wall clock at ~4s even when capacity is low.
        let sent = base_requests.min((offered * 4.0) as usize).max(50);
        points.push(run_point(&corpus, label, offered, sent));
    }

    let body: Vec<String> = points.iter().map(point_json).collect();
    // The kernel configuration the daemon actually served with: block
    // geometry (`AGATHA_BLOCK` override, else the adaptive default), fill
    // precision (`AGATHA_PRECISION`), and the resolved wavefront backend
    // (`AGATHA_BACKEND`, clamped to what the CPU supports). Serving numbers
    // from different kernel configs are not comparable, same as
    // `fill_backend` in the pipeline bench. Resolve the backend *after*
    // building a config: `AgathaConfig` installs the env-default backend
    // choice on first construction.
    let daemon_cfg = daemon_config();
    let block_dim = daemon_cfg.config.block_dim.name();
    let default_precision = daemon_cfg.config.fill_precision.name();
    let fill_backend = agatha_align::simd::backend().name();
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"seed\": {SEED},\n  \
         \"window_ms\": {WINDOW_MS},\n  \"deadline_ms\": {DEADLINE_MS},\n  \
         \"max_queue\": {MAX_QUEUE},\n  \"block_dim\": \"{block_dim}\",\n  \
         \"default_precision\": \"{default_precision}\",\n  \
         \"fill_backend\": \"{fill_backend}\",\n  \
         \"capacity_est_rps\": {:.1},\n  \"load_points\": [\n{}\n  ]\n}}\n",
        capacity,
        body.join(",\n"),
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    print!("{json}");
}
