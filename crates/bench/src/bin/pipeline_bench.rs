//! Host-throughput harness for the batch pipeline: measures real wall-time
//! tasks/sec of (a) the whole-batch path, (b) the chunked streaming engine,
//! (c) single-threaded kernel execution with fresh vs reused workspaces,
//! (d) the SIMD (wavefront) vs scalar block fill on the same fixed-seed
//! dataset, (e) the i16 vs i32 wavefront tiers on a fixed-seed short-read
//! workload (the regime whose scores provably fit i16), and (f) the narrow
//! (8×8) vs wide (16×16) block geometry — forced and adaptive — on that
//! same workload, plus (g) the streaming overlap rows: FASTA-file
//! streaming with the parser inline vs on a prefetch reader thread
//! (`stream_prefetch_speedup`) and the simulated-makespan effect of
//! cross-chunk carry-over packing (`carryover_makespan_gain`), both per
//! chunk size {8, 32, 64, 256}. Writes `BENCH_pipeline.json` so CI tracks
//! the perf trajectory run over run.
//!
//! Every fill path is always compiled (the `simd` cargo feature only flips
//! the *default*), so one binary reports the whole scalar/i32/i16 matrix
//! regardless of how it was built; `default_fill` records which mode the
//! build would pick on its own, `default_precision` the process-default
//! precision (the `AGATHA_PRECISION` override), and `fill_backend` which
//! wavefront backend (AVX-512, AVX2, SSE4.1 or portable) this machine
//! resolves — without it, per-tier rows from different machines were not
//! comparable. A forced-backend pair on the wide-geometry i16 workload
//! reports the AVX-512 zmm fill against the AVX2 ymm fill head to head
//! (`avx512_fill_speedup`); on hosts without AVX-512 the force clamps, and
//! `avx512_resolved_backend` records what actually ran so the row is never
//! silently mislabelled.
//!
//! A `"scenarios"` array carries one row per registered workload scenario
//! (tasks/sec at the default config, the i16-gate share, and the declared
//! gate check) — the rows iterate the `agatha-datasets` registry, so a
//! newly declared scenario gets benched with no edit here. With
//! `AGATHA_SCENARIO` set, only that scenario's row runs and the heavy
//! sections are skipped (the CI scenario matrix's smoke mode).
//!
//! Run with `cargo run --release -p agatha-bench --bin pipeline_bench`.

use std::time::Instant;

use agatha_align::{BlockDim, FillPrecision, FillTier, Scoring, Task};
use agatha_core::{kernel::run_task, run_task_ws, AgathaConfig, KernelWorkspace, Pipeline};
use agatha_datasets::{generate, scenarios, DatasetSpec, Tech, SCENARIOS};

const SEED: u64 = 1234;
const READS: usize = 1200;
const CHUNK: usize = 128;
const REPS: usize = 3;
/// Per-scenario row size: enough tasks to time the kernel meaningfully,
/// small enough that the long-read scenarios stay cheap in smoke mode.
const SCENARIO_READS: usize = 48;

/// One JSON row per scenario in `which`: fixed-seed tasks through the
/// default AGAThA config with a reused workspace, plus the share of tasks
/// the i16 exactness gate admits and the registry's declared-gate check.
fn scenario_rows(which: &[&'static scenarios::Scenario]) -> String {
    let cfg = AgathaConfig::agatha();
    let rows: Vec<String> = which
        .iter()
        .map(|s| {
            assert!(s.check_gate(), "{}: registered gate diverges from the derived gate", s.name);
            let sc = (s.scoring)();
            let tasks = (s.tasks)(SEED, SCENARIO_READS);
            // Share of tasks the i16 exactness gate admits, from the gate
            // derivation itself (the build's default fill mode would hide
            // it behind feature flags).
            let i16_tasks = tasks
                .iter()
                .filter(|t| {
                    agatha_align::block::BlockCtx::with_block_dim(
                        t.ref_len(),
                        t.query_len(),
                        &sc,
                        agatha_align::BLOCK,
                    )
                    .i16_exact
                })
                .count();
            let mut ws = KernelWorkspace::new();
            let (secs, sum) = best_of(|| {
                tasks
                    .iter()
                    .map(|t| run_task_ws(&mut ws, t, &sc, &cfg).result.score.unsigned_abs() as u64)
                    .sum()
            });
            format!(
                "    {{\"name\": \"{}\", \"model\": \"{}\", \"tasks\": {}, \
                 \"tasks_per_sec\": {:.1}, \"i16_share\": {:.3}, \"gate_ok\": true, \
                 \"score_checksum\": {sum}}}",
                s.name,
                sc.model.name(),
                tasks.len(),
                tasks.len() as f64 / secs,
                i16_tasks as f64 / tasks.len() as f64,
            )
        })
        .collect();
    format!("  \"scenarios\": [\n{}\n  ]", rows.join(",\n"))
}

/// Best-of-`REPS` wall time, in seconds, of `f`.
fn best_of<F: FnMut() -> u64>(mut f: F) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut checksum = 0;
    for _ in 0..REPS {
        let t0 = Instant::now();
        checksum = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, checksum)
}

fn main() {
    // Smoke mode (the CI scenario matrix): AGATHA_SCENARIO selects one
    // registered scenario; bench only its row and skip the heavy sections.
    if let Some(name) = agatha_core::options::default_scenario() {
        let s = scenarios::find(name).unwrap_or_else(|| {
            let known: Vec<&str> = SCENARIOS.iter().map(|s| s.name).collect();
            panic!("AGATHA_SCENARIO: unknown scenario '{name}' (registered: {})", known.join(", "))
        });
        let json = format!(
            "{{\n  \"bench\": \"pipeline-scenario\",\n  \"seed\": {SEED},\n{}\n}}\n",
            scenario_rows(&[s])
        );
        std::fs::write("BENCH_pipeline.json", &json).expect("write BENCH_pipeline.json");
        print!("{json}");
        return;
    }

    let ds = generate(&DatasetSpec {
        name: "pipeline bench".to_string(),
        tech: Tech::Clr,
        seed: SEED,
        reads: READS,
    });
    let tasks = ds.tasks;
    let pipeline = Pipeline::new(ds.scoring, AgathaConfig::agatha());

    let (whole_s, whole_sum) = best_of(|| {
        let rep = pipeline.align_batch(&tasks);
        rep.results.iter().map(|r| r.score.unsigned_abs() as u64).sum()
    });

    let mut engine = pipeline.engine();
    let (stream_s, stream_sum) = best_of(|| {
        let mut sum = 0u64;
        let mut run = engine.align_stream(tasks.iter().cloned(), CHUNK);
        for chunk in run.by_ref() {
            sum += chunk.report.results.iter().map(|r| r.score.unsigned_abs() as u64).sum::<u64>();
        }
        run.finish();
        sum
    });
    assert_eq!(whole_sum, stream_sum, "streaming must score identically to whole-batch");

    // Kernel-only, single thread: isolates the workspace-reuse effect from
    // threading and simulation. Seed-sized microtasks (8–20 bp, the k-mer
    // hit verification regime), where per-call allocation is a meaningful
    // fraction of the kernel time; for longer tasks the O(n²) cell compute
    // dominates and the reuse gain tends to zero (Amdahl).
    let kernel_tasks: Vec<agatha_align::Task> = (0..20000u64)
        .map(|i| {
            let mut x = SEED.wrapping_add(i * 2654435761) | 1;
            let len = 8 + (i as usize % 13);
            let mut r = String::new();
            let mut q = String::new();
            for k in 0..len {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let c = ['A', 'C', 'G', 'T'][(x >> 33) as usize % 4];
                r.push(c);
                q.push(if k % 23 == 0 { 'T' } else { c });
            }
            agatha_align::Task::from_strs(i as u32, &r, &q)
        })
        .collect();
    let kernel_tasks = &kernel_tasks[..];
    let (fresh_s, fresh_sum) = best_of(|| {
        kernel_tasks.iter().map(|t| run_task(t, &pipeline.scoring, &pipeline.config).blocks).sum()
    });
    let mut ws = KernelWorkspace::new();
    let (reused_s, reused_sum) = best_of(|| {
        kernel_tasks
            .iter()
            .map(|t| run_task_ws(&mut ws, t, &pipeline.scoring, &pipeline.config).blocks)
            .sum()
    });
    assert_eq!(fresh_sum, reused_sum, "workspace reuse must not change the work done");

    // SIMD vs scalar block fill, single thread over the CLR dataset (reads
    // long enough that per-cell compute — not allocation — dominates, the
    // regime the wavefront fill targets). Both runs use one reused
    // workspace so the comparison isolates the fill, and both pin the
    // paper's 8×8 geometry: the adaptive dispatch would widen only the
    // simd side, folding a tiling change into a fill comparison (and
    // breaking the block-count checksum).
    let mut fill_secs = [0.0f64; 2];
    let mut fill_sums = [0u64; 2];
    for (slot, simd) in [(0usize, false), (1usize, true)] {
        let cfg = pipeline.config.clone().with_simd_fill(simd).with_block_dim(BlockDim::B8);
        let mut ws = KernelWorkspace::new();
        let (secs, sum) = best_of(|| {
            tasks.iter().map(|t| run_task_ws(&mut ws, t, &pipeline.scoring, &cfg).blocks).sum()
        });
        fill_secs[slot] = secs;
        fill_sums[slot] = sum;
    }
    assert_eq!(fill_sums[0], fill_sums[1], "simd fill must execute identical work");

    // i16 vs i32 wavefront tier and narrow vs wide block geometry, single
    // thread over a fixed-seed *short-read* workload: ~240 bp reads under a
    // BWA-style preset, the regime where every task passes the i16
    // exactness gate (at both geometries). Same reused-workspace
    // methodology as the simd/scalar pair above. The i32/i16 slots pin the
    // paper's 8×8 geometry so their rows stay comparable to the tracked
    // history; the b16 slot forces the wide 16×16 tile (16 i16 lanes per
    // block diagonal instead of 8) and the auto slot lets the per-task
    // dispatch choose. Checksums sum *scores*, not blocks (block counts are
    // tiling artifacts), so their equality asserts geometry bit-identity.
    let short_scoring = Scoring::preset_bwa();
    let short_tasks: Vec<Task> = (0..1500u64)
        .map(|i| {
            let mut x = SEED.wrapping_add(i.wrapping_mul(0x9E3779B97F4A7C15)) | 1;
            let len = 180 + (i as usize % 120);
            let mut r = String::new();
            let mut q = String::new();
            for k in 0..len {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let c = ['A', 'C', 'G', 'T'][(x >> 33) as usize % 4];
                r.push(c);
                q.push(if k % 17 == 0 { ['T', 'G', 'C', 'A'][(x >> 35) as usize % 4] } else { c });
            }
            Task::from_strs(i as u32, &r, &q)
        })
        .collect();
    let tier_cases: [(FillPrecision, BlockDim, Option<FillTier>); 4] = [
        (FillPrecision::I32, BlockDim::B8, Some(FillTier::I32)),
        (FillPrecision::I16, BlockDim::B8, Some(FillTier::I16)),
        (FillPrecision::I16, BlockDim::B16, Some(FillTier::I16)),
        (FillPrecision::I16, BlockDim::Auto, None),
    ];
    let mut tier_secs = [0.0f64; 4];
    let mut tier_sums = [0u64; 4];
    for (slot, &(precision, block, want)) in tier_cases.iter().enumerate() {
        let cfg = pipeline
            .config
            .clone()
            .with_simd_fill(true)
            .with_fill_precision(precision)
            .with_block_dim(block);
        // Every short-read task must actually resolve to the requested tier
        // or the speedup rows would silently compare the wrong kernels.
        if let Some(want) = want {
            for t in &short_tasks {
                assert_eq!(
                    cfg.fill_tier_for(t.ref_len(), t.query_len(), &short_scoring),
                    want,
                    "short-read workload must stay inside the {} gate at block {}",
                    want.name(),
                    block.name()
                );
            }
        }
        let mut ws = KernelWorkspace::new();
        let (secs, sum) = best_of(|| {
            short_tasks
                .iter()
                .map(|t| {
                    run_task_ws(&mut ws, t, &short_scoring, &cfg).result.score.unsigned_abs() as u64
                })
                .sum()
        });
        tier_secs[slot] = secs;
        tier_sums[slot] = sum;
    }
    assert!(
        tier_sums.iter().all(|&s| s == tier_sums[0]),
        "every (precision × geometry) pair must score bit-identically: {tier_sums:?}"
    );

    // AVX-512 vs AVX2 head to head on the wide-geometry i16 workload (the
    // tier the zmm kernels target): same short-read tasks, same B16+i16
    // config as the b16 slot above, with the process-wide backend forced
    // per slot. The force clamps to the detected backend on hosts missing
    // the requested features, so `avx512_resolved_backend` records what
    // actually ran — a clamped row reports speedup ≈ 1 honestly rather
    // than fabricating a zmm number. Checksums must match the tier slots:
    // backend bit-identity asserted in-bench, on the benched workload.
    use agatha_align::simd::{self, BackendChoice, WavefrontBackend};
    let saved_choice = simd::backend_choice();
    let mut backend_secs = [0.0f64; 2];
    let mut backend_sums = [0u64; 2];
    let mut resolved = [WavefrontBackend::Portable; 2];
    for (slot, forced) in [(0usize, WavefrontBackend::Avx2), (1, WavefrontBackend::Avx512)] {
        simd::set_backend_choice(BackendChoice::Fixed(forced));
        resolved[slot] = simd::backend();
        let cfg = pipeline
            .config
            .clone()
            .with_simd_fill(true)
            .with_fill_precision(FillPrecision::I16)
            .with_block_dim(BlockDim::B16);
        let mut ws = KernelWorkspace::new();
        let (secs, sum) = best_of(|| {
            short_tasks
                .iter()
                .map(|t| {
                    run_task_ws(&mut ws, t, &short_scoring, &cfg).result.score.unsigned_abs() as u64
                })
                .sum()
        });
        backend_secs[slot] = secs;
        backend_sums[slot] = sum;
    }
    simd::set_backend_choice(saved_choice);
    assert!(
        backend_sums.iter().all(|&s| s == tier_sums[0]),
        "forced backends must score bit-identically to the tier slots: \
         {backend_sums:?} vs {}",
        tier_sums[0]
    );

    // Streaming overlap on the short-read workload: round-trip the tasks
    // through real FASTA files, then stream them back per chunk size with
    // the parser inline vs on a prefetch reader thread (depth 2, carry-over
    // on for both) — the `stream_prefetch_speedup` row isolates the
    // parse/kernel overlap, parse cost included in both wall times. The
    // whole-batch reference is file-based too (parse everything, then one
    // `align_batch`) — the collect-then-align program streaming replaces,
    // so `stream_vs_whole_chunk64` compares the same input medium and the
    // same parse work on both sides. The `carryover_makespan_gain` row is
    // deterministic, not wall time: the simulated device makespan of the
    // in-memory stream with carry-over off vs on (prefetch moves wall
    // time, never the simulated schedule). Every (prefetch × carry-over)
    // combination's score checksum is asserted against whole-batch —
    // bit-identity on the benched workload.
    use agatha_core::StreamOptions;
    use agatha_io::{open_fasta_pairs_model, write_fasta, FastaRecord};

    let short_pipeline = Pipeline::new(short_scoring, AgathaConfig::agatha());
    let dir = std::env::temp_dir().join(format!("agatha_bench_stream_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench temp dir");
    let ref_path = dir.join("refs.fasta");
    let query_path = dir.join("queries.fasta");
    let records = |pick: fn(&Task) -> &agatha_align::PackedSeq| -> Vec<FastaRecord> {
        short_tasks
            .iter()
            .map(|t| FastaRecord { name: format!("t{}", t.id), seq: pick(t).clone() })
            .collect()
    };
    write_fasta(&ref_path, &records(|t| &t.reference)).expect("write bench refs");
    write_fasta(&query_path, &records(|t| &t.query)).expect("write bench queries");

    let (whole_short_s, whole_short_sum) = best_of(|| {
        let parsed: Vec<Task> =
            open_fasta_pairs_model(&ref_path, &query_path, &short_scoring.model)
                .expect("open bench fasta")
                .collect::<Result<_, _>>()
                .expect("bench fasta must parse cleanly");
        let rep = short_pipeline.align_batch(&parsed);
        rep.results.iter().map(|r| r.score.unsigned_abs() as u64).sum()
    });

    const STREAM_CHUNKS: [usize; 4] = [8, 32, 64, 256];
    let mut stream_inline_tps = [0.0f64; 4];
    let mut stream_pf_tps = [0.0f64; 4];
    let mut carry_gain = [0.0f64; 4];
    let mut stream_engine = short_pipeline.engine();
    let score_sum = |results: &[agatha_align::GuidedResult]| -> u64 {
        results.iter().map(|r| r.score.unsigned_abs() as u64).sum()
    };
    for (slot, &chunk) in STREAM_CHUNKS.iter().enumerate() {
        let (inline_s, inline_sum) = best_of(|| {
            let pairs = open_fasta_pairs_model(&ref_path, &query_path, &short_scoring.model)
                .expect("open bench fasta");
            let mut io_err = None;
            let iter = pairs.map_while(|t| match t {
                Ok(task) => Some(task),
                Err(e) => {
                    io_err = Some(e);
                    None
                }
            });
            let mut run = stream_engine.align_stream_with(iter, StreamOptions::new(chunk));
            let mut sum = 0u64;
            for c in run.by_ref() {
                sum += score_sum(&c.report.results);
            }
            run.finish();
            assert!(io_err.is_none(), "bench fasta must parse cleanly: {io_err:?}");
            sum
        });
        let (pf_s, pf_sum) = best_of(|| {
            let pairs = open_fasta_pairs_model(&ref_path, &query_path, &short_scoring.model)
                .expect("open bench fasta");
            let mut run =
                stream_engine.align_stream_prefetched(pairs, 2, StreamOptions::new(chunk));
            let mut sum = 0u64;
            for c in run.by_ref() {
                sum += score_sum(&c.report.results);
            }
            run.finish_checked().expect("bench fasta must parse cleanly");
            sum
        });
        // Deterministic in-memory runs close the (prefetch × carry) grid
        // and supply the simulated-makespan pair for the gain row.
        let mut sim = |carry: bool, prefetch: usize| -> (f64, u64) {
            let opts = StreamOptions::new(chunk).carry_over(carry);
            let mut sum = 0u64;
            let summary = if prefetch > 0 {
                let source = short_tasks.clone().into_iter().map(Ok::<Task, String>);
                let mut run = stream_engine.align_stream_prefetched(source, prefetch, opts);
                for c in run.by_ref() {
                    sum += score_sum(&c.report.results);
                }
                run.finish_checked().expect("in-memory source cannot fail")
            } else {
                let mut run = stream_engine.align_stream_with(short_tasks.iter().cloned(), opts);
                for c in run.by_ref() {
                    sum += score_sum(&c.report.results);
                }
                run.finish()
            };
            (summary.elapsed_ms, sum)
        };
        let (plain_ms, plain_sum) = sim(false, 0);
        let (carry_ms, carry_sum) = sim(true, 0);
        let (_, pf_plain_sum) = sim(false, 2);
        for (label, sum) in [
            ("inline stream", inline_sum),
            ("prefetched stream", pf_sum),
            ("carry-over off", plain_sum),
            ("carry-over on", carry_sum),
            ("prefetch + carry-over off", pf_plain_sum),
        ] {
            assert_eq!(
                sum, whole_short_sum,
                "{label} at chunk {chunk} must score identically to whole-batch"
            );
        }
        stream_inline_tps[slot] = short_tasks.len() as f64 / inline_s;
        stream_pf_tps[slot] = short_tasks.len() as f64 / pf_s;
        carry_gain[slot] = plain_ms / carry_ms;
    }
    std::fs::remove_dir_all(&dir).ok();
    let fmt_row = |vals: &[f64], digits: usize| -> String {
        let items: Vec<String> = STREAM_CHUNKS
            .iter()
            .zip(vals)
            .map(|(c, v)| format!("{{\"chunk\": {c}, \"value\": {v:.prec$}}}", prec = digits))
            .collect();
        format!("[{}]", items.join(", "))
    };

    let tps = |secs: f64, n: usize| n as f64 / secs;
    let json = format!(
        "{{\n  \"bench\": \"pipeline\",\n  \"seed\": {SEED},\n  \"tasks\": {},\n  \
         \"chunk\": {CHUNK},\n  \
         \"default_fill\": \"{}\",\n  \
         \"default_precision\": \"{}\",\n  \
         \"block_dim\": \"{}\",\n  \
         \"fill_backend\": \"{}\",\n  \
         \"whole_batch_tasks_per_sec\": {:.1},\n  \
         \"streaming_tasks_per_sec\": {:.1},\n  \
         \"kernel_fresh_alloc_tasks_per_sec\": {:.1},\n  \
         \"kernel_reused_ws_tasks_per_sec\": {:.1},\n  \
         \"workspace_reuse_speedup\": {:.3},\n  \
         \"kernel_scalar_fill_tasks_per_sec\": {:.1},\n  \
         \"kernel_simd_fill_tasks_per_sec\": {:.1},\n  \
         \"simd_fill_speedup\": {:.3},\n  \
         \"short_read_tasks\": {},\n  \
         \"kernel_i32_fill_tasks_per_sec\": {:.1},\n  \
         \"kernel_i16_fill_tasks_per_sec\": {:.1},\n  \
         \"i16_fill_speedup\": {:.3},\n  \
         \"kernel_b16_fill_tasks_per_sec\": {:.1},\n  \
         \"kernel_auto_geom_tasks_per_sec\": {:.1},\n  \
         \"geometry_speedup\": {:.3},\n  \
         \"kernel_avx2_fill_tasks_per_sec\": {:.1},\n  \
         \"kernel_avx512_fill_tasks_per_sec\": {:.1},\n  \
         \"avx512_resolved_backend\": \"{}\",\n  \
         \"avx512_fill_speedup\": {:.3},\n  \
         \"stream_whole_batch_short_tasks_per_sec\": {:.1},\n  \
         \"stream_inline_tasks_per_sec\": {},\n  \
         \"stream_prefetch_tasks_per_sec\": {},\n  \
         \"stream_prefetch_speedup\": {},\n  \
         \"carryover_makespan_gain\": {},\n  \
         \"stream_vs_whole_chunk64\": {:.3},\n{}\n}}\n",
        tasks.len(),
        if cfg!(feature = "simd") { "simd" } else { "scalar" },
        agatha_core::options::default_fill_precision().name(),
        agatha_core::options::default_block_dim().name(),
        agatha_align::simd::backend().name(),
        tps(whole_s, tasks.len()),
        tps(stream_s, tasks.len()),
        tps(fresh_s, kernel_tasks.len()),
        tps(reused_s, kernel_tasks.len()),
        fresh_s / reused_s,
        tps(fill_secs[0], tasks.len()),
        tps(fill_secs[1], tasks.len()),
        fill_secs[0] / fill_secs[1],
        short_tasks.len(),
        tps(tier_secs[0], short_tasks.len()),
        tps(tier_secs[1], short_tasks.len()),
        tier_secs[0] / tier_secs[1],
        tps(tier_secs[2], short_tasks.len()),
        tps(tier_secs[3], short_tasks.len()),
        tier_secs[1] / tier_secs[2],
        tps(backend_secs[0], short_tasks.len()),
        tps(backend_secs[1], short_tasks.len()),
        resolved[1].name(),
        backend_secs[0] / backend_secs[1],
        tps(whole_short_s, short_tasks.len()),
        fmt_row(&stream_inline_tps, 1),
        fmt_row(&stream_pf_tps, 1),
        fmt_row(
            &[
                stream_pf_tps[0] / stream_inline_tps[0],
                stream_pf_tps[1] / stream_inline_tps[1],
                stream_pf_tps[2] / stream_inline_tps[2],
                stream_pf_tps[3] / stream_inline_tps[3],
            ],
            3,
        ),
        fmt_row(&carry_gain, 3),
        stream_pf_tps[2] / tps(whole_short_s, short_tasks.len()),
        scenario_rows(SCENARIOS),
    );
    std::fs::write("BENCH_pipeline.json", &json).expect("write BENCH_pipeline.json");
    print!("{json}");
}
