//! Figure 12: per-thread workload distribution under the balancing
//! techniques — how subwarp rejoining plus uneven bucketing shifts work
//! away from overloaded subwarps.
//!
//! For each variant, a histogram over subwarps of *initially assigned*
//! blocks per thread (x) against accumulated *executed* work (y); SR+UB
//! shifts the mass left (no subwarp keeps a huge assignment).

use agatha_bench::{banner, nine_datasets};
use agatha_core::{AgathaConfig, OrderingStrategy, Pipeline};

fn main() {
    banner("Figure 12", "workload distribution from workload balancing (ONT HG002)");
    let datasets = nine_datasets();
    let d = &datasets[6]; // ONT HG002: the heaviest tail

    let variants: [(&str, bool, OrderingStrategy); 4] = [
        ("Original Order", false, OrderingStrategy::Original),
        ("SR+Original Order", true, OrderingStrategy::Original),
        ("SR+Sort", true, OrderingStrategy::Sorted),
        ("SR+UB", true, OrderingStrategy::UnevenBucketing),
    ];

    const BIN: u64 = 1000; // blocks-per-thread bin width
    for (name, sr, strat) in variants {
        let cfg = AgathaConfig::agatha().with_sr(sr).with_ub(false);
        let lanes = cfg.subwarp_lanes as u64;
        let rep = Pipeline::new(d.scoring, cfg).align_batch_with_strategy(&d.tasks, strat);
        let mut bins: Vec<(u64, f64)> = Vec::new();
        let mut max_assigned = 0u64;
        for &(assigned, executed) in &rep.subwarp_blocks {
            let per_thread = assigned / lanes;
            max_assigned = max_assigned.max(per_thread);
            let bin = per_thread / BIN;
            if bins.len() <= bin as usize {
                bins.resize(bin as usize + 1, (0, 0.0));
            }
            bins[bin as usize].0 += 1;
            bins[bin as usize].1 += executed;
        }
        println!("\n{name}: max initially-assigned blocks/thread = {max_assigned}");
        println!("{:>20} {:>10} {:>20}", "assigned blocks/thr", "subwarps", "executed (K blocks)");
        for (b, &(count, exec)) in bins.iter().enumerate() {
            if count > 0 {
                println!(
                    "{:>20} {:>10} {:>20.1}",
                    format!("{}-{}", b as u64 * BIN, (b as u64 + 1) * BIN),
                    count,
                    exec / 1e3
                );
            }
        }
    }
    println!();
    println!("paper: SR+UB shifts the whole distribution left — large assignments spread over many subwarps.");
}
