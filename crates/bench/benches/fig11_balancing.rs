//! Figure 11: effect of the workload-balancing techniques — Original order,
//! Sort, SR+Original, SR+Sort, SR+UB — as speedup over Original order
//! (AGAThA with RW+SD only).
//!
//! Paper: Sort ≈ 1.06×, SR+Original ≈ 1.17×, SR+Sort ≈ 1.17×,
//! SR+UB ≈ 2.22×.

use agatha_bench::{banner, dataset_header, geomean, nine_datasets, row};
use agatha_core::{AgathaConfig, OrderingStrategy, Pipeline};

fn main() {
    banner("Figure 11", "workload balancing: speedup over Original order");
    let datasets = nine_datasets();

    let variants: [(&str, bool, OrderingStrategy); 5] = [
        ("Original Order", false, OrderingStrategy::Original),
        ("Sort", false, OrderingStrategy::Sorted),
        ("SR+Original Order", true, OrderingStrategy::Original),
        ("SR+Sort", true, OrderingStrategy::Sorted),
        ("SR+UB", true, OrderingStrategy::UnevenBucketing),
    ];

    let base_ms: Vec<f64> = datasets
        .iter()
        .map(|d| {
            let cfg = AgathaConfig::agatha().with_sr(false).with_ub(false);
            Pipeline::new(d.scoring, cfg)
                .align_batch_with_strategy(&d.tasks, OrderingStrategy::Original)
                .elapsed_ms
        })
        .collect();

    println!("{}", dataset_header(&datasets));
    for (name, sr, strat) in variants {
        let mut speeds = Vec::new();
        for (d, &b) in datasets.iter().zip(&base_ms) {
            let cfg = AgathaConfig::agatha().with_sr(sr).with_ub(false);
            let ms =
                Pipeline::new(d.scoring, cfg).align_batch_with_strategy(&d.tasks, strat).elapsed_ms;
            speeds.push(b / ms);
        }
        let mut cells: Vec<String> = speeds.iter().map(|s| format!("{s:.2}x")).collect();
        cells.push(format!("{:.2}x", geomean(&speeds)));
        println!("{}", row(name, &cells));
    }
    println!();
    println!("paper: Sort 1.06x | SR+Orig 1.17x | SR+Sort 1.17x | SR+UB 2.22x");
}
