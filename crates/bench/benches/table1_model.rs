//! Table 1: the analytic performance model, evaluated on the measured
//! workload and compared with the simulated ablation.
//!
//! The model predicts the latency of each design row (Baseline, +RW, +RW+SD,
//! +RW+SD+SR, +RW+SD+SR+UB) as `Cells × (1/Comp.TP + ΣAR/Mem.TP)` combined
//! MAX/AVG-wise over subwarps and warps (§4.5); the table prints the model's
//! predicted speedups next to the simulator's measured ones.

use agatha_bench::{banner, geomean, nine_datasets};
use agatha_core::model::{predict, table1_rows, ModelParams};
use agatha_core::{AgathaConfig, Pipeline};

fn main() {
    banner("Table 1", "performance model vs simulation (speedup over Baseline)");
    let datasets = nine_datasets();
    let params = ModelParams::default();

    // Model inputs: per-subwarp reference cell counts grouped into warps of
    // four subwarps, in incoming order.
    let mut model_speedups: Vec<Vec<f64>> = vec![Vec::new(); 5];
    let mut sim_speedups: Vec<Vec<f64>> = vec![Vec::new(); 5];

    let configs: [AgathaConfig; 5] = [
        AgathaConfig::baseline(),
        AgathaConfig::baseline().with_rw(true),
        AgathaConfig::baseline().with_rw(true).with_sd(true),
        AgathaConfig::baseline().with_rw(true).with_sd(true).with_sr(true),
        AgathaConfig::agatha(),
    ];

    for d in &datasets {
        let rows = table1_rows(d.scoring.band_width as u32);
        // Cell counts from the kernel runs (reference semantics).
        let p0 = Pipeline::new(d.scoring, AgathaConfig::baseline());
        let runs = p0.execute_tasks(&d.tasks);
        let warps: Vec<Vec<u64>> =
            runs.chunks(4).map(|c| c.iter().map(|r| r.result.cells).collect()).collect();
        let base_model = predict(&rows[0], &warps, &params);
        let base_sim =
            Pipeline::new(d.scoring, configs[0].clone()).align_batch(&d.tasks).elapsed_ms;
        for (k, (row, cfg)) in rows.iter().zip(&configs).enumerate() {
            model_speedups[k].push(base_model / predict(row, &warps, &params));
            let ms = Pipeline::new(d.scoring, cfg.clone()).align_batch(&d.tasks).elapsed_ms;
            sim_speedups[k].push(base_sim / ms);
        }
    }

    println!("{:<16}{:>18}{:>18}", "design", "model (geomean)", "simulated");
    let names = ["Baseline", "+RW", "+RW+SD", "+RW+SD+SR", "+RW+SD+SR+UB"];
    for (k, name) in names.iter().enumerate() {
        println!(
            "{:<16}{:>17.2}x{:>17.2}x",
            name,
            geomean(&model_speedups[k]),
            geomean(&sim_speedups[k])
        );
    }
    println!("\nthe model (Table 1) captures the direction of every technique; magnitudes come from the simulator.");
}
