//! Figure 13: performance on controlled datasets with different long-
//! sequence percentages (4096 bp long vs 128 bp short reads; 25/10/5/1 %).
//!
//! Baseline: SR+Original order. Paper: SR+UB always wins (peak 2.39× at
//! 10 %); SR+Sort peaks at 25 % and *drops below the original order*
//! (0.61×) as the percentage falls, because a few warps concentrating the
//! long sequences become the bottleneck.

use agatha_bench::{banner, geomean, row};
use agatha_core::{AgathaConfig, OrderingStrategy, Pipeline};
use agatha_datasets::long_short_mix;

fn main() {
    banner("Figure 13", "long-sequence percentage sweep: speedup over SR+Original");
    let total = agatha_datasets::DatasetSpec::default_reads().max(200);
    let pcts = [25.0, 10.0, 5.0, 1.0];

    let mut header: Vec<String> = pcts.iter().map(|p| format!("{p}%")).collect();
    header.push("GeoMean".into());
    println!("{}", row("", &header));

    let mut table: Vec<(&str, OrderingStrategy, Vec<f64>)> = vec![
        ("SR+Original Order", OrderingStrategy::Original, Vec::new()),
        ("SR+Sort", OrderingStrategy::Sorted, Vec::new()),
        ("SR+UB", OrderingStrategy::UnevenBucketing, Vec::new()),
    ];
    for &pct in &pcts {
        let d = long_short_mix(pct, total, 4242);
        let cfg = AgathaConfig::agatha().with_ub(false); // SR on, ordering explicit
        let base = Pipeline::new(d.scoring, cfg.clone())
            .align_batch_with_strategy(&d.tasks, OrderingStrategy::Original)
            .elapsed_ms;
        for (_, strat, out) in table.iter_mut() {
            let ms = Pipeline::new(d.scoring, cfg.clone())
                .align_batch_with_strategy(&d.tasks, *strat)
                .elapsed_ms;
            out.push(base / ms);
        }
    }
    for (name, _, speeds) in &table {
        let mut cells: Vec<String> = speeds.iter().map(|s| format!("{s:.2}x")).collect();
        cells.push(format!("{:.2}x", geomean(speeds)));
        println!("{}", row(name, &cells));
    }
    println!();
    println!("paper: UB always >= original (peak 2.39x at 10%); Sort peaks at 25% and falls to 0.61x at 1%.");
}
