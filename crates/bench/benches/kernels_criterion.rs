//! Criterion microbenchmarks of the hot paths: the scalar guided reference,
//! the block-grid kernel under each configuration, input packing and the
//! anti-diagonal tracker. These measure *real host wall-time* of the
//! implementation (unlike the figure harnesses, which report simulated
//! device time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use agatha_align::guided::guided_align;
use agatha_align::{block::block_grid_align, PackedSeq, Scoring, Task};
use agatha_core::{
    kernel::{run_task, run_task_ws, KernelWorkspace},
    AgathaConfig,
};

fn pseudo_seq(len: usize, seed: u64, mutate_every: usize) -> (String, String) {
    let mut r = String::new();
    let mut q = String::new();
    let mut x = seed | 1;
    for k in 0..len {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let c = ['A', 'C', 'G', 'T'][(x >> 33) as usize % 4];
        r.push(c);
        q.push(if mutate_every > 0 && k % mutate_every == 0 { 'T' } else { c });
    }
    (r, q)
}

fn bench_guided_reference(c: &mut Criterion) {
    let mut g = c.benchmark_group("guided_reference");
    for len in [512usize, 2048] {
        let (r, q) = pseudo_seq(len, 11, 17);
        let (rp, qp) = (PackedSeq::from_str_seq(&r), PackedSeq::from_str_seq(&q));
        let s = Scoring::new(2, 4, 4, 2, 200, 100);
        let cells = guided_align(&rp, &qp, &s).cells;
        g.throughput(Throughput::Elements(cells));
        g.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| guided_align(&rp, &qp, &s))
        });
    }
    g.finish();
}

fn bench_block_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("block_grid");
    let (r, q) = pseudo_seq(2048, 23, 19);
    let (rp, qp) = (PackedSeq::from_str_seq(&r), PackedSeq::from_str_seq(&q));
    let s = Scoring::new(2, 4, 4, 2, 200, 100);
    let cells = block_grid_align(&rp, &qp, &s).cells;
    g.throughput(Throughput::Elements(cells));
    g.bench_function("reference_driver", |b| b.iter(|| block_grid_align(&rp, &qp, &s)));
    g.finish();
}

fn bench_kernel_configs(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_exec");
    let (r, q) = pseudo_seq(2048, 37, 19);
    let task = Task::from_strs(0, &r, &q);
    let s = Scoring::new(2, 4, 4, 2, 200, 100);
    for (name, cfg) in [
        ("baseline", AgathaConfig::baseline()),
        ("agatha_s3", AgathaConfig::agatha()),
        ("agatha_s16", AgathaConfig::agatha().with_slice_width(16)),
    ] {
        g.bench_function(name, |b| b.iter(|| run_task(&task, &s, &cfg)));
    }
    g.finish();
}

fn bench_workspace_reuse(c: &mut Criterion) {
    // The streaming engine's core claim: reusing one KernelWorkspace across
    // a stream of tasks beats reallocating every DP buffer per call. The
    // gap is widest on seed-sized microtasks, where allocation is a real
    // fraction of kernel time; O(n²) compute swamps it on long reads.
    let mut g = c.benchmark_group("workspace_reuse");
    let s = Scoring::new(2, 4, 4, 2, 200, 100);
    let cfg = AgathaConfig::agatha();
    let tasks: Vec<Task> = (0..512)
        .map(|i| {
            let (r, q) = pseudo_seq(8 + (i as usize * 5) % 13, i + 1, 11);
            Task::from_strs(i as u32, &r, &q)
        })
        .collect();
    g.throughput(Throughput::Elements(tasks.len() as u64));
    g.bench_function("fresh_alloc", |b| {
        b.iter(|| tasks.iter().map(|t| run_task(t, &s, &cfg).blocks).sum::<u64>())
    });
    g.bench_function("reused_workspace", |b| {
        let mut ws = KernelWorkspace::new();
        b.iter(|| tasks.iter().map(|t| run_task_ws(&mut ws, t, &s, &cfg).blocks).sum::<u64>())
    });
    g.finish();
}

fn bench_block_fold(c: &mut Criterion) {
    // The PR-3 lever: per-block staged tracker folds (DiagTracker::on_block)
    // let the inner loop vectorise. Same kernel, scalar vs wavefront fill —
    // bit-identical results, different wall time.
    let mut g = c.benchmark_group("block_fold");
    let s = Scoring::new(2, 4, 4, 2, 200, 100);
    let (r, q) = pseudo_seq(2048, 29, 19);
    let task = Task::from_strs(0, &r, &q);
    let cells = run_task(&task, &s, &AgathaConfig::agatha()).result.cells;
    g.throughput(Throughput::Elements(cells));
    for (name, simd) in [("scalar_fill", false), ("simd_fill", true)] {
        let cfg = AgathaConfig::agatha().with_simd_fill(simd);
        g.bench_function(name, |b| {
            let mut ws = KernelWorkspace::new();
            b.iter(|| run_task_ws(&mut ws, &task, &s, &cfg).blocks)
        });
    }
    g.finish();
}

fn bench_packing(c: &mut Criterion) {
    let mut g = c.benchmark_group("packing");
    let (r, _) = pseudo_seq(1 << 16, 41, 0);
    let codes = agatha_align::base::codes_from_str(&r);
    g.throughput(Throughput::Elements(codes.len() as u64));
    g.bench_function("pack_4bit", |b| b.iter(|| PackedSeq::from_codes(&codes)));
    let packed = PackedSeq::from_codes(&codes);
    g.bench_function("unpack", |b| b.iter(|| packed.to_codes()));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_guided_reference, bench_block_kernel, bench_kernel_configs, bench_workspace_reuse, bench_block_fold, bench_packing
}
criterion_main!(benches);
