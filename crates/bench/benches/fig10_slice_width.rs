//! Figure 10: slice-width sensitivity (1..128 blocks).
//!
//! Paper shape: decreasing from 1 to ~4, flat around 5–16, increasing for
//! large widths (growing run-ahead); small jumps after widths 3 and 7,
//! where the window index can use a bitwise AND instead of a modulo.

use agatha_bench::{banner, nine_datasets, row};
use agatha_core::{AgathaConfig, Pipeline};

fn main() {
    banner("Figure 10", "slice-width sensitivity, exec time (ms)");
    let datasets = nine_datasets();
    let widths = [1usize, 2, 3, 4, 5, 6, 7, 8, 16, 32, 64, 128];

    let mut header: Vec<String> = widths.iter().map(|w| format!("s={w}")).collect();
    header.push("".into());
    println!("{}", row("", &header));
    for d in &datasets {
        let mut cells = Vec::new();
        for &w in &widths {
            let cfg = AgathaConfig::agatha().with_slice_width(w);
            let ms = Pipeline::new(d.scoring, cfg).align_batch(&d.tasks).elapsed_ms;
            cells.push(format!("{ms:.3}"));
        }
        cells.push("".into());
        println!("{}", row(&d.name, &cells));
    }
    println!();
    println!("paper: best around 3-16, jumps after 3 and 7 (bitwise-AND widths), rising tail from run-ahead; AGAThA uses s=3.");
}
