//! Figure 9: ablation study — speedup over the naive exact baseline as the
//! four techniques are added cumulatively: Baseline → +RW → +SD → +SR → +UB.
//!
//! Paper reference points: +RW ≈ 3.1–3.5×, +SD a further ≈ 1.3–1.4×,
//! +SR a further ≈ 1.1–1.2×, +UB a further ≈ 1.3× (CLR) to 2.2× (HiFi/ONT).

use agatha_bench::{banner, dataset_header, geomean, nine_datasets, row};
use agatha_core::{AgathaConfig, Pipeline};

fn main() {
    banner("Figure 9", "cumulative ablation: Baseline, +RW, +SD, +SR, +UB");
    let datasets = nine_datasets();

    let steps: [(&str, AgathaConfig); 5] = [
        ("Baseline", AgathaConfig::baseline()),
        ("(+) RW", AgathaConfig::baseline().with_rw(true)),
        ("(+) SD", AgathaConfig::baseline().with_rw(true).with_sd(true)),
        ("(+) SR", AgathaConfig::baseline().with_rw(true).with_sd(true).with_sr(true)),
        ("(+) UB", AgathaConfig::agatha()),
    ];

    // Baseline times per dataset.
    let base_ms: Vec<f64> = datasets
        .iter()
        .map(|d| Pipeline::new(d.scoring, steps[0].1.clone()).align_batch(&d.tasks).elapsed_ms)
        .collect();

    println!("{}", dataset_header(&datasets));
    let mut prev_geo = 1.0;
    for (name, cfg) in &steps {
        let mut speeds = Vec::new();
        for (d, &b) in datasets.iter().zip(&base_ms) {
            let ms = Pipeline::new(d.scoring, cfg.clone()).align_batch(&d.tasks).elapsed_ms;
            speeds.push(b / ms);
        }
        let geo = geomean(&speeds);
        let mut cells: Vec<String> = speeds.iter().map(|s| format!("{s:.2}x")).collect();
        cells.push(format!("{geo:.2}x"));
        println!("{} (step x{:.2})", row(name, &cells), geo / prev_geo);
        prev_geo = geo;
    }
    println!();
    println!("paper steps: RW x3.1-3.5 | SD x1.3-1.4 | SR x1.1-1.2 | UB x1.3-2.2");
}
