//! Figure 8: performance comparison — speedup over Minimap2-CPU for every
//! baseline (Diff-Target and MM2-Target) and AGAThA on the nine datasets.
//!
//! Paper reference points (geomean speedup over the CPU): AGAThA 18.8×;
//! SALoBa MM2-Target ≈ 18.8/9.6 ≈ 2.0×; Manymap MM2-Target ≈ 18.8/12.1 ≈
//! 1.55×; GASAL2 MM2-Target ≈ 18.8/36.6 ≈ 0.51× (slower than the CPU);
//! best Diff-Target (SALoBa) ≈ 18.8/3.6 ≈ 5.2×; LOGAN close behind.

use agatha_baselines::{run_baseline, Baseline};
use agatha_bench::{banner, dataset_header, geomean, nine_datasets, row};
use agatha_core::{AgathaConfig, Pipeline};
use agatha_gpu_sim::GpuSpec;

fn main() {
    banner("Figure 8", "speedup over Minimap2 (16C32T SSE4)");
    let datasets = nine_datasets();
    let spec = GpuSpec::rtx_a6000();

    // CPU reference times per dataset.
    let cpu_ms: Vec<f64> = datasets
        .iter()
        .map(|d| run_baseline(Baseline::CpuSse4, &d.tasks, &d.scoring, &spec).elapsed_ms)
        .collect();

    println!("{}", dataset_header(&datasets));

    let engines = [
        Baseline::Gasal2Diff,
        Baseline::Gasal2Mm2,
        Baseline::SalobaDiff,
        Baseline::SalobaMm2,
        Baseline::ManymapDiff,
        Baseline::ManymapMm2,
        Baseline::Logan,
    ];
    for engine in engines {
        let mut speeds = Vec::new();
        for (d, &cpu) in datasets.iter().zip(&cpu_ms) {
            let rep = run_baseline(engine, &d.tasks, &d.scoring, &spec);
            speeds.push(cpu / rep.elapsed_ms);
        }
        print_speedups(engine.name(), &speeds);
    }

    // AGAThA.
    let mut speeds = Vec::new();
    for (d, &cpu) in datasets.iter().zip(&cpu_ms) {
        let p = Pipeline::new(d.scoring, AgathaConfig::agatha());
        let rep = p.align_batch(&d.tasks);
        speeds.push(cpu / rep.elapsed_ms);
    }
    print_speedups("AGAThA", &speeds);

    println!();
    println!("paper geomeans: AGAThA 18.8x | SALoBa-MM2 2.0x | Manymap-MM2 1.55x | GASAL2-MM2 0.51x | SALoBa-Diff 5.2x");
}

fn print_speedups(name: &str, speeds: &[f64]) {
    let mut cells: Vec<String> = speeds.iter().map(|s| format!("{s:.2}x")).collect();
    cells.push(format!("{:.2}x", geomean(speeds)));
    println!("{}", row(name, &cells));
}
