//! Figure 14: subwarp-size sensitivity — execution time with subwarps of
//! 8, 16 and 32 threads (RW+SD kernel, no SR/UB) against full AGAThA.
//!
//! Paper: the full warp (32) beats plain subwarps by ~10 % for the RW+SD
//! kernel, 16 shows slowdowns, but final AGAThA (subwarp 8 + SR + UB)
//! outpaces all of them.

use agatha_bench::{banner, dataset_header, nine_datasets, row};
use agatha_core::{AgathaConfig, Pipeline};

fn main() {
    banner("Figure 14", "subwarp size sensitivity, exec time (ms)");
    let datasets = nine_datasets();

    let variants: [(&str, AgathaConfig); 4] = [
        ("8", AgathaConfig::agatha().with_sr(false).with_ub(false).with_subwarp(8)),
        ("16", AgathaConfig::agatha().with_sr(false).with_ub(false).with_subwarp(16)),
        ("32 (full warp)", AgathaConfig::agatha().with_sr(false).with_ub(false).with_subwarp(32)),
        ("AGAThA (8+SR+UB)", AgathaConfig::agatha()),
    ];

    println!("{}", dataset_header(&datasets));
    for (name, cfg) in &variants {
        let mut cells = Vec::new();
        let mut times = Vec::new();
        for d in &datasets {
            let ms = Pipeline::new(d.scoring, cfg.clone()).align_batch(&d.tasks).elapsed_ms;
            times.push(ms);
            cells.push(format!("{ms:.3}"));
        }
        cells.push(format!("{:.3}", agatha_bench::geomean(&times)));
        println!("{}", row(name, &cells));
    }
    println!();
    println!("paper: full warp ~10% faster than subwarps for RW+SD only; AGAThA (which needs subwarps for SR/UB) fastest overall; 16 shows slowdowns.");
}
