//! Figure 16: applying AGAThA to BWA-MEM's guided alignment (§5.9).
//!
//! BWA-MEM uses a much smaller band width and termination threshold, which
//! shrinks both the workload and its imbalance; AGAThA still beats SALoBa,
//! with a smaller gap than on Minimap2. Paper: AGAThA ≈ 15× over BWA-MEM on
//! the CPU.

use agatha_align::Scoring;
use agatha_baselines::{run_baseline, Baseline};
use agatha_bench::{banner, dataset_header, geomean, nine_datasets, row};
use agatha_core::{AgathaConfig, Pipeline};
use agatha_gpu_sim::GpuSpec;

fn main() {
    banner("Figure 16", "BWA-MEM guided alignment: speedup over BWA-MEM on the CPU");
    let mut datasets = nine_datasets();
    // Swap every dataset's scoring for the BWA-MEM preset.
    let bwa = Scoring::preset_bwa();
    for d in &mut datasets {
        d.scoring = bwa;
    }
    let spec = GpuSpec::rtx_a6000();

    let cpu_ms: Vec<f64> = datasets
        .iter()
        .map(|d| run_baseline(Baseline::CpuSse4, &d.tasks, &d.scoring, &spec).elapsed_ms)
        .collect();

    println!("{}", dataset_header(&datasets));
    {
        let mut speeds = Vec::new();
        for (d, &c) in datasets.iter().zip(&cpu_ms) {
            let ms = run_baseline(Baseline::SalobaMm2, &d.tasks, &d.scoring, &spec).elapsed_ms;
            speeds.push(c / ms);
        }
        print_row("SALoBa", &speeds);
    }
    {
        let mut speeds = Vec::new();
        for (d, &c) in datasets.iter().zip(&cpu_ms) {
            let p = Pipeline::new(d.scoring, AgathaConfig::agatha());
            speeds.push(c / p.align_batch(&d.tasks).elapsed_ms);
        }
        print_row("AGAThA", &speeds);
    }
    println!();
    println!("paper: AGAThA ~15x over BWA-MEM CPU; gap over SALoBa smaller than on Minimap2 (smaller band/threshold -> less imbalance).");
}

fn print_row(name: &str, speeds: &[f64]) {
    let mut cells: Vec<String> = speeds.iter().map(|s| format!("{s:.2}x")).collect();
    cells.push(format!("{:.2}x", geomean(speeds)));
    println!("{}", row(name, &cells));
}
