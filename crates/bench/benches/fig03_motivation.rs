//! Figure 3: the motivational study.
//!
//! (a) Execution times of the CPU baseline, the naive GPU baseline in its
//! original form (Diff-Target), the same baseline extended with the exact
//! guiding algorithm (MM2-Target), and AGAThA. The paper observes a 5.3×
//! geomean speedup for the Diff-Target baseline that collapses to 2.0×
//! once exact guiding is added.
//!
//! (b) The workload distribution: accumulated anti-diagonal workload and
//! alignment counts per task-size bin, exposing the far-right peak.

use agatha_baselines::{run_baseline, Baseline};
use agatha_bench::{banner, dataset_header, geomean, nine_datasets, row};
use agatha_core::{AgathaConfig, Pipeline};
use agatha_gpu_sim::GpuSpec;

fn main() {
    banner("Figure 3(a)", "CPU vs naive GPU baseline (Diff/MM2-Target) vs AGAThA, exec time (ms)");
    let datasets = nine_datasets();
    let spec = GpuSpec::rtx_a6000();

    let mut rows: Vec<(&str, Vec<f64>)> = vec![
        ("CPU (Minimap2)", Vec::new()),
        ("Baseline (Diff-Target)", Vec::new()),
        ("Baseline (MM2-Target)", Vec::new()),
        ("AGAThA", Vec::new()),
    ];
    for d in &datasets {
        rows[0].1.push(run_baseline(Baseline::CpuSse4, &d.tasks, &d.scoring, &spec).elapsed_ms);
        rows[1].1.push(run_baseline(Baseline::SalobaDiff, &d.tasks, &d.scoring, &spec).elapsed_ms);
        rows[2].1.push(run_baseline(Baseline::SalobaMm2, &d.tasks, &d.scoring, &spec).elapsed_ms);
        rows[3].1.push(
            Pipeline::new(d.scoring, AgathaConfig::agatha()).align_batch(&d.tasks).elapsed_ms,
        );
    }
    println!("{}", dataset_header(&datasets));
    for (name, ms) in &rows {
        let cells: Vec<String> = ms.iter().map(|m| format!("{m:.3}")).collect();
        println!("{}", row(name, &cells));
    }
    let cpu = &rows[0].1;
    let sp = |ms: &Vec<f64>| geomean(&cpu.iter().zip(ms).map(|(c, m)| c / m).collect::<Vec<_>>());
    println!();
    println!(
        "geomean speedup over CPU: Diff-Target {:.2}x (paper 5.3x) | MM2-Target {:.2}x (paper 2.0x) | AGAThA {:.2}x (paper 18.8x)",
        sp(&rows[1].1),
        sp(&rows[2].1),
        sp(&rows[3].1)
    );

    banner(
        "Figure 3(b)",
        "workload distribution: anti-diagonal histogram (first dataset of each tech)",
    );
    for d in [&datasets[0], &datasets[3], &datasets[6]] {
        println!("\n{} — bins of 2000 anti-diagonals:", d.name);
        println!("{:>12} {:>12} {:>18}", "bin", "alignments", "workload (M diag)");
        let mut counts = [0u64; 16];
        let mut work = vec![0u64; 16];
        for t in &d.tasks {
            let a = t.antidiags() as u64;
            let bin = ((a / 2000) as usize).min(15);
            counts[bin] += 1;
            work[bin] += a;
        }
        for (b, (&c, &w)) in counts.iter().zip(&work).enumerate() {
            if c > 0 {
                println!("{:>12} {:>12} {:>18.2}", format!("{}k", 2 * b), c, w as f64 / 1e6);
            }
        }
    }
    println!("\npaper: most alignments are small; a far-right bin carries a large share of the workload (5-20% of alignments).");
}
