//! Figure 15: hardware flexibility — AGAThA on RTX 2080Ti / A100 / A6000
//! ×{1,2,3,4}, against both CPU baselines.
//!
//! Paper: 9.49× (2080Ti), 15.84× (A100), 18.8× (A6000) over the default
//! CPU; near-linear multi-GPU scaling to 59.38× at 4 GPUs; the stronger
//! AVX512 CPU is 2.30× the default, leaving AGAThA 8.19× ahead.

use agatha_baselines::{run_baseline, Baseline};
use agatha_bench::{banner, dataset_header, geomean, nine_datasets, row};
use agatha_core::{AgathaConfig, Pipeline};
use agatha_gpu_sim::GpuSpec;

fn main() {
    banner("Figure 15", "hardware flexibility: speedup over Minimap2 (16C32T SSE4)");
    let datasets = nine_datasets();
    let a6000 = GpuSpec::rtx_a6000();

    let cpu_ms: Vec<f64> = datasets
        .iter()
        .map(|d| run_baseline(Baseline::CpuSse4, &d.tasks, &d.scoring, &a6000).elapsed_ms)
        .collect();

    println!("{}", dataset_header(&datasets));

    // Stronger CPU row.
    {
        let mut speeds = Vec::new();
        for (d, &c) in datasets.iter().zip(&cpu_ms) {
            let ms = run_baseline(Baseline::CpuAvx512, &d.tasks, &d.scoring, &a6000).elapsed_ms;
            speeds.push(c / ms);
        }
        print_row("Minimap2 48C96T AVX512", &speeds);
    }

    // GPUs.
    let variants: Vec<(String, GpuSpec, usize)> = vec![
        ("RTX 2080Ti".into(), GpuSpec::rtx_2080ti(), 1),
        ("A100".into(), GpuSpec::a100(), 1),
        ("A6000".into(), GpuSpec::rtx_a6000(), 1),
        ("A6000 x2".into(), GpuSpec::rtx_a6000(), 2),
        ("A6000 x3".into(), GpuSpec::rtx_a6000(), 3),
        ("A6000 x4".into(), GpuSpec::rtx_a6000(), 4),
    ];
    for (name, spec, gpus) in variants {
        let mut speeds = Vec::new();
        for (d, &c) in datasets.iter().zip(&cpu_ms) {
            let p = Pipeline::new(d.scoring, AgathaConfig::agatha())
                .with_spec(spec.clone())
                .with_gpus(gpus);
            speeds.push(c / p.align_batch(&d.tasks).elapsed_ms);
        }
        print_row(&name, &speeds);
    }
    println!();
    println!("paper: 2080Ti 9.49x | A100 15.84x | A6000 18.83x | x4 59.38x (near-linear) | AVX512 CPU 2.30x");
}

fn print_row(name: &str, speeds: &[f64]) {
    let mut cells: Vec<String> = speeds.iter().map(|s| format!("{s:.2}x")).collect();
    cells.push(format!("{:.2}x", geomean(speeds)));
    println!("{}", row(name, &cells));
}
