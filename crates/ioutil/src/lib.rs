//! # agatha-io
//!
//! File formats and small host utilities: FASTA reading/writing (both
//! standard `>`-headers and the AGAThA artifact's `>>> n` variant) with a
//! streaming record/pair reader for bounded-memory ingestion, the
//! artifact's `score.log` / `time.json` outputs (Appendix A), and a
//! dependency-free command-line flag parser.

pub mod args;
pub mod fasta;
pub mod output;

pub use args::Args;
pub use fasta::{
    open_fasta, open_fasta_pairs, open_fasta_pairs_model, read_fasta, read_fasta_str, write_fasta,
    FastaPairs, FastaReader, FastaRecord,
};
pub use output::{write_score_log, write_time_json};
