//! Dependency-free argument parsing for the CLI and benchmark harnesses.
//!
//! Supports the artifact's short options (`-a -b -q -r -z -w`; Appendix
//! A.2.6) plus long `--flag[=value]` / `--flag value` forms and positional
//! arguments.

use std::collections::HashMap;

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    flags: HashMap<String, String>,
    positional: Vec<String>,
}

impl Args {
    /// Parse from an iterator of argument strings (without the program
    /// name). Flags expecting values take the following argument unless
    /// given as `--flag=value`. A bare trailing flag gets an empty value.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Args {
        Args::parse_with_switches(args, &[])
    }

    /// [`Args::parse`] with an explicit list of boolean *switches*: long
    /// flags that never take a value, so `--switch FILE` leaves `FILE` a
    /// positional instead of swallowing it as the switch's value. Without
    /// this, a flag like `--verbose` placed before the input paths would
    /// silently eat the first path and break the command.
    pub fn parse_with_switches<I: IntoIterator<Item = String>>(args: I, switches: &[&str]) -> Args {
        let mut flags = HashMap::new();
        let mut positional = Vec::new();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(body) = arg.strip_prefix("--") {
                if let Some((k, v)) = body.split_once('=') {
                    flags.insert(k.to_string(), v.to_string());
                } else {
                    // Value-taking long flag: consume the next token unless
                    // it looks like another flag or this is a switch.
                    let take = !switches.contains(&body)
                        && iter.peek().is_some_and(|n| !n.starts_with('-'));
                    let v = if take { iter.next().unwrap() } else { String::new() };
                    flags.insert(body.to_string(), v);
                }
            } else if arg.starts_with('-')
                && arg[1..].chars().next().is_some_and(|c| !c.is_ascii_digit())
            {
                let k = arg[1..].to_string();
                let take = iter.peek().is_some_and(|n| {
                    !n.starts_with('-') || n[1..].chars().next().is_some_and(|c| c.is_ascii_digit())
                });
                let v = if take { iter.next().unwrap() } else { String::new() };
                flags.insert(k, v);
            } else {
                positional.push(arg);
            }
        }
        Args { flags, positional }
    }

    /// Parse from the process environment.
    pub fn from_env() -> Args {
        Args::parse(std::env::args().skip(1))
    }

    /// Whether a flag was present.
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// String value of a flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// Parsed numeric value of a flag, or `default`. Malformed values fall
    /// back to the default silently — prefer [`Args::get_num_checked`]
    /// anywhere a wrong number changes results.
    pub fn get_num<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.get(name).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// Parsed numeric value of a flag, or `default` when the flag is
    /// absent. A flag that is present but malformed (including a bare flag
    /// with no value) is an error: `-z abc` must not silently align with
    /// the default termination threshold.
    pub fn get_num_checked<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| {
                let dashes = if name.len() > 1 { "--" } else { "-" };
                format!("invalid value '{v}' for {dashes}{name}: {e}")
            }),
        }
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn artifact_style_short_flags() {
        let a = parse("-a 2 -b 4 -q 4 -r 2 -z 400 -w 500 ref.fa query.fa");
        assert_eq!(a.get_num("a", 0), 2);
        assert_eq!(a.get_num("z", 0), 400);
        assert_eq!(a.get_num("w", 0), 500);
        assert_eq!(a.positional(), &["ref.fa".to_string(), "query.fa".to_string()]);
    }

    #[test]
    fn long_flags_both_forms() {
        let a = parse("--engine=agatha --reads 100 --verbose");
        assert_eq!(a.get("engine"), Some("agatha"));
        assert_eq!(a.get_num("reads", 0), 100);
        assert!(a.has("verbose"));
        assert_eq!(a.get("verbose"), Some(""));
    }

    #[test]
    fn negative_numbers_as_values() {
        let a = parse("-a -4");
        assert_eq!(a.get_num("a", 0), -4);
    }

    #[test]
    fn defaults_apply() {
        let a = parse("");
        assert_eq!(a.get_num("z", 400), 400);
        assert!(!a.has("engine"));
    }

    #[test]
    fn checked_accepts_valid_and_absent() {
        let a = parse("-z 250 --reads 10");
        assert_eq!(a.get_num_checked("z", 400), Ok(250));
        assert_eq!(a.get_num_checked("reads", 0usize), Ok(10));
        assert_eq!(a.get_num_checked("w", 400), Ok(400));
    }

    #[test]
    fn checked_rejects_malformed_values() {
        let a = parse("-z abc --reads 1x");
        let err = a.get_num_checked("z", 400).unwrap_err();
        assert!(err.contains("'abc'") && err.contains("-z"), "{err}");
        let err = a.get_num_checked::<usize>("reads", 0).unwrap_err();
        assert!(err.contains("'1x'") && err.contains("--reads"), "{err}");
    }

    #[test]
    fn checked_rejects_bare_numeric_flag() {
        let a = parse("--reads --verbose");
        assert!(a.get_num_checked::<usize>("reads", 7).is_err());
    }

    #[test]
    fn switches_do_not_swallow_positionals() {
        let argv = "align --verbose ref.fa qry.fa".split_whitespace().map(String::from);
        let a = Args::parse_with_switches(argv, &["verbose"]);
        assert!(a.has("verbose"));
        assert_eq!(a.get("verbose"), Some(""));
        assert_eq!(a.positional(), &["align", "ref.fa", "qry.fa"]);
        // Without the switch list, `--verbose` eats the first positional —
        // the regression parse_with_switches exists to prevent.
        let argv = "align --verbose ref.fa qry.fa".split_whitespace().map(String::from);
        let legacy = Args::parse(argv);
        assert_eq!(legacy.get("verbose"), Some("ref.fa"));
    }
}
