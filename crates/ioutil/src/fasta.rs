//! FASTA parsing and writing.
//!
//! Accepts standard FASTA (`>name`) and the AGAThA artifact's input format
//! (`>>> 1` headers; Appendix A.2.5). Sequence lines may wrap.
//!
//! Parsing is streaming-first: [`FastaReader`] yields one record at a time
//! from any [`BufRead`] without ever holding the whole file, and
//! [`FastaPairs`] zips two readers into alignment [`Task`]s so a pipeline
//! can consume millions of pairs with bounded memory. The eager
//! [`read_fasta`] / [`read_fasta_str`] helpers are thin collectors on top.

use std::io::{BufRead, BufReader, Write};
use std::path::Path;

use agatha_align::{PackedSeq, ScoreModel, SubstMatrix, Task};

/// One FASTA record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// Header text (without the marker).
    pub name: String,
    /// Packed sequence.
    pub seq: PackedSeq,
}

/// Incremental FASTA parser over any buffered reader. Yields records one at
/// a time; a parse or I/O error ends the stream after being yielded once.
pub struct FastaReader<B: BufRead> {
    src: B,
    /// Error-message prefix (the file path; empty for in-memory input).
    label: String,
    lineno: usize,
    /// Header of the next record, consumed while finishing the previous one.
    pending: Option<String>,
    line: String,
    /// Reusable sequence accumulator: cleared and refilled per record so
    /// steady-state streaming reuses one allocation at the high-water
    /// sequence length instead of growing a fresh `String` every record.
    seq: String,
    finished: bool,
    /// Pack sequences under this substitution matrix's alphabet (8-bit
    /// residue codes) instead of the default 4-bit DNA packing.
    matrix: Option<&'static SubstMatrix>,
}

impl<B: BufRead> FastaReader<B> {
    /// Stream records from `src`.
    pub fn new(src: B) -> FastaReader<B> {
        FastaReader::with_label(src, String::new())
    }

    /// Stream records from `src`, prefixing errors with `label`.
    pub fn with_label(src: B, label: String) -> FastaReader<B> {
        FastaReader {
            src,
            label,
            lineno: 0,
            pending: None,
            line: String::new(),
            seq: String::new(),
            finished: false,
            matrix: None,
        }
    }

    /// Pack records under `matrix`'s alphabet (`None` keeps DNA packing).
    /// Scenario-selected score models flow through here so protein input
    /// packs to the residue codes that index the matrix.
    pub fn with_matrix(mut self, matrix: Option<&'static SubstMatrix>) -> FastaReader<B> {
        self.matrix = matrix;
        self
    }

    fn pack(&self, seq: &str) -> PackedSeq {
        match self.matrix {
            None => PackedSeq::from_str_seq(seq),
            Some(m) => PackedSeq::from_protein_str(seq, m),
        }
    }

    fn err(&self, msg: String) -> String {
        if self.label.is_empty() {
            msg
        } else {
            format!("{}: {msg}", self.label)
        }
    }

    fn read_trimmed_line(&mut self) -> Result<Option<&str>, String> {
        self.line.clear();
        let n =
            self.src.read_line(&mut self.line).map_err(|e| self.err(format!("read error: {e}")))?;
        if n == 0 {
            return Ok(None);
        }
        self.lineno += 1;
        Ok(Some(self.line.trim()))
    }
}

impl<B: BufRead> Iterator for FastaReader<B> {
    type Item = Result<FastaRecord, String>;

    fn next(&mut self) -> Option<Result<FastaRecord, String>> {
        if self.finished {
            return None;
        }
        let mut name = self.pending.take();
        // Take the accumulator so sequence lines can append while
        // `read_trimmed_line` borrows `self`; restored before returning.
        let mut seq = std::mem::take(&mut self.seq);
        seq.clear();
        loop {
            let line = match self.read_trimmed_line() {
                Ok(Some(l)) => l,
                Ok(None) => {
                    self.finished = true;
                    break;
                }
                Err(e) => {
                    self.finished = true;
                    return Some(Err(e));
                }
            };
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix(">>>").or_else(|| line.strip_prefix('>')) {
                let next_name = rest.trim().to_string();
                if name.is_some() {
                    // Finish the open record; stash the header we just ate.
                    self.pending = Some(next_name);
                    break;
                }
                name = Some(next_name);
            } else {
                if name.is_none() {
                    self.finished = true;
                    let lineno = self.lineno;
                    return Some(Err(
                        self.err(format!("line {lineno}: sequence data before any header"))
                    ));
                }
                seq.push_str(line);
            }
        }
        let record = name.map(|n| Ok(FastaRecord { name: n, seq: self.pack(&seq) }));
        self.seq = seq;
        record
    }
}

/// Open a FASTA file as a streaming [`FastaReader`].
pub fn open_fasta(path: &Path) -> Result<FastaReader<BufReader<std::fs::File>>, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
    Ok(FastaReader::with_label(BufReader::new(file), path.display().to_string()))
}

/// Zips a reference and a query record stream into alignment [`Task`]s,
/// with sequential ids. Errors if one stream ends before the other — 'each
/// input file should have an equal number of reference and query strings'
/// (Appendix A.2.5).
pub struct FastaPairs<A: BufRead, B: BufRead> {
    refs: FastaReader<A>,
    queries: FastaReader<B>,
    next_id: u32,
    done: bool,
}

impl<A: BufRead, B: BufRead> FastaPairs<A, B> {
    /// Pair up two record streams.
    pub fn new(refs: FastaReader<A>, queries: FastaReader<B>) -> FastaPairs<A, B> {
        FastaPairs { refs, queries, next_id: 0, done: false }
    }
}

/// Open a reference/query FASTA file pair as a streaming task source
/// (4-bit DNA packing).
#[allow(clippy::type_complexity)]
pub fn open_fasta_pairs(
    refs: &Path,
    queries: &Path,
) -> Result<FastaPairs<BufReader<std::fs::File>, BufReader<std::fs::File>>, String> {
    Ok(FastaPairs::new(open_fasta(refs)?, open_fasta(queries)?))
}

/// Open a reference/query FASTA file pair packed under `model`'s alphabet:
/// DNA packing for the fixed model, the matrix's 8-bit residue codes for a
/// substitution-matrix model.
#[allow(clippy::type_complexity)]
pub fn open_fasta_pairs_model(
    refs: &Path,
    queries: &Path,
    model: &ScoreModel,
) -> Result<FastaPairs<BufReader<std::fs::File>, BufReader<std::fs::File>>, String> {
    let m = model.matrix();
    Ok(FastaPairs::new(open_fasta(refs)?.with_matrix(m), open_fasta(queries)?.with_matrix(m)))
}

impl<A: BufRead, B: BufRead> Iterator for FastaPairs<A, B> {
    type Item = Result<Task, String>;

    fn next(&mut self) -> Option<Result<Task, String>> {
        if self.done {
            return None;
        }
        let item = match (self.refs.next(), self.queries.next()) {
            (None, None) => None,
            (Some(Ok(r)), Some(Ok(q))) => {
                let id = self.next_id;
                self.next_id += 1;
                let task = Task { id, reference: r.seq, query: q.seq };
                // Task admission: engines store cell coordinates as i32, so
                // over-wide inputs must error here instead of silently
                // truncating deep inside a kernel. Name the record from the
                // stream whose sequence is actually over-wide.
                if let Err(e) = task.admit() {
                    self.done = true;
                    let name =
                        if task.ref_len() > agatha_align::MAX_SEQ_LEN { &r.name } else { &q.name };
                    return Some(Err(format!("record {} ('{name}'): {e}", id + 1)));
                }
                return Some(Ok(task));
            }
            (Some(Err(e)), _) | (_, Some(Err(e))) => Some(Err(e)),
            // Exactly one stream ended; name the short one.
            (Some(_), None) => Some(Err(uneven_pair_error(
                "query",
                &self.queries.label,
                "reference",
                self.next_id,
            ))),
            (None, Some(_)) => {
                Some(Err(uneven_pair_error("reference", &self.refs.label, "query", self.next_id)))
            }
        };
        self.done = true;
        item
    }
}

fn uneven_pair_error(short_side: &str, short_label: &str, long_side: &str, records: u32) -> String {
    let short =
        if short_label.is_empty() { short_side.to_string() } else { short_label.to_string() };
    format!(
        "reference and query files must pair up: the {short_side} input ({short}) ended after \
         {records} records while the {long_side} input has more; 'each input file should have \
         an equal number of reference and query strings'"
    )
}

/// Parse FASTA from a string.
pub fn read_fasta_str(content: &str) -> Result<Vec<FastaRecord>, String> {
    FastaReader::new(content.as_bytes()).collect()
}

/// Read FASTA from a file, materialising every record.
pub fn read_fasta(path: &Path) -> Result<Vec<FastaRecord>, String> {
    open_fasta(path)?.collect()
}

/// Write records as standard FASTA (60-column wrapping).
pub fn write_fasta(path: &Path, records: &[FastaRecord]) -> Result<(), String> {
    let mut f =
        std::fs::File::create(path).map_err(|e| format!("create {}: {e}", path.display()))?;
    for r in records {
        writeln!(f, ">{}", r.name).map_err(|e| e.to_string())?;
        let s = r.seq.to_string_seq();
        for chunk in s.as_bytes().chunks(60) {
            f.write_all(chunk).map_err(|e| e.to_string())?;
            f.write_all(b"\n").map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_fasta() {
        let recs = read_fasta_str(">a\nACGT\nACGT\n>b\nTTTT\n").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].name, "a");
        assert_eq!(recs[0].seq.to_string_seq(), "ACGTACGT");
        assert_eq!(recs[1].seq.len(), 4);
    }

    #[test]
    fn artifact_format() {
        // The format from Appendix A.2.5.
        let recs = read_fasta_str(">>> 1\nATGCN\n>>> 2\nTCGGA\n").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].name, "1");
        assert_eq!(recs[0].seq.to_string_seq(), "ATGCN");
    }

    #[test]
    fn rejects_headerless_data() {
        assert!(read_fasta_str("ACGT\n").is_err());
    }

    #[test]
    fn empty_input_ok() {
        assert!(read_fasta_str("").unwrap().is_empty());
    }

    #[test]
    fn roundtrip_via_file() {
        let dir = std::env::temp_dir().join("agatha_fasta_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.fasta");
        let recs = vec![
            FastaRecord { name: "r1".into(), seq: PackedSeq::from_str_seq(&"ACGT".repeat(40)) },
            FastaRecord { name: "r2".into(), seq: PackedSeq::from_str_seq("NNNACGT") },
        ];
        write_fasta(&path, &recs).unwrap();
        let back = read_fasta(&path).unwrap();
        assert_eq!(back, recs);
    }

    /// Per-process-unique scratch dir so concurrent test runs (two
    /// checkouts, parallel CI jobs) never race on the same files.
    fn scratch_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("agatha_fasta_{name}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_wrapping_and_edge_records() {
        // Records exercising the writer's 60-column wrapping (155 bases →
        // three lines), an empty sequence, a single base, and interior Ns.
        let dir = scratch_dir("edge");
        let path = dir.join("edge.fasta");
        let long: String = (0..155).map(|i| ['A', 'C', 'G', 'T', 'N'][i % 5]).collect::<String>();
        let recs = vec![
            FastaRecord { name: "wrapped read".into(), seq: PackedSeq::from_str_seq(&long) },
            FastaRecord { name: "empty".into(), seq: PackedSeq::from_str_seq("") },
            FastaRecord { name: "single".into(), seq: PackedSeq::from_str_seq("G") },
            FastaRecord { name: "n-run".into(), seq: PackedSeq::from_str_seq("ACNNNNNNGT") },
        ];
        write_fasta(&path, &recs).unwrap();
        let back = read_fasta(&path).unwrap();
        assert_eq!(back, recs);
        // The writer must actually have wrapped the long record.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.lines().all(|l| l.len() <= 60));
        assert_eq!(text.lines().filter(|l| !l.starts_with('>')).count(), 3 + 1 + 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crlf_and_blank_lines_tolerated() {
        let recs = read_fasta_str(">a\r\nAC\r\n\r\nGT\r\n\n>b\r\nTT\r\n").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq.to_string_seq(), "ACGT");
        assert_eq!(recs[1].seq.to_string_seq(), "TT");
    }

    #[test]
    fn streaming_reader_matches_eager_parse() {
        let content = ">a\r\nAC\r\n\r\nGT\r\n\n>>> 2\nTTTT\nAAAA\n>c\n";
        let eager = read_fasta_str(content).unwrap();
        let streamed: Vec<FastaRecord> =
            FastaReader::new(content.as_bytes()).map(|r| r.unwrap()).collect();
        assert_eq!(streamed, eager);
        assert_eq!(streamed.len(), 3);
        assert_eq!(streamed[1].name, "2");
        assert_eq!(streamed[2].seq.len(), 0, "trailing header yields an empty record");
    }

    #[test]
    fn streaming_reader_reports_headerless_data_once() {
        let mut r = FastaReader::new("ACGT\n>a\nAC\n".as_bytes());
        let err = r.next().unwrap().unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(r.next().is_none(), "stream must end after a parse error");
    }

    #[test]
    fn pair_reader_builds_tasks_with_sequential_ids() {
        let refs = FastaReader::new(">1\nACGT\n>2\nTTTT\n".as_bytes());
        let queries = FastaReader::new(">1\nACGA\n>2\nTTTA\n".as_bytes());
        let tasks: Vec<_> = FastaPairs::new(refs, queries).map(|t| t.unwrap()).collect();
        assert_eq!(tasks.len(), 2);
        assert_eq!(tasks[0].id, 0);
        assert_eq!(tasks[1].id, 1);
        assert_eq!(tasks[1].reference.to_string_seq(), "TTTT");
        assert_eq!(tasks[1].query.to_string_seq(), "TTTA");
    }

    #[test]
    fn pair_reader_rejects_uneven_streams() {
        let refs = FastaReader::new(">1\nACGT\n>2\nTTTT\n".as_bytes());
        let queries = FastaReader::new(">1\nACGA\n".as_bytes());
        let mut pairs = FastaPairs::new(refs, queries);
        assert!(pairs.next().unwrap().is_ok());
        let err = pairs.next().unwrap().unwrap_err();
        assert!(err.contains("equal number"), "{err}");
        assert!(err.contains("query input"), "must name the short side: {err}");
        assert!(pairs.next().is_none());

        // The opposite direction names the reference side.
        let refs = FastaReader::new(">1\nACGT\n".as_bytes());
        let queries = FastaReader::new(">1\nACGA\n>2\nTTTA\n".as_bytes());
        let mut pairs = FastaPairs::new(refs, queries);
        assert!(pairs.next().unwrap().is_ok());
        let err = pairs.next().unwrap().unwrap_err();
        assert!(err.contains("reference input"), "{err}");
    }

    #[test]
    fn matrix_reader_packs_protein_codes() {
        use agatha_align::BLOSUM62;
        let recs: Vec<FastaRecord> = FastaReader::new(">p\nARNd\nw?\n".as_bytes())
            .with_matrix(Some(&BLOSUM62))
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(recs.len(), 1);
        let seq = &recs[0].seq;
        assert_eq!(seq.bits(), 8, "matrix alphabets pack at 8 bits");
        assert_eq!(seq.len(), 6);
        // Case-insensitive residue codes; unknown letters become the pad
        // residue (X).
        let codes: Vec<u8> = (0..seq.len()).map(|i| seq.code(i)).collect();
        assert_eq!(codes, [0, 1, 2, 3, 17, BLOSUM62.pad_code()]);

        // The pair reader under a matrix model packs both sides alike.
        let refs = FastaReader::new(">1\nWWWW\n".as_bytes()).with_matrix(Some(&BLOSUM62));
        let queries = FastaReader::new(">1\nWWWW\n".as_bytes()).with_matrix(Some(&BLOSUM62));
        let tasks: Vec<Task> = FastaPairs::new(refs, queries).map(|t| t.unwrap()).collect();
        assert_eq!(tasks[0].reference.bits(), 8);
        assert_eq!(tasks[0].query.code(0), 17);
    }

    #[test]
    fn string_roundtrip_preserves_ambiguity() {
        // Unknown letters normalise to N on parse; a second round trip is
        // then exact.
        let first = read_fasta_str(">r\nACGTRYKMacgt\n").unwrap();
        assert_eq!(first[0].seq.to_string_seq(), "ACGTNNNNACGT");
        let dir = scratch_dir("ambig");
        let path = dir.join("ambig.fasta");
        write_fasta(&path, &first).unwrap();
        assert_eq!(read_fasta(&path).unwrap(), first);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
