//! FASTA parsing and writing.
//!
//! Accepts standard FASTA (`>name`) and the AGAThA artifact's input format
//! (`>>> 1` headers; Appendix A.2.5). Sequence lines may wrap.

use std::io::{BufRead, Write};
use std::path::Path;

use agatha_align::PackedSeq;

/// One FASTA record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// Header text (without the marker).
    pub name: String,
    /// Packed sequence.
    pub seq: PackedSeq,
}

/// Parse FASTA from a string.
pub fn read_fasta_str(content: &str) -> Result<Vec<FastaRecord>, String> {
    let mut records = Vec::new();
    let mut name: Option<String> = None;
    let mut seq = String::new();
    let flush = |name: &mut Option<String>, seq: &mut String, out: &mut Vec<FastaRecord>| {
        if let Some(n) = name.take() {
            out.push(FastaRecord { name: n, seq: PackedSeq::from_str_seq(seq) });
            seq.clear();
        }
    };
    for (lineno, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(">>>").or_else(|| line.strip_prefix('>')) {
            flush(&mut name, &mut seq, &mut records);
            name = Some(rest.trim().to_string());
        } else {
            if name.is_none() {
                return Err(format!("line {}: sequence data before any header", lineno + 1));
            }
            seq.push_str(line);
        }
    }
    flush(&mut name, &mut seq, &mut records);
    Ok(records)
}

/// Read FASTA from a file.
pub fn read_fasta(path: &Path) -> Result<Vec<FastaRecord>, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
    let mut content = String::new();
    let mut reader = std::io::BufReader::new(file);
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).map_err(|e| format!("read {}: {e}", path.display()))?;
        if n == 0 {
            break;
        }
        content.push_str(&line);
    }
    read_fasta_str(&content)
}

/// Write records as standard FASTA (60-column wrapping).
pub fn write_fasta(path: &Path, records: &[FastaRecord]) -> Result<(), String> {
    let mut f =
        std::fs::File::create(path).map_err(|e| format!("create {}: {e}", path.display()))?;
    for r in records {
        writeln!(f, ">{}", r.name).map_err(|e| e.to_string())?;
        let s = r.seq.to_string_seq();
        for chunk in s.as_bytes().chunks(60) {
            f.write_all(chunk).map_err(|e| e.to_string())?;
            f.write_all(b"\n").map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_fasta() {
        let recs = read_fasta_str(">a\nACGT\nACGT\n>b\nTTTT\n").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].name, "a");
        assert_eq!(recs[0].seq.to_string_seq(), "ACGTACGT");
        assert_eq!(recs[1].seq.len(), 4);
    }

    #[test]
    fn artifact_format() {
        // The format from Appendix A.2.5.
        let recs = read_fasta_str(">>> 1\nATGCN\n>>> 2\nTCGGA\n").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].name, "1");
        assert_eq!(recs[0].seq.to_string_seq(), "ATGCN");
    }

    #[test]
    fn rejects_headerless_data() {
        assert!(read_fasta_str("ACGT\n").is_err());
    }

    #[test]
    fn empty_input_ok() {
        assert!(read_fasta_str("").unwrap().is_empty());
    }

    #[test]
    fn roundtrip_via_file() {
        let dir = std::env::temp_dir().join("agatha_fasta_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.fasta");
        let recs = vec![
            FastaRecord { name: "r1".into(), seq: PackedSeq::from_str_seq(&"ACGT".repeat(40)) },
            FastaRecord { name: "r2".into(), seq: PackedSeq::from_str_seq("NNNACGT") },
        ];
        write_fasta(&path, &recs).unwrap();
        let back = read_fasta(&path).unwrap();
        assert_eq!(back, recs);
    }

    /// Per-process-unique scratch dir so concurrent test runs (two
    /// checkouts, parallel CI jobs) never race on the same files.
    fn scratch_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("agatha_fasta_{name}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_wrapping_and_edge_records() {
        // Records exercising the writer's 60-column wrapping (155 bases →
        // three lines), an empty sequence, a single base, and interior Ns.
        let dir = scratch_dir("edge");
        let path = dir.join("edge.fasta");
        let long: String = (0..155).map(|i| ['A', 'C', 'G', 'T', 'N'][i % 5]).collect::<String>();
        let recs = vec![
            FastaRecord { name: "wrapped read".into(), seq: PackedSeq::from_str_seq(&long) },
            FastaRecord { name: "empty".into(), seq: PackedSeq::from_str_seq("") },
            FastaRecord { name: "single".into(), seq: PackedSeq::from_str_seq("G") },
            FastaRecord { name: "n-run".into(), seq: PackedSeq::from_str_seq("ACNNNNNNGT") },
        ];
        write_fasta(&path, &recs).unwrap();
        let back = read_fasta(&path).unwrap();
        assert_eq!(back, recs);
        // The writer must actually have wrapped the long record.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.lines().all(|l| l.len() <= 60));
        assert_eq!(text.lines().filter(|l| !l.starts_with('>')).count(), 3 + 1 + 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crlf_and_blank_lines_tolerated() {
        let recs = read_fasta_str(">a\r\nAC\r\n\r\nGT\r\n\n>b\r\nTT\r\n").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq.to_string_seq(), "ACGT");
        assert_eq!(recs[1].seq.to_string_seq(), "TT");
    }

    #[test]
    fn string_roundtrip_preserves_ambiguity() {
        // Unknown letters normalise to N on parse; a second round trip is
        // then exact.
        let first = read_fasta_str(">r\nACGTRYKMacgt\n").unwrap();
        assert_eq!(first[0].seq.to_string_seq(), "ACGTNNNNACGT");
        let dir = scratch_dir("ambig");
        let path = dir.join("ambig.fasta");
        write_fasta(&path, &first).unwrap();
        assert_eq!(read_fasta(&path).unwrap(), first);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
