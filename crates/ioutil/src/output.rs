//! The AGAThA artifact's output files (Appendix A.2.6): alignment scores in
//! `output/score.log`, kernel time in `output/time.json`.

use std::io::Write;
use std::path::Path;

/// Write one score per line, in task order (the artifact's `score.log`).
pub fn write_score_log(path: &Path, scores: &[i32]) -> Result<(), String> {
    let mut f =
        std::fs::File::create(path).map_err(|e| format!("create {}: {e}", path.display()))?;
    let mut buf = String::with_capacity(scores.len() * 8);
    for s in scores {
        buf.push_str(&s.to_string());
        buf.push('\n');
    }
    f.write_all(buf.as_bytes()).map_err(|e| e.to_string())
}

/// Write the kernel execution time as JSON (the artifact's `time.json`),
/// e.g. `{"kernel_ms": 12.345, "engine": "AGAThA", "tasks": 160}`.
pub fn write_time_json(
    path: &Path,
    engine: &str,
    kernel_ms: f64,
    tasks: usize,
) -> Result<(), String> {
    let json = format_time_json(engine, kernel_ms, tasks);
    std::fs::write(path, json).map_err(|e| format!("write {}: {e}", path.display()))
}

/// Render the time JSON (exposed for tests).
pub fn format_time_json(engine: &str, kernel_ms: f64, tasks: usize) -> String {
    format!(
        "{{\n  \"engine\": \"{}\",\n  \"kernel_ms\": {:.4},\n  \"tasks\": {}\n}}\n",
        escape_json(engine),
        kernel_ms,
        tasks
    )
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_log_roundtrip() {
        let dir = std::env::temp_dir().join("agatha_out_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("score.log");
        write_score_log(&path, &[10, -5, 0, 42]).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, "10\n-5\n0\n42\n");
    }

    #[test]
    fn time_json_shape() {
        let j = format_time_json("AGAThA", 12.34567, 160);
        assert!(j.contains("\"kernel_ms\": 12.3457"));
        assert!(j.contains("\"tasks\": 160"));
        assert!(j.contains("\"engine\": \"AGAThA\""));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("x\ny"), "x\\u000ay");
    }
}
