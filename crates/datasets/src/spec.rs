//! Dataset specifications: the nine named datasets of §5.1 and their
//! generation.

use agatha_align::{Scoring, Task};
use rand::{rngs::StdRng, SeedableRng};

use crate::genome::generate_genome;
use crate::profiles::Tech;
use crate::reads::sample_task;

/// Specification of one synthetic dataset.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Display name, e.g. `"HiFi HG005"`.
    pub name: String,
    /// Technology category (selects profile and scoring preset).
    pub tech: Tech,
    /// Generation seed (each HG sample uses a distinct one).
    pub seed: u64,
    /// Number of alignment tasks to generate.
    pub reads: usize,
}

/// A generated dataset: tasks plus the category's scoring preset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Display name.
    pub name: String,
    /// Technology category.
    pub tech: Tech,
    /// Alignment tasks (ids `0..reads`).
    pub tasks: Vec<Task>,
    /// Minimap2-preset scoring for this category.
    pub scoring: Scoring,
}

impl DatasetSpec {
    /// The nine datasets of the paper's evaluation, each with `reads`
    /// tasks: HiFi HG005–007 (ChineseTrio), CLR HG002–004 and ONT
    /// HG002–004 (AshkenazimTrio).
    pub fn nine_paper_datasets(reads: usize) -> Vec<DatasetSpec> {
        let mut specs = Vec::new();
        for (tech, samples, seed0) in [
            (Tech::HiFi, ["HG005", "HG006", "HG007"], 500),
            (Tech::Clr, ["HG002", "HG003", "HG004"], 200),
            (Tech::Ont, ["HG002", "HG003", "HG004"], 800),
        ] {
            for (k, sample) in samples.iter().enumerate() {
                specs.push(DatasetSpec {
                    name: format!("{} {}", tech.name(), sample),
                    tech,
                    seed: seed0 + k as u64,
                    reads,
                });
            }
        }
        specs
    }

    /// Default benchmark-scale task count, overridable through the
    /// `AGATHA_READS` environment variable.
    pub fn default_reads() -> usize {
        std::env::var("AGATHA_READS").ok().and_then(|v| v.parse().ok()).unwrap_or(300)
    }
}

/// Generate the dataset described by `spec`.
pub fn generate(spec: &DatasetSpec) -> Dataset {
    let genome = generate_genome(400_000, spec.seed.wrapping_mul(0x9E3779B97F4A7C15));
    let profile = spec.tech.profile();
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let tasks: Vec<Task> =
        (0..spec.reads).map(|id| sample_task(id as u32, &genome, &profile, &mut rng)).collect();
    Dataset { name: spec.name.clone(), tech: spec.tech, tasks, scoring: spec.tech.scoring() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_datasets_named_like_paper() {
        let specs = DatasetSpec::nine_paper_datasets(10);
        assert_eq!(specs.len(), 9);
        assert_eq!(specs[0].name, "HiFi HG005");
        assert_eq!(specs[3].name, "CLR HG002");
        assert_eq!(specs[8].name, "ONT HG004");
        let seeds: std::collections::HashSet<u64> = specs.iter().map(|s| s.seed).collect();
        assert_eq!(seeds.len(), 9, "seeds must differ");
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = &DatasetSpec::nine_paper_datasets(12)[0];
        let a = generate(spec);
        let b = generate(spec);
        for (x, y) in a.tasks.iter().zip(&b.tasks) {
            assert_eq!(x.reference, y.reference);
            assert_eq!(x.query, y.query);
        }
    }

    #[test]
    fn task_ids_sequential() {
        let spec = &DatasetSpec::nine_paper_datasets(15)[4];
        let d = generate(spec);
        for (k, t) in d.tasks.iter().enumerate() {
            assert_eq!(t.id as usize, k);
        }
    }

    #[test]
    fn workload_distribution_has_long_tail() {
        // Fig. 3(b): most tasks small, a far-right peak carrying real weight.
        let spec = DatasetSpec { name: "x".into(), tech: Tech::Ont, seed: 99, reads: 400 };
        let d = generate(&spec);
        let mut diags: Vec<u64> = d.tasks.iter().map(|t| t.antidiags() as u64).collect();
        diags.sort_unstable();
        let median = diags[diags.len() / 2];
        let total: u64 = diags.iter().sum();
        let tail_work: u64 = diags.iter().filter(|&&d| d > 3 * median).sum();
        let tail_count = diags.iter().filter(|&&d| d > 3 * median).count();
        assert!(
            tail_count as f64 / diags.len() as f64 > 0.03,
            "tail count fraction {}",
            tail_count as f64 / diags.len() as f64
        );
        assert!(
            tail_work as f64 / total as f64 > 0.25,
            "tail must dominate workload: {}",
            tail_work as f64 / total as f64
        );
    }

    #[test]
    fn termination_mix_is_realistic() {
        // Some tasks complete, a substantial share Z-drops (chimeras +
        // divergence) — the unpredictability §3.1 diagnoses.
        let spec = DatasetSpec { name: "x".into(), tech: Tech::Clr, seed: 123, reads: 120 };
        let d = generate(&spec);
        let mut dropped = 0;
        for t in &d.tasks {
            let r = agatha_align::guided::guided_align(&t.reference, &t.query, &d.scoring);
            if r.stop.z_dropped() {
                dropped += 1;
            }
        }
        let frac = dropped as f64 / d.tasks.len() as f64;
        assert!((0.15..0.85).contains(&frac), "z-drop fraction {frac}");
    }
}
