//! Minimal distribution sampling on top of `rand`'s uniform generator
//! (log-normal via Box–Muller, Pareto via inverse transform), keeping the
//! dependency set to the approved list.

use rand::Rng;

/// Sample a standard normal deviate (Box–Muller).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid log(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Sample a log-normal deviate with the given log-space parameters.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * standard_normal(rng)).exp()
}

/// Sample a Pareto deviate with scale 1 and the given shape.
pub fn pareto<R: Rng + ?Sized>(rng: &mut R, alpha: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    u.powf(-1.0 / alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn normal_mean_and_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn log_normal_median() {
        let mut rng = StdRng::seed_from_u64(2);
        let mu = 7.0;
        let mut samples: Vec<f64> = (0..10_001).map(|_| log_normal(&mut rng, mu, 0.5)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[5000];
        assert!((median.ln() - mu).abs() < 0.1, "median {median}");
    }

    #[test]
    fn pareto_is_heavy_tailed_and_bounded_below() {
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<f64> = (0..10_000).map(|_| pareto(&mut rng, 1.5)).collect();
        assert!(samples.iter().all(|&x| x >= 1.0));
        let big = samples.iter().filter(|&&x| x > 10.0).count();
        assert!(big > 10, "expected a heavy tail, got {big} samples > 10");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
        }
    }
}
