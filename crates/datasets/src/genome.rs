//! Synthetic reference genome generation (the GRCh38 stand-in).
//!
//! Real genomes are not uniform random: they have GC bias and repeat
//! content (which is what makes banding/termination interesting). The
//! generator plants tandem and interspersed repeats over a biased random
//! background.

use rand::{rngs::StdRng, Rng, SeedableRng};

/// Generate `len` base codes (0–3) with the given GC fraction and a few
/// percent of repeat content.
pub fn generate_genome(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let gc = 0.41; // human-like GC content
    let mut genome = Vec::with_capacity(len);
    for _ in 0..len {
        let r: f64 = rng.gen();
        let base = if r < gc / 2.0 {
            1 // C
        } else if r < gc {
            2 // G
        } else if r < gc + (1.0 - gc) / 2.0 {
            0 // A
        } else {
            3 // T
        };
        genome.push(base);
    }
    plant_repeats(&mut genome, &mut rng);
    genome
}

/// Overwrite ~5 % of the genome with tandem copies of short motifs and
/// ~3 % with dispersed copies of a few "transposon" sequences.
fn plant_repeats(genome: &mut [u8], rng: &mut StdRng) {
    let len = genome.len();
    if len < 1024 {
        return;
    }
    // Tandem repeats: motif length 2–16, copy number 8–64.
    let mut covered = 0usize;
    while covered < len / 20 {
        let motif_len = rng.gen_range(2..=16);
        let copies = rng.gen_range(8..=64);
        let total = motif_len * copies;
        if total + 1 >= len {
            break;
        }
        let start = rng.gen_range(0..len - total - 1);
        let motif: Vec<u8> = (0..motif_len).map(|_| rng.gen_range(0..4)).collect();
        for c in 0..copies {
            let at = start + c * motif_len;
            genome[at..at + motif_len].copy_from_slice(&motif);
        }
        covered += total;
    }
    // Interspersed repeats: 3 families, 300-base elements.
    let family: Vec<Vec<u8>> =
        (0..3).map(|_| (0..300).map(|_| rng.gen_range(0..4)).collect()).collect();
    let mut placed = 0usize;
    while placed < len / 33 {
        let f = &family[rng.gen_range(0..family.len())];
        if f.len() + 1 >= len {
            break;
        }
        let start = rng.gen_range(0..len - f.len() - 1);
        genome[start..start + f.len()].copy_from_slice(f);
        placed += f.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(generate_genome(10_000, 7), generate_genome(10_000, 7));
        assert_ne!(generate_genome(10_000, 7), generate_genome(10_000, 8));
    }

    #[test]
    fn gc_content_in_range() {
        let g = generate_genome(100_000, 1);
        let gc = g.iter().filter(|&&b| b == 1 || b == 2).count() as f64 / g.len() as f64;
        assert!((0.35..0.50).contains(&gc), "GC {gc}");
    }

    #[test]
    fn codes_valid() {
        assert!(generate_genome(5_000, 3).iter().all(|&b| b < 4));
    }

    #[test]
    fn contains_tandem_repeats() {
        // Some position should start a long exact self-overlap at small
        // period — evidence of a tandem repeat.
        let g = generate_genome(200_000, 11);
        let mut found = false;
        'outer: for start in (0..g.len() - 256).step_by(97) {
            for period in 2..=16 {
                let mut run = 0;
                while start + period + run < g.len().min(start + 256)
                    && g[start + run] == g[start + period + run]
                {
                    run += 1;
                }
                if run >= 64 {
                    found = true;
                    break 'outer;
                }
            }
        }
        assert!(found, "expected at least one tandem repeat");
    }
}
