//! Read sampling with technology-specific errors, emulating the output of
//! Minimap2's seed-and-chain pre-computation: (reference segment, query
//! segment) pairs anchored at their starts, ready for extension alignment.

use agatha_align::{PackedSeq, Task};
use rand::{rngs::StdRng, Rng};

use crate::distributions::{log_normal, pareto};
use crate::profiles::TechProfile;

/// Sample one read length from the profile's body+tail distribution.
pub fn sample_length(profile: &TechProfile, rng: &mut StdRng) -> usize {
    let len = if rng.gen_bool(profile.tail_fraction) {
        // The far-right workload peak of Fig. 3(b): extra-long reads
        // clustered near the technology's length ceiling, mildly spread by
        // a Pareto factor.
        profile.max_len as f64 / pareto(rng, profile.tail_alpha).min(2.0)
    } else {
        log_normal(rng, profile.len_log_mean, profile.len_log_sigma)
    };
    (len as usize).clamp(64, profile.max_len)
}

/// Apply the sequencing error model to a template, returning the read.
pub fn apply_errors(template: &[u8], profile: &TechProfile, rng: &mut StdRng) -> Vec<u8> {
    let mut read = Vec::with_capacity(template.len() + 16);
    for &base in template {
        if rng.gen_bool(profile.del_rate) {
            continue; // deletion
        }
        if rng.gen_bool(profile.ins_rate) {
            read.push(rng.gen_range(0..4)); // insertion before the base
        }
        if rng.gen_bool(profile.sub_rate) {
            let sub = (base + rng.gen_range(1..4)) % 4; // guaranteed different
            read.push(sub);
        } else {
            read.push(base);
        }
    }
    read
}

/// Generate one extension task from the genome.
///
/// With probability `chimera_fraction` the read's tail past a random
/// breakpoint is random sequence (the alignment should Z-drop near the
/// breakpoint); with probability `divergent_fraction` a divergence burst is
/// inserted mid-read instead.
pub fn sample_task(id: u32, genome: &[u8], profile: &TechProfile, rng: &mut StdRng) -> Task {
    let len = sample_length(profile, rng).min(genome.len() / 2);
    let start = rng.gen_range(0..genome.len() - len);
    let template = &genome[start..start + len];

    let mut read = apply_errors(template, profile, rng);

    let kind: f64 = rng.gen();
    if kind < profile.junk_fraction {
        // Spurious extension candidate: no homology at all past a short
        // seed; the Z-drop fires within the first few anti-diagonals.
        let seed_len = 24.min(read.len());
        for slot in read.iter_mut().skip(seed_len) {
            *slot = rng.gen_range(0..4);
        }
    } else if kind < profile.junk_fraction + profile.chimera_fraction {
        // Chimeric tail: replace everything past the breakpoint.
        let bp = (read.len() as f64 * rng.gen_range(0.05..0.55)) as usize;
        for slot in read.iter_mut().skip(bp) {
            *slot = rng.gen_range(0..4);
        }
    } else if kind < profile.junk_fraction + profile.chimera_fraction + profile.divergent_fraction {
        // Divergence burst: heavy substitutions over a mid-read window.
        let wlen = (read.len() / 8).max(16).min(read.len());
        let wstart = rng.gen_range(0..read.len() - wlen + 1);
        for slot in read.iter_mut().skip(wstart).take(wlen) {
            if rng.gen_bool(0.35) {
                *slot = rng.gen_range(0..4);
            }
        }
    }

    // The reference segment the chain anchors to: the template plus margin
    // for read insertions (so a clean extension can reach the read end).
    let margin = (len / 8).max(32);
    let ref_end = (start + len + margin).min(genome.len());
    let reference = &genome[start..ref_end];

    Task { id, reference: PackedSeq::from_codes(reference), query: PackedSeq::from_codes(&read) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::generate_genome;
    use crate::profiles::Tech;
    use agatha_align::guided::guided_align;
    use rand::SeedableRng;

    #[test]
    fn lengths_respect_bounds() {
        let p = Tech::Ont.profile();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let l = sample_length(&p, &mut rng);
            assert!((64..=p.max_len).contains(&l));
        }
    }

    #[test]
    fn tail_produces_long_reads() {
        let p = Tech::Ont.profile();
        let mut rng = StdRng::seed_from_u64(2);
        let lens: Vec<usize> = (0..3000).map(|_| sample_length(&p, &mut rng)).collect();
        let median = {
            let mut s = lens.clone();
            s.sort_unstable();
            s[s.len() / 2]
        };
        let long = lens.iter().filter(|&&l| l > 4 * median).count() as f64 / lens.len() as f64;
        assert!(long > 0.02, "need a visible long tail, got {long}");
    }

    #[test]
    fn hifi_errors_sparse_clr_errors_dense() {
        let genome = generate_genome(50_000, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let template = &genome[..5000];
        let hifi = apply_errors(template, &Tech::HiFi.profile(), &mut rng);
        let clr = apply_errors(template, &Tech::Clr.profile(), &mut rng);
        let diff = |read: &[u8]| {
            read.iter().zip(template).filter(|(a, b)| a != b).count() as f64 / template.len() as f64
        };
        // Positional diff over-counts after indels, but the ordering holds.
        assert!(diff(&hifi) < diff(&clr));
    }

    #[test]
    fn clean_reads_align_to_their_templates() {
        let genome = generate_genome(100_000, 5);
        let mut p = Tech::HiFi.profile();
        p.junk_fraction = 0.0;
        p.chimera_fraction = 0.0;
        p.divergent_fraction = 0.0;
        let mut rng = StdRng::seed_from_u64(6);
        let scoring = Tech::HiFi.scoring();
        for id in 0..10 {
            let t = sample_task(id, &genome, &p, &mut rng);
            let r = guided_align(&t.reference, &t.query, &scoring);
            // A clean HiFi read must align nearly end-to-end: score close to
            // match_score × len.
            let ideal = scoring.max_score() * t.query_len() as i32;
            assert!(r.score > ideal * 8 / 10, "task {id}: score {} vs ideal {ideal}", r.score);
        }
    }

    #[test]
    fn chimeric_reads_zdrop() {
        let genome = generate_genome(100_000, 7);
        let mut p = Tech::HiFi.profile();
        p.junk_fraction = 0.0;
        p.chimera_fraction = 1.0;
        p.divergent_fraction = 0.0;
        let mut rng = StdRng::seed_from_u64(8);
        let scoring = Tech::HiFi.scoring();
        let mut dropped = 0;
        for id in 0..20 {
            let t = sample_task(id, &genome, &p, &mut rng);
            let r = guided_align(&t.reference, &t.query, &scoring);
            if r.stop.z_dropped() {
                dropped += 1;
            }
        }
        assert!(dropped >= 16, "chimeras must usually terminate, got {dropped}/20");
    }
}
