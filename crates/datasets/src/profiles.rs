//! Sequencing-technology profiles (§5.1's three dataset categories).
//!
//! Lengths are expressed at *benchmark scale*: roughly 1/8 of the real
//! technologies' read lengths, with band width and Z-drop threshold scaled
//! accordingly (see `Scoring::scaled_guides`). This keeps the full 9-dataset
//! × 10-engine sweeps tractable while preserving every distributional
//! property the scheduling results depend on.

use agatha_align::Scoring;

/// Sequencing technology category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tech {
    /// PacBio HiFi: long, highly accurate circular-consensus reads.
    HiFi,
    /// PacBio CLR: long continuous reads with high error rates.
    Clr,
    /// Oxford Nanopore: the longest reads, heavy length tail, mixed errors.
    Ont,
}

impl Tech {
    /// Display name used in dataset labels.
    pub fn name(self) -> &'static str {
        match self {
            Tech::HiFi => "HiFi",
            Tech::Clr => "CLR",
            Tech::Ont => "ONT",
        }
    }

    /// The Minimap2 preset for this category ("we used Minimap2's preset
    /// parameters for each dataset category", §5.1), at benchmark scale.
    pub fn scoring(self) -> Scoring {
        match self {
            Tech::HiFi => Scoring::preset_hifi().with_band(200),
            Tech::Clr => Scoring::preset_clr().scaled_guides(2),
            Tech::Ont => Scoring::preset_ont().scaled_guides(2),
        }
    }

    /// Generation parameters for this category.
    pub fn profile(self) -> TechProfile {
        match self {
            Tech::HiFi => TechProfile {
                tech: self,
                len_log_mean: 7.0, // median ≈ 1100 bases
                len_log_sigma: 0.25,
                tail_fraction: 0.06,
                tail_alpha: 1.8,
                max_len: 8_000,
                sub_rate: 0.002,
                ins_rate: 0.001,
                del_rate: 0.001,
                junk_fraction: 0.45,
                chimera_fraction: 0.28,
                divergent_fraction: 0.10,
            },
            Tech::Clr => TechProfile {
                tech: self,
                len_log_mean: 7.1, // median ≈ 1210
                len_log_sigma: 0.45,
                tail_fraction: 0.08,
                tail_alpha: 1.5,
                max_len: 9_000,
                sub_rate: 0.06,
                ins_rate: 0.04,
                del_rate: 0.02,
                junk_fraction: 0.45,
                chimera_fraction: 0.30,
                divergent_fraction: 0.12,
            },
            Tech::Ont => TechProfile {
                tech: self,
                len_log_mean: 7.0, // median ≈ 1100, but the heaviest tail
                len_log_sigma: 0.6,
                tail_fraction: 0.10,
                tail_alpha: 1.3,
                max_len: 10_000,
                sub_rate: 0.04,
                ins_rate: 0.02,
                del_rate: 0.03,
                junk_fraction: 0.45,
                chimera_fraction: 0.30,
                divergent_fraction: 0.12,
            },
        }
    }
}

/// Read-generation parameters for one technology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechProfile {
    /// Owning technology.
    pub tech: Tech,
    /// Log-space mean of the read-length body.
    pub len_log_mean: f64,
    /// Log-space sigma of the read-length body.
    pub len_log_sigma: f64,
    /// Fraction of reads whose length is multiplied by a Pareto deviate —
    /// the far-right workload peak of Fig. 3(b) ("ranged between 5∼20 % for
    /// all datasets", §5.6).
    pub tail_fraction: f64,
    /// Pareto shape of the tail multiplier (smaller = heavier).
    pub tail_alpha: f64,
    /// Hard cap on read length (bases).
    pub max_len: usize,
    /// Per-base substitution probability.
    pub sub_rate: f64,
    /// Per-base insertion probability.
    pub ins_rate: f64,
    /// Per-base deletion probability.
    pub del_rate: f64,
    /// Fraction of extension candidates that are spurious (seed hits with
    /// no real homology): the alignment Z-drops almost immediately. Read
    /// mapping generates many such candidates per read; only the best
    /// chain survives.
    pub junk_fraction: f64,
    /// Fraction of reads that are chimeric: the tail past a random
    /// breakpoint comes from elsewhere, so the extension Z-drops there.
    pub chimera_fraction: f64,
    /// Fraction of reads with a burst of extra divergence (SV-like),
    /// which may or may not survive the Z-drop.
    pub divergent_fraction: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_distinct() {
        let h = Tech::HiFi.profile();
        let c = Tech::Clr.profile();
        let o = Tech::Ont.profile();
        assert!(h.sub_rate < c.sub_rate);
        assert!(o.tail_alpha < c.tail_alpha, "ONT tail must be heaviest");
        assert!(o.max_len > c.max_len);
    }

    #[test]
    fn tail_fractions_match_paper_range() {
        for t in [Tech::HiFi, Tech::Clr, Tech::Ont] {
            let f = t.profile().tail_fraction;
            assert!((0.05..=0.20).contains(&f), "{:?}: {f}", t);
        }
    }

    #[test]
    fn scorings_validate() {
        for t in [Tech::HiFi, Tech::Clr, Tech::Ont] {
            t.scoring().validate().unwrap();
            assert!(t.scoring().banded());
            assert!(t.scoring().zdrop_enabled());
        }
    }
}
