//! Controlled long/short mixtures for Fig. 13: "datasets by varying the
//! percentage of long sequences (4096 bp) against short sequences (128 bp)".

use agatha_align::{PackedSeq, Scoring, Task};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::genome::generate_genome;
use crate::profiles::Tech;
use crate::spec::Dataset;

/// Length of a "long" sequence in the mixture.
pub const LONG_LEN: usize = 4096;
/// Length of a "short" sequence in the mixture.
pub const SHORT_LEN: usize = 128;

/// Generate a mixture dataset with `pct_long` percent long tasks.
///
/// Long tasks are scattered through the batch (not front-loaded), matching
/// the paper's arbitrary incoming order; the RNG decides placement.
pub fn long_short_mix(pct_long: f64, total: usize, seed: u64) -> Dataset {
    assert!((0.0..=100.0).contains(&pct_long));
    let genome = generate_genome(200_000, seed.wrapping_mul(0x2545F4914F6CDD1D));
    let mut rng = StdRng::seed_from_u64(seed);
    let long_count = ((total as f64) * pct_long / 100.0).round() as usize;

    // Choose which slots hold long tasks.
    let mut is_long = vec![false; total];
    let mut placed = 0;
    while placed < long_count {
        let at = rng.gen_range(0..total);
        if !is_long[at] {
            is_long[at] = true;
            placed += 1;
        }
    }

    let profile = {
        // Near-clean reads: Fig. 13 isolates workload balancing, not
        // termination.
        let mut p = Tech::Clr.profile();
        p.junk_fraction = 0.0;
        p.chimera_fraction = 0.0;
        p.divergent_fraction = 0.0;
        p
    };
    let tasks: Vec<Task> = is_long
        .iter()
        .enumerate()
        .map(|(id, &long)| {
            let len = if long { LONG_LEN } else { SHORT_LEN };
            let start = rng.gen_range(0..genome.len() - 2 * len);
            let template = &genome[start..start + len];
            let read = crate::reads::apply_errors(template, &profile, &mut rng);
            let margin = (len / 8).max(32);
            Task {
                id: id as u32,
                reference: PackedSeq::from_codes(&genome[start..start + len + margin]),
                query: PackedSeq::from_codes(&read),
            }
        })
        .collect();

    Dataset {
        name: format!("mix {pct_long}% long"),
        tech: Tech::Clr,
        tasks,
        scoring: Scoring::preset_clr().scaled_guides(4),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentages_respected() {
        for pct in [25.0, 10.0, 5.0, 1.0] {
            let d = long_short_mix(pct, 200, 42);
            let long = d.tasks.iter().filter(|t| t.query_len() > LONG_LEN / 2).count();
            let expect = (200.0 * pct / 100.0).round() as usize;
            assert_eq!(long, expect, "pct {pct}");
        }
    }

    #[test]
    fn long_tasks_scattered() {
        let d = long_short_mix(25.0, 200, 7);
        let first_half_long =
            d.tasks[..100].iter().filter(|t| t.query_len() > LONG_LEN / 2).count();
        assert!((10..=40).contains(&first_half_long), "placement skew: {first_half_long}");
    }

    #[test]
    fn deterministic() {
        let a = long_short_mix(10.0, 100, 9);
        let b = long_short_mix(10.0, 100, 9);
        for (x, y) in a.tasks.iter().zip(&b.tasks) {
            assert_eq!(x.query, y.query);
        }
    }

    #[test]
    fn zero_and_full() {
        assert!(long_short_mix(0.0, 50, 1).tasks.iter().all(|t| t.query_len() < 1000));
        assert!(long_short_mix(100.0, 50, 1).tasks.iter().all(|t| t.query_len() > 1000));
    }
}
