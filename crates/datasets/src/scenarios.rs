//! Declarative scenario registry (ROADMAP "scenario diversity").
//!
//! A *scenario* binds a workload name to everything the suite needs to run
//! it end to end: a score model (through its [`Scoring`] constructor), a
//! deterministic task generator, the baseline set it is benchmarked
//! against, and the fill-tier gate expectation its score bounds imply. One
//! entry in the [`scenario!`] invocation below surfaces the workload
//! simultaneously in the CLI (`--scenario` on `align`/`serve`, the
//! `agatha scenarios` listing), the `AGATHA_SCENARIO` environment override,
//! the per-scenario `pipeline_bench` rows, and the CI scenario matrix —
//! none of those sites enumerate names themselves; they all iterate
//! [`ALL`]. This is the ssufid `wordpress_plugin!` idiom applied to
//! alignment workloads: declare once, appear everywhere.

use agatha_align::block::BlockCtx;
use agatha_align::{PackedSeq, Scoring, Task, BLOCK, BLOSUM62};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::genome::generate_genome;
use crate::profiles::Tech;
use crate::spec::{generate, DatasetSpec};

/// What the scenario's score-model bounds imply for the overflow gates: a
/// representative task shape and whether the i16 wavefront's exactness gate
/// admits it. Registered per scenario so the bench and CI smoke checks can
/// assert the gate derivation instead of assuming DNA constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateExpectation {
    /// Representative `(reference, query)` lengths for this workload.
    pub typical_dims: (usize, usize),
    /// Whether `BlockCtx::i16_exact` holds for a task of those dimensions
    /// under this scenario's scoring (at the paper's 8×8 geometry).
    pub i16_exact: bool,
}

/// One registered workload: name → (score model, dataset generator,
/// baseline set, gate expectations).
#[derive(Clone, Copy)]
pub struct Scenario {
    /// Registry key (`--scenario` / `AGATHA_SCENARIO` value).
    pub name: &'static str,
    /// One-line description for `agatha scenarios` and `--scenario help`.
    pub summary: &'static str,
    /// The scenario's scoring preset (carrying its score model — fixed DNA
    /// or substitution matrix — whose declared bounds drive the gates).
    pub scoring: fn() -> Scoring,
    /// Deterministic task generator: `(seed, reads) → tasks`.
    pub tasks: fn(u64, usize) -> Vec<Task>,
    /// Baseline engines this workload is benchmarked against.
    pub baselines: &'static [&'static str],
    /// Declared gate behaviour, asserted by [`Scenario::check_gate`].
    pub gate: GateExpectation,
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("name", &self.name)
            .field("summary", &self.summary)
            .field("baselines", &self.baselines)
            .field("gate", &self.gate)
            .finish()
    }
}

impl Scenario {
    /// Whether the registered gate expectation matches what the block
    /// layer actually derives from this scenario's score-model bounds.
    pub fn check_gate(&self) -> bool {
        let sc = (self.scoring)();
        let (n, m) = self.gate.typical_dims;
        BlockCtx::with_block_dim(n, m, &sc, BLOCK).i16_exact == self.gate.i16_exact
    }
}

/// Look up a scenario by registry key.
pub fn find(name: &str) -> Option<&'static Scenario> {
    ALL.iter().copied().find(|s| s.name == name)
}

/// Declare the scenario registry. Each `module / STATIC { ... }` block
/// becomes a module exporting one public static [`Scenario`] plus a row in
/// [`ALL`]; adding a workload is one new block in the single invocation
/// below — every consumer (CLI, env override, bench, CI) iterates [`ALL`]
/// and needs no edit.
#[macro_export]
macro_rules! scenario {
    ($( $mod_name:ident / $static_name:ident {
        name: $name:literal,
        summary: $summary:literal,
        scoring: $scoring:expr,
        tasks: $tasks:expr,
        baselines: [$($baseline:literal),* $(,)?],
        typical_dims: ($n:expr, $m:expr),
        i16_exact: $i16:expr $(,)?
    } )+) => {
        $(
            pub mod $mod_name {
                use super::*;
                #[doc = $summary]
                pub static $static_name: Scenario = Scenario {
                    name: $name,
                    summary: $summary,
                    scoring: $scoring,
                    tasks: $tasks,
                    baselines: &[$($baseline),*],
                    gate: GateExpectation { typical_dims: ($n, $m), i16_exact: $i16 },
                };
            }
            pub use $mod_name::$static_name;
        )+

        /// Every registered scenario, in declaration order.
        pub static ALL: &[&Scenario] = &[$( &$mod_name::$static_name ),+];
    };
}

scenario! {
    dna_short / DNA_SHORT {
        name: "dna-short",
        summary: "BWA-style short DNA reads (180-300 bp, ~1% error) against local reference windows",
        scoring: Scoring::preset_bwa,
        tasks: short_read_tasks,
        baselines: ["gasal2", "saloba"],
        typical_dims: (360, 300),
        i16_exact: true,
    }
    dna_long / DNA_LONG {
        name: "dna-long",
        summary: "PacBio CLR long reads under the minimap2 CLR preset (heavy-tailed lengths, chimeras)",
        scoring: clr_scoring,
        tasks: clr_tasks,
        baselines: ["gasal2", "saloba", "manymap", "logan"],
        typical_dims: (20_000, 18_000),
        i16_exact: false,
    }
    protein_blosum62 / PROTEIN_BLOSUM62 {
        name: "protein-blosum62",
        summary: "Protein alignment under the BLOSUM62 substitution matrix (bounds +11/-4, 8-bit packing)",
        scoring: Scoring::preset_blosum62,
        tasks: protein_tasks,
        baselines: ["cpu"],
        typical_dims: (300, 250),
        i16_exact: true,
    }
    ont_accuracy / ONT_ACCURACY {
        name: "ont-accuracy",
        summary: "Nanopore long reads under the minimap2 ONT preset (high error, divergence-driven z-drops)",
        scoring: ont_scoring,
        tasks: ont_tasks,
        baselines: ["gasal2", "saloba", "manymap", "logan"],
        typical_dims: (25_000, 22_000),
        i16_exact: false,
    }
}

fn clr_scoring() -> Scoring {
    Tech::Clr.scoring()
}

fn ont_scoring() -> Scoring {
    Tech::Ont.scoring()
}

/// `dna-short`: fixed-seed short reads sampled from a synthetic genome
/// with ~1% substitutions and small indel margins — the regime whose
/// scores provably fit the i16 tier.
fn short_read_tasks(seed: u64, reads: usize) -> Vec<Task> {
    let genome = generate_genome(200_000, seed.wrapping_mul(0x9E3779B97F4A7C15));
    let mut rng = StdRng::seed_from_u64(seed);
    (0..reads)
        .map(|id| {
            let len = rng.gen_range(180..300);
            let start = rng.gen_range(0..genome.len() - len - 64);
            let mut read: Vec<u8> = genome[start..start + len].to_vec();
            for c in &mut read {
                if rng.gen_bool(0.01) {
                    *c = rng.gen_range(0..4);
                }
            }
            let margin = 32;
            let r0 = start.saturating_sub(margin);
            let r1 = (start + len + margin).min(genome.len());
            Task {
                id: id as u32,
                reference: PackedSeq::from_codes(&genome[r0..r1]),
                query: PackedSeq::from_codes(&read),
            }
        })
        .collect()
}

/// `dna-long`: the paper's CLR category via [`DatasetSpec`].
fn clr_tasks(seed: u64, reads: usize) -> Vec<Task> {
    generate(&DatasetSpec { name: "dna-long".to_string(), tech: Tech::Clr, seed, reads }).tasks
}

/// `ont-accuracy`: the paper's ONT category via [`DatasetSpec`].
fn ont_tasks(seed: u64, reads: usize) -> Vec<Task> {
    generate(&DatasetSpec { name: "ont-accuracy".to_string(), tech: Tech::Ont, seed, reads }).tasks
}

/// `protein-blosum62`: random residue references with queries mutated from
/// a window of each (substitutions plus light indels), packed at 8 bits
/// under the BLOSUM62 alphabet.
fn protein_tasks(seed: u64, reads: usize) -> Vec<Task> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xB105_F00D) | 1);
    (0..reads)
        .map(|id| {
            let rlen = rng.gen_range(150..400);
            // Real residues only (X is reserved for ambiguity/padding).
            let reference: Vec<u8> = (0..rlen).map(|_| rng.gen_range(0..20u8)).collect();
            let qlen = rng.gen_range(100..=rlen.min(350));
            let start = rng.gen_range(0..=rlen - qlen);
            let mut query = Vec::with_capacity(qlen + 8);
            for &c in &reference[start..start + qlen] {
                let roll = rng.gen_range(0..100);
                if roll < 6 {
                    query.push(rng.gen_range(0..20u8)); // substitution
                } else if roll < 7 {
                    query.push(c);
                    query.push(rng.gen_range(0..20u8)); // insertion
                } else if roll < 8 {
                    // deletion
                } else {
                    query.push(c);
                }
            }
            Task {
                id: id as u32,
                reference: PackedSeq::from_protein_codes(&reference, &BLOSUM62),
                query: PackedSeq::from_protein_codes(&query, &BLOSUM62),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use agatha_align::guided::guided_align;
    use agatha_align::ScoreModel;

    #[test]
    fn registry_names_are_unique_and_findable() {
        let mut names: Vec<&str> = ALL.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL.len(), "duplicate scenario names");
        for s in ALL {
            assert!(std::ptr::eq(find(s.name).unwrap(), *s));
            assert!(!s.summary.is_empty());
            assert!(!s.baselines.is_empty());
        }
        assert!(find("no-such-scenario").is_none());
    }

    #[test]
    fn registered_gates_match_derived_gates() {
        for s in ALL {
            assert!(
                s.check_gate(),
                "{}: registered i16_exact diverges from the derived gate",
                s.name
            );
        }
    }

    #[test]
    fn every_scenario_generates_and_aligns() {
        for s in ALL {
            let sc = (s.scoring)();
            sc.validate().unwrap_or_else(|e| panic!("{}: invalid scoring: {e}", s.name));
            let tasks = (s.tasks)(42, 6);
            assert_eq!(tasks.len(), 6, "{}", s.name);
            let again = (s.tasks)(42, 6);
            for (a, b) in tasks.iter().zip(&again) {
                assert_eq!(a.reference, b.reference, "{}: generator must be deterministic", s.name);
                assert_eq!(a.query, b.query, "{}", s.name);
            }
            for t in &tasks {
                assert!(t.ref_len() > 0 && t.query_len() > 0, "{}", s.name);
                // The guided reference must run every scenario's model.
                let r = guided_align(&t.reference, &t.query, &sc);
                assert!(r.score >= 0 || r.stop.z_dropped(), "{}: {r:?}", s.name);
            }
        }
    }

    #[test]
    fn protein_scenario_uses_the_matrix_model() {
        let s = find("protein-blosum62").unwrap();
        let sc = (s.scoring)();
        assert!(matches!(sc.model, ScoreModel::Matrix(_)));
        assert_eq!(sc.max_score(), 11);
        assert_eq!(sc.min_score(), -4);
        let tasks = (s.tasks)(7, 3);
        for t in &tasks {
            assert_eq!(t.reference.bits(), 8, "protein packs at 8 bits");
            assert_eq!(t.query.pad(), BLOSUM62.pad_code());
        }
    }
}
