//! # agatha-datasets
//!
//! Synthetic stand-ins for the paper's evaluation data (§5.1): GRCh38 as
//! the reference and nine Genome-in-a-Bottle query sets — HiFi HG005–007,
//! CLR HG002–004 and ONT HG002–004 — pre-processed by Minimap2's
//! seed-and-chain stage into extension-alignment tasks.
//!
//! What matters for reproducing the paper's *performance* results is the
//! task-size and termination-behaviour distribution, not genomic content
//! (DESIGN.md §1). The generators therefore model:
//!
//! * technology-specific read-length distributions (log-normal bodies with
//!   Pareto tails; ONT's tail is the heaviest),
//! * technology-specific error profiles (HiFi ≈ 0.4 %, CLR ≈ 12 %,
//!   ONT ≈ 8 %),
//! * chimeric/divergent reads whose alignments Z-drop partway — the source
//!   of the unpredictable termination the paper's §3.1 diagnosis centres
//!   on,
//! * the far-right workload peak of Fig. 3(b) (5–20 % of alignments).
//!
//! Everything is seeded and deterministic.

pub mod chain;
pub mod distributions;
pub mod genome;
pub mod mixes;
pub mod profiles;
pub mod reads;
pub mod scenarios;
pub mod spec;

pub use mixes::long_short_mix;
pub use profiles::{Tech, TechProfile};
pub use scenarios::{Scenario, ALL as SCENARIOS};
pub use spec::{generate, Dataset, DatasetSpec};
