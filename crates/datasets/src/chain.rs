//! Seed-and-chain pre-computation — the Minimap2 stage that *produces* the
//! extension-alignment tasks the paper accelerates ("we ran them through
//! the pre-computing steps to obtain the final datasets for alignment",
//! §5.1).
//!
//! This is a compact but real implementation of the classic pipeline:
//!
//! 1. **Indexing**: all k-mers of the reference, hashed to positions.
//! 2. **Seeding**: exact k-mer matches (anchors) between read and
//!    reference.
//! 3. **Chaining**: a 1-D dynamic program over anchors sorted by reference
//!    position, scoring co-linear chains with Minimap2-style gap costs.
//! 4. **Task extraction**: the best chain's span, padded by the band width,
//!    becomes the (reference segment, query segment) extension task.
//!
//! The synthetic dataset generators bypass this stage (they know the true
//! origin of each read); this module exists so the full pipeline can be run
//! end-to-end on arbitrary FASTA inputs, and to characterise how chaining
//! shapes the task-size distribution.

use std::collections::HashMap;

use agatha_align::{PackedSeq, Task};

/// A k-mer match between read and reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Anchor {
    /// Reference position of the k-mer start.
    pub ref_pos: u32,
    /// Read position of the k-mer start.
    pub read_pos: u32,
}

/// A scored co-linear chain of anchors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chain {
    /// Chain score (higher is better).
    pub score: i64,
    /// Member anchors, in increasing reference position.
    pub anchors: Vec<Anchor>,
}

impl Chain {
    /// Reference span covered by the chain (start, end-exclusive of k-mers'
    /// starts).
    pub fn ref_span(&self) -> (u32, u32) {
        (
            self.anchors.first().map_or(0, |a| a.ref_pos),
            self.anchors.last().map_or(0, |a| a.ref_pos),
        )
    }

    /// Read span covered by the chain.
    pub fn read_span(&self) -> (u32, u32) {
        (
            self.anchors.first().map_or(0, |a| a.read_pos),
            self.anchors.last().map_or(0, |a| a.read_pos),
        )
    }
}

/// K-mer index over a reference genome.
#[derive(Debug)]
pub struct KmerIndex {
    k: usize,
    /// k-mer code (2 bits/base) → reference positions. K-mers containing
    /// `N` are skipped, like minimizer indexes do.
    map: HashMap<u64, Vec<u32>>,
    /// Occurrence cap: k-mers more frequent than this are masked as
    /// repeats (Minimap2's `-f` filtering).
    max_occ: usize,
}

impl KmerIndex {
    /// Build an index with k-mer length `k` (≤ 31) over base codes.
    pub fn build(genome: &[u8], k: usize, max_occ: usize) -> KmerIndex {
        assert!((1..=31).contains(&k), "k must be in 1..=31");
        let mut map: HashMap<u64, Vec<u32>> = HashMap::new();
        let mask = (1u64 << (2 * k)) - 1;
        let mut code = 0u64;
        let mut valid = 0usize; // consecutive non-N bases folded in
        for (i, &b) in genome.iter().enumerate() {
            if b > 3 {
                valid = 0;
                code = 0;
                continue;
            }
            code = ((code << 2) | b as u64) & mask;
            valid += 1;
            if valid >= k {
                map.entry(code).or_default().push((i + 1 - k) as u32);
            }
        }
        map.retain(|_, v| v.len() <= max_occ);
        KmerIndex { k, map, max_occ }
    }

    /// K-mer length.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of distinct (unmasked) k-mers.
    pub fn distinct_kmers(&self) -> usize {
        self.map.len()
    }

    /// Find all anchors for a read (exact k-mer matches).
    pub fn anchors(&self, read: &[u8]) -> Vec<Anchor> {
        let k = self.k;
        if read.len() < k {
            return Vec::new();
        }
        let mask = (1u64 << (2 * k)) - 1;
        let mut out = Vec::new();
        let mut code = 0u64;
        let mut valid = 0usize;
        for (j, &b) in read.iter().enumerate() {
            if b > 3 {
                valid = 0;
                code = 0;
                continue;
            }
            code = ((code << 2) | b as u64) & mask;
            valid += 1;
            if valid >= k {
                if let Some(positions) = self.map.get(&code) {
                    let read_pos = (j + 1 - k) as u32;
                    for &p in positions.iter().take(self.max_occ) {
                        out.push(Anchor { ref_pos: p, read_pos });
                    }
                }
            }
        }
        out.sort_by_key(|a| (a.ref_pos, a.read_pos));
        out
    }
}

/// Chaining parameters (Minimap2-style).
#[derive(Debug, Clone, Copy)]
pub struct ChainParams {
    /// Score per anchor (≈ k-mer length).
    pub match_score: i64,
    /// Maximum gap between chained anchors on either sequence.
    pub max_gap: u32,
    /// Gap-difference penalty weight.
    pub gap_penalty: f64,
    /// How many predecessors each anchor examines (Minimap2's `-z`-style
    /// lookback bound; keeps chaining near-linear).
    pub lookback: usize,
}

impl Default for ChainParams {
    fn default() -> ChainParams {
        ChainParams { match_score: 15, max_gap: 2000, gap_penalty: 0.4, lookback: 64 }
    }
}

/// Chain anchors with the classic sparse DP; returns the best chain, or
/// `None` when there are no anchors.
pub fn chain_anchors(anchors: &[Anchor], params: &ChainParams) -> Option<Chain> {
    if anchors.is_empty() {
        return None;
    }
    let n = anchors.len();
    let mut score = vec![0i64; n];
    let mut prev = vec![usize::MAX; n];
    for i in 0..n {
        score[i] = params.match_score;
        let lo = i.saturating_sub(params.lookback);
        for j in (lo..i).rev() {
            let a = anchors[j];
            let b = anchors[i];
            if a.ref_pos >= b.ref_pos || a.read_pos >= b.read_pos {
                continue; // must be strictly co-linear
            }
            let dr = (b.ref_pos - a.ref_pos) as i64;
            let dq = (b.read_pos - a.read_pos) as i64;
            if dr as u32 > params.max_gap || dq as u32 > params.max_gap {
                continue;
            }
            let gap = (dr - dq).abs() as f64;
            let gain = params.match_score.min(dr.min(dq)) - (params.gap_penalty * gap) as i64;
            let cand = score[j] + gain;
            if cand > score[i] {
                score[i] = cand;
                prev[i] = j;
            }
        }
    }
    let best = (0..n).max_by_key(|&i| score[i])?;
    let mut members = Vec::new();
    let mut at = best;
    loop {
        members.push(anchors[at]);
        if prev[at] == usize::MAX {
            break;
        }
        at = prev[at];
    }
    members.reverse();
    Some(Chain { score: score[best], anchors: members })
}

/// Run the full pre-computation for one read: seed, chain, and extract the
/// extension task (chain span padded by `pad` on the reference side).
pub fn precompute_task(
    id: u32,
    genome: &[u8],
    index: &KmerIndex,
    read: &[u8],
    pad: usize,
    params: &ChainParams,
) -> Option<Task> {
    let anchors = index.anchors(read);
    let chain = chain_anchors(&anchors, params)?;
    let (r0, r1) = chain.ref_span();
    let (q0, _q1) = chain.read_span();
    // Extension starts at the chain start; align the remainder of the read
    // from there (Minimap2 extends from the first anchor both ways; we model
    // the forward extension, which is where the guided DP runs).
    let ref_start = (r0 as usize).saturating_sub(q0 as usize);
    let ref_end = ((r1 as usize + (read.len() - q0 as usize)) + pad).min(genome.len());
    if ref_start >= ref_end {
        return None;
    }
    Some(Task {
        id,
        reference: PackedSeq::from_codes(&genome[ref_start..ref_end]),
        query: PackedSeq::from_codes(read),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::generate_genome;
    use agatha_align::guided::guided_align;
    use agatha_align::Scoring;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn index_finds_planted_kmer() {
        // All-A genome with a distinctive 12-mer planted at position 100.
        let mut genome = vec![0u8; 200];
        let motif = [1u8, 2, 3, 1, 2, 3, 0, 1, 2, 3, 1, 2];
        genome[100..112].copy_from_slice(&motif);
        let idx = KmerIndex::build(&genome, 12, 16);
        let anchors = idx.anchors(&motif);
        assert!(anchors.iter().any(|a| a.ref_pos == 100 && a.read_pos == 0));
    }

    #[test]
    fn repeat_kmers_masked() {
        let genome = vec![0u8; 1000]; // poly-A: one k-mer, 1000-k+1 occurrences
        let idx = KmerIndex::build(&genome, 8, 16);
        assert_eq!(idx.distinct_kmers(), 0, "the poly-A k-mer must be masked");
    }

    #[test]
    fn n_bases_break_kmers() {
        let mut genome = generate_genome(500, 3);
        genome[250] = 4; // N
        let idx = KmerIndex::build(&genome, 15, 4);
        // No k-mer may span position 250.
        let read: Vec<u8> = genome[240..270].to_vec();
        for a in idx.anchors(&read) {
            let r = a.ref_pos as usize;
            assert!(r + 15 <= 250 || r > 250, "anchor spans the N at {r}");
        }
    }

    #[test]
    fn chain_prefers_colinear_run() {
        // Anchors on a perfect diagonal plus one decoy far away.
        let mut anchors: Vec<Anchor> =
            (0..10).map(|i| Anchor { ref_pos: 100 + 20 * i, read_pos: 20 * i }).collect();
        anchors.push(Anchor { ref_pos: 5000, read_pos: 10 });
        anchors.sort_by_key(|a| a.ref_pos);
        let chain = chain_anchors(&anchors, &ChainParams::default()).unwrap();
        assert_eq!(chain.anchors.len(), 10);
        assert!(chain.anchors.iter().all(|a| a.ref_pos < 1000));
    }

    #[test]
    fn chain_is_strictly_increasing() {
        let mut rng = StdRng::seed_from_u64(5);
        let anchors: Vec<Anchor> = (0..200)
            .map(|_| Anchor { ref_pos: rng.gen_range(0..5000), read_pos: rng.gen_range(0..2000) })
            .collect();
        let mut sorted = anchors.clone();
        sorted.sort_by_key(|a| (a.ref_pos, a.read_pos));
        if let Some(chain) = chain_anchors(&sorted, &ChainParams::default()) {
            for w in chain.anchors.windows(2) {
                assert!(w[0].ref_pos < w[1].ref_pos);
                assert!(w[0].read_pos < w[1].read_pos);
            }
        }
    }

    #[test]
    fn end_to_end_precompute_and_align() {
        let genome = generate_genome(60_000, 11);
        let idx = KmerIndex::build(&genome, 15, 8);
        let mut rng = StdRng::seed_from_u64(9);
        let scoring = Scoring::new(2, 4, 4, 2, 200, 100);
        let mut found = 0;
        for id in 0..10 {
            let start = rng.gen_range(0..50_000);
            let len = rng.gen_range(300..1500);
            let read: Vec<u8> = genome[start..start + len].to_vec();
            let Some(task) = precompute_task(id, &genome, &idx, &read, 64, &ChainParams::default())
            else {
                continue;
            };
            found += 1;
            let r = guided_align(&task.reference, &task.query, &scoring);
            // The read came verbatim from the genome and the chain anchors
            // the right locus: the extension must recover ~full score.
            let ideal = scoring.max_score() * len as i32;
            assert!(r.score > ideal * 7 / 10, "task {id}: {} vs ideal {ideal}", r.score);
        }
        assert!(found >= 8, "chaining should locate most reads, found {found}");
    }

    #[test]
    fn junk_read_produces_no_chain() {
        let genome = generate_genome(30_000, 13);
        let idx = KmerIndex::build(&genome, 15, 8);
        let mut rng = StdRng::seed_from_u64(21);
        let junk: Vec<u8> = (0..500).map(|_| rng.gen_range(0..4)).collect();
        // A random 500-mer almost surely shares no 15-mer with a 30 kb genome.
        let task = precompute_task(0, &genome, &idx, &junk, 64, &ChainParams::default());
        assert!(task.is_none() || task.unwrap().ref_len() < 2000);
    }
}
