//! Anti-diagonal completion tracking — the semantic core shared by every
//! engine in the workspace.
//!
//! The guided algorithm's termination condition is defined *per
//! anti-diagonal, in order* (Eq. 4–7), but GPU engines compute cells in
//! tiled orders (chunks, slices) where anti-diagonals complete long after
//! their first cell was touched. [`DiagTracker`] decouples the two: engines
//! feed it every in-band cell as computed (in any order) and call
//! [`DiagTracker::advance`] at their natural checkpoints (chunk/slice
//! boundaries); the tracker folds *completed* anti-diagonals in index order,
//! applying exactly the reference termination semantics. The result is
//! therefore bit-identical to the scalar reference no matter the tiling —
//! this is precisely the exactness property AGAThA claims for its kernel.
//!
//! The tracker also mirrors the paper's memory structures: the per-diagonal
//! local maxima correspond to the LMB (local max buffer) contents and the
//! running global maximum to the GMB (global max buffer); engines charge
//! their cost models for the corresponding accesses while delegating the
//! *values* here.

use crate::block::{block_diags, BlockCellsT};
use crate::guided::{diag_cells, zdrop_triggered};
use crate::result::{GuidedResult, MaxCell, StopReason};
use crate::scoring::Scoring;
use crate::{MAX_BLOCK_DIAGS, NEG_INF};

/// Tracks per-anti-diagonal completion, local maxima and the Z-drop
/// condition for one alignment task.
#[derive(Debug, Clone)]
pub struct DiagTracker {
    n: i64,
    m: i64,
    w: i64,
    zdrop: i32,
    gap_extend: i32,
    zdrop_enabled: bool,
    /// cells seen so far on each anti-diagonal
    seen: Vec<u32>,
    /// local maximum score per anti-diagonal
    local_score: Vec<i32>,
    /// `i` coordinate of the local maximum
    local_i: Vec<i32>,
    /// H value of the (unique) `j == m-1` cell per diagonal, or `NEG_INF`
    qend: Vec<i32>,
    /// next anti-diagonal to finalize
    next: usize,
    /// first anti-diagonal with zero in-band cells (band exhaustion point),
    /// or `total` if none
    cutoff: usize,
    /// total anti-diagonals of the full table
    total: usize,
    global: MaxCell,
    qend_best: Option<i32>,
    finished: Option<StopReason>,
    /// reference-semantics cells (sum of expected cells over finalized diagonals)
    cells: u64,
    /// Which vector backend [`DiagTracker::on_block_i16`] folds with.
    /// Resolved once at construction (the same hoisting
    /// [`crate::block::BlockCtx`] does for the fill backend) so the
    /// per-block path pays no repeated feature-detection load.
    fold_backend: crate::simd::WavefrontBackend,
}

impl DiagTracker {
    /// New tracker for an `n × m` task under `scoring`.
    pub fn new(n: usize, m: usize, scoring: &Scoring) -> DiagTracker {
        let mut t = DiagTracker {
            n: 0,
            m: 0,
            w: 0,
            zdrop: 0,
            gap_extend: 0,
            zdrop_enabled: false,
            seen: Vec::new(),
            local_score: Vec::new(),
            local_i: Vec::new(),
            qend: Vec::new(),
            next: 0,
            cutoff: 0,
            total: 0,
            global: MaxCell::ORIGIN,
            qend_best: None,
            finished: None,
            cells: 0,
            fold_backend: crate::simd::backend(),
        };
        t.reset(n, m, scoring);
        t
    }

    /// Reinitialize for a new `n × m` task, reusing the scratch vectors.
    /// After `reset` the tracker is indistinguishable from a fresh
    /// [`DiagTracker::new`]; allocations are grow-only, so steady-state
    /// reuse across a task stream performs no heap allocation.
    pub fn reset(&mut self, n: usize, m: usize, scoring: &Scoring) {
        // Central admission chokepoint: every engine funnels its results
        // through a tracker, and the tracker (like `MaxCell`) stores cell
        // coordinates as `i32`. Refusing over-wide tasks here turns what
        // would be silent coordinate truncation into a loud error.
        if let Err(e) = crate::task::check_dims(n, m) {
            panic!("DiagTracker: {e}");
        }
        // Re-resolve the fold backend per task, not just at construction:
        // benches and the backend-sweep tests flip the process-wide choice
        // between runs while reusing one workspace, and the fold must
        // follow the fill's resolution for the same task.
        self.fold_backend = crate::simd::backend();
        let (ni, mi) = (n as i64, m as i64);
        let w = if scoring.banded() { scoring.band_width as i64 } else { ni + mi };
        let total = if n == 0 || m == 0 { 0 } else { n + m - 1 };
        // Find the first empty diagonal (band exhaustion). In-band diagonal
        // emptiness is monotone at the tail, so scan from the start is fine
        // but O(total); use the closed form instead: diagonals are nonempty
        // for c in [0, c_max] where c_max is the last c with cells.
        let mut cutoff = total;
        for c in 0..total {
            if diag_cells(c as i64, ni, mi, w) == 0 {
                cutoff = c;
                break;
            }
        }
        self.n = ni;
        self.m = mi;
        self.w = w;
        self.zdrop = scoring.zdrop;
        self.gap_extend = scoring.gap_extend;
        self.zdrop_enabled = scoring.zdrop_enabled();
        self.seen.clear();
        self.seen.resize(total, 0);
        self.local_score.clear();
        self.local_score.resize(total, NEG_INF);
        self.local_i.clear();
        self.local_i.resize(total, -1);
        self.qend.clear();
        self.qend.resize(total, NEG_INF);
        self.next = 0;
        self.cutoff = cutoff;
        self.total = total;
        self.global = MaxCell::ORIGIN;
        self.qend_best = None;
        self.finished = if total == 0 { Some(StopReason::Completed) } else { None };
        self.cells = 0;
    }

    /// Fold one computed block's staged cells in a single call — the
    /// batch-update path used by every block engine (the per-cell
    /// [`DiagTracker::on_cell`] remains for scalar row/diagonal engines and
    /// tests, but is gone from the block hot loop).
    ///
    /// Semantics are exactly those of feeding every valid cell through
    /// [`DiagTracker::on_cell`]: the ascending-`i` tie-break is preserved
    /// (each block diagonal is scanned in ascending lane = ascending `i`
    /// order against the carried-over maximum from other blocks), and cells
    /// on already-finalized anti-diagonals (run-ahead past termination) are
    /// skipped whole-diagonal at a time.
    ///
    /// Generic over the block side `B`: the fold walks the first `2B−1`
    /// staged diagonals, so both geometries share one code path and cannot
    /// diverge semantically.
    pub fn on_block<const B: usize>(&mut self, cells: &BlockCellsT<i32, B>) {
        self.fold_block(cells.i0(), cells.j0(), &cells.mask, B as i64, |d, l| cells.h[d][l]);
    }

    /// [`DiagTracker::on_block`] for the 16-bit fill tier: folds a
    /// 16-bit staging buffer of either geometry, widening each valid lane
    /// to score space. Valid-lane values are bit-identical to the i32 tiers
    /// under the `i16_exact` gate, so the fold observes exactly the same
    /// scores.
    ///
    /// The staging buffer must come from a gate-admitted i16 fill: that
    /// guarantees every valid lane holds a *real* score (strictly above the
    /// masked-lane sentinel band), which the vectorised per-diagonal argmax
    /// below relies on. Fills driven past the gate would already have
    /// corrupted values; this fold adds no failure mode of its own.
    pub fn on_block_i16<const B: usize>(&mut self, cells: &BlockCellsT<i16, B>) {
        #[cfg(target_arch = "x86_64")]
        match self.fold_backend {
            // SAFETY: `fold_backend` is only set to a vector variant after
            // the runtime CPU check in `crate::simd::backend()`.
            crate::simd::WavefrontBackend::Avx512 => {
                return unsafe { self.on_block_i16_avx512(cells) }
            }
            crate::simd::WavefrontBackend::Avx2 => return unsafe { self.on_block_i16_avx2(cells) },
            crate::simd::WavefrontBackend::Sse41 => {
                return unsafe { self.on_block_i16_sse41(cells) }
            }
            crate::simd::WavefrontBackend::Portable => {}
        }
        self.fold_block(cells.i0(), cells.j0(), &cells.mask, B as i64, |d, l| {
            i32::from(cells.h[d][l])
        });
    }

    /// Vectorised [`DiagTracker::on_block_i16`] body: the shared fold
    /// scaffold with `phminposuw` as the per-diagonal argmax — it computes
    /// the local maximum *and* its smallest lane (the canonical
    /// ascending-`i` tie-break) in a single instruction, via the
    /// order-reversing map `y = 0x7FFF - h` (max-`h` with ties to the
    /// smallest lane becomes min-`y` at the first index, which is exactly
    /// what `phminposuw` returns). Masked lanes hold [`crate::simd::NEG_INF16`],
    /// whose `y` is strictly above every real lane's, so they never win.
    ///
    /// `phminposuw` is 128-bit only, so the wide geometry (`B = 16`) reduces
    /// each half-row separately and merges with ties to the low half — lane
    /// numbers ascend with `i`, so "low half on ties" is the same
    /// ascending-`i` tie-break. `inline(always)` with no `target_feature`
    /// of its own so each feature wrapper below recompiles it at its own
    /// feature level (the AVX2 copy gets VEX encodings); never codegenned
    /// standalone.
    ///
    /// # Safety
    /// Requires SSE4.1 (guaranteed by both wrappers).
    #[cfg(target_arch = "x86_64")]
    #[inline(always)]
    unsafe fn fold_i16_vector<const B: usize>(&mut self, cells: &BlockCellsT<i16, B>) {
        #[allow(clippy::wildcard_imports)]
        use std::arch::x86_64::*;
        let bias = _mm_set1_epi16(i16::MAX);
        // One 128-bit reduction: order-reversed min over eight i16 lanes
        // starting at `ptr`, returning (score, lane).
        let minpos = |ptr: *const i16| {
            // Wrapping `0x7FFF - h` is the exact u16 bit pattern of the
            // order-reversed score, for the full i16 range.
            let row = _mm_loadu_si128(ptr.cast::<__m128i>());
            let packed = _mm_cvtsi128_si32(_mm_minpos_epu16(_mm_sub_epi16(bias, row))) as u32;
            let h = i32::from(i16::MAX) - i32::from((packed & 0xFFFF) as u16);
            (h, (packed >> 16) as usize & 7)
        };
        self.fold_block_argmax(
            cells.i0(),
            cells.j0(),
            &cells.mask,
            B as i64,
            |d, _lo, _hi| {
                let (h, l) = minpos(cells.h[d].as_ptr());
                if B == crate::BLOCK {
                    return (h, l);
                }
                // Wide row: reduce the high half too; strict `>` keeps the
                // low half (smaller `i`) on equal scores.
                let (h_hi, l_hi) = minpos(cells.h[d].as_ptr().add(8));
                if h_hi > h {
                    (h_hi, l_hi + 8)
                } else {
                    (h, l)
                }
            },
            |d, l| i32::from(cells.h[d][l]),
        );
    }

    /// [`DiagTracker::fold_i16_vector`] at SSE4.1 codegen.
    ///
    /// # Safety
    /// Requires SSE4.1 (checked by the dispatcher).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "sse4.1")]
    unsafe fn on_block_i16_sse41<const B: usize>(&mut self, cells: &BlockCellsT<i16, B>) {
        self.fold_i16_vector(cells);
    }

    /// [`DiagTracker::fold_i16_vector`] at AVX2 codegen (VEX encodings).
    ///
    /// # Safety
    /// Requires AVX2 (checked by the dispatcher).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn on_block_i16_avx2<const B: usize>(&mut self, cells: &BlockCellsT<i16, B>) {
        self.fold_i16_vector(cells);
    }

    /// [`DiagTracker::on_block_i16`] at the AVX-512 level. For the wide
    /// geometry this is a *batched* fold, not the shared scaffold: phase 1
    /// runs the `phminposuw` argmax over every staged row branch-free
    /// (masked lanes hold [`crate::simd::NEG_INF16`] so invalid rows cost
    /// nothing to reduce and are discarded by mask later), packing each
    /// row's result into a single order-reversed key
    /// `(y << 4) | (half << 3) | lane` whose numeric minimum is the
    /// maximum `H` at its smallest lane — the canonical ascending-`i`
    /// tie-break (`y = 0x7FFF − h` descends as `h` ascends; the half bit
    /// and lane index break ties toward smaller `i`). Phase 2 then merges
    /// all 31 candidates into the per-anti-diagonal `local_score` /
    /// `local_i` arrays — which a block's rows hit *contiguously* at
    /// `c0..c0+31` — as two 16-lane masked compare/blend/store steps, and
    /// folds the `seen` accounting into the same masked windows (a
    /// nibble-LUT popcount over the staged mask vectors replaces the
    /// scaffold's 31 scalar read-modify-writes).
    ///
    /// The point is the merge: the scaffold's per-row scalar
    /// read-compare-update is a data-dependent branch per diagonal
    /// (mispredicted whenever a block does or does not improve on the
    /// carried maximum — i.e. constantly, on real workloads), and those
    /// mispredictions dominate the shared fold's cost at B = 16. The
    /// mask-register merge is branch-free, and the fault-suppressing
    /// masked loads/stores let the two 16-lane steps straddle the table
    /// edge without scalar tail handling. Run-ahead rows (`c < next`),
    /// empty rows, and rows past the last valid diagonal are all cleared
    /// from one `valid` bitmask; `seen` accounting, the `qend` column
    /// extract, and the debug-build band checks mirror the scaffold
    /// exactly.
    ///
    /// # Safety
    /// Requires AVX-512BW/VL (checked by the dispatcher; AVX-512F and the
    /// SSE4.1 `phminposuw` ride along on any AVX-512 machine).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512bw,avx512vl")]
    unsafe fn on_block_i16_avx512<const B: usize>(&mut self, cells: &BlockCellsT<i16, B>) {
        #[allow(clippy::wildcard_imports)]
        use std::arch::x86_64::*;
        if B == crate::BLOCK {
            // Narrow staging: eight lanes per row and eight rows of merge
            // give the batched path nothing to amortize; run the shared
            // fold at AVX-512 codegen.
            return self.fold_i16_vector(cells);
        }
        let diags = 2 * B - 1;
        let i0 = cells.i0();
        let j0 = cells.j0();
        let c0 = i0 as usize + j0 as usize;

        // Valid rows: non-empty mask, not run-ahead past a finalized
        // diagonal. One bit per staged row, built from two 16-lane mask
        // compares (the second load is masked: the staging array holds
        // `MAX_BLOCK_DIAGS` = 31 rows, one short of two full vectors).
        let mp = cells.mask.as_ptr().cast::<i16>();
        let m_lo = _mm256_loadu_si256(mp.cast::<__m256i>());
        let m_hi = _mm256_maskz_loadu_epi16(0x7FFF, mp.add(16));
        let z = _mm256_setzero_si256();
        let mut valid = u32::from(_mm256_cmpneq_epi16_mask(m_lo, z))
            | u32::from(_mm256_cmpneq_epi16_mask(m_hi, z)) << 16;
        valid &= (1u32 << diags) - 1;
        let skip = self.next.saturating_sub(c0).min(diags);
        valid &= !0u32 << skip;
        if valid == 0 {
            return;
        }
        let hi_d = 31 - valid.leading_zeros() as usize;
        debug_assert!(c0 + hi_d < self.total, "block diagonal {} outside table", c0 + hi_d);

        #[cfg(debug_assertions)]
        for d in skip..=hi_d {
            let m = cells.mask[d];
            if m == 0 {
                continue;
            }
            let lo = m.trailing_zeros() as usize;
            let hi = 15 - m.leading_zeros() as usize;
            debug_assert_eq!(m, ((1u32 << (hi + 1)) - (1 << lo)) as u16, "mask must be a run");
            for l in lo..=hi {
                let i = i64::from(i0) + l as i64;
                let c = (c0 + d) as i64;
                debug_assert!(
                    (i - (c - i)).abs() <= self.w,
                    "out-of-band cell ({i},{}) staged for tracker (w = {})",
                    c - i,
                    self.w
                );
            }
        }

        // Phase 1: branch-free per-row argmax. Each half-row reduces with
        // one `phminposuw` on the order-reversed map `y = 0x7FFF − h`
        // (exact over the full i16 range; see
        // [`DiagTracker::fold_i16_vector`]), packing to `(lane << 16) | y`.
        // Structural skip: block diagonal `d` only occupies lanes
        // `max(0, d−B+1)..=min(d, B−1)`, so rows `d < 8` have an empty high
        // half and rows `d ≥ B+7` an empty low half — those reductions are
        // dropped outright and their slots keep the `u32::MAX` sentinel,
        // whose phase-2 key (`0xFFFFF`) is ≥ every computed key, losing
        // each `min` (a tie is only possible against an identical
        // candidate, which decodes identically).
        let bias = _mm_set1_epi16(i16::MAX);
        let mut packed_lo = [u32::MAX; MAX_BLOCK_DIAGS + 1];
        let mut packed_hi = [u32::MAX; MAX_BLOCK_DIAGS + 1];
        let minpos = |ptr: *const i16| -> u32 {
            let row = _mm_loadu_si128(ptr.cast::<__m128i>());
            _mm_cvtsi128_si32(_mm_minpos_epu16(_mm_sub_epi16(bias, row))) as u32
        };
        // Live rows only (bit-scan over `valid`): edge and run-ahead
        // blocks stage far fewer than 2B−1 live rows, and reducing their
        // dead rows would cost more than the whole merge. Interior blocks
        // walk every bit, same as a plain loop.
        let seg = |lo: u32, hi: u32| valid & (!0u32 << lo) & ((1u64 << hi) as u32).wrapping_sub(1);
        let mut v = seg(0, 8);
        while v != 0 {
            let d = v.trailing_zeros() as usize;
            v &= v - 1;
            packed_lo[d] = minpos(cells.h[d].as_ptr());
        }
        let mut v = seg(8, B as u32 + 7);
        while v != 0 {
            let d = v.trailing_zeros() as usize;
            v &= v - 1;
            packed_lo[d] = minpos(cells.h[d].as_ptr());
            packed_hi[d] = minpos(cells.h[d].as_ptr().add(8));
        }
        let mut v = seg(B as u32 + 7, 32);
        while v != 0 {
            let d = v.trailing_zeros() as usize;
            v &= v - 1;
            packed_hi[d] = minpos(cells.h[d].as_ptr().add(8));
        }

        // Phase 2: two 16-row merge steps over the contiguous
        // `local_score[c0..]` / `local_i[c0..]` windows, with the `seen`
        // accounting folded into the same masked windows: a nibble-LUT
        // popcount over the staged mask vectors (per-byte table lookup,
        // then a `maddubs` byte-pair sum per u16 lane) replaces the
        // scaffold's 31 scalar read-modify-writes — dead lanes add
        // nothing, exactly like the scaffold skipping them, because the
        // `live` mask gates the store and empty live rows popcount to 0.
        let pop_lut = _mm256_broadcastsi128_si256(_mm_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        ));
        let nibble = _mm256_set1_epi8(0x0F);
        let byte_ones = _mm256_set1_epi8(1);
        let popcnt16 = |m: __m256i| -> __m256i {
            let lo = _mm256_shuffle_epi8(pop_lut, _mm256_and_si256(m, nibble));
            let hi =
                _mm256_shuffle_epi8(pop_lut, _mm256_and_si256(_mm256_srli_epi16::<4>(m), nibble));
            _mm256_maddubs_epi16(_mm256_add_epi8(lo, hi), byte_ones)
        };
        let v_ffff = _mm512_set1_epi32(0xFFFF);
        let v_half = _mm512_set1_epi32(1 << 3);
        let v_bias = _mm512_set1_epi32(i32::from(i16::MAX));
        let v_i0 = _mm512_set1_epi32(i0);
        let v_15 = _mm512_set1_epi32(0xF);
        for chunk in 0..diags.div_ceil(16) {
            let k = chunk * 16;
            let live: __mmask16 = (valid >> k) as u16;
            if live == 0 {
                continue;
            }
            // (y << 4) | (half << 3) | lane, minimized across halves: the
            // numeric min is max-H first, then low half, then low lane —
            // decoding the low nibble yields the row lane directly
            // (half * 8 + minpos index).
            let pl = _mm512_loadu_epi32(packed_lo.as_ptr().add(k).cast::<i32>());
            let ph = _mm512_loadu_epi32(packed_hi.as_ptr().add(k).cast::<i32>());
            let key_lo = _mm512_or_epi32(
                _mm512_slli_epi32::<4>(_mm512_and_epi32(pl, v_ffff)),
                _mm512_srli_epi32::<16>(pl),
            );
            let key_hi = _mm512_or_epi32(
                _mm512_or_epi32(_mm512_slli_epi32::<4>(_mm512_and_epi32(ph, v_ffff)), v_half),
                _mm512_srli_epi32::<16>(ph),
            );
            let kmin = _mm512_min_epu32(key_lo, key_hi);
            let cand_h = _mm512_sub_epi32(v_bias, _mm512_srli_epi32::<4>(kmin));
            let cand_i = _mm512_add_epi32(v_i0, _mm512_and_epi32(kmin, v_15));
            // Fault-suppressing masked loads: dead lanes may sit past the
            // table's last diagonal.
            let base = c0 + k;
            // `seen` accounting for the chunk's live rows. SAFETY: the
            // highest set `live` bit is `hi_d − k` and `c0 + hi_d < total`
            // (asserted above), so the masked store stays inside the
            // `total`-sized vector.
            let counts = _mm512_cvtepi16_epi32(popcnt16(if chunk == 0 { m_lo } else { m_hi }));
            let seen_ptr = self.seen.as_mut_ptr().cast::<i32>();
            let cur_seen = _mm512_maskz_loadu_epi32(live, seen_ptr.add(base));
            _mm512_mask_storeu_epi32(seen_ptr.add(base), live, _mm512_add_epi32(cur_seen, counts));
            let cur_h = _mm512_maskz_loadu_epi32(live, self.local_score.as_ptr().add(base));
            let cur_i = _mm512_maskz_loadu_epi32(live, self.local_i.as_ptr().add(base));
            // Canonical merge: higher score wins; equal score goes to the
            // smaller `i`.
            let gt = _mm512_cmpgt_epi32_mask(cand_h, cur_h);
            let eq = _mm512_cmpeq_epi32_mask(cand_h, cur_h);
            let lt_i = _mm512_cmplt_epi32_mask(cand_i, cur_i);
            let upd = (gt | (eq & lt_i)) & live;
            _mm512_mask_storeu_epi32(self.local_score.as_mut_ptr().add(base), upd, cand_h);
            _mm512_mask_storeu_epi32(self.local_i.as_mut_ptr().add(base), upd, cand_i);
        }

        // The unique last-query-column cell per diagonal (lane `l = d − kq`),
        // extracted scalar — at most one run of rows per block touches it.
        let kq = self.m - 1 - i64::from(j0);
        if (0..B as i64).contains(&kq) {
            let kq = kq as usize;
            for d in kq.max(skip)..=(kq + B - 1).min(hi_d) {
                let lq = d - kq;
                if cells.mask[d] & (1 << lq) != 0 {
                    self.qend[c0 + d] = i32::from(cells.h[d][lq]);
                }
            }
        }
    }

    /// Shared whole-block fold: semantics of feeding every valid cell
    /// through [`DiagTracker::on_cell`], with the ascending-`i` tie-break
    /// preserved and run-ahead diagonals skipped whole. `h(d, l)` reads the
    /// staged masked `H` value of lane `l` on block diagonal `d`.
    #[inline(always)]
    fn fold_block(
        &mut self,
        i0: i32,
        j0: i32,
        mask: &[u16; MAX_BLOCK_DIAGS],
        b: i64,
        h: impl Fn(usize, usize) -> i32,
    ) {
        self.fold_block_argmax(
            i0,
            j0,
            mask,
            b,
            |d, lo, hi| {
                // Ascending-lane scan with strict `>`: equal scores keep
                // the earlier (smaller-`i`) lane.
                let mut best = h(d, lo);
                let mut best_l = lo;
                for l in lo + 1..=hi {
                    let hv = h(d, l);
                    if hv > best {
                        best = hv;
                        best_l = l;
                    }
                }
                (best, best_l)
            },
            &h,
        );
    }

    /// The one fold scaffold both tracker folds share (run-ahead skip,
    /// `seen` accounting, carried-max merge, `qend` extraction), so the
    /// vector and scalar folds cannot drift apart. `argmax(d, lo, hi)`
    /// returns the diagonal's maximum staged `H` over valid lanes
    /// `lo..=hi` and the *smallest* lane attaining it; `h(d, l)` reads one
    /// staged value. Folding the diagonal-local argmax into the carried
    /// maximum with the same (score desc, `i` asc) order is equivalent to
    /// the reference ascending-`i` per-cell scan.
    ///
    /// Geometry arrives as one runtime value (`b` lanes per diagonal; the
    /// `2b−1` staged-diagonal count follows from it) so the one scaffold
    /// serves every monomorphization of the public folds.
    #[inline(always)]
    fn fold_block_argmax(
        &mut self,
        i0: i32,
        j0: i32,
        mask: &[u16; MAX_BLOCK_DIAGS],
        b: i64,
        mut argmax: impl FnMut(usize, usize, usize) -> (i32, usize),
        h: impl Fn(usize, usize) -> i32,
    ) {
        let diags = block_diags(b as usize);
        let c0 = i0 as usize + j0 as usize;
        // At most one cell per anti-diagonal sits on the last query column
        // (j == m-1): lane l = d - kq. Constant across the block.
        let kq = self.m - 1 - j0 as i64;
        let block_touches_qend = (0..b).contains(&kq);
        for (d, &m) in mask.iter().enumerate().take(diags) {
            if m == 0 {
                continue; // no valid cell on this block diagonal
            }
            let c = c0 + d;
            if c < self.next {
                continue; // run-ahead past a finalized diagonal
            }
            debug_assert!(c < self.total, "block diagonal {c} outside table");
            self.seen[c] += m.count_ones();
            // Valid lanes form a contiguous run in ascending `i`. The
            // uniform `15 − lz` works for both geometries: a B=8 mask only
            // occupies the low byte, so its leading_zeros are ≥ 8.
            let lo = m.trailing_zeros() as usize;
            let hi = 15 - m.leading_zeros() as usize;
            debug_assert_eq!(m, ((1u32 << (hi + 1)) - (1 << lo)) as u16, "mask must be a run");
            // Every staged valid lane must be in band, not just the argmax
            // lane — a wrong band mask whose extra cell scores below the
            // diagonal max would otherwise slip past debug builds.
            #[cfg(debug_assertions)]
            for l in lo..=hi {
                let i = i64::from(i0) + l as i64;
                debug_assert!(
                    (i - (c as i64 - i)).abs() <= self.w,
                    "out-of-band cell ({i},{}) staged for tracker (w = {})",
                    c as i64 - i,
                    self.w
                );
            }
            let (best, l) = argmax(d, lo, hi);
            debug_assert!((lo..=hi).contains(&l), "argmax lane {l} outside valid run");
            let i = i0 + l as i32;
            // Merge with the carried-over maximum from other blocks under
            // the canonical tie-break: smallest `i` wins equal scores.
            if best > self.local_score[c] || (best == self.local_score[c] && i < self.local_i[c]) {
                self.local_score[c] = best;
                self.local_i[c] = i;
            }
            if block_touches_qend {
                let lq = d as i64 - kq;
                if (lo as i64..=hi as i64).contains(&lq) {
                    self.qend[c] = h(d, lq as usize);
                }
            }
        }
    }

    /// Record one computed in-band cell. Cells may arrive in any order;
    /// cells on already-finalized diagonals (run-ahead after termination)
    /// are ignored.
    #[inline]
    pub fn on_cell(&mut self, i: i32, j: i32, h: i32) {
        let c = (i + j) as usize;
        debug_assert!(c < self.total, "cell ({i},{j}) outside table");
        debug_assert!(
            (i as i64 - j as i64).abs() <= self.w,
            "out-of-band cell ({i},{j}) fed to tracker (w = {})",
            self.w
        );
        if c < self.next {
            return; // run-ahead past a finalized diagonal
        }
        self.seen[c] += 1;
        // Canonical tie-break: smallest `i` wins equal scores, matching the
        // scalar reference's ascending-i scan.
        if h > self.local_score[c] || (h == self.local_score[c] && i < self.local_i[c]) {
            self.local_score[c] = h;
            self.local_i[c] = i;
        }
        if j as i64 == self.m - 1 {
            self.qend[c] = h;
        }
    }

    /// Expected number of in-band cells on diagonal `c`.
    #[inline]
    pub fn expected(&self, c: usize) -> u32 {
        diag_cells(c as i64, self.n, self.m, self.w)
    }

    /// Finalize every complete anti-diagonal in order, applying Z-drop.
    /// Returns the stop reason once the alignment is decided.
    ///
    /// Engines call this at chunk/slice boundaries; calling it more or less
    /// often changes only run-ahead cost, never the result.
    pub fn advance(&mut self) -> Option<StopReason> {
        if self.finished.is_some() {
            return self.finished;
        }
        while self.next < self.cutoff {
            let c = self.next;
            let expected = self.expected(c);
            if self.seen[c] < expected {
                return None; // incomplete; engines must keep filling
            }
            debug_assert!(
                self.seen[c] == expected,
                "diagonal {c}: saw {} cells, expected {expected}",
                self.seen[c]
            );
            let local = MaxCell {
                score: self.local_score[c],
                i: self.local_i[c],
                j: c as i32 - self.local_i[c],
            };
            self.cells += expected as u64;
            self.next = c + 1;
            if self.zdrop_enabled
                && zdrop_triggered(self.global, local, self.zdrop, self.gap_extend)
            {
                self.finished = Some(StopReason::ZDrop { antidiag: c as u32 });
                return self.finished;
            }
            self.global.fold(local);
            if self.qend[c] > NEG_INF {
                let v = self.qend[c];
                self.qend_best = Some(self.qend_best.map_or(v, |q| q.max(v)));
            }
        }
        self.finished = Some(if self.cutoff == self.total {
            StopReason::Completed
        } else {
            StopReason::BandExhausted { antidiag: self.cutoff as u32 }
        });
        self.finished
    }

    /// Whether the alignment outcome is decided.
    #[inline]
    pub fn is_finished(&self) -> bool {
        self.finished.is_some()
    }

    /// Index of the next anti-diagonal awaiting finalization.
    #[inline]
    pub fn frontier(&self) -> usize {
        self.next
    }

    /// Total anti-diagonals of the full table.
    #[inline]
    pub fn total_diags(&self) -> usize {
        self.total
    }

    /// Running global maximum (the GMB contents).
    #[inline]
    pub fn global_max(&self) -> MaxCell {
        self.global
    }

    /// Reference-semantics cell count over finalized diagonals.
    #[inline]
    pub fn reference_cells(&self) -> u64 {
        self.cells
    }

    /// Consume the tracker into the final result. Must only be called once
    /// [`DiagTracker::advance`] reported a stop reason (engines that filled
    /// the whole table can call `advance` first).
    pub fn result(mut self) -> GuidedResult {
        self.take_result()
    }

    /// Like [`DiagTracker::result`] but keeps the tracker (and its
    /// allocations) alive so it can be [`DiagTracker::reset`] for the next
    /// task. The tracker's state is unspecified afterwards except that
    /// `reset` restores it fully.
    pub fn take_result(&mut self) -> GuidedResult {
        let stop = self.advance().expect(
            "DiagTracker::result called before the alignment was decided \
             (some anti-diagonal never completed)",
        );
        let antidiags = match stop {
            StopReason::Completed => self.total as u32,
            StopReason::ZDrop { antidiag } => antidiag + 1,
            StopReason::BandExhausted { antidiag } => antidiag,
        };
        GuidedResult {
            score: self.global.score,
            max: self.global,
            qend_score: self.qend_best,
            stop,
            antidiags,
            cells: self.cells,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guided::{diag_range, guided_align};
    use crate::pack::PackedSeq;

    fn seq(s: &str) -> PackedSeq {
        PackedSeq::from_str_seq(s)
    }

    /// Drive the tracker with a full scalar DP in *reverse row* order to
    /// prove order-independence, and compare to the reference.
    fn tracker_replay(r: &str, q: &str, scoring: &Scoring) -> GuidedResult {
        let (r, q) = (seq(r), seq(q));
        let reference = guided_align(&r, &q, scoring);
        // Recompute the full banded table with the unguided full-table DP
        // semantics (no termination), then feed cells diag-by-diag but each
        // diagonal's cells in descending i order.
        let big = scoring.with_zdrop(Scoring::NO_ZDROP);
        let n = r.len() as i64;
        let m = q.len() as i64;
        let w = if scoring.banded() { scoring.band_width as i64 } else { n + m };
        // Build H table via the guided reference machinery on a widened Z:
        // simplest is to recompute cell values with a dense DP.
        let dense = dense_banded(&r, &q, &big);
        let mut tracker = DiagTracker::new(r.len(), q.len(), scoring);
        'outer: for c in 0..(n + m - 1) {
            let Some((lo, hi)) = diag_range(c, n, m, w) else { break };
            for i in (lo..=hi).rev() {
                let j = c - i;
                tracker.on_cell(i as i32, j as i32, dense[(i * m + j) as usize]);
            }
            // advance only every 3 diagonals to emulate checkpointing
            if c % 3 == 2 && tracker.advance().is_some() {
                break 'outer;
            }
        }
        let got = tracker.result();
        assert!(got.same_alignment(&reference), "tracker {got:?} vs reference {reference:?}");
        got
    }

    /// Dense banded H table (no termination), reference semantics.
    fn dense_banded(r: &PackedSeq, q: &PackedSeq, scoring: &Scoring) -> Vec<i32> {
        let n = r.len() as i64;
        let m = q.len() as i64;
        let w = if scoring.banded() { scoring.band_width as i64 } else { n + m };
        let oe = scoring.gap_open + scoring.gap_extend;
        let ext = scoring.gap_extend;
        let mut h = vec![NEG_INF; (n * m) as usize];
        let mut e = vec![NEG_INF; (n * m) as usize];
        let mut f = vec![NEG_INF; (n * m) as usize];
        for i in 0..n {
            for j in 0..m {
                if (i - j).abs() > w {
                    continue;
                }
                let idx = (i * m + j) as usize;
                let up_h = if i == 0 {
                    scoring.border(j as i32)
                } else if (i - 1 - j).abs() <= w {
                    h[idx - m as usize]
                } else {
                    NEG_INF
                };
                let up_e =
                    if i == 0 || (i - 1 - j).abs() > w { NEG_INF } else { e[idx - m as usize] };
                let left_h = if j == 0 {
                    scoring.border(i as i32)
                } else if (i - (j - 1)).abs() <= w {
                    h[idx - 1]
                } else {
                    NEG_INF
                };
                let left_f = if j == 0 || (i - (j - 1)).abs() > w { NEG_INF } else { f[idx - 1] };
                let diag = if i == 0 && j == 0 {
                    0
                } else if i == 0 {
                    scoring.border((j - 1) as i32)
                } else if j == 0 {
                    scoring.border((i - 1) as i32)
                } else if (i - j).abs() <= w {
                    h[idx - m as usize - 1]
                } else {
                    NEG_INF
                };
                let ev = (up_h - oe).max(up_e - ext);
                let fv = (left_h - oe).max(left_f - ext);
                let sub = scoring.substitution(r.code(i as usize), q.code(j as usize));
                e[idx] = ev;
                f[idx] = fv;
                h[idx] = ev.max(fv).max(diag.saturating_add(sub));
            }
        }
        h
    }

    #[test]
    fn order_independent_no_guides() {
        let s = Scoring::figure1();
        tracker_replay("AGATAGAT", "AGACTATC", &s);
        tracker_replay("ACGTACGTACGTAC", "ACGTTCGTACGAAC", &s);
    }

    #[test]
    fn order_independent_with_band() {
        let s = Scoring::new(2, 4, 4, 2, Scoring::NO_ZDROP, 3);
        tracker_replay("ACGTACGTACGTACGT", "ACGTACGTACGTACGT", &s);
        tracker_replay("ACGTACGTACGTACGTAAAA", "ACGTACGTACGT", &s);
    }

    #[test]
    fn order_independent_with_zdrop() {
        let s = Scoring::new(2, 4, 4, 2, 10, 5);
        tracker_replay("ACGTACGTACGTGGGGGGGGGGGGGGGG", "ACGTACGTACGTCCCCCCCCCCCCCCCC", &s);
    }

    #[test]
    fn runahead_cells_after_termination_ignored() {
        let s = Scoring::new(2, 4, 4, 2, 4, Scoring::NO_BAND);
        let (r, q) = ("ACGTACGTGGGGGGGG", "ACGTACGTCCCCCCCC");
        let reference = guided_align(&seq(r), &seq(q), &s);
        assert!(reference.stop.z_dropped());
        // Feed the *entire* table (as a run-ahead engine would), then check.
        let dense = dense_banded(&seq(r), &seq(q), &s.with_zdrop(Scoring::NO_ZDROP));
        let n = r.len() as i64;
        let m = q.len() as i64;
        let mut tracker = DiagTracker::new(r.len(), q.len(), &s);
        for c in 0..(n + m - 1) {
            let (lo, hi) = diag_range(c, n, m, n + m).unwrap();
            for i in lo..=hi {
                tracker.on_cell(i as i32, (c - i) as i32, dense[(i * m + (c - i)) as usize]);
            }
        }
        let got = tracker.result();
        assert!(got.same_alignment(&reference), "{got:?} vs {reference:?}");
    }

    #[test]
    fn reset_matches_fresh_tracker() {
        // A tracker reused across tasks of different geometry (including a
        // z-dropping one) must be indistinguishable from a fresh tracker.
        let cases = [
            ("AGATAGAT", "AGACTATC", Scoring::figure1()),
            ("ACGTACGTGGGGGGGG", "ACGTACGTCCCCCCCC", Scoring::new(2, 4, 4, 2, 4, Scoring::NO_BAND)),
            ("ACGT", "ACGTACGTACGT", Scoring::new(2, 4, 4, 2, Scoring::NO_BAND, 3)),
        ];
        let mut reused = DiagTracker::new(0, 0, &Scoring::figure1());
        for (r, q, s) in &cases {
            let (rp, qp) = (seq(r), seq(q));
            let dense = dense_banded(&rp, &qp, &s.with_zdrop(Scoring::NO_ZDROP));
            let n = rp.len() as i64;
            let m = qp.len() as i64;
            let w = if s.banded() { s.band_width as i64 } else { n + m };
            let mut fresh = DiagTracker::new(rp.len(), qp.len(), s);
            reused.reset(rp.len(), qp.len(), s);
            for c in 0..(n + m - 1) {
                let Some((lo, hi)) = diag_range(c, n, m, w) else { continue };
                for i in lo..=hi {
                    let h = dense[(i * m + (c - i)) as usize];
                    fresh.on_cell(i as i32, (c - i) as i32, h);
                    reused.on_cell(i as i32, (c - i) as i32, h);
                }
            }
            let want = fresh.result();
            let got = reused.take_result();
            assert_eq!(got, want, "reused tracker diverged on ({r}, {q})");
        }
    }

    #[test]
    fn on_block_equals_per_cell_feed() {
        // Feed the same dense table to one tracker cell by cell and to
        // another block by block (staged through BlockCells); every
        // observable (result, frontier behaviour, run-ahead skips) must
        // agree, including the ascending-i tie-break on equal scores.
        use crate::block::{compute_block, corner_read, north_read, west_init, BlockCtx};
        use crate::BLOCK;

        let cases = [
            ("AGATAGATAGA", "AGACTATCA", Scoring::figure1()),
            ("ACGTACGTACGTACGTACGT", "ACGTACGTTCGTACGTACGA", Scoring::new(2, 4, 4, 2, 10, 3)),
            ("AAAAAAAAAAAAAAAA", "AAAAAAAAAAAAAAAA", Scoring::figure1()), // many score ties
        ];
        for (r, q, s) in &cases {
            let (rp, qp) = (seq(r), seq(q));
            let ctx = BlockCtx::new(rp.len(), qp.len(), s);
            let b = BLOCK as i64;
            let padded_n = (ctx.ref_blocks() * b) as usize;
            let mut row_h = vec![NEG_INF; padded_n];
            let mut row_f = vec![NEG_INF; padded_n];
            let (mut rb, mut qb) = ([0u8; BLOCK], [0u8; BLOCK]);
            let mut cells = crate::block::BlockCells::new();
            let mut per_cell = DiagTracker::new(rp.len(), qp.len(), s);
            let mut per_block = DiagTracker::new(rp.len(), qp.len(), s);
            for bj in 0..ctx.query_blocks() {
                let j0 = bj * b;
                let Some((lo, hi)) = ctx.row_block_range(bj) else { continue };
                qp.unpack_block(j0 as usize, &mut qb);
                let (mut wh, mut we) = west_init(&ctx, lo * b, j0);
                let mut corner = corner_read(&ctx, lo * b, j0, &row_h);
                for bi in lo..=hi {
                    let i0 = bi * b;
                    rp.unpack_block(i0 as usize, &mut rb);
                    let (mut nh, mut nf) = north_read(&ctx, i0, j0, &row_h, &row_f);
                    let next_corner = nh[BLOCK - 1];
                    compute_block(
                        &ctx, i0, j0, &rb, &qb, corner, &mut wh, &mut we, &mut nh, &mut nf,
                        &mut cells,
                    );
                    per_block.on_block(&cells);
                    for d in 0..crate::block::BLOCK_DIAGS {
                        for l in 0..BLOCK {
                            if cells.mask[d] & (1 << l) != 0 {
                                let i = cells.i0() + l as i32;
                                let j = cells.j0() + (d - l) as i32;
                                per_cell.on_cell(i, j, cells.h[d][l]);
                            }
                        }
                    }
                    row_h[i0 as usize..i0 as usize + BLOCK].copy_from_slice(&nh);
                    row_f[i0 as usize..i0 as usize + BLOCK].copy_from_slice(&nf);
                    corner = next_corner;
                }
                // Advance both (mid-stream, to exercise run-ahead skips).
                let a = per_cell.advance();
                let bstop = per_block.advance();
                assert_eq!(a, bstop, "case ({r},{q})");
                assert_eq!(per_cell.frontier(), per_block.frontier());
                if a.is_some() {
                    break;
                }
            }
            let want = per_cell.take_result();
            let got = per_block.take_result();
            assert_eq!(got, want, "case ({r},{q})");
        }
    }

    #[test]
    #[should_panic(expected = "32 bits")]
    fn oversized_task_rejected_at_reset() {
        let _ = DiagTracker::new(crate::task::MAX_SEQ_LEN + 1, 4, &Scoring::figure1());
    }

    #[test]
    fn empty_task_finishes_immediately() {
        let s = Scoring::figure1();
        let mut t = DiagTracker::new(0, 5, &s);
        assert_eq!(t.advance(), Some(StopReason::Completed));
        let r = t.result();
        assert_eq!(r.score, 0);
    }

    #[test]
    fn frontier_blocks_on_incomplete_diag() {
        let s = Scoring::figure1();
        let mut t = DiagTracker::new(4, 4, &s);
        t.on_cell(0, 0, 2);
        assert!(t.advance().is_none());
        assert_eq!(t.frontier(), 1);
        // diag 1 has 2 cells; feed only one
        t.on_cell(0, 1, -4);
        assert!(t.advance().is_none());
        assert_eq!(t.frontier(), 1);
        t.on_cell(1, 0, -4);
        assert!(t.advance().is_none());
        assert_eq!(t.frontier(), 2);
    }

    #[test]
    #[should_panic(expected = "never completed")]
    fn result_panics_when_cells_missing() {
        let s = Scoring::figure1();
        let t = DiagTracker::new(4, 4, &s);
        let _ = t.result();
    }
}
