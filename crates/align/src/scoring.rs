//! Affine-gap scoring model and the presets used in the evaluation.
//!
//! The paper (and the AGAThA artifact's `AGAThA.sh`) parameterises alignment
//! with: match score `-a`, mismatch penalty `-b`, gap-open penalty `-q` (α),
//! gap-extension penalty `-r` (β), termination threshold `-z` (Z), and band
//! width `-w`. Minimap2 preset parameters are used per dataset category
//! (§5.1); BWA-MEM uses "significantly smaller" band width and termination
//! threshold (§5.9).

use crate::base::Base;

/// Affine-gap scoring parameters for guided alignment.
///
/// A gap of length `k` costs `gap_open + k * gap_extend` (the paper's
/// `α`/`β`; opening a 1-gap costs `α + β`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scoring {
    /// Score added on a match (`+a`, positive).
    pub match_score: i32,
    /// Penalty subtracted on a mismatch (`b`, positive).
    pub mismatch: i32,
    /// Gap-open penalty `α` (positive).
    pub gap_open: i32,
    /// Gap-extend penalty `β` (positive).
    pub gap_extend: i32,
    /// Z-drop termination threshold `Z` (positive). Use [`Scoring::NO_ZDROP`]
    /// to disable termination.
    pub zdrop: i32,
    /// Band half-width `w`: cell `(i, j)` is computed iff `|i - j| <= w`.
    /// Use [`Scoring::NO_BAND`] for unbanded alignment.
    pub band_width: i32,
    /// Penalty for comparing against `N` (positive; applied instead of
    /// `mismatch` whenever either base is ambiguous).
    pub ambig: i32,
}

impl Scoring {
    /// Disables the Z-drop termination condition.
    pub const NO_ZDROP: i32 = i32::MAX / 4;
    /// Disables banding.
    pub const NO_BAND: i32 = i32::MAX / 4;

    /// Construct with explicit parameters (the CLI's `-a -b -q -r -z -w`).
    pub fn new(
        match_score: i32,
        mismatch: i32,
        gap_open: i32,
        gap_extend: i32,
        zdrop: i32,
        band_width: i32,
    ) -> Scoring {
        let s =
            Scoring { match_score, mismatch, gap_open, gap_extend, zdrop, band_width, ambig: 1 };
        s.validate().expect("invalid scoring parameters");
        s
    }

    /// Check parameter sanity; returns a human-readable error.
    pub fn validate(&self) -> Result<(), String> {
        if self.match_score <= 0 {
            return Err(format!("match_score must be positive, got {}", self.match_score));
        }
        for (name, v) in [
            ("mismatch", self.mismatch),
            ("gap_open", self.gap_open),
            ("gap_extend", self.gap_extend),
            ("zdrop", self.zdrop),
            ("ambig", self.ambig),
        ] {
            if v < 0 {
                return Err(format!("{name} must be non-negative, got {v}"));
            }
        }
        if self.gap_extend == 0 {
            return Err("gap_extend must be positive".to_string());
        }
        if self.band_width < 0 {
            return Err(format!("band_width must be non-negative, got {}", self.band_width));
        }
        Ok(())
    }

    /// Substitution score `S(x, y)` between two base codes (paper Eq. 1).
    ///
    /// Positive on a match, `-mismatch` on a mismatch, `-ambig` if either
    /// base is `N` (ambiguous bases never "match").
    #[inline(always)]
    pub fn substitution(&self, x: u8, y: u8) -> i32 {
        let n = Base::N.code();
        if x >= n || y >= n {
            -self.ambig
        } else if x == y {
            self.match_score
        } else {
            -self.mismatch
        }
    }

    /// Cost of a gap of length `k >= 1`: `gap_open + k * gap_extend`.
    #[inline]
    pub fn gap_cost(&self, k: i32) -> i32 {
        debug_assert!(k >= 1);
        self.gap_open + k * self.gap_extend
    }

    /// Border score `H(i, -1) = H(-1, i) = -(α + (i+1)β)` for `i >= 0`.
    #[inline(always)]
    pub fn border(&self, i: i32) -> i32 {
        -(self.gap_open + (i + 1) * self.gap_extend)
    }

    /// Whether cell `(i, j)` falls inside the diagonal band.
    #[inline(always)]
    pub fn in_band(&self, i: i32, j: i32) -> bool {
        (i - j).abs() <= self.band_width
    }

    /// Whether the Z-drop termination condition is active.
    #[inline]
    pub fn zdrop_enabled(&self) -> bool {
        self.zdrop < Scoring::NO_ZDROP
    }

    /// Whether banding is active.
    #[inline]
    pub fn banded(&self) -> bool {
        self.band_width < Scoring::NO_BAND
    }

    /// Minimap2 `map-hifi`-style preset (PacBio HiFi reads):
    /// `A=1 B=4 O=6 E=2 z=200 w=200`.
    pub fn preset_hifi() -> Scoring {
        Scoring::new(1, 4, 6, 2, 200, 200)
    }

    /// Minimap2 `map-pb`-style preset (PacBio CLR reads):
    /// `A=2 B=4 O=4 E=2 z=400 w=400`.
    pub fn preset_clr() -> Scoring {
        Scoring::new(2, 4, 4, 2, 400, 400)
    }

    /// Minimap2 `map-ont`-style preset (Oxford Nanopore reads):
    /// `A=2 B=4 O=4 E=2 z=400 w=400`.
    pub fn preset_ont() -> Scoring {
        Scoring::new(2, 4, 4, 2, 400, 400)
    }

    /// BWA-MEM-style preset: "the default band width and termination
    /// threshold being significantly smaller" (§5.9):
    /// `A=1 B=4 O=6 E=1 z=100 w=100`.
    pub fn preset_bwa() -> Scoring {
        Scoring::new(1, 4, 6, 1, 100, 100)
    }

    /// The worked example from Figure 1 of the paper:
    /// match `+2`, mismatch `-4`, `α=4`, `β=2`.
    pub fn figure1() -> Scoring {
        Scoring::new(2, 4, 4, 2, Scoring::NO_ZDROP, Scoring::NO_BAND)
    }

    /// Return a copy with a different band width.
    pub fn with_band(mut self, w: i32) -> Scoring {
        self.band_width = w;
        self
    }

    /// Return a copy with a different Z-drop threshold.
    pub fn with_zdrop(mut self, z: i32) -> Scoring {
        self.zdrop = z;
        self
    }

    /// Scale band width and Z-drop threshold down by `factor` (used when
    /// generating reduced-scale benchmark datasets; keeps score parameters
    /// identical so per-cell arithmetic is unchanged).
    pub fn scaled_guides(mut self, factor: i32) -> Scoring {
        assert!(factor >= 1);
        if self.banded() {
            self.band_width = (self.band_width / factor).max(8);
        }
        if self.zdrop_enabled() {
            self.zdrop = (self.zdrop / factor).max(10);
        }
        self
    }
}

impl Default for Scoring {
    /// Minimap2's long-read default (`map-ont`-style).
    fn default() -> Scoring {
        Scoring::preset_ont()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substitution_matrix() {
        let s = Scoring::figure1();
        assert_eq!(s.substitution(0, 0), 2);
        assert_eq!(s.substitution(0, 1), -4);
        assert_eq!(s.substitution(4, 0), -1);
        assert_eq!(s.substitution(0, 4), -1);
        assert_eq!(s.substitution(4, 4), -1);
    }

    #[test]
    fn border_matches_figure1() {
        // Figure 1 with α=4, β=2: first border cells are -6, -8, -10, ...
        let s = Scoring::figure1();
        assert_eq!(s.border(0), -6);
        assert_eq!(s.border(1), -8);
        assert_eq!(s.border(2), -10);
    }

    #[test]
    fn gap_cost_affine() {
        let s = Scoring::preset_clr();
        assert_eq!(s.gap_cost(1), 6);
        assert_eq!(s.gap_cost(5), 14);
    }

    #[test]
    fn band_membership() {
        let s = Scoring::preset_bwa(); // w = 100
        assert!(s.in_band(0, 100));
        assert!(!s.in_band(0, 101));
        assert!(s.in_band(350, 250));
    }

    #[test]
    fn presets_validate() {
        for p in [
            Scoring::preset_hifi(),
            Scoring::preset_clr(),
            Scoring::preset_ont(),
            Scoring::preset_bwa(),
            Scoring::figure1(),
        ] {
            p.validate().unwrap();
        }
    }

    #[test]
    fn invalid_scoring_rejected() {
        let s = Scoring { match_score: 0, ..Scoring::default() };
        assert!(s.validate().is_err());
        let s = Scoring { gap_extend: 0, ..Scoring::default() };
        assert!(s.validate().is_err());
    }

    #[test]
    fn scaled_guides_floor() {
        let s = Scoring::preset_clr().scaled_guides(1000);
        assert_eq!(s.band_width, 8);
        assert_eq!(s.zdrop, 10);
    }
}
