//! Scoring models and the affine-gap parameters used in the evaluation.
//!
//! The paper (and the AGAThA artifact's `AGAThA.sh`) parameterises alignment
//! with: match score `-a`, mismatch penalty `-b`, gap-open penalty `-q` (α),
//! gap-extension penalty `-r` (β), termination threshold `-z` (Z), and band
//! width `-w`. Minimap2 preset parameters are used per dataset category
//! (§5.1); BWA-MEM uses "significantly smaller" band width and termination
//! threshold (§5.9).
//!
//! The per-cell substitution score `S(x, y)` is abstracted behind
//! [`ScoreModel`]: the paper's fixed match/mismatch DNA scoring is one
//! instance, and protein substitution matrices (BLOSUM62-class) are another.
//! Every downstream consumer that used to read the DNA constants — the
//! `i16`/`i32` overflow gates, the SIMD kernels' substitution vectors — now
//! derives its bounds from [`ScoreModel::max_score`] /
//! [`ScoreModel::min_score`], so adding a model re-derives every exactness
//! proof instead of silently weakening it.

use crate::base::Base;

/// A substitution matrix over a residue alphabet (protein scoring).
///
/// `scores` is `dim × dim`, row-major, indexed by residue code; the last
/// code (`dim - 1`) is the ambiguous/unknown residue (`X`), which also pads
/// sequences past their end — the protein analogue of DNA's `N`.
#[derive(Debug)]
pub struct SubstMatrix {
    /// Stable matrix name (CLI/bench/scenario rows).
    pub name: &'static str,
    /// Residue alphabet in code order; the final character is the
    /// ambiguous/pad residue.
    pub alphabet: &'static str,
    /// Alphabet size (number of residue codes).
    pub dim: usize,
    /// `dim × dim` substitution scores, row-major.
    pub scores: &'static [i8],
    /// Largest entry of `scores` (declared, asserted by tests).
    pub max_score: i32,
    /// Smallest (most negative) entry of `scores` (declared, asserted by
    /// tests).
    pub min_score: i32,
}

impl SubstMatrix {
    /// Substitution score between residue codes `x` and `y`. Codes at or
    /// beyond `dim` (foreign-alphabet input) clamp to the ambiguous residue.
    #[inline(always)]
    pub fn score(&self, x: u8, y: u8) -> i32 {
        let clamp = |c: u8| (c as usize).min(self.dim - 1);
        i32::from(self.scores[clamp(x) * self.dim + clamp(y)])
    }

    /// The ambiguous/pad residue code (`dim - 1`).
    #[inline]
    pub fn pad_code(&self) -> u8 {
        (self.dim - 1) as u8
    }

    /// Residue code for an ASCII character (case-insensitive); characters
    /// outside the alphabet map to the ambiguous residue.
    pub fn code_of(&self, c: char) -> u8 {
        let up = c.to_ascii_uppercase();
        self.alphabet.chars().position(|a| a == up).map_or(self.pad_code(), |i| i as u8)
    }

    /// Encode an ASCII residue string to codes.
    pub fn codes_from_str(&self, s: &str) -> Vec<u8> {
        s.chars().map(|c| self.code_of(c)).collect()
    }

    /// Check declared bounds and shape against the score table.
    pub fn validate(&self) -> Result<(), String> {
        if self.dim == 0 || self.scores.len() != self.dim * self.dim {
            return Err(format!(
                "matrix {}: expected {}x{} scores, got {}",
                self.name,
                self.dim,
                self.dim,
                self.scores.len()
            ));
        }
        if self.alphabet.chars().count() != self.dim {
            return Err(format!("matrix {}: alphabet length != dim {}", self.name, self.dim));
        }
        let max = self.scores.iter().copied().max().unwrap() as i32;
        let min = self.scores.iter().copied().min().unwrap() as i32;
        if max != self.max_score || min != self.min_score {
            return Err(format!(
                "matrix {}: declared bounds [{}, {}] but table has [{min}, {max}]",
                self.name, self.min_score, self.max_score
            ));
        }
        if self.max_score <= 0 {
            return Err(format!("matrix {}: max_score must be positive", self.name));
        }
        Ok(())
    }
}

/// BLOSUM62 over the 20 standard amino acids plus `X` (ambiguous/pad).
///
/// The 20×20 core is the standard BLOSUM62 table (order `ARNDCQEGHILKMFPSTWYV`,
/// max 11 on `W/W`, min −4); `X` scores −1 against everything — a documented
/// simplification of NCBI's per-residue `X` column, chosen so the pad residue
/// behaves like DNA's flat `-ambig` penalty.
pub static BLOSUM62: SubstMatrix = SubstMatrix {
    name: "blosum62",
    alphabet: "ARNDCQEGHILKMFPSTWYVX",
    dim: 21,
    #[rustfmt::skip]
    scores: &[
    //   A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V   X
         4, -1, -2, -2,  0, -1, -1,  0, -2, -1, -1, -1, -1, -2, -1,  1,  0, -3, -2,  0, -1,
        -1,  5,  0, -2, -3,  1,  0, -2,  0, -3, -2,  2, -1, -3, -2, -1, -1, -3, -2, -3, -1,
        -2,  0,  6,  1, -3,  0,  0,  0,  1, -3, -3,  0, -2, -3, -2,  1,  0, -4, -2, -3, -1,
        -2, -2,  1,  6, -3,  0,  2, -1, -1, -3, -4, -1, -3, -3, -1,  0, -1, -4, -3, -3, -1,
         0, -3, -3, -3,  9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1, -1,
        -1,  1,  0,  0, -3,  5,  2, -2,  0, -3, -2,  1,  0, -3, -1,  0, -1, -2, -1, -2, -1,
        -1,  0,  0,  2, -4,  2,  5, -2,  0, -3, -3,  1, -2, -3, -1,  0, -1, -3, -2, -2, -1,
         0, -2,  0, -1, -3, -2, -2,  6, -2, -4, -4, -2, -3, -3, -2,  0, -2, -2, -3, -3, -1,
        -2,  0,  1, -1, -3,  0,  0, -2,  8, -3, -3, -1, -2, -1, -2, -1, -2, -2,  2, -3, -1,
        -1, -3, -3, -3, -1, -3, -3, -4, -3,  4,  2, -3,  1,  0, -3, -2, -1, -3, -1,  3, -1,
        -1, -2, -3, -4, -1, -2, -3, -4, -3,  2,  4, -2,  2,  0, -3, -2, -1, -2, -1,  1, -1,
        -1,  2,  0, -1, -3,  1,  1, -2, -1, -3, -2,  5, -1, -3, -1,  0, -1, -3, -2, -2, -1,
        -1, -1, -2, -3, -1,  0, -2, -3, -2,  1,  2, -1,  5,  0, -2, -1, -1, -1, -1,  1, -1,
        -2, -3, -3, -3, -2, -3, -3, -3, -1,  0,  0, -3,  0,  6, -4, -2, -2,  1,  3, -1, -1,
        -1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4,  7, -1, -1, -4, -3, -2, -1,
         1, -1,  1,  0, -1,  0,  0,  0, -1, -2, -2,  0, -1, -2, -1,  4,  1, -3, -2, -2, -1,
         0, -1,  0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1,  1,  5, -2, -2,  0, -1,
        -3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1,  1, -4, -3, -2, 11,  2, -3, -1,
        -2, -2, -2, -3, -2, -1, -2, -3,  2, -1, -1, -2, -1,  3, -3, -2, -2,  2,  7, -1, -1,
         0, -3, -3, -3, -1, -2, -2, -3, -3,  3,  1, -2,  1, -1, -2, -2,  0, -3, -1,  4, -1,
        -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,
    ],
    max_score: 11,
    min_score: -4,
};

/// The per-cell substitution model: how `S(x, y)` is computed.
///
/// Kept `Copy` (like [`Scoring`]): the matrix variant borrows a `'static`
/// table, so a score model is two words either way.
#[derive(Debug, Clone, Copy)]
pub enum ScoreModel {
    /// Fixed-score DNA model (paper Eq. 1): `+match_score` on equal
    /// non-ambiguous codes, `-mismatch` otherwise, `-ambig` when either code
    /// is `N` (ambiguous bases never "match").
    Fixed {
        /// Score added on a match (`+a`, positive).
        match_score: i32,
        /// Penalty subtracted on a mismatch (`b`, non-negative).
        mismatch: i32,
        /// Penalty applied instead of `mismatch` whenever either base is
        /// ambiguous (non-negative).
        ambig: i32,
    },
    /// Substitution-matrix model (protein scoring).
    Matrix(&'static SubstMatrix),
}

impl PartialEq for ScoreModel {
    fn eq(&self, other: &ScoreModel) -> bool {
        match (self, other) {
            (
                ScoreModel::Fixed { match_score: a, mismatch: b, ambig: c },
                ScoreModel::Fixed { match_score: x, mismatch: y, ambig: z },
            ) => (a, b, c) == (x, y, z),
            // Matrices are static singletons; identity is the right equality
            // (and avoids comparing 441-entry tables per block dispatch).
            (ScoreModel::Matrix(a), ScoreModel::Matrix(b)) => std::ptr::eq(*a, *b),
            _ => false,
        }
    }
}

impl Eq for ScoreModel {}

impl ScoreModel {
    /// Substitution score `S(x, y)` between two residue codes.
    #[inline(always)]
    pub fn score(&self, x: u8, y: u8) -> i32 {
        match self {
            ScoreModel::Fixed { match_score, mismatch, ambig } => {
                let n = Base::N.code();
                if x >= n || y >= n {
                    -ambig
                } else if x == y {
                    *match_score
                } else {
                    -mismatch
                }
            }
            ScoreModel::Matrix(m) => m.score(x, y),
        }
    }

    /// Largest possible substitution score — the positive reach bound every
    /// overflow gate derives from.
    #[inline]
    pub fn max_score(&self) -> i32 {
        match self {
            ScoreModel::Fixed { match_score, .. } => *match_score,
            ScoreModel::Matrix(m) => m.max_score,
        }
    }

    /// Smallest (most negative) possible substitution score.
    #[inline]
    pub fn min_score(&self) -> i32 {
        match self {
            ScoreModel::Fixed { mismatch, ambig, .. } => -(*mismatch).max(*ambig),
            ScoreModel::Matrix(m) => m.min_score,
        }
    }

    /// The fixed-model parameters `(match_score, mismatch, ambig)`, if this
    /// is the fixed model (the SIMD kernels' compare/blend constants).
    #[inline]
    pub fn fixed_params(&self) -> Option<(i32, i32, i32)> {
        match self {
            ScoreModel::Fixed { match_score, mismatch, ambig } => {
                Some((*match_score, *mismatch, *ambig))
            }
            ScoreModel::Matrix(_) => None,
        }
    }

    /// The substitution matrix, if this is the matrix model.
    #[inline]
    pub fn matrix(&self) -> Option<&'static SubstMatrix> {
        match self {
            ScoreModel::Fixed { .. } => None,
            ScoreModel::Matrix(m) => Some(m),
        }
    }

    /// The ambiguous/pad residue code of this model's alphabet: `N` for the
    /// fixed DNA model, the matrix's pad residue (`X`) otherwise.
    #[inline]
    pub fn pad_code(&self) -> u8 {
        match self {
            ScoreModel::Fixed { .. } => Base::N.code(),
            ScoreModel::Matrix(m) => m.pad_code(),
        }
    }

    /// Stable lower-case name (stats output, bench/scenario rows).
    pub fn name(&self) -> &'static str {
        match self {
            ScoreModel::Fixed { .. } => "fixed",
            ScoreModel::Matrix(m) => m.name,
        }
    }

    /// Check model sanity; returns a human-readable error.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            ScoreModel::Fixed { match_score, mismatch, ambig } => {
                if *match_score <= 0 {
                    return Err(format!("match_score must be positive, got {match_score}"));
                }
                for (name, v) in [("mismatch", *mismatch), ("ambig", *ambig)] {
                    if v < 0 {
                        return Err(format!("{name} must be non-negative, got {v}"));
                    }
                }
                Ok(())
            }
            ScoreModel::Matrix(m) => m.validate(),
        }
    }
}

/// Affine-gap scoring parameters for guided alignment.
///
/// A gap of length `k` costs `gap_open + k * gap_extend` (the paper's
/// `α`/`β`; opening a 1-gap costs `α + β`). Per-cell substitution scores
/// come from [`ScoreModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scoring {
    /// Substitution model (fixed DNA scores or a substitution matrix).
    pub model: ScoreModel,
    /// Gap-open penalty `α` (positive).
    pub gap_open: i32,
    /// Gap-extend penalty `β` (positive).
    pub gap_extend: i32,
    /// Z-drop termination threshold `Z` (positive). Use [`Scoring::NO_ZDROP`]
    /// to disable termination.
    pub zdrop: i32,
    /// Band half-width `w`: cell `(i, j)` is computed iff `|i - j| <= w`.
    /// Use [`Scoring::NO_BAND`] for unbanded alignment.
    pub band_width: i32,
}

impl Scoring {
    /// Disables the Z-drop termination condition.
    pub const NO_ZDROP: i32 = i32::MAX / 4;
    /// Disables banding.
    pub const NO_BAND: i32 = i32::MAX / 4;

    /// Construct with explicit fixed-model parameters (the CLI's
    /// `-a -b -q -r -z -w`). Panics on invalid parameters; user-facing input
    /// paths should prefer [`Scoring::try_new`] and surface the error.
    pub fn new(
        match_score: i32,
        mismatch: i32,
        gap_open: i32,
        gap_extend: i32,
        zdrop: i32,
        band_width: i32,
    ) -> Scoring {
        Scoring::try_new(match_score, mismatch, gap_open, gap_extend, zdrop, band_width)
            .expect("invalid scoring parameters")
    }

    /// Checked twin of [`Scoring::new`]: returns the [`Scoring::validate`]
    /// error instead of panicking (CLI flags surface this as a usage error).
    pub fn try_new(
        match_score: i32,
        mismatch: i32,
        gap_open: i32,
        gap_extend: i32,
        zdrop: i32,
        band_width: i32,
    ) -> Result<Scoring, String> {
        let s = Scoring {
            model: ScoreModel::Fixed { match_score, mismatch, ambig: 1 },
            gap_open,
            gap_extend,
            zdrop,
            band_width,
        };
        s.validate()?;
        Ok(s)
    }

    /// Construct with a substitution-matrix model. Panics on invalid
    /// parameters; see [`Scoring::try_with_matrix`].
    pub fn with_matrix(
        matrix: &'static SubstMatrix,
        gap_open: i32,
        gap_extend: i32,
        zdrop: i32,
        band_width: i32,
    ) -> Scoring {
        Scoring::try_with_matrix(matrix, gap_open, gap_extend, zdrop, band_width)
            .expect("invalid scoring parameters")
    }

    /// Checked constructor for the substitution-matrix model.
    pub fn try_with_matrix(
        matrix: &'static SubstMatrix,
        gap_open: i32,
        gap_extend: i32,
        zdrop: i32,
        band_width: i32,
    ) -> Result<Scoring, String> {
        let s =
            Scoring { model: ScoreModel::Matrix(matrix), gap_open, gap_extend, zdrop, band_width };
        s.validate()?;
        Ok(s)
    }

    /// Check parameter sanity; returns a human-readable error.
    pub fn validate(&self) -> Result<(), String> {
        self.model.validate()?;
        for (name, v) in [("gap_open", self.gap_open), ("zdrop", self.zdrop)] {
            if v < 0 {
                return Err(format!("{name} must be non-negative, got {v}"));
            }
        }
        if self.gap_extend <= 0 {
            return Err(format!("gap_extend must be positive, got {}", self.gap_extend));
        }
        if self.band_width < 0 {
            return Err(format!("band_width must be non-negative, got {}", self.band_width));
        }
        Ok(())
    }

    /// Substitution score `S(x, y)` between two residue codes (paper Eq. 1).
    #[inline(always)]
    pub fn substitution(&self, x: u8, y: u8) -> i32 {
        self.model.score(x, y)
    }

    /// Largest possible substitution score (see [`ScoreModel::max_score`]).
    #[inline]
    pub fn max_score(&self) -> i32 {
        self.model.max_score()
    }

    /// Smallest possible substitution score (see [`ScoreModel::min_score`]).
    #[inline]
    pub fn min_score(&self) -> i32 {
        self.model.min_score()
    }

    /// Cost of a gap of length `k >= 1`: `gap_open + k * gap_extend`.
    #[inline]
    pub fn gap_cost(&self, k: i32) -> i32 {
        debug_assert!(k >= 1);
        self.gap_open + k * self.gap_extend
    }

    /// Border score `H(i, -1) = H(-1, i) = -(α + (i+1)β)` for `i >= 0`.
    #[inline(always)]
    pub fn border(&self, i: i32) -> i32 {
        -(self.gap_open + (i + 1) * self.gap_extend)
    }

    /// Whether cell `(i, j)` falls inside the diagonal band.
    #[inline(always)]
    pub fn in_band(&self, i: i32, j: i32) -> bool {
        (i - j).abs() <= self.band_width
    }

    /// Whether the Z-drop termination condition is active.
    #[inline]
    pub fn zdrop_enabled(&self) -> bool {
        self.zdrop < Scoring::NO_ZDROP
    }

    /// Whether banding is active.
    #[inline]
    pub fn banded(&self) -> bool {
        self.band_width < Scoring::NO_BAND
    }

    /// Minimap2 `map-hifi`-style preset (PacBio HiFi reads):
    /// `A=1 B=4 O=6 E=2 z=200 w=200`.
    pub fn preset_hifi() -> Scoring {
        Scoring::new(1, 4, 6, 2, 200, 200)
    }

    /// Minimap2 `map-pb`-style preset (PacBio CLR reads):
    /// `A=2 B=4 O=4 E=2 z=400 w=400`.
    pub fn preset_clr() -> Scoring {
        Scoring::new(2, 4, 4, 2, 400, 400)
    }

    /// Minimap2 `map-ont`-style preset (Oxford Nanopore reads):
    /// `A=2 B=4 O=4 E=2 z=400 w=400`.
    pub fn preset_ont() -> Scoring {
        Scoring::new(2, 4, 4, 2, 400, 400)
    }

    /// BWA-MEM-style preset: "the default band width and termination
    /// threshold being significantly smaller" (§5.9):
    /// `A=1 B=4 O=6 E=1 z=100 w=100`.
    pub fn preset_bwa() -> Scoring {
        Scoring::new(1, 4, 6, 1, 100, 100)
    }

    /// BLOSUM62 protein preset: standard BLAST-style gap costs
    /// (`O=10 E=1`), guides at BWA scale.
    pub fn preset_blosum62() -> Scoring {
        Scoring::with_matrix(&BLOSUM62, 10, 1, 100, 100)
    }

    /// The worked example from Figure 1 of the paper:
    /// match `+2`, mismatch `-4`, `α=4`, `β=2`.
    pub fn figure1() -> Scoring {
        Scoring::new(2, 4, 4, 2, Scoring::NO_ZDROP, Scoring::NO_BAND)
    }

    /// Return a copy with a different band width.
    pub fn with_band(mut self, w: i32) -> Scoring {
        self.band_width = w;
        self
    }

    /// Return a copy with a different Z-drop threshold.
    pub fn with_zdrop(mut self, z: i32) -> Scoring {
        self.zdrop = z;
        self
    }

    /// Scale band width and Z-drop threshold down by `factor` (used when
    /// generating reduced-scale benchmark datasets; keeps score parameters
    /// identical so per-cell arithmetic is unchanged).
    pub fn scaled_guides(mut self, factor: i32) -> Scoring {
        assert!(factor >= 1);
        if self.banded() {
            self.band_width = (self.band_width / factor).max(8);
        }
        if self.zdrop_enabled() {
            self.zdrop = (self.zdrop / factor).max(10);
        }
        self
    }
}

impl Default for Scoring {
    /// Minimap2's long-read default (`map-ont`-style).
    fn default() -> Scoring {
        Scoring::preset_ont()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substitution_matrix() {
        let s = Scoring::figure1();
        assert_eq!(s.substitution(0, 0), 2);
        assert_eq!(s.substitution(0, 1), -4);
        assert_eq!(s.substitution(4, 0), -1);
        assert_eq!(s.substitution(0, 4), -1);
        assert_eq!(s.substitution(4, 4), -1);
    }

    #[test]
    fn border_matches_figure1() {
        // Figure 1 with α=4, β=2: first border cells are -6, -8, -10, ...
        let s = Scoring::figure1();
        assert_eq!(s.border(0), -6);
        assert_eq!(s.border(1), -8);
        assert_eq!(s.border(2), -10);
    }

    #[test]
    fn gap_cost_affine() {
        let s = Scoring::preset_clr();
        assert_eq!(s.gap_cost(1), 6);
        assert_eq!(s.gap_cost(5), 14);
    }

    #[test]
    fn band_membership() {
        let s = Scoring::preset_bwa(); // w = 100
        assert!(s.in_band(0, 100));
        assert!(!s.in_band(0, 101));
        assert!(s.in_band(350, 250));
    }

    #[test]
    fn presets_validate() {
        for p in [
            Scoring::preset_hifi(),
            Scoring::preset_clr(),
            Scoring::preset_ont(),
            Scoring::preset_bwa(),
            Scoring::preset_blosum62(),
            Scoring::figure1(),
        ] {
            p.validate().unwrap();
        }
    }

    #[test]
    fn invalid_scoring_rejected() {
        let s = Scoring {
            model: ScoreModel::Fixed { match_score: 0, mismatch: 4, ambig: 1 },
            ..Scoring::default()
        };
        assert!(s.validate().is_err());
        let s = Scoring { gap_extend: 0, ..Scoring::default() };
        assert!(s.validate().is_err());
        assert!(Scoring::try_new(0, 4, 6, 1, 100, 100).is_err());
        assert!(Scoring::try_new(1, -4, 6, 1, 100, 100).is_err());
        assert!(Scoring::try_new(1, 4, -6, 1, 100, 100).is_err());
        assert!(Scoring::try_new(1, 4, 6, 0, 100, 100).is_err());
    }

    #[test]
    fn scaled_guides_floor() {
        let s = Scoring::preset_clr().scaled_guides(1000);
        assert_eq!(s.band_width, 8);
        assert_eq!(s.zdrop, 10);
    }

    #[test]
    fn blosum62_table_is_consistent() {
        BLOSUM62.validate().unwrap();
        // Spot checks against the canonical table.
        let code = |c| BLOSUM62.code_of(c);
        assert_eq!(BLOSUM62.score(code('W'), code('W')), 11);
        assert_eq!(BLOSUM62.score(code('N'), code('W')), -4);
        assert_eq!(BLOSUM62.score(code('A'), code('A')), 4);
        assert_eq!(BLOSUM62.score(code('A'), code('R')), -1);
        // The matrix must be symmetric.
        for x in 0..BLOSUM62.dim as u8 {
            for y in 0..BLOSUM62.dim as u8 {
                assert_eq!(BLOSUM62.score(x, y), BLOSUM62.score(y, x), "({x},{y})");
            }
        }
        // Ambiguous/pad residue scores -1 against everything, and unknown
        // characters/codes clamp to it.
        for x in 0..BLOSUM62.dim as u8 {
            assert_eq!(BLOSUM62.score(x, BLOSUM62.pad_code()), -1);
        }
        assert_eq!(code('?'), BLOSUM62.pad_code());
        assert_eq!(BLOSUM62.score(200, 0), BLOSUM62.score(BLOSUM62.pad_code(), 0));
    }

    #[test]
    fn score_model_bounds() {
        let dna = Scoring::preset_clr();
        assert_eq!(dna.max_score(), 2);
        assert_eq!(dna.min_score(), -4);
        let prot = Scoring::preset_blosum62();
        assert_eq!(prot.max_score(), 11);
        assert_eq!(prot.min_score(), -4);
        assert_eq!(prot.model.pad_code(), 20);
        assert_eq!(dna.model.pad_code(), 4);
        assert_eq!(prot.model.name(), "blosum62");
        assert_eq!(dna.model.name(), "fixed");
        // Model equality: fixed by value, matrix by identity.
        assert_eq!(prot.model, ScoreModel::Matrix(&BLOSUM62));
        assert_ne!(prot.model, dna.model);
    }
}
