//! Per-query score profiles for substitution-matrix models.
//!
//! The fixed DNA model lets the SIMD fills compute `S(x, y)` with a
//! compare/blend against broadcast constants. A substitution matrix cannot:
//! each cell needs a table lookup. The classic striped-SW answer is a *query
//! profile* — for each residue code `c`, precompute the row
//! `row[c][j] = S(c, Q[j])` once per task, so the per-block work becomes
//! contiguous row reads indexed by the block's reference codes instead of
//! two-level `scores[x * dim + y]` gathers.
//!
//! Rows carry [`crate::MAX_BLOCK`] tail slots holding `S(c, pad)` so a block
//! whose query span hangs past the sequence end still reads the same scores
//! the direct lookup produces for pad codes — the profile path is
//! bit-identical to the lookup path by construction.

use crate::pack::PackedSeq;
use crate::scoring::{Scoring, SubstMatrix};
use crate::MAX_BLOCK;

/// Precomputed `S(c, Q[j])` rows for one (matrix, query) pair, reusable
/// across tasks like the kernel workspace that owns it.
#[derive(Debug, Clone, Default)]
pub struct QueryProfile {
    /// `dim` rows of `stride` i16 scores each (matrix entries fit i8).
    rows: Vec<i16>,
    /// Row length: query length + [`MAX_BLOCK`] pad slots.
    stride: usize,
    /// Alphabet size of the matrix the rows were built for.
    dim: usize,
    /// Query length the rows were built for.
    query_len: usize,
    /// The matrix the rows were built for (`None` = inactive).
    matrix: Option<&'static SubstMatrix>,
}

impl QueryProfile {
    /// Empty, inactive profile.
    pub fn new() -> QueryProfile {
        QueryProfile::default()
    }

    /// Build (or rebuild, reusing the allocation) the rows for `query`
    /// under `scoring`. A fixed-model scoring deactivates the profile — the
    /// fills then use their compare/blend constants as before.
    pub fn prepare(&mut self, query: &PackedSeq, scoring: &Scoring) {
        let Some(m) = scoring.model.matrix() else {
            self.matrix = None;
            return;
        };
        self.matrix = Some(m);
        self.dim = m.dim;
        self.query_len = query.len();
        self.stride = query.len() + MAX_BLOCK;
        self.rows.clear();
        self.rows.resize(self.dim * self.stride, 0);
        let pad = m.pad_code();
        for c in 0..self.dim {
            let row = &mut self.rows[c * self.stride..(c + 1) * self.stride];
            for (j, slot) in row.iter_mut().enumerate().take(query.len()) {
                *slot = m.score(c as u8, query.code(j)) as i16;
            }
            let tail = m.score(c as u8, pad) as i16;
            row[query.len()..].fill(tail);
        }
    }

    /// Whether these rows were built for exactly this matrix and query
    /// length (the fills' guard before reading rows).
    #[inline]
    pub fn covers(&self, matrix: &'static SubstMatrix, query_len: usize) -> bool {
        self.matrix.is_some_and(|m| std::ptr::eq(m, matrix)) && self.query_len == query_len
    }

    /// Score row for residue code `c` (clamped to the ambiguous residue,
    /// matching [`SubstMatrix::score`]): `row[j] = S(c, Q[j])`, with
    /// `S(c, pad)` in the [`MAX_BLOCK`] tail slots past the query end.
    #[inline]
    pub fn row(&self, c: u8) -> &[i16] {
        let c = (c as usize).min(self.dim - 1);
        &self.rows[c * self.stride..(c + 1) * self.stride]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::BLOSUM62;

    #[test]
    fn rows_match_direct_lookup() {
        let sc = Scoring::preset_blosum62();
        let codes: Vec<u8> = (0..50u8).map(|i| i % 21).collect();
        let q = PackedSeq::from_codes_wide(&codes, 8, BLOSUM62.pad_code());
        let mut p = QueryProfile::new();
        p.prepare(&q, &sc);
        assert!(p.covers(&BLOSUM62, q.len()));
        for c in 0..BLOSUM62.dim as u8 {
            let row = p.row(c);
            assert_eq!(row.len(), q.len() + MAX_BLOCK);
            for (j, &slot) in row.iter().take(q.len()).enumerate() {
                assert_eq!(i32::from(slot), BLOSUM62.score(c, q.code(j)), "c={c} j={j}");
            }
            for slot in &row[q.len()..] {
                assert_eq!(
                    i32::from(*slot),
                    BLOSUM62.score(c, BLOSUM62.pad_code()),
                    "tail must score like the pad residue"
                );
            }
        }
        // Out-of-alphabet row requests clamp exactly like SubstMatrix::score.
        assert_eq!(p.row(200), p.row(BLOSUM62.pad_code()));
    }

    #[test]
    fn fixed_model_deactivates() {
        let mut p = QueryProfile::new();
        let q = PackedSeq::from_codes(&[0, 1, 2, 3]);
        p.prepare(&q, &Scoring::preset_blosum62());
        assert!(p.covers(&BLOSUM62, 4));
        p.prepare(&q, &Scoring::preset_bwa());
        assert!(!p.covers(&BLOSUM62, 4));
    }
}
