//! Alignment tasks: the unit of work produced by the read-mapping
//! pre-computation (seed & chain) and consumed by every engine.

use crate::pack::PackedSeq;

/// Largest admissible per-sequence length.
///
/// Chosen so that every cell coordinate (`i`, `j`) and every anti-diagonal
/// index (`i + j <= n + m - 2`) of an admitted task fits an `i32`. This is
/// the single width contract the whole DP layer relies on: engines narrow
/// `i64` block geometry to the `i32` cell coordinates stored in
/// [`crate::result::MaxCell`] / fed to [`crate::diag::DiagTracker`], and
/// admission here is what makes those conversions lossless instead of
/// silently truncating.
pub const MAX_SEQ_LEN: usize = (i32::MAX / 2) as usize;

/// Checked admission of task dimensions (reference length `n`, query length
/// `m`). Over-wide inputs get a human-readable error instead of wrapping
/// cell coordinates later in the pipeline.
pub fn check_dims(n: usize, m: usize) -> Result<(), String> {
    for (axis, len) in [("reference", n), ("query", m)] {
        if len > MAX_SEQ_LEN {
            return Err(format!(
                "{axis} sequence of {len} bases exceeds the supported maximum of {MAX_SEQ_LEN} \
                 (cell coordinates must fit 32 bits)"
            ));
        }
    }
    Ok(())
}

/// One extension-alignment task: a reference segment vs. a query segment.
///
/// In the real pipeline these are produced by Minimap2's seeding/chaining
/// steps ("we ran them through the pre-computing steps to obtain the final
/// datasets for alignment", §5.1); here they come from
/// `agatha-datasets`' emulation of that step or from FASTA input.
#[derive(Debug, Clone)]
pub struct Task {
    /// Stable identifier (index in the input batch); used for output order
    /// and for workload-balancing bookkeeping.
    pub id: u32,
    /// Reference segment (the `R` axis, index `i`).
    pub reference: PackedSeq,
    /// Query segment (the `Q` axis, index `j`).
    pub query: PackedSeq,
}

impl Task {
    /// Build a task from ASCII sequences (convenience for tests/examples).
    pub fn from_strs(id: u32, reference: &str, query: &str) -> Task {
        Task {
            id,
            reference: PackedSeq::from_str_seq(reference),
            query: PackedSeq::from_str_seq(query),
        }
    }

    /// Build a task from ASCII sequences under a score model's alphabet:
    /// DNA 4-bit packing for the fixed model, the matrix's residue codes at
    /// 8 bits otherwise. Input paths that accept a model-parameterised
    /// workload (the serve daemon, scenario-aware FASTA readers) must pack
    /// through this so residue codes always index the model that scores
    /// them.
    pub fn from_strs_model(
        id: u32,
        reference: &str,
        query: &str,
        model: &crate::scoring::ScoreModel,
    ) -> Task {
        match model.matrix() {
            None => Task::from_strs(id, reference, query),
            Some(m) => Task {
                id,
                reference: PackedSeq::from_protein_str(reference, m),
                query: PackedSeq::from_protein_str(query, m),
            },
        }
    }

    /// Checked admission: every engine narrows this task's cell coordinates
    /// to `i32` downstream, so dimensions beyond [`MAX_SEQ_LEN`] must be
    /// rejected up front (see [`check_dims`]).
    pub fn admit(&self) -> Result<(), String> {
        check_dims(self.ref_len(), self.query_len())
    }

    /// Reference length `n`.
    #[inline]
    pub fn ref_len(&self) -> usize {
        self.reference.len()
    }

    /// Query length `m`.
    #[inline]
    pub fn query_len(&self) -> usize {
        self.query.len()
    }

    /// Total number of anti-diagonals of the (unterminated) score table:
    /// `n + m - 1`. The paper uses this as the a-priori workload measure for
    /// sorting and bucketing (§4.4, §5.6).
    #[inline]
    pub fn antidiags(&self) -> u32 {
        let n = self.ref_len() as u32;
        let m = self.query_len() as u32;
        (n + m).saturating_sub(1)
    }

    /// A-priori workload estimate in cells for band half-width `w`:
    /// `antidiags × min(band cells per diagonal)` — the paper's
    /// `Cells ≈ Antidiags × Band_width` (Eq. 8) without the run-ahead term.
    pub fn workload_cells(&self, band_width: i32) -> u64 {
        let per_diag = (2 * band_width + 1).min(self.ref_len().min(self.query_len()) as i32);
        self.antidiags() as u64 * per_diag.max(1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_dimensions() {
        let t = Task::from_strs(0, "AGATAGAT", "AGACTATC");
        assert_eq!(t.ref_len(), 8);
        assert_eq!(t.query_len(), 8);
        assert_eq!(t.antidiags(), 15);
    }

    #[test]
    fn model_aware_packing_follows_the_alphabet() {
        use crate::scoring::{ScoreModel, BLOSUM62};
        let fixed = ScoreModel::Fixed { match_score: 2, mismatch: 4, ambig: 1 };
        let t = Task::from_strs_model(0, "ACGT", "ACGA", &fixed);
        assert_eq!(t.reference.bits(), crate::pack::BITS_PER_BASE);
        let t = Task::from_strs_model(0, "ARND", "WWWW", &ScoreModel::Matrix(&BLOSUM62));
        assert_eq!(t.reference.bits(), 8);
        assert_eq!(t.query.pad(), BLOSUM62.pad_code());
        assert_eq!(t.reference.code(1), 1, "R packs to its BLOSUM62 row index");
    }

    #[test]
    fn workload_scales_with_band() {
        let t = Task::from_strs(0, &"A".repeat(100), &"A".repeat(100));
        assert!(t.workload_cells(50) > t.workload_cells(5));
    }

    #[test]
    fn empty_task_has_zero_antidiags() {
        let t = Task::from_strs(0, "", "");
        assert_eq!(t.antidiags(), 0);
    }

    #[test]
    fn admission_bounds_dimensions() {
        assert!(check_dims(0, 0).is_ok());
        assert!(check_dims(MAX_SEQ_LEN, MAX_SEQ_LEN).is_ok());
        let err = check_dims(MAX_SEQ_LEN + 1, 4).unwrap_err();
        assert!(err.contains("reference") && err.contains("32 bits"), "{err}");
        let err = check_dims(4, MAX_SEQ_LEN + 1).unwrap_err();
        assert!(err.contains("query"), "{err}");
        assert!(Task::from_strs(0, "ACGT", "ACGT").admit().is_ok());
    }

    #[test]
    fn admitted_coordinates_fit_i32() {
        // The contract admission exists for: the largest anti-diagonal index
        // of an admitted task is representable as i32 (and u32).
        let max_diag = (MAX_SEQ_LEN as u64) * 2 - 1;
        assert!(max_diag <= i32::MAX as u64);
    }
}
