//! DNA alphabet: the five literals `A`, `C`, `G`, `T`, `N` (§2.1).

/// A single DNA base, encoded in the low 3 bits of a byte.
///
/// The numeric codes are stable across the workspace because the 4-bit
/// packed representation ([`crate::pack::PackedSeq`]) stores them directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Base {
    A = 0,
    C = 1,
    G = 2,
    T = 3,
    /// Ambiguous base ("any"); scores specially (see [`crate::Scoring::ambig`]).
    N = 4,
}

impl Base {
    /// All five literals in code order.
    pub const ALL: [Base; 5] = [Base::A, Base::C, Base::G, Base::T, Base::N];

    /// The four unambiguous literals.
    pub const ACGT: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

    /// Decode from the numeric code. Codes `>= 4` map to `N`.
    #[inline]
    pub fn from_code(code: u8) -> Base {
        match code {
            0 => Base::A,
            1 => Base::C,
            2 => Base::G,
            3 => Base::T,
            _ => Base::N,
        }
    }

    /// Numeric code (0–4).
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Parse from an ASCII character (case-insensitive). Unknown characters
    /// become `N`, matching common FASTA-reader behaviour.
    #[inline]
    pub fn from_char(c: char) -> Base {
        match c.to_ascii_uppercase() {
            'A' => Base::A,
            'C' => Base::C,
            'G' => Base::G,
            'T' | 'U' => Base::T,
            _ => Base::N,
        }
    }

    /// Upper-case ASCII character for this base.
    #[inline]
    pub fn to_char(self) -> char {
        match self {
            Base::A => 'A',
            Base::C => 'C',
            Base::G => 'G',
            Base::T => 'T',
            Base::N => 'N',
        }
    }

    /// Watson–Crick complement; `N` complements to `N`.
    #[inline]
    pub fn complement(self) -> Base {
        match self {
            Base::A => Base::T,
            Base::C => Base::G,
            Base::G => Base::C,
            Base::T => Base::A,
            Base::N => Base::N,
        }
    }

    /// Whether this is one of the four unambiguous literals.
    #[inline]
    pub fn is_unambiguous(self) -> bool {
        !matches!(self, Base::N)
    }
}

impl std::fmt::Display for Base {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

/// Convert an ASCII string into base codes.
pub fn codes_from_str(s: &str) -> Vec<u8> {
    s.chars().map(|c| Base::from_char(c).code()).collect()
}

/// Render base codes as an ASCII string.
pub fn codes_to_string(codes: &[u8]) -> String {
    codes.iter().map(|&c| Base::from_code(c).to_char()).collect()
}

/// Reverse complement of a code slice.
pub fn reverse_complement(codes: &[u8]) -> Vec<u8> {
    codes.iter().rev().map(|&c| Base::from_code(c).complement().code()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_codes() {
        for b in Base::ALL {
            assert_eq!(Base::from_code(b.code()), b);
        }
    }

    #[test]
    fn parse_characters() {
        assert_eq!(Base::from_char('a'), Base::A);
        assert_eq!(Base::from_char('g'), Base::G);
        assert_eq!(Base::from_char('u'), Base::T);
        assert_eq!(Base::from_char('x'), Base::N);
        assert_eq!(Base::from_char('n'), Base::N);
    }

    #[test]
    fn complement_is_involution_on_acgt() {
        for b in Base::ACGT {
            assert_eq!(b.complement().complement(), b);
            assert_ne!(b.complement(), b);
        }
        assert_eq!(Base::N.complement(), Base::N);
    }

    #[test]
    fn string_roundtrip() {
        let s = "AGATTACAN";
        assert_eq!(codes_to_string(&codes_from_str(s)), s);
    }

    #[test]
    fn reverse_complement_known() {
        let c = codes_from_str("AACGT");
        assert_eq!(codes_to_string(&reverse_complement(&c)), "ACGTT");
    }

    #[test]
    fn unknown_codes_clamp_to_n() {
        assert_eq!(Base::from_code(7), Base::N);
        assert_eq!(Base::from_code(255), Base::N);
    }
}
