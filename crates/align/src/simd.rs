//! Vectorised block fill: the `B×B` block DP recomputed as an anti-diagonal
//! wavefront, which removes every intra-iteration dependency (cells on one
//! block anti-diagonal depend only on the previous two), so each diagonal's
//! `B` lanes compute in parallel.
//!
//! The fills are generic over the block side `B ∈ {8, 16}` (see
//! [`crate::BLOCK`] / [`crate::MAX_BLOCK`]); the concrete vector kernels are
//! monomorphic and reached through geometry-guarded dispatch:
//!
//! * [`fill_wavefront`] (i32): at B=8 an AVX2 kernel on x86-64 when the CPU
//!   supports it (one 8×i32 vector per diagonal — the vector is already
//!   full), otherwise a portable fixed-lane wavefront that LLVM
//!   auto-vectorises. At B=16 the i32 path is intentionally the portable
//!   wavefront: AVX2 has no wider i32 vector to fill, so there is nothing
//!   for a hand-written kernel to win (the adaptive geometry policy never
//!   picks B=16 for the i32 tier).
//! * [`fill_wavefront_i16`]: at B=8 the SSE4.1 kernel (8×i16, AVX2-encoded
//!   on AVX2 hosts); at B=16 the wide AVX2 kernel that fills all 16 i16
//!   lanes of a 256-bit vector per block diagonal — the payoff geometry.
//! * Every backend is **bit-identical** to [`crate::block::fill_scalar`] at
//!   the same geometry: every cell's `H/E/F` is computed from exactly the
//!   same inputs with exactly the same integer operations — only the
//!   evaluation order differs, and no reassociation of `max`/`+` takes
//!   place. The one scalar-path difference, `saturating_add` on the
//!   diagonal term, is neutralised by
//!   [`crate::block::BlockCtx::simd_exact`], which routes tasks whose
//!   scores could approach the `i32` limits back to the scalar fill.
//!
//! ## Wavefront bookkeeping
//!
//! Lane `l` of diagonal `d` holds cell `(i0+l, j0+d-l)`. With that layout:
//!
//! * *left* (`H/F(i, j-1)`) is lane `l` of diagonal `d-1` — no shift;
//! * *up* (`H/E(i-1, j)`) is lane `l-1` of diagonal `d-1` — shift one lane,
//!   injecting the west boundary at lane 0;
//! * *diag* (`H(i-1, j-1)`) is lane `l-1` of diagonal `d-2` — same shift,
//!   injecting `corner`/west;
//! * the north boundary is pre-seeded into lane `d+1` of diagonal `d`'s
//!   state (an out-of-shape lane), so `left`/`diag` reads pick it up with
//!   no per-lane patching.

//! ## The 16-bit tier
//!
//! [`fill_wavefront_i16`] is the same wavefront at half the lane width:
//! saturating i16 arithmetic with [`NEG_INF16`] as the sentinel, gated by
//! [`crate::block::BlockCtx::i16_exact`] (the i16 analogue of
//! `simd_exact`, derived per geometry — see
//! [`crate::block::BlockCtx::with_block_dim`]). Boundary carries stay `i32`
//! at the interface and are converted with `i32 → i16` saturation at block
//! entry (exact for every reachable real value under the gate;
//! `-∞`-derived values collapse into the sentinel class, which by
//! construction loses every `max` against a real value just as in the i32
//! fills). Valid-lane `H` values are therefore bit-identical to the scalar
//! fill; only masked lanes and boundary slots for masked cells carry a
//! different (equally ultra-negative) encoding, and nothing downstream
//! observes those.

use crate::block::{
    block_diags, BlockCells, BlockCells16, BlockCellsT, BlockCtx, Boundary, BoundaryT, BLOCK_DIAGS,
};
use crate::{BLOCK, MAX_BLOCK, MAX_BLOCK_DIAGS, NEG_INF};

/// Sentinel for "minus infinity" in the 16-bit tier: `i16::MIN / 2`, the
/// same factor-two headroom [`NEG_INF`] keeps in i32 space. Saturating
/// arithmetic may pin sentinel-derived values anywhere in
/// `[i16::MIN, NEG_INF16]`; the i16 exactness gate keeps every real value
/// (and every real value minus one penalty) strictly above that band.
pub const NEG_INF16: i16 = i16::MIN / 2;

/// Exact `i32 → i16` entry conversion for the 16-bit tier: saturating
/// narrowing (the scalar twin of `_mm_packs_epi32`). Real values are
/// unchanged (the gate bounds them well inside i16), `-∞`-class values
/// saturate into the sentinel band.
#[inline]
pub(crate) fn to16(v: i32) -> i16 {
    v.clamp(i32::from(i16::MIN), i32::from(i16::MAX)) as i16
}

/// Per-diagonal substitution lanes for a matrix score model: entry
/// `[d][l] = S(R[l], Q[d-l])` for every in-wavefront lane (`l ≤ d < l+B`),
/// zero elsewhere (those lanes are masked off downstream). The vector
/// kernels load one row per diagonal in place of the fixed-model
/// compare/blend sequence.
///
/// When the block context carries a [`crate::QueryProfile`] built for this
/// matrix and query, rows come from its precomputed `S(c, Q[j])` tables
/// (contiguous reads, no two-level gather); otherwise they fall back to
/// direct matrix lookups. Both paths produce identical lanes: profile tail
/// slots score the pad residue exactly as `unpack_block`'s pad-clamped
/// `qcodes` do.
#[inline]
fn matrix_sub_lanes<const B: usize>(
    ctx: &BlockCtx<'_>,
    m: &'static crate::scoring::SubstMatrix,
    j0: i64,
    rcodes: &[u8; B],
    qcodes: &[u8; B],
) -> [[i16; B]; MAX_BLOCK_DIAGS] {
    let mut out = [[0i16; B]; MAX_BLOCK_DIAGS];
    match ctx.profile {
        Some(p) if p.covers(m, ctx.m as usize) => {
            debug_assert!(j0 >= 0 && j0 < ctx.m, "block starts inside the query");
            for (l, &rc) in rcodes.iter().enumerate() {
                let row = &p.row(rc)[j0 as usize..j0 as usize + B];
                for (k, &s) in row.iter().enumerate() {
                    out[l + k][l] = s;
                }
            }
        }
        _ => {
            for (l, &rc) in rcodes.iter().enumerate() {
                for (k, &qc) in qcodes.iter().enumerate() {
                    out[l + k][l] = m.score(rc, qc) as i16;
                }
            }
        }
    }
    out
}

/// Reinterpret a reference between two monomorphizations that the caller
/// has proven (via a `B == const` guard) to be the *same* type. The size
/// and alignment asserts turn any misuse into a loud panic instead of UB;
/// for a correctly guarded call they compile away.
#[inline(always)]
#[allow(dead_code)] // only the x86-64 dispatchers need it
fn geom_cast<Src, Dst>(x: &Src) -> &Dst {
    assert_eq!(std::mem::size_of::<Src>(), std::mem::size_of::<Dst>());
    assert_eq!(std::mem::align_of::<Src>(), std::mem::align_of::<Dst>());
    // SAFETY: size/align asserted above, and every call site sits under a
    // geometry guard making Src and Dst the same monomorphization.
    unsafe { &*(x as *const Src).cast::<Dst>() }
}

/// Mutable twin of [`geom_cast`].
#[inline(always)]
#[allow(dead_code)]
fn geom_cast_mut<Src, Dst>(x: &mut Src) -> &mut Dst {
    assert_eq!(std::mem::size_of::<Src>(), std::mem::size_of::<Dst>());
    assert_eq!(std::mem::align_of::<Src>(), std::mem::align_of::<Dst>());
    // SAFETY: as in `geom_cast`.
    unsafe { &mut *(x as *mut Src).cast::<Dst>() }
}

/// Whether the AVX2 backend will be used on this machine.
pub fn avx2_active() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether the SSE4.1 tier (the 16-bit kernel and the `phminposuw` tracker
/// fold need nothing newer) is available on this machine.
pub fn sse41_active() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("sse4.1")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether the AVX-512 backend will be used on this machine. The kernels
/// need `avx512bw` (16-bit ops at 512/256-bit width) plus `avx512vl` (mask
/// registers on 256-bit vectors); the AVX2 check rides along so an
/// `Avx512`-resolved backend may always fall through to the AVX2 kernels
/// where 512-bit width buys nothing (the B=8 geometry).
pub fn avx512_active() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx512bw")
            && std::arch::is_x86_feature_detected!("avx512vl")
            && std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Which wavefront implementation the dispatcher will run. Resolved once
/// per task (stored in [`BlockCtx`]) so the per-block hot path pays no
/// repeated feature-detection load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WavefrontBackend {
    /// x86-64 with AVX-512BW/VL: the B=16 i16 fill runs with mask-register
    /// edge handling and fused dual-diagonal zmm stores, the B=16 i32 fill
    /// packs all 16 lanes into one zmm, and the tracker folds the 16-lane
    /// argmax with a four-quarter `phminposuw` merge. The B=8 geometry
    /// reuses the AVX2 kernels (its vectors are already full).
    Avx512,
    /// x86-64 with AVX2: one 8×i32 AVX2 vector per block diagonal in the
    /// i32 tier, 8×i16 SSE vectors in the B=8 i16 tier, and one full
    /// 16×i16 AVX2 vector per diagonal in the B=16 i16 tier.
    Avx2,
    /// x86-64 with SSE4.1 but not AVX2: the B=8 i16 tier still runs its
    /// vector kernel (it needs nothing wider than 128-bit ops); the i32
    /// tier and the B=16 geometry run the portable wavefront.
    Sse41,
    /// Fixed-lane portable wavefront for both tiers.
    Portable,
}

impl WavefrontBackend {
    /// Stable lower-case name (bench rows, stats output).
    pub fn name(self) -> &'static str {
        match self {
            WavefrontBackend::Avx512 => "avx512",
            WavefrontBackend::Avx2 => "avx2",
            WavefrontBackend::Sse41 => "sse41",
            WavefrontBackend::Portable => "portable",
        }
    }

    /// Position in the capability chain `Portable < Sse41 < Avx2 < Avx512`
    /// (a forced choice is clamped to the machine's detected rank).
    fn rank(self) -> u8 {
        match self {
            WavefrontBackend::Portable => 0,
            WavefrontBackend::Sse41 => 1,
            WavefrontBackend::Avx2 => 2,
            WavefrontBackend::Avx512 => 3,
        }
    }
}

/// A requested backend: `Auto` runs the best detected implementation; a
/// named backend caps the dispatch chain at that level. Parsed from
/// `AGATHA_BACKEND` / `--backend` and installed process-wide with
/// [`set_backend_choice`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendChoice {
    /// Best detected backend (the default).
    #[default]
    Auto,
    /// Dispatch as if this were the best backend the machine supports
    /// (requests above the detected capability degrade to the detected
    /// backend — forcing `avx512` on an AVX2 machine runs AVX2).
    Fixed(WavefrontBackend),
}

impl BackendChoice {
    /// Parse a backend name as accepted by `AGATHA_BACKEND` / `--backend`.
    pub fn parse(name: &str) -> Result<BackendChoice, String> {
        match name.trim().to_ascii_lowercase().as_str() {
            "auto" => Ok(BackendChoice::Auto),
            "avx512" => Ok(BackendChoice::Fixed(WavefrontBackend::Avx512)),
            "avx2" => Ok(BackendChoice::Fixed(WavefrontBackend::Avx2)),
            "sse41" => Ok(BackendChoice::Fixed(WavefrontBackend::Sse41)),
            "portable" => Ok(BackendChoice::Fixed(WavefrontBackend::Portable)),
            other => Err(format!(
                "invalid backend '{other}': expected auto, avx512, avx2, sse41 or portable"
            )),
        }
    }

    /// Stable lower-case name (round-trips through [`BackendChoice::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            BackendChoice::Auto => "auto",
            BackendChoice::Fixed(b) => b.name(),
        }
    }
}

/// Process-wide backend choice, encoded for the atomic: 0 = Auto, else
/// `rank + 1` of the forced backend. A plain atomic (not a `OnceLock`) so
/// benches and the backend-sweep tests can flip backends between runs in
/// one process; resolution stays per task (hoisted into [`BlockCtx`] /
/// [`crate::diag::DiagTracker`]), so a flip never splits one task's blocks
/// across backends.
static BACKEND_CHOICE: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);

/// Install the process-wide backend choice (see [`BackendChoice`]).
pub fn set_backend_choice(choice: BackendChoice) {
    let enc = match choice {
        BackendChoice::Auto => 0,
        BackendChoice::Fixed(b) => b.rank() + 1,
    };
    BACKEND_CHOICE.store(enc, std::sync::atomic::Ordering::Relaxed);
}

/// The currently installed process-wide backend choice.
pub fn backend_choice() -> BackendChoice {
    match BACKEND_CHOICE.load(std::sync::atomic::Ordering::Relaxed) {
        0 => BackendChoice::Auto,
        1 => BackendChoice::Fixed(WavefrontBackend::Portable),
        2 => BackendChoice::Fixed(WavefrontBackend::Sse41),
        3 => BackendChoice::Fixed(WavefrontBackend::Avx2),
        _ => BackendChoice::Fixed(WavefrontBackend::Avx512),
    }
}

/// Serializes tests that flip the process-wide [`BackendChoice`] against
/// tests whose *assertions* observe [`backend()`] (e.g. the geometry
/// policy test in `block.rs`). Result-only comparisons don't need it —
/// every backend is bit-identical by contract.
#[cfg(test)]
pub(crate) fn backend_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    // A forced-backend test that panics mid-flip poisons the lock; the
    // state it guards is restored by the panicking test's unwind path or
    // irrelevant to the next holder, so keep going.
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The best backend this machine supports (runtime CPU detection, cached
/// by `std`), ignoring any forced choice.
pub fn detected_backend() -> WavefrontBackend {
    if avx512_active() {
        WavefrontBackend::Avx512
    } else if avx2_active() {
        WavefrontBackend::Avx2
    } else if sse41_active() {
        WavefrontBackend::Sse41
    } else {
        WavefrontBackend::Portable
    }
}

/// Resolve the backend for this machine: the detected capability, capped
/// by the process-wide [`BackendChoice`] (call once per task, not per
/// block). Forcing never *raises* the level — a request the CPU cannot
/// honour clamps to the detected backend, so dispatch stays sound.
pub fn backend() -> WavefrontBackend {
    let detected = detected_backend();
    match backend_choice() {
        BackendChoice::Auto => detected,
        BackendChoice::Fixed(forced) => {
            if forced.rank() <= detected.rank() {
                forced
            } else {
                detected
            }
        }
    }
}

/// Every backend this machine can actually run, best first — the sweep
/// domain for forced-backend tests, the CLI's `--verbose` stats, and the
/// bench's per-backend rows. Always ends with `Portable`.
pub fn supported_backends() -> Vec<WavefrontBackend> {
    let detected = detected_backend();
    [
        WavefrontBackend::Avx512,
        WavefrontBackend::Avx2,
        WavefrontBackend::Sse41,
        WavefrontBackend::Portable,
    ]
    .into_iter()
    .filter(|b| b.rank() <= detected.rank())
    .collect()
}

/// Wavefront fill (drop-in replacement for [`crate::block::fill_scalar`]),
/// dispatching on the pre-resolved backend in `ctx` and the geometry `B`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fill_wavefront<const B: usize>(
    ctx: &BlockCtx<'_>,
    i0: i64,
    j0: i64,
    rcodes: &[u8; B],
    qcodes: &[u8; B],
    corner: i32,
    west_h: &mut BoundaryT<B>,
    west_e: &mut BoundaryT<B>,
    north_h: &mut BoundaryT<B>,
    north_f: &mut BoundaryT<B>,
    cells: &mut BlockCellsT<i32, B>,
) {
    #[cfg(target_arch = "x86_64")]
    {
        if B == BLOCK
            && matches!(ctx.wavefront_backend, WavefrontBackend::Avx2 | WavefrontBackend::Avx512)
        {
            // SAFETY: `backend()` only reports Avx2/Avx512 after a runtime
            // AVX2 check (`avx512_active` includes it: at B=8 the AVX2
            // kernel's 8×i32 vector is already full, so AVX-512 reuses it);
            // the `B == BLOCK` guard makes every `geom_cast` an identity.
            unsafe {
                return avx2::fill(
                    ctx,
                    i0,
                    j0,
                    geom_cast(rcodes),
                    geom_cast(qcodes),
                    corner,
                    geom_cast_mut(west_h),
                    geom_cast_mut(west_e),
                    geom_cast_mut(north_h),
                    geom_cast_mut(north_f),
                    geom_cast_mut(cells),
                );
            }
        }
        if B == MAX_BLOCK && ctx.wavefront_backend == WavefrontBackend::Avx512 {
            // SAFETY: AVX-512F/BW/VL verified at runtime by `backend()`;
            // `B == MAX_BLOCK` makes every `geom_cast` an identity.
            unsafe {
                return avx512_i32w::fill(
                    ctx,
                    i0,
                    j0,
                    geom_cast(rcodes),
                    geom_cast(qcodes),
                    corner,
                    geom_cast_mut(west_h),
                    geom_cast_mut(west_e),
                    geom_cast_mut(north_h),
                    geom_cast_mut(north_f),
                    geom_cast_mut(cells),
                );
            }
        }
    }
    // B=16 i32 runs portable below AVX-512 by design: AVX2 i32 vectors are
    // full at 8 lanes, so only a 16×i32 zmm has room for the wide geometry
    // (the adaptive policy picks B=16 for the i16 tier; the i32 zmm fill
    // serves forced-B16 runs and per-task i16→i32 demotions inside them).
    fill_portable(ctx, i0, j0, rcodes, qcodes, corner, west_h, west_e, north_h, north_f, cells)
}

/// Per-diagonal valid-lane bitmask (`0` when empty), plus the inclusive
/// bounds for the mask vector build.
#[inline]
fn lane_mask(ctx: &BlockCtx<'_>, i0: i64, j0: i64, d: usize) -> u16 {
    match ctx.lane_range(i0, j0, d) {
        None => 0,
        Some((lo, hi)) => (((1u32) << (hi + 1)) - (1 << lo)) as u16,
    }
}

/// Structural lane bitmask of block diagonal `d` at block side `b` (lanes
/// inside the `b×b` shape regardless of band/table).
#[inline]
const fn struct_mask(b: usize, d: usize) -> u16 {
    let lo = if d >= b { d - (b - 1) } else { 0 };
    let hi = if d < b { d } else { b - 1 };
    (((1u32 << (hi + 1)) - (1 << lo)) & 0xFFFF) as u16
}

/// Portable fixed-lane wavefront (also the semantic reference for the AVX2
/// backend). Straight-line per-lane arithmetic over `[i32; B]` rows.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fill_portable<const B: usize>(
    ctx: &BlockCtx<'_>,
    i0: i64,
    j0: i64,
    rcodes: &[u8; B],
    qcodes: &[u8; B],
    corner: i32,
    west_h: &mut BoundaryT<B>,
    west_e: &mut BoundaryT<B>,
    north_h: &mut BoundaryT<B>,
    north_f: &mut BoundaryT<B>,
    cells: &mut BlockCellsT<i32, B>,
) {
    let sc = ctx.scoring;
    let oe = sc.gap_open + sc.gap_extend;
    let ext = sc.gap_extend;
    let interior = ctx.block_interior(i0, j0);

    // Boundary inputs are consumed across several diagonals while the same
    // arrays double as outputs; snapshot them first.
    let wh_in = *west_h;
    let we_in = *west_e;
    let nh_in = *north_h;
    let nf_in = *north_f;

    // State of diagonals d-1 ("prev") and d-2 ("prev2"). `h_prev` lane 0 is
    // pre-seeded with the north boundary of row 0 ("H_{-1}").
    let mut h_prev = [NEG_INF; B];
    let mut e_prev = [NEG_INF; B];
    let mut f_prev = [NEG_INF; B];
    let mut h_prev2 = [NEG_INF; B];
    h_prev[0] = nh_in[0];
    f_prev[0] = nf_in[0];

    for d in 0..block_diags(B) {
        // Boundary injections for lane 0 (only meaningful while lane 0 is
        // inside the block shape, i.e. d < B).
        let bh = if d < B { wh_in[d] } else { NEG_INF };
        let be = if d < B { we_in[d] } else { NEG_INF };
        let bd = if d == 0 {
            corner
        } else if d <= B {
            wh_in[d - 1]
        } else {
            NEG_INF
        };

        let mask = if interior { struct_mask(B, d) } else { lane_mask(ctx, i0, j0, d) };

        let mut h_cur = [NEG_INF; B];
        let mut e_cur = [NEG_INF; B];
        let mut f_cur = [NEG_INF; B];
        for l in 0..B {
            let up_h = if l == 0 { bh } else { h_prev[l - 1] };
            let up_e = if l == 0 { be } else { e_prev[l - 1] };
            let dg = if l == 0 { bd } else { h_prev2[l - 1] };
            let left_h = h_prev[l];
            let left_f = f_prev[l];
            let e = (up_h - oe).max(up_e - ext);
            let f = (left_h - oe).max(left_f - ext);
            // Out-of-shape lanes get a zero substitution score; their values
            // are masked to -∞ below and never feed an in-shape lane.
            let sub =
                if l <= d && d - l < B { sc.substitution(rcodes[l], qcodes[d - l]) } else { 0 };
            let h = e.max(f).max(dg.wrapping_add(sub));
            let valid = mask & (1 << l) != 0;
            h_cur[l] = if valid { h } else { NEG_INF };
            e_cur[l] = if valid { e } else { NEG_INF };
            f_cur[l] = if valid { f } else { NEG_INF };
        }

        cells.h[d] = h_cur;
        cells.mask[d] = mask;

        // Boundary outputs: lane B-1 of diagonal B-1+k is the block's last
        // row (the west output for column k); lane l of diagonal l+B-1 is
        // the block's last column (the north output for row l).
        if d >= B - 1 {
            let k = d - (B - 1);
            west_h[k] = h_cur[B - 1];
            west_e[k] = e_cur[B - 1];
            north_h[k] = h_cur[k];
            north_f[k] = f_cur[k];
        }

        // Pre-seed the north boundary of row d+1 into the out-of-shape lane
        // d+1 so the next diagonals read it as left/diag with no patching.
        if d + 1 < B {
            h_cur[d + 1] = nh_in[d + 1];
            f_cur[d + 1] = nf_in[d + 1];
        }

        h_prev2 = h_prev;
        h_prev = h_cur;
        e_prev = e_cur;
        f_prev = f_cur;
    }
}

/// 16-bit-tier wavefront fill (the narrow twin of [`fill_wavefront`]),
/// staging into a `BlockCellsT<i16, B>` buffer. Dispatches on the
/// pre-resolved backend in `ctx` and the geometry `B`; all backends are
/// bit-identical to each other and — on valid lanes, under
/// [`BlockCtx::i16_exact`] — to the scalar fill.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fill_wavefront_i16<const B: usize>(
    ctx: &BlockCtx<'_>,
    i0: i64,
    j0: i64,
    rcodes: &[u8; B],
    qcodes: &[u8; B],
    corner: i32,
    west_h: &mut BoundaryT<B>,
    west_e: &mut BoundaryT<B>,
    north_h: &mut BoundaryT<B>,
    north_f: &mut BoundaryT<B>,
    cells: &mut BlockCellsT<i16, B>,
) {
    #[cfg(target_arch = "x86_64")]
    {
        if B == BLOCK && ctx.wavefront_backend != WavefrontBackend::Portable {
            // SAFETY: `backend()` only reports a vector variant after a
            // runtime CPU check, the B=8 kernel needs nothing newer than
            // SSE4.1 (AVX2 implies it; the Avx2 wrapper exists purely so
            // the same body recompiles with VEX encodings on AVX2-or-wider
            // machines — AVX-512 hosts take the same wrapper, as the 8×i16
            // vector leaves 512-bit width nothing to fuse), and the
            // `B == BLOCK` guard makes every `geom_cast` an identity.
            unsafe {
                if ctx.wavefront_backend != WavefrontBackend::Sse41 {
                    sse41_i16::fill_avx2(
                        ctx,
                        i0,
                        j0,
                        geom_cast(rcodes),
                        geom_cast(qcodes),
                        corner,
                        geom_cast_mut(west_h),
                        geom_cast_mut(west_e),
                        geom_cast_mut(north_h),
                        geom_cast_mut(north_f),
                        geom_cast_mut(cells),
                    );
                } else {
                    sse41_i16::fill_sse41(
                        ctx,
                        i0,
                        j0,
                        geom_cast(rcodes),
                        geom_cast(qcodes),
                        corner,
                        geom_cast_mut(west_h),
                        geom_cast_mut(west_e),
                        geom_cast_mut(north_h),
                        geom_cast_mut(north_f),
                        geom_cast_mut(cells),
                    );
                }
            }
            debug_overflow_sentinel(cells);
            return;
        }
        if B == MAX_BLOCK && ctx.wavefront_backend == WavefrontBackend::Avx512 {
            // SAFETY: AVX-512BW/VL verified at runtime; `B == MAX_BLOCK`
            // guard makes every `geom_cast` an identity.
            unsafe {
                avx512_i16w::fill(
                    ctx,
                    i0,
                    j0,
                    geom_cast(rcodes),
                    geom_cast(qcodes),
                    corner,
                    geom_cast_mut(west_h),
                    geom_cast_mut(west_e),
                    geom_cast_mut(north_h),
                    geom_cast_mut(north_f),
                    geom_cast_mut(cells),
                );
            }
            debug_overflow_sentinel(cells);
            return;
        }
        if B == MAX_BLOCK && ctx.wavefront_backend == WavefrontBackend::Avx2 {
            // SAFETY: AVX2 verified at runtime; `B == MAX_BLOCK` guard makes
            // every `geom_cast` an identity.
            unsafe {
                avx2_i16w::fill(
                    ctx,
                    i0,
                    j0,
                    geom_cast(rcodes),
                    geom_cast(qcodes),
                    corner,
                    geom_cast_mut(west_h),
                    geom_cast_mut(west_e),
                    geom_cast_mut(north_h),
                    geom_cast_mut(north_f),
                    geom_cast_mut(cells),
                );
            }
            debug_overflow_sentinel(cells);
            return;
        }
    }
    fill_portable_i16(ctx, i0, j0, rcodes, qcodes, corner, west_h, west_e, north_h, north_f, cells);
    debug_overflow_sentinel(cells);
}

/// Per-block overflow sentinel (debug builds): a valid lane pinned at
/// `i16::MAX` means a real DP value positively saturated — impossible when
/// the `i16_exact` gate admitted the task at this geometry, so tripping
/// this indicates a broken gate or dispatch. Negative saturation is by
/// design (sentinel class) and harmless.
#[inline]
fn debug_overflow_sentinel<const B: usize>(cells: &BlockCellsT<i16, B>) {
    if cfg!(debug_assertions) {
        for d in 0..block_diags(B) {
            for l in 0..B {
                debug_assert!(
                    cells.mask[d] & (1 << l) == 0 || cells.h[d][l] != i16::MAX,
                    "i16 overflow sentinel: valid cell saturated at block ({},{}) \
                     diag {d} lane {l} — the i16_exact gate must demote such tasks",
                    cells.i0(),
                    cells.j0(),
                );
            }
        }
    }
}

/// Portable 16-bit wavefront (also the semantic reference for the vector
/// i16 backends at both geometries). Mirrors [`fill_portable`] lane for
/// lane with saturating i16 arithmetic and [`NEG_INF16`] masking.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fill_portable_i16<const B: usize>(
    ctx: &BlockCtx<'_>,
    i0: i64,
    j0: i64,
    rcodes: &[u8; B],
    qcodes: &[u8; B],
    corner: i32,
    west_h: &mut BoundaryT<B>,
    west_e: &mut BoundaryT<B>,
    north_h: &mut BoundaryT<B>,
    north_f: &mut BoundaryT<B>,
    cells: &mut BlockCellsT<i16, B>,
) {
    let sc = ctx.scoring;
    let oe = to16(sc.gap_open + sc.gap_extend);
    let ext = to16(sc.gap_extend);
    let interior = ctx.block_interior(i0, j0);

    // Entry conversion of the i32 boundary carries (exact on real values).
    let wh_in = west_h.map(to16);
    let we_in = west_e.map(to16);
    let nh_in = north_h.map(to16);
    let nf_in = north_f.map(to16);
    let corner16 = to16(corner);

    let mut h_prev = [NEG_INF16; B];
    let mut e_prev = [NEG_INF16; B];
    let mut f_prev = [NEG_INF16; B];
    let mut h_prev2 = [NEG_INF16; B];
    h_prev[0] = nh_in[0];
    f_prev[0] = nf_in[0];

    for d in 0..block_diags(B) {
        let bh = if d < B { wh_in[d] } else { NEG_INF16 };
        let be = if d < B { we_in[d] } else { NEG_INF16 };
        let bd = if d == 0 {
            corner16
        } else if d <= B {
            wh_in[d - 1]
        } else {
            NEG_INF16
        };

        let mask = if interior { struct_mask(B, d) } else { lane_mask(ctx, i0, j0, d) };

        let mut h_cur = [NEG_INF16; B];
        let mut e_cur = [NEG_INF16; B];
        let mut f_cur = [NEG_INF16; B];
        for l in 0..B {
            let up_h = if l == 0 { bh } else { h_prev[l - 1] };
            let up_e = if l == 0 { be } else { e_prev[l - 1] };
            let dg = if l == 0 { bd } else { h_prev2[l - 1] };
            let left_h = h_prev[l];
            let left_f = f_prev[l];
            let e = up_h.saturating_sub(oe).max(up_e.saturating_sub(ext));
            let f = left_h.saturating_sub(oe).max(left_f.saturating_sub(ext));
            let sub = if l <= d && d - l < B {
                to16(sc.substitution(rcodes[l], qcodes[d - l]))
            } else {
                0
            };
            let h = e.max(f).max(dg.saturating_add(sub));
            let valid = mask & (1 << l) != 0;
            h_cur[l] = if valid { h } else { NEG_INF16 };
            e_cur[l] = if valid { e } else { NEG_INF16 };
            f_cur[l] = if valid { f } else { NEG_INF16 };
        }

        cells.h[d] = h_cur;
        cells.mask[d] = mask;

        if d >= B - 1 {
            let k = d - (B - 1);
            west_h[k] = i32::from(h_cur[B - 1]);
            west_e[k] = i32::from(e_cur[B - 1]);
            north_h[k] = i32::from(h_cur[k]);
            north_f[k] = i32::from(f_cur[k]);
        }

        if d + 1 < B {
            h_cur[d + 1] = nh_in[d + 1];
            f_cur[d + 1] = nf_in[d + 1];
        }

        h_prev2 = h_prev;
        h_prev = h_cur;
        e_prev = e_cur;
        f_prev = f_cur;
    }
}

/// Lane-mask vector of block diagonal `d` with every in-shape lane set —
/// the vector form of [`struct_mask`], precomputed so interior blocks load
/// their mask instead of rebuilding it per diagonal.
const fn struct_mask_lanes<const B: usize>(d: usize) -> [i16; B] {
    let mut out = [0i16; B];
    let mut l = 0;
    while l < B {
        if struct_mask(B, d) & (1u16 << l) != 0 {
            out[l] = -1;
        }
        l += 1;
    }
    out
}

/// All 15 structural lane-mask vectors of the default geometry,
/// diagonal-indexed.
static STRUCT_MASK_LANES: [[i16; BLOCK]; BLOCK_DIAGS] = {
    let mut out = [[0i16; BLOCK]; BLOCK_DIAGS];
    let mut d = 0;
    while d < BLOCK_DIAGS {
        out[d] = struct_mask_lanes::<BLOCK>(d);
        d += 1;
    }
    out
};

/// Single-lane selector vectors (`lane l == d+1`) of the default geometry,
/// used to pre-seed the north boundary of the next row into the
/// out-of-shape lane.
static SEED_MASK_LANES: [[i16; BLOCK]; BLOCK] = {
    let mut out = [[0i16; BLOCK]; BLOCK];
    let mut d = 0;
    while d < BLOCK {
        if d + 1 < BLOCK {
            out[d][d + 1] = -1;
        }
        d += 1;
    }
    out
};

/// All 31 structural lane-mask vectors of the wide (16×16) geometry.
static STRUCT_MASK_LANES_W: [[i16; MAX_BLOCK]; MAX_BLOCK_DIAGS] = {
    let mut out = [[0i16; MAX_BLOCK]; MAX_BLOCK_DIAGS];
    let mut d = 0;
    while d < MAX_BLOCK_DIAGS {
        out[d] = struct_mask_lanes::<MAX_BLOCK>(d);
        d += 1;
    }
    out
};

/// Single-lane selector vectors of the wide geometry (see
/// [`SEED_MASK_LANES`]).
static SEED_MASK_LANES_W: [[i16; MAX_BLOCK]; MAX_BLOCK] = {
    let mut out = [[0i16; MAX_BLOCK]; MAX_BLOCK];
    let mut d = 0;
    while d < MAX_BLOCK {
        if d + 1 < MAX_BLOCK {
            out[d][d + 1] = -1;
        }
        d += 1;
    }
    out
};

#[cfg(target_arch = "x86_64")]
mod sse41_i16 {
    use super::*;
    #[allow(clippy::wildcard_imports)]
    use std::arch::x86_64::*;

    /// Shift i16 lanes up by one (lane `l` ← lane `l-1`), injecting lane 7
    /// of `boundary` at lane 0. One `palignr` — the short loop-carried
    /// dependency that makes this tier faster than the i32 wavefront's
    /// permute+blend shift.
    #[inline(always)]
    unsafe fn shift_up(v: __m128i, boundary: __m128i) -> __m128i {
        _mm_alignr_epi8(v, boundary, 14)
    }

    /// Saturating-narrow one i32 boundary array to 8×i16 (exact on real
    /// values under the i16 gate; `-∞`-class values collapse into the
    /// sentinel band).
    #[inline(always)]
    unsafe fn pack_boundary(src: &[i32; BLOCK]) -> [i16; BLOCK] {
        let lo = _mm_loadu_si128(src.as_ptr().cast::<__m128i>());
        let hi = _mm_loadu_si128(src.as_ptr().add(4).cast::<__m128i>());
        let mut out = [0i16; BLOCK];
        _mm_storeu_si128(out.as_mut_ptr().cast::<__m128i>(), _mm_packs_epi32(lo, hi));
        out
    }

    #[inline(always)]
    unsafe fn store8(slot: &mut [i16; BLOCK], v: __m128i) {
        _mm_storeu_si128(slot.as_mut_ptr().cast::<__m128i>(), v);
    }

    #[inline(always)]
    unsafe fn load8(slot: &[i16; BLOCK]) -> __m128i {
        _mm_loadu_si128(slot.as_ptr().cast::<__m128i>())
    }

    /// [`fill`] compiled with SSE4.1 codegen — the minimum feature level
    /// the kernel needs, serving pre-AVX2 x86-64 at full vector speed.
    ///
    /// # Safety
    /// Requires SSE4.1 (checked by the caller).
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "sse4.1")]
    pub(super) unsafe fn fill_sse41(
        ctx: &BlockCtx<'_>,
        i0: i64,
        j0: i64,
        rcodes: &[u8; BLOCK],
        qcodes: &[u8; BLOCK],
        corner: i32,
        west_h: &mut Boundary,
        west_e: &mut Boundary,
        north_h: &mut Boundary,
        north_f: &mut Boundary,
        cells: &mut BlockCells16,
    ) {
        fill(ctx, i0, j0, rcodes, qcodes, corner, west_h, west_e, north_h, north_f, cells);
    }

    /// [`fill`] compiled with AVX2 codegen: same 128-bit algorithm, but the
    /// VEX 3-operand encodings save the register-move traffic the legacy
    /// SSE destructive forms pay (measurably faster on AVX2 hosts).
    ///
    /// # Safety
    /// Requires AVX2 (checked by the caller).
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn fill_avx2(
        ctx: &BlockCtx<'_>,
        i0: i64,
        j0: i64,
        rcodes: &[u8; BLOCK],
        qcodes: &[u8; BLOCK],
        corner: i32,
        west_h: &mut Boundary,
        west_e: &mut Boundary,
        north_h: &mut Boundary,
        north_f: &mut Boundary,
        cells: &mut BlockCells16,
    ) {
        fill(ctx, i0, j0, rcodes, qcodes, corner, west_h, west_e, north_h, north_f, cells);
    }

    /// 16-bit wavefront fill body (every intrinsic is SSE4.1 or older).
    /// Same algorithm as [`super::fill_portable_i16`], one 8×i16 vector per
    /// diagonal. `inline(always)` with no `target_feature` of its own so it
    /// is recompiled inside each feature wrapper above — never codegenned
    /// standalone.
    ///
    /// Boundary *outputs* are extracted after the diagonal loop (the loop
    /// stages them in `e_tmp`/`f_tmp` rows) so the hot loop never reloads
    /// data it just stored — scalar reads straight after a vector store
    /// cost a store-forward round trip per diagonal.
    ///
    /// # Safety
    /// Requires SSE4.1 (guaranteed by both wrappers).
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    unsafe fn fill(
        ctx: &BlockCtx<'_>,
        i0: i64,
        j0: i64,
        rcodes: &[u8; BLOCK],
        qcodes: &[u8; BLOCK],
        corner: i32,
        west_h: &mut Boundary,
        west_e: &mut Boundary,
        north_h: &mut Boundary,
        north_f: &mut Boundary,
        cells: &mut BlockCells16,
    ) {
        let sc = ctx.scoring;
        let oe = _mm_set1_epi16(to16(sc.gap_open + sc.gap_extend));
        let ext = _mm_set1_epi16(to16(sc.gap_extend));
        // Fixed-model compare/blend constants (zeroed and unused under a
        // matrix model, where per-diagonal rows replace them).
        let (f_match, f_mis, f_amb) = sc.model.fixed_params().unwrap_or((0, 0, 0));
        let v_match = _mm_set1_epi16(to16(f_match));
        let v_mis = _mm_set1_epi16(to16(-f_mis));
        let v_amb = _mm_set1_epi16(to16(-f_amb));
        let v_acgt_max = _mm_set1_epi16(i16::from(crate::Base::N.code()) - 1);
        let sub_rows =
            sc.model.matrix().map(|m| matrix_sub_lanes::<BLOCK>(ctx, m, j0, rcodes, qcodes));
        let neg_inf = _mm_set1_epi16(NEG_INF16);
        let lanes = _mm_setr_epi16(0, 1, 2, 3, 4, 5, 6, 7);
        let interior = ctx.block_interior(i0, j0);

        let wh_in = pack_boundary(west_h);
        let we_in = pack_boundary(west_e);
        let nh_in = pack_boundary(north_h);
        let nf_in = pack_boundary(north_f);

        // Padded per-diagonal boundary injections (branch-free loop body):
        // lane-0 up/diag inputs for every diagonal, NEG_INF16 past the
        // block shape.
        let mut bh_pad = [NEG_INF16; BLOCK_DIAGS];
        let mut be_pad = [NEG_INF16; BLOCK_DIAGS];
        let mut bd_pad = [NEG_INF16; BLOCK_DIAGS];
        let mut q_pad = [0i16; BLOCK_DIAGS];
        bd_pad[0] = to16(corner);
        for d in 0..BLOCK {
            bh_pad[d] = wh_in[d];
            be_pad[d] = we_in[d];
            bd_pad[d + 1] = wh_in[d];
            q_pad[d] = i16::from(qcodes[d]);
        }

        let r_vec = _mm_setr_epi16(
            i16::from(rcodes[0]),
            i16::from(rcodes[1]),
            i16::from(rcodes[2]),
            i16::from(rcodes[3]),
            i16::from(rcodes[4]),
            i16::from(rcodes[5]),
            i16::from(rcodes[6]),
            i16::from(rcodes[7]),
        );
        let mut q_vec = _mm_setzero_si128();

        // "H_{-1}" / "F_{-1}": north seed of row 0 in lane 0.
        let mut h_prev = shift_up(neg_inf, _mm_set1_epi16(nh_in[0]));
        let mut f_prev = shift_up(neg_inf, _mm_set1_epi16(nf_in[0]));
        let mut e_prev = neg_inf;
        let mut h_prev2 = neg_inf;

        let mut e_tmp = [[0i16; BLOCK]; BLOCK];
        let mut f_tmp = [[0i16; BLOCK]; BLOCK];

        for d in 0..BLOCK_DIAGS {
            q_vec = shift_up(q_vec, _mm_set1_epi16(q_pad[d]));

            let up_h = shift_up(h_prev, _mm_set1_epi16(bh_pad[d]));
            let up_e = shift_up(e_prev, _mm_set1_epi16(be_pad[d]));
            let dg = shift_up(h_prev2, _mm_set1_epi16(bd_pad[d]));

            // Substitution: matrix rows when present, else the fixed-model
            // blend (ambiguous beats match beats mismatch).
            let sub = match &sub_rows {
                Some(rows) => load8(&rows[d]),
                None => {
                    let eq = _mm_cmpeq_epi16(r_vec, q_vec);
                    let amb = _mm_cmpgt_epi16(_mm_max_epi16(r_vec, q_vec), v_acgt_max);
                    _mm_blendv_epi8(_mm_blendv_epi8(v_mis, v_match, eq), v_amb, amb)
                }
            };

            let e = _mm_max_epi16(_mm_subs_epi16(up_h, oe), _mm_subs_epi16(up_e, ext));
            let f = _mm_max_epi16(_mm_subs_epi16(h_prev, oe), _mm_subs_epi16(f_prev, ext));
            let h = _mm_max_epi16(e, _mm_max_epi16(f, _mm_adds_epi16(dg, sub)));

            let (mask_bits, m) = if interior {
                (struct_mask(BLOCK, d), load8(&STRUCT_MASK_LANES[d]))
            } else {
                let bits = lane_mask(ctx, i0, j0, d);
                let v = if bits == 0 {
                    _mm_setzero_si128()
                } else {
                    // B=8 masks occupy the low 8 bits of the u16, so
                    // leading_zeros ≥ 8 and hi = 15 - lz ≤ 7.
                    let lo = bits.trailing_zeros() as i16;
                    let hi = 15 - bits.leading_zeros() as i16;
                    let ge = _mm_cmpgt_epi16(lanes, _mm_set1_epi16(lo - 1));
                    let le = _mm_cmpgt_epi16(_mm_set1_epi16(hi + 1), lanes);
                    _mm_and_si128(ge, le)
                };
                (bits, v)
            };
            let mut h_m = _mm_blendv_epi8(neg_inf, h, m);
            let e_m = _mm_blendv_epi8(neg_inf, e, m);
            let mut f_m = _mm_blendv_epi8(neg_inf, f, m);

            store8(&mut cells.h[d], h_m);
            cells.mask[d] = mask_bits;

            if d >= BLOCK - 1 {
                let k = d - (BLOCK - 1);
                store8(&mut e_tmp[k], e_m);
                store8(&mut f_tmp[k], f_m);
            }

            if d + 1 < BLOCK {
                // Pre-seed the next row's north boundary into lane d+1.
                let seed = load8(&SEED_MASK_LANES[d]);
                h_m = _mm_blendv_epi8(h_m, _mm_set1_epi16(nh_in[d + 1]), seed);
                f_m = _mm_blendv_epi8(f_m, _mm_set1_epi16(nf_in[d + 1]), seed);
            }

            h_prev2 = h_prev;
            h_prev = h_m;
            e_prev = e_m;
            f_prev = f_m;
        }

        // Boundary outputs, extracted once the stores have drained: lane 7
        // of diagonal 7+k is the block's last row (west output for column
        // k); lane k of diagonal k+7 is the last column (north output for
        // row k).
        for k in 0..BLOCK {
            west_h[k] = i32::from(cells.h[k + BLOCK - 1][BLOCK - 1]);
            west_e[k] = i32::from(e_tmp[k][BLOCK - 1]);
            north_h[k] = i32::from(cells.h[k + BLOCK - 1][k]);
            north_f[k] = i32::from(f_tmp[k][k]);
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::*;
    #[allow(clippy::wildcard_imports)]
    use std::arch::x86_64::*;

    /// Shift lanes up by one (lane `l` ← lane `l-1`), injecting `boundary`
    /// at lane 0.
    #[inline(always)]
    unsafe fn shift_up(v: __m256i, boundary: i32) -> __m256i {
        let idx = _mm256_setr_epi32(0, 0, 1, 2, 3, 4, 5, 6);
        let s = _mm256_permutevar8x32_epi32(v, idx);
        _mm256_blend_epi32(s, _mm256_set1_epi32(boundary), 0x01)
    }

    /// Lane-range mask vector: all-ones in lanes `lo..=hi`.
    #[inline(always)]
    unsafe fn range_mask(lanes: __m256i, lo: i32, hi: i32) -> __m256i {
        let ge = _mm256_cmpgt_epi32(lanes, _mm256_set1_epi32(lo - 1));
        let le = _mm256_cmpgt_epi32(_mm256_set1_epi32(hi + 1), lanes);
        _mm256_and_si256(ge, le)
    }

    #[inline(always)]
    unsafe fn store8(slot: &mut [i32; BLOCK], v: __m256i) {
        _mm256_storeu_si256(slot.as_mut_ptr().cast::<__m256i>(), v);
    }

    /// AVX2 wavefront fill. Same algorithm as [`super::fill_portable`], one
    /// 8×i32 vector per diagonal.
    ///
    /// # Safety
    /// Requires AVX2 (checked by the caller).
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn fill(
        ctx: &BlockCtx<'_>,
        i0: i64,
        j0: i64,
        rcodes: &[u8; BLOCK],
        qcodes: &[u8; BLOCK],
        corner: i32,
        west_h: &mut Boundary,
        west_e: &mut Boundary,
        north_h: &mut Boundary,
        north_f: &mut Boundary,
        cells: &mut BlockCells,
    ) {
        let sc = ctx.scoring;
        let oe = _mm256_set1_epi32(sc.gap_open + sc.gap_extend);
        let ext = _mm256_set1_epi32(sc.gap_extend);
        // Fixed-model compare/blend constants (zeroed and unused under a
        // matrix model, where per-diagonal rows replace them).
        let (f_match, f_mis, f_amb) = sc.model.fixed_params().unwrap_or((0, 0, 0));
        let v_match = _mm256_set1_epi32(f_match);
        let v_mis = _mm256_set1_epi32(-f_mis);
        let v_amb = _mm256_set1_epi32(-f_amb);
        let v_acgt_max = _mm256_set1_epi32(i32::from(crate::Base::N.code()) - 1);
        let sub_rows =
            sc.model.matrix().map(|m| matrix_sub_lanes::<BLOCK>(ctx, m, j0, rcodes, qcodes));
        let neg_inf = _mm256_set1_epi32(NEG_INF);
        let lanes = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
        let interior = ctx.block_interior(i0, j0);

        let wh_in = *west_h;
        let we_in = *west_e;
        let nh_in = *north_h;
        let nf_in = *north_f;

        // Reference codes are fixed per lane; the query codes slide one lane
        // per diagonal (lane l of diagonal d reads qcodes[d-l]).
        let r_vec = _mm256_setr_epi32(
            i32::from(rcodes[0]),
            i32::from(rcodes[1]),
            i32::from(rcodes[2]),
            i32::from(rcodes[3]),
            i32::from(rcodes[4]),
            i32::from(rcodes[5]),
            i32::from(rcodes[6]),
            i32::from(rcodes[7]),
        );
        let mut q_vec = _mm256_setzero_si256();

        let mut h_prev = shift_up(neg_inf, nh_in[0]); // "H_{-1}": north seed in lane 0
        let mut f_prev = shift_up(neg_inf, nf_in[0]);
        let mut e_prev = neg_inf;
        let mut h_prev2 = neg_inf;

        let mut e_tmp = [0i32; BLOCK];
        let mut f_tmp = [0i32; BLOCK];

        for d in 0..BLOCK_DIAGS {
            let bh = if d < BLOCK { wh_in[d] } else { NEG_INF };
            let be = if d < BLOCK { we_in[d] } else { NEG_INF };
            let bd = if d == 0 {
                corner
            } else if d <= BLOCK {
                wh_in[d - 1]
            } else {
                NEG_INF
            };

            q_vec = shift_up(q_vec, if d < BLOCK { i32::from(qcodes[d]) } else { 0 });

            let up_h = shift_up(h_prev, bh);
            let up_e = shift_up(e_prev, be);
            let dg = shift_up(h_prev2, bd);

            // Substitution: matrix rows (sign-extended i16 → i32) when
            // present, else the fixed-model blend (ambiguous beats match
            // beats mismatch).
            let sub = match &sub_rows {
                Some(rows) => {
                    _mm256_cvtepi16_epi32(_mm_loadu_si128(rows[d].as_ptr().cast::<__m128i>()))
                }
                None => {
                    let eq = _mm256_cmpeq_epi32(r_vec, q_vec);
                    let amb = _mm256_cmpgt_epi32(_mm256_max_epi32(r_vec, q_vec), v_acgt_max);
                    _mm256_blendv_epi8(_mm256_blendv_epi8(v_mis, v_match, eq), v_amb, amb)
                }
            };

            let e = _mm256_max_epi32(_mm256_sub_epi32(up_h, oe), _mm256_sub_epi32(up_e, ext));
            let f = _mm256_max_epi32(_mm256_sub_epi32(h_prev, oe), _mm256_sub_epi32(f_prev, ext));
            let h = _mm256_max_epi32(e, _mm256_max_epi32(f, _mm256_add_epi32(dg, sub)));

            let mask_bits =
                if interior { struct_mask(BLOCK, d) } else { lane_mask(ctx, i0, j0, d) };
            let m = if mask_bits == 0 {
                _mm256_setzero_si256()
            } else {
                // B=8 masks occupy the low 8 bits, so hi = 15 - lz ≤ 7.
                let lo = mask_bits.trailing_zeros() as i32;
                let hi = 15 - mask_bits.leading_zeros() as i32;
                range_mask(lanes, lo, hi)
            };
            let mut h_m = _mm256_blendv_epi8(neg_inf, h, m);
            let e_m = _mm256_blendv_epi8(neg_inf, e, m);
            let mut f_m = _mm256_blendv_epi8(neg_inf, f, m);

            store8(&mut cells.h[d], h_m);
            cells.mask[d] = mask_bits;

            if d >= BLOCK - 1 {
                store8(&mut e_tmp, e_m);
                store8(&mut f_tmp, f_m);
                let k = d - (BLOCK - 1);
                west_h[k] = cells.h[d][BLOCK - 1];
                west_e[k] = e_tmp[BLOCK - 1];
                north_h[k] = cells.h[d][k];
                north_f[k] = f_tmp[k];
            }

            if d + 1 < BLOCK {
                // Pre-seed the next row's north boundary into lane d+1.
                let seed = _mm256_cmpeq_epi32(lanes, _mm256_set1_epi32(d as i32 + 1));
                h_m = _mm256_blendv_epi8(h_m, _mm256_set1_epi32(nh_in[d + 1]), seed);
                f_m = _mm256_blendv_epi8(f_m, _mm256_set1_epi32(nf_in[d + 1]), seed);
            }

            h_prev2 = h_prev;
            h_prev = h_m;
            e_prev = e_m;
            f_prev = f_m;
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2_i16w {
    //! The wide-geometry (16×16) i16 kernel: one full 16×i16 AVX2 vector
    //! per block anti-diagonal — the geometry that motivates the whole
    //! parameterization. Same algorithm as [`super::fill_portable_i16`] at
    //! `B = 16`; the only genuinely new machinery is the cross-128-bit-lane
    //! `shift_up` and the qword-interleave fix in `pack_boundary` (AVX2's
    //! in-lane instruction heritage makes both non-obvious, hence the
    //! layout notes on each).

    use super::*;
    use crate::block::BlockCells16Wide;
    #[allow(clippy::wildcard_imports)]
    use std::arch::x86_64::*;

    const B: usize = MAX_BLOCK;
    const DIAGS: usize = 2 * B - 1;

    /// Shift 16 i16 lanes up by one across the 128-bit halves, injecting
    /// `boundary` at lane 0.
    ///
    /// `_mm256_alignr_epi8` concatenates per 128-bit half, so the carry
    /// operand must hold — in byte position 14..16 of each half — the value
    /// entering that half's lane 0: `boundary` for the low half, `v`'s
    /// lane 7 for the high half. `_mm256_permute2x128_si256(set1(boundary),
    /// v, 0x20)` builds exactly that: `[set1(boundary)_lo | v_lo]`.
    #[inline(always)]
    unsafe fn shift_up(v: __m256i, boundary: i16) -> __m256i {
        let carry = _mm256_permute2x128_si256(_mm256_set1_epi16(boundary), v, 0x20);
        _mm256_alignr_epi8(v, carry, 14)
    }

    /// Saturating-narrow one 16×i32 boundary array to 16×i16.
    ///
    /// `_mm256_packs_epi32(a, b)` interleaves per 128-bit half (qwords come
    /// out as `a0..3, b0..3, a4..7, b4..7`); the `permute4x64` with
    /// selector `0b11011000` (qword order 0,2,1,3) restores source order.
    #[inline(always)]
    unsafe fn pack_boundary(src: &[i32; B]) -> [i16; B] {
        let a = _mm256_loadu_si256(src.as_ptr().cast::<__m256i>());
        let b = _mm256_loadu_si256(src.as_ptr().add(8).cast::<__m256i>());
        let packed = _mm256_packs_epi32(a, b);
        let fixed = _mm256_permute4x64_epi64(packed, 0b11011000);
        let mut out = [0i16; B];
        _mm256_storeu_si256(out.as_mut_ptr().cast::<__m256i>(), fixed);
        out
    }

    #[inline(always)]
    unsafe fn store16(slot: &mut [i16; B], v: __m256i) {
        _mm256_storeu_si256(slot.as_mut_ptr().cast::<__m256i>(), v);
    }

    #[inline(always)]
    unsafe fn load16(slot: &[i16; B]) -> __m256i {
        _mm256_loadu_si256(slot.as_ptr().cast::<__m256i>())
    }

    /// Wide 16-bit wavefront fill: one 16×i16 AVX2 vector per diagonal,
    /// 31 diagonals per block. Boundary outputs are staged in
    /// `e_tmp`/`f_tmp` and extracted after the loop, exactly as in the
    /// B=8 kernel (see [`super::sse41_i16::fill_sse41`]).
    ///
    /// # Safety
    /// Requires AVX2 (checked by the caller).
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn fill(
        ctx: &BlockCtx<'_>,
        i0: i64,
        j0: i64,
        rcodes: &[u8; B],
        qcodes: &[u8; B],
        corner: i32,
        west_h: &mut [i32; B],
        west_e: &mut [i32; B],
        north_h: &mut [i32; B],
        north_f: &mut [i32; B],
        cells: &mut BlockCells16Wide,
    ) {
        let sc = ctx.scoring;
        let oe = _mm256_set1_epi16(to16(sc.gap_open + sc.gap_extend));
        let ext = _mm256_set1_epi16(to16(sc.gap_extend));
        // Fixed-model compare/blend constants (zeroed and unused under a
        // matrix model, where per-diagonal rows replace them).
        let (f_match, f_mis, f_amb) = sc.model.fixed_params().unwrap_or((0, 0, 0));
        let v_match = _mm256_set1_epi16(to16(f_match));
        let v_mis = _mm256_set1_epi16(to16(-f_mis));
        let v_amb = _mm256_set1_epi16(to16(-f_amb));
        let v_acgt_max = _mm256_set1_epi16(i16::from(crate::Base::N.code()) - 1);
        let sub_rows = sc.model.matrix().map(|m| matrix_sub_lanes::<B>(ctx, m, j0, rcodes, qcodes));
        let neg_inf = _mm256_set1_epi16(NEG_INF16);
        let lanes = _mm256_setr_epi16(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
        let interior = ctx.block_interior(i0, j0);

        let wh_in = pack_boundary(west_h);
        let we_in = pack_boundary(west_e);
        let nh_in = pack_boundary(north_h);
        let nf_in = pack_boundary(north_f);

        // Padded per-diagonal boundary injections (branch-free loop body).
        let mut bh_pad = [NEG_INF16; DIAGS];
        let mut be_pad = [NEG_INF16; DIAGS];
        let mut bd_pad = [NEG_INF16; DIAGS];
        let mut q_pad = [0i16; DIAGS];
        bd_pad[0] = to16(corner);
        for d in 0..B {
            bh_pad[d] = wh_in[d];
            be_pad[d] = we_in[d];
            bd_pad[d + 1] = wh_in[d];
            q_pad[d] = i16::from(qcodes[d]);
        }

        let mut r16 = [0i16; B];
        for (slot, &c) in r16.iter_mut().zip(rcodes.iter()) {
            *slot = i16::from(c);
        }
        let r_vec = load16(&r16);
        let mut q_vec = _mm256_setzero_si256();

        // "H_{-1}" / "F_{-1}": north seed of row 0 in lane 0.
        let mut h_prev = shift_up(neg_inf, nh_in[0]);
        let mut f_prev = shift_up(neg_inf, nf_in[0]);
        let mut e_prev = neg_inf;
        let mut h_prev2 = neg_inf;

        let mut e_tmp = [[0i16; B]; B];
        let mut f_tmp = [[0i16; B]; B];

        for d in 0..DIAGS {
            q_vec = shift_up(q_vec, q_pad[d]);

            let up_h = shift_up(h_prev, bh_pad[d]);
            let up_e = shift_up(e_prev, be_pad[d]);
            let dg = shift_up(h_prev2, bd_pad[d]);

            // Substitution: matrix rows when present, else the fixed-model
            // blend (ambiguous beats match beats mismatch).
            let sub = match &sub_rows {
                Some(rows) => load16(&rows[d]),
                None => {
                    let eq = _mm256_cmpeq_epi16(r_vec, q_vec);
                    let amb = _mm256_cmpgt_epi16(_mm256_max_epi16(r_vec, q_vec), v_acgt_max);
                    _mm256_blendv_epi8(_mm256_blendv_epi8(v_mis, v_match, eq), v_amb, amb)
                }
            };

            let e = _mm256_max_epi16(_mm256_subs_epi16(up_h, oe), _mm256_subs_epi16(up_e, ext));
            let f = _mm256_max_epi16(_mm256_subs_epi16(h_prev, oe), _mm256_subs_epi16(f_prev, ext));
            let h = _mm256_max_epi16(e, _mm256_max_epi16(f, _mm256_adds_epi16(dg, sub)));

            let (mask_bits, m) = if interior {
                (struct_mask(B, d), load16(&STRUCT_MASK_LANES_W[d]))
            } else {
                let bits = lane_mask(ctx, i0, j0, d);
                let v = if bits == 0 {
                    _mm256_setzero_si256()
                } else {
                    let lo = bits.trailing_zeros() as i16;
                    let hi = 15 - bits.leading_zeros() as i16;
                    let ge = _mm256_cmpgt_epi16(lanes, _mm256_set1_epi16(lo - 1));
                    let le = _mm256_cmpgt_epi16(_mm256_set1_epi16(hi + 1), lanes);
                    _mm256_and_si256(ge, le)
                };
                (bits, v)
            };
            let mut h_m = _mm256_blendv_epi8(neg_inf, h, m);
            let e_m = _mm256_blendv_epi8(neg_inf, e, m);
            let mut f_m = _mm256_blendv_epi8(neg_inf, f, m);

            store16(&mut cells.h[d], h_m);
            cells.mask[d] = mask_bits;

            if d >= B - 1 {
                let k = d - (B - 1);
                store16(&mut e_tmp[k], e_m);
                store16(&mut f_tmp[k], f_m);
            }

            if d + 1 < B {
                // Pre-seed the next row's north boundary into lane d+1.
                let seed = load16(&SEED_MASK_LANES_W[d]);
                h_m = _mm256_blendv_epi8(h_m, _mm256_set1_epi16(nh_in[d + 1]), seed);
                f_m = _mm256_blendv_epi8(f_m, _mm256_set1_epi16(nf_in[d + 1]), seed);
            }

            h_prev2 = h_prev;
            h_prev = h_m;
            e_prev = e_m;
            f_prev = f_m;
        }

        // Boundary outputs, extracted once the stores have drained.
        for k in 0..B {
            west_h[k] = i32::from(cells.h[k + B - 1][B - 1]);
            west_e[k] = i32::from(e_tmp[k][B - 1]);
            north_h[k] = i32::from(cells.h[k + B - 1][k]);
            north_f[k] = i32::from(f_tmp[k][k]);
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx512_i16w {
    //! The wide-geometry (16×16) i16 kernel at the AVX-512BW/VL level.
    //! Same per-diagonal algorithm as [`super::avx2_i16w`] (one 16×i16 ymm
    //! per block anti-diagonal), restated with the machinery AVX-512 adds:
    //!
    //! * every lane select runs off a `__mmask16` **mask register** — the
    //!   staged `mask_bits` word *is* the mask operand, so the blend-based
    //!   edge handling (per-diagonal mask-vector builds, `blendv` chains,
    //!   the static mask LUT loads) disappears entirely;
    //! * on *interior* blocks only the stored H row is masked at all:
    //!   the block shape grows one lane per diagonal, so out-of-shape
    //!   lanes never shift into valid ones and E/F/H state propagates
    //!   unmasked (edge blocks keep full masking — band clipping is
    //!   semantic there);
    //! * the diagonal input `dg` is last row's up-shifted H verbatim
    //!   (`bd_pad[d] == bh_pad[d-1]`), carried across iterations — one
    //!   whole shift per diagonal gone from the loop-carried critical
    //!   path;
    //! * the north-boundary pre-seed is a single masked broadcast
    //!   (`vpbroadcastw` with a one-hot mask) instead of LUT-load + blend;
    //! * boundary narrowing is one `vpmovsdw` (`_mm512_cvtsepi32_epi16`)
    //!   per array instead of the packs + qword-permute fix;
    //! * consecutive block diagonals are **fused pairwise into zmm
    //!   stores**: the `d-1`/`d-2` loop-carried dependency forces the
    //!   arithmetic to stay sequential per diagonal, but two finished
    //!   16-lane rows are exactly one zmm, so the staging-buffer traffic
    //!   runs at 512-bit width (one store per diagonal pair).

    use super::*;
    use crate::block::BlockCells16Wide;
    #[allow(clippy::wildcard_imports)]
    use std::arch::x86_64::*;

    const B: usize = MAX_BLOCK;
    const DIAGS: usize = 2 * B - 1;

    /// Shift 16 i16 lanes up by one (lane `l` ← lane `l-1`), injecting
    /// `boundary` at lane 0.
    ///
    /// Same `permute2x128` + `alignr` sequence as [`super::avx2_i16w`]
    /// (see the layout note there), *not* a cross-lane `vpermw`: the shift
    /// sits on the wavefront's loop-carried dependency chain, and the
    /// boundary broadcast folds into the carry build off-chain here,
    /// whereas `vpermw` + a lane-0-masked broadcast stacks both on the
    /// chain (measurably slower per diagonal on Skylake-X/Ice Lake).
    #[inline(always)]
    unsafe fn shift_up(v: __m256i, boundary: i16) -> __m256i {
        let carry = _mm256_permute2x128_si256(_mm256_set1_epi16(boundary), v, 0x20);
        _mm256_alignr_epi8(v, carry, 14)
    }

    /// Saturating-narrow one 16×i32 boundary array to 16×i16: a single
    /// `vpmovsdw` from the full zmm (the AVX2 kernel needs packs plus a
    /// qword permute to undo the in-lane interleave).
    #[inline(always)]
    unsafe fn pack_boundary(src: &[i32; B]) -> [i16; B] {
        let v = _mm512_loadu_epi32(src.as_ptr());
        let mut out = [0i16; B];
        _mm256_storeu_si256(out.as_mut_ptr().cast::<__m256i>(), _mm512_cvtsepi32_epi16(v));
        out
    }

    #[inline(always)]
    unsafe fn store16(slot: &mut [i16; B], v: __m256i) {
        _mm256_storeu_si256(slot.as_mut_ptr().cast::<__m256i>(), v);
    }

    #[inline(always)]
    unsafe fn load16(slot: &[i16; B]) -> __m256i {
        _mm256_loadu_si256(slot.as_ptr().cast::<__m256i>())
    }

    /// Fused dual-diagonal store: rows `d` and `d+1` of the staging buffer
    /// are contiguous 16×i16 rows, i.e. exactly one zmm.
    #[inline(always)]
    unsafe fn store_pair(cells: &mut BlockCells16Wide, d: usize, lo: __m256i, hi: __m256i) {
        debug_assert!(d + 1 < MAX_BLOCK_DIAGS);
        let z = _mm512_inserti64x4::<1>(_mm512_castsi256_si512(lo), hi);
        _mm512_storeu_epi16(cells.h[d].as_mut_ptr(), z);
    }

    /// All `2B−1` valid-lane masks of one *edge* block in two 16-diagonal
    /// vector steps — bit-identical to calling [`super::lane_mask`] per
    /// diagonal, which costs ~31 branchy scalar range computations and is
    /// the dominant per-diagonal overhead of edge blocks (under a short
    /// band a large fraction of blocks are edge blocks, so this shows up
    /// at task level, not just in corner cases).
    ///
    /// [`BlockCtx::lane_range`]'s four lower and four upper bounds are all
    /// affine in `d`, so 16 diagonals evaluate as one `max`/`min` ladder
    /// over an i32 lane vector. The i64 geometry terms are pre-clamped to
    /// `±64` scalars first: every term is only ever compared against the
    /// in-block range `[0, B−1]`, so any value beyond `±64` acts exactly
    /// like `±64` (still never/always binding), keeping the i32 lanes
    /// exact. Empty diagonals (`lo > hi`, including everything the clamps
    /// pushed out of range) zero their mask through the `nonempty`
    /// mask-register; `vpsllvd` yields 0 for any shift count ≥ 32, so the
    /// out-of-range `lo`/`hi` lanes cannot leak bits into live ones.
    ///
    /// `inline(always)` with no `target_feature` of its own so it compiles
    /// at the caller's AVX-512 feature level (same pattern as the tracker's
    /// shared fold).
    #[inline(always)]
    unsafe fn edge_masks(ctx: &BlockCtx<'_>, i0: i64, j0: i64) -> [u16; 32] {
        let off = i0 - j0;
        let mq = (ctx.m - 1 - j0).min(63) as i32;
        let ni = (ctx.n - 1 - i0).min(63) as i32;
        // `lo` band term: ceil((d − w − off) / 2) = (d + (1 − w − off)) >> 1.
        let t_lo = (1 - ctx.w - off).clamp(-64, 64) as i32;
        // `hi` band term: floor((d + w − off) / 2) = (d + (w − off)) >> 1.
        let t_hi = (ctx.w - off).clamp(-64, 64) as i32;
        let lanes = _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
        let one = _mm512_set1_epi32(1);
        let mut out = [0u16; 32];
        for chunk in 0..2usize {
            let d = _mm512_add_epi32(lanes, _mm512_set1_epi32(chunk as i32 * 16));
            let lo = _mm512_max_epi32(
                _mm512_max_epi32(
                    _mm512_setzero_si512(),
                    _mm512_sub_epi32(d, _mm512_set1_epi32(B as i32 - 1)),
                ),
                _mm512_max_epi32(
                    _mm512_sub_epi32(d, _mm512_set1_epi32(mq)),
                    _mm512_srai_epi32::<1>(_mm512_add_epi32(d, _mm512_set1_epi32(t_lo))),
                ),
            );
            let hi = _mm512_min_epi32(
                _mm512_min_epi32(_mm512_set1_epi32(B as i32 - 1), d),
                _mm512_min_epi32(
                    _mm512_set1_epi32(ni),
                    _mm512_srai_epi32::<1>(_mm512_add_epi32(d, _mm512_set1_epi32(t_hi))),
                ),
            );
            let nonempty = _mm512_cmple_epi32_mask(lo, hi);
            // ((1 << (hi+1)) − (1 << lo)) — the contiguous run lo..=hi.
            let bits = _mm512_maskz_sub_epi32(
                nonempty,
                _mm512_sllv_epi32(one, _mm512_add_epi32(hi, one)),
                _mm512_sllv_epi32(one, lo),
            );
            _mm256_storeu_si256(
                out.as_mut_ptr().add(chunk * 16).cast::<__m256i>(),
                _mm512_cvtepi32_epi16(bits),
            );
        }
        #[cfg(debug_assertions)]
        for (d, &m) in out.iter().enumerate().take(DIAGS) {
            debug_assert_eq!(
                m,
                lane_mask(ctx, i0, j0, d),
                "vector edge mask diverged at d = {d} (block {i0},{j0})"
            );
        }
        out
    }

    /// Wide 16-bit wavefront fill, AVX-512BW/VL edition: mask-register
    /// lane selects, one `vpermw` shift per input, and pairwise-fused zmm
    /// stores of finished diagonals. Bit-identical to
    /// [`super::avx2_i16w::fill`] / [`super::fill_portable_i16`] — the
    /// arithmetic is the same saturating i16 wavefront; only the lane
    /// bookkeeping changed instruction sets.
    ///
    /// # Safety
    /// Requires AVX-512BW and AVX-512VL (checked by the caller).
    #[allow(clippy::too_many_arguments)]
    // The tail diag_body! expansion rotates the wavefront state one last
    // time into assignments nothing reads.
    #[allow(unused_assignments)]
    #[target_feature(enable = "avx512bw,avx512vl")]
    pub(super) unsafe fn fill(
        ctx: &BlockCtx<'_>,
        i0: i64,
        j0: i64,
        rcodes: &[u8; B],
        qcodes: &[u8; B],
        corner: i32,
        west_h: &mut [i32; B],
        west_e: &mut [i32; B],
        north_h: &mut [i32; B],
        north_f: &mut [i32; B],
        cells: &mut BlockCells16Wide,
    ) {
        let sc = ctx.scoring;
        let oe = _mm256_set1_epi16(to16(sc.gap_open + sc.gap_extend));
        let ext = _mm256_set1_epi16(to16(sc.gap_extend));
        // Fixed-model compare/blend constants (zeroed and unused under a
        // matrix model, where per-diagonal rows replace them).
        let (f_match, f_mis, f_amb) = sc.model.fixed_params().unwrap_or((0, 0, 0));
        let v_match = _mm256_set1_epi16(to16(f_match));
        let v_mis = _mm256_set1_epi16(to16(-f_mis));
        let v_amb = _mm256_set1_epi16(to16(-f_amb));
        let v_acgt_max = _mm256_set1_epi16(i16::from(crate::Base::N.code()) - 1);
        let sub_rows = sc.model.matrix().map(|m| matrix_sub_lanes::<B>(ctx, m, j0, rcodes, qcodes));
        let neg_inf = _mm256_set1_epi16(NEG_INF16);
        let interior = ctx.block_interior(i0, j0);
        // Edge blocks get all their lane masks batch-computed up front (two
        // vector steps); interior masks are the compile-time struct shapes.
        let em: [u16; 32] = if interior { [0; 32] } else { edge_masks(ctx, i0, j0) };

        let wh_in = pack_boundary(west_h);
        let we_in = pack_boundary(west_e);
        let nh_in = pack_boundary(north_h);
        let nf_in = pack_boundary(north_f);

        // Padded per-diagonal boundary injections (branch-free loop body).
        // No `bd_pad`: the diagonal input is carried (see `dg_carry`), and
        // no `q_pad`: the query slides via `qrev` loads below.
        let mut bh_pad = [NEG_INF16; DIAGS];
        let mut be_pad = [NEG_INF16; DIAGS];
        bh_pad[..B].copy_from_slice(&wh_in);
        be_pad[..B].copy_from_slice(&we_in);

        let mut r16 = [0i16; B];
        for (slot, &c) in r16.iter_mut().zip(rcodes.iter()) {
            *slot = i16::from(c);
        }
        let r_vec = load16(&r16);

        // Sliding query codes without a shift: lane l of diagonal d reads
        // qcodes[d - l] — a 16-lane window *descending* in memory — so a
        // reversed, zero-padded copy turns the per-diagonal cross-lane
        // shift (two port-5 uops on the wavefront's critical path) into
        // one unaligned load: qrev[QREV_C - k] = qcodes[k], and diagonal
        // d's vector is the 16 lanes starting at qrev[QREV_C - d]. The
        // padding reads as code 0 exactly like the zeros the shift-based
        // scheme injects, so every lane — in-shape or not — is identical.
        const QREV_C: usize = 2 * B - 2;
        let mut qrev = [0i16; 3 * B - 1];
        for (j, &c) in qcodes.iter().enumerate() {
            qrev[QREV_C - j] = i16::from(c);
        }

        // "H_{-1}" / "F_{-1}": north seed of row 0 in lane 0.
        let mut h_prev = shift_up(neg_inf, nh_in[0]);
        let mut f_prev = shift_up(neg_inf, nf_in[0]);
        let mut e_prev = neg_inf;
        // The padded boundary scheme makes `bd_pad[d] == bh_pad[d - 1]`,
        // so row d's diagonal input is *exactly* last row's up-shifted H:
        // carrying `up_h` across iterations replaces one shift per
        // diagonal (the shifts sit on the loop-carried critical path, so
        // this is latency off every row, not just throughput). Seeded with
        // the corner shift for d = 0.
        let mut dg_carry = shift_up(neg_inf, to16(corner));

        let mut e_tmp = [[0i16; B]; B];
        let mut f_tmp = [[0i16; B]; B];

        // One diagonal's arithmetic + bookkeeping, *deferring the `cells.h`
        // store* so the pair loop below can fuse two finished rows into one
        // zmm store. Yields the masked (unseeded) H row; rotates the
        // wavefront state with the seeded copy.
        macro_rules! diag_body {
            ($d:expr) => {{
                let d: usize = $d;
                let q_vec = _mm256_loadu_si256(qrev.as_ptr().add(QREV_C - d).cast::<__m256i>());

                let up_h = shift_up(h_prev, bh_pad[d]);
                let up_e = shift_up(e_prev, be_pad[d]);
                let dg = dg_carry;
                dg_carry = up_h;

                // Substitution: matrix rows when present, else the
                // fixed-model select (ambiguous beats match beats
                // mismatch), on mask registers.
                let sub = match &sub_rows {
                    Some(rows) => load16(&rows[d]),
                    None => {
                        let eq = _mm256_cmpeq_epi16_mask(r_vec, q_vec);
                        let amb =
                            _mm256_cmpgt_epi16_mask(_mm256_max_epi16(r_vec, q_vec), v_acgt_max);
                        _mm256_mask_blend_epi16(
                            amb,
                            _mm256_mask_blend_epi16(eq, v_mis, v_match),
                            v_amb,
                        )
                    }
                };

                let e = _mm256_max_epi16(_mm256_subs_epi16(up_h, oe), _mm256_subs_epi16(up_e, ext));
                let f =
                    _mm256_max_epi16(_mm256_subs_epi16(h_prev, oe), _mm256_subs_epi16(f_prev, ext));
                let h = _mm256_max_epi16(e, _mm256_max_epi16(f, _mm256_adds_epi16(dg, sub)));

                // The staged mask word *is* the AVX-512 mask operand — no
                // vector mask build on either the interior or edge path.
                let mask_bits = if interior { struct_mask(B, d) } else { em[d] };
                cells.mask[d] = mask_bits;
                // Only the *stored* H row needs masking on interior blocks:
                // the shape grows exactly one lane per diagonal, so an
                // out-of-shape lane never shifts into a valid lane, and the
                // boundary stages are read only at in-shape lanes — E/F/H
                // state propagates unmasked. Edge blocks mask all three:
                // band/table clipping is semantic there (a clipped lane
                // must read as -inf from its in-band neighbour).
                let h_m = _mm256_mask_blend_epi16(mask_bits, neg_inf, h);
                let (e_s, h_s, mut f_s) = if interior {
                    (e, h, f)
                } else {
                    (
                        _mm256_mask_blend_epi16(mask_bits, neg_inf, e),
                        h_m,
                        _mm256_mask_blend_epi16(mask_bits, neg_inf, f),
                    )
                };

                if d >= B - 1 {
                    let k = d - (B - 1);
                    store16(&mut e_tmp[k], e_s);
                    store16(&mut f_tmp[k], f_s);
                }

                let mut h_seeded = h_s;
                if d + 1 < B {
                    // Pre-seed the next row's north boundary into lane d+1:
                    // one masked broadcast.
                    let one_hot = 1u16 << (d + 1);
                    h_seeded = _mm256_mask_set1_epi16(h_s, one_hot, nh_in[d + 1]);
                    f_s = _mm256_mask_set1_epi16(f_s, one_hot, nf_in[d + 1]);
                }

                h_prev = h_seeded;
                e_prev = e_s;
                f_prev = f_s;
                h_m
            }};
        }

        // Pairwise diagonal walk: 15 fused zmm stores + 1 tail ymm store
        // cover all 31 rows.
        let mut d = 0;
        while d + 1 < DIAGS {
            let row_a = diag_body!(d);
            let row_b = diag_body!(d + 1);
            store_pair(cells, d, row_a, row_b);
            d += 2;
        }
        let row_last = diag_body!(DIAGS - 1);
        store16(&mut cells.h[DIAGS - 1], row_last);

        // Boundary outputs, extracted once the stores have drained.
        for k in 0..B {
            west_h[k] = i32::from(cells.h[k + B - 1][B - 1]);
            west_e[k] = i32::from(e_tmp[k][B - 1]);
            north_h[k] = i32::from(cells.h[k + B - 1][k]);
            north_f[k] = i32::from(f_tmp[k][k]);
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx512_i32w {
    //! The wide-geometry (16×16) **i32** kernel: 16 × i32 = one full zmm,
    //! so AVX-512F gives the wide tile a full-width i32 fill that AVX2
    //! structurally cannot (its i32 vectors are full at 8 lanes). Serves
    //! tasks outside the i16 gate that run at B=16 — forced wide geometry,
    //! and per-task i16→i32 demotions inside a wide-geometry stream. Same
    //! algorithm as [`super::avx2::fill`] at twice the lane count, with
    //! mask-register lane selects throughout.

    use super::*;
    use crate::block::BlockCellsWide;
    #[allow(clippy::wildcard_imports)]
    use std::arch::x86_64::*;

    const B: usize = MAX_BLOCK;
    const DIAGS: usize = 2 * B - 1;

    /// Shift 16 i32 lanes up by one (lane `l` ← lane `l-1`), injecting
    /// `boundary` at lane 0: one `valignd` off a broadcast carry.
    #[inline(always)]
    unsafe fn shift_up(v: __m512i, boundary: i32) -> __m512i {
        _mm512_alignr_epi32::<15>(v, _mm512_set1_epi32(boundary))
    }

    #[inline(always)]
    unsafe fn store16(slot: &mut [i32; B], v: __m512i) {
        _mm512_storeu_epi32(slot.as_mut_ptr(), v);
    }

    #[inline(always)]
    unsafe fn load16(slot: &[i32; B]) -> __m512i {
        _mm512_loadu_epi32(slot.as_ptr())
    }

    /// Wide i32 wavefront fill: one 16×i32 zmm per diagonal, 31 diagonals
    /// per block. Bit-identical to [`super::fill_portable`] at the same
    /// geometry (same inputs, same integer ops, no reassociation).
    ///
    /// # Safety
    /// Requires AVX-512F (checked by the caller).
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn fill(
        ctx: &BlockCtx<'_>,
        i0: i64,
        j0: i64,
        rcodes: &[u8; B],
        qcodes: &[u8; B],
        corner: i32,
        west_h: &mut [i32; B],
        west_e: &mut [i32; B],
        north_h: &mut [i32; B],
        north_f: &mut [i32; B],
        cells: &mut BlockCellsWide,
    ) {
        let sc = ctx.scoring;
        let oe = _mm512_set1_epi32(sc.gap_open + sc.gap_extend);
        let ext = _mm512_set1_epi32(sc.gap_extend);
        // Fixed-model select constants (zeroed and unused under a matrix
        // model, where per-diagonal rows replace them).
        let (f_match, f_mis, f_amb) = sc.model.fixed_params().unwrap_or((0, 0, 0));
        let v_match = _mm512_set1_epi32(f_match);
        let v_mis = _mm512_set1_epi32(-f_mis);
        let v_amb = _mm512_set1_epi32(-f_amb);
        let v_acgt_max = _mm512_set1_epi32(i32::from(crate::Base::N.code()) - 1);
        let sub_rows = sc.model.matrix().map(|m| matrix_sub_lanes::<B>(ctx, m, j0, rcodes, qcodes));
        let neg_inf = _mm512_set1_epi32(NEG_INF);
        let interior = ctx.block_interior(i0, j0);

        let wh_in = *west_h;
        let we_in = *west_e;
        let nh_in = *north_h;
        let nf_in = *north_f;

        // Reference codes are fixed per lane; the query codes slide one
        // lane per diagonal (lane l of diagonal d reads qcodes[d-l]).
        let mut r32 = [0i32; B];
        for (slot, &c) in r32.iter_mut().zip(rcodes.iter()) {
            *slot = i32::from(c);
        }
        let r_vec = load16(&r32);
        let mut q_vec = _mm512_setzero_si512();

        let mut h_prev = shift_up(neg_inf, nh_in[0]); // "H_{-1}": north seed in lane 0
        let mut f_prev = shift_up(neg_inf, nf_in[0]);
        let mut e_prev = neg_inf;
        let mut h_prev2 = neg_inf;

        let mut e_tmp = [[0i32; B]; B];
        let mut f_tmp = [[0i32; B]; B];

        for d in 0..DIAGS {
            let bh = if d < B { wh_in[d] } else { NEG_INF };
            let be = if d < B { we_in[d] } else { NEG_INF };
            let bd = if d == 0 {
                corner
            } else if d <= B {
                wh_in[d - 1]
            } else {
                NEG_INF
            };

            q_vec = shift_up(q_vec, if d < B { i32::from(qcodes[d]) } else { 0 });

            let up_h = shift_up(h_prev, bh);
            let up_e = shift_up(e_prev, be);
            let dg = shift_up(h_prev2, bd);

            // Substitution: matrix rows (sign-extended i16 → i32) when
            // present, else the fixed-model select on mask registers
            // (ambiguous beats match beats mismatch).
            let sub = match &sub_rows {
                Some(rows) => {
                    _mm512_cvtepi16_epi32(_mm256_loadu_si256(rows[d].as_ptr().cast::<__m256i>()))
                }
                None => {
                    let eq = _mm512_cmpeq_epi32_mask(r_vec, q_vec);
                    let amb = _mm512_cmpgt_epi32_mask(_mm512_max_epi32(r_vec, q_vec), v_acgt_max);
                    _mm512_mask_blend_epi32(amb, _mm512_mask_blend_epi32(eq, v_mis, v_match), v_amb)
                }
            };

            let e = _mm512_max_epi32(_mm512_sub_epi32(up_h, oe), _mm512_sub_epi32(up_e, ext));
            let f = _mm512_max_epi32(_mm512_sub_epi32(h_prev, oe), _mm512_sub_epi32(f_prev, ext));
            let h = _mm512_max_epi32(e, _mm512_max_epi32(f, _mm512_add_epi32(dg, sub)));

            // The staged mask word is the mask operand, as in the i16
            // kernel.
            let mask_bits = if interior { struct_mask(B, d) } else { lane_mask(ctx, i0, j0, d) };
            let mut h_m = _mm512_mask_blend_epi32(mask_bits, neg_inf, h);
            let e_m = _mm512_mask_blend_epi32(mask_bits, neg_inf, e);
            let mut f_m = _mm512_mask_blend_epi32(mask_bits, neg_inf, f);

            store16(&mut cells.h[d], h_m);
            cells.mask[d] = mask_bits;

            if d >= B - 1 {
                let k = d - (B - 1);
                store16(&mut e_tmp[k], e_m);
                store16(&mut f_tmp[k], f_m);
            }

            if d + 1 < B {
                // Pre-seed the next row's north boundary into lane d+1:
                // one masked broadcast.
                let one_hot = 1u16 << (d + 1);
                h_m = _mm512_mask_set1_epi32(h_m, one_hot, nh_in[d + 1]);
                f_m = _mm512_mask_set1_epi32(f_m, one_hot, nf_in[d + 1]);
            }

            h_prev2 = h_prev;
            h_prev = h_m;
            e_prev = e_m;
            f_prev = f_m;
        }

        // Boundary outputs, extracted once the stores have drained.
        for k in 0..B {
            west_h[k] = cells.h[k + B - 1][B - 1];
            west_e[k] = e_tmp[k][B - 1];
            north_h[k] = cells.h[k + B - 1][k];
            north_f[k] = f_tmp[k][k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::fill_scalar;
    use crate::pack::PackedSeq;
    use crate::Scoring;

    /// Deterministic xorshift-ish stream for test inputs.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0 >> 16
        }
        fn code(&mut self) -> u8 {
            (self.next() % 5) as u8 // includes N
        }
        fn val(&mut self) -> i32 {
            match self.next() % 4 {
                0 => NEG_INF,
                _ => (self.next() % 2000) as i32 - 1000,
            }
        }
    }

    type Fill<const B: usize> = for<'a, 'b> fn(
        &'a BlockCtx<'b>,
        i64,
        i64,
        &'a [u8; B],
        &'a [u8; B],
        i32,
        &'a mut BoundaryT<B>,
        &'a mut BoundaryT<B>,
        &'a mut BoundaryT<B>,
        &'a mut BoundaryT<B>,
        &'a mut BlockCellsT<i32, B>,
    );

    type Fill16<const B: usize> = for<'a, 'b> fn(
        &'a BlockCtx<'b>,
        i64,
        i64,
        &'a [u8; B],
        &'a [u8; B],
        i32,
        &'a mut BoundaryT<B>,
        &'a mut BoundaryT<B>,
        &'a mut BoundaryT<B>,
        &'a mut BoundaryT<B>,
        &'a mut BlockCellsT<i16, B>,
    );

    /// Run one block through both fills and assert identical staging
    /// buffers (on structural lanes), masks, and boundary outputs.
    #[allow(clippy::too_many_arguments)]
    fn check_block<const B: usize>(
        ctx: &BlockCtx<'_>,
        i0: i64,
        j0: i64,
        rcodes: &[u8; B],
        qcodes: &[u8; B],
        corner: i32,
        west_h: BoundaryT<B>,
        west_e: BoundaryT<B>,
        north_h: BoundaryT<B>,
        north_f: BoundaryT<B>,
    ) {
        let mut cells_s = BlockCellsT::<i32, B>::new();
        let (mut wh_s, mut we_s, mut nh_s, mut nf_s) = (west_h, west_e, north_h, north_f);
        fill_scalar(
            ctx,
            i0,
            j0,
            rcodes,
            qcodes,
            corner,
            &mut wh_s,
            &mut we_s,
            &mut nh_s,
            &mut nf_s,
            &mut cells_s,
        );

        for (name, fill) in [
            ("portable", fill_portable::<B> as Fill<B>),
            ("dispatch", fill_wavefront::<B> as Fill<B>),
        ] {
            let mut cells_v = BlockCellsT::<i32, B>::new();
            let (mut wh_v, mut we_v, mut nh_v, mut nf_v) = (west_h, west_e, north_h, north_f);
            fill(
                ctx,
                i0,
                j0,
                rcodes,
                qcodes,
                corner,
                &mut wh_v,
                &mut we_v,
                &mut nh_v,
                &mut nf_v,
                &mut cells_v,
            );
            assert_eq!(cells_v.mask, cells_s.mask, "{name}: masks at ({i0},{j0})");
            for d in 0..block_diags(B) {
                let sm = struct_mask(B, d);
                for l in 0..B {
                    if sm & (1 << l) != 0 {
                        assert_eq!(
                            cells_v.h[d][l], cells_s.h[d][l],
                            "{name}: H mismatch at block ({i0},{j0}) diag {d} lane {l}"
                        );
                    }
                }
            }
            assert_eq!(wh_v, wh_s, "{name}: west H at ({i0},{j0})");
            assert_eq!(we_v, we_s, "{name}: west E at ({i0},{j0})");
            assert_eq!(nh_v, nh_s, "{name}: north H at ({i0},{j0})");
            assert_eq!(nf_v, nf_s, "{name}: north F at ({i0},{j0})");
        }

        // The 16-bit tier against the same scalar reference. Real values
        // must match bit for bit; `-∞`-class values (possible here because
        // the harness feeds arbitrary NEG_INF boundaries, unlike a real
        // task where in-band diag inputs are always real) may differ in
        // encoding but must stay in the sentinel band on both sides.
        if ctx.i16_exact {
            let same = |got16: i32, want32: i32, what: &str| {
                if want32 > i32::from(NEG_INF16) {
                    assert_eq!(got16, want32, "i16: {what} at ({i0},{j0})");
                } else {
                    assert!(got16 <= i32::from(NEG_INF16), "i16: {what} class at ({i0},{j0})");
                }
            };
            let mut runs = Vec::new();
            for (name, fill) in [
                ("portable16", fill_portable_i16::<B> as Fill16<B>),
                ("dispatch16", fill_wavefront_i16::<B> as Fill16<B>),
            ] {
                let mut cells_n = BlockCellsT::<i16, B>::new();
                let (mut wh_n, mut we_n, mut nh_n, mut nf_n) = (west_h, west_e, north_h, north_f);
                fill(
                    ctx,
                    i0,
                    j0,
                    rcodes,
                    qcodes,
                    corner,
                    &mut wh_n,
                    &mut we_n,
                    &mut nh_n,
                    &mut nf_n,
                    &mut cells_n,
                );
                assert_eq!(cells_n.mask, cells_s.mask, "{name}: masks at ({i0},{j0})");
                for d in 0..block_diags(B) {
                    for l in 0..B {
                        if cells_s.mask[d] & (1 << l) != 0 {
                            same(i32::from(cells_n.h[d][l]), cells_s.h[d][l], "H");
                        }
                    }
                }
                for k in 0..B {
                    same(wh_n[k], wh_s[k], "west H");
                    same(we_n[k], we_s[k], "west E");
                    same(nh_n[k], nh_s[k], "north H");
                    same(nf_n[k], nf_s[k], "north F");
                }
                runs.push((cells_n.h, wh_n, we_n, nh_n, nf_n));
            }
            // The two i16 backends must agree exactly, sentinel encodings
            // included (the portable fill is the vector backends' reference).
            assert_eq!(runs[0], runs[1], "i16 backends diverge at ({i0},{j0})");
        }
    }

    /// Sweep every block of several scorings/shapes at geometry `B`,
    /// feeding random codes and boundaries.
    fn random_blocks_sweep<const B: usize>(seed: u64) {
        let scorings = [
            Scoring::figure1(),
            Scoring::new(2, 4, 4, 2, Scoring::NO_ZDROP, 3),
            Scoring::new(1, 9, 0, 1, 40, 11),
            Scoring::new(5, 1, 7, 3, Scoring::NO_ZDROP, Scoring::NO_BAND),
        ];
        let mut rng = Rng(seed);
        for (si, sc) in scorings.iter().enumerate() {
            let (n, m) = (40 + si * 7, 33 + si * 5);
            let ctx = BlockCtx::with_block_dim(n, m, sc, B);
            assert!(ctx.simd_exact);
            for bi in 0..ctx.ref_blocks() {
                for bj in 0..ctx.query_blocks() {
                    let mut rcodes = [0u8; B];
                    let mut qcodes = [0u8; B];
                    let mut bounds = [[0i32; B]; 4];
                    for l in 0..B {
                        rcodes[l] = rng.code();
                        qcodes[l] = rng.code();
                        for b in &mut bounds {
                            b[l] = rng.val();
                        }
                    }
                    check_block(
                        &ctx,
                        bi * B as i64,
                        bj * B as i64,
                        &rcodes,
                        &qcodes,
                        rng.val(),
                        bounds[0],
                        bounds[1],
                        bounds[2],
                        bounds[3],
                    );
                }
            }
        }
    }

    #[test]
    fn wavefront_matches_scalar_on_random_blocks() {
        random_blocks_sweep::<BLOCK>(0x5EED);
    }

    #[test]
    fn wavefront_matches_scalar_on_random_blocks_wide() {
        random_blocks_sweep::<MAX_BLOCK>(0x51DE);
    }

    /// Sweep every block of a substitution-matrix scoring at geometry `B`:
    /// all tiers against the scalar fill, with the matrix path exercised
    /// both through direct lookups and through a prepared query profile
    /// (the two must be bit-identical by construction).
    fn matrix_blocks_sweep<const B: usize>(seed: u64) {
        use crate::profile::QueryProfile;
        use crate::scoring::BLOSUM62;

        let sc = Scoring::preset_blosum62();
        let mut rng = Rng(seed);
        let (n, m) = (53usize, 47usize);
        // A real packed query, so the profile rows and the unpacked block
        // codes describe the same residues.
        let qfull: Vec<u8> = (0..m).map(|_| (rng.next() % 21) as u8).collect();
        let q = PackedSeq::from_protein_codes(&qfull, &BLOSUM62);
        let mut prof = QueryProfile::new();
        prof.prepare(&q, &sc);
        for use_profile in [false, true] {
            let ctx =
                BlockCtx::with_block_dim(n, m, &sc, B).with_profile(use_profile.then_some(&prof));
            assert!(ctx.simd_exact && ctx.i16_exact, "blosum62 at {n}×{m} fits both gates");
            for bi in 0..ctx.ref_blocks() {
                for bj in 0..ctx.query_blocks() {
                    let (i0, j0) = (bi * B as i64, bj * B as i64);
                    let mut rcodes = [0u8; B];
                    let mut qb = [0u8; B];
                    q.unpack_block(j0 as usize, &mut qb);
                    let mut bounds = [[0i32; B]; 4];
                    for l in 0..B {
                        rcodes[l] = (rng.next() % 21) as u8;
                        for b in &mut bounds {
                            b[l] = rng.val();
                        }
                    }
                    check_block(
                        &ctx,
                        i0,
                        j0,
                        &rcodes,
                        &qb,
                        rng.val(),
                        bounds[0],
                        bounds[1],
                        bounds[2],
                        bounds[3],
                    );
                }
            }
        }
    }

    #[test]
    fn matrix_model_matches_scalar_on_random_blocks() {
        matrix_blocks_sweep::<BLOCK>(0xB105);
    }

    #[test]
    fn matrix_model_matches_scalar_on_random_blocks_wide() {
        matrix_blocks_sweep::<MAX_BLOCK>(0xB162);
    }

    /// One step of the block-grid protocol: compute the block at
    /// `(i0, j0)` (with whichever fill the harness is exercising) and feed
    /// the tracker. Boundary arrays follow the [`crate::block::compute_block`]
    /// in/out convention.
    type GridStep<'a, const B: usize> = &'a mut dyn FnMut(
        &BlockCtx<'_>,
        i64,
        i64,
        &[u8; B],
        &[u8; B],
        i32,
        &mut BoundaryT<B>,
        &mut BoundaryT<B>,
        &mut BoundaryT<B>,
        &mut BoundaryT<B>,
        &mut crate::diag::DiagTracker,
    );

    /// Drive the block grid end-to-end (the one copy of the grid-driving
    /// protocol shared by every fill-tier harness) and return the complete
    /// guided result.
    fn grid_run_with<const B: usize>(
        r: &PackedSeq,
        q: &PackedSeq,
        sc: &Scoring,
        step: GridStep<'_, B>,
    ) -> crate::result::GuidedResult {
        use crate::diag::DiagTracker;
        let ctx = BlockCtx::with_block_dim(r.len(), q.len(), sc, B);
        let mut tracker = DiagTracker::new(r.len(), q.len(), sc);
        let b = B as i64;
        let padded_n = (ctx.ref_blocks() * b) as usize;
        let mut row_h = vec![NEG_INF; padded_n];
        let mut row_f = vec![NEG_INF; padded_n];
        let (mut rb, mut qb) = ([0u8; B], [0u8; B]);
        'rows: for bj in 0..ctx.query_blocks() {
            let j0 = bj * b;
            let Some((lo, hi)) = ctx.row_block_range(bj) else { continue };
            q.unpack_block(j0 as usize, &mut qb);
            let (mut wh, mut we) = crate::block::west_init::<B>(&ctx, lo * b, j0);
            let mut corner = crate::block::corner_read(&ctx, lo * b, j0, &row_h);
            for bi in lo..=hi {
                let i0 = bi * b;
                r.unpack_block(i0 as usize, &mut rb);
                let (mut nh, mut nf) = crate::block::north_read::<B>(&ctx, i0, j0, &row_h, &row_f);
                let next_corner = nh[B - 1];
                step(
                    &ctx,
                    i0,
                    j0,
                    &rb,
                    &qb,
                    corner,
                    &mut wh,
                    &mut we,
                    &mut nh,
                    &mut nf,
                    &mut tracker,
                );
                row_h[i0 as usize..i0 as usize + B].copy_from_slice(&nh);
                row_f[i0 as usize..i0 as usize + B].copy_from_slice(&nf);
                corner = next_corner;
                if tracker.is_finished() {
                    break 'rows;
                }
            }
            if tracker.advance().is_some() {
                break;
            }
        }
        tracker.result()
    }

    /// [`grid_run_with`] using an explicit [`crate::block::FillMode`].
    fn grid_run<const B: usize>(
        r: &PackedSeq,
        q: &PackedSeq,
        sc: &Scoring,
        mode: crate::block::FillMode,
    ) -> crate::result::GuidedResult {
        let mut cells = BlockCellsT::<i32, B>::new();
        grid_run_with::<B>(r, q, sc, &mut |ctx, i0, j0, rb, qb, corner, wh, we, nh, nf, tracker| {
            crate::block::compute_block_mode(
                mode, ctx, i0, j0, rb, qb, corner, wh, we, nh, nf, &mut cells,
            );
            tracker.on_block(&cells);
        })
    }

    /// [`grid_run_with`] on the 16-bit tier:
    /// [`crate::block::compute_block_i16`] staging into a 16-bit buffer,
    /// folded by `on_block_i16`.
    fn grid_run_i16<const B: usize>(
        r: &PackedSeq,
        q: &PackedSeq,
        sc: &Scoring,
    ) -> crate::result::GuidedResult {
        assert!(
            BlockCtx::with_block_dim(r.len(), q.len(), sc, B).i16_exact,
            "grid_run_i16 callers must pick gate-admitted tasks"
        );
        let mut cells = BlockCellsT::<i16, B>::new();
        grid_run_with::<B>(r, q, sc, &mut |ctx, i0, j0, rb, qb, corner, wh, we, nh, nf, tracker| {
            crate::block::compute_block_i16(
                ctx, i0, j0, rb, qb, corner, wh, we, nh, nf, &mut cells,
            );
            tracker.on_block_i16(&cells);
        })
    }

    #[test]
    fn wavefront_matches_scalar_via_block_grid() {
        // End-to-end: drive block_grid_align manually with each fill tier
        // at each geometry and compare complete guided results.
        use crate::block::FillMode;
        use crate::guided::guided_align;

        let mut rng = Rng(0xA11E);
        for case in 0..12 {
            let len_r = 16 + (rng.next() % 120) as usize;
            let len_q = 16 + (rng.next() % 120) as usize;
            let rcodes: Vec<u8> = (0..len_r).map(|_| rng.code()).collect();
            let qcodes: Vec<u8> = (0..len_q).map(|_| rng.code()).collect();
            let (rp, qp) = (PackedSeq::from_codes(&rcodes), PackedSeq::from_codes(&qcodes));
            let sc = match case % 4 {
                0 => Scoring::new(2, 4, 4, 2, Scoring::NO_ZDROP, Scoring::NO_BAND),
                1 => Scoring::new(2, 4, 4, 2, 20, 9),
                2 => Scoring::new(1, 6, 2, 1, Scoring::NO_ZDROP, 5),
                _ => Scoring::new(3, 2, 5, 2, 15, Scoring::NO_BAND),
            };
            let want = guided_align(&rp, &qp, &sc);
            let scalar = grid_run::<BLOCK>(&rp, &qp, &sc, FillMode::Scalar);
            let simd = grid_run::<BLOCK>(&rp, &qp, &sc, FillMode::Simd);
            let narrow = grid_run_i16::<BLOCK>(&rp, &qp, &sc);
            assert_eq!(scalar, simd, "case {case}: scalar vs simd fill");
            assert_eq!(scalar, narrow, "case {case}: scalar vs i16 fill");
            // The wide geometry tiles the same table differently but must
            // produce the identical guided result in both precisions.
            let wide = grid_run::<MAX_BLOCK>(&rp, &qp, &sc, FillMode::Simd);
            let wide16 = grid_run_i16::<MAX_BLOCK>(&rp, &qp, &sc);
            assert_eq!(scalar, wide, "case {case}: scalar vs wide i32 fill");
            assert_eq!(scalar, wide16, "case {case}: scalar vs wide i16 fill");
            assert!(scalar.same_alignment(&want), "case {case}: {scalar:?} vs {want:?}");
            assert_eq!(scalar.cells, want.cells, "case {case}");
        }
    }

    #[test]
    fn matrix_model_matches_scalar_via_block_grid() {
        // End-to-end under BLOSUM62: every fill tier at both geometries
        // must reproduce the scalar guided result on protein tasks.
        use crate::block::FillMode;
        use crate::guided::guided_align;
        use crate::scoring::BLOSUM62;

        let mut rng = Rng(0xB10C);
        for case in 0..6 {
            let len_r = 16 + (rng.next() % 100) as usize;
            let len_q = 16 + (rng.next() % 100) as usize;
            let rcodes: Vec<u8> = (0..len_r).map(|_| (rng.next() % 21) as u8).collect();
            let qcodes: Vec<u8> = (0..len_q).map(|_| (rng.next() % 21) as u8).collect();
            let rp = PackedSeq::from_protein_codes(&rcodes, &BLOSUM62);
            let qp = PackedSeq::from_protein_codes(&qcodes, &BLOSUM62);
            let sc = if case % 2 == 0 {
                Scoring::preset_blosum62()
            } else {
                Scoring::preset_blosum62().with_zdrop(Scoring::NO_ZDROP).with_band(Scoring::NO_BAND)
            };
            let want = guided_align(&rp, &qp, &sc);
            let scalar = grid_run::<BLOCK>(&rp, &qp, &sc, FillMode::Scalar);
            let simd = grid_run::<BLOCK>(&rp, &qp, &sc, FillMode::Simd);
            let narrow = grid_run_i16::<BLOCK>(&rp, &qp, &sc);
            let wide = grid_run::<MAX_BLOCK>(&rp, &qp, &sc, FillMode::Simd);
            let wide16 = grid_run_i16::<MAX_BLOCK>(&rp, &qp, &sc);
            assert_eq!(scalar, simd, "case {case}: scalar vs simd fill");
            assert_eq!(scalar, narrow, "case {case}: scalar vs i16 fill");
            assert_eq!(scalar, wide, "case {case}: scalar vs wide i32 fill");
            assert_eq!(scalar, wide16, "case {case}: scalar vs wide i16 fill");
            assert!(scalar.same_alignment(&want), "case {case}: {scalar:?} vs {want:?}");
            assert_eq!(scalar.cells, want.cells, "case {case}");
        }
    }

    #[test]
    fn oversized_scoring_falls_back_to_scalar() {
        // A scoring whose per-step increment is too large for the wavefront
        // exactness proof must degrade to the scalar fill (simd_exact off)
        // when dispatched through compute_block_mode(Simd).
        use crate::block::{compute_block_mode, FillMode};

        let sc = Scoring::new(1 << 28, 4, 4, 2, Scoring::NO_ZDROP, Scoring::NO_BAND);
        let ctx = BlockCtx::new(64, 64, &sc);
        assert!(!ctx.simd_exact);
        let small = Scoring::figure1();
        assert!(BlockCtx::new(64, 64, &small).simd_exact);

        // Craft a block whose DP actually saturates: all-match codes add
        // 2^28 per diagonal step starting from a corner near i32::MAX, so
        // the scalar fill's saturating_add pins at i32::MAX while a
        // wavefront fill would wrap. If the Simd dispatch ever stopped
        // falling back, the outputs below would diverge (or the wavefront
        // would overflow-panic in debug builds) — either way this test
        // catches it.
        let rcodes = [0u8; BLOCK];
        let qcodes = [0u8; BLOCK];
        let corner = i32::MAX - 100;
        let west_h = [i32::MAX - 200; BLOCK];
        let west_e = [NEG_INF; BLOCK];
        let north_h = [i32::MAX - 200; BLOCK];
        let north_f = [NEG_INF; BLOCK];

        let run = |mode: FillMode| {
            let mut cells = BlockCells::new();
            let (mut wh, mut we, mut nh, mut nf) = (west_h, west_e, north_h, north_f);
            compute_block_mode(
                mode, &ctx, 8, 8, &rcodes, &qcodes, corner, &mut wh, &mut we, &mut nh, &mut nf,
                &mut cells,
            );
            (cells.h, cells.mask, wh, we, nh, nf)
        };
        let scalar = run(FillMode::Scalar);
        let simd = run(FillMode::Simd);
        assert_eq!(scalar, simd, "Simd mode must fall back to the scalar fill when !simd_exact");
        // The crafted inputs really do reach saturation (the discriminating
        // regime for the two add semantics).
        assert!(scalar.0.iter().any(|row| row.contains(&i32::MAX)), "expected saturated cells");
    }

    #[test]
    fn i16_gate_boundary_is_exact() {
        // All-match tasks that land the gate's reachable-score bound
        // exactly at the i16 threshold (2^13) and one unit inside it:
        // match = 64 with gap_open = 0, gap_extend = 1 makes the match
        // score the dominant per-step increment, so the bound is
        // 64 × (n + m + 2).
        use crate::block::{FillMode, FillPrecision, FillTier};
        use crate::guided::guided_align;

        let sc = Scoring::new(64, 1, 0, 1, Scoring::NO_ZDROP, Scoring::NO_BAND);

        // n + m + 2 = 127 → bound 8128 < 8192: one inside the gate.
        let inside = BlockCtx::new(63, 62, &sc);
        assert!(inside.i16_exact, "63×62 must sit one step inside the i16 gate");
        assert_eq!(inside.fill_tier(FillMode::Simd, FillPrecision::I16), FillTier::I16);
        assert_eq!(inside.fill_tier(FillMode::Simd, FillPrecision::Auto), FillTier::I16);
        assert_eq!(inside.fill_tier(FillMode::Simd, FillPrecision::I32), FillTier::I32);

        // n + m + 2 = 128 → bound 8192: exactly at the gate — demoted.
        let at = BlockCtx::new(63, 63, &sc);
        assert!(!at.i16_exact && at.simd_exact, "63×63 must demote to the i32 tier");
        assert_eq!(at.fill_tier(FillMode::Simd, FillPrecision::I16), FillTier::I32);
        assert_eq!(at.fill_tier(FillMode::Simd, FillPrecision::Auto), FillTier::I32);
        assert_eq!(at.fill_tier(FillMode::Scalar, FillPrecision::I16), FillTier::Scalar);

        // Inside the gate, an all-match task reaches the maximum attainable
        // score — the adversarial extreme the bound protects — and the i16
        // tier must still be bit-identical to the scalar fill.
        let r = PackedSeq::from_codes(&[0u8; 63]);
        let q = PackedSeq::from_codes(&[0u8; 62]);
        let want = guided_align(&r, &q, &sc);
        assert_eq!(want.score, 62 * 64, "all-match task must reach the gate's score regime");
        let scalar = grid_run::<BLOCK>(&r, &q, &sc, FillMode::Scalar);
        let narrow = grid_run_i16::<BLOCK>(&r, &q, &sc);
        assert_eq!(scalar, narrow, "i16 tier at the gate boundary must equal scalar");
        assert!(scalar.same_alignment(&want));

        // At the gate, the demoted (i32 wavefront) tier equals scalar too.
        let q2 = PackedSeq::from_codes(&[0u8; 63]);
        let scalar2 = grid_run::<BLOCK>(&r, &q2, &sc, FillMode::Scalar);
        let demoted = grid_run::<BLOCK>(&r, &q2, &sc, FillMode::Simd);
        assert_eq!(scalar2, demoted, "demoted task must run the exact i32 path");
        assert_eq!(scalar2.score, 63 * 64);
    }

    #[test]
    fn i16_saturates_rather_than_wraps_beyond_the_gate() {
        // Bypass the tier gate and drive the raw i16 fills on a block whose
        // DP genuinely exceeds i16 range: the saturating arithmetic must
        // pin at the rails (never wrap into plausible scores), both
        // backends must agree, and the scalar fill keeps the exact values —
        // which is precisely why fill_tier demotes such tasks.
        let sc = Scoring::new(4096, 4, 4, 2, Scoring::NO_ZDROP, Scoring::NO_BAND);
        let ctx = BlockCtx::new(64, 64, &sc);
        assert!(!ctx.i16_exact, "step 4096 must fail the i16 gate");
        assert!(ctx.simd_exact, "…while still fitting the i32 gate");

        let rcodes = [0u8; BLOCK];
        let qcodes = [0u8; BLOCK];
        let corner = 30_000;
        let west_h = [29_000; BLOCK];
        let west_e = [NEG_INF; BLOCK];
        let north_h = [29_000; BLOCK];
        let north_f = [NEG_INF; BLOCK];

        let mut cells_s = BlockCells::new();
        let (mut wh, mut we, mut nh, mut nf) = (west_h, west_e, north_h, north_f);
        fill_scalar(
            &ctx,
            8,
            8,
            &rcodes,
            &qcodes,
            corner,
            &mut wh,
            &mut we,
            &mut nh,
            &mut nf,
            &mut cells_s,
        );
        assert!(
            cells_s.h.iter().any(|row| row.iter().any(|&h| h > i32::from(i16::MAX))),
            "crafted block must exceed i16 range in the exact fill"
        );

        let mut cells_n = BlockCells16::new();
        let (mut wh, mut we, mut nh, mut nf) = (west_h, west_e, north_h, north_f);
        fill_portable_i16(
            &ctx,
            8,
            8,
            &rcodes,
            &qcodes,
            corner,
            &mut wh,
            &mut we,
            &mut nh,
            &mut nf,
            &mut cells_n,
        );
        let mut saw_rail = false;
        for d in 0..BLOCK_DIAGS {
            for l in 0..BLOCK {
                if cells_n.mask[d] & (1 << l) != 0 {
                    let h = cells_n.h[d][l];
                    let exact = cells_s.h[d][l];
                    if i32::from(h) != exact {
                        // Divergence is only ever rail-pinning, never wrap.
                        assert_eq!(h, i16::MAX, "saturation must pin, not wrap");
                        saw_rail = true;
                    }
                }
            }
        }
        assert!(saw_rail, "crafted block must actually hit the i16 rail");

        // The per-block overflow sentinel catches exactly this regime in
        // debug builds when the dispatch is (wrongly) driven past the gate.
        #[cfg(debug_assertions)]
        {
            let result = std::panic::catch_unwind(|| {
                let mut cells = BlockCells16::new();
                let (mut wh, mut we, mut nh, mut nf) = (west_h, west_e, north_h, north_f);
                fill_wavefront_i16(
                    &ctx, 8, 8, &rcodes, &qcodes, corner, &mut wh, &mut we, &mut nh, &mut nf,
                    &mut cells,
                );
            });
            assert!(result.is_err(), "overflow sentinel must trip on a saturated block");
        }
    }

    /// Forces a backend for a scope, restoring the previous process-wide
    /// choice on drop — panic unwinds included, so a failing forced test
    /// cannot leak its choice into later tests in this binary.
    struct ForcedBackend {
        prev: BackendChoice,
    }
    impl ForcedBackend {
        fn install(b: WavefrontBackend) -> Self {
            let prev = backend_choice();
            set_backend_choice(BackendChoice::Fixed(b));
            ForcedBackend { prev }
        }
    }
    impl Drop for ForcedBackend {
        fn drop(&mut self) {
            set_backend_choice(self.prev);
        }
    }

    #[test]
    fn forced_backend_sweeps_cover_all_dispatch_arms() {
        // Every backend this machine can run, forced in turn through the
        // random-block and matrix batteries at both geometries, so each
        // dispatch arm — the AVX-512 zmm fills included, where the CPU has
        // them — is held to the scalar reference regardless of what Auto
        // would have picked on this host.
        let _lock = backend_test_lock();
        for b in supported_backends() {
            let _forced = ForcedBackend::install(b);
            assert_eq!(backend(), b, "a supported backend must survive the clamp");
            random_blocks_sweep::<BLOCK>(0xF0CE);
            random_blocks_sweep::<MAX_BLOCK>(0xF1DE);
            matrix_blocks_sweep::<MAX_BLOCK>(0xFACE);
        }
    }

    #[test]
    fn avx512_gate_boundary_is_exact_at_wide_geometry() {
        // The 2^13 gate battery at the wide geometry with the AVX-512
        // backend forced: on hosts without AVX-512 the force clamps to the
        // detected backend, and every assertion below still holds (the
        // fills are bit-identical by contract), so the test is meaningful
        // everywhere while pinning the zmm kernels where they exist.
        use crate::block::{FillMode, FillPrecision, FillTier};
        use crate::guided::guided_align;

        let _lock = backend_test_lock();
        let _forced = ForcedBackend::install(WavefrontBackend::Avx512);

        let sc = Scoring::new(64, 1, 0, 1, Scoring::NO_ZDROP, Scoring::NO_BAND);

        // n + m + 2 = 127 → bound 8128 < 8192: one inside the gate, and the
        // gate decision is geometry-independent.
        let inside = BlockCtx::with_block_dim(63, 62, &sc, MAX_BLOCK);
        assert!(inside.i16_exact, "63×62 must sit one step inside the i16 gate");
        assert_eq!(inside.fill_tier(FillMode::Simd, FillPrecision::I16), FillTier::I16);
        assert_eq!(inside.fill_tier(FillMode::Simd, FillPrecision::Auto), FillTier::I16);

        // n + m + 2 = 128 → bound 8192: exactly at the gate — demoted.
        let at = BlockCtx::with_block_dim(63, 63, &sc, MAX_BLOCK);
        assert!(!at.i16_exact && at.simd_exact, "63×63 must demote to the i32 tier");
        assert_eq!(at.fill_tier(FillMode::Simd, FillPrecision::Auto), FillTier::I32);

        // Inside the gate an all-match task reaches the maximum attainable
        // score; the 32-lane i16 fill must still equal the scalar fill.
        let r = PackedSeq::from_codes(&[0u8; 63]);
        let q = PackedSeq::from_codes(&[0u8; 62]);
        let want = guided_align(&r, &q, &sc);
        assert_eq!(want.score, 62 * 64, "all-match task must reach the gate's score regime");
        let scalar = grid_run::<MAX_BLOCK>(&r, &q, &sc, FillMode::Scalar);
        let narrow = grid_run_i16::<MAX_BLOCK>(&r, &q, &sc);
        assert_eq!(scalar, narrow, "wide i16 tier at the gate boundary must equal scalar");
        assert!(scalar.same_alignment(&want));

        // At the gate, the demoted path is the 16×i32 zmm fill.
        let q2 = PackedSeq::from_codes(&[0u8; 63]);
        let scalar2 = grid_run::<MAX_BLOCK>(&r, &q2, &sc, FillMode::Scalar);
        let demoted = grid_run::<MAX_BLOCK>(&r, &q2, &sc, FillMode::Simd);
        assert_eq!(scalar2, demoted, "demoted task must run the exact wide i32 path");
        assert_eq!(scalar2.score, 63 * 64);
    }

    #[test]
    fn wide_i16_saturates_rather_than_wraps_beyond_the_gate() {
        // The saturation probe at the wide geometry: drive the raw 32-lane
        // i16 fills past the gate and require rail-pinning (never wrap),
        // with the AVX-512 backend forced so the masked zmm kernel is the
        // path under test on hosts that have it (clamped hosts exercise
        // their own widest arm — the contract is identical).
        use crate::block::{BlockCells16Wide, BlockCellsWide};

        let _lock = backend_test_lock();
        let _forced = ForcedBackend::install(WavefrontBackend::Avx512);

        let sc = Scoring::new(4096, 4, 4, 2, Scoring::NO_ZDROP, Scoring::NO_BAND);
        let ctx = BlockCtx::with_block_dim(64, 64, &sc, MAX_BLOCK);
        assert!(!ctx.i16_exact, "step 4096 must fail the i16 gate");
        assert!(ctx.simd_exact, "…while still fitting the i32 gate");

        let rcodes = [0u8; MAX_BLOCK];
        let qcodes = [0u8; MAX_BLOCK];
        let corner = 30_000;
        let west_h = [29_000; MAX_BLOCK];
        let west_e = [NEG_INF; MAX_BLOCK];
        let north_h = [29_000; MAX_BLOCK];
        let north_f = [NEG_INF; MAX_BLOCK];

        let mut cells_s = BlockCellsWide::new();
        let (mut wh, mut we, mut nh, mut nf) = (west_h, west_e, north_h, north_f);
        fill_scalar(
            &ctx,
            16,
            16,
            &rcodes,
            &qcodes,
            corner,
            &mut wh,
            &mut we,
            &mut nh,
            &mut nf,
            &mut cells_s,
        );
        assert!(
            cells_s.h.iter().any(|row| row.iter().any(|&h| h > i32::from(i16::MAX))),
            "crafted wide block must exceed i16 range in the exact fill"
        );

        let mut cells_n = BlockCells16Wide::new();
        let (mut wh, mut we, mut nh, mut nf) = (west_h, west_e, north_h, north_f);
        fill_portable_i16(
            &ctx,
            16,
            16,
            &rcodes,
            &qcodes,
            corner,
            &mut wh,
            &mut we,
            &mut nh,
            &mut nf,
            &mut cells_n,
        );
        let mut saw_rail = false;
        for d in 0..block_diags(MAX_BLOCK) {
            for l in 0..MAX_BLOCK {
                if cells_n.mask[d] & (1 << l) != 0 {
                    let h = cells_n.h[d][l];
                    let exact = cells_s.h[d][l];
                    if i32::from(h) != exact {
                        // Divergence is only ever rail-pinning, never wrap.
                        assert_eq!(h, i16::MAX, "saturation must pin, not wrap");
                        saw_rail = true;
                    }
                }
            }
        }
        assert!(saw_rail, "crafted wide block must actually hit the i16 rail");

        // The overflow sentinel catches this regime for the wide vector
        // fill too when the dispatch is (wrongly) driven past the gate.
        #[cfg(debug_assertions)]
        {
            let result = std::panic::catch_unwind(|| {
                let mut cells = BlockCells16Wide::new();
                let (mut wh, mut we, mut nh, mut nf) = (west_h, west_e, north_h, north_f);
                fill_wavefront_i16(
                    &ctx, 16, 16, &rcodes, &qcodes, corner, &mut wh, &mut we, &mut nh, &mut nf,
                    &mut cells,
                );
            });
            assert!(result.is_err(), "overflow sentinel must trip on a saturated wide block");
        }
    }
}
