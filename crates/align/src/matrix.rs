//! Full (unguided) dynamic-programming table with traceback.
//!
//! This is the textbook `O(N²)` formulation from §2.1, used as an oracle for
//! the banded/guided implementations and to produce human-readable alignments
//! (the "Alignment Result" of Figure 1) in examples. It is **not** meant for
//! long reads — that is the whole point of the paper.

use crate::pack::PackedSeq;
use crate::result::MaxCell;
use crate::scoring::Scoring;
use crate::NEG_INF;

/// One column of the alignment result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignOp {
    /// `R[i]` aligned to `Q[j]` and equal.
    Match,
    /// `R[i]` aligned to `Q[j]` and different (or ambiguous).
    Mismatch,
    /// Gap in the query: `R[i]` aligned to `-` (a deletion from the query's
    /// point of view).
    Delete,
    /// Gap in the reference: `Q[j]` aligned to `-` (an insertion).
    Insert,
}

/// A full-table alignment: score, end cell, and the operation list from the
/// extension origin to the maximum cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FullAlignment {
    /// Best extension score (`>= 0`; 0 means "do not extend").
    pub score: i32,
    /// Cell achieving the best score (`(-1,-1)` when score is 0).
    pub max: MaxCell,
    /// Operations from `(0,0)` to the maximum cell, in sequence order.
    pub ops: Vec<AlignOp>,
}

impl FullAlignment {
    /// Render the classic three-line alignment view.
    pub fn pretty(&self, reference: &PackedSeq, query: &PackedSeq) -> String {
        let (mut rl, mut ml, mut ql) = (String::new(), String::new(), String::new());
        let (mut i, mut j) = (0usize, 0usize);
        for op in &self.ops {
            match op {
                AlignOp::Match | AlignOp::Mismatch => {
                    rl.push(reference.base(i).to_char());
                    ql.push(query.base(j).to_char());
                    ml.push(if matches!(op, AlignOp::Match) { '|' } else { '.' });
                    i += 1;
                    j += 1;
                }
                AlignOp::Delete => {
                    rl.push(reference.base(i).to_char());
                    ql.push('-');
                    ml.push(' ');
                    i += 1;
                }
                AlignOp::Insert => {
                    rl.push('-');
                    ql.push(query.base(j).to_char());
                    ml.push(' ');
                    j += 1;
                }
            }
        }
        format!("R: {rl}\n   {ml}\nQ: {ql}")
    }

    /// Compact CIGAR-like string (`=`, `X`, `D`, `I` run-length encoded).
    pub fn cigar(&self) -> String {
        let mut out = String::new();
        let mut run = 0usize;
        let mut prev: Option<char> = None;
        for op in &self.ops {
            let c = match op {
                AlignOp::Match => '=',
                AlignOp::Mismatch => 'X',
                AlignOp::Delete => 'D',
                AlignOp::Insert => 'I',
            };
            match prev {
                Some(p) if p == c => run += 1,
                Some(p) => {
                    out.push_str(&format!("{run}{p}"));
                    prev = Some(c);
                    run = 1;
                }
                None => {
                    prev = Some(c);
                    run = 1;
                }
            }
        }
        if let Some(p) = prev {
            out.push_str(&format!("{run}{p}"));
        }
        out
    }
}

// Traceback direction encoding, two bits per matrix:
const H_FROM_DIAG: u8 = 0;
const H_FROM_E: u8 = 1; // gap along reference (Delete)
const H_FROM_F: u8 = 2; // gap along query (Insert)
const E_EXTEND: u8 = 4; // E came from E(i-1,j) rather than H(i-1,j)
const F_EXTEND: u8 = 8; // F came from F(i,j-1) rather than H(i,j-1)

/// Maximum table size (cells) accepted by [`full_align`]; larger inputs
/// should use the banded/guided engines.
pub const MAX_FULL_CELLS: usize = 1 << 26;

/// Full-table extension alignment with traceback.
///
/// Panics if `n*m` exceeds [`MAX_FULL_CELLS`].
pub fn full_align(reference: &PackedSeq, query: &PackedSeq, scoring: &Scoring) -> FullAlignment {
    let n = reference.len();
    let m = query.len();
    if n == 0 || m == 0 {
        return FullAlignment { score: 0, max: MaxCell::ORIGIN, ops: Vec::new() };
    }
    assert!(
        n.checked_mul(m).is_some_and(|c| c <= MAX_FULL_CELLS),
        "full_align table too large ({n} x {m}); use the guided engines"
    );
    let open_ext = scoring.gap_open + scoring.gap_extend;
    let ext = scoring.gap_extend;

    let rcodes = reference.to_codes();
    let qcodes = query.to_codes();

    let mut dir = vec![0u8; n * m];
    // Row-major over i; one row of H/E plus running F per column sweep.
    let mut h_row = vec![0i32; m + 1]; // h_row[j+1] = H(i-1, j); h_row[0] = H(i-1, -1)
    let mut e_row = vec![NEG_INF; m + 1];
    // Initialise virtual row i = -1.
    h_row[0] = 0;
    for j in 0..m {
        h_row[j + 1] = scoring.border(j as i32);
    }

    let mut best = MaxCell::ORIGIN;
    for i in 0..n {
        let mut diag_h = h_row[0]; // H(i-1, j-1) as j advances
        h_row[0] = scoring.border(i as i32); // H(i, -1)
        let mut f = NEG_INF;
        let mut left_h = h_row[0];
        for j in 0..m {
            let up_h = h_row[j + 1];
            let up_e = e_row[j + 1];

            let (e, e_ext) = if up_h - open_ext >= up_e - ext {
                (up_h - open_ext, false)
            } else {
                (up_e - ext, true)
            };
            let (fv, f_ext) = if left_h - open_ext >= f - ext {
                (left_h - open_ext, false)
            } else {
                (f - ext, true)
            };
            f = fv;
            let sub = scoring.substitution(rcodes[i], qcodes[j]);
            let dh = diag_h.saturating_add(sub);

            let (h, src) = if dh >= e && dh >= fv {
                (dh, H_FROM_DIAG)
            } else if e >= fv {
                (e, H_FROM_E)
            } else {
                (fv, H_FROM_F)
            };

            let mut d = src;
            if e_ext {
                d |= E_EXTEND;
            }
            if f_ext {
                d |= F_EXTEND;
            }
            dir[i * m + j] = d;

            diag_h = up_h;
            h_row[j + 1] = h;
            e_row[j + 1] = e;
            left_h = h;

            if h > best.score {
                best = MaxCell { score: h, i: i as i32, j: j as i32 };
            }
        }
    }

    let ops = if best.score > 0 { traceback(&dir, m, best) } else { Vec::new() };
    FullAlignment { score: best.score, max: best, ops }
}

fn traceback(dir: &[u8], m: usize, start: MaxCell) -> Vec<AlignOp> {
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        H,
        E,
        F,
    }
    let mut ops = Vec::new();
    let (mut i, mut j) = (start.i, start.j);
    let mut state = State::H;
    while i >= 0 && j >= 0 {
        let d = dir[i as usize * m + j as usize];
        match state {
            State::H => match d & 3 {
                H_FROM_DIAG => {
                    ops.push(AlignOp::Match); // refined below by caller? no: decide here
                    i -= 1;
                    j -= 1;
                }
                H_FROM_E => state = State::E,
                _ => state = State::F,
            },
            State::E => {
                ops.push(AlignOp::Delete);
                if d & E_EXTEND == 0 {
                    state = State::H;
                }
                i -= 1;
            }
            State::F => {
                ops.push(AlignOp::Insert);
                if d & F_EXTEND == 0 {
                    state = State::H;
                }
                j -= 1;
            }
        }
    }
    // Any leading border gap (i or j still >= 0) is part of the alignment.
    while i >= 0 {
        ops.push(AlignOp::Delete);
        i -= 1;
    }
    while j >= 0 {
        ops.push(AlignOp::Insert);
        j -= 1;
    }
    ops.reverse();
    ops
}

/// Post-process ops to distinguish matches from mismatches (traceback marks
/// all diagonal moves as [`AlignOp::Match`]).
pub fn classify_ops(ops: &mut [AlignOp], reference: &PackedSeq, query: &PackedSeq) {
    let (mut i, mut j) = (0usize, 0usize);
    for op in ops.iter_mut() {
        match op {
            AlignOp::Match | AlignOp::Mismatch => {
                let eq = reference.code(i) == query.code(j)
                    && reference.base(i).is_unambiguous()
                    && query.base(j).is_unambiguous();
                *op = if eq { AlignOp::Match } else { AlignOp::Mismatch };
                i += 1;
                j += 1;
            }
            AlignOp::Delete => i += 1,
            AlignOp::Insert => j += 1,
        }
    }
}

/// Convenience: align and classify in one call.
pub fn full_align_classified(
    reference: &PackedSeq,
    query: &PackedSeq,
    scoring: &Scoring,
) -> FullAlignment {
    let mut a = full_align(reference, query, scoring);
    classify_ops(&mut a.ops, reference, query);
    a
}

/// Score an operation list under a scoring scheme (for traceback validation).
pub fn score_ops(
    ops: &[AlignOp],
    reference: &PackedSeq,
    query: &PackedSeq,
    scoring: &Scoring,
) -> i32 {
    let mut score = 0i32;
    let (mut i, mut j) = (0usize, 0usize);
    let mut k = 0usize;
    while k < ops.len() {
        match ops[k] {
            AlignOp::Match | AlignOp::Mismatch => {
                score += scoring.substitution(reference.code(i), query.code(j));
                i += 1;
                j += 1;
                k += 1;
            }
            AlignOp::Delete => {
                let mut run = 0;
                while k < ops.len() && ops[k] == AlignOp::Delete {
                    run += 1;
                    k += 1;
                }
                i += run as usize;
                score -= scoring.gap_cost(run);
            }
            AlignOp::Insert => {
                let mut run = 0;
                while k < ops.len() && ops[k] == AlignOp::Insert {
                    run += 1;
                    k += 1;
                }
                j += run as usize;
                score -= scoring.gap_cost(run);
            }
        }
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guided::guided_align;

    fn seq(s: &str) -> PackedSeq {
        PackedSeq::from_str_seq(s)
    }

    #[test]
    fn identity_alignment() {
        let s = Scoring::figure1();
        let a = full_align_classified(&seq("ACGTACGT"), &seq("ACGTACGT"), &s);
        assert_eq!(a.score, 16);
        assert_eq!(a.cigar(), "8=");
    }

    #[test]
    fn mismatch_alignment() {
        // Mismatch penalty (1) small enough that crossing it pays off, so
        // the global max is at the table end rather than the prefix.
        let s = Scoring::new(2, 1, 4, 2, Scoring::NO_ZDROP, Scoring::NO_BAND);
        let a = full_align_classified(&seq("AAAAA"), &seq("AATAA"), &s);
        assert_eq!(a.cigar(), "2=1X2=");
        assert_eq!(a.score, 8 - 1); // 4 matches (8) - mismatch (1)
    }

    #[test]
    fn extension_max_prefers_earliest_tie() {
        // With mismatch -4 the full crossing ties the prefix score, and the
        // canonical semantics keep the earliest maximum.
        let s = Scoring::figure1();
        let a = full_align_classified(&seq("AAAAA"), &seq("AATAA"), &s);
        assert_eq!(a.score, 4);
        assert_eq!((a.max.i, a.max.j), (1, 1));
        assert_eq!(a.cigar(), "2=");
    }

    #[test]
    fn insertion_alignment() {
        let s = Scoring::figure1();
        let a = full_align_classified(&seq("AACCGGTT"), &seq("AACCTGGTT"), &s);
        assert_eq!(a.score, 10);
        assert_eq!(a.cigar(), "4=1I4=");
    }

    #[test]
    fn deletion_alignment() {
        let s = Scoring::figure1();
        let a = full_align_classified(&seq("AACCTGGTT"), &seq("AACCGGTT"), &s);
        assert_eq!(a.score, 10);
        assert_eq!(a.cigar(), "4=1D4=");
    }

    #[test]
    fn traceback_score_matches_dp_score() {
        let s = Scoring::figure1();
        let cases = [
            ("AGATAGAT", "AGACTATC"), // the Figure 1 pair
            ("ACGTACGTACGT", "ACGACGTTACGT"),
            ("TTTTACGT", "ACGTTTTT"),
            ("AGAT", "AGATAGATAGAT"),
        ];
        for (r, q) in cases {
            let (r, q) = (seq(r), seq(q));
            let a = full_align_classified(&r, &q, &s);
            if a.score > 0 {
                assert_eq!(score_ops(&a.ops, &r, &q, &s), a.score, "pair {r:?} {q:?}");
            }
        }
    }

    #[test]
    fn agrees_with_guided_when_unguided() {
        let s = Scoring::figure1(); // no band, no zdrop
        let cases = [
            ("AGATAGAT", "AGACTATC"),
            ("ACGT", "TGCA"),
            ("AAAACCCCGGGG", "AAAAGGGG"),
            ("AGCTAGCTAGCTAA", "AGCTTGCTAGCTAA"),
        ];
        for (r, q) in cases {
            let (r, q) = (seq(r), seq(q));
            let f = full_align(&r, &q, &s);
            let g = guided_align(&r, &q, &s);
            assert_eq!(f.score, g.score, "pair {r:?} {q:?}");
            assert_eq!((f.max.i, f.max.j), (g.max.i, g.max.j), "pair {r:?} {q:?}");
        }
    }

    #[test]
    fn pretty_output_shape() {
        let s = Scoring::figure1();
        let (r, q) = (seq("AACCGGTT"), seq("AACCTGGTT"));
        let a = full_align_classified(&r, &q, &s);
        let p = a.pretty(&r, &q);
        let lines: Vec<&str> = p.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn zero_score_has_no_ops() {
        let s = Scoring::figure1();
        let a = full_align(&seq("AAAA"), &seq("GGGG"), &s);
        assert_eq!(a.score, 0);
        assert!(a.ops.is_empty());
    }
}
