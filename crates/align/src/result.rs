//! Result types shared by every alignment engine.

/// A score together with the cell it was achieved at.
///
/// Position `(-1, -1)` with score 0 denotes the empty extension (the DP
/// origin); every engine initialises its running global maximum there, which
/// is what makes the Z-drop condition well-defined from the first
/// anti-diagonal onward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxCell {
    /// Best score.
    pub score: i32,
    /// Reference index of the cell (`-1` for the origin).
    pub i: i32,
    /// Query index of the cell (`-1` for the origin).
    pub j: i32,
}

impl MaxCell {
    /// The DP origin: empty extension, score 0 at `(-1, -1)`.
    pub const ORIGIN: MaxCell = MaxCell { score: 0, i: -1, j: -1 };

    /// Keep the better of two maxima. Strictly-greater wins, so the earliest
    /// (in anti-diagonal order, then smallest `i`) cell achieving the best
    /// score is retained — every engine must fold candidates in that order
    /// for results to be bit-identical.
    #[inline]
    pub fn fold(&mut self, other: MaxCell) {
        if other.score > self.score {
            *self = other;
        }
    }
}

/// Why the guided alignment stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The entire (banded) score table was filled.
    Completed,
    /// The Z-drop termination condition (paper Eq. 4–7) fired on the
    /// contained anti-diagonal.
    ZDrop { antidiag: u32 },
    /// The band became empty before the table end (can happen when the band
    /// is narrower than the length difference of the inputs).
    BandExhausted { antidiag: u32 },
}

impl StopReason {
    /// The anti-diagonal at which filling stopped, if it stopped early.
    pub fn antidiag(&self) -> Option<u32> {
        match self {
            StopReason::Completed => None,
            StopReason::ZDrop { antidiag } | StopReason::BandExhausted { antidiag } => {
                Some(*antidiag)
            }
        }
    }

    /// Whether the Z-drop condition fired.
    pub fn z_dropped(&self) -> bool {
        matches!(self, StopReason::ZDrop { .. })
    }
}

/// Outcome of one guided alignment.
///
/// The exactness contract of the workspace: every MM2-target engine returns
/// an identical `GuidedResult` for identical inputs (compared with
/// [`GuidedResult::same_alignment`], which ignores the cost-model fields).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuidedResult {
    /// Best extension score (the global maximum; `>= 0` because the empty
    /// extension scores 0).
    pub score: i32,
    /// Cell achieving the best score.
    pub max: MaxCell,
    /// Best score among cells that consume the entire query (`j == m-1`),
    /// or `None` if the band/termination never reached the last query
    /// column. Minimap2 uses this "end score" to decide whether the
    /// extension reached the read end.
    pub qend_score: Option<i32>,
    /// Why filling stopped.
    pub stop: StopReason,
    /// Number of anti-diagonals processed (= index of the last processed
    /// anti-diagonal + 1).
    pub antidiags: u32,
    /// Number of in-band cells whose scores were computed by the *reference
    /// semantics* (i.e., excluding any run-ahead an engine performed).
    pub cells: u64,
}

impl GuidedResult {
    /// Compare the alignment-semantics fields (exactness contract), ignoring
    /// the bookkeeping fields that may legitimately differ between engines
    /// (e.g., run-ahead cells).
    pub fn same_alignment(&self, other: &GuidedResult) -> bool {
        self.score == other.score
            && self.max == other.max
            && self.stop == other.stop
            && self.qend_score == other.qend_score
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_keeps_earliest_on_tie() {
        let mut m = MaxCell { score: 5, i: 1, j: 1 };
        m.fold(MaxCell { score: 5, i: 9, j: 9 });
        assert_eq!(m.i, 1);
        m.fold(MaxCell { score: 6, i: 9, j: 9 });
        assert_eq!(m.i, 9);
    }

    #[test]
    fn stop_reason_accessors() {
        assert_eq!(StopReason::Completed.antidiag(), None);
        assert!(!StopReason::Completed.z_dropped());
        let z = StopReason::ZDrop { antidiag: 7 };
        assert_eq!(z.antidiag(), Some(7));
        assert!(z.z_dropped());
        let b = StopReason::BandExhausted { antidiag: 3 };
        assert_eq!(b.antidiag(), Some(3));
        assert!(!b.z_dropped());
    }
}
