//! Exact scalar reference for **guided alignment**: banded affine-gap DP
//! with the Z-drop termination condition, processed anti-diagonal by
//! anti-diagonal (the "reference algorithm" every GPU engine must match).
//!
//! ## Semantics (the workspace-wide exactness contract)
//!
//! * Recurrences (paper Eq. 1–3), with the gap-open term read as
//!   *open-then-extend* — a gap of length `k` costs `α + k·β` — which is
//!   Minimap2/ksw2's convention and the one consistent with the paper's own
//!   Figure 1 border values (`-6, -8, -10, …` for `α=4, β=2`):
//!
//!   ```text
//!   E(i,j) = max(H(i-1,j) - (α+β), E(i-1,j) - β)
//!   F(i,j) = max(H(i,j-1) - (α+β), F(i,j-1) - β)
//!   H(i,j) = max(E(i,j), F(i,j), H(i-1,j-1) + S(R[i], Q[j]))
//!   ```
//!
//! * Borders: `H(-1,-1) = 0`, `H(i,-1) = H(-1,i) = -(α + (i+1)·β)`;
//!   `E`/`F` are `-∞` outside the table.
//! * Band: cell `(i,j)` exists iff `|i - j| ≤ w`; out-of-band neighbours
//!   read as `-∞`.
//! * Termination (Eq. 4–7): for each anti-diagonal `c = i + j` in increasing
//!   order, with `(i,j)` the in-band local maximum of `c` and `(i',j')` the
//!   running global maximum over anti-diagonals `< c` (seeded with the
//!   origin, score 0 at `(-1,-1)`), terminate iff
//!   `i' < i ∧ j' < j ∧ H(i',j') - H(i,j) > Z + β·|(i-i') - (j-j')|`.
//!   On termination the result is the global maximum *excluding* `c`;
//!   otherwise `c`'s local maximum is folded into the global maximum and the
//!   scan continues.

use crate::pack::PackedSeq;
use crate::result::{GuidedResult, MaxCell, StopReason};
use crate::scoring::Scoring;
use crate::NEG_INF;

/// Reusable buffers for [`guided_align_ws`]; avoids per-task allocation in
/// batch runs (see the perf-book guidance on workhorse collections).
#[derive(Debug, Default)]
pub struct GuidedWorkspace {
    h: [Vec<i32>; 3],
    e: [Vec<i32>; 2],
    f: [Vec<i32>; 2],
}

impl GuidedWorkspace {
    /// Fresh workspace; buffers grow on demand.
    pub fn new() -> GuidedWorkspace {
        GuidedWorkspace::default()
    }

    fn reset(&mut self, n: usize) {
        for buf in self.h.iter_mut().chain(self.e.iter_mut()).chain(self.f.iter_mut()) {
            buf.clear();
            buf.resize(n, NEG_INF);
        }
    }
}

/// Inclusive in-band `i`-range of anti-diagonal `c` for an `n × m` table
/// with band half-width `w`, or `None` when the diagonal has no in-band
/// cells.
///
/// A cell `(i, j=c-i)` exists iff `0 ≤ i < n`, `0 ≤ j < m` and
/// `|2i - c| ≤ w`.
#[inline]
pub fn diag_range(c: i64, n: i64, m: i64, w: i64) -> Option<(i64, i64)> {
    let lo = 0.max(c - m + 1).max((c - w + 1).div_euclid(2));
    let hi = (n - 1).min(c).min((c + w).div_euclid(2));
    if lo <= hi {
        Some((lo, hi))
    } else {
        None
    }
}

/// Number of in-band cells on anti-diagonal `c`.
#[inline]
pub fn diag_cells(c: i64, n: i64, m: i64, w: i64) -> u32 {
    diag_range(c, n, m, w).map_or(0, |(lo, hi)| (hi - lo + 1) as u32)
}

/// Evaluate the Z-drop condition (Eq. 5) between a running global maximum
/// and a local (anti-diagonal) maximum. Returns `true` when the alignment
/// must terminate.
#[inline]
pub fn zdrop_triggered(global: MaxCell, local: MaxCell, zdrop: i32, gap_extend: i32) -> bool {
    if !(global.i < local.i && global.j < local.j) {
        return false;
    }
    let diag_gap = ((local.i - global.i) - (local.j - global.j)).abs();
    (global.score as i64 - local.score as i64) > zdrop as i64 + gap_extend as i64 * diag_gap as i64
}

/// Align `query` against `reference` under `scoring`, allocating internal
/// buffers. See [`guided_align_ws`] for the batch-friendly variant.
pub fn guided_align(reference: &PackedSeq, query: &PackedSeq, scoring: &Scoring) -> GuidedResult {
    guided_align_ws(reference, query, scoring, &mut GuidedWorkspace::new())
}

/// Align using caller-provided buffers.
pub fn guided_align_ws(
    reference: &PackedSeq,
    query: &PackedSeq,
    scoring: &Scoring,
    ws: &mut GuidedWorkspace,
) -> GuidedResult {
    let n = reference.len() as i64;
    let m = query.len() as i64;
    if n == 0 || m == 0 {
        return GuidedResult {
            score: 0,
            max: MaxCell::ORIGIN,
            qend_score: None,
            stop: StopReason::Completed,
            antidiags: 0,
            cells: 0,
        };
    }
    let w = if scoring.banded() { scoring.band_width as i64 } else { n + m };
    let open_ext = scoring.gap_open + scoring.gap_extend;
    let ext = scoring.gap_extend;

    ws.reset(n as usize);

    let rcodes: Vec<u8> = reference.to_codes();
    let qcodes: Vec<u8> = query.to_codes();

    let mut global = MaxCell::ORIGIN;
    let mut qend_score: Option<i32> = None;
    let mut cells: u64 = 0;

    let total_diags = n + m - 1;
    let mut stop = StopReason::Completed;
    let mut last_diag: i64 = -1;

    // Index of the buffer holding anti-diagonal (c - k) for k = 1, 2.
    for c in 0..total_diags {
        let Some((lo, hi)) = diag_range(c, n, m, w) else {
            stop = StopReason::BandExhausted { antidiag: c as u32 };
            break;
        };
        let (h_slot, h_prev_slot, h_prev2_slot) =
            ((c % 3) as usize, ((c + 2) % 3) as usize, ((c + 1) % 3) as usize);
        let ef_slot = (c % 2) as usize;
        let ef_prev_slot = ((c + 1) % 2) as usize;

        let mut local = MaxCell { score: NEG_INF, i: -1, j: -1 };
        let mut diag_qend: Option<i32> = None;

        for i in lo..=hi {
            let j = c - i;
            let iu = i as usize;

            let up_h = if i == 0 { scoring.border(j as i32) } else { ws.h[h_prev_slot][iu - 1] };
            let up_e = if i == 0 { NEG_INF } else { ws.e[ef_prev_slot][iu - 1] };
            let left_h = if j == 0 { scoring.border(i as i32) } else { ws.h[h_prev_slot][iu] };
            let left_f = if j == 0 { NEG_INF } else { ws.f[ef_prev_slot][iu] };
            let diag_h = if i == 0 && j == 0 {
                0
            } else if i == 0 {
                scoring.border((j - 1) as i32)
            } else if j == 0 {
                scoring.border((i - 1) as i32)
            } else {
                ws.h[h_prev2_slot][iu - 1]
            };

            let e = (up_h - open_ext).max(up_e - ext);
            let f = (left_h - open_ext).max(left_f - ext);
            let sub = scoring.substitution(rcodes[iu], qcodes[j as usize]);
            let h = e.max(f).max(diag_h.saturating_add(sub));

            ws.h[h_slot][iu] = h;
            ws.e[ef_slot][iu] = e;
            ws.f[ef_slot][iu] = f;

            if h > local.score {
                local = MaxCell { score: h, i: i as i32, j: j as i32 };
            }
            if j == m - 1 {
                diag_qend = Some(h);
            }
        }
        cells += (hi - lo + 1) as u64;
        last_diag = c;

        // Sentinels: neighbours just outside the written range must read -∞
        // on the next two diagonals (band edges / range shifts).
        if lo > 0 {
            ws.h[h_slot][(lo - 1) as usize] = NEG_INF;
            ws.e[ef_slot][(lo - 1) as usize] = NEG_INF;
            ws.f[ef_slot][(lo - 1) as usize] = NEG_INF;
        }
        if hi + 1 < n {
            ws.h[h_slot][(hi + 1) as usize] = NEG_INF;
            ws.e[ef_slot][(hi + 1) as usize] = NEG_INF;
            ws.f[ef_slot][(hi + 1) as usize] = NEG_INF;
        }

        if scoring.zdrop_enabled() && zdrop_triggered(global, local, scoring.zdrop, ext) {
            stop = StopReason::ZDrop { antidiag: c as u32 };
            break;
        }
        global.fold(local);
        if let Some(v) = diag_qend {
            qend_score = Some(qend_score.map_or(v, |q| q.max(v)));
        }
    }

    GuidedResult {
        score: global.score,
        max: global,
        qend_score,
        stop,
        antidiags: (last_diag + 1) as u32,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> PackedSeq {
        PackedSeq::from_str_seq(s)
    }

    #[test]
    fn perfect_match_scores_len_times_match() {
        let s = Scoring::figure1(); // match +2
        let r = guided_align(&seq("AGATTACA"), &seq("AGATTACA"), &s);
        assert_eq!(r.score, 16);
        assert_eq!(r.max, MaxCell { score: 16, i: 7, j: 7 });
        assert_eq!(r.stop, StopReason::Completed);
        assert_eq!(r.qend_score, Some(16));
        assert_eq!(r.antidiags, 15);
        assert_eq!(r.cells, 64);
    }

    #[test]
    fn empty_inputs() {
        let s = Scoring::figure1();
        let r = guided_align(&seq(""), &seq("ACGT"), &s);
        assert_eq!(r.score, 0);
        assert_eq!(r.max, MaxCell::ORIGIN);
        assert_eq!(r.cells, 0);
    }

    #[test]
    fn single_mismatch_middle() {
        let s = Scoring::figure1(); // match +2, mismatch -4
        let r = guided_align(&seq("AAAAAAA"), &seq("AAATAAA"), &s);
        // 6 matches + 1 mismatch = 12 - 4 = 8
        assert_eq!(r.score, 8);
        assert_eq!(r.max.i, 6);
        assert_eq!(r.max.j, 6);
    }

    #[test]
    fn single_insertion_uses_affine_cost() {
        // query has one extra base
        let s = Scoring::figure1(); // α=4, β=2 → 1-gap costs 6
        let r = guided_align(&seq("AAAAAAAA"), &seq("AAAATAAAA"), &s);
        // 8 matches (16) minus gap(1) = 6 → 10
        assert_eq!(r.score, 10);
    }

    #[test]
    fn long_gap_extends_cheaply() {
        let s = Scoring::figure1();
        // 12 reference matches with a 2-base query insertion in the middle:
        // 12 matches (24) minus gap(2) = 4+2*2 = 8 → 16, which beats both the
        // 4-match prefix (8) and the gapless mismatch path (12).
        let r = guided_align(&seq(&"A".repeat(12)), &seq("AAAATTAAAAAAAA"), &s);
        assert_eq!(r.score, 16);
        // And a longer gap costs only β more per base: gap(4) = 12 → 12.
        let r = guided_align(&seq(&"A".repeat(12)), &seq("AAAATTTTAAAAAAAA"), &s);
        assert_eq!(r.score, 12);
    }

    #[test]
    fn score_never_negative() {
        let s = Scoring::figure1();
        let r = guided_align(&seq("AAAAAAAA"), &seq("GGGGGGGG"), &s);
        assert_eq!(r.score, 0);
        assert_eq!(r.max, MaxCell::ORIGIN);
    }

    #[test]
    fn prefix_match_then_junk_keeps_prefix_score() {
        let s = Scoring::figure1().with_zdrop(Scoring::NO_ZDROP);
        let r = guided_align(&seq("ACGTACGTGGGGGGGG"), &seq("ACGTACGTCCCCCCCC"), &s);
        assert_eq!(r.score, 16); // 8-match prefix
        assert_eq!(r.max.i, 7);
        assert_eq!(r.max.j, 7);
    }

    #[test]
    fn zdrop_terminates_on_junk_tail() {
        // Long matching prefix followed by pure mismatch: the score drops by
        // (match+mismatch)=6 per diagonal step, so with Z=12 it must stop
        // soon after the junk starts, well before the table end.
        let prefix = "ACGTACGTACGTACGT"; // 16 matches → score 32
        let r_tail = "G".repeat(40);
        let q_tail = "C".repeat(40);
        let s = Scoring::new(2, 4, 4, 2, 12, Scoring::NO_BAND);
        let r = guided_align(
            &seq(&format!("{prefix}{r_tail}")),
            &seq(&format!("{prefix}{q_tail}")),
            &s,
        );
        assert_eq!(r.score, 32);
        assert_eq!(r.max.i, 15);
        assert_eq!(r.max.j, 15);
        assert!(r.stop.z_dropped(), "stop was {:?}", r.stop);
        let t = r.stop.antidiag().unwrap();
        assert!(t > 30 && t < 50, "terminated at {t}");
        assert!(r.qend_score.is_none(), "must stop before reaching query end");
    }

    #[test]
    fn no_zdrop_completes_on_junk_tail() {
        let prefix = "ACGTACGTACGTACGT";
        let tail = "G".repeat(40);
        let tail_q = "C".repeat(40);
        let s = Scoring::figure1();
        let r =
            guided_align(&seq(&format!("{prefix}{tail}")), &seq(&format!("{prefix}{tail_q}")), &s);
        assert_eq!(r.stop, StopReason::Completed);
        assert_eq!(r.score, 32);
    }

    #[test]
    fn band_restricts_large_offsets() {
        // A 6-base insertion shifts the tail onto the offset-6 diagonal,
        // which a band of 2 cannot reach.
        let prefix = "ACGA";
        let suffix = "CGCACGCACGCACGCA"; // 16 bases, no T runs
        let reference = format!("{prefix}{suffix}");
        let query = format!("{prefix}TTTTTT{suffix}");
        let banded = Scoring::new(2, 4, 4, 2, Scoring::NO_ZDROP, 2);
        let r = guided_align(&seq(&reference), &seq(&query), &banded);
        let r2 = guided_align(&seq(&reference), &seq(&query), &banded.with_band(Scoring::NO_BAND));
        // Unbanded: 20 matches (40) - gap(6) = 16 → 24; banded: prefix only.
        assert_eq!(r2.score, 24);
        assert!(r.score < r2.score, "banded {} vs unbanded {}", r.score, r2.score);
    }

    #[test]
    fn band_exhaustion_reported_when_band_cannot_reach_end() {
        // n >> m with a band narrower than the length difference: trailing
        // anti-diagonals have no in-band cells.
        let s = Scoring::new(2, 4, 4, 2, Scoring::NO_ZDROP, 2);
        let r = guided_align(&seq(&"A".repeat(64)), &seq("AAAA"), &s);
        assert!(matches!(r.stop, StopReason::BandExhausted { .. }), "{:?}", r.stop);
    }

    #[test]
    fn diag_range_basics() {
        // 4x4 table, unbounded band.
        assert_eq!(diag_range(0, 4, 4, 100), Some((0, 0)));
        assert_eq!(diag_range(3, 4, 4, 100), Some((0, 3)));
        assert_eq!(diag_range(6, 4, 4, 100), Some((3, 3)));
        assert_eq!(diag_range(7, 4, 4, 100), None);
        // band w=1 on diag 3: |2i-3|<=1 → i in {1,2}
        assert_eq!(diag_range(3, 4, 4, 1), Some((1, 2)));
        assert_eq!(diag_cells(3, 4, 4, 1), 2);
    }

    #[test]
    fn diag_cells_sum_equals_band_area() {
        let (n, m, w) = (13i64, 9i64, 3i64);
        let total: u64 = (0..n + m - 1).map(|c| diag_cells(c, n, m, w) as u64).sum();
        let mut expect = 0u64;
        for i in 0..n {
            for j in 0..m {
                if (i - j).abs() <= w {
                    expect += 1;
                }
            }
        }
        assert_eq!(total, expect);
    }

    #[test]
    fn zdrop_condition_respects_position_constraint() {
        let g = MaxCell { score: 100, i: 10, j: 10 };
        // Local max up-left of global: no termination regardless of drop.
        let l = MaxCell { score: -100, i: 5, j: 12 };
        assert!(!zdrop_triggered(g, l, 10, 2));
        let l2 = MaxCell { score: -100, i: 12, j: 12 };
        assert!(zdrop_triggered(g, l2, 10, 2));
        // Gap-adjusted threshold: drop of 20, |Δi-Δj| = 4 → 10 + 2*4 = 18 < 20.
        let l3 = MaxCell { score: 80, i: 16, j: 12 };
        assert!(zdrop_triggered(g, l3, 10, 2));
        // Same drop, threshold 12 + 2*4 = 20: not strictly greater → no stop.
        assert!(!zdrop_triggered(g, l3, 12, 2));
    }

    #[test]
    fn workspace_reuse_is_clean() {
        let s = Scoring::figure1();
        let mut ws = GuidedWorkspace::new();
        let r1 = guided_align_ws(&seq("ACGTACGT"), &seq("ACGTACGT"), &s, &mut ws);
        // Run a longer task, then the first again: identical results.
        let _ = guided_align_ws(&seq(&"ACGT".repeat(20)), &seq(&"ACGA".repeat(20)), &s, &mut ws);
        let r2 = guided_align_ws(&seq("ACGTACGT"), &seq("ACGTACGT"), &s, &mut ws);
        assert_eq!(r1, r2);
    }
}
