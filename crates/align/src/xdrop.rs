//! X-drop alignment with an adaptive band — the guiding heuristic of LOGAN
//! (§5.2, [57]), which "adjusts the band width during score table filling
//! after calculating each anti-diagonal".
//!
//! LOGAN uses a *linear* gap score ("maintains a gap score that is less
//! expensive in both computation and memory", §5.3), so this module
//! deliberately implements linear gaps, unlike the affine engines. Its
//! results are *not* expected to match the Minimap2 reference — it is a
//! Diff-Target baseline with its own semantics, validated against its own
//! properties.

use crate::pack::PackedSeq;
use crate::result::MaxCell;
use crate::scoring::Scoring;
use crate::NEG_INF;

/// Outcome of an X-drop alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XDropResult {
    /// Best score found (>= 0; the empty extension scores 0).
    pub score: i32,
    /// Cell achieving the best score.
    pub max: MaxCell,
    /// Anti-diagonals processed before the band emptied (or table ended).
    pub antidiags: u32,
    /// Cells computed (the engine's actual workload).
    pub cells: u64,
    /// Widest instantaneous band encountered (cells on one anti-diagonal).
    pub max_band: u32,
}

/// Parameters for the X-drop heuristic.
#[derive(Debug, Clone, Copy)]
pub struct XDropParams {
    /// Drop threshold `X`: cells scoring below `best - X` are pruned from
    /// the band edges.
    pub xdrop: i32,
    /// Linear gap penalty per gapped base.
    pub gap: i32,
    /// Hard cap on the adaptive band width (cells per anti-diagonal);
    /// `u32::MAX` for uncapped.
    pub max_band: u32,
}

impl XDropParams {
    /// Derive LOGAN-style parameters from an affine scoring scheme: the
    /// X threshold reuses the Z-drop threshold and the linear gap penalty
    /// approximates one gap-extension step.
    pub fn from_scoring(s: &Scoring) -> XDropParams {
        XDropParams {
            xdrop: if s.zdrop_enabled() { s.zdrop } else { i32::MAX / 4 },
            gap: s.gap_open.min(s.gap_extend).max(1) + s.gap_extend,
            max_band: if s.banded() { (2 * s.band_width + 1) as u32 } else { u32::MAX },
        }
    }
}

/// X-drop extension alignment with linear gaps and an adaptive band.
pub fn xdrop_align(
    reference: &PackedSeq,
    query: &PackedSeq,
    scoring: &Scoring,
    params: &XDropParams,
) -> XDropResult {
    let n = reference.len() as i64;
    let m = query.len() as i64;
    if n == 0 || m == 0 {
        return XDropResult { score: 0, max: MaxCell::ORIGIN, antidiags: 0, cells: 0, max_band: 0 };
    }
    let rcodes = reference.to_codes();
    let qcodes = query.to_codes();
    let gap = params.gap;

    // Active i-range on the current anti-diagonal (inclusive); H values of
    // the previous two diagonals indexed by i.
    let mut prev = vec![NEG_INF; n as usize];
    let mut prev2 = vec![NEG_INF; n as usize];
    let mut cur = vec![NEG_INF; n as usize];

    let mut best = MaxCell::ORIGIN;
    let mut lo: i64 = 0;
    let mut hi: i64 = 0;
    let mut cells = 0u64;
    let mut max_band = 0u32;
    let mut antidiags = 0u32;

    for c in 0..(n + m - 1) {
        // Clip to the table.
        let clo = lo.max(0).max(c - m + 1);
        let chi = hi.min(n - 1).min(c);
        if clo > chi {
            break;
        }
        antidiags = c as u32 + 1;
        max_band = max_band.max((chi - clo + 1) as u32);

        let mut diag_best = NEG_INF;
        for i in clo..=chi {
            let j = c - i;
            let iu = i as usize;
            let up = if i == 0 { -(gap * (j as i32 + 1)) } else { prev[iu - 1] - gap };
            let left = if j == 0 { -(gap * (i as i32 + 1)) } else { prev[iu] - gap };
            let dg = if i == 0 && j == 0 {
                0
            } else if i == 0 {
                -(gap * j as i32)
            } else if j == 0 {
                -(gap * i as i32)
            } else {
                prev2[iu - 1]
            };
            let sub =
                crate::scoring::Scoring::substitution(scoring, rcodes[iu], qcodes[j as usize]);
            let h = up.max(left).max(dg.saturating_add(sub));
            cur[iu] = h;
            cells += 1;
            if h > diag_best {
                diag_best = h;
            }
            if h > best.score {
                best = MaxCell { score: h, i: i as i32, j: j as i32 };
            }
        }

        // Trim band edges below best - X.
        let threshold = best.score.saturating_sub(params.xdrop);
        let mut new_lo = clo;
        while new_lo <= chi && cur[new_lo as usize] < threshold {
            new_lo += 1;
        }
        let mut new_hi = chi;
        while new_hi >= new_lo && cur[new_hi as usize] < threshold {
            new_hi -= 1;
        }
        if new_lo > new_hi {
            break; // every cell dropped: terminate
        }
        // Enforce the band cap symmetrically around the per-diagonal max.
        if (new_hi - new_lo + 1) as u32 > params.max_band {
            let half = params.max_band as i64 / 2;
            let center = (new_lo + new_hi) / 2;
            new_lo = new_lo.max(center - half);
            new_hi = new_hi.min(new_lo + params.max_band as i64 - 1);
        }

        // Sentinels for reads one past the written range on later diagonals.
        if clo > 0 {
            cur[clo as usize - 1] = NEG_INF;
        }
        if chi + 1 < n {
            cur[chi as usize + 1] = NEG_INF;
        }

        // Next diagonal may grow one cell at each end.
        lo = new_lo;
        hi = new_hi + 1;

        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut cur);
    }

    XDropResult { score: best.score, max: best, antidiags, cells, max_band }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> PackedSeq {
        PackedSeq::from_str_seq(s)
    }

    fn params(x: i32, gap: i32) -> XDropParams {
        XDropParams { xdrop: x, gap, max_band: u32::MAX }
    }

    #[test]
    fn perfect_match() {
        let s = Scoring::figure1();
        let r = xdrop_align(&seq("ACGTACGT"), &seq("ACGTACGT"), &s, &params(100, 3));
        assert_eq!(r.score, 16);
        assert_eq!((r.max.i, r.max.j), (7, 7));
    }

    #[test]
    fn mismatch_scoring_linear_gap() {
        // One insertion with linear gap 3: 8*2 - 3 = 13
        let s = Scoring::figure1(); // +2 / -4
        let r = xdrop_align(&seq("AAAACCCC"), &seq("AAAAGCCCC"), &s, &params(100, 3));
        assert_eq!(r.score, 13);
    }

    #[test]
    fn xdrop_terminates_early_on_junk() {
        let s = Scoring::figure1();
        let pref = "ACGTACGTACGTACGT";
        let r_full = format!("{pref}{}", "G".repeat(64));
        let q_full = format!("{pref}{}", "C".repeat(64));
        let tight = xdrop_align(&seq(&r_full), &seq(&q_full), &s, &params(8, 3));
        assert_eq!(tight.score, 32);
        assert!(
            (tight.antidiags as usize) < r_full.len() + q_full.len() - 1,
            "expected early termination, processed {} diagonals",
            tight.antidiags
        );
        let loose = xdrop_align(&seq(&r_full), &seq(&q_full), &s, &params(10_000, 3));
        assert!(loose.antidiags >= tight.antidiags);
        assert!(loose.cells > tight.cells);
    }

    #[test]
    fn adaptive_band_narrower_than_full_table() {
        let s = Scoring::figure1();
        let a = "ACGT".repeat(32);
        let r = xdrop_align(&seq(&a), &seq(&a), &s, &params(6, 3));
        // With a tight X the band stays narrow on a perfect match.
        assert!(r.max_band < 32, "band grew to {}", r.max_band);
        assert_eq!(r.score, 2 * a.len() as i32);
    }

    #[test]
    fn band_cap_respected() {
        let s = Scoring::figure1();
        let a = "ACGT".repeat(32);
        let p = XDropParams { xdrop: 1000, gap: 3, max_band: 9 };
        let r = xdrop_align(&seq(&a), &seq(&a), &s, &p);
        assert!(r.max_band <= 9 + 2, "band {} exceeded cap", r.max_band);
    }

    #[test]
    fn from_scoring_derivation() {
        let p = XDropParams::from_scoring(&Scoring::preset_clr());
        assert_eq!(p.xdrop, 400);
        assert_eq!(p.max_band, 801);
    }
}
