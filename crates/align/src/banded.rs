//! Row-major banded DP (no termination) — a second, independently-ordered
//! implementation of the banded recurrences.
//!
//! Two purposes: (a) cross-validate the anti-diagonal reference (different
//! iteration order must give identical results), and (b) serve as the
//! alignment semantics of the *Diff-Target* GPU baselines, which implement
//! banding but not the Z-drop termination (GASAL2's banded kernel, SALoBa
//! with banding — §5.2).

use crate::diag::DiagTracker;
use crate::pack::PackedSeq;
use crate::result::GuidedResult;
use crate::scoring::Scoring;
use crate::NEG_INF;

/// Banded alignment without the termination condition, filled row by row.
///
/// The `zdrop` field of `scoring` is ignored (treated as disabled); banding
/// is honoured. Results are produced through the same [`DiagTracker`]
/// machinery as every other engine, so maxima/tie-breaks are canonical.
pub fn banded_align(reference: &PackedSeq, query: &PackedSeq, scoring: &Scoring) -> GuidedResult {
    let no_term = scoring.with_zdrop(Scoring::NO_ZDROP);
    let n = reference.len();
    let m = query.len();
    let mut tracker = DiagTracker::new(n, m, &no_term);
    if n == 0 || m == 0 {
        return tracker.result();
    }
    let (ni, mi) = (n as i64, m as i64);
    let w = if no_term.banded() { no_term.band_width as i64 } else { ni + mi };
    let oe = no_term.gap_open + no_term.gap_extend;
    let ext = no_term.gap_extend;

    let rcodes = reference.to_codes();
    let qcodes = query.to_codes();

    // Row i-1 state, indexed by j: H and E.
    let mut h_row = vec![NEG_INF; m];
    let mut e_row = vec![NEG_INF; m];

    for i in 0..ni {
        let j_lo = (i - w).max(0);
        let j_hi = (i + w).min(mi - 1);
        if j_lo > j_hi {
            continue;
        }
        let mut left_h;
        let mut left_f;
        let mut diag;
        if j_lo == 0 {
            left_h = no_term.border(i as i32);
            left_f = NEG_INF;
            diag = if i == 0 { 0 } else { no_term.border((i - 1) as i32) };
        } else {
            left_h = NEG_INF; // (i, j_lo - 1) is out of band
            left_f = NEG_INF;
            // (i-1, j_lo-1): |i-1 - (j_lo-1)| = |i - j_lo| <= w → in band,
            // so read it from the previous row (or border when i == 0).
            diag =
                if i == 0 { no_term.border((j_lo - 1) as i32) } else { h_row[(j_lo - 1) as usize] };
        }
        for j in j_lo..=j_hi {
            let ju = j as usize;
            // (i-1, j): in band iff |i-1-j| <= w; at j = i+w it is not.
            let (up_h, up_e) = if i == 0 {
                (no_term.border(j as i32), NEG_INF)
            } else if (i - 1 - j).abs() <= w {
                (h_row[ju], e_row[ju])
            } else {
                (NEG_INF, NEG_INF)
            };

            let e = (up_h - oe).max(up_e - ext);
            let f = (left_h - oe).max(left_f - ext);
            let sub = no_term.substitution(rcodes[i as usize], qcodes[ju]);
            let h = e.max(f).max(diag.saturating_add(sub));

            tracker.on_cell(i as i32, j as i32, h);

            diag = up_h;
            h_row[ju] = h;
            e_row[ju] = e;
            left_h = h;
            left_f = f;
        }
        // Cells left of the band on the next row must read -∞.
        if j_lo > 0 {
            h_row[(j_lo - 1) as usize] = NEG_INF;
            e_row[(j_lo - 1) as usize] = NEG_INF;
        }
    }
    tracker.result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guided::guided_align;

    fn seq(s: &str) -> PackedSeq {
        PackedSeq::from_str_seq(s)
    }

    fn check(r: &str, q: &str, scoring: &Scoring) {
        let (r, q) = (seq(r), seq(q));
        let want = guided_align(&r, &q, &scoring.with_zdrop(Scoring::NO_ZDROP));
        let got = banded_align(&r, &q, scoring);
        assert!(got.same_alignment(&want), "\nrow-major: {got:?}\nanti-diag: {want:?}");
    }

    #[test]
    fn agrees_unbanded() {
        let s = Scoring::figure1();
        check("AGATAGAT", "AGACTATC", &s);
        check("ACGTACGTACGT", "ACGTTACGT", &s);
    }

    #[test]
    fn agrees_banded() {
        let s = Scoring::new(2, 4, 4, 2, Scoring::NO_ZDROP, 2);
        check("ACGTACGTACGTACGT", "ACGTACGTACGTACGT", &s);
        check("ACGTACGTACGTACGTACGT", "ACGTACG", &s);
        check("AC", "ACGTACGTACGTACGTACGT", &s);
    }

    #[test]
    fn ignores_zdrop() {
        let s = Scoring::new(2, 4, 4, 2, 4, 8);
        // Z-drop would trigger on this input, but banded_align must not stop.
        let r = "ACGTACGTGGGGGGGGGGGGGGGG";
        let q = "ACGTACGTCCCCCCCCCCCCCCCC";
        let got = banded_align(&seq(r), &seq(q), &s);
        assert_eq!(got.stop.antidiag(), None);
    }

    #[test]
    fn band_one() {
        let s = Scoring::new(2, 4, 4, 2, Scoring::NO_ZDROP, 1);
        check("ACGTACGTAC", "ACGTACGTAC", &s);
    }
}
