//! # agatha-align
//!
//! Sequence-alignment substrate for the AGAThA reproduction.
//!
//! This crate is the *ground truth* layer: it defines the sequence
//! representation (including the 4-bit input packing from GASAL2 that the
//! GPU kernels rely on), the affine-gap scoring model, and several scalar
//! reference implementations of the dynamic-programming recurrences from the
//! paper (Eq. 1–3):
//!
//! ```text
//! H(i,j) = max{ E(i,j), F(i,j), H(i-1,j-1) + S(R[i], Q[j]) }
//! E(i,j) = max{ H(i-1,j) - α, E(i-1,j) - β }     (gaps along the reference)
//! F(i,j) = max{ H(i,j-1) - α, F(i,j-1) - β }     (gaps along the query)
//! ```
//!
//! together with the *guiding strategy*: banding (`|i - j| ≤ w`) and the
//! Z-drop termination condition (Eq. 4–7), evaluated anti-diagonal by
//! anti-diagonal.
//!
//! Every engine in the workspace — the AGAThA kernel and all GPU baselines —
//! must produce results identical to [`guided::guided_align`]; the
//! [`diag::DiagTracker`] in this crate is the shared mechanism that makes the
//! termination semantics independent of tiling/execution order.

pub mod banded;
pub mod base;
pub mod block;
pub mod diag;
pub mod guided;
pub mod matrix;
pub mod pack;
pub mod profile;
pub mod result;
pub mod scoring;
pub mod simd;
pub mod task;
pub mod traceback;
pub mod xdrop;

pub use base::Base;
pub use block::{
    BlockCells, BlockCells16, BlockCells16Wide, BlockCellsT, BlockCellsWide, BlockDim, FillMode,
    FillPrecision, FillTier,
};
pub use pack::PackedSeq;
pub use profile::QueryProfile;
pub use result::{GuidedResult, MaxCell};
pub use scoring::{ScoreModel, Scoring, SubstMatrix, BLOSUM62};
pub use task::{check_dims, Task, MAX_SEQ_LEN};

/// Sentinel for "minus infinity" in score space.
///
/// Chosen as `i32::MIN / 2` so that subtracting gap penalties from it can
/// never wrap around.
pub const NEG_INF: i32 = i32::MIN / 2;

/// Default side length of the square cell block used by all GPU-style
/// engines.
///
/// The paper packs 8 literals per 32-bit word (4 bits each) and configures
/// the score table "in units of blocks comprising 8×8 cells, which forms the
/// smallest unit for workload distribution" (§2.2). The block layer is
/// parameterized over the side (`B ∈ {8, 16}`, see [`MAX_BLOCK`]); this is
/// the paper's geometry and the default.
pub const BLOCK: usize = 8;

/// Widest supported block side: the 16×16 geometry whose block
/// anti-diagonals fill all 16 lanes of an AVX2 i16 vector (the 8×8 geometry
/// leaves half of them empty in the narrow tier).
pub const MAX_BLOCK: usize = 16;

/// Number of anti-diagonals crossing one [`MAX_BLOCK`]-sided block
/// (`2 × 16 − 1`). Staging buffers are sized for this widest geometry at
/// every `B` (stable Rust cannot express `[[T; B]; 2*B-1]`); only the first
/// `2B−1` rows are used.
pub const MAX_BLOCK_DIAGS: usize = 31;
