//! 4-bit input packing (§2.2, "Input Packing").
//!
//! Genome sequences use only five literals, so four bits suffice per base.
//! GPUs move 32-bit words, so eight bases are packed per `u32`. The packed
//! word is also the natural unit for the 8×8 cell blocks used by all the
//! GPU-style engines: one reference word × one query word covers one block.

use crate::base::Base;
#[cfg(test)]
use crate::{BLOCK, MAX_BLOCK};

/// Bases per packed 32-bit word.
pub const BASES_PER_WORD: usize = 8;
/// Bits per packed base.
pub const BITS_PER_BASE: u32 = 4;
/// Mask extracting one base from a word.
pub const BASE_MASK: u32 = 0xF;

/// An immutable DNA sequence packed at 4 bits per base.
///
/// Base `i` lives in bits `[4*(i%8), 4*(i%8)+4)` of word `i/8`; unused tail
/// nibbles of the final word are filled with the `N` code so that whole-word
/// loads (as a GPU block would issue) read deterministic data.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PackedSeq {
    words: Vec<u32>,
    len: usize,
}

impl PackedSeq {
    /// Pack a slice of base codes (0–4; anything larger is clamped to `N`).
    pub fn from_codes(codes: &[u8]) -> PackedSeq {
        let mut words = vec![0u32; codes.len().div_ceil(BASES_PER_WORD)];
        for (i, &c) in codes.iter().enumerate() {
            let code = if c > 4 { Base::N.code() } else { c } as u32;
            words[i / BASES_PER_WORD] |= code << (BITS_PER_BASE * (i % BASES_PER_WORD) as u32);
        }
        // Fill the tail with N so whole-word block loads are deterministic.
        let tail_start = codes.len() % BASES_PER_WORD;
        if tail_start != 0 {
            let last = words.len() - 1;
            for k in tail_start..BASES_PER_WORD {
                words[last] |= (Base::N.code() as u32) << (BITS_PER_BASE * k as u32);
            }
        }
        PackedSeq { words, len: codes.len() }
    }

    /// Pack from an ASCII string (characters outside `ACGTU` become `N`).
    pub fn from_str_seq(s: &str) -> PackedSeq {
        PackedSeq::from_codes(&crate::base::codes_from_str(s))
    }

    /// Pack from typed bases.
    pub fn from_bases(bases: &[Base]) -> PackedSeq {
        let codes: Vec<u8> = bases.iter().map(|b| b.code()).collect();
        PackedSeq::from_codes(&codes)
    }

    /// Number of bases.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of packed 32-bit words.
    #[inline]
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Raw packed words.
    #[inline]
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Base code at position `i` (0–4). Panics if out of range.
    #[inline]
    pub fn code(&self, i: usize) -> u8 {
        debug_assert!(i < self.len, "base index {i} out of range (len {})", self.len);
        ((self.words[i / BASES_PER_WORD] >> (BITS_PER_BASE * (i % BASES_PER_WORD) as u32))
            & BASE_MASK) as u8
    }

    /// Typed base at position `i`.
    #[inline]
    pub fn base(&self, i: usize) -> Base {
        Base::from_code(self.code(i))
    }

    /// The packed word containing base `i` — the unit a GPU block load
    /// would fetch. Out-of-range words read as all-`N`.
    #[inline]
    pub fn word_for(&self, i: usize) -> u32 {
        self.words.get(i / BASES_PER_WORD).copied().unwrap_or({
            // all-N filler word: 0x44444444
            const N4: u32 = {
                let n = Base::N as u32;
                n | n << 4 | n << 8 | n << 12 | n << 16 | n << 20 | n << 24 | n << 28
            };
            N4
        })
    }

    /// Unpack `B` consecutive base codes starting at `start` into `out`
    /// (one block edge of either geometry), clamping out-of-range positions
    /// to `N`. This mirrors how a GPU thread expands packed words into
    /// registers when entering a block.
    #[inline]
    pub fn unpack_block<const B: usize>(&self, start: usize, out: &mut [u8; B]) {
        for (k, slot) in out.iter_mut().enumerate() {
            let i = start + k;
            *slot = if i < self.len { self.code(i) } else { Base::N.code() };
        }
    }

    /// Unpack the whole sequence to base codes.
    pub fn to_codes(&self) -> Vec<u8> {
        (0..self.len).map(|i| self.code(i)).collect()
    }

    /// Render as an ASCII string.
    pub fn to_string_seq(&self) -> String {
        (0..self.len).map(|i| self.base(i).to_char()).collect()
    }

    /// Sub-sequence `[start, start+len)` as a new packed sequence.
    ///
    /// Packing is not bit-aligned across word boundaries, so this re-packs;
    /// it is intended for task extraction, not hot loops.
    pub fn slice(&self, start: usize, len: usize) -> PackedSeq {
        assert!(start + len <= self.len, "slice out of range");
        let codes: Vec<u8> = (start..start + len).map(|i| self.code(i)).collect();
        PackedSeq::from_codes(&codes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::codes_from_str;

    #[test]
    fn pack_unpack_roundtrip() {
        let codes = codes_from_str("AGATACGATNNCGTACGGTTACA");
        let p = PackedSeq::from_codes(&codes);
        assert_eq!(p.len(), codes.len());
        assert_eq!(p.to_codes(), codes);
    }

    #[test]
    fn word_count_matches() {
        assert_eq!(PackedSeq::from_codes(&[0; 8]).num_words(), 1);
        assert_eq!(PackedSeq::from_codes(&[0; 9]).num_words(), 2);
        assert_eq!(PackedSeq::from_codes(&[]).num_words(), 0);
    }

    #[test]
    fn tail_padding_is_n() {
        let p = PackedSeq::from_codes(&codes_from_str("AGA"));
        let w = p.words()[0];
        for k in 3..8 {
            assert_eq!((w >> (4 * k)) & 0xF, Base::N.code() as u32);
        }
    }

    #[test]
    fn out_of_range_word_is_all_n() {
        let p = PackedSeq::from_codes(&codes_from_str("ACGT"));
        assert_eq!(p.word_for(100), 0x44444444);
    }

    #[test]
    fn unpack_block_clamps() {
        let p = PackedSeq::from_str_seq("ACG");
        let mut out = [0u8; BLOCK];
        p.unpack_block(1, &mut out);
        assert_eq!(out[0], Base::C.code());
        assert_eq!(out[1], Base::G.code());
        for &c in &out[2..] {
            assert_eq!(c, Base::N.code());
        }
        // Wide-geometry unpack spans two packed words and clamps the same.
        let mut wide = [0u8; MAX_BLOCK];
        p.unpack_block(0, &mut wide);
        assert_eq!(&wide[..3], &[Base::A.code(), Base::C.code(), Base::G.code()]);
        for &c in &wide[3..] {
            assert_eq!(c, Base::N.code());
        }
    }

    #[test]
    fn slice_matches_codes() {
        let codes = codes_from_str("AGATACGATACGTACGGTTACA");
        let p = PackedSeq::from_codes(&codes);
        let s = p.slice(5, 9);
        assert_eq!(s.to_codes(), &codes[5..14]);
    }

    #[test]
    fn invalid_codes_clamp() {
        let p = PackedSeq::from_codes(&[9, 200]);
        assert_eq!(p.code(0), Base::N.code());
        assert_eq!(p.code(1), Base::N.code());
    }

    #[test]
    fn empty_sequence() {
        for p in
            [PackedSeq::from_codes(&[]), PackedSeq::from_str_seq(""), PackedSeq::from_bases(&[])]
        {
            assert_eq!(p.len(), 0);
            assert!(p.is_empty());
            assert_eq!(p.num_words(), 0);
            assert!(p.to_codes().is_empty());
            assert_eq!(p.to_string_seq(), "");
            // Whole-word loads past the end still read all-N filler.
            assert_eq!(p.word_for(0), 0x44444444);
            let mut out = [0u8; BLOCK];
            p.unpack_block(0, &mut out);
            assert!(out.iter().all(|&c| c == Base::N.code()));
            assert_eq!(p.slice(0, 0).len(), 0);
        }
    }

    #[test]
    fn ambiguous_bases_roundtrip() {
        // 'N', lowercase and unknown letters all pack as the N code and
        // render back as 'N'.
        let p = PackedSeq::from_str_seq("NnXacgt?RYSW");
        assert_eq!(p.to_string_seq(), "NNNACGTNNNNN");
        assert!(p.to_codes()[..3].iter().all(|&c| c == Base::N.code()));
        // Interior N codes survive a code-level round trip unchanged.
        let codes = [4u8, 0, 4, 1, 4, 2, 4, 3, 4];
        assert_eq!(PackedSeq::from_codes(&codes).to_codes(), codes);
    }

    #[test]
    fn non_multiple_of_word_lengths_roundtrip() {
        // Every length around the 8-base word boundary packs losslessly and
        // pads its final word with N.
        for len in 0..=33usize {
            let codes: Vec<u8> = (0..len).map(|i| (i % 5) as u8).collect();
            let p = PackedSeq::from_codes(&codes);
            assert_eq!(p.len(), len);
            assert_eq!(p.num_words(), len.div_ceil(BASES_PER_WORD));
            assert_eq!(p.to_codes(), codes, "len {len}");
            let tail = len % BASES_PER_WORD;
            if tail != 0 {
                let w = p.words()[p.num_words() - 1];
                for k in tail..BASES_PER_WORD {
                    assert_eq!(
                        (w >> (BITS_PER_BASE * k as u32)) & BASE_MASK,
                        Base::N.code() as u32,
                        "len {len}, nibble {k}"
                    );
                }
            }
        }
    }
}
