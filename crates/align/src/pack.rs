//! 4-bit input packing (§2.2, "Input Packing").
//!
//! Genome sequences use only five literals, so four bits suffice per base.
//! GPUs move 32-bit words, so eight bases are packed per `u32`. The packed
//! word is also the natural unit for the 8×8 cell blocks used by all the
//! GPU-style engines: one reference word × one query word covers one block.
//!
//! Protein alphabets (21 residue codes for BLOSUM62-class matrices) do not
//! fit four bits, so a [`PackedSeq`] carries its bit width (4 for DNA, 8
//! for protein) and its pad code (`N` for DNA, `X` for protein) per
//! instance; all the DNA constructors keep the historical 4-bit layout
//! bit-for-bit.

use crate::base::Base;
use crate::scoring::SubstMatrix;
#[cfg(test)]
use crate::{BLOCK, MAX_BLOCK};

/// Bases per packed 32-bit word at the default (DNA, 4-bit) width.
pub const BASES_PER_WORD: usize = 8;
/// Bits per packed base at the default (DNA) width.
pub const BITS_PER_BASE: u32 = 4;
/// Mask extracting one base from a word at the default (DNA) width.
pub const BASE_MASK: u32 = 0xF;

/// An immutable residue sequence packed at `bits` bits per code (4 for the
/// five-letter DNA alphabet, 8 for protein alphabets).
///
/// Code `i` lives in bits `[bits*(i%per), bits*(i%per)+bits)` of word
/// `i/per` (`per = 32/bits`); unused tail slots of the final word are
/// filled with the pad code so that whole-word loads (as a GPU block would
/// issue) read deterministic data.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PackedSeq {
    words: Vec<u32>,
    len: usize,
    bits: u32,
    pad: u8,
}

impl PackedSeq {
    /// Pack a slice of DNA base codes (0–4; anything larger is clamped to
    /// `N`) at the default 4-bit width.
    pub fn from_codes(codes: &[u8]) -> PackedSeq {
        PackedSeq::from_codes_wide(codes, BITS_PER_BASE, Base::N.code())
    }

    /// Pack a slice of residue codes at an explicit bit width with an
    /// explicit pad code (codes above `pad` are clamped to `pad`; the pad
    /// code itself must fit `bits`). `bits` must divide 32.
    pub fn from_codes_wide(codes: &[u8], bits: u32, pad: u8) -> PackedSeq {
        assert!(bits > 0 && 32 % bits == 0, "bits must divide 32, got {bits}");
        assert!(
            u32::from(pad) < (1u32 << bits).min(256),
            "pad code {pad} does not fit {bits} bits"
        );
        let per = (32 / bits) as usize;
        let mut words = vec![0u32; codes.len().div_ceil(per)];
        for (i, &c) in codes.iter().enumerate() {
            let code = u32::from(if c > pad { pad } else { c });
            words[i / per] |= code << (bits * (i % per) as u32);
        }
        // Fill the tail with the pad code so whole-word block loads are
        // deterministic.
        let tail_start = codes.len() % per;
        if tail_start != 0 {
            let last = words.len() - 1;
            for k in tail_start..per {
                words[last] |= u32::from(pad) << (bits * k as u32);
            }
        }
        PackedSeq { words, len: codes.len(), bits, pad }
    }

    /// Pack protein residue codes for a substitution matrix: 8 bits per
    /// code, padded with the matrix's ambiguous residue (`X`).
    pub fn from_protein_codes(codes: &[u8], matrix: &SubstMatrix) -> PackedSeq {
        PackedSeq::from_codes_wide(codes, 8, matrix.pad_code())
    }

    /// Pack a protein sequence from an ASCII string under a substitution
    /// matrix's alphabet (unknown characters become the ambiguous residue).
    pub fn from_protein_str(s: &str, matrix: &SubstMatrix) -> PackedSeq {
        PackedSeq::from_protein_codes(&matrix.codes_from_str(s), matrix)
    }

    /// Pack from an ASCII string (characters outside `ACGTU` become `N`).
    pub fn from_str_seq(s: &str) -> PackedSeq {
        PackedSeq::from_codes(&crate::base::codes_from_str(s))
    }

    /// Pack from typed bases.
    pub fn from_bases(bases: &[Base]) -> PackedSeq {
        let codes: Vec<u8> = bases.iter().map(|b| b.code()).collect();
        PackedSeq::from_codes(&codes)
    }

    /// Number of bases.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of packed 32-bit words.
    #[inline]
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Raw packed words.
    #[inline]
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Bits per packed code (4 for DNA, 8 for protein).
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Pad code filling tail slots and out-of-range reads (`N` for DNA,
    /// the ambiguous residue for protein).
    #[inline]
    pub fn pad(&self) -> u8 {
        self.pad
    }

    /// Residue code at position `i`. Panics if out of range.
    #[inline]
    pub fn code(&self, i: usize) -> u8 {
        debug_assert!(i < self.len, "base index {i} out of range (len {})", self.len);
        let per = (32 / self.bits) as usize;
        let mask = (1u32 << self.bits).wrapping_sub(1);
        ((self.words[i / per] >> (self.bits * (i % per) as u32)) & mask) as u8
    }

    /// Typed base at position `i`.
    #[inline]
    pub fn base(&self, i: usize) -> Base {
        Base::from_code(self.code(i))
    }

    /// The packed word containing base `i` — the unit a GPU block load
    /// would fetch. Out-of-range words read as all-pad (all-`N` for DNA:
    /// `0x44444444`).
    #[inline]
    pub fn word_for(&self, i: usize) -> u32 {
        let per = (32 / self.bits) as usize;
        self.words.get(i / per).copied().unwrap_or_else(|| {
            let mut filler = 0u32;
            for k in 0..per {
                filler |= u32::from(self.pad) << (self.bits * k as u32);
            }
            filler
        })
    }

    /// Unpack `B` consecutive base codes starting at `start` into `out`
    /// (one block edge of either geometry), clamping out-of-range positions
    /// to the pad code (`N` for DNA). This mirrors how a GPU thread expands
    /// packed words into registers when entering a block.
    #[inline]
    pub fn unpack_block<const B: usize>(&self, start: usize, out: &mut [u8; B]) {
        for (k, slot) in out.iter_mut().enumerate() {
            let i = start + k;
            *slot = if i < self.len { self.code(i) } else { self.pad };
        }
    }

    /// Unpack the whole sequence to base codes.
    pub fn to_codes(&self) -> Vec<u8> {
        (0..self.len).map(|i| self.code(i)).collect()
    }

    /// Render as an ASCII string.
    pub fn to_string_seq(&self) -> String {
        (0..self.len).map(|i| self.base(i).to_char()).collect()
    }

    /// Sub-sequence `[start, start+len)` as a new packed sequence.
    ///
    /// Packing is not bit-aligned across word boundaries, so this re-packs;
    /// it is intended for task extraction, not hot loops.
    pub fn slice(&self, start: usize, len: usize) -> PackedSeq {
        assert!(start + len <= self.len, "slice out of range");
        let codes: Vec<u8> = (start..start + len).map(|i| self.code(i)).collect();
        PackedSeq::from_codes_wide(&codes, self.bits, self.pad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::codes_from_str;

    #[test]
    fn pack_unpack_roundtrip() {
        let codes = codes_from_str("AGATACGATNNCGTACGGTTACA");
        let p = PackedSeq::from_codes(&codes);
        assert_eq!(p.len(), codes.len());
        assert_eq!(p.to_codes(), codes);
    }

    #[test]
    fn word_count_matches() {
        assert_eq!(PackedSeq::from_codes(&[0; 8]).num_words(), 1);
        assert_eq!(PackedSeq::from_codes(&[0; 9]).num_words(), 2);
        assert_eq!(PackedSeq::from_codes(&[]).num_words(), 0);
    }

    #[test]
    fn tail_padding_is_n() {
        let p = PackedSeq::from_codes(&codes_from_str("AGA"));
        let w = p.words()[0];
        for k in 3..8 {
            assert_eq!((w >> (4 * k)) & 0xF, Base::N.code() as u32);
        }
    }

    #[test]
    fn out_of_range_word_is_all_n() {
        let p = PackedSeq::from_codes(&codes_from_str("ACGT"));
        assert_eq!(p.word_for(100), 0x44444444);
    }

    #[test]
    fn unpack_block_clamps() {
        let p = PackedSeq::from_str_seq("ACG");
        let mut out = [0u8; BLOCK];
        p.unpack_block(1, &mut out);
        assert_eq!(out[0], Base::C.code());
        assert_eq!(out[1], Base::G.code());
        for &c in &out[2..] {
            assert_eq!(c, Base::N.code());
        }
        // Wide-geometry unpack spans two packed words and clamps the same.
        let mut wide = [0u8; MAX_BLOCK];
        p.unpack_block(0, &mut wide);
        assert_eq!(&wide[..3], &[Base::A.code(), Base::C.code(), Base::G.code()]);
        for &c in &wide[3..] {
            assert_eq!(c, Base::N.code());
        }
    }

    #[test]
    fn slice_matches_codes() {
        let codes = codes_from_str("AGATACGATACGTACGGTTACA");
        let p = PackedSeq::from_codes(&codes);
        let s = p.slice(5, 9);
        assert_eq!(s.to_codes(), &codes[5..14]);
    }

    #[test]
    fn invalid_codes_clamp() {
        let p = PackedSeq::from_codes(&[9, 200]);
        assert_eq!(p.code(0), Base::N.code());
        assert_eq!(p.code(1), Base::N.code());
    }

    #[test]
    fn empty_sequence() {
        for p in
            [PackedSeq::from_codes(&[]), PackedSeq::from_str_seq(""), PackedSeq::from_bases(&[])]
        {
            assert_eq!(p.len(), 0);
            assert!(p.is_empty());
            assert_eq!(p.num_words(), 0);
            assert!(p.to_codes().is_empty());
            assert_eq!(p.to_string_seq(), "");
            // Whole-word loads past the end still read all-N filler.
            assert_eq!(p.word_for(0), 0x44444444);
            let mut out = [0u8; BLOCK];
            p.unpack_block(0, &mut out);
            assert!(out.iter().all(|&c| c == Base::N.code()));
            assert_eq!(p.slice(0, 0).len(), 0);
        }
    }

    #[test]
    fn ambiguous_bases_roundtrip() {
        // 'N', lowercase and unknown letters all pack as the N code and
        // render back as 'N'.
        let p = PackedSeq::from_str_seq("NnXacgt?RYSW");
        assert_eq!(p.to_string_seq(), "NNNACGTNNNNN");
        assert!(p.to_codes()[..3].iter().all(|&c| c == Base::N.code()));
        // Interior N codes survive a code-level round trip unchanged.
        let codes = [4u8, 0, 4, 1, 4, 2, 4, 3, 4];
        assert_eq!(PackedSeq::from_codes(&codes).to_codes(), codes);
    }

    #[test]
    fn wide_packing_roundtrip_and_pads() {
        use crate::scoring::BLOSUM62;
        // 8-bit protein packing: 4 codes per word, pad = X (20).
        let codes: Vec<u8> = (0..21u8).collect();
        let p = PackedSeq::from_protein_codes(&codes, &BLOSUM62);
        assert_eq!(p.bits(), 8);
        assert_eq!(p.pad(), 20);
        assert_eq!(p.len(), 21);
        assert_eq!(p.num_words(), 6);
        assert_eq!(p.to_codes(), codes);
        // Final word tail slots hold the pad code.
        let w = p.words()[5];
        assert_eq!((w >> 8) & 0xFF, 20);
        assert_eq!((w >> 16) & 0xFF, 20);
        assert_eq!((w >> 24) & 0xFF, 20);
        // Out-of-range word reads as all-pad, and block unpack clamps to pad.
        assert_eq!(p.word_for(100), 0x14141414);
        let mut out = [0u8; BLOCK];
        p.unpack_block(19, &mut out);
        assert_eq!(out[0], 19);
        assert_eq!(out[1], 20);
        assert!(out[2..].iter().all(|&c| c == 20));
        // Out-of-alphabet codes clamp to pad; slices keep the wide layout.
        let clamped = PackedSeq::from_protein_codes(&[255, 30], &BLOSUM62);
        assert_eq!(clamped.to_codes(), vec![20, 20]);
        let s = p.slice(4, 9);
        assert_eq!(s.bits(), 8);
        assert_eq!(s.pad(), 20);
        assert_eq!(s.to_codes(), &codes[4..13]);
        // String packing goes through the matrix alphabet.
        let ps = PackedSeq::from_protein_str("ARNdw?", &BLOSUM62);
        assert_eq!(ps.to_codes(), vec![0, 1, 2, 3, 17, 20]);
    }

    #[test]
    fn non_multiple_of_word_lengths_roundtrip() {
        // Every length around the 8-base word boundary packs losslessly and
        // pads its final word with N.
        for len in 0..=33usize {
            let codes: Vec<u8> = (0..len).map(|i| (i % 5) as u8).collect();
            let p = PackedSeq::from_codes(&codes);
            assert_eq!(p.len(), len);
            assert_eq!(p.num_words(), len.div_ceil(BASES_PER_WORD));
            assert_eq!(p.to_codes(), codes, "len {len}");
            let tail = len % BASES_PER_WORD;
            if tail != 0 {
                let w = p.words()[p.num_words() - 1];
                for k in tail..BASES_PER_WORD {
                    assert_eq!(
                        (w >> (BITS_PER_BASE * k as u32)) & BASE_MASK,
                        Base::N.code() as u32,
                        "len {len}, nibble {k}"
                    );
                }
            }
        }
    }
}
