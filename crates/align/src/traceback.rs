//! Banded guided alignment **with traceback**: the CIGAR-producing variant
//! used when the mapper needs base-level alignments, not only scores.
//!
//! The paper's kernels are score-only (the artifact outputs `score.log`),
//! but Minimap2's pipeline runs a traceback pass over accepted extensions;
//! this module provides that capability with the same guided semantics —
//! identical scores, termination and maxima as [`crate::guided`] — plus the
//! operation path to the global maximum. Memory is `O(band × antidiags)`
//! direction bytes, bounded by [`MAX_TRACE_CELLS`].

use crate::guided::{diag_range, zdrop_triggered};
use crate::matrix::AlignOp;
use crate::pack::PackedSeq;
use crate::result::{GuidedResult, MaxCell, StopReason};
use crate::scoring::Scoring;
use crate::NEG_INF;

/// Maximum number of stored direction cells (band × anti-diagonals).
pub const MAX_TRACE_CELLS: usize = 1 << 28;

/// A guided alignment together with its traceback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracedAlignment {
    /// The score-level result (identical to [`crate::guided::guided_align`]).
    pub result: GuidedResult,
    /// Operations from `(0,0)` to the global maximum cell (empty when the
    /// best extension is empty).
    pub ops: Vec<AlignOp>,
}

impl TracedAlignment {
    /// Run-length encoded CIGAR-like string (`=`,`X`,`D`,`I`).
    pub fn cigar(&self) -> String {
        let mut out = String::new();
        let mut run = 0usize;
        let mut prev: Option<char> = None;
        for op in &self.ops {
            let c = match op {
                AlignOp::Match => '=',
                AlignOp::Mismatch => 'X',
                AlignOp::Delete => 'D',
                AlignOp::Insert => 'I',
            };
            match prev {
                Some(p) if p == c => run += 1,
                Some(p) => {
                    out.push_str(&format!("{run}{p}"));
                    prev = Some(c);
                    run = 1;
                }
                None => {
                    prev = Some(c);
                    run = 1;
                }
            }
        }
        if let Some(p) = prev {
            out.push_str(&format!("{run}{p}"));
        }
        out
    }
}

// Direction encoding (two bits for H source, one each for E/F extension).
const H_FROM_DIAG: u8 = 0;
const H_FROM_E: u8 = 1;
const H_FROM_F: u8 = 2;
const E_EXTEND: u8 = 4;
const F_EXTEND: u8 = 8;

/// Guided alignment with traceback. Semantics match
/// [`crate::guided::guided_align`] exactly; additionally records per-cell
/// directions within the band and walks back from the global maximum.
pub fn guided_align_traced(
    reference: &PackedSeq,
    query: &PackedSeq,
    scoring: &Scoring,
) -> TracedAlignment {
    let n = reference.len() as i64;
    let m = query.len() as i64;
    if n == 0 || m == 0 {
        return TracedAlignment {
            result: GuidedResult {
                score: 0,
                max: MaxCell::ORIGIN,
                qend_score: None,
                stop: StopReason::Completed,
                antidiags: 0,
                cells: 0,
            },
            ops: Vec::new(),
        };
    }
    let w = if scoring.banded() { scoring.band_width as i64 } else { n + m };
    let band = (2 * w + 1).min(n.max(m)) as usize + 2;
    let total = (n + m - 1) as usize;
    assert!(
        band.checked_mul(total).is_some_and(|c| c <= MAX_TRACE_CELLS),
        "traceback table too large ({band} x {total})"
    );
    let oe = scoring.gap_open + scoring.gap_extend;
    let ext = scoring.gap_extend;
    let rc = reference.to_codes();
    let qc = query.to_codes();

    // Rolling per-diagonal arrays indexed by i, as in the scalar reference.
    let nu = n as usize;
    let mut h = [vec![NEG_INF; nu], vec![NEG_INF; nu], vec![NEG_INF; nu]];
    let mut e = [vec![NEG_INF; nu], vec![NEG_INF; nu]];
    let mut f = [vec![NEG_INF; nu], vec![NEG_INF; nu]];

    // Direction storage: per diagonal, per offset (i - lo).
    let mut dirs: Vec<u8> = vec![0; band * total];
    let mut lo_of: Vec<i64> = vec![0; total];

    let mut global = MaxCell::ORIGIN;
    let mut qend: Option<i32> = None;
    let mut cells = 0u64;
    let mut stop = StopReason::Completed;
    let mut last = -1i64;

    for c in 0..(n + m - 1) {
        let Some((lo, hi)) = diag_range(c, n, m, w) else {
            stop = StopReason::BandExhausted { antidiag: c as u32 };
            break;
        };
        lo_of[c as usize] = lo;
        let (hs, hp, hp2) = ((c % 3) as usize, ((c + 2) % 3) as usize, ((c + 1) % 3) as usize);
        let (efs, efp) = ((c % 2) as usize, ((c + 1) % 2) as usize);
        let mut local = MaxCell { score: NEG_INF, i: -1, j: -1 };
        let mut diag_qend: Option<i32> = None;
        for i in lo..=hi {
            let j = c - i;
            let iu = i as usize;
            let up_h = if i == 0 { scoring.border(j as i32) } else { h[hp][iu - 1] };
            let up_e = if i == 0 { NEG_INF } else { e[efp][iu - 1] };
            let left_h = if j == 0 { scoring.border(i as i32) } else { h[hp][iu] };
            let left_f = if j == 0 { NEG_INF } else { f[efp][iu] };
            let dgh = if i == 0 && j == 0 {
                0
            } else if i == 0 {
                scoring.border((j - 1) as i32)
            } else if j == 0 {
                scoring.border((i - 1) as i32)
            } else {
                h[hp2][iu - 1]
            };

            let (ev, e_ext) =
                if up_h - oe >= up_e - ext { (up_h - oe, false) } else { (up_e - ext, true) };
            let (fv, f_ext) = if left_h - oe >= left_f - ext {
                (left_h - oe, false)
            } else {
                (left_f - ext, true)
            };
            let sub = scoring.substitution(rc[iu], qc[j as usize]);
            let dh = dgh.saturating_add(sub);
            let (hv, src) = if dh >= ev && dh >= fv {
                (dh, H_FROM_DIAG)
            } else if ev >= fv {
                (ev, H_FROM_E)
            } else {
                (fv, H_FROM_F)
            };

            let mut d = src;
            if e_ext {
                d |= E_EXTEND;
            }
            if f_ext {
                d |= F_EXTEND;
            }
            dirs[c as usize * band + (i - lo) as usize] = d;

            h[hs][iu] = hv;
            e[efs][iu] = ev;
            f[efs][iu] = fv;
            if hv > local.score {
                local = MaxCell { score: hv, i: i as i32, j: j as i32 };
            }
            if j == m - 1 {
                diag_qend = Some(hv);
            }
            cells += 1;
        }
        if lo > 0 {
            h[hs][(lo - 1) as usize] = NEG_INF;
            e[efs][(lo - 1) as usize] = NEG_INF;
            f[efs][(lo - 1) as usize] = NEG_INF;
        }
        if hi + 1 < n {
            h[hs][(hi + 1) as usize] = NEG_INF;
            e[efs][(hi + 1) as usize] = NEG_INF;
            f[efs][(hi + 1) as usize] = NEG_INF;
        }
        last = c;
        if scoring.zdrop_enabled() && zdrop_triggered(global, local, scoring.zdrop, ext) {
            stop = StopReason::ZDrop { antidiag: c as u32 };
            break;
        }
        global.fold(local);
        if let Some(v) = diag_qend {
            qend = Some(qend.map_or(v, |q| q.max(v)));
        }
    }

    let result = GuidedResult {
        score: global.score,
        max: global,
        qend_score: qend,
        stop,
        antidiags: (last + 1) as u32,
        cells,
    };

    let ops = if global.score > 0 { walk_back(&dirs, &lo_of, band, global) } else { Vec::new() };
    let mut traced = TracedAlignment { result, ops };
    crate::matrix::classify_ops(&mut traced.ops, reference, query);
    traced
}

fn walk_back(dirs: &[u8], lo_of: &[i64], band: usize, start: MaxCell) -> Vec<AlignOp> {
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        H,
        E,
        F,
    }
    let mut ops = Vec::new();
    let (mut i, mut j) = (start.i as i64, start.j as i64);
    let mut state = State::H;
    while i >= 0 && j >= 0 {
        let c = (i + j) as usize;
        let d = dirs[c * band + (i - lo_of[c]) as usize];
        match state {
            State::H => match d & 3 {
                H_FROM_DIAG => {
                    ops.push(AlignOp::Match);
                    i -= 1;
                    j -= 1;
                }
                H_FROM_E => state = State::E,
                _ => state = State::F,
            },
            State::E => {
                ops.push(AlignOp::Delete);
                if d & E_EXTEND == 0 {
                    state = State::H;
                }
                i -= 1;
            }
            State::F => {
                ops.push(AlignOp::Insert);
                if d & F_EXTEND == 0 {
                    state = State::H;
                }
                j -= 1;
            }
        }
    }
    while i >= 0 {
        ops.push(AlignOp::Delete);
        i -= 1;
    }
    while j >= 0 {
        ops.push(AlignOp::Insert);
        j -= 1;
    }
    ops.reverse();
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guided::guided_align;
    use crate::matrix::{full_align_classified, score_ops};

    fn seq(s: &str) -> PackedSeq {
        PackedSeq::from_str_seq(s)
    }

    #[test]
    fn scores_match_reference() {
        let cases = [
            ("AGATAGAT", "AGACTATC", Scoring::figure1()),
            ("ACGTACGTACGTACGT", "ACGTTCGTACGAACGT", Scoring::new(2, 4, 4, 2, 40, 6)),
            (
                "ACGTACGTACGTGGGGGGGGGGGGGGGG",
                "ACGTACGTACGTCCCCCCCCCCCCCCCC",
                Scoring::new(2, 4, 4, 2, 10, 8),
            ),
        ];
        for (r, q, s) in cases {
            let want = guided_align(&seq(r), &seq(q), &s);
            let got = guided_align_traced(&seq(r), &seq(q), &s);
            assert!(got.result.same_alignment(&want), "{r} vs {q}");
            assert_eq!(got.result.cells, want.cells);
        }
    }

    #[test]
    fn traceback_score_consistent() {
        let s = Scoring::new(2, 4, 4, 2, Scoring::NO_ZDROP, 8);
        let r = seq("ACGTACGTACGTACGTACGT");
        let q = seq("ACGTACGTTACGTACGACGT");
        let t = guided_align_traced(&r, &q, &s);
        assert_eq!(score_ops(&t.ops, &r, &q, &s), t.result.score);
    }

    #[test]
    fn matches_full_table_when_unbanded() {
        let s = Scoring::figure1();
        let r = seq("AACCGGTTAACC");
        let q = seq("AACCTGGTTAACC");
        let t = guided_align_traced(&r, &q, &s);
        let f = full_align_classified(&r, &q, &s);
        assert_eq!(t.result.score, f.score);
        assert_eq!(t.cigar(), f.cigar());
    }

    #[test]
    fn zdropped_alignment_traces_to_max() {
        let s = Scoring::new(2, 4, 4, 2, 10, 16);
        let r = seq(&format!("{}{}", "ACGT".repeat(8), "G".repeat(64)));
        let q = seq(&format!("{}{}", "ACGT".repeat(8), "C".repeat(64)));
        let t = guided_align_traced(&r, &q, &s);
        assert!(t.result.stop.z_dropped());
        assert_eq!(t.cigar(), "32=");
    }

    #[test]
    fn empty_and_zero_score() {
        let s = Scoring::figure1();
        let t = guided_align_traced(&seq(""), &seq("ACGT"), &s);
        assert!(t.ops.is_empty());
        let t = guided_align_traced(&seq("AAAA"), &seq("GGGG"), &s);
        assert_eq!(t.result.score, 0);
        assert!(t.ops.is_empty());
    }
}
